(* Coverage for the remaining API surface, plus the §5.4
   "unstructured variables" angle: 2PL commutes with variable renamings
   (which is why it can be optimal among separable policies on
   unstructured data), while 2PL' and tree locking depend on
   distinguished/structured variables. *)

open Util
open Core

(* --- renaming invariance --- *)

let rename_locked f (l : Locking.Locked.t) =
  Array.map
    (Array.map (fun s ->
         match s with
         | Locking.Locked.Lock x -> Locking.Locked.Lock (f x)
         | Locking.Locked.Unlock x -> Locking.Locked.Unlock (f x)
         | Locking.Locked.Action id -> Locking.Locked.Action id))
    l.Locking.Locked.txs

let prop_2pl_renaming_invariant =
  QCheck.Test.make ~name:"2PL commutes with variable renamings" ~count:80
    (QCheck.make (syntax_gen ~max_n:3 ~max_m:3 ~n_vars:3))
    (fun syntax ->
      let f v = v ^ "_r" in
      let before = Locking.Two_phase.apply (Syntax.rename f syntax) in
      let after = rename_locked f (Locking.Two_phase.apply syntax) in
      before.Locking.Locked.txs = after)

let test_2pl_prime_not_renaming_invariant () =
  (* swapping x and y moves the distinguished variable: the transforms
     differ beyond a consistent relabeling *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ] ] in
  let swap v = if v = "x" then "y" else if v = "y" then "x" else v in
  let before =
    Locking.Two_phase_prime.apply ~distinguished:"x" (Syntax.rename swap syntax)
  in
  let after =
    rename_locked swap (Locking.Two_phase_prime.apply ~distinguished:"x" syntax)
  in
  check_false "2PL' singles out x" (before.Locking.Locked.txs = after)

let test_mutex_renaming_invariant () =
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y" ] ] in
  let f v = v ^ "!" in
  let before = Locking.Mutex_policy.apply (Syntax.rename f syntax) in
  let after = rename_locked f (Locking.Mutex_policy.apply syntax) in
  (* the mutex name is not a data variable, so it is untouched on both
     sides only if the renaming fixes it; compare outputs instead *)
  check_int "same structure"
    (Array.length before.Locking.Locked.txs.(0))
    (Array.length after.(0))

(* --- smaller API corners --- *)

let test_schedule_prefix_positions () =
  let h = Schedule.of_interleaving [| 0; 1; 0 |] in
  check_int "prefix length" 2 (Array.length (Schedule.prefix h 2));
  let pos = Schedule.positions h in
  check_int "positions" 3 (List.length pos);
  check_true "first is T11"
    (match pos with
    | (id, 0) :: _ -> Names.equal_step id (Names.step 0 0)
    | _ -> false)

let test_names_pp () =
  Alcotest.(check string) "small" "T11" (Names.step_to_string (Names.step 0 0));
  Alcotest.(check string) "large" "T(12,4)"
    (Names.step_to_string (Names.step 11 3))

let test_interleave_fold () =
  let count = Combin.Interleave.fold [| 2; 1 |] (fun acc _ -> acc + 1) 0 in
  check_int "fold visits all" 3 count

let test_digraph_pp () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 1;
  check_true "pp renders" (String.length (Format.asprintf "%a" Digraph.pp g) > 0)

let test_state_pp () =
  Alcotest.(check string) "state" "{a=1}"
    (State.to_string (State.of_ints [ ("a", 1) ]));
  Alcotest.(check string) "empty" "{}" (State.to_string State.empty)

let test_value_pp () =
  Alcotest.(check string) "int" "3" (Expr.Value.to_string (Expr.Value.Int 3));
  Alcotest.(check string) "bool" "true" (Expr.Value.to_string (Expr.Value.Bool true));
  Alcotest.(check string) "str" "\"a\"" (Expr.Value.to_string (Expr.Value.Str "a"));
  Alcotest.(check string) "domain" "[0..3]"
    (Format.asprintf "%a" Expr.Value.pp_domain (Expr.Value.Int_range (0, 3)))

let test_weak_sr_max_states_guard () =
  (* tiny exploration budget: the search self-limits without raising *)
  let fig1 = Examples.fig1 in
  let probes = [ State.of_ints [ ("x", 0) ] ] in
  let verdict =
    Weak_sr.check ~max_states:2 fig1 ~probes Examples.fig1_history
  in
  check_true "bounded exploration terminates"
    (match verdict with
    | Weak_sr.Weakly_serializable _ | Weak_sr.Refuted _ -> true)

let test_herbrand_term_size () =
  let t =
    Herbrand.App
      (Names.step 0 1, [ Herbrand.Init "x"; Herbrand.App (Names.step 1 0, []) ])
  in
  check_int "term size" 3 (Herbrand.term_size t)

let test_system_pp_smoke () =
  check_true "system renders"
    (String.length (Format.asprintf "%a" System.pp Examples.banking) > 100)

let test_syntax_errors () =
  check_true "empty system rejected"
    (try ignore (Syntax.make [||]); false with Invalid_argument _ -> true);
  check_true "var out of range"
    (try ignore (Syntax.var Examples.fig3_pair (Names.step 5 0)); false
     with Invalid_argument _ -> true)

let test_driver_livelock_guard () =
  (* a scheduler that delays everything and cannot resolve stalls fails
     cleanly instead of spinning *)
  let broken =
    Sched.Scheduler.make ~name:"never"
      ~attempt:(fun _ -> Sched.Scheduler.Delay)
      ~commit:(fun _ -> ())
      ~victim:(fun _ -> None)
      ()
  in
  check_true "driver raises typed Stall"
    (try
       ignore (Sched.Driver.run broken ~fmt:[| 1 |] ~arrivals:[| 0 |]);
       false
     with Sched.Driver.Stall _ -> true)

let test_tree_spanning_single () =
  let h = [ ("a", "r") ] in
  Alcotest.(check (list string)) "single var" [ "a" ]
    (Locking.Tree_lock.spanning_subtree h [ "a" ]);
  Alcotest.(check (list string)) "empty" []
    (Locking.Tree_lock.spanning_subtree h [])

let test_tree_cross_trees_rejected () =
  let h = [] in
  (* two roots: no common tree *)
  check_true "cross-tree accesses rejected"
    (try ignore (Locking.Tree_lock.spanning_subtree h [ "a"; "b" ]); false
     with Invalid_argument _ -> true)

(* 2PL geometry: the common point is exactly the pair of phase shifts. *)
let prop_2pl_common_point_exists =
  QCheck.Test.make ~name:"2PL two-transaction blocks share a point"
    ~count:80
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:4 ~n_vars:2))
    (fun syntax ->
      Syntax.n_transactions syntax <> 2
      ||
      let geo = Locking.Geometry.analyse (Locking.Two_phase.apply syntax) in
      match Locking.Geometry.blocks geo with
      | [] -> true
      | _ -> Locking.Geometry.common_point geo <> None)

(* legality of locked schedules is prefix-monotone *)
let prop_legal_prefix_monotone =
  QCheck.Test.make ~name:"locked legality is prefix-monotone" ~count:60
    (QCheck.make
       QCheck.Gen.(
         pair (syntax_gen ~max_n:2 ~max_m:3 ~n_vars:2) int))
    (fun (syntax, seed) ->
      let locked = Locking.Two_phase.apply syntax in
      let st = rng seed in
      let fmt = Locking.Locked.format locked in
      let il = Combin.Interleave.random st fmt in
      (not (Locking.Locked.legal locked il))
      || List.for_all
           (fun k -> Locking.Locked.legal_prefix locked (Array.sub il 0 k))
           (List.init (Array.length il) (fun k -> k + 1)))

let suite =
  [
    Alcotest.test_case "2PL' breaks renaming" `Quick test_2pl_prime_not_renaming_invariant;
    Alcotest.test_case "mutex renaming" `Quick test_mutex_renaming_invariant;
    Alcotest.test_case "schedule prefix/positions" `Quick test_schedule_prefix_positions;
    Alcotest.test_case "names printing" `Quick test_names_pp;
    Alcotest.test_case "interleave fold" `Quick test_interleave_fold;
    Alcotest.test_case "digraph printing" `Quick test_digraph_pp;
    Alcotest.test_case "state printing" `Quick test_state_pp;
    Alcotest.test_case "value printing" `Quick test_value_pp;
    Alcotest.test_case "weak-sr state budget" `Quick test_weak_sr_max_states_guard;
    Alcotest.test_case "herbrand term size" `Quick test_herbrand_term_size;
    Alcotest.test_case "system printing" `Quick test_system_pp_smoke;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "driver livelock guard" `Quick test_driver_livelock_guard;
    Alcotest.test_case "tree spanning corners" `Quick test_tree_spanning_single;
    Alcotest.test_case "tree cross-tree rejected" `Quick test_tree_cross_trees_rejected;
  ]
  @ qsuite
      [
        prop_2pl_renaming_invariant;
        prop_2pl_common_point_exists;
        prop_legal_prefix_monotone;
      ]

(* --- last-mile coverage --- *)

let test_perm_apply () =
  Alcotest.(check (array string)) "apply"
    [| "c"; "a"; "b" |]
    (Combin.Perm.apply [| 2; 0; 1 |] [| "a"; "b"; "c" |])

let test_render_smoke () =
  let locked = Locking.Two_phase.apply Examples.fig3_pair in
  let fig = Locking.Render.figure locked in
  check_true "figure renders" (String.length fig > 50);
  check_true "has legend" (String.length (Locking.Render.axis_legend locked) > 10)

let prop_serial_order_roundtrip =
  QCheck.Test.make ~name:"serial order roundtrips" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 0 1000))
    (fun (n, seed) ->
      let st = rng seed in
      let fmt = Array.init n (fun _ -> 1 + Random.State.int st 3) in
      let order = Combin.Perm.random st n in
      match Schedule.serial_order (Schedule.serial fmt order) with
      | Some o -> o = order
      | None -> false)

(* SR is prefix-closed in the RMW model: the conflict graph of a prefix
   is a subgraph of the whole. *)
let prop_sr_prefix_closed =
  QCheck.Test.make ~name:"conflict serializability is prefix-closed"
    ~count:100
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      (not (Conflict.serializable syntax h))
      || List.for_all
           (fun k -> Conflict.prefix_serializable syntax h k)
           (List.init (Array.length h) (fun k -> k + 1)))

(* reachable_finals witnesses replay to their states. *)
let prop_reachable_witnesses_replay =
  QCheck.Test.make ~name:"reachable_finals witnesses replay" ~count:40
    QCheck.(int_range (-4) 4)
    (fun x ->
      let e = State.of_ints [ ("x", x) ] in
      List.for_all
        (fun (g, path) ->
          State.equal g (Exec.run_concatenation Examples.fig1 e path))
        (Weak_sr.reachable_finals ~max_len:3 Examples.fig1 e))

(* The information classes respect format at the bottom level. *)
let test_format_class () =
  let a = Examples.fig1 in
  let b = System.make (Syntax.of_lists [ [ "z"; "z" ]; [ "z" ] ])
      [| [| Expr.Ast.Local 0; Expr.Ast.Local 1 |]; [| Expr.Ast.Local 0 |] |]
  in
  check_true "same format, different syntax"
    (Info.same_class Info.Format_only a b);
  check_false "not syntactically equal" (Info.same_class Info.Syntactic a b)

(* Regenerating BENCH_sched.json in place must keep top-level keys
   other tools put there (e.g. the checker-throughput section). *)
let test_bench_merge_preserving () =
  let fresh = "{\n  \"benchmark\": \"b1\",\n  \"results\": [1, 2]\n}\n" in
  let existing =
    "{\"benchmark\": \"old\", \"checker\": {\"events_per_sec\": 9}, \
     \"note\": \"hand-added\"}"
  in
  let merged = Sim.Sched_bench.merge_preserving ~existing fresh in
  check_true "merged well-formed" (Sim.Sched_bench.json_well_formed merged);
  (match Sim.Sched_bench.toplevel_members merged with
  | None -> Alcotest.fail "merged not an object"
  | Some members ->
    check_true "fresh keys win"
      (List.assoc "benchmark" members = "\"b1\"");
    check_true "foreign keys preserved"
      (List.assoc_opt "checker" members = Some "{\"events_per_sec\": 9}");
    check_true "annotations preserved"
      (List.assoc_opt "note" members = Some "\"hand-added\""));
  (* idempotent: merging the merge changes nothing *)
  check_true "merge idempotent"
    (Sim.Sched_bench.merge_preserving ~existing:merged merged = merged);
  (* an unparseable existing file never corrupts fresh output *)
  check_true "garbage existing ignored"
    (Sim.Sched_bench.merge_preserving ~existing:"not json { at all" fresh
    = fresh);
  check_true "non-object existing ignored"
    (Sim.Sched_bench.merge_preserving ~existing:"[1,2,3]" fresh = fresh);
  (* nothing to add: fresh already has every key *)
  check_true "no-op merge"
    (Sim.Sched_bench.merge_preserving ~existing:"{\"benchmark\": 0}" fresh
    = fresh)

let test_bench_merge_preserves_sections () =
  (* the committed BENCH_sched.json accumulates opt-in sections
     (--parallel, --twopc, the mv table); regenerating without one of
     the flags must keep the existing member — each section is emitted
     by real spec runs here, not hand-written strings, so this breaks
     if an emitter renames its member *)
  let spec = { Sim.Sched_bench.smoke with min_time = 0. } in
  let rows = Sim.Sched_bench.run { spec with par_domains = [] } in
  let twopc =
    match Sim.Sched_bench.twopc_stats spec with
    | Some s -> s
    | None -> Alcotest.fail "smoke spec must enable the 2PC section"
  in
  (* existing file: has twopc (and parallel-free results); fresh
     regeneration without --twopc must preserve it *)
  let existing = Sim.Sched_bench.to_json ~twopc spec rows in
  let fresh =
    Sim.Sched_bench.to_json { spec with twopc_fault_rates = [] } rows
  in
  (match Sim.Sched_bench.toplevel_members fresh with
  | Some members ->
    check_true "fresh run lacks the twopc member"
      (List.assoc_opt "twopc" members = None)
  | None -> Alcotest.fail "fresh not an object");
  let merged = Sim.Sched_bench.merge_preserving ~existing fresh in
  check_true "merged well-formed" (Sim.Sched_bench.json_well_formed merged);
  match
    (Sim.Sched_bench.toplevel_members existing,
     Sim.Sched_bench.toplevel_members merged)
  with
  | Some old_members, Some members ->
    check_true "twopc section preserved across regeneration"
      (List.assoc_opt "twopc" members = List.assoc_opt "twopc" old_members);
    check_true "twopc sweep content intact"
      (match List.assoc_opt "twopc" members with
      | Some raw ->
        let contains needle =
          let nl = String.length needle and rl = String.length raw in
          let rec go i = i + nl <= rl
            && (String.sub raw i nl = needle || go (i + 1)) in
          go 0
        in
        contains "coordinator_crash" && contains "fault_rate"
      | None -> false);
    check_true "fresh results win"
      (List.assoc_opt "results" members = List.assoc_opt "results"
        (Option.get (Sim.Sched_bench.toplevel_members fresh)))
  | _ -> Alcotest.fail "merge output not an object"

let suite =
  suite
  @ [
      Alcotest.test_case "perm apply" `Quick test_perm_apply;
      Alcotest.test_case "render smoke" `Quick test_render_smoke;
      Alcotest.test_case "format class" `Quick test_format_class;
      Alcotest.test_case "bench JSON merge preserves keys" `Quick
        test_bench_merge_preserving;
      Alcotest.test_case "bench JSON merge preserves opt-in sections" `Quick
        test_bench_merge_preserves_sections;
    ]
  @ qsuite
      [
        prop_serial_order_roundtrip;
        prop_sr_prefix_closed;
        prop_reachable_witnesses_replay;
      ]
