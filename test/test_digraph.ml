(* Tests for the directed-graph substrate. *)

open Util

let mk edges n =
  let g = Digraph.create n in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

let test_basic () =
  let g = mk [ (0, 1); (1, 2) ] 3 in
  check_true "has 0->1" (Digraph.has_edge g 0 1);
  check_false "no 1->0" (Digraph.has_edge g 1 0);
  check_int "n edges" 2 (Digraph.n_edges g);
  Alcotest.(check (list int)) "succ 0" [ 1 ] (Digraph.succ g 0);
  Alcotest.(check (list int)) "pred 2" [ 1 ] (Digraph.pred g 2);
  Digraph.add_edge g 0 1;
  check_int "idempotent add" 2 (Digraph.n_edges g);
  Digraph.remove_edge g 0 1;
  check_false "removed" (Digraph.has_edge g 0 1)

let test_cycles () =
  check_false "dag" (Digraph.has_cycle (mk [ (0, 1); (1, 2); (0, 2) ] 3));
  check_true "triangle" (Digraph.has_cycle (mk [ (0, 1); (1, 2); (2, 0) ] 3));
  check_true "self loop" (Digraph.has_cycle (mk [ (1, 1) ] 2));
  check_false "empty" (Digraph.has_cycle (Digraph.create 5));
  check_true "two-cycle deep"
    (Digraph.has_cycle (mk [ (0, 1); (1, 2); (2, 3); (3, 1) ] 4))

let test_topo () =
  (match Digraph.topological_sort (mk [ (2, 1); (1, 0) ] 3) with
  | Some order -> Alcotest.(check (array int)) "order" [| 2; 1; 0 |] order
  | None -> Alcotest.fail "expected a topological order");
  check_true "cyclic has none"
    (Digraph.topological_sort (mk [ (0, 1); (1, 0) ] 2) = None)

let test_find_cycle () =
  (match Digraph.find_cycle (mk [ (0, 1); (1, 2); (2, 0) ] 3) with
  | Some cyc -> check_int "cycle length" 3 (List.length cyc)
  | None -> Alcotest.fail "expected a cycle");
  check_true "acyclic none" (Digraph.find_cycle (mk [ (0, 1) ] 2) = None)

let test_scc () =
  let g = mk [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] 4 in
  let comp = Digraph.scc g in
  check_true "0,1 same" (comp.(0) = comp.(1));
  check_true "2,3 same" (comp.(2) = comp.(3));
  check_true "0,2 differ" (comp.(0) <> comp.(2))

let test_reachable () =
  let g = mk [ (0, 1); (1, 2); (3, 0) ] 4 in
  let r = Digraph.reachable g 0 in
  Alcotest.(check (array bool)) "from 0" [| true; true; true; false |] r

let test_components () =
  let g = mk [ (0, 1); (2, 3) ] 5 in
  let c = Digraph.undirected_components g in
  check_true "0-1 joined" (c.(0) = c.(1));
  check_true "2-3 joined" (c.(2) = c.(3));
  check_true "4 alone" (c.(4) <> c.(0) && c.(4) <> c.(2))

(* Brute-force cycle check for cross-validation: try all vertices as
   start, walk all simple paths. Exponential but fine on tiny graphs. *)
let brute_has_cycle g =
  let n = Digraph.n_vertices g in
  let rec walk visited u =
    List.exists
      (fun v -> List.mem v visited || walk (v :: visited) v)
      (Digraph.succ g u)
  in
  let rec any u = u < n && (walk [ u ] u || any (u + 1)) in
  any 0

let random_graph_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun n ->
    list_size (int_range 0 10) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun edges -> return (n, edges))

let prop_cycle_matches_brute =
  QCheck.Test.make ~name:"has_cycle matches brute force" ~count:300
    (QCheck.make
       ~print:(fun (n, es) ->
         Printf.sprintf "n=%d edges=%s" n
           (String.concat ";"
              (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) es)))
       random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      Digraph.has_cycle g = brute_has_cycle g)

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological sort respects all edges" ~count:300
    (QCheck.make random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      match Digraph.topological_sort g with
      | None -> Digraph.has_cycle g
      | Some order ->
        let pos = Array.make n 0 in
        Array.iteri (fun i u -> pos.(u) <- i) order;
        (not (Digraph.has_cycle g))
        && List.for_all (fun (u, v) -> pos.(u) < pos.(v)) (Digraph.edges g))

let prop_find_cycle_is_cycle =
  QCheck.Test.make ~name:"find_cycle returns a real cycle" ~count:300
    (QCheck.make random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      match Digraph.find_cycle g with
      | None -> not (Digraph.has_cycle g)
      | Some [] -> false
      | Some (first :: _ as cyc) ->
        let rec ok = function
          | [ last ] -> Digraph.has_edge g last first
          | u :: (v :: _ as rest) -> Digraph.has_edge g u v && ok rest
          | [] -> false
        in
        ok cyc)

let prop_closure_sound =
  QCheck.Test.make ~name:"transitive closure = reachability" ~count:200
    (QCheck.make random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      let c = Digraph.transitive_closure g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let r = Digraph.reachable g u in
        for v = 0 to n - 1 do
          let direct = Digraph.has_edge c u v in
          let expected =
            (* reachable by non-empty path *)
            List.exists (fun w -> Digraph.reachable g w |> fun rw -> rw.(v))
              (Digraph.succ g u)
          in
          ignore r;
          if direct <> expected then ok := false
        done
      done;
      !ok)

(* ---------- incremental acyclic graphs (Pearce–Kelly) ---------- *)

module A = Digraph.Acyclic

let test_acyclic_basic () =
  let g = A.create 3 in
  check_true "add 0->1" (A.add_edge_acyclic g 0 1 = Ok ());
  check_true "add 1->2" (A.add_edge_acyclic g 1 2 = Ok ());
  check_true "has 0->1" (A.has_edge g 0 1);
  check_int "two edges" 2 (A.n_edges g);
  check_true "idempotent" (A.add_edge_acyclic g 0 1 = Ok ());
  check_int "still two edges" 2 (A.n_edges g);
  (match A.add_edge_acyclic g 2 0 with
  | Error [ 0; 1; 2 ] -> ()
  | Error w ->
    Alcotest.failf "unexpected witness [%s]"
      (String.concat ";" (List.map string_of_int w))
  | Ok () -> Alcotest.fail "cycle accepted");
  check_int "rejected edge not added" 2 (A.n_edges g);
  check_true "self-loop refused" (A.add_edge_acyclic g 1 1 = Error [ 1 ]);
  check_true "closes_cycle query" (A.closes_cycle g 2 0);
  check_false "harmless edge" (A.closes_cycle g 0 2);
  check_int "query did not mutate" 2 (A.n_edges g)

let test_acyclic_reorder () =
  (* insertions against the initial identity order force reorderings *)
  let g = A.create 4 in
  check_true "3->2" (A.add_edge_acyclic g 3 2 = Ok ());
  check_true "2->1" (A.add_edge_acyclic g 2 1 = Ok ());
  check_true "1->0" (A.add_edge_acyclic g 1 0 = Ok ());
  let order = A.topological_order g in
  Alcotest.(check (array int)) "reversed order" [| 3; 2; 1; 0 |] order;
  check_true "0->3 closes cycle" (Result.is_error (A.add_edge_acyclic g 0 3))

let test_acyclic_removal () =
  let g = A.create 4 in
  List.iter
    (fun (u, v) -> check_true "acyclic add" (A.add_edge_acyclic g u v = Ok ()))
    [ (0, 1); (1, 2); (2, 3) ];
  check_true "3->0 blocked by the chain"
    (Result.is_error (A.add_edge_acyclic g 3 0));
  A.remove_vertex g 1;
  check_int "edges after removal" 1 (A.n_edges g);
  Alcotest.(check (list int)) "1 isolated succ" [] (A.succ g 1);
  Alcotest.(check (list int)) "1 isolated pred" [] (A.pred g 1);
  check_true "3->0 now fine" (A.add_edge_acyclic g 3 0 = Ok ());
  A.remove_edge g 2 3;
  check_false "edge removed" (A.has_edge g 2 3)

let test_acyclic_batch_query () =
  let g = A.create 4 in
  List.iter
    (fun (u, v) -> ignore (A.add_edge_acyclic g u v))
    [ (0, 1); (1, 2) ];
  (* adding {0 -> 3, 2 -> 3} is fine; {0 -> 1's tail...}: adding
     {3 -> 0} batched with anything is fine too since 3 unreachable *)
  check_false "batch ok" (A.closes_cycle_any g ~sources:[ 0; 2 ] ~target:3);
  check_true "batch cycle" (A.closes_cycle_any g ~sources:[ 3; 2 ] ~target:0);
  check_true "self in batch" (A.closes_cycle_any g ~sources:[ 0 ] ~target:0)

(* Differential property: a random op sequence on the incremental
   structure mirrors exactly onto the plain digraph — same accepted edge
   set, rejections exactly when the plain graph would turn cyclic, valid
   witnesses, and a maintained order that is topological throughout. *)
let acyclic_ops_gen =
  QCheck.Gen.(
    int_range 2 7 >>= fun n ->
    list_size (int_range 0 40)
      (oneof
         [
           map2 (fun u v -> `Add (u, v)) (int_range 0 (n - 1)) (int_range 0 (n - 1));
           map2 (fun u v -> `Del (u, v)) (int_range 0 (n - 1)) (int_range 0 (n - 1));
           map (fun u -> `DelV u) (int_range 0 (n - 1));
         ])
    >>= fun ops -> return (n, ops))

let prop_acyclic_matches_plain =
  QCheck.Test.make ~name:"Acyclic mirrors plain digraph + has_cycle" ~count:400
    (QCheck.make
       ~print:(fun (n, ops) ->
         Printf.sprintf "n=%d ops=%s" n
           (String.concat ";"
              (List.map
                 (function
                   | `Add (u, v) -> Printf.sprintf "+%d->%d" u v
                   | `Del (u, v) -> Printf.sprintf "-%d->%d" u v
                   | `DelV u -> Printf.sprintf "-v%d" u)
                 ops)))
       acyclic_ops_gen)
    (fun (n, ops) ->
      let a = A.create n in
      let p = Digraph.create n in
      let order_ok () =
        let order = A.topological_order a in
        let pos = Array.make n 0 in
        Array.iteri (fun i u -> pos.(u) <- i) order;
        List.for_all (fun (u, v) -> pos.(u) < pos.(v)) (A.edges a)
      in
      let witness_ok u v = function
        | [] -> false
        | first :: _ as path ->
          first = v
          && (match List.rev path with last :: _ -> last = u | [] -> false)
          && (match path with
             | [ w ] -> w = u && w = v (* self-loop witness *)
             | _ ->
               let rec edges_exist = function
                 | a' :: (b :: _ as rest) ->
                   Digraph.has_edge p a' b && edges_exist rest
                 | _ -> true
               in
               edges_exist path)
      in
      List.for_all
        (fun op ->
          (match op with
          | `Add (u, v) -> (
            let probe = Digraph.copy p in
            Digraph.add_edge probe u v;
            let query = A.closes_cycle a u v in
            match A.add_edge_acyclic a u v with
            | Ok () ->
              Digraph.add_edge p u v;
              (not query) && not (Digraph.has_cycle p)
            | Error w ->
              query && Digraph.has_cycle probe && witness_ok u v w)
          | `Del (u, v) ->
            A.remove_edge a u v;
            Digraph.remove_edge p u v;
            true
          | `DelV u ->
            A.remove_vertex a u;
            List.iter (fun v -> Digraph.remove_edge p u v) (Digraph.succ p u);
            List.iter (fun w -> Digraph.remove_edge p w u) (Digraph.pred p u);
            true)
          && A.edges a = Digraph.edges p
          && A.n_edges a = Digraph.n_edges p
          && order_ok ())
        ops)

let suite =
  [
    Alcotest.test_case "basic ops" `Quick test_basic;
    Alcotest.test_case "cycles" `Quick test_cycles;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "find cycle" `Quick test_find_cycle;
    Alcotest.test_case "scc" `Quick test_scc;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "acyclic basic" `Quick test_acyclic_basic;
    Alcotest.test_case "acyclic reorder" `Quick test_acyclic_reorder;
    Alcotest.test_case "acyclic removal" `Quick test_acyclic_removal;
    Alcotest.test_case "acyclic batch query" `Quick test_acyclic_batch_query;
  ]
  @ qsuite
      [
        prop_cycle_matches_brute;
        prop_topo_respects_edges;
        prop_find_cycle_is_cycle;
        prop_closure_sound;
        prop_acyclic_matches_plain;
      ]
