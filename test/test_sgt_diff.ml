(* Differential tests for the incremental SGT scheduler.

   [Sched.Sgt] (Pearce–Kelly incremental conflict graph) must be
   decision-for-decision equivalent to [Sched.Sgt_ref] (the brute-force
   copy-and-recheck oracle it replaced): identical grant/delay traces on
   every interleaving of every small format, identical fixpoint sets,
   and identical driver statistics on large seeded workloads.

   The timed simulation is differentially checked against the untimed
   driver as well: with instantaneous arrivals in transaction order and
   scheduling dominating execution, [Sim.Des.run] serves requests in
   round-robin order, so its abort/deadlock counts must agree with
   [Sched.Driver.run] on the matching arrival sequence. This pins down
   the eager-detect regression where every SGT delay was answered with
   an abort and contended workloads thrashed through thousands of
   restarts. *)

open Util
open Core

(* ---------- decision traces ---------- *)

type decision = Names.step_id * Sched.Scheduler.response

(* Wrap a scheduler so every [attempt] outcome is appended to [trace].
   The driver consults nothing else, so equal traces mean the two
   schedulers are observationally identical to any driver. *)
let traced trace (s : Sched.Scheduler.t) =
  Sched.Scheduler.make ~name:s.Sched.Scheduler.name
    ~attempt:(fun id ->
      let r = s.Sched.Scheduler.attempt id in
      trace := (id, r) :: !trace;
      r)
    ~commit:s.Sched.Scheduler.commit ~on_abort:s.Sched.Scheduler.on_abort
    ~victim:s.Sched.Scheduler.victim ~detect:s.Sched.Scheduler.detect ()

let same_stats (a : Sched.Driver.stats) (b : Sched.Driver.stats) =
  Schedule.equal a.Sched.Driver.output b.Sched.Driver.output
  && a.Sched.Driver.delays = b.Sched.Driver.delays
  && a.Sched.Driver.restarts = b.Sched.Driver.restarts
  && a.Sched.Driver.deadlocks = b.Sched.Driver.deadlocks
  && a.Sched.Driver.grants = b.Sched.Driver.grants

(* Run both SGT implementations over one arrival sequence and insist on
   identical decision traces and statistics. *)
let check_equiv syntax arrivals =
  let fmt = Syntax.format syntax in
  let t1 = ref [] and t2 = ref [] in
  let s1 =
    Sched.Driver.run (traced t1 (Sched.Sgt.create ~syntax ())) ~fmt ~arrivals
  in
  let s2 =
    Sched.Driver.run (traced t2 (Sched.Sgt_ref.create ~syntax)) ~fmt ~arrivals
  in
  check_true "identical decision traces" (!t1 = !t2);
  check_true "identical stats" (same_stats s1 s2)

(* every composition of [total] into positive parts, as formats *)
let compositions total =
  let rec go rem acc out =
    if rem = 0 then Array.of_list (List.rev acc) :: out
    else
      let rec parts p out =
        if p > rem then out else parts (p + 1) (go (rem - p) (p :: acc) out)
      in
      parts 1 out
  in
  go total [] []

(* a deterministic syntax for a format: variables drawn from a small
   pool, so repeated accesses to the same variable occur routinely *)
let syntax_of_fmt ~n_vars ~seed fmt =
  let st = rng seed in
  Syntax.make
    (Array.map
       (fun m ->
         Array.init m (fun _ -> var_names.(Random.State.int st n_vars)))
       fmt)

let test_exhaustive_small () =
  (* all formats up to total size 6, all interleavings, two contention
     levels *)
  for total = 2 to 6 do
    List.iter
      (fun fmt ->
        List.iter
          (fun (n_vars, seed) ->
            let syntax = syntax_of_fmt ~n_vars ~seed fmt in
            Combin.Interleave.iter fmt (fun arrivals ->
                check_equiv syntax (Array.copy arrivals)))
          [ (2, 17); (3, 23) ])
      (compositions total)
  done

let test_fixpoint_sets_agree () =
  (* Theorem 3's fixpoint characterisation must be preserved by the
     incremental rewrite: same fixpoint set as the oracle, which is in
     turn SR(T) (already covered by test_sched) *)
  List.iter
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let fp_inc =
        Sched.Driver.fixpoint_of (fun () -> Sched.Sgt.create ~syntax ()) fmt
      in
      let fp_ref =
        Sched.Driver.fixpoint_of (fun () -> Sched.Sgt_ref.create ~syntax) fmt
      in
      check_int "fixpoint set size" (List.length fp_ref) (List.length fp_inc);
      List.iter2
        (fun a b -> check_true "fixpoint schedule" (Schedule.equal a b))
        fp_inc fp_ref)
    [
      Examples.hot_spot 2 2;
      Examples.hot_spot 3 2;
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
      Syntax.of_lists [ [ "x"; "x"; "y" ]; [ "y"; "x" ] ];
      Examples.fig1.System.syntax;
    ]

let test_repeated_access_regression () =
  (* regression for the duplicate-history bug: a transaction touching
     the same variable k times must behave exactly like the oracle (and
     its per-variable history must not blow up the edge set — observable
     here as decision divergence on the k-fold hot spot) *)
  let syntaxes =
    [
      Syntax.of_lists [ [ "x"; "x" ]; [ "x"; "x" ]; [ "x"; "x" ] ];
      Syntax.of_lists [ [ "x"; "x"; "x"; "x" ]; [ "x"; "x"; "x"; "x" ] ];
      Syntax.of_lists [ [ "x"; "x"; "y" ]; [ "y"; "x" ]; [ "x"; "y"; "y" ] ];
    ]
  in
  List.iter
    (fun syntax ->
      let fmt = Syntax.format syntax in
      Combin.Interleave.iter fmt (fun arrivals ->
          check_equiv syntax (Array.copy arrivals));
      (* serial arrivals must sail through with zero delays *)
      let serial =
        Combin.Interleave.serial fmt (Array.init (Array.length fmt) Fun.id)
      in
      let s =
        Sched.Driver.run (Sched.Sgt.create ~syntax ()) ~fmt ~arrivals:serial
      in
      check_true "serial zero-delay" (Sched.Driver.zero_delay s))
    syntaxes

let prop_random_large =
  (* seeded workloads beyond exhaustive reach: n, m >= 8 *)
  QCheck.Test.make ~count:12 ~name:"SGT = SGT-ref on large seeded workloads"
    QCheck.(make Gen.int)
    (fun seed ->
      let st = Random.State.make [| 0xD1FF; seed |] in
      let n = 8 + Random.State.int st 3 in
      let m = 8 + Random.State.int st 3 in
      let syntax = Sim.Workload.uniform st ~n ~m ~n_vars:6 in
      let fmt = Syntax.format syntax in
      let ok = ref true in
      for _ = 1 to 3 do
        let arrivals = Combin.Interleave.random st fmt in
        let t1 = ref [] and t2 = ref [] in
        let s1 =
          Sched.Driver.run
            (traced t1 (Sched.Sgt.create ~syntax ()))
            ~fmt ~arrivals
        in
        let s2 =
          Sched.Driver.run
            (traced t2 (Sched.Sgt_ref.create ~syntax))
            ~fmt ~arrivals
        in
        ok :=
          !ok && !t1 = !t2 && same_stats s1 s2
          && Conflict.serializable syntax s1.Sched.Driver.output
      done;
      !ok)

(* ---------- DES vs Driver ---------- *)

(* instantaneous arrivals in index order + scheduling that dominates
   execution: the DES serves requests round-robin, matching this
   arrival sequence for the untimed driver *)
let round_robin fmt =
  let n = Array.length fmt in
  let acc = ref [] in
  let maxm = Array.fold_left max 0 fmt in
  for j = 0 to maxm - 1 do
    for i = 0 to n - 1 do
      if j < fmt.(i) then acc := i :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let des_params =
  { Sim.Des.arrival_rate = 1e6; exec_time = 0.001; sched_time = 1.; seed = 1 }

let des syntax mk = Sim.Des.run des_params ~syntax ~scheduler:mk

let driver syntax mk =
  let fmt = Syntax.format syntax in
  Sched.Driver.run (mk ()) ~fmt ~arrivals:(round_robin fmt)

let test_des_driver_corpus () =
  (* fixed corpus: both SGT implementations agree exactly with the
     driver on aborts and deadlocks; 2PL agrees on the cases where its
     eager wait-for-cycle detection fires exactly when the lazy driver
     stalls *)
  let cases =
    [
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
      Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "z"; "x" ]; [ "y"; "z" ] ];
      Syntax.of_lists [ [ "x"; "x" ]; [ "x"; "x" ]; [ "x"; "x" ] ];
      (let st = Random.State.make [| 7 |] in
       Sim.Workload.uniform st ~n:4 ~m:4 ~n_vars:3);
      (let st = Random.State.make [| 8 |] in
       Sim.Workload.uniform st ~n:6 ~m:5 ~n_vars:4);
    ]
  in
  List.iter
    (fun syntax ->
      List.iter
        (fun mk ->
          let d = des syntax mk in
          let s = driver syntax mk in
          check_int "restarts agree" s.Sched.Driver.restarts
            d.Sim.Des.restarts;
          check_int "deadlocks agree" s.Sched.Driver.deadlocks
            d.Sim.Des.deadlocks)
        [
          (fun () -> Sched.Sgt.create ~syntax ());
          (fun () -> Sched.Sgt_ref.create ~syntax);
        ])
    cases;
  (* low-contention 2PL cases resolve identically under eager and lazy
     victim selection *)
  List.iter
    (fun syntax ->
      let mk () = Sched.Tpl_sched.create_2pl ~syntax () in
      let d = des syntax mk in
      let s = driver syntax mk in
      check_int "2PL restarts agree" s.Sched.Driver.restarts
        d.Sim.Des.restarts)
    [
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
      Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "z"; "x" ]; [ "y"; "z" ] ];
      Syntax.of_lists [ [ "x"; "x" ]; [ "x"; "x" ]; [ "x"; "x" ] ];
    ]

let test_des_driver_sweep () =
  (* deterministic sweep: SGT within one abort of the driver everywhere
     (service order inside a scheduling round can differ), SGT = SGT-ref
     inside the DES, and the thrash regression stays dead — before the
     fix a contended 6x5 workload burned 13457 restarts where the
     driver pays 5 *)
  for seed = 0 to 99 do
    let st = Random.State.make [| seed |] in
    let n = 2 + Random.State.int st 6 in
    let m = 2 + Random.State.int st 5 in
    let n_vars = 2 + Random.State.int st 4 in
    let syntax = Sim.Workload.uniform st ~n ~m ~n_vars in
    let d = des syntax (fun () -> Sched.Sgt.create ~syntax ()) in
    let dref = des syntax (fun () -> Sched.Sgt_ref.create ~syntax) in
    let s = driver syntax (fun () -> Sched.Sgt.create ~syntax ()) in
    check_int "SGT = SGT-ref restarts in DES" dref.Sim.Des.restarts
      d.Sim.Des.restarts;
    check_int "SGT = SGT-ref deadlocks in DES" dref.Sim.Des.deadlocks
      d.Sim.Des.deadlocks;
    check_true "SGT within one abort of driver"
      (abs (d.Sim.Des.restarts - s.Sched.Driver.restarts) <= 1);
    check_true "SGT restarts bounded" (d.Sim.Des.restarts <= n + m);
    let dtpl = des syntax (fun () -> Sched.Tpl_sched.create_2pl ~syntax ()) in
    check_true "2PL restarts bounded" (dtpl.Sim.Des.restarts <= 8 * n)
  done

(* ---------- Intq ---------- *)

let test_intq () =
  let q = Sched.Intq.create 6 in
  check_true "empty" (Sched.Intq.is_empty q);
  check_int "head of empty" (-1) (Sched.Intq.head q);
  Sched.Intq.push q 3;
  Sched.Intq.push q 1;
  Sched.Intq.push q 4;
  Sched.Intq.push q 1;
  (* duplicate: no-op *)
  check_int "length" 3 (Sched.Intq.length q);
  check_true "fifo" (Sched.Intq.to_list q = [ 3; 1; 4 ]);
  (* cursor walk agrees with to_list *)
  let rec walk i acc =
    if i < 0 then List.rev acc else walk (Sched.Intq.next q i) (i :: acc)
  in
  check_true "cursor walk" (walk (Sched.Intq.head q) [] = [ 3; 1; 4 ]);
  Sched.Intq.remove q 1;
  check_true "inner removal" (Sched.Intq.to_list q = [ 3; 4 ]);
  Sched.Intq.remove q 3;
  check_int "head after head removal" 4 (Sched.Intq.head q);
  Sched.Intq.remove q 5;
  (* absent: no-op *)
  Sched.Intq.push q 3;
  check_true "reinsert goes to tail" (Sched.Intq.to_list q = [ 4; 3 ]);
  check_true "mem" (Sched.Intq.mem q 4 && not (Sched.Intq.mem q 1));
  Sched.Intq.remove q 4;
  Sched.Intq.remove q 3;
  check_true "drained" (Sched.Intq.is_empty q);
  check_int "peek none" (-1) (Sched.Intq.head q)

let test_intq_random () =
  (* differential against a list model *)
  let st = rng 31 in
  let q = Sched.Intq.create 10 in
  let model = ref [] in
  for _ = 1 to 2000 do
    let x = Random.State.int st 10 in
    if Random.State.bool st then begin
      Sched.Intq.push q x;
      if not (List.mem x !model) then model := !model @ [ x ]
    end
    else begin
      Sched.Intq.remove q x;
      model := List.filter (fun y -> y <> x) !model
    end;
    check_true "model agrees" (Sched.Intq.to_list q = !model)
  done

let suite =
  [
    Alcotest.test_case "SGT = SGT-ref exhaustive to size 6" `Slow
      test_exhaustive_small;
    Alcotest.test_case "fixpoint sets agree" `Quick test_fixpoint_sets_agree;
    Alcotest.test_case "repeated-access regression" `Quick
      test_repeated_access_regression;
    Alcotest.test_case "DES vs driver corpus" `Quick test_des_driver_corpus;
    Alcotest.test_case "DES vs driver sweep" `Slow test_des_driver_sweep;
    Alcotest.test_case "intq basics" `Quick test_intq;
    Alcotest.test_case "intq vs list model" `Quick test_intq_random;
  ]
  @ qsuite [ prop_random_large ]
