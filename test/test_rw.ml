(* Tests for the read/write refinement (X1): the classical separations
   CSR ⊊ VSR ⊊ FSR appear exactly where blind writes and dead reads
   enter, and all three notions agree on serial histories. *)

open Util
open Core

let t_simple = [ [ Rw_model.read "x"; Rw_model.write "x" ]; [ Rw_model.read "x"; Rw_model.write "x" ] ]

let test_make_and_interleave () =
  let h = Rw_model.make t_simple in
  check_int "length" 4 (Array.length h);
  let h' = Rw_model.interleave t_simple [| 0; 0; 1; 1 |] in
  check_true "serial interleave = make" (h = h');
  check_true "wrong counts rejected"
    (try ignore (Rw_model.interleave t_simple [| 0; 0; 0; 1 |]); false
     with Invalid_argument _ -> true)

let test_lost_update_not_csr () =
  (* the classic lost update: R1(x) R2(x) W1(x) W2(x) *)
  let h = Rw_model.interleave t_simple [| 0; 1; 0; 1 |] in
  check_false "not CSR" (Rw_model.conflict_serializable 2 h);
  check_false "not VSR" (Rw_model.view_serializable 2 h);
  check_false "not FSR" (Rw_model.final_state_serializable 2 h)

let test_serial_all_serializable () =
  let h = Rw_model.make t_simple in
  check_true "CSR" (Rw_model.conflict_serializable 2 h);
  check_true "VSR" (Rw_model.view_serializable 2 h);
  check_true "FSR" (Rw_model.final_state_serializable 2 h)

let test_vsr_not_csr () =
  let n, h = Rw_model.csr_implies_vsr_witness () in
  check_false "not CSR" (Rw_model.conflict_serializable n h);
  check_true "but VSR" (Rw_model.view_serializable n h);
  check_true "and FSR" (Rw_model.final_state_serializable n h)

let test_fsr_not_vsr () =
  let n, h = Rw_model.vsr_not_fsr_witness () in
  check_false "not VSR" (Rw_model.view_serializable n h);
  check_true "but FSR" (Rw_model.final_state_serializable n h)

let test_view_facts () =
  (* W2(x) R1(x): the read reads from T2 *)
  let h =
    Rw_model.interleave
      [ [ Rw_model.read "x" ]; [ Rw_model.write "x" ] ]
      [| 1; 0 |]
  in
  let h_serial =
    Rw_model.interleave
      [ [ Rw_model.read "x" ]; [ Rw_model.write "x" ] ]
      [| 0; 1 |]
  in
  check_false "different reads-from" (Rw_model.view_equivalent 2 h h_serial);
  check_true "equivalent to itself" (Rw_model.view_equivalent 2 h h)

let test_pp () =
  let _, h = Rw_model.csr_implies_vsr_witness () in
  Alcotest.(check string) "rendering" "(R1(x), W2(x), W1(x), W3(x))"
    (Format.asprintf "%a" Rw_model.pp h)

(* Random histories over 2-3 transactions, 1-2 variables. *)
let history_gen =
  QCheck.Gen.(
    int_range 2 3 >>= fun n ->
    let tx_gen =
      list_size (int_range 1 3)
        (map2
           (fun w v ->
             let var = if v then "x" else "y" in
             if w then Rw_model.write var else Rw_model.read var)
           bool bool)
    in
    let rec build i acc = if i = 0 then return (List.rev acc)
      else tx_gen >>= fun t -> build (i - 1) (t :: acc)
    in
    build n [] >>= fun per_tx ->
    let fmt = Array.of_list (List.map List.length per_tx) in
    map
      (fun seed ->
        let st = Random.State.make [| seed |] in
        (n, Rw_model.interleave per_tx (Combin.Interleave.random st fmt)))
      int)

let arbitrary_history =
  QCheck.make ~print:(fun (_, h) -> Format.asprintf "%a" Rw_model.pp h)
    history_gen

(* The implication chain: CSR => VSR => FSR. *)
let prop_csr_implies_vsr =
  QCheck.Test.make ~name:"CSR implies VSR" ~count:300 arbitrary_history
    (fun (n, h) ->
      (not (Rw_model.conflict_serializable n h))
      || Rw_model.view_serializable n h)

let prop_vsr_implies_fsr =
  QCheck.Test.make ~name:"VSR implies FSR" ~count:300 arbitrary_history
    (fun (n, h) ->
      (not (Rw_model.view_serializable n h))
      || Rw_model.final_state_serializable n h)

(* View equivalence implies final-state equivalence (against the serial
   reference). *)
let prop_view_implies_final =
  QCheck.Test.make ~name:"view equivalence implies final-state equivalence"
    ~count:300 arbitrary_history
    (fun (n, h) ->
      let actions =
        Array.init n (fun _ -> [])
        |> fun buckets ->
        Array.iter
          (fun (s : Rw_model.step) ->
            buckets.(s.Rw_model.id.Names.tx) <-
              buckets.(s.Rw_model.id.Names.tx) @ [ s.Rw_model.action ])
          h;
        buckets
      in
      let serial =
        Rw_model.make (Array.to_list actions)
      in
      (not (Rw_model.view_equivalent n h serial))
      || Rw_model.final_state_equivalent n h serial)

let suite =
  [
    Alcotest.test_case "make/interleave" `Quick test_make_and_interleave;
    Alcotest.test_case "lost update" `Quick test_lost_update_not_csr;
    Alcotest.test_case "serial serializable" `Quick test_serial_all_serializable;
    Alcotest.test_case "VSR not CSR witness" `Quick test_vsr_not_csr;
    Alcotest.test_case "FSR not VSR witness" `Quick test_fsr_not_vsr;
    Alcotest.test_case "view facts" `Quick test_view_facts;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
  @ qsuite [ prop_csr_implies_vsr; prop_vsr_implies_fsr; prop_view_implies_final ]

(* --- the polygraph decision procedure --- *)

let test_polygraph_witnesses () =
  let n1, w1 = Rw_model.csr_implies_vsr_witness () in
  check_true "polygraph accepts the VSR witness"
    (Rw_model.view_serializable_polygraph n1 w1);
  let n2, w2 = Rw_model.vsr_not_fsr_witness () in
  check_false "polygraph rejects the non-VSR witness"
    (Rw_model.view_serializable_polygraph n2 w2);
  let lost = Rw_model.interleave t_simple [| 0; 1; 0; 1 |] in
  check_false "polygraph rejects the lost update"
    (Rw_model.view_serializable_polygraph 2 lost)

let test_polygraph_own_write () =
  (* reading your own write must not self-loop the polygraph *)
  let per_tx = [ [ Rw_model.write "x"; Rw_model.read "x" ] ] in
  let h = Rw_model.make per_tx in
  check_true "single tx trivially VSR"
    (Rw_model.view_serializable_polygraph 1 h)

let prop_polygraph_equals_brute =
  QCheck.Test.make ~name:"polygraph = brute-force view serializability"
    ~count:400 arbitrary_history
    (fun (n, h) ->
      Rw_model.view_serializable_polygraph n h
      = Rw_model.view_serializable n h)

let suite =
  suite
  @ [
      Alcotest.test_case "polygraph witnesses" `Quick test_polygraph_witnesses;
      Alcotest.test_case "polygraph own write" `Quick test_polygraph_own_write;
    ]
  @ qsuite [ prop_polygraph_equals_brute ]
