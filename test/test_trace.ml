(* The trace-vs-stats differential suite.

   A run's event trace is a complete black-box witness: folding it with
   [Obs.Fold.counters] must reproduce the driver's reported statistics
   {e exactly} — grants, delays, restarts, deadlocks, waiting and the
   zero-delay flag — for every scheduler in the standard suite, on the
   fixed corpus and on the seeded sweep mirroring [test_sgt_diff]. The
   replayed §6 spans must tile each transaction's timeline, the Chrome
   export must be well-formed (valid JSON, per-track monotone
   timestamps, balanced B/E pairs), and the whole pipeline must be a
   deterministic function of the seed. *)

open Util
open Core

(* ---------- driver traces vs driver stats ---------- *)

let check_faithful ~label syntax arrivals =
  let fmt = Syntax.format syntax in
  let n = Array.length fmt in
  let c = Obs.Sink.Memory.create () in
  let sink = Obs.Sink.Memory.sink c in
  List.iter
    (fun (name, mk) ->
      Obs.Sink.Memory.clear c;
      let s = Sched.Driver.run ~sink (mk ()) ~fmt ~arrivals in
      let events = Obs.Sink.Memory.events c in
      let f = Obs.Fold.counters events in
      let tag what = Printf.sprintf "%s/%s %s" label name what in
      check_int (tag "grants") s.Sched.Driver.grants f.Obs.Fold.grants;
      check_int (tag "delays") s.Sched.Driver.delays f.Obs.Fold.delays;
      check_int (tag "restarts") s.Sched.Driver.restarts f.Obs.Fold.restarts;
      check_int (tag "deadlocks") s.Sched.Driver.deadlocks
        f.Obs.Fold.deadlocks;
      check_int (tag "waiting") s.Sched.Driver.waiting f.Obs.Fold.waiting;
      check_int (tag "commits") n f.Obs.Fold.commits;
      check_true (tag "zero-delay flag")
        (Obs.Fold.zero_delay f = Sched.Driver.zero_delay s);
      (* the §6 spans replayed from the same trace tile the timeline *)
      let sp = Obs.Fold.spans ~n events in
      for i = 0 to n - 1 do
        let b = Obs.Span.breakdown sp i in
        check_true (tag "span invariant")
          (b.Obs.Span.scheduling +. b.Obs.Span.waiting
           +. b.Obs.Span.execution
          = b.Obs.Span.elapsed)
      done;
      (* grant-wait observations equal the waiting stat when summed *)
      check_int (tag "wait histogram total") s.Sched.Driver.waiting
        (Obs.Hist.total (Obs.Fold.wait_histogram events)))
    (Sim.Measure.standard_suite ~sink syntax)

let corpus =
  [
    Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
    Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "z"; "x" ]; [ "y"; "z" ] ];
    Syntax.of_lists [ [ "x"; "x" ]; [ "x"; "x" ]; [ "x"; "x" ] ];
    (let st = Random.State.make [| 7 |] in
     Sim.Workload.uniform st ~n:4 ~m:4 ~n_vars:3);
    (let st = Random.State.make [| 8 |] in
     Sim.Workload.uniform st ~n:6 ~m:5 ~n_vars:4);
  ]

let round_robin fmt =
  let n = Array.length fmt in
  let acc = ref [] in
  let maxm = Array.fold_left max 0 fmt in
  for j = 0 to maxm - 1 do
    for i = 0 to n - 1 do
      if j < fmt.(i) then acc := i :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let test_corpus () =
  List.iteri
    (fun k syntax ->
      let fmt = Syntax.format syntax in
      let label = Printf.sprintf "corpus%d" k in
      check_faithful ~label syntax (round_robin fmt);
      let st = rng (100 + k) in
      for _ = 1 to 5 do
        check_faithful ~label syntax (Combin.Interleave.random st fmt)
      done)
    corpus

let test_sweep () =
  (* the [test_sgt_diff] sweep generator, replayed for trace fidelity:
     every scheduler of the suite, 100 seeded workloads *)
  for seed = 0 to 99 do
    let st = Random.State.make [| seed |] in
    let n = 2 + Random.State.int st 6 in
    let m = 2 + Random.State.int st 5 in
    let n_vars = 2 + Random.State.int st 4 in
    let syntax = Sim.Workload.uniform st ~n ~m ~n_vars in
    let arrivals = Combin.Interleave.random st (Syntax.format syntax) in
    check_faithful ~label:(Printf.sprintf "sweep%d" seed) syntax arrivals
  done

(* ---------- DES traces vs DES stats ---------- *)

let des_params =
  { Sim.Des.arrival_rate = 1e6; exec_time = 0.001; sched_time = 1.; seed = 1 }

let test_des_fold () =
  List.iter
    (fun syntax ->
      let n = Syntax.n_transactions syntax in
      List.iter
        (fun (name, mk) ->
          let c = Obs.Sink.Memory.create () in
          let d =
            Sim.Des.run
              ~sink:(Obs.Sink.Memory.sink c)
              des_params ~syntax ~scheduler:mk
          in
          let f = Obs.Fold.counters (Obs.Sink.Memory.events c) in
          let tag what = Printf.sprintf "des/%s %s" name what in
          check_int (tag "restarts") d.Sim.Des.restarts f.Obs.Fold.restarts;
          check_int (tag "deadlocks") d.Sim.Des.deadlocks
            f.Obs.Fold.deadlocks;
          check_int (tag "commits") n f.Obs.Fold.commits)
        [
          ("sgt", fun () -> Sched.Sgt.create ~syntax ());
          ("2pl", fun () -> Sched.Tpl_sched.create_2pl ~syntax ());
          ("to", fun () -> Sched.Timestamp.create ~syntax ());
        ])
    corpus

(* ---------- determinism ---------- *)

let spec ?(label = "xy,yx") ?(seed = 42) ?(only = []) () =
  {
    Sim.Trace_run.label;
    syntax = Analysis.Analyze.parse_syntax label;
    seed;
    capacity = Sim.Trace_run.default_capacity;
    samples = 200;
    only;
  }

let test_determinism () =
  (* same seed, same everything: arrivals, workloads, traces, summaries *)
  let fmt = [| 3; 2; 4 |] in
  let a1 = Combin.Interleave.random (Random.State.make [| 5 |]) fmt in
  let a2 = Combin.Interleave.random (Random.State.make [| 5 |]) fmt in
  check_true "arrivals reproducible" (a1 = a2);
  let w st = Sim.Workload.uniform st ~n:5 ~m:4 ~n_vars:3 in
  let s1 = w (Random.State.make [| 9 |]) in
  let s2 = w (Random.State.make [| 9 |]) in
  check_true "workload reproducible"
    (Format.asprintf "%a" Syntax.pp s1 = Format.asprintf "%a" Syntax.pp s2);
  let sp = spec ~label:"xyz,zx,yz" ~seed:7 () in
  let r1 = Sim.Trace_run.execute sp in
  let r2 = Sim.Trace_run.execute sp in
  List.iter2
    (fun a b ->
      check_true
        ("chrome byte-identical: " ^ a.Sim.Trace_run.name)
        (a.Sim.Trace_run.chrome = b.Sim.Trace_run.chrome))
    r1 r2;
  check_true "json summary byte-identical"
    (Sim.Trace_run.json_summary sp r1 = Sim.Trace_run.json_summary sp r2);
  check_true "text summary byte-identical"
    (Format.asprintf "%a" Sim.Trace_run.pp_summary r1
    = Format.asprintf "%a" Sim.Trace_run.pp_summary r2);
  (* the summary is well-formed JSON and opens with the version stamp *)
  let json = Sim.Trace_run.json_summary sp r1 in
  check_true "json summary well-formed"
    (Sim.Sched_bench.json_well_formed json);
  let stamp =
    Printf.sprintf "{\"schema_version\": %d," Sim.Trace_run.schema_version
  in
  check_true "json summary carries schema_version"
    (String.length json >= String.length stamp
    && String.sub json 0 (String.length stamp) = stamp)

(* ---------- pipeline end-to-end: mismatches, slugs, Chrome shape ---------- *)

let test_pipeline_faithful () =
  List.iter
    (fun label ->
      let runs = Sim.Trace_run.execute (spec ~label ()) in
      List.iter
        (fun r ->
          check_true
            (label ^ "/" ^ r.Sim.Trace_run.name ^ " trace matches stats")
            (Sim.Trace_run.mismatches r = []);
          check_int
            (label ^ "/" ^ r.Sim.Trace_run.name ^ " complete trace")
            0 r.Sim.Trace_run.dropped)
        runs)
    [ "xy,yx"; "xxy,yx,xyy"; "xyz,zx,yz" ]

let test_truncated_ring () =
  (* a ring too small for the run: the fold must survive a trace that
     starts mid-stream (grants without submissions, commits without
     lifecycles), the differential is declared uncheckable, and the
     Chrome export stays well-formed *)
  let sp = { (spec ~label:"xxy,yx,xyy" ()) with Sim.Trace_run.capacity = 4 } in
  let runs = Sim.Trace_run.execute sp in
  List.iter
    (fun r ->
      check_true (r.Sim.Trace_run.name ^ " ring truncated")
        (r.Sim.Trace_run.dropped > 0);
      check_int
        (r.Sim.Trace_run.name ^ " ring holds capacity")
        4
        (List.length r.Sim.Trace_run.events);
      check_true (r.Sim.Trace_run.name ^ " truncated not checkable")
        (Sim.Trace_run.mismatches r = []);
      check_true (r.Sim.Trace_run.name ^ " truncated chrome valid")
        (Sim.Sched_bench.json_well_formed r.Sim.Trace_run.chrome))
    runs;
  ignore (Sim.Trace_run.json_summary sp runs);
  ignore (Format.asprintf "%a" Sim.Trace_run.pp_summary runs)

let test_slugs () =
  let runs = Sim.Trace_run.execute (spec ()) in
  check_true "suite slugs"
    (List.map (fun r -> r.Sim.Trace_run.slug) runs
    = [
        "serial"; "2pl"; "2pl-prime"; "preclaim"; "sgt"; "to"; "sharded";
        "mvcc"; "si"; "ssi"; "semantic";
      ]);
  (* scheduler selection accepts slugs and is case-insensitive *)
  let picked = Sim.Trace_run.execute (spec ~only:[ "SGT"; "2pl-prime" ] ()) in
  check_true "selection by name and slug"
    (List.map (fun r -> r.Sim.Trace_run.name) picked = [ "SGT"; "2PL'" ]);
  check_true "unknown scheduler rejected"
    (try
       ignore (Sim.Trace_run.execute (spec ~only:[ "nope" ] ()));
       false
     with Invalid_argument _ -> true)

let test_chrome_well_formed () =
  List.iter
    (fun label ->
      List.iter
        (fun r ->
          let name = label ^ "/" ^ r.Sim.Trace_run.name in
          check_true (name ^ " chrome is valid JSON")
            (Sim.Sched_bench.json_well_formed r.Sim.Trace_run.chrome);
          let entries = Obs.Trace_export.entries r.Sim.Trace_run.events in
          (* timestamps non-decreasing per track, B/E balanced per track *)
          let last : (int, float) Hashtbl.t = Hashtbl.create 8 in
          let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun (e : Obs.Trace_export.entry) ->
              if e.Obs.Trace_export.ph <> 'M' then begin
                (match Hashtbl.find_opt last e.Obs.Trace_export.tid with
                | Some prev ->
                  check_true
                    (name ^ " per-track monotone ts")
                    (e.Obs.Trace_export.ts >= prev)
                | None -> ());
                Hashtbl.replace last e.Obs.Trace_export.tid
                  e.Obs.Trace_export.ts;
                let stack =
                  Option.value ~default:[]
                    (Hashtbl.find_opt stacks e.Obs.Trace_export.tid)
                in
                match e.Obs.Trace_export.ph with
                | 'B' ->
                  Hashtbl.replace stacks e.Obs.Trace_export.tid
                    (e.Obs.Trace_export.name :: stack)
                | 'E' -> (
                  match stack with
                  | top :: rest ->
                    check_true (name ^ " E matches innermost B")
                      (top = e.Obs.Trace_export.name);
                    Hashtbl.replace stacks e.Obs.Trace_export.tid rest
                  | [] -> check_true (name ^ " E without B") false)
                | _ -> ()
              end)
            entries;
          Hashtbl.iter
            (fun _ stack -> check_true (name ^ " all B closed") (stack = []))
            stacks)
        (Sim.Trace_run.execute (spec ~label ())))
    [ "xy,yx"; "xyz,zx,yz" ]

(* ---------- golden summary ---------- *)

let test_golden_summary () =
  (* the exact table [ccopt trace --syntax xy,yx --seed 42] prints; the
     expectation lives in trace_summary.expected next to this file *)
  let runs = Sim.Trace_run.execute (spec ()) in
  let got = Format.asprintf "%a" Sim.Trace_run.pp_summary runs in
  let path =
    (* dune runtest runs inside test/; dune exec from the root *)
    if Sys.file_exists "trace_summary.expected" then "trace_summary.expected"
    else "test/trace_summary.expected"
  in
  let ic = open_in path in
  let len = in_channel_length ic in
  let want = really_input_string ic len in
  close_in ic;
  Alcotest.(check string) "golden §6 summary" want got

let suite =
  [
    Alcotest.test_case "fold = stats on corpus" `Quick test_corpus;
    Alcotest.test_case "fold = stats on 100-seed sweep" `Slow test_sweep;
    Alcotest.test_case "fold = DES stats on corpus" `Quick test_des_fold;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "pipeline traces match stats" `Quick
      test_pipeline_faithful;
    Alcotest.test_case "truncated ring survives folds" `Quick
      test_truncated_ring;
    Alcotest.test_case "slugs and scheduler selection" `Quick test_slugs;
    Alcotest.test_case "chrome export well-formed" `Quick
      test_chrome_well_formed;
    Alcotest.test_case "golden summary table" `Quick test_golden_summary;
  ]
