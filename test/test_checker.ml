(* The black-box consistency checker ([Analysis.Checker]) against its
   independent oracles.

   Three layers of evidence, mirroring DESIGN.md "Checking histories":
   hand-built histories with known verdicts at every level (write skew
   sits exactly between SI and SER, the classic cross read between
   causal and everything below), the exhaustive small-universe
   differential against the Herbrand oracle plus brute-force
   permutation ground truth ([Sim.Check_fuzz.exhaustive]), and the
   100-seed every-scheduler sweep in which each committed history must
   check out at every level up to the engine's declared one, the
   trace-reconstructed schedule must equal the driver's, every seeded
   mutant of a serializable history must be rejected with a replaying
   witness, and SI must be caught committing at least one write skew
   ([Sim.Check_fuzz.sweep]). *)

open Util
open Core
module H = Analysis.History
module C = Analysis.Checker

let syn = Analysis.Analyze.parse_syntax

let hist spec digits =
  let syntax = syn spec in
  let h = Schedule.of_interleaving (Analysis.Analyze.parse_interleaving digits) in
  check_true "schedule of the syntax"
    (Schedule.is_schedule_of (Syntax.format syntax) h);
  H.of_schedule ~label:(spec ^ " @ " ^ digits) syntax h

let verdicts h = List.map (fun r -> (r.C.level, r.C.verdict)) (C.check_all h)

let is_violation = function C.Violation _ -> true | _ -> false
let is_consistent = function C.Consistent _ -> true | _ -> false

(* every Violation must carry a witness the oracles replay; every
   Consistent order must validate *)
let replayable label h (r : C.result) =
  match r.C.verdict with
  | C.Consistent order ->
    check_true (label ^ " order validates") (C.validate_order h r.C.level order)
  | C.Violation (C.Cycle edges) ->
    check_true (label ^ " cycle replays") (C.replay_cycle h r.C.level edges)
  | C.Violation (C.No_order _) ->
    let checked =
      if r.C.level = C.Snapshot_isolation then C.split_si h else h
    in
    if H.n checked <= 8 then
      check_false (label ^ " no-order confirmed") (C.exists_order h r.C.level)
  | C.Violation w ->
    check_true (label ^ " well-formedness witness re-derives")
      (List.mem w (C.well_formed h))
  | C.Unknown _ -> ()

let check_replayable label h = List.iter (replayable label h) (C.check_all h)

(* ---------- hand-built verdict fixtures ---------- *)

let test_classic_cross () =
  (* xy,yx @ 0101: T1 and T2 each read what the other overwrites — the
     textbook non-serializable interleaving, inconsistent at every
     level down to RC *)
  let h = hist "xy,yx" "0101" in
  List.iter
    (fun (level, v) ->
      check_true (C.level_name level ^ " violated") (is_violation v))
    (verdicts h);
  check_replayable "cross" h;
  (* the serial orders of the same syntax are consistent everywhere *)
  List.iter
    (fun digits ->
      let h = hist "xy,yx" digits in
      List.iter
        (fun (level, v) ->
          check_true
            (digits ^ " " ^ C.level_name level ^ " consistent")
            (is_consistent v))
        (verdicts h);
      check_replayable digits h)
    [ "0011"; "1100" ]

let test_write_skew () =
  (* both read both variables' initial values, then write disjointly:
     consistent under causal and SI, non-serializable — the level that
     separates SI from SER *)
  let init = H.initial_value in
  let h =
    H.make ~label:"write-skew"
      [
        [ [ { H.kind = H.R; var = "x"; value = init };
            { H.kind = H.R; var = "y"; value = init };
            { H.kind = H.W; var = "x"; value = 1 } ] ];
        [ [ { H.kind = H.R; var = "x"; value = init };
            { H.kind = H.R; var = "y"; value = init };
            { H.kind = H.W; var = "y"; value = 2 } ] ];
      ]
  in
  List.iter
    (fun (level, v) ->
      let name = C.level_name level in
      match level with
      | C.Serializability ->
        check_true ("write skew " ^ name) (is_violation v)
      | _ -> check_true ("write skew " ^ name) (is_consistent v))
    (verdicts h);
  check_replayable "write-skew" h

let test_causal_violation () =
  (* T2 reads T1's write of x in session order after it, but a third
     session reads the two writes against causality: y's read sees T2
     while x's read still sees the initial value, yet T2 causally
     depends on T1's x-write. Violates causal (and above), passes RA. *)
  let init = H.initial_value in
  let h =
    H.make ~label:"causal-skip"
      [
        [ [ { H.kind = H.W; var = "x"; value = 1 } ];
          [ { H.kind = H.W; var = "y"; value = 2 } ] ];
        [ [ { H.kind = H.R; var = "y"; value = 2 };
            { H.kind = H.R; var = "x"; value = init };
            { H.kind = H.W; var = "z"; value = 3 } ] ];
      ]
  in
  List.iter
    (fun (level, v) ->
      let name = C.level_name level in
      match level with
      | C.Read_committed | C.Read_atomic ->
        check_true ("causal-skip " ^ name) (is_consistent v)
      | _ -> check_true ("causal-skip " ^ name) (is_violation v))
    (verdicts h);
  check_replayable "causal-skip" h

let test_level_ladder () =
  (* SER => SI => causal => RA => RC on a mixed bag of histories *)
  let order l =
    let rec idx i = function
      | [] -> assert false
      | x :: _ when x = l -> i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 C.levels
  in
  List.iter
    (fun h ->
      let vs = verdicts h in
      List.iter
        (fun (l1, v1) ->
          List.iter
            (fun (l2, v2) ->
              if order l1 <= order l2 && is_violation v1 then
                check_true
                  (H.label h ^ ": violation at " ^ C.level_name l1
                 ^ " implies violation at " ^ C.level_name l2)
                  (is_violation v2))
            vs)
        vs)
    [ hist "xy,yx" "0101"; hist "xx,x" "010"; hist "xyz,zx,yz" "0102012" ]

(* ---------- trace reconstruction ---------- *)

let run_history ?(capacity = Sim.Trace_run.default_capacity) syntax seed =
  let fmt = Syntax.format syntax in
  let st = Random.State.make [| seed |] in
  let arrivals = Combin.Interleave.random st fmt in
  let ring = Obs.Sink.Ring.create ~capacity in
  let sink = Obs.Sink.Ring.sink ring in
  let e = Sched.Registry.find_exn "sgt" in
  let stats =
    Sched.Driver.run ~sink (e.Sched.Registry.make ~sink syntax) ~fmt ~arrivals
  in
  (stats, Obs.Sink.Ring.events ring, Obs.Sink.Ring.dropped ring)

let test_fold_matches_driver () =
  let syntax = syn "xyz,zx,yz" in
  let stats, events, dropped = run_history syntax 42 in
  check_int "complete ring" 0 dropped;
  let fh = Obs.Fold.history events in
  check_false "not truncated" fh.Obs.Fold.truncated;
  let want =
    List.map
      (fun s -> (s.Names.tx, s.Names.idx))
      (Array.to_list stats.Sched.Driver.output)
  in
  check_true "reconstructed schedule = driver output" (fh.Obs.Fold.steps = want);
  check_true "all committed"
    (fh.Obs.Fold.commits = List.init (Syntax.n_transactions syntax) Fun.id);
  let h = H.of_steps ~complete:true syntax fh.Obs.Fold.steps in
  List.iter
    (fun (level, v) ->
      check_true ("sgt run " ^ C.level_name level) (is_consistent v))
    (verdicts h)

let test_truncated_unknown () =
  (* a ring too small for the run: the reconstruction is not a faithful
     witness, so the checker must answer Unknown at every level — never
     a false Consistent or Violation *)
  let syntax = syn "xxy,yx,xyy" in
  let _, events, dropped = run_history ~capacity:4 syntax 42 in
  check_true "ring truncated" (dropped > 0);
  let fh = Obs.Fold.history events in
  let complete = dropped = 0 && not fh.Obs.Fold.truncated in
  check_false "reconstruction incomplete" complete;
  let h = H.of_steps ~complete syntax fh.Obs.Fold.steps in
  List.iter
    (fun (level, v) ->
      check_true
        ("truncated " ^ C.level_name level ^ " unknown")
        (match v with C.Unknown _ -> true | _ -> false))
    (verdicts h)

let test_midstream_flag () =
  (* even without the ring's drop counter, an execution stream that
     starts mid-transaction is evidence of truncation on its own *)
  let _, events, dropped = run_history (syn "xyz,zx,yz") 7 in
  check_int "baseline complete" 0 dropped;
  let rec chop k l = if k = 0 then l else chop (k - 1) (List.tl l) in
  let fh = Obs.Fold.history (chop 5 events) in
  check_true "mid-stream trace flagged" fh.Obs.Fold.truncated

(* ---------- mutations ---------- *)

let test_mutants_rejected () =
  let h =
    H.generate ~seed:11 ~sessions:3 ~txns:12 ~steps:3 ~n_vars:4
  in
  List.iter
    (fun (level, v) ->
      check_true ("generated " ^ C.level_name level) (is_consistent v))
    (verdicts h);
  List.iter
    (fun kind ->
      let name = H.mutation_name kind in
      match H.mutate kind (rng 3) h with
      | None -> Alcotest.fail (name ^ " found no site on a 12-txn history")
      | Some bad -> (
        let r = C.check bad C.Serializability in
        match r.C.verdict with
        | C.Violation _ -> replayable ("mutant " ^ name) bad r
        | C.Consistent _ -> Alcotest.fail (name ^ " mutant accepted")
        | C.Unknown msg -> Alcotest.fail (name ^ " mutant unknown: " ^ msg)))
    H.mutations

(* ---------- the fuzzing differentials ---------- *)

let test_exhaustive () =
  let o = Sim.Check_fuzz.exhaustive () in
  List.iter print_endline o.Sim.Check_fuzz.failures;
  check_true "exhaustive failures" (o.Sim.Check_fuzz.failures = []);
  check_true "herbrand coverage" (o.Sim.Check_fuzz.herbrand_agreed > 100);
  check_int "exhaustive mutants rejected" o.Sim.Check_fuzz.mutants_total
    o.Sim.Check_fuzz.mutants_rejected

let test_sweep () =
  let o = Sim.Check_fuzz.sweep ~seeds:100 () in
  List.iter print_endline o.Sim.Check_fuzz.failures;
  check_true "sweep failures" (o.Sim.Check_fuzz.failures = []);
  check_int "sweep runs"
    (100 * List.length (Sim.Check_fuzz.engines (syn "xy,yx")))
    o.Sim.Check_fuzz.runs;
  check_true "sweep mutants exist" (o.Sim.Check_fuzz.mutants_total > 0);
  check_int "sweep mutants rejected" o.Sim.Check_fuzz.mutants_total
    o.Sim.Check_fuzz.mutants_rejected;
  check_true "sweep herbrand coverage" (o.Sim.Check_fuzz.herbrand_agreed > 100);
  check_true "si write skew reachable" (o.Sim.Check_fuzz.si_write_skews > 0)

let suite =
  [
    Alcotest.test_case "classic cross at every level" `Quick
      test_classic_cross;
    Alcotest.test_case "write skew separates SI from SER" `Quick
      test_write_skew;
    Alcotest.test_case "causal violation above RA" `Quick
      test_causal_violation;
    Alcotest.test_case "level ladder monotone" `Quick test_level_ladder;
    Alcotest.test_case "trace reconstruction = driver output" `Quick
      test_fold_matches_driver;
    Alcotest.test_case "truncated trace checks unknown" `Quick
      test_truncated_unknown;
    Alcotest.test_case "mid-stream trace flagged" `Quick test_midstream_flag;
    Alcotest.test_case "mutants rejected with witnesses" `Quick
      test_mutants_rejected;
    Alcotest.test_case "exhaustive differential vs Herbrand" `Quick
      test_exhaustive;
    Alcotest.test_case "100-seed every-scheduler sweep" `Slow test_sweep;
  ]
