(* Tests for the online schedulers: fixpoint sets match the theory
   (serial scheduler = serial schedules, SGT = SR(T), 2PL in between),
   outputs are always correct, and the driver preserves work. *)

open Util
open Core

let fmt22 = [| 2; 2 |]
let hot = Examples.hot_spot 2 2
let two_var = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ]

let run_serial fmt arrivals =
  Sched.Driver.run (Sched.Serial_sched.create ~fmt) ~fmt ~arrivals

let test_serial_passes_serial () =
  let arrivals = [| 0; 0; 1; 1 |] in
  let s = run_serial fmt22 arrivals in
  check_true "zero delay" (Sched.Driver.zero_delay s);
  check_true "output = input"
    (Schedule.equal s.Sched.Driver.output (Schedule.of_interleaving arrivals))

let test_serial_delays_interleaved () =
  let arrivals = [| 0; 1; 0; 1 |] in
  let s = run_serial fmt22 arrivals in
  check_false "delayed" (Sched.Driver.zero_delay s);
  check_true "output serial" (Schedule.is_serial s.Sched.Driver.output);
  check_true "output legal" (Schedule.is_schedule_of fmt22 s.Sched.Driver.output)

let test_serial_fixpoint () =
  (* Theorem 2 realised: the serial scheduler's fixpoint set is exactly
     the serial schedules *)
  let fp = Sched.Driver.fixpoint_of (fun () -> Sched.Serial_sched.create ~fmt:fmt22) fmt22 in
  let serial = Schedule.all_serial fmt22 in
  check_int "two serial schedules" (List.length serial) (List.length fp);
  List.iter (fun h -> check_true "serial" (Schedule.is_serial h)) fp

let test_sgt_fixpoint_is_sr () =
  (* Theorem 3 realised: SGT's fixpoint set is exactly SR(T) *)
  List.iter
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let fp = Sched.Driver.fixpoint_of (fun () -> Sched.Sgt.create ~syntax ()) fmt in
      let sr = Fixpoint.sr_only syntax in
      check_int "same size" (List.length sr) (List.length fp);
      check_true "same set" (Fixpoint.subset fp sr && Fixpoint.subset sr fp))
    [ hot; two_var; Examples.fig1.System.syntax; Examples.indep ]

let test_sgt_outputs_serializable () =
  let st = rng 11 in
  for _ = 1 to 50 do
    let arrivals = Combin.Interleave.random st [| 2; 2; 2 |] in
    let syntax = Examples.hot_spot 3 2 in
    let s = Sched.Driver.run (Sched.Sgt.create ~syntax ()) ~fmt:[| 2; 2; 2 |] ~arrivals in
    check_true "legal output"
      (Schedule.is_schedule_of [| 2; 2; 2 |] s.Sched.Driver.output);
    check_true "serializable output"
      (Conflict.serializable syntax s.Sched.Driver.output)
  done

let test_2pl_fixpoint_between () =
  (* serial ⊆ 2PL-fixpoint ⊆ SR, with the right inclusion strict:
     (T11, T21, T12) is serializable (T1 → T2 on x only) but 2PL still
     holds T1's x-lock when T21 arrives. *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "x" ] ] in
  let fmt = Syntax.format syntax in
  let fp_2pl =
    Sched.Driver.fixpoint_of (fun () -> Sched.Tpl_sched.create_2pl ~syntax ()) fmt
  in
  let serial = Schedule.all_serial fmt in
  let sr = Fixpoint.sr_only syntax in
  check_true "serial inside 2PL" (Fixpoint.subset serial fp_2pl);
  check_true "2PL inside SR" (Fixpoint.subset fp_2pl sr);
  check_true "2PL is not optimal as a scheduler (Sec 5.4)"
    (List.length fp_2pl < List.length sr)

let test_2pl_matches_greedy_passes () =
  (* the scheduler's zero-delay set = Locked.passes *)
  let syntax = two_var in
  let fmt = Syntax.format syntax in
  let locked = Locking.Two_phase.apply syntax in
  List.iter
    (fun h ->
      let s =
        Sched.Driver.run
          (Sched.Tpl_sched.create_2pl ~syntax ())
          ~fmt ~arrivals:(Schedule.to_interleaving h)
      in
      check_true "scheduler = greedy passes"
        (Sched.Driver.zero_delay s = Locking.Locked.passes locked h))
    (Schedule.all fmt)

let test_2pl_deadlock_resolved () =
  (* opposed lock orders: x,y vs y,x interleaved = deadlock; the driver
     must abort a victim and still complete *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let s =
    Sched.Driver.run
      (Sched.Tpl_sched.create_2pl ~syntax ())
      ~fmt:[| 2; 2 |] ~arrivals:[| 0; 1; 0; 1 |]
  in
  check_true "completed legally"
    (Schedule.is_schedule_of [| 2; 2 |] s.Sched.Driver.output);
  check_true "a deadlock happened" (s.Sched.Driver.deadlocks >= 1);
  check_true "serializable anyway" (Conflict.serializable syntax s.Sched.Driver.output)

let test_default_victim_youngest () =
  (* The head-of-list default victim is wound-wait-correct because the
     driver presents the stuck list youngest first (see
     [Scheduler.make]).  Two independent SGT cycles block T0 and T2
     simultaneously; T2 arrived later, so T2 must be the first deadlock
     victim — aborting the older T0 first would be a seniority
     inversion. *)
  let syntax =
    Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ]; [ "a"; "b" ]; [ "b"; "a" ] ]
  in
  let fmt = Syntax.format syntax in
  let collector = Obs.Sink.Memory.create () in
  let s =
    Sched.Driver.run
      ~sink:(Obs.Sink.Memory.sink collector)
      (Sched.Sgt.create ~syntax ())
      ~fmt
      ~arrivals:[| 0; 1; 1; 0; 2; 3; 3; 2 |]
  in
  check_true "completed legally" (Schedule.is_schedule_of fmt s.Sched.Driver.output);
  check_true "both cycles stalled" (s.Sched.Driver.deadlocks >= 2);
  let victims =
    List.filter_map
      (fun (_, e) ->
        match e with
        | Obs.Event.Aborted { tx; reason = Obs.Event.Deadlock } -> Some tx
        | _ -> None)
      (Obs.Sink.Memory.events collector)
  in
  check_int "youngest blocked aborted first" 2 (List.hd victims);
  (* the head pick itself, via a scheduler built without ~victim *)
  let s =
    Sched.Scheduler.make ~name:"v"
      ~attempt:(fun _ -> Sched.Scheduler.Grant)
      ~commit:(fun _ -> ())
      ()
  in
  check_true "default victim = head"
    (s.Sched.Scheduler.victim [ 3; 1 ] = Some 3
    && s.Sched.Scheduler.victim [] = None)

let test_to_restarts () =
  (* arrival order T1 first gives T1 the older timestamp; T2 touching x
     first then forces T1 to restart *)
  let syntax = Examples.hot_spot 2 1 in
  let s =
    Sched.Driver.run
      (Sched.Timestamp.create ~syntax ())
      ~fmt:[| 1; 1 |] ~arrivals:[| 0; 1 |]
  in
  check_true "no restart in ts order" (s.Sched.Driver.restarts = 0);
  (* reversed arrival: T2 requests first (gets ts 1), then T1 (ts 2);
     both still granted: watermark moves up; no restart either. Force a
     restart with three transactions racing on x via fixpoint scan *)
  let syntax3 = Examples.hot_spot 2 2 in
  let restarts = ref 0 in
  List.iter
    (fun h ->
      let s =
        Sched.Driver.run
          (Sched.Timestamp.create ~syntax:syntax3 ())
          ~fmt:[| 2; 2 |] ~arrivals:(Schedule.to_interleaving h)
      in
      restarts := !restarts + s.Sched.Driver.restarts;
      check_true "legal output"
        (Schedule.is_schedule_of [| 2; 2 |] s.Sched.Driver.output);
      check_true "serializable output"
        (Conflict.serializable syntax3 s.Sched.Driver.output))
    (Schedule.all [| 2; 2 |]);
  check_true "some interleaving forces a restart" (!restarts > 0)

let test_to_fixpoint_subset_sr () =
  let syntax = two_var in
  let fmt = Syntax.format syntax in
  let fp = Sched.Driver.fixpoint_of (fun () -> Sched.Timestamp.create ~syntax ()) fmt in
  check_true "TO fixpoint inside SR" (Fixpoint.subset fp (Fixpoint.sr_only syntax))

let test_assertional_beyond_sr () =
  (* Figure 1's history is NOT serializable, so SGT delays it — but with
     integrity constraints that say nothing about x, the assertional
     scheduler passes it (the Kung-Lehman/Lamport §6 point). *)
  let sys =
    System.make ~ic:(System.Pred (Expr.Ast.bool true))
      Examples.fig1.System.syntax Examples.fig1.System.interp
  in
  let fmt = System.format sys in
  let arrivals = Schedule.to_interleaving Examples.fig1_history in
  let sgt = Sched.Driver.run (Sched.Sgt.create ~syntax:sys.System.syntax ()) ~fmt ~arrivals in
  check_false "SGT delays fig1 history" (Sched.Driver.zero_delay sgt);
  let sched, final =
    Sched.Assertional.create ~system:sys ~arcs:(Sched.Assertional.ic_arcs sys)
      ~initial:(State.of_ints [ ("x", 0) ])
      ()
  in
  let s = Sched.Driver.run sched ~fmt ~arrivals in
  check_true "assertional passes it" (Sched.Driver.zero_delay s);
  (* and the final state is what direct execution gives *)
  check_true "state matches execution"
    (State.equal (final ())
       (Exec.run sys (State.of_ints [ ("x", 0) ]) Examples.fig1_history))

let test_assertional_protects () =
  (* T1's mid-arc assertion pins x = 1; T2 wants to set x = 5 and must
     wait until T1 finishes. *)
  let open Expr.Ast in
  let syntax = Syntax.of_lists [ [ "x"; "x" ]; [ "x" ] ] in
  let sys =
    System.make syntax
      [|
        [| int 1; int 0 |];   (* T1: x <- 1 ; x <- 0 *)
        [| int 5 |];          (* T2: x <- 5 *)
      |]
  in
  let arcs =
    [|
      [| bool true; Eq (Global "x", int 1); bool true |];
      [| bool true; bool true |];
    |]
  in
  let sched, final =
    Sched.Assertional.create ~system:sys ~arcs
      ~initial:(State.of_ints [ ("x", 0) ]) ()
  in
  let s = Sched.Driver.run sched ~fmt:[| 2; 1 |] ~arrivals:[| 0; 1; 0 |] in
  check_false "T2 delayed" (Sched.Driver.zero_delay s);
  (* T21 must come after T12 in the output *)
  let pos id =
    let found = ref (-1) in
    Array.iteri
      (fun k s -> if Names.equal_step s id then found := k)
      s.Sched.Driver.output;
    !found
  in
  check_true "T21 after T12" (pos (Names.step 1 0) > pos (Names.step 0 1));
  check_true "final x = 5"
    (Expr.Value.equal (State.get (final ()) "x") (Expr.Value.Int 5))

let test_driver_waiting_metric () =
  let arrivals = [| 0; 1; 0; 1 |] in
  let s = run_serial fmt22 arrivals in
  check_true "waiting positive when delayed" (s.Sched.Driver.waiting > 0);
  let s' = run_serial fmt22 [| 0; 0; 1; 1 |] in
  check_int "no waiting on fixpoint" 0 s'.Sched.Driver.waiting

(* Property: the driver always completes with a legal schedule, for
   every scheduler, on random arrival streams. *)
let prop_driver_total =
  QCheck.Test.make ~name:"driver completes legally for all schedulers"
    ~count:60
    (QCheck.make
       ~print:(fun (s, il) ->
         Format.asprintf "%a / %s" Syntax.pp s
           (String.concat "" (List.map string_of_int (Array.to_list il))))
       QCheck.Gen.(
         syntax_gen ~max_n:3 ~max_m:3 ~n_vars:2 >>= fun syntax ->
         map
           (fun seed ->
             let st = Random.State.make [| seed |] in
             (syntax, Combin.Interleave.random st (Syntax.format syntax)))
           int))
    (fun (syntax, arrivals) ->
      let fmt = Syntax.format syntax in
      let mks =
        [
          (fun () -> Sched.Serial_sched.create ~fmt);
          (fun () -> Sched.Sgt.create ~syntax ());
          (fun () -> Sched.Tpl_sched.create_2pl ~syntax ());
          (fun () -> Sched.Timestamp.create ~syntax ());
        ]
      in
      List.for_all
        (fun mk ->
          let s = Sched.Driver.run (mk ()) ~fmt ~arrivals in
          Schedule.is_schedule_of fmt s.Sched.Driver.output)
        mks)

(* Property: SGT's output is always conflict-serializable. *)
let prop_sgt_correct =
  QCheck.Test.make ~name:"SGT outputs serializable (random)" ~count:80
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      let fmt = Syntax.format syntax in
      let s =
        Sched.Driver.run (Sched.Sgt.create ~syntax ()) ~fmt
          ~arrivals:(Schedule.to_interleaving h)
      in
      Conflict.serializable syntax s.Sched.Driver.output)

(* Property: 2PL scheduler outputs serializable too. *)
let prop_2pl_correct =
  QCheck.Test.make ~name:"2PL scheduler outputs serializable (random)"
    ~count:80
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      let fmt = Syntax.format syntax in
      let s =
        Sched.Driver.run
          (Sched.Tpl_sched.create_2pl ~syntax ())
          ~fmt ~arrivals:(Schedule.to_interleaving h)
      in
      Conflict.serializable syntax s.Sched.Driver.output)

(* Property: fixpoint inclusions serial ⊆ 2PL ⊆ SGT hold on random
   syntaxes. *)
let prop_fixpoint_chain =
  QCheck.Test.make ~name:"fixpoint chain serial ⊆ 2PL ⊆ SGT" ~count:20
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:3 ~n_vars:2))
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let fp mk = Sched.Driver.fixpoint_of mk fmt in
      let serial = fp (fun () -> Sched.Serial_sched.create ~fmt) in
      let tpl = fp (fun () -> Sched.Tpl_sched.create_2pl ~syntax ()) in
      let sgt = fp (fun () -> Sched.Sgt.create ~syntax ()) in
      Fixpoint.subset serial tpl && Fixpoint.subset tpl sgt)

let suite =
  [
    Alcotest.test_case "serial passes serial" `Quick test_serial_passes_serial;
    Alcotest.test_case "serial delays interleaved" `Quick test_serial_delays_interleaved;
    Alcotest.test_case "serial fixpoint" `Quick test_serial_fixpoint;
    Alcotest.test_case "SGT fixpoint = SR" `Quick test_sgt_fixpoint_is_sr;
    Alcotest.test_case "SGT outputs serializable" `Quick test_sgt_outputs_serializable;
    Alcotest.test_case "2PL fixpoint between" `Quick test_2pl_fixpoint_between;
    Alcotest.test_case "2PL = greedy passes" `Quick test_2pl_matches_greedy_passes;
    Alcotest.test_case "2PL deadlock resolution" `Quick test_2pl_deadlock_resolved;
    Alcotest.test_case "default victim is youngest" `Quick test_default_victim_youngest;
    Alcotest.test_case "TO restarts" `Quick test_to_restarts;
    Alcotest.test_case "TO fixpoint in SR" `Quick test_to_fixpoint_subset_sr;
    Alcotest.test_case "assertional beyond SR" `Quick test_assertional_beyond_sr;
    Alcotest.test_case "assertional protects arcs" `Quick test_assertional_protects;
    Alcotest.test_case "waiting metric" `Quick test_driver_waiting_metric;
  ]
  @ qsuite
      [ prop_driver_total; prop_sgt_correct; prop_2pl_correct; prop_fixpoint_chain ]
