(* Verification of the distributed atomic-commit layer [Sched.Twopc].

   The headline obligations:
   - the AC1-AC5 checker accepts the correct protocol over the
     exhaustive single-fault micro-universes AND a >= 250-seed random
     crash/timeout sweep (zero violations, every violation would be
     replayed as a witness);
   - deliberately broken variants (forget-log-on-recover,
     presume-commit-on-timeout) are rejected, and the rejecting round
     replays deterministically from its fault list;
   - the no-fault 2PC-routed sharded engine is decision-identical
     (decision traces, stats, commit set AND per-transaction abort
     counts) to the plain sharded engine;
   - the blocking window after a coordinator crash is measured, and the
     observability fold recovers it exactly from the event stream. *)

open Util
open Core

let cfg = Sched.Twopc.default

(* Wrap a scheduler so every [attempt] outcome is appended to [trace]
   (same harness as the sharded/SGT differential). *)
let traced trace (s : Sched.Scheduler.t) =
  Sched.Scheduler.make ~name:s.Sched.Scheduler.name
    ~attempt:(fun id ->
      let r = s.Sched.Scheduler.attempt id in
      trace := (id, r) :: !trace;
      r)
    ~commit:s.Sched.Scheduler.commit ~on_abort:s.Sched.Scheduler.on_abort
    ~victim:s.Sched.Scheduler.victim ~detect:s.Sched.Scheduler.detect ()

(* ---------- protocol happy path ---------- *)

let test_happy_path () =
  let r =
    Sched.Twopc.round cfg ~nodes:4 ~coord:3 ~parts:[ 0; 1; 2 ] ~tx:0 ~seed:0
      ~faults:[] ()
  in
  check_true "commits" (r.Sched.Twopc.outcome = Some true);
  check_true "quiescent" r.Sched.Twopc.quiescent;
  check_int "everyone decides exactly once" 4
    (List.length r.Sched.Twopc.decisions);
  check_true "conforms to AC1-AC5" (Sched.Twopc.check r = []);
  check_int "all three voted" 3 (List.length r.Sched.Twopc.votes);
  check_true "all voted yes"
    (List.for_all snd r.Sched.Twopc.votes);
  (* yes-vote -> decision is one hop to the coordinator and one back *)
  check_true "happy-path blocking is a round trip"
    (r.Sched.Twopc.blocking > 0.
    && r.Sched.Twopc.blocking <= 3. *. cfg.Sched.Twopc.delay);
  check_true "no crashes, no timeouts" (r.Sched.Twopc.crashes = 0)

let test_vote_no_aborts () =
  let r =
    Sched.Twopc.round cfg ~nodes:3 ~coord:2 ~parts:[ 0; 1 ] ~tx:0 ~seed:0
      ~faults:[ Sched.Twopc.Vote_no { node = 1 } ]
      ()
  in
  check_true "aborts" (r.Sched.Twopc.outcome = Some false);
  check_true "conforms" (Sched.Twopc.check r = []);
  check_true "no-vote recorded"
    (List.assoc_opt 1 r.Sched.Twopc.votes = Some false)

(* ---------- exhaustive single-fault micro-universes ---------- *)

let test_exhaustive_universes () =
  List.iter
    (fun n_parts ->
      let rounds = Sched.Twopc.universe cfg ~n_parts ~seed:1 in
      check_true "universe is non-trivial" (List.length rounds > 20);
      let crashed = ref 0 and aborted = ref 0 and faulty_commits = ref 0 in
      List.iter
        (fun (faults, r, vs) ->
          if vs <> [] then
            Alcotest.failf "single-fault universe violation:\n%s"
              (Sched.Twopc.witness r vs);
          if r.Sched.Twopc.crashes > 0 then incr crashed;
          if r.Sched.Twopc.outcome = Some false then incr aborted;
          if faults <> [] && r.Sched.Twopc.outcome = Some true then
            incr faulty_commits)
        rounds;
      (* the universe must actually exercise the interesting schedules:
         triggered crashes, fault-forced aborts, and faults the protocol
         absorbs without giving up the commit *)
      check_true "some crashes triggered" (!crashed > 0);
      check_true "some rounds aborted" (!aborted > 0);
      check_true "some faulty rounds still committed" (!faulty_commits > 0))
    [ 1; 2; 3 ]

(* ---------- broken variants are rejected, witnesses replay ---------- *)

let expect_rejected name variant =
  let cfg = { Sched.Twopc.default with Sched.Twopc.variant } in
  let rounds = Sched.Twopc.universe cfg ~n_parts:2 ~seed:3 in
  match List.find_opt (fun (_, _, vs) -> vs <> []) rounds with
  | None -> Alcotest.failf "%s: checker accepted a broken protocol" name
  | Some (faults, r, vs) ->
    check_true (name ^ ": witness renders")
      (String.length (Sched.Twopc.witness r vs) > 0);
    (* safety breakage shows up as agreement/irreversibility/validity *)
    check_true (name ^ ": violates a safety AC")
      (List.exists (fun v -> v.Sched.Twopc.ac <= 3) vs);
    (* replay the witness: a round is a deterministic function of its
       fault list (jitter off), so the violation must reproduce *)
    let r' =
      Sched.Twopc.round cfg ~nodes:3 ~coord:2 ~parts:[ 0; 1 ] ~tx:0 ~seed:3
        ~faults ()
    in
    check_true (name ^ ": witness replays") (Sched.Twopc.check r' = vs);
    check_true (name ^ ": replayed trace is identical")
      (r'.Sched.Twopc.events = r.Sched.Twopc.events)

let test_forget_log_rejected () =
  expect_rejected "forget-log-on-recover" Sched.Twopc.Forget_log_on_recover

let test_presume_commit_rejected () =
  expect_rejected "presume-commit-on-timeout"
    Sched.Twopc.Presume_commit_on_timeout

(* ---------- >= 250-seed random crash/timeout sweep ---------- *)

let test_seeded_sweep () =
  let cfg = { cfg with Sched.Twopc.jitter = 0.3 } in
  let crashes = ref 0 and aborted = ref 0 and committed = ref 0 in
  for seed = 0 to 249 do
    let st = Random.State.make [| 0x2FC; seed |] in
    let n_parts = 1 + Random.State.int st 5 in
    let parts = List.init n_parts (fun p -> p) in
    let coord = n_parts in
    let faults = ref [] in
    List.iter
      (fun node ->
        if Random.State.float st 1.0 < 0.3 then
          faults :=
            Sched.Twopc.Crash
              {
                node;
                at_input = Random.State.int st 8;
                repair = 2. +. Random.State.float st 30.;
              }
            :: !faults)
      (coord :: parts);
    List.iter
      (fun p ->
        if Random.State.float st 1.0 < 0.15 then
          faults := Sched.Twopc.Vote_no { node = p } :: !faults;
        if Random.State.float st 1.0 < 0.15 then
          faults :=
            Sched.Twopc.Slow_link
              { src = p; dst = coord; extra = 5. +. Random.State.float st 10. }
            :: !faults)
      parts;
    let r =
      Sched.Twopc.round cfg ~nodes:(n_parts + 1) ~coord ~parts ~tx:seed ~seed
        ~faults:!faults ()
    in
    crashes := !crashes + r.Sched.Twopc.crashes;
    (match r.Sched.Twopc.outcome with
    | Some true -> incr committed
    | _ -> incr aborted);
    match Sched.Twopc.check r with
    | [] -> ()
    | vs -> Alcotest.failf "sweep seed %d:\n%s" seed (Sched.Twopc.witness r vs)
  done;
  (* the sweep must be a real fault storm, not a happy-path rerun *)
  check_true "sweep triggered many crashes" (!crashes > 50);
  check_true "sweep aborted some rounds" (!aborted > 20);
  check_true "sweep committed some rounds" (!committed > 20)

(* ---------- no_faults pin: decision-identical to plain sharded ---------- *)

let stats_identical (a : Sched.Driver.stats) (b : Sched.Driver.stats) =
  Schedule.equal a.Sched.Driver.output b.Sched.Driver.output
  && a.Sched.Driver.delays = b.Sched.Driver.delays
  && a.Sched.Driver.restarts = b.Sched.Driver.restarts
  && a.Sched.Driver.deadlocks = b.Sched.Driver.deadlocks
  && a.Sched.Driver.grants = b.Sched.Driver.grants
  && a.Sched.Driver.aborts = b.Sched.Driver.aborts

let divergent ~shards syntax arrivals =
  let fmt = Syntax.format syntax in
  let t1 = ref [] and t2 = ref [] in
  let svc = Sched.Twopc.service ~shards () in
  let s1 =
    Sched.Driver.run
      (traced t1
         (Sched.Sharded.create ~shards
            ~commit_cross:(Sched.Twopc.commit svc)
            ~syntax ()))
      ~fmt ~arrivals:(Array.copy arrivals)
  in
  let s2 =
    Sched.Driver.run
      (traced t2 (Sched.Sharded.create ~shards ~syntax ()))
      ~fmt ~arrivals:(Array.copy arrivals)
  in
  !t1 <> !t2 || not (stats_identical s1 s2)

let test_no_faults_decision_identical () =
  (* the existing differential corpus: every composition of small
     totals under a couple of variable draws, plus random
     interleavings of a crossing workload *)
  for total = 2 to 5 do
    List.iter
      (fun fmt ->
        List.iter
          (fun (n_vars, seed) ->
            let syntax = Test_sharded.syntax_of_fmt ~n_vars ~seed fmt in
            let st = rng (17 * total) in
            for _ = 1 to 3 do
              let arrivals = Combin.Interleave.random st fmt in
              check_false "no_faults decision-identical (compositions)"
                (divergent ~shards:4 syntax arrivals)
            done)
          [ (2, 17); (3, 23) ])
      (Test_sharded.compositions total)
  done

let test_no_faults_sweep_with_shrinker () =
  (* 100-seed sweep in the test_sharded style, shrinker-armed: on a
     divergence the failing arrival stream is binary-searched down to a
     minimal failing prefix and printed with its reproduction data *)
  for seed = 0 to 99 do
    let st = Random.State.make [| 0x5AD; seed |] in
    let n = 2 + Random.State.int st 5 in
    let m = 2 + Random.State.int st 4 in
    let n_vars = 2 + Random.State.int st 4 in
    let syntax = Sim.Workload.uniform st ~n ~m ~n_vars in
    let fmt = Syntax.format syntax in
    let arrivals = Combin.Interleave.random st fmt in
    List.iter
      (fun shards ->
        check_sweep ~name:"no_faults 2PC vs sharded"
          ~repro:(fun small ->
            Format.asprintf
              "seed=%d shards=%d syntax=%a arrivals=%s (dune exec \
               test/main.exe -- test twopc)"
              seed shards Syntax.pp syntax (pp_arrivals small))
          ~fails:(fun a -> divergent ~shards syntax a)
          arrivals)
      [ 2; 4; 8 ]
  done

(* ---------- faulty service: abort accounting ---------- *)

(* A syntax with guaranteed cross-shard transactions at K = 4 (variable
   placement is hash-dependent, so probe a few candidates). *)
let crossing_syntax () =
  let candidates =
    [
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ]; [ "x"; "z" ]; [ "z"; "y" ] ];
      Syntax.of_lists [ [ "x"; "u" ]; [ "u"; "v" ]; [ "v"; "x" ]; [ "w"; "x" ] ];
      Syntax.of_lists [ [ "x"; "y"; "z"; "u" ]; [ "u"; "z" ]; [ "y"; "v" ] ];
    ]
  in
  match
    List.find_opt
      (fun s ->
        (Sched.Partition.make ~syntax:s ~shards:4).Sched.Partition.n_cross > 0)
      candidates
  with
  | Some s -> s
  | None -> Alcotest.fail "no candidate syntax is cross-shard at K=4"

let test_faulty_service_accounting () =
  (* a real fault storm over a real workload: enough cross-shard
     transactions that crashes land before decisions and force
     presumed-abort rounds *)
  let st = rng 3 in
  let syntax = Sim.Workload.uniform st ~n:14 ~m:3 ~n_vars:6 in
  let p = Sched.Partition.make ~syntax ~shards:4 in
  check_true "workload crosses shards" (p.Sched.Partition.n_cross >= 4);
  let fmt = Syntax.format syntax in
  let svc =
    Sched.Twopc.service ~shards:4 ~crash_rate:0.6 ~slow_rate:0.2 ~seed:7 ()
  in
  let arrivals = Combin.Interleave.random st fmt in
  let s =
    Sched.Driver.run
      (Sched.Sharded.create ~shards:4
         ~commit_cross:(Sched.Twopc.commit svc)
         ~syntax ())
      ~fmt ~arrivals
  in
  let t = Sched.Twopc.totals svc in
  check_int "every round accounted"
    t.Sched.Twopc.rounds
    (t.Sched.Twopc.committed + t.Sched.Twopc.aborted);
  (* the driver drains: every cross transaction eventually commits,
     each through exactly one successful round *)
  check_int "every cross transaction commits through exactly one round"
    p.Sched.Partition.n_cross t.Sched.Twopc.committed;
  check_true "aborted rounds show up as driver restarts"
    (s.Sched.Driver.restarts >= t.Sched.Twopc.aborted);
  check_true "the fault storm actually aborted rounds"
    (t.Sched.Twopc.aborted > 0);
  check_true "crashes were injected" (t.Sched.Twopc.total_crashes > 0);
  check_true "output still serializable"
    (Conflict.serializable syntax s.Sched.Driver.output)

(* ---------- blocking window: measured and fold-recovered ---------- *)

let test_coordinator_crash_blocking () =
  (* the classic 2PC cost: the coordinator crashes on the last vote,
     before any decision leaves — every yes-voter is in doubt until the
     coordinator recovers and presumes abort *)
  let collector = Obs.Sink.Memory.create () in
  let sink = Obs.Sink.Memory.sink collector in
  let repair = 25. in
  let faults = [ Sched.Twopc.Crash { node = 3; at_input = 3; repair } ] in
  let r =
    Sched.Twopc.round ~sink cfg ~nodes:4 ~coord:3 ~parts:[ 0; 1; 2 ] ~tx:5
      ~seed:0 ~faults ()
  in
  check_true "conforms" (Sched.Twopc.check r = []);
  check_int "the crash triggered" 1 r.Sched.Twopc.crashes;
  check_true "presumed abort after coordinator crash"
    (r.Sched.Twopc.outcome = Some false);
  check_true "blocking window spans the outage"
    (r.Sched.Twopc.blocking >= repair);
  (* the fold recovers the same window from the event stream alone *)
  (match Obs.Fold.blocking_windows (Obs.Sink.Memory.events collector) with
  | [ (tx, w) ] ->
    check_int "window tagged with the transaction" 5 tx;
    check_true "fold window = simulator window"
      (Float.abs (w -. r.Sched.Twopc.blocking) < 1e-9)
  | ws -> Alcotest.failf "expected one blocking window, got %d" (List.length ws));
  (* and the round's own trace round-trips through the event log *)
  let log = Obs.Event_log.to_string r.Sched.Twopc.events in
  match Obs.Event_log.parse log with
  | Ok (evs, 0) ->
    check_true "event log round-trips the round" (evs = r.Sched.Twopc.events)
  | Ok (_, d) -> Alcotest.failf "unexpected drop count %d" d
  | Error e -> Alcotest.failf "round trace failed to parse: %s" e

let test_blocking_fold_on_sweep () =
  (* fold-vs-simulator differential across a fault sweep: whenever a
     round's trace is complete, the fold's window equals the measured
     one *)
  for seed = 0 to 39 do
    let st = Random.State.make [| 0xB10C; seed |] in
    let n_parts = 2 + Random.State.int st 3 in
    let parts = List.init n_parts (fun p -> p) in
    let coord = n_parts in
    let faults =
      if Random.State.bool st then
        [
          Sched.Twopc.Crash
            {
              node = (if Random.State.bool st then coord else 0);
              at_input = Random.State.int st 5;
              repair = 2. +. Random.State.float st 28.;
            };
        ]
      else []
    in
    let collector = Obs.Sink.Memory.create () in
    let sink = Obs.Sink.Memory.sink collector in
    let r =
      Sched.Twopc.round ~sink cfg ~nodes:(n_parts + 1) ~coord ~parts ~tx:seed
        ~seed ~faults ()
    in
    let folded =
      match Obs.Fold.blocking_windows (Obs.Sink.Memory.events collector) with
      | [] -> 0.
      | [ (_, w) ] -> w
      | _ -> Alcotest.fail "one transaction, one window"
    in
    check_true "fold window = simulator window"
      (Float.abs (folded -. r.Sched.Twopc.blocking) < 1e-9)
  done

(* ---------- the registry engine: rounds flow through the trace ---------- *)

let test_sharded_2pc_engine_traced () =
  let syntax = crossing_syntax () in
  let fmt = Syntax.format syntax in
  let entry = Sched.Registry.find_exn "sharded-2pc" in
  let collector = Obs.Sink.Memory.create () in
  let sink = Obs.Sink.Memory.sink collector in
  let s =
    Sched.Driver.run ~sink
      (entry.Sched.Registry.make ~sink syntax)
      ~fmt
      ~arrivals:(Combin.Interleave.random (rng 9) fmt)
  in
  check_true "run commits" (s.Sched.Driver.grants > 0);
  let events = Obs.Sink.Memory.events collector in
  let has p = List.exists (fun (_, e) -> p e) events in
  check_true "prepare round traced"
    (has (function
      | Obs.Event.Twopc_sent { msg = Obs.Event.Prepare; _ } -> true
      | _ -> false));
  check_true "votes traced"
    (has (function
      | Obs.Event.Twopc_delivered { msg = Obs.Event.Vote _; _ } -> true
      | _ -> false));
  check_true "decisions traced"
    (has (function Obs.Event.Twopc_decided _ -> true | _ -> false));
  check_true "blocking windows recoverable from the driver trace"
    (Obs.Fold.blocking_windows events <> []);
  (* the lifecycle folds must keep reproducing driver stats with the
     2PC events interleaved into the stream *)
  let c = Obs.Fold.counters events in
  check_int "grants fold through 2PC noise" s.Sched.Driver.grants
    c.Obs.Fold.grants;
  check_int "restarts fold through 2PC noise" s.Sched.Driver.restarts
    c.Obs.Fold.restarts

let suite =
  [
    Alcotest.test_case "happy path commits" `Quick test_happy_path;
    Alcotest.test_case "a no-vote aborts everyone" `Quick test_vote_no_aborts;
    Alcotest.test_case "exhaustive single-fault micro-universes (AC1-AC5)"
      `Quick test_exhaustive_universes;
    Alcotest.test_case "forget-log-on-recover rejected with witness" `Quick
      test_forget_log_rejected;
    Alcotest.test_case "presume-commit-on-timeout rejected with witness" `Quick
      test_presume_commit_rejected;
    Alcotest.test_case "250-seed crash/timeout sweep conforms" `Quick
      test_seeded_sweep;
    Alcotest.test_case "no_faults pin: compositions corpus" `Slow
      test_no_faults_decision_identical;
    Alcotest.test_case "no_faults pin: 100-seed sweep (shrinker-armed)" `Slow
      test_no_faults_sweep_with_shrinker;
    Alcotest.test_case "faulty service: abort accounting" `Quick
      test_faulty_service_accounting;
    Alcotest.test_case "coordinator-crash blocking window" `Quick
      test_coordinator_crash_blocking;
    Alcotest.test_case "blocking fold = simulator (sweep)" `Quick
      test_blocking_fold_on_sweep;
    Alcotest.test_case "sharded-2pc engine rounds flow through the trace"
      `Quick test_sharded_2pc_engine_traced;
  ]
