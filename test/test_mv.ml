(* The multi-version scheduler family ([Sched.Mvcc]/[Si]/[Ssi]) against
   its independent oracles.

   Three layers, mirroring ISSUE/DESIGN "Multi-version engines":

   - the version store itself, model-checked against a naive
     association-list store: snapshot reads return the newest committed
     version at or before the snapshot, first-committer-wins fires iff
     an overlapping committed writer exists, and version chains are
     pruned exactly down to what some live snapshot can still reach;
   - differential oracles on micro-universes: on pure-RMW universes
     every history SSI commits is Herbrand-serializable and checker-SER;
     on a curated typed universe SSI's fixpoint set strictly contains
     SGT's (snapshot reads commute where single-version conflicts
     cannot); on disjoint workloads SI admits everything SGT admits;
     and one universe exhibits SSI's documented incompleteness — a
     dangerous structure without a cycle, aborted anyway and flagged
     [Pivot_refused { cyclic = false }];
   - a write-skew regression corpus: the classic anomalies are
     SI-accepted (checker: SI-consistent, SER-violating with a
     replaying witness) and SSI-aborted (restart, serializable
     output). *)

open Util
open Core
module C = Analysis.Checker
module H = Analysis.History
module Mv = Sched.Mvstore

let syn = Analysis.Analyze.parse_syntax

(* -------------------------------------------------------------- *)
(* Version-store model checking                                    *)
(* -------------------------------------------------------------- *)

(* The naive model: committed versions per variable, newest first. *)
type mversion = { mts : int; mvalue : int; mwriter : int }

type model = {
  mutable chains : (Names.var * mversion list) list;
  mutable mclock : int;
}

let model_read_at md x ~snap =
  match List.assoc_opt x md.chains with
  | None -> Mv.initial_value
  | Some vs -> (
    match List.find_opt (fun v -> v.mts <= snap) vs with
    | Some v -> v.mvalue
    | None -> Mv.initial_value)

let model_writer_at md x ~snap =
  match List.assoc_opt x md.chains with
  | None -> None
  | Some vs -> (
    match List.find_opt (fun v -> v.mts <= snap) vs with
    | Some v -> Some v.mwriter
    | None -> None)

let model_ww_conflict md ~snap ~excluding vars =
  List.exists
    (fun x ->
      match List.assoc_opt x md.chains with
      | None -> false
      | Some vs ->
        List.exists (fun v -> v.mts > snap && v.mwriter <> excluding) vs)
    vars

let model_commit md id writes =
  md.mclock <- md.mclock + 1;
  let ts = md.mclock in
  List.iter
    (fun (x, value) ->
      let prev = Option.value ~default:[] (List.assoc_opt x md.chains) in
      md.chains <-
        (x, { mts = ts; mvalue = value; mwriter = id } :: prev)
        :: List.remove_assoc x md.chains)
    writes;
  ts

(* What the store's chain must look like after pruning at [s_min]:
   every version some snapshot >= s_min can reach — the ones newer than
   s_min plus the newest at or before it. *)
let model_visible md x ~s_min =
  match List.assoc_opt x md.chains with
  | None -> []
  | Some vs ->
    let newer = List.filter (fun v -> v.mts > s_min) vs in
    (match List.find_opt (fun v -> v.mts <= s_min) vs with
    | Some v -> newer @ [ v ]
    | None -> newer)

let mv_vars = [ "x"; "y"; "z" ]

let test_mvstore_model () =
  for seed = 0 to 149 do
    let st = rng seed in
    let store = Mv.create () in
    let md = { chains = []; mclock = 0 } in
    (* live transactions with their model-side buffered writes *)
    let live = ref [] in
    let next_id = ref 0 in
    let pick l = List.nth l (Random.State.int st (List.length l)) in
    let buffered buf x = List.assoc_opt x !buf in
    for _op = 1 to 120 do
      (match Random.State.int st 6 with
      | 0 | 1 when List.length !live < 4 ->
        let id = !next_id in
        incr next_id;
        let t = Mv.begin_txn store id in
        check_int "snapshot pins the clock" (Mv.clock store) (Mv.snapshot t);
        live := (t, ref []) :: !live
      | 2 when !live <> [] ->
        (* read: own buffer first, else newest committed <= snapshot *)
        let t, buf = pick !live in
        let x = pick mv_vars in
        let value, writer = Mv.read store t x in
        (match buffered buf x with
        | Some v ->
          check_int "own-buffer read" v value;
          check_true "own-buffer read has no writer" (writer = None)
        | None ->
          check_int "snapshot read value"
            (model_read_at md x ~snap:(Mv.snapshot t))
            value;
          check_true "snapshot read writer"
            (writer = model_writer_at md x ~snap:(Mv.snapshot t)))
      | 3 when !live <> [] ->
        let t, buf = pick !live in
        let x = pick mv_vars in
        let v = Mv.write store t x in
        buf := (x, v) :: List.remove_assoc x !buf
      | 4 when !live <> [] ->
        (* commit attempt: the FCW probe must agree with the model;
           commit regardless (the store is policy-free — MVCC installs
           over conflicts, exercising lost updates too) *)
        let t, buf = pick !live in
        let vars = List.map fst !buf in
        let fired =
          Mv.ww_conflict store ~snap:(Mv.snapshot t)
            ~excluding:t.Mv.id vars
          <> None
        in
        check_true "first-committer-wins iff overlapping committed writer"
          (fired
          = model_ww_conflict md ~snap:(Mv.snapshot t) ~excluding:t.Mv.id
              vars);
        let ts = Mv.commit store t in
        let mts = model_commit md t.Mv.id !buf in
        check_int "commit timestamps advance in lockstep" mts ts;
        check_int "store clock follows" md.mclock (Mv.clock store);
        live := List.filter (fun (u, _) -> u != t) !live
      | _ when !live <> [] ->
        let t, _ = pick !live in
        Mv.abort store t;
        live := List.filter (fun (u, _) -> u != t) !live
      | _ -> ());
      (* pruning invariant: chains hold exactly what a live snapshot
         (or the present) can still reach *)
      let s_min =
        match Mv.min_live_snapshot store with
        | Some s -> s
        | None -> Mv.clock store
      in
      List.iter
        (fun x ->
          let got =
            List.map
              (fun (v : Mv.version) ->
                { mts = v.Mv.ts; mvalue = v.Mv.value; mwriter = v.Mv.writer })
              (Mv.chain store x)
          in
          check_true "chain pruned to reachable versions"
            (got = model_visible md x ~s_min))
        mv_vars;
      (* spot-check snapshot reads over every reachable timestamp *)
      List.iter
        (fun x ->
          for snap = s_min to Mv.clock store do
            check_int "read_at agrees with the model"
              (model_read_at md x ~snap)
              (Mv.read_at store x ~snap)
          done)
        mv_vars
    done
  done

(* Pruning with no live snapshot must never lose the present: when the
   last live transaction commits or aborts, [prune] falls back to
   [s_min = clock], and the chain must keep exactly the newest
   committed version per variable — a snapshot pinned afterwards reads
   it. A random walk that repeatedly drains the live set to empty and
   re-reads through a fresh snapshot (PR 8 satellite audit: the
   fallback is correct; this pins it). *)
let test_prune_without_live_snapshot () =
  for seed = 0 to 99 do
    let st = rng seed in
    let store = Mv.create () in
    (* expected current value per variable, tracked naively *)
    let current = ref (List.map (fun x -> (x, Mv.initial_value)) mv_vars) in
    for _round = 1 to 20 do
      (* a burst of overlapping transactions, all resolved before the
         round ends: afterwards the store has no live snapshot *)
      let burst =
        List.init (1 + Random.State.int st 3) (fun i ->
            Mv.begin_txn store (100 * seed + i))
      in
      let writes =
        List.map
          (fun t ->
            let x = List.nth mv_vars (Random.State.int st 3) in
            let v = Mv.write store t x in
            (t, x, v))
          burst
      in
      List.iter
        (fun (t, x, v) ->
          if Random.State.bool st then begin
            ignore (Mv.commit store t);
            current := (x, v) :: List.remove_assoc x !current
          end
          else Mv.abort store t)
        writes;
      check_true "no live snapshot left" (Mv.min_live_snapshot store = None);
      (* the chain retains the newest committed version, and only it *)
      List.iter
        (fun x ->
          (match Mv.chain store x with
          | [] -> check_int "unwritten variable" Mv.initial_value
                    (List.assoc x !current)
          | [ v ] ->
            check_int "newest version survives pruning"
              (List.assoc x !current) v.Mv.value
          | _ :: _ :: _ ->
            Alcotest.fail "pruning with no live snapshot left a dead version");
          (* a snapshot taken after pruning reads the current value *)
          let t = Mv.begin_txn store (-1) in
          let value, _ = Mv.read store t x in
          check_int "post-prune snapshot read" (List.assoc x !current) value;
          Mv.abort store t)
        mv_vars
    done
  done

(* -------------------------------------------------------------- *)
(* Differential oracles on micro-universes                         *)
(* -------------------------------------------------------------- *)

let ser_consistent h =
  match (C.check h C.Serializability).C.verdict with
  | C.Consistent o -> C.validate_order h C.Serializability o
  | _ -> false

let witness_replays h level (w : C.witness) =
  match w with
  | C.Cycle edges -> C.replay_cycle h level edges
  | C.No_order _ -> H.n h > 8 || not (C.exists_order h level)
  | (C.Dangling_read _ | C.Ambiguous_write _ | C.Internal_misread _) as w ->
    List.mem w (C.well_formed h)

(* Drive one engine over an explicit arrival order, with the trace
   recorded so the committed history can be reconstructed. *)
let run_mv mk syntax arrivals =
  let ring = Obs.Sink.Ring.create ~capacity:(1 lsl 14) in
  let sink = Obs.Sink.Ring.sink ring in
  let stats =
    Sched.Driver.run ~sink (mk sink syntax) ~fmt:(Syntax.format syntax)
      ~arrivals
  in
  let events = Obs.Sink.Ring.events ring in
  check_int "no ring drops" 0 (Obs.Sink.Ring.dropped ring);
  (stats, events, Sim.Check_fuzz.history_of_events ~label:"mv" syntax events)

let mvcc sink syntax = Sched.Mvcc.create ~sink ~syntax ()
let si sink syntax = Sched.Si.create ~sink ~syntax ()
let ssi sink syntax = Sched.Ssi.create ~sink ~syntax ()

let arrivals_of sched =
  Array.map (fun (s : Names.step_id) -> s.Names.tx) sched

(* On pure-RMW syntaxes first-committer-wins forces read-latest, so
   SSI's committed output schedule is exactly a single-version
   execution: the Herbrand oracle applies to it, and the trace-side
   history must be checker-serializable. *)
let test_ssi_herbrand_exhaustive () =
  List.iter
    (fun spec ->
      let syntax = syn spec in
      List.iter
        (fun sched ->
          let stats, _, h = run_mv ssi syntax (arrivals_of sched) in
          check_true
            (spec ^ ": SSI output Herbrand-serializable")
            (Herbrand.serializable syntax stats.Sched.Driver.output);
          check_true (spec ^ ": SSI history checker-SER") (ser_consistent h))
        (Schedule.all (Syntax.format syntax)))
    [ "x,x"; "xy,yx"; "xx,x"; "x,x,x"; "xy,y"; "xyz,zx" ]

let fixpoint mk syntax =
  Sched.Driver.fixpoint_of
    (fun () -> mk Obs.Sink.null syntax)
    (Syntax.format syntax)

let subset a b = List.for_all (fun s -> List.mem s b) a

(* T0 = [U x, U y] vs the read-only T1 = [R y, R x]: every
   single-version interleaving T1.0 < T0.1 and T0.0 < T1.1 is a
   conflict cycle SGT must break, but T1's snapshot reads serialize it
   before T0 regardless of arrival — SSI admits every schedule. *)
let test_ssi_fixpoint_strictly_contains_sgt () =
  let syntax = syn "xy,YX" in
  let sgt sink syntax = Sched.Sgt.create ~sink ~syntax () in
  let fp_sgt = fixpoint sgt syntax in
  let fp_ssi = fixpoint ssi syntax in
  check_true "SGT fixpoint inside SSI's" (subset fp_sgt fp_ssi);
  check_int "SSI admits the whole universe"
    (List.length (Schedule.all (Syntax.format syntax)))
    (List.length fp_ssi);
  check_true "containment is strict"
    (List.length fp_ssi > List.length fp_sgt)

(* Disjoint transactions never conflict: SI (no shared update, so
   first-committer-wins never fires) admits everything SGT does. *)
let test_si_fixpoint_contains_sgt_on_disjoint () =
  let syntax = Sim.Workload.disjoint ~n:3 ~m:2 in
  let sgt sink syntax = Sched.Sgt.create ~sink ~syntax () in
  let fp_sgt = fixpoint sgt syntax in
  let fp_si = fixpoint si syntax in
  check_true "SGT fixpoint inside SI's" (subset fp_sgt fp_si);
  check_int "SI admits the whole disjoint universe"
    (List.length (Schedule.all (Syntax.format syntax)))
    (List.length fp_si)

(* MVCC never delays and never aborts: its fixpoint set is the whole
   universe even where every single-version engine must intervene. *)
let test_mvcc_fixpoint_is_everything () =
  let syntax = syn "xy,yx" in
  check_int "MVCC fixpoint = H"
    (List.length (Schedule.all (Syntax.format syntax)))
    (List.length (fixpoint mvcc syntax))

(* SSI's documented incompleteness: T0 = [R y], T1 = [R z, U y],
   T2 = [U z] with T2 and T0 committing inside T1 builds the dangerous
   structure T0 -rw-> T1 -rw-> T2 with no cycle behind it. SSI aborts
   T1 anyway and must classify the abort as a false positive; SI runs
   the same arrivals untouched and commits a serializable history. *)
let test_ssi_false_positive_abort () =
  let syntax = syn "Y,Zy,z" in
  let arrivals = [| 1; 2; 0; 1 |] in
  let stats, events, h = run_mv ssi syntax arrivals in
  check_int "SSI aborts the pivot" 1 stats.Sched.Driver.restarts;
  check_true "abort flagged as false positive"
    (List.exists
       (fun (_, e) ->
         match e with
         | Obs.Event.Pivot_refused { cyclic = false; _ } -> true
         | _ -> false)
       events);
  check_true "SSI output still serializable" (ser_consistent h);
  let stats_si, _, h_si = run_mv si syntax arrivals in
  check_int "SI accepts the same arrivals" 0 stats_si.Sched.Driver.restarts;
  check_true "and its history was serializable all along"
    (ser_consistent h_si)

(* -------------------------------------------------------------- *)
(* Write-skew regression corpus                                    *)
(* -------------------------------------------------------------- *)

(* Anomalies from the snapshot-isolation literature, as typed syntaxes
   (uppercase = read) with a fixed arrival order that exhibits them. *)
let corpus =
  [
    (* two constraints-checking writers, disjoint write sets *)
    ("classic write skew", "Yx,Xy", [| 0; 1; 0; 1 |]);
    (* Fekete-O'Neil-O'Neil: the read-only T1 observes T2's update but
       not T0's, in no serial order consistent with T0 reading x before
       T2 wrote it *)
    ("read-only transaction anomaly", "Xy,XY,x", [| 0; 2; 1; 1; 0 |]);
    (* the on-call rota: both doctors check both flags, each clears
       only their own *)
    ("on-call rota", "XYx,XYy", [| 0; 1; 0; 1; 0; 1 |]);
  ]

let test_corpus_si_accepts_ssi_aborts () =
  List.iter
    (fun (name, spec, arrivals) ->
      let syntax = syn spec in
      (* SI: committed untouched, SI-consistent, SER-violating with a
         witness that replays *)
      let stats, _, h = run_mv si syntax arrivals in
      check_int (name ^ ": SI accepts") 0 stats.Sched.Driver.restarts;
      check_true
        (name ^ ": SI-consistent")
        (match (C.check h C.Snapshot_isolation).C.verdict with
        | C.Consistent _ -> true
        | _ -> false);
      (match (C.check h C.Serializability).C.verdict with
      | C.Violation w ->
        check_true
          (name ^ ": SER witness replays")
          (witness_replays h C.Serializability w)
      | _ -> check_true (name ^ ": SER violation expected") false);
      (* SSI: the pivot aborts (a genuine cycle), the retry commits a
         serializable history *)
      let stats, events, h = run_mv ssi syntax arrivals in
      check_true (name ^ ": SSI aborts") (stats.Sched.Driver.restarts >= 1);
      check_true
        (name ^ ": abort is a dangerous structure with a real cycle")
        (List.exists
           (fun (_, e) ->
             match e with
             | Obs.Event.Pivot_refused { cyclic = true; _ } -> true
             | _ -> false)
           events);
      check_true (name ^ ": SSI output serializable") (ser_consistent h))
    corpus

let suite =
  [
    Alcotest.test_case "version store vs naive model" `Quick
      test_mvstore_model;
    Alcotest.test_case "pruning with no live snapshot keeps the present"
      `Quick test_prune_without_live_snapshot;
    Alcotest.test_case "SSI = Herbrand on exhaustive RMW universes" `Quick
      test_ssi_herbrand_exhaustive;
    Alcotest.test_case "SSI fixpoint strictly contains SGT's" `Quick
      test_ssi_fixpoint_strictly_contains_sgt;
    Alcotest.test_case "SI fixpoint contains SGT's (disjoint)" `Quick
      test_si_fixpoint_contains_sgt_on_disjoint;
    Alcotest.test_case "MVCC fixpoint is the whole universe" `Quick
      test_mvcc_fixpoint_is_everything;
    Alcotest.test_case "SSI false-positive abort" `Quick
      test_ssi_false_positive_abort;
    Alcotest.test_case "write-skew corpus: SI accepts, SSI aborts" `Quick
      test_corpus_si_accepts_ssi_aborts;
  ]
