(* Shared helpers for the test suite. *)

let qsuite cases = List.map QCheck_alcotest.to_alcotest cases

let check_true name b = Alcotest.(check bool) name true b
let check_false name b = Alcotest.(check bool) name false b
let check_int name expected actual = Alcotest.(check int) name expected actual

(* A deterministic RNG per test to keep failures reproducible. *)
let rng seed = Random.State.make [| 0xC0FFEE; seed |]

(* Generator for a format (m_1..m_n) with n in [1..max_n], m in [1..max_m]. *)
let format_gen ~max_n ~max_m =
  QCheck.Gen.(
    int_range 1 max_n >>= fun n ->
    array_size (return n) (int_range 1 max_m))

(* Generator for a syntax over [n_vars] variables. *)
let var_names = [| "x"; "y"; "z"; "u"; "v"; "w" |]

let syntax_gen ~max_n ~max_m ~n_vars =
  QCheck.Gen.(
    format_gen ~max_n ~max_m >>= fun fmt ->
    let tx m = array_size (return m) (map (fun i -> var_names.(i)) (int_range 0 (n_vars - 1))) in
    let rec build i acc =
      if i < 0 then return (Core.Syntax.make (Array.of_list acc))
      else tx fmt.(i) >>= fun t -> build (i - 1) (t :: acc)
    in
    build (Array.length fmt - 1) [])

(* Generator for a schedule of a given format, as an interleaving drawn
   uniformly. *)
let schedule_of_format_gen fmt =
  QCheck.Gen.(
    map
      (fun seed ->
        let st = Random.State.make [| seed |] in
        Core.Schedule.random st fmt)
      int)

(* A syntax together with one of its schedules. *)
let syntax_and_schedule_gen ~max_n ~max_m ~n_vars =
  QCheck.Gen.(
    syntax_gen ~max_n ~max_m ~n_vars >>= fun syntax ->
    schedule_of_format_gen (Core.Syntax.format syntax) >>= fun h ->
    return (syntax, h))

let arbitrary_syntax_and_schedule ~max_n ~max_m ~n_vars =
  QCheck.make
    ~print:(fun (s, h) ->
      Format.asprintf "%a / %a" Core.Syntax.pp s Core.Schedule.pp h)
    (syntax_and_schedule_gen ~max_n ~max_m ~n_vars)

(* ---------- seed-minimizing shrinker for the seeded sweeps ---------- *)

(* Binary-search the shortest failing prefix of an arrival stream:
   [fails] must hold on the full stream; the search maintains "prefix of
   length [hi] fails" as an invariant, so the returned prefix is
   guaranteed failing even when failure is not monotone in the prefix
   length (it is then a local, not global, minimum — good enough for a
   reproduction). O(log n) re-runs instead of O(n). *)
let minimal_failing_prefix ~fails arrivals =
  let n = Array.length arrivals in
  let lo = ref 1 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fails (Array.sub arrivals 0 mid) then hi := mid else lo := mid + 1
  done;
  Array.sub arrivals 0 !hi

let pp_arrivals arrivals =
  String.concat ""
    (Array.to_list (Array.map (fun tx -> string_of_int (tx + 1)) arrivals))

(* Sweep step with shrinking: when [fails] holds on [arrivals], shrink
   to a minimal failing prefix and fail the Alcotest case with a
   reproduction line ([repro] renders the prefix into a command or
   description the log reader can replay directly). *)
let check_sweep ~name ~repro ~fails arrivals =
  if fails arrivals then begin
    let small = minimal_failing_prefix ~fails arrivals in
    Alcotest.failf "%s: minimal failing prefix of %d/%d arrivals: %s\n  reproduce: %s"
      name (Array.length small) (Array.length arrivals) (pp_arrivals small)
      (repro small)
  end
