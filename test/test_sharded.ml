(* Differential and soundness tests for the sharded scheduling engine.

   The contract ([Sched.Sharded]): with one shard — or on any workload
   where every transaction is single-shard — the engine must be
   decision-for-decision identical to the monolithic [Sched.Sgt] it
   decomposes; with genuine cross-shard traffic it may only be more
   conservative, and everything it outputs must stay (conflict-)
   serializable, which is the whole point of serialization graph
   testing. *)

open Util
open Core

(* Wrap a scheduler so every [attempt] outcome is appended to [trace]
   (same harness as the SGT/SGT-ref differential). *)
let traced trace (s : Sched.Scheduler.t) =
  Sched.Scheduler.make ~name:s.Sched.Scheduler.name
    ~attempt:(fun id ->
      let r = s.Sched.Scheduler.attempt id in
      trace := (id, r) :: !trace;
      r)
    ~commit:s.Sched.Scheduler.commit ~on_abort:s.Sched.Scheduler.on_abort
    ~victim:s.Sched.Scheduler.victim ~detect:s.Sched.Scheduler.detect ()

let same_stats (a : Sched.Driver.stats) (b : Sched.Driver.stats) =
  Schedule.equal a.Sched.Driver.output b.Sched.Driver.output
  && a.Sched.Driver.delays = b.Sched.Driver.delays
  && a.Sched.Driver.restarts = b.Sched.Driver.restarts
  && a.Sched.Driver.deadlocks = b.Sched.Driver.deadlocks
  && a.Sched.Driver.grants = b.Sched.Driver.grants

let check_equiv ~shards syntax arrivals =
  let fmt = Syntax.format syntax in
  let t1 = ref [] and t2 = ref [] in
  let s1 =
    Sched.Driver.run
      (traced t1 (Sched.Sharded.create ~shards ~syntax ()))
      ~fmt ~arrivals
  in
  let s2 =
    Sched.Driver.run (traced t2 (Sched.Sgt.create ~syntax ())) ~fmt ~arrivals
  in
  check_true "identical decision traces" (!t1 = !t2);
  check_true "identical stats" (same_stats s1 s2)

(* every composition of [total] into positive parts, as formats *)
let compositions total =
  let rec go rem acc out =
    if rem = 0 then Array.of_list (List.rev acc) :: out
    else
      let rec parts p out =
        if p > rem then out else parts (p + 1) (go (rem - p) (p :: acc) out)
      in
      parts 1 out
  in
  go total [] []

let syntax_of_fmt ~n_vars ~seed fmt =
  let st = rng seed in
  Syntax.make
    (Array.map
       (fun m ->
         Array.init m (fun _ -> var_names.(Random.State.int st n_vars)))
       fmt)

(* ---------- partition ---------- *)

let test_partition () =
  let syntax =
    Syntax.of_lists [ [ "x"; "y" ]; [ "y" ]; [ "z"; "z" ]; [] ]
  in
  let p = Sched.Partition.make ~syntax ~shards:4 in
  check_int "n" 4 p.Sched.Partition.n;
  (* the hash is deterministic: recompute and compare every step *)
  List.iter
    (fun ({ Names.tx; idx } as id) ->
      check_int "step shard"
        (Sched.Partition.shard_of_var ~shards:4 (Syntax.var syntax id))
        p.Sched.Partition.shard_of_step.(tx).(idx))
    (Syntax.steps syntax);
  (* T0 touches x and y; T1 only y: T1's mask is a subset of T0's *)
  check_true "mask subset"
    (p.Sched.Partition.mask.(1) land p.Sched.Partition.mask.(0)
    = p.Sched.Partition.mask.(1));
  (* single-shard transactions have a home; empty transactions do not *)
  check_int "empty tx mask" 0 p.Sched.Partition.mask.(3);
  check_int "empty tx home" (-1) p.Sched.Partition.home.(3);
  check_true "T1 single-shard"
    ((not p.Sched.Partition.cross.(1)) && p.Sched.Partition.home.(1) >= 0);
  check_true "T2 single-shard (one variable twice)"
    ((not p.Sched.Partition.cross.(2)) && p.Sched.Partition.home.(2) >= 0);
  (* members lists are ascending and agree with local_id *)
  Array.iteri
    (fun s ms ->
      Array.iteri
        (fun l tx ->
          check_int "local id round-trip" l p.Sched.Partition.local_id.(s).(tx);
          if l > 0 then check_true "members ascending" (ms.(l - 1) < tx))
        ms)
    p.Sched.Partition.members;
  (* cross ids are dense over the cross transactions *)
  let crosses =
    Array.to_list p.Sched.Partition.cross
    |> List.filter (fun c -> c)
    |> List.length
  in
  check_int "n_cross" crosses p.Sched.Partition.n_cross;
  check_true "K bounds enforced"
    ((try
        ignore (Sched.Partition.make ~syntax ~shards:0);
        false
      with Invalid_argument _ -> true)
    &&
    try
      ignore (Sched.Partition.make ~syntax ~shards:63);
      false
    with Invalid_argument _ -> true);
  (* K = 1: everything is single-shard *)
  let p1 = Sched.Partition.make ~syntax ~shards:1 in
  check_int "K=1 no cross" 0 p1.Sched.Partition.n_cross;
  check_true "K=1 cross fraction" (Sched.Partition.cross_fraction p1 = 0.)

(* ---------- K = 1 and all-single-shard equivalence ---------- *)

let test_k1_exhaustive () =
  (* all formats up to total size 5, all interleavings: with one shard
     the engine must be indistinguishable from the monolithic SGT *)
  for total = 2 to 5 do
    List.iter
      (fun fmt ->
        List.iter
          (fun (n_vars, seed) ->
            let syntax = syntax_of_fmt ~n_vars ~seed fmt in
            Combin.Interleave.iter fmt (fun arrivals ->
                check_equiv ~shards:1 syntax (Array.copy arrivals)))
          [ (2, 17); (3, 23) ])
      (compositions total)
  done

let test_disjoint_any_k () =
  (* [Workload.disjoint] gives every transaction a single private
     variable, so no transaction is ever cross-shard and every K must
     reproduce SGT exactly *)
  let syntax = Sim.Workload.disjoint ~n:6 ~m:3 in
  let p = Sched.Partition.make ~syntax ~shards:4 in
  check_int "disjoint has no cross txs" 0 p.Sched.Partition.n_cross;
  let fmt = Syntax.format syntax in
  let st = rng 5 in
  for _ = 1 to 25 do
    let arrivals = Combin.Interleave.random st fmt in
    List.iter (fun k -> check_equiv ~shards:k syntax arrivals) [ 1; 2; 4; 8 ]
  done

let test_k1_fixpoints () =
  (* Theorem 3's fixpoint characterisation survives the decomposition *)
  List.iter
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let fp_sh =
        Sched.Driver.fixpoint_of
          (fun () -> Sched.Sharded.create ~shards:1 ~syntax ())
          fmt
      in
      let fp_sgt =
        Sched.Driver.fixpoint_of (fun () -> Sched.Sgt.create ~syntax ()) fmt
      in
      check_int "fixpoint set size" (List.length fp_sgt) (List.length fp_sh);
      List.iter2
        (fun a b -> check_true "fixpoint schedule" (Schedule.equal a b))
        fp_sh fp_sgt)
    [
      Examples.hot_spot 2 2;
      Examples.hot_spot 3 2;
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
      Syntax.of_lists [ [ "x"; "x"; "y" ]; [ "y"; "x" ] ];
    ]

(* ---------- cross-shard soundness ---------- *)

let test_cross_shard_serializable () =
  (* 100-seed sweep over contended workloads at K in {2,4,8}: the engine
     must terminate and every output must be conflict-serializable (the
     SGT invariant); where n is tiny the Herbrand check must agree *)
  for seed = 0 to 99 do
    let st = Random.State.make [| 0x5AD; seed |] in
    let n = 2 + Random.State.int st 5 in
    let m = 2 + Random.State.int st 4 in
    let n_vars = 2 + Random.State.int st 4 in
    let syntax = Sim.Workload.uniform st ~n ~m ~n_vars in
    let fmt = Syntax.format syntax in
    let arrivals = Combin.Interleave.random st fmt in
    List.iter
      (fun k ->
        (* shrinker-armed: a violating arrival stream is binary-searched
           to a minimal failing prefix and printed with its repro data *)
        check_sweep ~name:"cross-shard serializability"
          ~repro:(fun small ->
            Format.asprintf
              "seed=%d shards=%d syntax=%a arrivals=%s (dune exec \
               test/main.exe -- test sharded)"
              seed k Syntax.pp syntax (pp_arrivals small))
          ~fails:(fun a ->
            let s =
              Sched.Driver.run
                (Sched.Sharded.create ~shards:k ~syntax ())
                ~fmt ~arrivals:(Array.copy a)
            in
            (not (Conflict.serializable syntax s.Sched.Driver.output))
            || (n <= 4
               && not (Herbrand.serializable syntax s.Sched.Driver.output)))
          arrivals)
      [ 2; 4; 8 ]
  done

let test_cross_shard_never_grants_more_cycles () =
  (* hot-spot workloads force cross-shard transactions whenever the two
     hot variables land in different shards; on every interleaving of a
     small instance the sharded output must be serializable and the
     engine at most more conservative than SGT (>= as many delays) *)
  let syntax =
    Syntax.of_lists
      [ [ "x"; "y" ]; [ "y"; "x" ]; [ "x"; "z" ]; [ "z"; "y" ] ]
  in
  let fmt = Syntax.format syntax in
  let st = rng 11 in
  for _ = 1 to 60 do
    let arrivals = Combin.Interleave.random st fmt in
    let sh =
      Sched.Driver.run
        (Sched.Sharded.create ~shards:4 ~syntax ())
        ~fmt ~arrivals:(Array.copy arrivals)
    in
    let sg =
      Sched.Driver.run (Sched.Sgt.create ~syntax ()) ~fmt
        ~arrivals:(Array.copy arrivals)
    in
    check_true "sharded output serializable"
      (Conflict.serializable syntax sh.Sched.Driver.output);
    check_true "at least as conservative as SGT"
      (sh.Sched.Driver.delays + sh.Sched.Driver.restarts
      >= sg.Sched.Driver.delays + sg.Sched.Driver.restarts)
  done

(* ---------- observability ---------- *)

let test_trace_vs_stats () =
  (* the trace pipeline's fold differential must hold for the sharded
     engine too: every counter recovered from the event stream agrees
     with the driver's statistics, for both a crossing and a contended
     workload *)
  List.iter
    (fun label ->
      let spec =
        {
          Sim.Trace_run.label;
          syntax = Analysis.Analyze.parse_syntax label;
          seed = 42;
          capacity = Sim.Trace_run.default_capacity;
          samples = 20;
          only = [ "sharded" ];
        }
      in
      List.iter
        (fun r ->
          check_true (label ^ " complete trace") (r.Sim.Trace_run.dropped = 0);
          check_true
            (label ^ " trace matches stats")
            (Sim.Trace_run.mismatches r = []))
        (Sim.Trace_run.execute spec))
    [ "xy,yx"; "xyz,zx,yz"; "xx,xx,xx" ]

let test_shard_routed_events () =
  (* a sink sees one Shard_routed per fresh request, tagged with the
     shard the partition assigns *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let p = Sched.Partition.make ~syntax ~shards:4 in
  let collector = Obs.Sink.Memory.create () in
  let fmt = Syntax.format syntax in
  ignore
    (Sched.Driver.run ~sink:(Obs.Sink.Memory.sink collector)
       (Sched.Sharded.create ~sink:(Obs.Sink.Memory.sink collector) ~shards:4
          ~syntax ())
       ~fmt ~arrivals:[| 0; 1; 0; 1 |]);
  let routed =
    List.filter_map
      (fun (_, e) ->
        match e with
        | Obs.Event.Shard_routed { tx; idx; shard } -> Some (tx, idx, shard)
        | _ -> None)
      (Obs.Sink.Memory.events collector)
  in
  check_true "routed events present" (routed <> []);
  List.iter
    (fun (tx, idx, shard) ->
      check_int "routed to the owning shard"
        p.Sched.Partition.shard_of_step.(tx).(idx)
        shard)
    routed

let suite =
  [
    Alcotest.test_case "partition invariants" `Quick test_partition;
    Alcotest.test_case "K=1 = SGT exhaustive to size 5" `Slow
      test_k1_exhaustive;
    Alcotest.test_case "disjoint = SGT at every K" `Quick test_disjoint_any_k;
    Alcotest.test_case "K=1 fixpoint sets agree" `Quick test_k1_fixpoints;
    Alcotest.test_case "cross-shard outputs serializable (100 seeds)" `Slow
      test_cross_shard_serializable;
    Alcotest.test_case "cross-shard at most more conservative" `Quick
      test_cross_shard_never_grants_more_cycles;
    Alcotest.test_case "trace matches stats" `Quick test_trace_vs_stats;
    Alcotest.test_case "shard-routed events" `Quick test_shard_routed_events;
  ]
