(* Tests for the workload generators, the performance measurement and
   the Section 6 discrete-event simulation. *)

open Util
open Core

let test_var_pool () =
  Alcotest.(check (list string)) "pool" [ "v0"; "v1"; "v2" ] (Sim.Workload.var_pool 3)

let test_uniform () =
  let st = rng 1 in
  let s = Sim.Workload.uniform st ~n:4 ~m:3 ~n_vars:2 in
  Alcotest.(check (array int)) "format" [| 3; 3; 3; 3 |] (Syntax.format s);
  List.iter
    (fun v -> check_true "var from pool" (List.mem v [ "v0"; "v1" ]))
    (Syntax.vars s)

let test_hotspot_extreme () =
  let st = rng 2 in
  let s = Sim.Workload.hotspot st ~n:3 ~m:2 ~n_vars:4 ~theta:1.0 in
  Alcotest.(check (list string)) "all on v0" [ "v0" ] (Syntax.vars s)

(* Regression: with a single variable the skewed generators used to ask
   [Random.State.int] for a draw over an empty cold pool and raised
   [Invalid_argument]; now everything lands on the hot variable. *)
let test_single_variable_generators () =
  let s = Sim.Workload.hotspot (rng 3) ~n:4 ~m:3 ~n_vars:1 ~theta:0.5 in
  Alcotest.(check (list string)) "hotspot all on v0" [ "v0" ] (Syntax.vars s);
  let s = Sim.Workload.mixed (rng 4) ~n:4 ~m:3 ~n_vars:1 ~read_frac:0.5 ~theta:0.5 in
  Alcotest.(check (list string)) "mixed all on v0" [ "v0" ] (Syntax.vars s);
  (* draws stay reproducible: same seed, same syntax *)
  let again = Sim.Workload.hotspot (rng 3) ~n:4 ~m:3 ~n_vars:1 ~theta:0.5 in
  check_true "deterministic at fixed seed"
    (Syntax.format again
     = Syntax.format (Sim.Workload.hotspot (rng 3) ~n:4 ~m:3 ~n_vars:1 ~theta:0.5))

let test_disjoint () =
  let s = Sim.Workload.disjoint ~n:3 ~m:2 in
  check_int "three vars" 3 (List.length (Syntax.vars s));
  (* every schedule of a disjoint workload is serializable *)
  List.iter
    (fun h -> check_true "serializable" (Conflict.serializable s h))
    (Schedule.all (Syntax.format s))

let test_chain () =
  let vars, pairs = Sim.Workload.chain ~depth:3 in
  Alcotest.(check (list string)) "vars" [ "v0"; "v1"; "v2" ] vars;
  Alcotest.(check (list (pair string string)))
    "pairs" [ ("v1", "v0"); ("v2", "v1") ] pairs;
  Alcotest.(check (list string)) "path"
    [ "v2"; "v1"; "v0" ]
    (Locking.Tree_lock.path_to_root pairs "v2")

let test_counters_system () =
  let s = Sim.Workload.counters (Examples.hot_spot 2 2) in
  let g = Exec.run_transaction s (State.of_ints [ ("x", 0) ]) 0 in
  check_true "two increments" (Expr.Value.equal (State.get g "x") (Expr.Value.Int 2))

let test_transfers_system () =
  let s = Sim.Workload.transfers (Examples.hot_spot 1 2) in
  let g = Exec.run_transaction s (State.of_ints [ ("x", 5) ]) 0 in
  (* +1 then -1 *)
  check_true "net zero" (Expr.Value.equal (State.get g "x") (Expr.Value.Int 5))

let hot22 = Examples.hot_spot 2 2

let test_exact_fixpoint_counts () =
  let fmt = Syntax.format hot22 in
  check_int "serial |P| = 2" 2
    (Sim.Measure.exact_fixpoint_count (fun () -> Sched.Serial_sched.create ~fmt) fmt);
  check_int "SGT |P| = |SR| = 2" 2
    (Sim.Measure.exact_fixpoint_count (fun () -> Sched.Sgt.create ~syntax:hot22 ()) fmt)

let test_sample_row () =
  let fmt = Syntax.format hot22 in
  let row =
    Sim.Measure.sample ~name:"serial"
      (fun () -> Sched.Serial_sched.create ~fmt)
      ~fmt ~samples:300 ~seed:5
  in
  (* exact fraction is 2/6; Monte-Carlo should be in the ballpark *)
  check_true "zero-delay near 1/3"
    (abs_float (row.Sim.Measure.zero_delay_fraction -. (1. /. 3.)) < 0.12);
  check_true "delays nonnegative" (row.Sim.Measure.avg_delays >= 0.)

let test_compare_ordering () =
  (* SGT passes at least as much as 2PL, which passes at least as much
     as serial, on a shared-variable workload *)
  let syntax = Syntax.of_lists [ [ "v0"; "v1" ]; [ "v0" ]; [ "v1" ] ] in
  let fmt = Syntax.format syntax in
  let get name rows =
    (List.find (fun r -> r.Sim.Measure.name = name) rows).Sim.Measure.zero_delay_fraction
  in
  let rows =
    Sim.Measure.compare_schedulers
      [
        ("serial", fun () -> Sched.Serial_sched.create ~fmt);
        ("2PL", fun () -> Sched.Tpl_sched.create_2pl ~syntax ());
        ("SGT", fun () -> Sched.Sgt.create ~syntax ());
      ]
      ~fmt ~samples:400 ~seed:11
  in
  check_true "serial <= 2PL" (get "serial" rows <= get "2PL" rows +. 1e-9);
  check_true "2PL <= SGT" (get "2PL" rows <= get "SGT" rows +. 1e-9)

let test_standard_suite_runs () =
  let syntax = Syntax.of_lists [ [ "v0"; "v1" ]; [ "v1"; "v0" ] ] in
  let rows =
    Sim.Measure.compare_schedulers
      (Sim.Measure.standard_suite syntax)
      ~fmt:(Syntax.format syntax) ~samples:50 ~seed:3
  in
  check_int "one row per standard engine"
    (List.length Sched.Registry.standard)
    (List.length rows);
  let table = Format.asprintf "%a" Sim.Measure.pp_rows rows in
  check_true "renders" (String.length table > 0)

let des_params = { Sim.Des.arrival_rate = 1.0; exec_time = 1.0; sched_time = 0.1; seed = 9 }

let test_des_serial () =
  let syntax = Examples.hot_spot 5 2 in
  let r =
    Sim.Des.run des_params ~syntax
      ~scheduler:(fun () -> Sched.Serial_sched.create ~fmt:(Syntax.format syntax))
  in
  check_int "all complete" 5 r.Sim.Des.n_transactions;
  check_true "latency positive" (r.Sim.Des.avg_latency > 0.);
  (* execution = 2 steps x 1.0 (no restarts under serial) *)
  check_true "execution component"
    (abs_float (r.Sim.Des.avg_execution -. 2.0) < 1e-9);
  check_true "throughput positive" (r.Sim.Des.throughput > 0.)

let test_des_decomposition () =
  (* latency = scheduling + waiting + execution (Section 6), up to
     floating error: nothing else can consume time in the model *)
  let syntax = Examples.hot_spot 6 2 in
  List.iter
    (fun (name, mk) ->
      let r = Sim.Des.run des_params ~syntax ~scheduler:mk in
      let lhs = r.Sim.Des.avg_latency in
      let rhs =
        r.Sim.Des.avg_scheduling +. r.Sim.Des.avg_waiting
        +. r.Sim.Des.avg_execution
      in
      if r.Sim.Des.restarts = 0 then
        check_true (name ^ " decomposition") (abs_float (lhs -. rhs) < 1e-6))
    (Sim.Measure.standard_suite syntax)

let test_des_contention_hurts () =
  (* under the serial scheduler, a hot-spot workload cannot have smaller
     average waiting than the same-size disjoint workload *)
  let hot = Examples.hot_spot 6 2 in
  let cold = Sim.Workload.disjoint ~n:6 ~m:2 in
  let run syntax =
    Sim.Des.run des_params ~syntax
      ~scheduler:(fun () -> Sched.Sgt.create ~syntax ())
  in
  let rh = run hot and rc = run cold in
  check_true "disjoint waits less"
    (rc.Sim.Des.avg_waiting <= rh.Sim.Des.avg_waiting +. 1e-9)

(* Property: the DES completes for every scheduler on random workloads
   and the decomposition components are nonnegative. *)
let prop_des_total =
  QCheck.Test.make ~name:"DES completes for all schedulers" ~count:25
    QCheck.(pair (int_range 2 6) (int_range 0 1000))
    (fun (n, seed) ->
      let st = rng seed in
      let syntax = Sim.Workload.hotspot st ~n ~m:2 ~n_vars:3 ~theta:0.6 in
      List.for_all
        (fun (_, mk) ->
          let r =
            Sim.Des.run
              { Sim.Des.arrival_rate = 1.0; exec_time = 0.5; sched_time = 0.05;
                seed }
              ~syntax ~scheduler:mk
          in
          r.Sim.Des.n_transactions = n
          && r.Sim.Des.avg_scheduling >= 0.
          && r.Sim.Des.avg_waiting >= -1e-9
          && r.Sim.Des.avg_execution > 0.)
        (Sim.Measure.standard_suite syntax))

let suite =
  [
    Alcotest.test_case "var pool" `Quick test_var_pool;
    Alcotest.test_case "uniform workload" `Quick test_uniform;
    Alcotest.test_case "hotspot extreme" `Quick test_hotspot_extreme;
    Alcotest.test_case "single-variable generators" `Quick
      test_single_variable_generators;
    Alcotest.test_case "disjoint workload" `Quick test_disjoint;
    Alcotest.test_case "chain hierarchy" `Quick test_chain;
    Alcotest.test_case "counters semantics" `Quick test_counters_system;
    Alcotest.test_case "transfers semantics" `Quick test_transfers_system;
    Alcotest.test_case "exact fixpoint counts" `Quick test_exact_fixpoint_counts;
    Alcotest.test_case "sample row" `Quick test_sample_row;
    Alcotest.test_case "scheduler ordering" `Quick test_compare_ordering;
    Alcotest.test_case "standard suite" `Quick test_standard_suite_runs;
    Alcotest.test_case "DES serial" `Quick test_des_serial;
    Alcotest.test_case "DES decomposition" `Quick test_des_decomposition;
    Alcotest.test_case "DES contention" `Quick test_des_contention_hurts;
  ]
  @ qsuite [ prop_des_total ]
