(* The multicore execution engine ([Sched.Parallel]) and its request
   channels ([Sched.Chan]).

   The engine's contract is decision-identity with the simulated
   [Sched.Sharded] run: same committed schedule per worker, same
   per-transaction abort counts — only the queue-pressure counters
   (delays, waiting) may differ. The tests sweep workload mixes, shard
   counts, domain counts and both channel builds; CI re-runs the suite
   with CCOPT_DOMAINS forced to 2 and to 8 to shake out layouts where
   domains outnumber cores and vice versa. *)

open Util
open Core

(* CI knob: how many domains the engine tests request. *)
let env_domains =
  match Sys.getenv_opt "CCOPT_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some d when d >= 1 && d <= 64 -> d
    | _ -> 4)
  | None -> 4

let kinds = [ Sched.Chan.Ring; Sched.Chan.Mutex ]

(* ---------- channels, single domain ---------- *)

let test_chan_basic () =
  List.iter
    (fun kind ->
      let name = Sched.Chan.kind_name kind in
      let ch = Sched.Chan.create ~capacity:3 kind in
      check_true (name ^ " kind round-trip") (Sched.Chan.kind ch = kind);
      (* capacity 3 rounds up to 4: four pushes must not block *)
      for i = 1 to 4 do
        Sched.Chan.push ch i
      done;
      let buf = Array.make 8 0 in
      let n = Sched.Chan.pop_batch ch buf in
      check_int (name ^ " batch size") 4 n;
      for i = 1 to 4 do
        check_int (name ^ " FIFO") i buf.(i - 1)
      done;
      (* a popped slot is reusable: the ring recycles cell stamps *)
      Sched.Chan.push ch 5;
      check_int (name ^ " after recycle") 1 (Sched.Chan.pop_batch ch buf);
      check_int (name ^ " recycled value") 5 buf.(0);
      Sched.Chan.close ch;
      check_int (name ^ " closed+empty = end of stream") 0
        (Sched.Chan.pop_batch ch buf);
      check_true (name ^ " push after close raises")
        (try
           Sched.Chan.push ch 6;
           false
         with Sched.Chan.Closed -> true);
      check_true (name ^ " zero-length buffer rejected")
        (try
           ignore (Sched.Chan.pop_batch ch [||]);
           false
         with Invalid_argument _ -> true))
    kinds;
  check_true "non-positive capacity rejected"
    (try
       ignore (Sched.Chan.create ~capacity:0 Sched.Chan.Ring);
       false
     with Invalid_argument _ -> true)

let test_chan_close_keeps_backlog () =
  (* closing does not drop undelivered elements *)
  List.iter
    (fun kind ->
      let name = Sched.Chan.kind_name kind in
      let ch = Sched.Chan.create ~capacity:8 kind in
      for i = 0 to 5 do
        Sched.Chan.push ch i
      done;
      Sched.Chan.close ch;
      let buf = Array.make 4 0 in
      let seen = ref [] in
      let rec go () =
        let n = Sched.Chan.pop_batch ch buf in
        if n > 0 then begin
          for j = 0 to n - 1 do
            seen := buf.(j) :: !seen
          done;
          go ()
        end
      in
      go ();
      Alcotest.(check (list int))
        (name ^ " backlog survives close")
        [ 0; 1; 2; 3; 4; 5 ] (List.rev !seen))
    kinds

(* ---------- channels, cross-domain ---------- *)

let test_chan_cross_domain () =
  (* two producer domains, tight capacity (so pushes block on a full
     queue), consumer on the main domain: every element arrives exactly
     once and each producer's elements stay in its push order *)
  List.iter
    (fun kind ->
      let name = Sched.Chan.kind_name kind in
      let per_producer = 2000 in
      let ch = Sched.Chan.create ~capacity:16 kind in
      let producer tag =
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Sched.Chan.push ch ((tag * per_producer) + i)
            done)
      in
      let d1 = producer 0 and d2 = producer 1 in
      let buf = Array.make 64 0 in
      let seen = ref [] in
      let total = ref 0 in
      while !total < 2 * per_producer do
        let n = Sched.Chan.pop_batch ch buf in
        for j = 0 to n - 1 do
          seen := buf.(j) :: !seen
        done;
        total := !total + n
      done;
      Domain.join d1;
      Domain.join d2;
      Sched.Chan.close ch;
      check_int (name ^ " nothing extra") 0 (Sched.Chan.pop_batch ch buf);
      let seen = List.rev !seen in
      check_int (name ^ " everything delivered")
        (2 * per_producer) (List.length seen);
      check_int (name ^ " no duplicates")
        (2 * per_producer)
        (List.length (List.sort_uniq compare seen));
      List.iter
        (fun tag ->
          let mine = List.filter (fun v -> v / per_producer = tag) seen in
          check_true
            (name ^ " per-producer FIFO")
            (mine = List.sort compare mine))
        [ 0; 1 ])
    kinds

(* ---------- the execution engine ---------- *)

let simulate ~shards syntax arrivals =
  Sched.Driver.run
    (Sched.Sharded.create ~shards ~syntax ())
    ~fmt:(Syntax.format syntax) ~arrivals:(Array.copy arrivals)

(* Decision-identity against the simulated run: per worker, the
   committed schedule is the projection of nothing but that worker's
   transactions, and it must equal the projection of the simulated
   output; abort counts must agree transaction by transaction. *)
let check_identity ~queue ~domains ~shards syntax arrivals =
  let sim = simulate ~shards syntax arrivals in
  let par =
    Sched.Parallel.run ~queue ~domains ~shards ~syntax
      ~arrivals:(Array.copy arrivals) ()
  in
  check_true "some worker" (Array.length par.Sched.Parallel.workers >= 1);
  check_true "domains within request"
    (par.Sched.Parallel.domains <= max 1 domains);
  Array.iter
    (fun (w : Sched.Parallel.worker_report) ->
      let mine = Array.make (Syntax.n_transactions syntax) false in
      Array.iter (fun tx -> mine.(tx) <- true) w.Sched.Parallel.txns;
      let sim_proj =
        Array.of_list
          (List.filter
             (fun (id : Names.step_id) -> mine.(id.Names.tx))
             (Array.to_list sim.Sched.Driver.output))
      in
      let par_glob =
        Array.map
          (fun (id : Names.step_id) ->
            Names.step w.Sched.Parallel.txns.(id.Names.tx) id.Names.idx)
          w.Sched.Parallel.stats.Sched.Driver.output
      in
      check_true "worker projection of the committed schedule"
        (Schedule.equal sim_proj par_glob))
    par.Sched.Parallel.workers;
  Alcotest.(check (array int))
    "per-transaction abort counts" sim.Sched.Driver.aborts
    par.Sched.Parallel.aborts;
  check_int "total restarts" sim.Sched.Driver.restarts
    par.Sched.Parallel.restarts;
  check_int "total deadlocks" sim.Sched.Driver.deadlocks
    par.Sched.Parallel.deadlocks;
  check_int "total grants" sim.Sched.Driver.grants par.Sched.Parallel.grants;
  (* worker disjointness makes the concatenated output serializable iff
     each slice is — but check the global statement directly *)
  check_true "merged output conflict-serializable"
    (Conflict.serializable syntax par.Sched.Parallel.output)

let test_single_domain_exact () =
  (* one worker is literally the simulated engine: every statistic
     agrees, including the queue-pressure ones *)
  let st = rng 31 in
  let syntax = Sim.Workload.uniform st ~n:8 ~m:3 ~n_vars:4 in
  let fmt = Syntax.format syntax in
  let arrivals = Combin.Interleave.random st fmt in
  let sim = simulate ~shards:4 syntax arrivals in
  List.iter
    (fun queue ->
      let par =
        Sched.Parallel.run ~queue ~domains:1 ~shards:4 ~syntax
          ~arrivals:(Array.copy arrivals) ()
      in
      check_int "one worker" 1 par.Sched.Parallel.domains;
      check_true "exact output"
        (Schedule.equal sim.Sched.Driver.output par.Sched.Parallel.output);
      check_int "exact delays" sim.Sched.Driver.delays
        par.Sched.Parallel.delays;
      check_int "exact waiting" sim.Sched.Driver.waiting
        par.Sched.Parallel.waiting;
      check_int "exact grants" sim.Sched.Driver.grants
        par.Sched.Parallel.grants;
      Alcotest.(check (array int))
        "exact aborts" sim.Sched.Driver.aborts par.Sched.Parallel.aborts)
    kinds

let test_decision_identity_sweep () =
  (* mixes x shard counts x both channel builds, at the CI-forced
     domain count *)
  List.iter
    (fun seed ->
      let st = Random.State.make [| 0xDA; seed |] in
      let mixes =
        [
          Sim.Workload.uniform (rng (seed + 100)) ~n:10 ~m:3 ~n_vars:6;
          Sim.Workload.hotspot (rng (seed + 200)) ~n:10 ~m:3 ~n_vars:5
            ~theta:0.5;
          Sim.Workload.disjoint ~n:10 ~m:2;
        ]
      in
      List.iter
        (fun syntax ->
          let fmt = Syntax.format syntax in
          let arrivals = Combin.Interleave.random st fmt in
          List.iter
            (fun shards ->
              List.iter
                (fun queue ->
                  check_identity ~queue ~domains:env_domains ~shards syntax
                    arrivals)
                kinds)
            [ 2; 4; 8 ])
        mixes)
    [ 0; 1; 2 ]

let test_coordinator_plan () =
  (* cross traffic lands on worker 0 with every shard it touches;
     disjoint workloads have no coordinator at all *)
  let syntax =
    Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ]; [ "z"; "z" ]; [ "w" ] ]
  in
  let fmt = Syntax.format syntax in
  let st = rng 7 in
  let arrivals = Combin.Interleave.random st fmt in
  let par =
    Sched.Parallel.run ~domains:8 ~shards:8 ~syntax ~arrivals ()
  in
  let coords =
    Array.to_list par.Sched.Parallel.workers
    |> List.filter (fun w -> w.Sched.Parallel.coordinator)
  in
  (match coords with
  | [ c ] ->
    check_true "cross transactions on the coordinator"
      (Array.exists (fun tx -> tx = 0) c.Sched.Parallel.txns
      && Array.exists (fun tx -> tx = 1) c.Sched.Parallel.txns)
  | _ -> Alcotest.fail "expected exactly one coordinator");
  let disjoint = Sim.Workload.disjoint ~n:6 ~m:2 in
  let dfmt = Syntax.format disjoint in
  let darr = Combin.Interleave.random st dfmt in
  let dpar =
    Sched.Parallel.run ~domains:8 ~shards:8 ~syntax:disjoint ~arrivals:darr ()
  in
  check_true "disjoint has no coordinator"
    (Array.for_all
       (fun w -> not w.Sched.Parallel.coordinator)
       dpar.Sched.Parallel.workers)

let test_merged_trace_deterministic () =
  (* two runs at a fixed seed produce byte-identical merged event logs,
     whatever the OS made of the domain interleaving: per-domain sinks
     are merged in worker order after the last join. K = 4 per the
     acceptance criterion; both channel builds. *)
  let st = rng 77 in
  let syntax = Sim.Workload.hotspot st ~n:12 ~m:3 ~n_vars:6 ~theta:0.4 in
  let fmt = Syntax.format syntax in
  let arrivals = Combin.Interleave.random st fmt in
  List.iter
    (fun queue ->
      let render () =
        let collector = Obs.Sink.Memory.create () in
        ignore
          (Sched.Parallel.run ~queue ~domains:env_domains ~shards:4
             ~sink:(Obs.Sink.Memory.sink collector)
             ~syntax ~arrivals:(Array.copy arrivals) ());
        Obs.Event_log.to_string (Obs.Sink.Memory.events collector)
      in
      let a = render () and b = render () in
      check_true
        (Sched.Chan.kind_name queue ^ " merged trace byte-identical")
        (String.equal a b);
      check_true "merged trace non-trivial" (String.length a > 200))
    kinds

let test_tight_capacity_backpressure () =
  (* a deliberately tiny channel forces the router to block on full
     queues mid-stream; the result must not change *)
  let st = rng 13 in
  let syntax = Sim.Workload.uniform st ~n:10 ~m:3 ~n_vars:5 in
  let fmt = Syntax.format syntax in
  let arrivals = Combin.Interleave.random st fmt in
  List.iter
    (fun queue ->
      check_true "backpressured run decision-identical"
        (let sim = simulate ~shards:4 syntax arrivals in
         let par =
           Sched.Parallel.run ~queue ~capacity:2 ~domains:env_domains
             ~shards:4 ~syntax ~arrivals:(Array.copy arrivals) ()
         in
         sim.Sched.Driver.aborts = par.Sched.Parallel.aborts
         && sim.Sched.Driver.grants = par.Sched.Parallel.grants))
    kinds

let suite =
  [
    Alcotest.test_case "chan basics (both builds)" `Quick test_chan_basic;
    Alcotest.test_case "chan close keeps backlog" `Quick
      test_chan_close_keeps_backlog;
    Alcotest.test_case "chan cross-domain MPSC" `Quick test_chan_cross_domain;
    Alcotest.test_case "single domain = simulated engine" `Quick
      test_single_domain_exact;
    Alcotest.test_case "decision-identity sweep" `Slow
      test_decision_identity_sweep;
    Alcotest.test_case "coordinator plan" `Quick test_coordinator_plan;
    Alcotest.test_case "merged trace deterministic" `Quick
      test_merged_trace_deterministic;
    Alcotest.test_case "tight-capacity backpressure" `Quick
      test_tight_capacity_backpressure;
  ]
