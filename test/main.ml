let () =
  Alcotest.run "ccopt"
    [
      ("combin", Test_combin.suite);
      ("digraph", Test_digraph.suite);
      ("expr", Test_expr.suite);
      ("model", Test_model.suite);
      ("herbrand", Test_herbrand.suite);
      ("weak-sr", Test_weak_sr.suite);
      ("adversary", Test_adversary.suite);
      ("fixpoint", Test_fixpoint.suite);
      ("locking", Test_locking.suite);
      ("geometry", Test_geometry.suite);
      ("sched", Test_sched.suite);
      ("sgt-diff", Test_sgt_diff.suite);
      ("semantic", Test_semantic.suite);
      ("registry", Test_registry.suite);
      ("sharded", Test_sharded.suite);
      ("twopc", Test_twopc.suite);
      ("chan", Test_chan.suite);
      ("parallel", Test_parallel.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("trace", Test_trace.suite);
      ("optimality", Test_optimality.suite);
      ("rw-model", Test_rw.suite);
      ("extensions", Test_extensions.suite);
      ("misc", Test_misc.suite);
      ("rw-lock", Test_rw_lock.suite);
      ("recovery", Test_recovery.suite);
      ("analysis", Test_analysis.suite);
      ("checker", Test_checker.suite);
      ("mv", Test_mv.suite);
    ]
