(* Tests for the central scheduler registry: every front end resolves
   schedulers through [Sched.Registry], so the table itself must be
   sound — every constructor works, lookup round-trips names and slugs
   case-insensitively, and the error message on an unknown scheduler
   lists everything that would have been accepted. *)

open Util
open Core

let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ]

let test_every_entry_constructs () =
  (* each registered constructor yields a working scheduler: drive it
     over the crossing workload and insist the driver terminates with
     the full output *)
  List.iter
    (fun (e : Sched.Registry.entry) ->
      let s = e.Sched.Registry.make syntax in
      check_true (e.Sched.Registry.name ^ " names itself")
        (s.Sched.Scheduler.name <> "");
      let fmt = Syntax.format syntax in
      let stats =
        Sched.Driver.run (e.Sched.Registry.make syntax) ~fmt
          ~arrivals:[| 0; 1; 0; 1 |]
      in
      check_true
        (e.Sched.Registry.name ^ " serves all steps")
        (Schedule.is_schedule_of fmt stats.Sched.Driver.output))
    Sched.Registry.all

let test_lookup_round_trips () =
  List.iter
    (fun (e : Sched.Registry.entry) ->
      let hit key =
        match Sched.Registry.find key with
        | Some e' -> e'.Sched.Registry.slug = e.Sched.Registry.slug
        | None -> false
      in
      check_true (e.Sched.Registry.name ^ " by name") (hit e.Sched.Registry.name);
      check_true (e.Sched.Registry.slug ^ " by slug") (hit e.Sched.Registry.slug);
      check_true
        (e.Sched.Registry.slug ^ " case-insensitive")
        (hit (String.uppercase_ascii e.Sched.Registry.name)
        && hit (String.uppercase_ascii e.Sched.Registry.slug)))
    Sched.Registry.all;
  check_true "unknown misses" (Sched.Registry.find "nope" = None)

let test_slugs_unique_and_derived () =
  let slugs = List.map (fun e -> e.Sched.Registry.slug) Sched.Registry.all in
  check_int "slugs unique" (List.length slugs)
    (List.length (List.sort_uniq compare slugs));
  check_true "names = slugs in order" (Sched.Registry.names = slugs);
  List.iter
    (fun (e : Sched.Registry.entry) ->
      check_true
        (e.Sched.Registry.name ^ " slug derived")
        (Sched.Registry.slug_of_name e.Sched.Registry.name
        = e.Sched.Registry.slug))
    Sched.Registry.all;
  check_true "prime spelled out"
    (Sched.Registry.slug_of_name "2PL'" = "2pl-prime")

let test_standard_subset () =
  check_true "standard is a sub-list"
    (List.for_all
       (fun (e : Sched.Registry.entry) ->
         List.memq e Sched.Registry.all && e.Sched.Registry.standard)
       Sched.Registry.standard);
  (* the reference oracle stays out of the standard suite but remains
     addressable by name *)
  check_true "sgt-ref registered, not standard"
    (match Sched.Registry.find "sgt-ref" with
    | Some e -> not e.Sched.Registry.standard
    | None -> false);
  check_true "sharded is standard"
    (match Sched.Registry.find "sharded" with
    | Some e -> e.Sched.Registry.standard
    | None -> false)

let test_declared_levels () =
  (* every declared level resolves in the checker's ladder, and the
     multi-version family is registered, standard, and declares the
     guarantees its conformance tests enforce *)
  List.iter
    (fun (e : Sched.Registry.entry) ->
      check_true
        (e.Sched.Registry.slug ^ " level resolves")
        (Analysis.Checker.level_of_name e.Sched.Registry.level <> None))
    Sched.Registry.all;
  List.iter
    (fun (slug, level) ->
      match Sched.Registry.find slug with
      | Some e ->
        check_true (slug ^ " standard") e.Sched.Registry.standard;
        check_true
          (slug ^ " declares " ^ level)
          (e.Sched.Registry.level = level)
      | None -> check_true (slug ^ " registered") false)
    [ ("mvcc", "causal"); ("si", "si"); ("ssi", "ser"); ("sgt", "ser") ]

let test_find_exn_lists_names () =
  match Sched.Registry.find_exn "no-such-engine" with
  | _ -> check_true "should have raised" false
  | exception Invalid_argument msg ->
    check_true "mentions the key"
      (String.length msg > 0 && String.index_opt msg '"' <> None);
    (* every accepted slug appears in the message *)
    List.iter
      (fun slug ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        check_true ("lists " ^ slug) (contains msg slug))
      Sched.Registry.names

let test_trace_run_uses_registry () =
  (* any registered scheduler — standard or not — round-trips through
     the trace pipeline's [only] selection *)
  let spec =
    {
      Sim.Trace_run.label = "xy,yx";
      syntax;
      seed = 42;
      capacity = Sim.Trace_run.default_capacity;
      samples = 20;
      only = [ "sgt-ref"; "SHARDED" ];
    }
  in
  let runs = Sim.Trace_run.execute spec in
  check_true "non-standard and standard both resolve"
    (List.map (fun r -> r.Sim.Trace_run.slug) runs = [ "sgt-ref"; "sharded" ])

let suite =
  [
    Alcotest.test_case "every entry constructs and runs" `Quick
      test_every_entry_constructs;
    Alcotest.test_case "lookup round-trips name and slug" `Quick
      test_lookup_round_trips;
    Alcotest.test_case "slugs unique and derived" `Quick
      test_slugs_unique_and_derived;
    Alcotest.test_case "standard subset flags" `Quick test_standard_subset;
    Alcotest.test_case "declared consistency levels" `Quick
      test_declared_levels;
    Alcotest.test_case "find_exn lists every name" `Quick
      test_find_exn_lists_names;
    Alcotest.test_case "trace pipeline resolves via registry" `Quick
      test_trace_run_uses_registry;
  ]
