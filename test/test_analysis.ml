(* Tests for the static analysis layer: anomaly detector, lock-policy
   linter, scheduler certifier. Every witness the analyzer emits is
   replayed against the semantics here — the analyzer is not trusted. *)

open Util
open Core
module R = Analysis.Report
module An = Analysis.Anomaly
module Ll = Analysis.Lock_lint
module Cert = Analysis.Certifier
module Az = Analysis.Analyze

let syn spec = Az.parse_syntax spec
let sched spec = Schedule.of_interleaving (Az.parse_interleaving spec)

let rules ds = List.map (fun d -> d.R.rule) ds
let has_rule r ds = List.mem r (rules ds)

let anomaly_error ds =
  List.find_opt
    (fun d ->
      d.R.severity = R.Error
      && String.length d.R.rule >= 8
      && String.sub d.R.rule 0 8 = "anomaly/")
    ds

(* ---------- witness replay helpers ---------- *)

(* A cycle witness is replayed by checking every consecutive edge really
   is a conflict edge of the schedule: a step of [a] precedes a step of
   [b] on the same variable. *)
let replay_cycle syntax h cycle =
  check_true "cycle has >= 2 transactions" (List.length cycle >= 2);
  let edge a b =
    let found = ref false in
    Array.iteri
      (fun p (s : Names.step_id) ->
        Array.iteri
          (fun q (t : Names.step_id) ->
            if
              p < q && s.tx = a && t.tx = b
              && Syntax.var syntax s = Syntax.var syntax t
            then found := true)
          h)
      h;
    !found
  in
  let rec edges = function
    | a :: (b :: _ as rest) ->
      check_true "cycle edge exists" (edge a b);
      edges rest
    | [ last ] -> check_true "closing edge exists" (edge last (List.hd cycle))
    | [] -> ()
  in
  edges cycle

(* ---------- anomaly classification fixtures ---------- *)

let test_write_skew_atomic () =
  let syntax = syn "xy,yx" in
  let h = sched "0101" in
  let ds = An.check syntax h in
  check_true "write skew" (has_rule "anomaly/write-skew" ds);
  check_true "herbrand agrees" (has_rule "anomaly/herbrand-agreement" ds);
  match anomaly_error ds with
  | Some { R.witness = Some (R.Cycle c); _ } ->
    replay_cycle syntax h c;
    check_false "really not serializable" (Herbrand.serializable syntax h)
  | _ -> Alcotest.fail "expected a cycle witness"

let test_non_repeatable_atomic () =
  let syntax = syn "xx,x" in
  let h = sched "010" in
  let ds = An.check syntax h in
  check_true "non-repeatable read"
    (has_rule "anomaly/non-repeatable-read" ds);
  match anomaly_error ds with
  | Some { R.witness = Some (R.Cycle c); _ } -> replay_cycle syntax h c
  | _ -> Alcotest.fail "expected a cycle witness"

let test_lost_update_rw () =
  (* r1(x) r2(x) w1(x) w2(x): T2 overwrites T1's update unseen. *)
  let h =
    Rw_model.interleave
      [
        [ Rw_model.read "x"; Rw_model.write "x" ];
        [ Rw_model.read "x"; Rw_model.write "x" ];
      ]
      [| 0; 1; 0; 1 |]
  in
  let ds = An.check_history 2 h in
  check_true "lost update" (has_rule "anomaly/lost-update" ds)

let test_dirty_read_rw () =
  (* w1(x) r2(x) w2(y) r1(y): T2 reads mid-flight T1. *)
  let h =
    Rw_model.interleave
      [
        [ Rw_model.write "x"; Rw_model.read "y" ];
        [ Rw_model.read "x"; Rw_model.write "y" ];
      ]
      [| 0; 1; 1; 0 |]
  in
  let ds = An.check_history 2 h in
  check_true "dirty read" (has_rule "anomaly/dirty-read" ds)

let test_write_skew_rw () =
  (* r1(x) r2(y) w1(y) w2(x): the classical write skew. *)
  let h =
    Rw_model.interleave
      [
        [ Rw_model.read "x"; Rw_model.write "y" ];
        [ Rw_model.read "y"; Rw_model.write "x" ];
      ]
      [| 0; 1; 0; 1 |]
  in
  let ds = An.check_history 2 h in
  check_true "write skew" (has_rule "anomaly/write-skew" ds)

let test_three_cycle_generic () =
  (* T3 T2 T1 interleaved so the conflict graph is a pure 3-cycle:
     no pairwise pattern applies. *)
  let syntax = syn "xy,zy,xz" in
  let h = sched "210012" in
  let ds = An.check syntax h in
  check_true "generic cycle" (has_rule "anomaly/serialization-cycle" ds);
  match anomaly_error ds with
  | Some { R.witness = Some (R.Cycle c); _ } ->
    check_int "three transactions" 3 (List.length c);
    replay_cycle syntax h c
  | _ -> Alcotest.fail "expected a cycle witness"

let test_serializable_reported () =
  let syntax = syn "xy,yx" in
  let ds = An.check syntax (sched "0011") in
  check_true "serializable info" (has_rule "anomaly/serializable" ds);
  check_true "no errors"
    (List.for_all (fun d -> d.R.severity <> R.Error) ds)

(* minimal cycle really is minimal: a graph with a 3-cycle and a 2-cycle
   must yield the 2-cycle *)
let test_minimal_cycle_minimal () =
  let g = Digraph.create 4 in
  List.iter
    (fun (u, v) -> Digraph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 2) ];
  match An.minimal_cycle g with
  | Some c -> check_int "length 2" 2 (List.length c)
  | None -> Alcotest.fail "cycle expected"

(* ---------- cross-validation over whole schedule spaces ---------- *)

let test_cross_validation_exhaustive () =
  List.iter
    (fun spec ->
      let syntax = syn spec in
      let fmt = Syntax.format syntax in
      let sys = Sim.Workload.counters syntax in
      let probes = Weak_sr.default_probes ~seed:11 ~count:6 sys in
      List.iter
        (fun h ->
          let ds = An.check syntax h in
          let conflict_ok = Conflict.serializable syntax h in
          (* the detector flags an anomaly iff the conflict test (and,
             per the model, the Herbrand test) rejects *)
          check_true "anomaly iff non-serializable"
            (conflict_ok = (anomaly_error ds = None));
          check_true "cross-check ran and agreed"
            (has_rule "anomaly/herbrand-agreement" ds);
          (* WSR ⊇ SR: a weakly-refuted schedule must be flagged *)
          if not (Weak_sr.is_weakly_serializable sys ~probes h) then
            check_true "non-WSR implies anomaly" (anomaly_error ds <> None))
        (Schedule.all fmt))
    [ "xy,yx"; "xx,x"; "xyx,yx" ]

(* expansion preserves the transaction-level conflict graph *)
let prop_expand_preserves_conflicts =
  QCheck.Test.make ~name:"rw expansion preserves conflict verdict" ~count:80
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      let n = Syntax.n_transactions syntax in
      let rwh = An.expand syntax h in
      Rw_model.conflict_serializable n rwh = Conflict.serializable syntax h)

(* ---------- lock linter ---------- *)

let test_lint_2pl_deadlock_witness () =
  let syntax = syn "xy,yx" in
  let policy = Az.policy_of_name "2pl" in
  let ds = Ll.lint (Ll.of_policy policy syntax) in
  check_true "two-phase info" (has_rule "lock/two-phase" ds);
  check_true "separable" (has_rule "lock/separable" ds);
  check_true "outputs serializable" (has_rule "lock/outputs-serializable" ds);
  match List.find_opt (fun d -> d.R.rule = "lock/deadlock") ds with
  | Some { R.witness = Some (R.Progress (p, prefix)); _ } ->
    let locked = policy.Locking.Policy.apply syntax in
    (* replay: the prefix is legal, reaches p, and no extension of it
       can complete — the point is genuinely doomed *)
    check_true "prefix legal" (Locking.Locked.legal_prefix locked prefix);
    Array.iteri
      (fun i pi ->
        check_int "prefix reaches the vector" pi
          (Array.fold_left
             (fun acc t -> if t = i then acc + 1 else acc)
             0 prefix))
      p;
    let fmt = Locking.Locked.format locked in
    let remaining = Array.mapi (fun i l -> l - p.(i)) fmt in
    let completions =
      List.filter
        (fun ext ->
          Locking.Locked.legal locked (Array.append prefix ext))
        (Combin.Interleave.all remaining)
    in
    check_true "no completion from the deadlock point" (completions = []);
    (* and the geometry agrees with itself on the point *)
    let geo = Locking.Geometry_nd.analyse locked in
    check_true "nD geometry calls it deadlock"
      (Locking.Geometry_nd.deadlock geo p)
  | _ -> Alcotest.fail "expected a progress witness"

let non_two_phase_locked =
  (* releases x before locking y: incorrect locking (Figure 4(c)) *)
  let s = Examples.fig3_pair in
  let tx i =
    [
      Locking.Locked.Lock "x";
      Locking.Locked.Action (Names.step i 0);
      Locking.Locked.Unlock "x";
      Locking.Locked.Lock "y";
      Locking.Locked.Action (Names.step i 1);
      Locking.Locked.Unlock "y";
    ]
  in
  Locking.Locked.make s [ tx 0; tx 1 ]

let test_lint_non_two_phase_output () =
  let ds = Ll.lint (Ll.of_locked non_two_phase_locked) in
  check_true "two-phase warning"
    (List.exists
       (fun d -> d.R.rule = "lock/two-phase" && d.R.severity = R.Warning)
       ds);
  match
    List.find_opt (fun d -> d.R.rule = "lock/non-serializable-output") ds
  with
  | Some { R.witness = Some (R.Locked_run il); _ } ->
    check_true "witness interleaving is legal"
      (Locking.Locked.legal non_two_phase_locked il);
    check_false "its projection is not serializable"
      (Conflict.serializable Examples.fig3_pair
         (Locking.Locked.project non_two_phase_locked il))
  | _ -> Alcotest.fail "expected a locked-run witness"

let test_lint_coverage_and_pairing () =
  let s = syn "x,x" in
  (* T1 accesses x with no lock at all; T2 locks but never unlocks *)
  let input =
    {
      Ll.base = s;
      txs =
        [
          [ Locking.Locked.Action (Names.step 0 0) ];
          [
            Locking.Locked.Lock "x";
            Locking.Locked.Action (Names.step 1 0);
          ];
        ];
      policy = None;
    }
  in
  let ds = Ll.lint input in
  check_true "pairing error"
    (List.exists
       (fun d -> d.R.rule = "lock/pairing" && d.R.severity = R.Error)
       ds);
  (* pairing failed: deeper checks skipped; fix pairing, break coverage *)
  let input2 =
    {
      Ll.base = s;
      txs =
        [
          [ Locking.Locked.Action (Names.step 0 0) ];
          [
            Locking.Locked.Lock "x";
            Locking.Locked.Action (Names.step 1 0);
            Locking.Locked.Unlock "x";
          ];
        ];
      policy = None;
    }
  in
  let ds2 = Ll.lint input2 in
  check_true "coverage error"
    (List.exists
       (fun d ->
         d.R.rule = "lock/coverage" && d.R.severity = R.Error
         && d.R.steps = [ Names.step 0 0 ])
       ds2)

let test_lint_unlock_without_lock () =
  let s = syn "x" in
  let input =
    {
      Ll.base = s;
      txs =
        [
          [
            Locking.Locked.Unlock "x";
            Locking.Locked.Action (Names.step 0 0);
          ];
        ];
      policy = None;
    }
  in
  check_true "unpaired unlock reported"
    (List.exists
       (fun d -> d.R.rule = "lock/pairing" && d.R.severity = R.Error)
       (Ll.lint input))

let test_lint_preclaim_deadlock_free () =
  let ds = Ll.lint (Ll.of_policy (Az.policy_of_name "preclaim") (syn "xy,yx")) in
  check_true "deadlock-free" (has_rule "lock/deadlock-free" ds);
  check_false "no deadlock warning" (has_rule "lock/deadlock" ds)

let test_lint_non_separable () =
  (* a policy that preclaims every variable of the whole system: what it
     locks in T1 depends on T2's accesses *)
  let global_preclaim =
    {
      Locking.Policy.name = "global-preclaim";
      apply =
        (fun syntax ->
          let vars = Syntax.vars syntax in
          Locking.Locked.make syntax
            (List.init (Syntax.n_transactions syntax) (fun i ->
                 List.map (fun v -> Locking.Locked.Lock v) vars
                 @ List.init (Syntax.length syntax i) (fun j ->
                       Locking.Locked.Action (Names.step i j))
                 @ List.map (fun v -> Locking.Locked.Unlock v) vars)));
    }
  in
  (* on xy,yz the transactions have different variable sets, so locking
     the union is visibly non-separable *)
  let ds = Ll.lint (Ll.of_policy global_preclaim (syn "xy,yz")) in
  check_true "non-separable" (has_rule "lock/non-separable" ds);
  check_true "still deadlock free" (has_rule "lock/deadlock-free" ds)

(* ---------- certifier ---------- *)

let test_certify_sgt_passes () =
  let syntax = syn "xy,yx" in
  let ds =
    Cert.certify ~name:"sgt"
      ~make:(Az.scheduler_of_name syntax "sgt")
      ~level:Cert.Syntactic syntax
  in
  check_true "bound respected"
    (List.exists
       (fun d ->
         d.R.rule = "certify/information-bound" && d.R.severity = R.Info)
       ds)

let test_certify_serial_passes () =
  let syntax = syn "xx,x" in
  let ds =
    Cert.certify ~name:"serial"
      ~make:(Az.scheduler_of_name syntax "serial")
      ~level:Cert.Format_only syntax
  in
  check_true "bound respected"
    (List.for_all (fun d -> d.R.severity <> R.Error) ds)

let test_certify_catches_greedy () =
  (* a scheduler that grants everything claims P = H; at the format-only
     level the bound is the serial schedules — violations must surface *)
  let syntax = syn "xx,x" in
  let greedy () =
    Sched.Scheduler.make ~name:"greedy"
      ~attempt:(fun _ -> Sched.Scheduler.Grant)
      ~commit:(fun _ -> ())
      ()
  in
  let ds =
    Cert.certify ~name:"greedy" ~make:greedy ~level:Cert.Format_only syntax
  in
  let violations =
    List.filter
      (fun d ->
        d.R.rule = "certify/information-bound" && d.R.severity = R.Error)
      ds
  in
  check_true "violations found" (violations <> []);
  List.iter
    (fun d ->
      match d.R.witness with
      | Some (R.History h) ->
        (* replay: greedy really passes it with zero delay, and it is
           not serial — so no format-only scheduler may pass it *)
        let stats =
          Sched.Driver.run (greedy ())
            ~fmt:(Syntax.format syntax)
            ~arrivals:(Schedule.to_interleaving h)
        in
        check_true "greedy passes the witness" (Sched.Driver.zero_delay stats);
        check_false "witness is not serial" (Schedule.is_serial h)
      | _ -> Alcotest.fail "expected a history witness")
    violations

(* ---------- report plumbing and the front end ---------- *)

let test_report_json () =
  let syntax = syn "xy,yx" in
  let report =
    Az.run (Az.request ~schedule:[| 0; 1; 0; 1 |] ~policy:"2pl" syntax)
  in
  check_true "has errors" (R.errors report > 0);
  check_true "has deadlock warning" (R.find "lock/deadlock" report <> None);
  let json = R.to_json report in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec at i = i + nl <= hl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle -> check_true ("json contains " ^ needle) (contains needle))
    [
      (* every machine-readable report opens with its version stamp *)
      Printf.sprintf "{\"schema_version\":%d" R.schema_version;
      "\"rule\":\"anomaly/write-skew\"";
      "\"kind\":\"cycle\"";
      "\"kind\":\"progress\"";
      "\"summary\"";
    ]

let test_analyze_nothing_to_do () =
  let report = Az.run (Az.request (syn "xy,yx")) in
  check_true "explains itself" (R.find "analyze/nothing-to-do" report <> None)

let suite =
  [
    Alcotest.test_case "write skew (atomic)" `Quick test_write_skew_atomic;
    Alcotest.test_case "non-repeatable read (atomic)" `Quick
      test_non_repeatable_atomic;
    Alcotest.test_case "lost update (rw)" `Quick test_lost_update_rw;
    Alcotest.test_case "dirty read (rw)" `Quick test_dirty_read_rw;
    Alcotest.test_case "write skew (rw)" `Quick test_write_skew_rw;
    Alcotest.test_case "three-cycle generic" `Quick test_three_cycle_generic;
    Alcotest.test_case "serializable reported" `Quick
      test_serializable_reported;
    Alcotest.test_case "minimal cycle is minimal" `Quick
      test_minimal_cycle_minimal;
    Alcotest.test_case "cross-validation (exhaustive)" `Quick
      test_cross_validation_exhaustive;
    Alcotest.test_case "2PL deadlock witness replay" `Quick
      test_lint_2pl_deadlock_witness;
    Alcotest.test_case "non-2PL output witness replay" `Quick
      test_lint_non_two_phase_output;
    Alcotest.test_case "coverage and pairing" `Quick
      test_lint_coverage_and_pairing;
    Alcotest.test_case "unlock without lock" `Quick
      test_lint_unlock_without_lock;
    Alcotest.test_case "preclaim deadlock free" `Quick
      test_lint_preclaim_deadlock_free;
    Alcotest.test_case "non-separable policy" `Quick test_lint_non_separable;
    Alcotest.test_case "certify sgt" `Quick test_certify_sgt_passes;
    Alcotest.test_case "certify serial" `Quick test_certify_serial_passes;
    Alcotest.test_case "certify catches greedy" `Quick
      test_certify_catches_greedy;
    Alcotest.test_case "report json" `Quick test_report_json;
    Alcotest.test_case "nothing to do" `Quick test_analyze_nothing_to_do;
  ]
  @ qsuite [ prop_expand_preserves_conflicts ]
