(* Property tests for the observability primitives in [lib/obs]:
   histogram conservation and merge algebra, the §6 span invariant, and
   the ring-buffer drop accounting against a list model. *)

open Util

(* ---------- histograms ---------- *)

let hist_of values =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.add h) values;
  h

let small_values_gen =
  QCheck.Gen.(list_size (int_range 0 40) (int_range 0 10_000))

let small_values = QCheck.make small_values_gen

let prop_hist_conservation =
  QCheck.Test.make ~count:200 ~name:"hist: count and total conserved"
    small_values (fun vs ->
      let h = hist_of vs in
      Obs.Hist.count h = List.length vs
      && Obs.Hist.total h = List.fold_left ( + ) 0 vs
      && List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Obs.Hist.buckets h)
         = List.length vs)

let prop_hist_buckets =
  QCheck.Test.make ~count:500 ~name:"hist: bucket bounds contain the value"
    (QCheck.make (QCheck.Gen.int_range 0 (1 lsl 40)))
    (fun v ->
      let k = Obs.Hist.bucket_of v in
      let lo, hi = Obs.Hist.bounds k in
      lo <= v && v <= hi && Obs.Hist.bucket_of (v + 1) >= k)

let prop_hist_merge =
  QCheck.Test.make ~count:200 ~name:"hist: merge commutative and associative"
    QCheck.(triple small_values small_values small_values)
    (fun (a, b, c) ->
      let ha = hist_of a and hb = hist_of b and hc = hist_of c in
      Obs.Hist.equal (Obs.Hist.merge ha hb) (Obs.Hist.merge hb ha)
      && Obs.Hist.equal
           (Obs.Hist.merge (Obs.Hist.merge ha hb) hc)
           (Obs.Hist.merge ha (Obs.Hist.merge hb hc))
      && Obs.Hist.equal (Obs.Hist.merge ha hb) (hist_of (a @ b)))

let prop_hist_quantile =
  QCheck.Test.make ~count:300 ~name:"hist: quantile upper-bounds the value"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 40) (int_range 0 10_000))
           (float_range 0. 1.)))
    (fun (vs, q) ->
      let h = hist_of vs in
      let sorted = List.sort compare vs in
      let n = List.length vs in
      let target =
        max 1 (int_of_float (ceil (q *. float_of_int n)))
      in
      let exact = List.nth sorted (target - 1) in
      match Obs.Hist.quantile h q with
      | None -> false
      | Some ub ->
        ub >= exact && (if exact = 0 then ub = 0 else ub <= (2 * exact) - 1))

let test_hist_empty () =
  let h = Obs.Hist.create () in
  check_int "empty count" 0 (Obs.Hist.count h);
  check_true "empty mean" (Obs.Hist.mean h = 0.);
  check_true "empty quantile" (Obs.Hist.quantile h 0.5 = None);
  check_true "negative add rejected"
    (try
       Obs.Hist.add h (-1);
       false
     with Invalid_argument _ -> true)

(* ---------- spans ---------- *)

let phase_of_int = function
  | 0 -> Obs.Span.Scheduling
  | 1 -> Obs.Span.Waiting
  | _ -> Obs.Span.Executing

let prop_span_invariant =
  (* arbitrary phase walks with integer-valued clocks: the decomposition
     tiles the timeline, so the invariant is exact, not approximate *)
  QCheck.Test.make ~count:300
    ~name:"span: scheduling + waiting + execution = elapsed"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 30) (pair (int_range 0 5) (int_range 0 2))))
    (fun walk ->
      let sp = Obs.Span.create 1 in
      let now = ref 0. in
      List.iter
        (fun (dt, ph) ->
          now := !now +. float_of_int dt;
          Obs.Span.enter sp 0 ~now:!now (phase_of_int ph))
        walk;
      now := !now +. 1.;
      Obs.Span.finish sp 0 ~now:!now;
      let b = Obs.Span.breakdown sp 0 in
      b.Obs.Span.scheduling +. b.Obs.Span.waiting +. b.Obs.Span.execution
      = b.Obs.Span.elapsed)

let test_span_edges () =
  let sp = Obs.Span.create 2 in
  check_true "unstarted" (not (Obs.Span.started sp 0));
  let b = Obs.Span.breakdown sp 0 in
  check_true "unstarted all zero"
    (b.Obs.Span.scheduling = 0. && b.Obs.Span.elapsed = 0.);
  Obs.Span.enter sp 0 ~now:3. Obs.Span.Scheduling;
  Obs.Span.enter sp 0 ~now:5. Obs.Span.Executing;
  Obs.Span.finish sp 0 ~now:9.;
  let b = Obs.Span.breakdown sp 0 in
  check_true "scheduling credited" (b.Obs.Span.scheduling = 2.);
  check_true "execution credited" (b.Obs.Span.execution = 4.);
  check_true "elapsed from first enter" (b.Obs.Span.elapsed = 6.);
  check_true "backwards clock rejected"
    (try
       Obs.Span.enter sp 1 ~now:1. Obs.Span.Scheduling;
       Obs.Span.enter sp 1 ~now:0. Obs.Span.Waiting;
       false
     with Invalid_argument _ -> true);
  check_true "finished span frozen"
    (try
       Obs.Span.enter sp 0 ~now:10. Obs.Span.Waiting;
       false
     with Invalid_argument _ -> true);
  (* totals sums per-transaction breakdowns *)
  let t = Obs.Span.totals sp in
  check_true "totals include both" (t.Obs.Span.scheduling >= 2.)

(* ---------- sinks ---------- *)

let ev i = Obs.Event.Submitted { tx = i; idx = 0 }

let test_null_sink () =
  check_true "null is off" (not (Obs.Sink.on Obs.Sink.null));
  (* all operations are no-ops *)
  Obs.Sink.set_now Obs.Sink.null 5.;
  Obs.Sink.record Obs.Sink.null (ev 0);
  Obs.Sink.record_at Obs.Sink.null 3. (ev 1)

let test_memory_sink () =
  let c = Obs.Sink.Memory.create () in
  let sink = Obs.Sink.Memory.sink c in
  check_true "memory is on" (Obs.Sink.on sink);
  Obs.Sink.set_now sink 1.;
  Obs.Sink.record sink (ev 0);
  Obs.Sink.record_at sink 7. (ev 1);
  Obs.Sink.set_now sink 9.;
  Obs.Sink.record sink (ev 2);
  check_int "memory length" 3 (Obs.Sink.Memory.length c);
  check_true "emission order with timestamps"
    (Obs.Sink.Memory.events c = [ (1., ev 0); (7., ev 1); (9., ev 2) ]);
  Obs.Sink.Memory.clear c;
  check_int "cleared" 0 (Obs.Sink.Memory.length c)

let prop_ring_model =
  (* fixed-capacity ring vs a list model: keeps the latest [capacity]
     emissions in order and counts exactly the overwritten rest *)
  QCheck.Test.make ~count:300 ~name:"ring: differential vs list model"
    (QCheck.make QCheck.Gen.(pair (int_range 1 16) (int_range 0 64)))
    (fun (capacity, pushes) ->
      let buf = Obs.Sink.Ring.create ~capacity in
      let sink = Obs.Sink.Ring.sink buf in
      let model = ref [] in
      for i = 1 to pushes do
        Obs.Sink.record_at sink (float_of_int i) (ev i);
        model := (float_of_int i, ev i) :: !model
      done;
      let keep = min pushes capacity in
      let expect =
        List.rev
          (List.filteri (fun k _ -> k < keep) !model)
      in
      Obs.Sink.Ring.events buf = expect
      && Obs.Sink.Ring.length buf = keep
      && Obs.Sink.Ring.dropped buf = max 0 (pushes - capacity)
      && Obs.Sink.Ring.capacity buf = capacity)

let test_ring_clear () =
  let buf = Obs.Sink.Ring.create ~capacity:2 in
  let sink = Obs.Sink.Ring.sink buf in
  for i = 1 to 5 do
    Obs.Sink.record_at sink (float_of_int i) (ev i)
  done;
  check_int "dropped before clear" 3 (Obs.Sink.Ring.dropped buf);
  Obs.Sink.Ring.clear buf;
  check_int "cleared length" 0 (Obs.Sink.Ring.length buf);
  check_int "cleared dropped" 0 (Obs.Sink.Ring.dropped buf);
  check_true "bad capacity rejected"
    (try
       ignore (Obs.Sink.Ring.create ~capacity:0);
       false
     with Invalid_argument _ -> true)

(* ---------- event-log round trip ---------- *)

let log_fixture =
  (* one event of every shape, with timestamps that exercise the
     17-digit float round trip *)
  [
    (0., Obs.Event.Submitted { tx = 0; idx = 0 });
    (1.5, Obs.Event.Delayed { tx = 0; idx = 0 });
    (2.7182818284590452, Obs.Event.Granted { tx = 0; idx = 0 });
    (3.1, Obs.Event.Executed { tx = 0; idx = 0 });
    (4., Obs.Event.Aborted { tx = 1; reason = Obs.Event.Deadlock });
    (4., Obs.Event.Aborted { tx = 2; reason = Obs.Event.Scheduler_abort });
    (5., Obs.Event.Restarted { tx = 1 });
    (6., Obs.Event.Committed { tx = 0 });
    (7., Obs.Event.Edge_added { src = 1; dst = 2 });
    (8., Obs.Event.Cycle_refused { tx = 1; idx = 1 });
    (9., Obs.Event.Lock_acquired { tx = 1; lock = "x" });
    (10., Obs.Event.Lock_released { tx = 1; lock = "x" });
    (11., Obs.Event.Wound { victim = 2 });
    (12., Obs.Event.Ts_refused { tx = 2; idx = 0 });
    (13., Obs.Event.Shard_routed { tx = 2; idx = 0; shard = 3 });
    (* the 2PC vocabulary: every payload shape at least once *)
    (14., Obs.Event.Twopc_sent { tx = 2; src = 4; dst = 0; msg = Obs.Event.Prepare });
    (14.5, Obs.Event.Twopc_delivered { tx = 2; src = 4; dst = 0; msg = Obs.Event.Prepare });
    (15., Obs.Event.Twopc_sent { tx = 2; src = 0; dst = 4; msg = Obs.Event.Vote true });
    (15.5, Obs.Event.Twopc_delivered { tx = 2; src = 1; dst = 4; msg = Obs.Event.Vote false });
    (16., Obs.Event.Twopc_timeout { tx = 2; node = 4; timer = "vote" });
    (16.5, Obs.Event.Twopc_sent { tx = 2; src = 4; dst = 0; msg = Obs.Event.Decision false });
    (17., Obs.Event.Twopc_delivered { tx = 2; src = 4; dst = 0; msg = Obs.Event.Decision true });
    (17.5, Obs.Event.Twopc_decided { tx = 2; node = 4; commit = false });
    (18., Obs.Event.Node_crashed { tx = 2; node = 0 });
    (18.5, Obs.Event.Node_recovered { tx = 2; node = 0 });
    (19., Obs.Event.Twopc_sent { tx = 2; src = 0; dst = 4; msg = Obs.Event.Decision_req });
    (19.5, Obs.Event.Twopc_sent { tx = 2; src = 0; dst = 4; msg = Obs.Event.Ack });
    (20., Obs.Event.Twopc_decided { tx = 2; node = 0; commit = true });
  ]

let test_event_log_roundtrip () =
  let text = Obs.Event_log.to_string ~dropped:5 log_fixture in
  (match Obs.Event_log.parse text with
  | Ok (events, dropped) ->
    check_true "events round-trip" (events = log_fixture);
    check_int "dropped round-trips" 5 dropped
  | Error msg -> Alcotest.fail msg);
  (* default dropped is 0; blank lines and unknown comments tolerated *)
  match Obs.Event_log.parse ("\n" ^ Obs.Event_log.to_string log_fixture ^ "# future metadata\n") with
  | Ok (events, dropped) ->
    check_true "events round-trip (default)" (events = log_fixture);
    check_int "dropped defaults to 0" 0 dropped
  | Error msg -> Alcotest.fail msg

let test_event_log_rejects () =
  let reject name text =
    match Obs.Event_log.parse text with
    | Ok _ -> Alcotest.fail (name ^ ": malformed log accepted")
    | Error msg -> check_true (name ^ " error cites a line")
        (String.length msg > 0)
  in
  reject "missing header" "0 submitted tx=0 idx=0\n";
  reject "future version" "# ccopt-events 2\n";
  reject "unknown event" "# ccopt-events 1\n0 teleported tx=0\n";
  reject "missing field" "# ccopt-events 1\n0 submitted tx=0\n";
  reject "bad integer" "# ccopt-events 1\n0 submitted tx=zero idx=0\n";
  reject "bad timestamp" "# ccopt-events 1\nnever submitted tx=0 idx=0\n";
  reject "bad abort reason" "# ccopt-events 1\n0 aborted tx=0 reason=tired\n";
  reject "bad 2PC payload"
    "# ccopt-events 1\n0 twopc-sent tx=0 src=0 dst=1 msg=carrier-pigeon\n";
  reject "bad 2PC commit flag"
    "# ccopt-events 1\n0 twopc-decided tx=0 node=1 commit=maybe\n";
  reject "negative dropped" "# ccopt-events 1\n# dropped -1\n";
  (* two # dropped headers: concatenated or hand-edited logs; the old
     parser silently let the last one win *)
  reject "duplicate dropped header"
    "# ccopt-events 1\n# dropped 1\n# dropped 2\n0 submitted tx=0 idx=0\n";
  (* a final line without its newline is a log truncated mid-write, not
     a complete event; the old parser accepted it as data *)
  reject "missing trailing newline"
    "# ccopt-events 1\n# dropped 0\n0 submitted tx=0 idx=0";
  reject "unterminated header" "# ccopt-events 1"

let test_event_log_error_positions () =
  (* structural errors carry the offending line number *)
  let line_of text =
    match Obs.Event_log.parse text with
    | Ok _ -> Alcotest.fail "malformed log accepted"
    | Error msg ->
      check_true "error cites a line"
        (String.length msg > 5 && String.sub msg 0 5 = "line ");
      int_of_string (String.sub msg 5 (String.index msg ':' - 5))
  in
  check_int "duplicate dropped cites its own line" 3
    (line_of "# ccopt-events 1\n# dropped 1\n# dropped 2\n");
  check_int "truncated final line cited" 3
    (line_of "# ccopt-events 1\n# dropped 0\n0 submitted tx=0 idx=0");
  (* the truncation error wins over the line's own malformation: the
     data may simply be cut short *)
  check_int "truncated malformed line cited" 2
    (line_of "# ccopt-events 1\n0 submitted tx=")

(* ---------- event-log fuzz: parse ∘ print = id ---------- *)

let any_event_gen =
  QCheck.Gen.(
    let id = int_range 0 9 in
    let payload =
      oneofl
        [
          Obs.Event.Prepare;
          Obs.Event.Vote true;
          Obs.Event.Vote false;
          Obs.Event.Decision true;
          Obs.Event.Decision false;
          Obs.Event.Ack;
          Obs.Event.Decision_req;
        ]
    in
    let timer = oneofl [ "prepare"; "vote"; "decision"; "ack" ] in
    oneof
      [
        map2 (fun tx idx -> Obs.Event.Submitted { tx; idx }) id id;
        map2 (fun tx idx -> Obs.Event.Delayed { tx; idx }) id id;
        map2 (fun tx idx -> Obs.Event.Granted { tx; idx }) id id;
        map2 (fun tx idx -> Obs.Event.Executed { tx; idx }) id id;
        map2
          (fun tx dl ->
            Obs.Event.Aborted
              {
                tx;
                reason =
                  (if dl then Obs.Event.Deadlock
                   else Obs.Event.Scheduler_abort);
              })
          id bool;
        map (fun tx -> Obs.Event.Restarted { tx }) id;
        map (fun tx -> Obs.Event.Committed { tx }) id;
        map2 (fun src dst -> Obs.Event.Edge_added { src; dst }) id id;
        map2 (fun tx idx -> Obs.Event.Cycle_refused { tx; idx }) id id;
        map2 (fun tx idx -> Obs.Event.Shard_routed { tx; idx; shard = 1 }) id id;
        map3
          (fun tx src msg -> Obs.Event.Twopc_sent { tx; src; dst = src + 1; msg })
          id id payload;
        map3
          (fun tx src msg ->
            Obs.Event.Twopc_delivered { tx; src; dst = src + 1; msg })
          id id payload;
        map3
          (fun tx node commit -> Obs.Event.Twopc_decided { tx; node; commit })
          id id bool;
        map3
          (fun tx node timer -> Obs.Event.Twopc_timeout { tx; node; timer })
          id id timer;
        map2 (fun tx node -> Obs.Event.Node_crashed { tx; node }) id id;
        map2 (fun tx node -> Obs.Event.Node_recovered { tx; node }) id id;
      ])

let trace_gen =
  QCheck.Gen.(
    pair (int_range 0 5)
      (list_size (int_range 0 60)
         (pair (map (fun i -> float_of_int i /. 7.) (int_range 0 10_000))
            any_event_gen)))

let prop_log_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"event log: parse ∘ print = id on fuzzed traces (incl. 2PC)"
    (QCheck.make trace_gen)
    (fun (dropped, events) ->
      match Obs.Event_log.parse (Obs.Event_log.to_string ~dropped events) with
      | Ok (es, d) -> es = events && d = dropped
      | Error _ -> false)

(* ---------- ring truncation propagates to checker Unknown ---------- *)

let test_ring_truncation_unknown () =
  (* record a real contended run through a ring too small for it: the
     drop counter is the only evidence entire transactions may be gone,
     so the reconstructed history must be marked incomplete and the
     checker must answer Unknown at every level instead of risking a
     false verdict *)
  let syntax =
    Core.Syntax.of_lists
      [ [ "x"; "y" ]; [ "y"; "x" ]; [ "x"; "z" ]; [ "z"; "y" ] ]
  in
  let fmt = Core.Syntax.format syntax in
  let buf = Obs.Sink.Ring.create ~capacity:8 in
  let sink = Obs.Sink.Ring.sink buf in
  let arrivals = Combin.Interleave.random (rng 2) fmt in
  let _ =
    Sched.Driver.run ~sink (Sched.Sgt.create ~sink ~syntax ()) ~fmt ~arrivals
  in
  check_true "the ring actually dropped" (Obs.Sink.Ring.dropped buf > 0);
  let h =
    Sim.Check_fuzz.history_of_events ~label:"ring-truncated" ~complete:false
      syntax (Obs.Sink.Ring.events buf)
  in
  List.iter
    (fun (r : Analysis.Checker.result) ->
      match r.Analysis.Checker.verdict with
      | Analysis.Checker.Unknown _ -> ()
      | _ -> Alcotest.fail "truncated trace produced a definite verdict")
    (Analysis.Checker.check_all h)

(* ---------- history reconstruction from lifecycle traces ---------- *)

let lifecycle tx steps =
  (* a complete incarnation: submit/grant/execute per step, then commit *)
  List.concat_map
    (fun idx ->
      [
        Obs.Event.Submitted { tx; idx };
        Obs.Event.Granted { tx; idx };
        Obs.Event.Executed { tx; idx };
      ])
    steps
  @ [ Obs.Event.Committed { tx } ]

let stamp events = List.mapi (fun i e -> (float_of_int i, e)) events

let test_fold_history () =
  let events = stamp (lifecycle 0 [ 0; 1 ] @ lifecycle 1 [ 0 ]) in
  let fh = Obs.Fold.history events in
  check_true "steps in execution order"
    (fh.Obs.Fold.steps = [ (0, 0); (0, 1); (1, 0) ]);
  check_true "commits recorded" (fh.Obs.Fold.commits = [ 0; 1 ]);
  check_false "complete trace not truncated" fh.Obs.Fold.truncated;
  (* an aborted incarnation's steps are discarded, the retry's kept *)
  let with_restart =
    stamp
      ([
         Obs.Event.Submitted { tx = 0; idx = 0 };
         Obs.Event.Granted { tx = 0; idx = 0 };
         Obs.Event.Executed { tx = 0; idx = 0 };
         Obs.Event.Aborted { tx = 0; reason = Obs.Event.Scheduler_abort };
         Obs.Event.Restarted { tx = 0 };
       ]
      @ lifecycle 0 [ 0; 1 ])
  in
  let fh = Obs.Fold.history with_restart in
  check_true "aborted incarnation discarded"
    (fh.Obs.Fold.steps = [ (0, 0); (0, 1) ]);
  check_false "restart is not truncation" fh.Obs.Fold.truncated

let test_fold_history_truncated () =
  (* first recorded execution of an incarnation is not step 0: the
     trace starts mid-stream and must say so *)
  let mid = stamp (lifecycle 0 [ 1; 2 ]) in
  check_true "mid-transaction start flagged"
    (Obs.Fold.history mid).Obs.Fold.truncated;
  (* a commit with no recorded executions at all *)
  let bare = stamp [ Obs.Event.Committed { tx = 3 } ] in
  check_true "bare commit flagged" (Obs.Fold.history bare).Obs.Fold.truncated;
  (* uncommitted steps are dropped from the reconstruction but do not
     count as truncation by themselves *)
  let uncommitted =
    stamp
      (lifecycle 0 [ 0 ]
      @ [
          Obs.Event.Submitted { tx = 1; idx = 0 };
          Obs.Event.Granted { tx = 1; idx = 0 };
          Obs.Event.Executed { tx = 1; idx = 0 };
        ])
  in
  let fh = Obs.Fold.history uncommitted in
  check_true "only committed steps kept" (fh.Obs.Fold.steps = [ (0, 0) ]);
  check_true "only committed txns listed" (fh.Obs.Fold.commits = [ 0 ]);
  check_false "in-flight work is not truncation" fh.Obs.Fold.truncated

let suite =
  [
    Alcotest.test_case "hist empty and errors" `Quick test_hist_empty;
    Alcotest.test_case "event log round trip" `Quick test_event_log_roundtrip;
    Alcotest.test_case "event log rejects junk" `Quick test_event_log_rejects;
    Alcotest.test_case "event log error positions" `Quick
      test_event_log_error_positions;
    Alcotest.test_case "ring truncation checks Unknown" `Quick
      test_ring_truncation_unknown;
    Alcotest.test_case "history from lifecycle trace" `Quick
      test_fold_history;
    Alcotest.test_case "history truncation evidence" `Quick
      test_fold_history_truncated;
    Alcotest.test_case "span edge cases" `Quick test_span_edges;
    Alcotest.test_case "null sink" `Quick test_null_sink;
    Alcotest.test_case "memory sink" `Quick test_memory_sink;
    Alcotest.test_case "ring clear and errors" `Quick test_ring_clear;
  ]
  @ qsuite
      [
        prop_hist_conservation;
        prop_hist_buckets;
        prop_hist_merge;
        prop_hist_quantile;
        prop_span_invariant;
        prop_ring_model;
        prop_log_roundtrip;
      ]
