(* The commutativity-aware semantic scheduler and the typed-operation
   step model behind it.

   Three layers of evidence:

   - [Core.Commute] is a lawful table: symmetric, Read/Read commutes,
     and on the untyped (read/write/update) fragment it degenerates to
     the classical rw conflict relation — so nothing in the old model
     moved.

   - On untyped syntax [Sched.Semantic] is decision-for-decision equal
     to [Sched.Sgt]: identical grant/delay traces and statistics on
     every interleaving of every format up to total size 5.

   - On typed syntax its fixpoint set strictly contains rw-SGT's, and
     every admitted history is correct three independent ways: the
     extended Herbrand oracle (layered commutative normal forms) finds
     a serial witness, the black-box checker passes it at "ser", and
     the concrete machine ([Exec] over [System.of_syntax]) reaches the
     serial witness's final state. *)

open Util
open Core

(* ---------- the commutativity table ---------- *)

let test_commute_properties () =
  (* symmetric over the whole op square *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_true "commute symmetric"
            (Commute.commutes a b = Commute.commutes b a);
          check_true "conflicts = not commutes"
            (Commute.conflicts a b = not (Commute.commutes a b)))
        Op.all)
    Op.all;
  check_true "read/read commutes" (Commute.commutes Op.Read Op.Read);
  (* conservative fallback: on the untyped fragment the table IS the
     classical rw relation *)
  let untyped = [ Op.Read; Op.Write; Op.Update ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_true "untyped pairs fall back to rw"
            (Commute.conflicts a b = Commute.rw_conflicts a b))
        untyped)
    untyped;
  (* semantic groups commute within themselves and with nothing else *)
  check_true "incr/decr commute" (Commute.commutes Op.Incr Op.Decr);
  check_true "enqueue/enqueue commute" (Commute.commutes Op.Enqueue Op.Enqueue);
  check_true "max/max commute" (Commute.commutes Op.Max Op.Max);
  check_true "cross-group conflicts" (Commute.conflicts Op.Incr Op.Enqueue);
  check_true "incr/read conflicts" (Commute.conflicts Op.Incr Op.Read);
  check_true "incr/update conflicts" (Commute.conflicts Op.Incr Op.Update);
  (* an unknown-vs-anything pair is at least as strict as rw: nothing
     the table clears would have been a conflict under rw only if one
     side writes *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Commute.commutes a b then
            check_true "commuting pairs are rw-conflicts or read/read"
              ((a = Op.Read && b = Op.Read) || Commute.rw_conflicts a b))
        Op.all)
    Op.all

(* ---------- semantic = SGT on untyped syntax ---------- *)

type decision = Names.step_id * Sched.Scheduler.response

let traced trace (s : Sched.Scheduler.t) =
  Sched.Scheduler.make ~name:s.Sched.Scheduler.name
    ~attempt:(fun id ->
      let r = s.Sched.Scheduler.attempt id in
      trace := ((id, r) : decision) :: !trace;
      r)
    ~commit:s.Sched.Scheduler.commit ~on_abort:s.Sched.Scheduler.on_abort
    ~victim:s.Sched.Scheduler.victim ~detect:s.Sched.Scheduler.detect ()

let same_stats (a : Sched.Driver.stats) (b : Sched.Driver.stats) =
  Schedule.equal a.Sched.Driver.output b.Sched.Driver.output
  && a.Sched.Driver.delays = b.Sched.Driver.delays
  && a.Sched.Driver.restarts = b.Sched.Driver.restarts
  && a.Sched.Driver.deadlocks = b.Sched.Driver.deadlocks
  && a.Sched.Driver.grants = b.Sched.Driver.grants

let check_equiv syntax arrivals =
  let fmt = Syntax.format syntax in
  let t1 = ref [] and t2 = ref [] in
  let s1 =
    Sched.Driver.run
      (traced t1 (Sched.Semantic.create ~syntax ()))
      ~fmt ~arrivals
  in
  let s2 =
    Sched.Driver.run (traced t2 (Sched.Sgt.create ~syntax ())) ~fmt ~arrivals
  in
  check_true "semantic = SGT decision trace" (!t1 = !t2);
  check_true "semantic = SGT stats" (same_stats s1 s2)

let compositions total =
  let rec go rem acc out =
    if rem = 0 then Array.of_list (List.rev acc) :: out
    else
      let rec parts p out =
        if p > rem then out else parts (p + 1) (go (rem - p) (p :: acc) out)
      in
      parts 1 out
  in
  go total [] []

let syntax_of_fmt ~n_vars ~seed fmt =
  let st = rng seed in
  Syntax.make
    (Array.map
       (fun m ->
         Array.init m (fun _ -> var_names.(Random.State.int st n_vars)))
       fmt)

let test_untyped_exhaustive () =
  (* all formats up to total size 5, all interleavings, two contention
     levels: on untyped syntax the commutativity filter is the identity
     and the two engines must be observationally indistinguishable *)
  for total = 2 to 5 do
    List.iter
      (fun fmt ->
        List.iter
          (fun (n_vars, seed) ->
            let syntax = syntax_of_fmt ~n_vars ~seed fmt in
            Combin.Interleave.iter fmt (fun arrivals ->
                check_equiv syntax (Array.copy arrivals)))
          [ (2, 17); (3, 23) ])
      (compositions total)
  done

(* ---------- typed fixpoints: strict superset, all correct ---------- *)

(* the canonical witness: two transactions of commuting increments,
   arrivals +x1 +x2 +y2 +y1 — the rw reading sees the cross as a cycle
   and delays, the semantic reading sees four bumps and sails *)
let witness_syntax =
  Syntax.make_typed
    [|
      [| (Op.Incr, "x"); (Op.Incr, "y") |];
      [| (Op.Incr, "x"); (Op.Incr, "y") |];
    |]

let witness_arrivals = [| 0; 1; 1; 0 |]

let test_witness_history () =
  let fmt = Syntax.format witness_syntax in
  let sgt =
    Sched.Driver.run
      (Sched.Sgt.create ~syntax:witness_syntax ())
      ~fmt ~arrivals:(Array.copy witness_arrivals)
  in
  let sem =
    Sched.Driver.run
      (Sched.Semantic.create ~syntax:witness_syntax ())
      ~fmt ~arrivals:(Array.copy witness_arrivals)
  in
  check_true "SGT delays the crossing" (sgt.Sched.Driver.delays > 0);
  check_true "semantic admits it undelayed" (Sched.Driver.zero_delay sem);
  (* and what it admitted is still serializable, symbolically and to
     the black-box checker *)
  check_true "witness history Herbrand-serializable"
    (Herbrand.serializable witness_syntax sem.Sched.Driver.output);
  let h =
    Analysis.History.of_schedule witness_syntax sem.Sched.Driver.output
  in
  match
    (Analysis.Checker.check h Analysis.Checker.Serializability).verdict
  with
  | Analysis.Checker.Consistent _ -> ()
  | _ -> Alcotest.fail "checker rejects the semantic witness history"

(* typed corpus for the fixpoint sweeps: pure counters, counters with a
   sealing read, mixed groups on one variable, and the banking example *)
let typed_corpus =
  [
    witness_syntax;
    Examples.hot_account;
    Syntax.make_typed
      [|
        [| (Op.Incr, "x"); (Op.Read, "x") |];
        [| (Op.Incr, "x") |];
      |];
    Syntax.make_typed
      [|
        [| (Op.Max, "x"); (Op.Incr, "y") |];
        [| (Op.Max, "x"); (Op.Incr, "y") |];
      |];
    Syntax.make_typed
      [|
        [| (Op.Incr, "x") |];
        [| (Op.Enqueue, "x") |];
        [| (Op.Incr, "x") |];
      |];
  ]

let mem_schedule h hs = List.exists (fun h' -> Schedule.equal h h') hs

let test_fixpoint_superset () =
  List.iter
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let fp_sem =
        Sched.Driver.fixpoint_of
          (fun () -> Sched.Semantic.create ~syntax ())
          fmt
      in
      let fp_sgt =
        Sched.Driver.fixpoint_of (fun () -> Sched.Sgt.create ~syntax ()) fmt
      in
      List.iter
        (fun h ->
          check_true "semantic fixpoint contains SGT's"
            (mem_schedule h fp_sem))
        fp_sgt;
      (* everything the semantic engine admits is symbolically
         serializable under the commutative normal-form oracle *)
      List.iter
        (fun h ->
          check_true "semantic fixpoint within SR"
            (Herbrand.serializable syntax h))
        fp_sem)
    typed_corpus;
  (* strictness on the witness syntax: the crossing interleaving is
     semantic-only *)
  let fmt = Syntax.format witness_syntax in
  let fp_sem =
    Sched.Driver.fixpoint_of
      (fun () -> Sched.Semantic.create ~syntax:witness_syntax ())
      fmt
  in
  let fp_sgt =
    Sched.Driver.fixpoint_of
      (fun () -> Sched.Sgt.create ~syntax:witness_syntax ())
      fmt
  in
  check_true "strictly more on typed syntax"
    (List.length fp_sem > List.length fp_sgt);
  let sem =
    Sched.Driver.run
      (Sched.Semantic.create ~syntax:witness_syntax ())
      ~fmt ~arrivals:(Array.copy witness_arrivals)
  in
  check_true "crossing schedule in semantic fixpoint"
    (mem_schedule sem.Sched.Driver.output fp_sem);
  check_true "crossing schedule not in SGT fixpoint"
    (not (mem_schedule sem.Sched.Driver.output fp_sgt))

let test_exec_oracle () =
  (* concrete replay: every semantic-fixpoint history of the hot
     account reaches the final state of the serial order the Herbrand
     witness names — the symbolic equivalence is not vacuous *)
  let syntax = Examples.hot_account in
  let sys = Examples.hot_account_system in
  let initial = Examples.hot_account_initial in
  let fp =
    Sched.Driver.fixpoint_of
      (fun () -> Sched.Semantic.create ~syntax ())
      (Syntax.format syntax)
  in
  check_true "hot-account fixpoint nonempty" (fp <> []);
  List.iter
    (fun h ->
      match Herbrand.serialization_witness syntax h with
      | None -> Alcotest.fail "admitted history has no serial witness"
      | Some order ->
        let serial =
          Exec.run_concatenation sys initial (Array.to_list order)
        in
        check_true "concrete state matches serial witness"
          (State.equal (Exec.run sys initial h) serial))
    fp;
  (* and the interleavings are genuinely all admitted: one hot account
     of commuting credits/debits coordinates on nothing *)
  let count = ref 0 in
  Combin.Interleave.iter (Syntax.format syntax) (fun _ -> incr count);
  check_int "whole universe admitted" !count (List.length fp)

(* ---------- assertional parity on the hot account ---------- *)

let test_assertional_parity () =
  (* the paper's Section 6 scheduler reaches the same verdict from the
     opposite direction: it proves every interleaving keeps A >= 0,
     knowing nothing about commutativity; the semantic engine knows the
     ops commute, knowing nothing about the integrity constraint *)
  let syntax = Examples.hot_account in
  let sys = Examples.hot_account_system in
  let fmt = Syntax.format syntax in
  let arcs = Sched.Assertional.ic_arcs sys in
  Combin.Interleave.iter fmt (fun arrivals ->
      let sem =
        Sched.Driver.run
          (Sched.Semantic.create ~syntax ())
          ~fmt ~arrivals:(Array.copy arrivals)
      in
      check_true "semantic grants every order" (Sched.Driver.zero_delay sem);
      let sched, state =
        Sched.Assertional.create ~system:sys ~arcs
          ~initial:Examples.hot_account_initial ()
      in
      let a =
        Sched.Driver.run sched ~fmt ~arrivals:(Array.copy arrivals)
      in
      check_true "assertional grants every order" (Sched.Driver.zero_delay a);
      check_true "balance settles at 290"
        (State.equal (state ())
           (State.of_ints [ ("A", 290) ])))

(* ---------- classification and the History bridge ---------- *)

let test_step_kind_roundtrip () =
  (* classify o canonical_phi = id, except Enqueue whose bag insert is
     modelled as adding a per-step token and reads back as Incr *)
  List.iter
    (fun op ->
      let sys =
        System.of_syntax (Syntax.make_typed [| [| (op, "x") |] |])
      in
      let expect = if op = Op.Enqueue then Op.Incr else op in
      check_true
        (Printf.sprintf "roundtrip %s" (Op.to_string op))
        (System.step_kind sys (Names.step 0 0) = expect))
    Op.all

let test_demotion () =
  (* phi11 is an increment shape, but phi12 observes t11 — commuting
     T11 past another bump would change what T12 sees, so the
     classification must fall back to Update *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ] ] in
  let sys =
    System.make syntax
      [| [| Expr.Ast.Add (Local 0, Expr.Ast.int 1);
            Expr.Ast.Mul (Local 0, Local 1) |] |]
  in
  check_true "leaked increment demoted to update"
    (System.step_kind sys (Names.step 0 0) = Op.Update);
  (* unobserved, the same shape keeps its semantic classification *)
  let sys' =
    System.make syntax
      [| [| Expr.Ast.Add (Local 0, Expr.Ast.int 1);
            Expr.Ast.Add (Local 1, Expr.Ast.int 2) |] |]
  in
  check_true "unobserved increment stays incr"
    (System.step_kind sys' (Names.step 0 0) = Op.Incr)

let test_history_event_shapes () =
  (* the black-box bridge: a Read records R only, blind and semantic
     ops record W only (their unread values constrain no reads-from
     axiom, which is exactly why the checker stays sound on them), an
     Update records R then W *)
  let syntax =
    Syntax.make_typed
      [|
        [| (Op.Read, "x") |];
        [| (Op.Incr, "x") |];
        [| (Op.Write, "x") |];
        [| (Op.Update, "x") |];
      |]
  in
  let h =
    Analysis.History.of_schedule syntax
      [| Names.step 0 0; Names.step 1 0; Names.step 2 0; Names.step 3 0 |]
  in
  let kinds tx =
    List.map (fun e -> e.Analysis.History.kind) (Analysis.History.events h tx)
  in
  check_true "read is R-only" (kinds 0 = [ Analysis.History.R ]);
  check_true "incr is W-only" (kinds 1 = [ Analysis.History.W ]);
  check_true "blind write is W-only" (kinds 2 = [ Analysis.History.W ]);
  check_true "update is R then W"
    (kinds 3 = [ Analysis.History.R; Analysis.History.W ])

let observer_free syntax =
  let ok = ref true in
  Array.iteri
    (fun i m ->
      for j = 0 to m - 1 do
        if Op.observes (Syntax.kind syntax (Names.step i j)) then ok := false
      done)
    (Syntax.format syntax);
  !ok

let test_checker_accepts_semantic_commits () =
  (* Every observer-free history the semantic engine commits verifies
     at its registry-declared level ("ser"): blind/semantic writes
     carry values no read ever mentions, so the rw projection
     constrains nothing. With observers in the mix the projection is
     sound but incomplete — pinned below. *)
  let entry = Sched.Registry.find_exn "semantic" in
  check_true "registry level is ser" (entry.Sched.Registry.level = "ser");
  check_true "registry standard member" entry.Sched.Registry.standard;
  let blind = List.filter observer_free typed_corpus in
  check_true "corpus has observer-free syntaxes" (List.length blind >= 3);
  List.iter
    (fun syntax ->
      let fp =
        Sched.Driver.fixpoint_of
          (fun () ->
            entry.Sched.Registry.make ?sink:None syntax)
          (Syntax.format syntax)
      in
      List.iter
        (fun sched ->
          let h = Analysis.History.of_schedule syntax sched in
          match
            (Analysis.Checker.check h Analysis.Checker.Serializability)
              .verdict
          with
          | Analysis.Checker.Consistent _ -> ()
          | _ -> Alcotest.fail "semantic commit fails ser check")
        fp)
    blind

let test_checker_incomplete_on_observed_counters () =
  (* The other direction of the projection contract: a transaction that
     reads the counter it bumped, with a foreign bump in between, is
     commutative-serializable (the Herbrand oracle proves it) but its
     rw projection is a lost-update shape the rw checker correctly
     rejects — sound, incomplete, and documented in
     [Analysis.History]. *)
  let syntax =
    Syntax.make_typed
      [|
        [| (Op.Incr, "x"); (Op.Read, "x") |];
        [| (Op.Incr, "x") |];
      |]
  in
  (* +x1 +x2 r1 *)
  let sched = [| Names.step 0 0; Names.step 1 0; Names.step 0 1 |] in
  let sem =
    Sched.Driver.run
      (Sched.Semantic.create ~syntax ())
      ~fmt:(Syntax.format syntax) ~arrivals:[| 0; 1; 0 |]
  in
  check_true "semantic admits the crossing read"
    (Sched.Driver.zero_delay sem
    && Schedule.equal sem.Sched.Driver.output sched);
  check_true "Herbrand proves it serializable"
    (Herbrand.serializable syntax sched);
  let h = Analysis.History.of_schedule syntax sched in
  match
    (Analysis.Checker.check h Analysis.Checker.Serializability).verdict
  with
  | Analysis.Checker.Violation _ -> ()
  | _ ->
    Alcotest.fail "rw projection of an observed counter crossing accepted"

(* ---------- randomized typed sweep ---------- *)

let prop_typed_random =
  (* seeded counter workloads: the semantic engine never delays less
     than... rather, never delays more than SGT, and everything it
     outputs stays in SR *)
  QCheck.Test.make ~count:20
    ~name:"semantic sound and no worse than SGT on counter mixes"
    QCheck.(make Gen.int)
    (fun seed ->
      let st = Random.State.make [| 0x5e44; seed |] in
      let n = 2 + Random.State.int st 3 in
      let m = 1 + Random.State.int st 3 in
      let syntax =
        Sim.Workload.semantic_counters st ~n ~m ~n_vars:2 ~theta:0.8
          ~read_frac:0.2
      in
      let fmt = Syntax.format syntax in
      let ok = ref true in
      for _ = 1 to 4 do
        let arrivals = Combin.Interleave.random st fmt in
        let sem =
          Sched.Driver.run
            (Sched.Semantic.create ~syntax ())
            ~fmt ~arrivals:(Array.copy arrivals)
        in
        let sgt =
          Sched.Driver.run
            (Sched.Sgt.create ~syntax ())
            ~fmt ~arrivals:(Array.copy arrivals)
        in
        ok :=
          !ok
          && sem.Sched.Driver.delays <= sgt.Sched.Driver.delays
          && sem.Sched.Driver.restarts <= sgt.Sched.Driver.restarts
          && Herbrand.serializable syntax sem.Sched.Driver.output
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "commutativity table laws" `Quick
      test_commute_properties;
    Alcotest.test_case "semantic = SGT exhaustive on untyped" `Slow
      test_untyped_exhaustive;
    Alcotest.test_case "witness: SGT delays, semantic admits" `Quick
      test_witness_history;
    Alcotest.test_case "fixpoint strict superset, all in SR" `Quick
      test_fixpoint_superset;
    Alcotest.test_case "exec oracle on the hot account" `Quick
      test_exec_oracle;
    Alcotest.test_case "assertional parity on the hot account" `Quick
      test_assertional_parity;
    Alcotest.test_case "step-kind roundtrip" `Quick test_step_kind_roundtrip;
    Alcotest.test_case "semantic demotion on observed locals" `Quick
      test_demotion;
    Alcotest.test_case "history event shapes" `Quick
      test_history_event_shapes;
    Alcotest.test_case "checker accepts semantic commits" `Quick
      test_checker_accepts_semantic_commits;
    Alcotest.test_case "checker sound-but-incomplete pin" `Quick
      test_checker_incomplete_on_observed_counters;
  ]
  @ qsuite [ prop_typed_random ]
