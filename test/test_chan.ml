(* MPSC stress test of [Sched.Chan] on real domains.

   Both channel builds (the Vyukov-style sequence-stamped ring and the
   mutex + condvar queue) must deliver, under genuine multi-producer
   contention:
   - every pushed element exactly once (no loss, no duplication);
   - FIFO per producer (elements of one producer arrive in push order;
     cross-producer order is unconstrained);
   - the strict termination protocol: [close] after every producer's
     last [push] makes the consumer's [pop_batch] return 0 exactly at
     end-of-stream, with nothing left behind.

   Producer count follows CCOPT_DOMAINS (the CI knob that re-runs the
   suite with domains forced to 2 and to 8), floored at 2 so the test
   is always a real race. Tiny capacities force the blocking-on-full
   path; the consumer's random draining forces blocking-on-empty. *)

open Util

let env_domains =
  match Sys.getenv_opt "CCOPT_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some d when d >= 1 && d <= 64 -> d
    | _ -> 4)
  | None -> 4

let kinds = [ Sched.Chan.Ring; Sched.Chan.Mutex ]

(* Element encoding: producer [p]'s [k]-th push is [p * stride + k],
   so the consumer can check per-producer FIFO by decoding. *)
let stride = 1 lsl 20

(* Run one storm: [producers] domains push their sequences at full
   speed, a closer domain joins them and closes, this domain consumes
   in random-size batches and checks every invariant inline. *)
let stress ~kind ~producers ~per_producer ~capacity ~seed =
  let name =
    Printf.sprintf "%s p=%d n=%d cap=%d" (Sched.Chan.kind_name kind) producers
      per_producer capacity
  in
  let ch = Sched.Chan.create ~capacity kind in
  let started = Atomic.make 0 in
  let producer p =
    Domain.spawn (fun () ->
        Atomic.incr started;
        while Atomic.get started < producers do
          Domain.cpu_relax ()
        done;
        for k = 0 to per_producer - 1 do
          Sched.Chan.push ch ((p * stride) + k)
        done)
  in
  let doms = List.init producers producer in
  let closer =
    Domain.spawn (fun () ->
        List.iter Domain.join doms;
        Sched.Chan.close ch)
  in
  let st = Random.State.make [| 0xC4A1; seed |] in
  let next = Array.make producers 0 in
  let total = ref 0 in
  let eos = ref false in
  while not !eos do
    let buf = Array.make (1 + Random.State.int st 63) 0 in
    let n = Sched.Chan.pop_batch ch buf in
    if n = 0 then eos := true
    else
      for i = 0 to n - 1 do
        let p = buf.(i) / stride and k = buf.(i) mod stride in
        if p < 0 || p >= producers then
          Alcotest.failf "%s: alien element %d" name buf.(i);
        (* FIFO per producer: the k-th element of producer p is seen
           exactly when next.(p) = k *)
        if k <> next.(p) then
          Alcotest.failf "%s: producer %d out of order: got %d, expected %d"
            name p k next.(p);
        next.(p) <- k + 1;
        incr total
      done
  done;
  Domain.join closer;
  check_int (name ^ ": nothing lost, nothing duplicated")
    (producers * per_producer)
    !total;
  Array.iteri
    (fun p k -> check_int (Printf.sprintf "%s: producer %d drained" name p)
        per_producer k)
    next;
  (* end-of-stream is sticky: pop after close+empty stays 0 *)
  check_int (name ^ ": eos sticky") 0 (Sched.Chan.pop_batch ch (Array.make 4 0))

let test_mpsc_stress () =
  let producers = max 2 env_domains in
  List.iter
    (fun kind ->
      (* generous capacity: the fast path *)
      stress ~kind ~producers ~per_producer:2_000 ~capacity:256 ~seed:1;
      (* tiny capacity: producers block on full, consumer on empty *)
      stress ~kind ~producers ~per_producer:500 ~capacity:2 ~seed:2)
    kinds

let test_close_wakes_producers () =
  (* a producer blocked on a full channel must be released by [close]
     with [Closed], not wedged forever *)
  List.iter
    (fun kind ->
      let name = Sched.Chan.kind_name kind in
      let ch = Sched.Chan.create ~capacity:2 kind in
      Sched.Chan.push ch 0;
      Sched.Chan.push ch 1;
      let outcome =
        Domain.spawn (fun () ->
            match Sched.Chan.push ch 2 with
            | () -> `Pushed
            | exception Sched.Chan.Closed -> `Closed)
      in
      (* give the producer time to block, then close under it *)
      for _ = 1 to 100_000 do
        Domain.cpu_relax ()
      done;
      Sched.Chan.close ch;
      (match Domain.join outcome with
      | `Closed -> ()
      | `Pushed ->
        (* raced: push won before close — legal, the element must
           then still be delivered below *)
        ());
      let buf = Array.make 8 0 in
      let n = Sched.Chan.pop_batch ch buf in
      check_true (name ^ ": survivors delivered") (n >= 2))
    kinds

let suite =
  [
    Alcotest.test_case "MPSC stress: FIFO per producer, exact delivery" `Quick
      test_mpsc_stress;
    Alcotest.test_case "close releases blocked producers" `Quick
      test_close_wakes_producers;
  ]
