(* Tests for shared/exclusive two-phase locking over the read/write
   model (X2). *)

open Util
open Core

let r v = Rw_model.read v
let w v = Rw_model.write v

let test_compatibility () =
  check_true "S/S" (Locking.Rw_lock.compatible Locking.Rw_lock.Shared Locking.Rw_lock.Shared);
  check_false "S/X" (Locking.Rw_lock.compatible Locking.Rw_lock.Shared Locking.Rw_lock.Exclusive);
  check_false "X/S" (Locking.Rw_lock.compatible Locking.Rw_lock.Exclusive Locking.Rw_lock.Shared);
  check_false "X/X" (Locking.Rw_lock.compatible Locking.Rw_lock.Exclusive Locking.Rw_lock.Exclusive)

let show prog =
  Array.to_list prog
  |> List.map (fun s -> Format.asprintf "%a" Locking.Rw_lock.pp_step s)

let test_transform_read_then_write () =
  (* r(x) then w(x): shared at the read, upgraded before the write *)
  let prog = Locking.Rw_lock.transform 0 [ r "x"; w "x" ] in
  Alcotest.(check (list string)) "upgrade program"
    [ "lock-S x"; "R1(x)"; "lock-X x"; "W1(x)"; "unlock x" ]
    (show prog);
  check_true "two-phase" (Locking.Rw_lock.is_two_phase prog)

let test_transform_write_first () =
  let prog = Locking.Rw_lock.transform 0 [ w "x"; r "x" ] in
  Alcotest.(check (list string)) "exclusive from the start"
    [ "lock-X x"; "W1(x)"; "R1(x)"; "unlock x" ]
    (show prog)

let test_transform_two_vars () =
  (* reads of x and y with a write of y: early release of x after the
     phase shift, like 2PL *)
  let prog = Locking.Rw_lock.transform 0 [ r "x"; r "y"; w "y" ] in
  Alcotest.(check (list string)) "placement"
    [ "lock-S x"; "R1(x)"; "lock-S y"; "R1(y)"; "lock-X y"; "unlock x";
      "W1(y)"; "unlock y" ]
    (show prog);
  check_true "two-phase" (Locking.Rw_lock.is_two_phase prog)

let readers_programs = Locking.Rw_lock.programs [ [ r "x" ]; [ r "x" ] ]

let test_concurrent_readers () =
  (* both transactions may interleave freely: S locks coexist *)
  let fmt = Array.map Array.length readers_programs in
  let legal_count =
    List.length
      (List.filter (Locking.Rw_lock.legal readers_programs)
         (Combin.Interleave.all fmt))
  in
  check_int "all interleavings legal" (Combin.Interleave.count fmt) legal_count

let test_exclusive_blocks_readers () =
  let progs =
    Array.of_list
      [ Locking.Rw_lock.exclusive_only 0 [ r "x" ];
        Locking.Rw_lock.exclusive_only 1 [ r "x" ] ]
  in
  (* with exclusive-only locks the readers serialize *)
  check_int "only the serial projections" 2
    (List.length (Locking.Rw_lock.outputs progs))

let test_shared_beats_exclusive () =
  (* read-heavy workload: two readers of x plus a writer of y *)
  let per_tx = [ [ r "x"; r "x" ]; [ r "x"; w "y" ] ] in
  let shared = Locking.Rw_lock.programs per_tx in
  let exclusive =
    Array.of_list (List.mapi Locking.Rw_lock.exclusive_only per_tx)
  in
  let n_sh = List.length (Locking.Rw_lock.outputs shared) in
  let n_ex = List.length (Locking.Rw_lock.outputs exclusive) in
  check_true "shared admits strictly more" (n_sh > n_ex)

let test_outputs_csr () =
  (* the classical correctness theorem for rw-2PL *)
  List.iter
    (fun per_tx ->
      let progs = Locking.Rw_lock.programs per_tx in
      List.iter
        (fun h ->
          check_true "output is CSR"
            (Rw_model.conflict_serializable (List.length per_tx) h))
        (Locking.Rw_lock.outputs progs))
    [
      [ [ r "x"; w "x" ]; [ r "x"; w "x" ] ];
      [ [ r "x"; w "y" ]; [ r "y"; w "x" ] ];
      [ [ w "x" ]; [ r "x"; r "y" ]; [ w "y" ] ];
    ]

let test_lost_update_blocked () =
  (* R1(x) R2(x) W1(x) W2(x) must not be admitted: the upgrades clash *)
  let per_tx = [ [ r "x"; w "x" ]; [ r "x"; w "x" ] ] in
  let progs = Locking.Rw_lock.programs per_tx in
  let lost = Rw_model.interleave per_tx [| 0; 1; 0; 1 |] in
  check_false "lost update rejected"
    (List.exists (fun h -> h = lost) (Locking.Rw_lock.outputs progs));
  check_false "passes agrees" (Locking.Rw_lock.passes progs lost)

let test_passes_implies_output () =
  let per_tx = [ [ r "x"; w "y" ]; [ r "y"; w "x" ] ] in
  let progs = Locking.Rw_lock.programs per_tx in
  let outs = Locking.Rw_lock.outputs progs in
  let fmt = Array.of_list (List.map List.length per_tx) in
  Combin.Interleave.iter fmt (fun il ->
      let h = Rw_model.interleave per_tx (Array.copy il) in
      if Locking.Rw_lock.passes progs h then
        check_true "passes => output" (List.exists (fun o -> o = h) outs))

(* Property: rw-2PL outputs are conflict-serializable on random
   workloads. *)
let rw_workload_gen =
  (* locked programs are roughly twice as long as the action lists, and
     [outputs] enumerates interleavings of the programs: keep the
     workloads tiny (2 transactions of <= 2 actions) so each case stays
     in the hundreds of interleavings *)
  QCheck.Gen.(
    int_range 2 2 >>= fun n ->
    let tx =
      list_size (int_range 1 2)
        (map2
           (fun is_w v ->
             let var = if v then "x" else "y" in
             if is_w then w var else r var)
           bool bool)
    in
    let rec build i acc =
      if i = 0 then return (List.rev acc) else tx >>= fun t -> build (i - 1) (t :: acc)
    in
    build n [])

let prop_rw2pl_correct =
  QCheck.Test.make ~name:"rw-2PL outputs are conflict-serializable" ~count:30
    (QCheck.make rw_workload_gen)
    (fun per_tx ->
      let progs = Locking.Rw_lock.programs per_tx in
      List.for_all
        (Rw_model.conflict_serializable (List.length per_tx))
        (Locking.Rw_lock.outputs progs))

let prop_shared_superset =
  QCheck.Test.make ~name:"mode-aware locking admits >= exclusive-only"
    ~count:30
    (QCheck.make rw_workload_gen)
    (fun per_tx ->
      let shared = Locking.Rw_lock.programs per_tx in
      let exclusive =
        Array.of_list (List.mapi Locking.Rw_lock.exclusive_only per_tx)
      in
      let n_sh = List.length (Locking.Rw_lock.outputs shared) in
      let n_ex = List.length (Locking.Rw_lock.outputs exclusive) in
      n_sh >= n_ex)

let suite =
  [
    Alcotest.test_case "compatibility" `Quick test_compatibility;
    Alcotest.test_case "read-then-write upgrade" `Quick test_transform_read_then_write;
    Alcotest.test_case "write-first exclusive" `Quick test_transform_write_first;
    Alcotest.test_case "two-variable placement" `Quick test_transform_two_vars;
    Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers;
    Alcotest.test_case "exclusive serializes readers" `Quick test_exclusive_blocks_readers;
    Alcotest.test_case "shared beats exclusive" `Quick test_shared_beats_exclusive;
    Alcotest.test_case "outputs are CSR" `Quick test_outputs_csr;
    Alcotest.test_case "lost update blocked" `Quick test_lost_update_blocked;
    Alcotest.test_case "passes implies output" `Quick test_passes_implies_output;
  ]
  @ qsuite [ prop_rw2pl_correct; prop_shared_superset ]
