(* Tests for the recoverability classes and strict 2PL — the [Gray 78]
   recovery dimension the paper cites. *)

open Util
open Core

let r v = Rw_model.read v
let w v = Rw_model.write v
let act s = Recovery.Act s
let step i j a = { Rw_model.id = Names.step i j; action = a }

let test_of_rw () =
  let h = Rw_model.make [ [ w "x" ]; [ r "x" ] ] in
  let eh = Recovery.of_rw h in
  check_int "events" 4 (Array.length eh);
  check_true "well-formed" (Recovery.well_formed 2 eh);
  let eh' = Recovery.of_rw ~aborts:[ 1 ] h in
  check_true "abort variant well-formed" (Recovery.well_formed 2 eh')

let test_well_formed_rejects () =
  let bad = [| Recovery.Commit 0; act (step 0 0 (w "x")) |] in
  check_false "terminal before action" (Recovery.well_formed 1 bad);
  let bad2 = [| act (step 0 0 (w "x")) |] in
  check_false "missing terminal" (Recovery.well_formed 1 bad2);
  let bad3 = [| act (step 0 0 (w "x")); Recovery.Commit 0; Recovery.Commit 0 |] in
  check_false "double terminal" (Recovery.well_formed 1 bad3)

(* W1(x) R2(x) ... : T2 reads T1's uncommitted write. *)
let dirty_read order_of_commits =
  [| act (step 0 0 (w "x")); act (step 1 0 (r "x")) |]
  |> fun acts -> Array.append acts order_of_commits

let test_hierarchy_witnesses () =
  (* strict: T1 commits before T2 even touches x *)
  let st =
    [| act (step 0 0 (w "x")); Recovery.Commit 0;
       act (step 1 0 (r "x")); Recovery.Commit 1 |]
  in
  Alcotest.(check string) "strict" "ST" (Recovery.classify 2 st);
  (* ACA but not ST: T2 overwrites dirty data but never reads it *)
  let aca =
    [| act (step 0 0 (w "x")); act (step 1 0 (w "x")); Recovery.Commit 0;
       Recovery.Commit 1 |]
  in
  check_false "overwrite of dirty data is not strict" (Recovery.strict 2 aca);
  check_true "but avoids cascading aborts"
    (Recovery.avoids_cascading_aborts 2 aca);
  Alcotest.(check string) "ACA" "ACA" (Recovery.classify 2 aca);
  (* RC but not ACA: dirty read, commits in the right order *)
  let rc = dirty_read [| Recovery.Commit 0; Recovery.Commit 1 |] in
  check_false "dirty read not ACA" (Recovery.avoids_cascading_aborts 2 rc);
  check_true "recoverable" (Recovery.recoverable 2 rc);
  Alcotest.(check string) "RC" "RC" (Recovery.classify 2 rc);
  (* not even RC: reader commits first *)
  let bad = dirty_read [| Recovery.Commit 1; Recovery.Commit 0 |] in
  check_false "premature reader commit" (Recovery.recoverable 2 bad);
  Alcotest.(check string) "none" "-" (Recovery.classify 2 bad)

let test_aborted_writer () =
  (* reader commits although the writer aborted: unrecoverable *)
  let h = dirty_read [| Recovery.Abort 0; Recovery.Commit 1 |] in
  check_false "reading from an aborted writer" (Recovery.recoverable 2 h);
  (* reader aborts too: fine *)
  let h' = dirty_read [| Recovery.Abort 0; Recovery.Abort 1 |] in
  check_true "both abort" (Recovery.recoverable 2 h')

let test_inclusions () =
  (* ST => ACA => RC on a batch of small event histories *)
  let all_histories =
    (* every interleaving of two 2-action transactions with immediate
       trailing commits in both orders *)
    let per_tx = [ [ r "x"; w "x" ]; [ w "x"; r "x" ] ] in
    let fmt = [| 2; 2 |] in
    List.concat_map
      (fun il ->
        let h = Rw_model.interleave per_tx il in
        [ Recovery.of_rw h;
          Array.append
            (Array.map (fun s -> Recovery.Act s) h)
            [| Recovery.Commit 1; Recovery.Commit 0 |] ])
      (Combin.Interleave.all fmt)
  in
  List.iter
    (fun h ->
      if Recovery.strict 2 h then
        check_true "ST => ACA" (Recovery.avoids_cascading_aborts 2 h);
      if Recovery.avoids_cascading_aborts 2 h then
        check_true "ACA => RC" (Recovery.recoverable 2 h))
    all_histories

let test_strict_2pl_policy_shape () =
  let s = Syntax.of_lists [ [ "x"; "y"; "x" ] ] in
  let l = Locking.Two_phase_strict.apply s in
  let strings =
    Array.to_list
      (Array.map
         (fun st -> Format.asprintf "%a" Locking.Locked.pp_step st)
         l.Locking.Locked.txs.(0))
  in
  Alcotest.(check (list string)) "all unlocks at the end"
    [ "lock x"; "T11"; "lock y"; "T12"; "T13"; "unlock x"; "unlock y" ]
    strings;
  check_true "two-phase" (Locking.Locked.is_two_phase l)

let test_strict_2pl_dominated_by_2pl () =
  List.iter
    (fun s ->
      check_true "strict-2PL correct"
        (Locking.Policy.correct_exhaustive Locking.Two_phase_strict.policy s);
      check_true "2PL dominates strict-2PL"
        (Locking.Policy.dominates Locking.Two_phase.policy
           Locking.Two_phase_strict.policy s))
    [
      Examples.fig3_pair;
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
      Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "x" ] ];
    ];
  (* strictness witness: with (x then y) vs (x), 2PL releases x before
     T12 once y is locked, strict 2PL does not *)
  let s = Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "x" ] ] in
  check_true "strictly fewer outputs"
    (Locking.Policy.strictly_better Locking.Two_phase.policy
       Locking.Two_phase_strict.policy s)

(* Property: any interleaving admitted by strict rw-2PL-style execution
   with commits at transaction end is strict. We approximate using the
   exclusive-only rw locking with locks held to the end = the
   Two_phase_strict discipline transported to rw histories: reads and
   overwrites of uncommitted data are impossible. *)
let prop_strict_2pl_histories_strict =
  QCheck.Test.make ~name:"strict-2PL outputs yield strict event histories"
    ~count:40
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:3 ~n_vars:2))
    (fun syntax ->
      let locked = Locking.Two_phase_strict.apply syntax in
      List.for_all
        (fun h ->
          (* base schedule -> rw history (every step = read-modify-write
             = a write for conflict purposes); serial commits appended in
             completion order *)
          let completion_order =
            Array.to_list h
            |> List.mapi (fun p (id : Names.step_id) -> (p, id.Names.tx))
            |> List.fold_left
                 (fun acc (_, tx) -> if List.mem tx acc then acc else acc @ [ tx ])
                 []
          in
          ignore completion_order;
          (* RMW steps both read and write: encode each as write (the
             stronger access) for strictness checking *)
          let rw =
            Array.map
              (fun (id : Names.step_id) ->
                {
                  Rw_model.id;
                  action = Rw_model.write (Syntax.var syntax id);
                })
              h
          in
          (* commit each transaction right after its last step *)
          let n = Syntax.n_transactions syntax in
          let fmt = Syntax.format syntax in
          let events = ref [] in
          Array.iteri
            (fun _ (s : Rw_model.step) ->
              events := Recovery.Act s :: !events;
              if s.Rw_model.id.Names.idx = fmt.(s.Rw_model.id.Names.tx) - 1 then
                events := Recovery.Commit s.Rw_model.id.Names.tx :: !events)
            rw;
          let eh = Array.of_list (List.rev !events) in
          Recovery.well_formed n eh && Recovery.strict n eh)
        (Locking.Locked.outputs locked))

let suite =
  [
    Alcotest.test_case "of_rw" `Quick test_of_rw;
    Alcotest.test_case "well-formedness" `Quick test_well_formed_rejects;
    Alcotest.test_case "hierarchy witnesses" `Quick test_hierarchy_witnesses;
    Alcotest.test_case "aborted writer" `Quick test_aborted_writer;
    Alcotest.test_case "inclusions" `Quick test_inclusions;
    Alcotest.test_case "strict 2PL shape" `Quick test_strict_2pl_policy_shape;
    Alcotest.test_case "strict 2PL dominated" `Quick test_strict_2pl_dominated_by_2pl;
  ]
  @ qsuite [ prop_strict_2pl_histories_strict ]
