(* Tests for the core transaction-system model: syntax, states, schedules
   and concrete execution — including the paper's Section 2 banking
   example. *)

open Util
open Core

let banking = Examples.banking
let g0 = Examples.banking_initial

let test_syntax_basics () =
  let s = banking.System.syntax in
  Alcotest.(check (array int)) "format" [| 3; 2; 4 |] (Syntax.format s);
  check_int "transactions" 3 (Syntax.n_transactions s);
  check_int "steps" 9 (Syntax.n_steps s);
  Alcotest.(check string) "x11 = A" "A" (Syntax.var s (Names.step 0 0));
  Alcotest.(check string) "x34 = C" "C" (Syntax.var s (Names.step 2 3));
  Alcotest.(check (list string)) "vars" [ "A"; "B"; "C"; "S" ] (Syntax.vars s);
  Alcotest.(check (list int)) "txs on A" [ 0; 2 ] (Syntax.transactions_on s "A");
  check_int "steps on B" 3 (List.length (Syntax.steps_on s "B"))

let test_syntax_rename () =
  let s = Syntax.of_lists [ [ "x"; "y" ] ] in
  let s' = Syntax.rename (fun v -> v ^ "'") s in
  Alcotest.(check (list string)) "renamed" [ "x'"; "y'" ] (Syntax.vars s')

let test_state_ops () =
  let g = State.of_ints [ ("a", 1); ("b", 2) ] in
  check_true "get" (Expr.Value.equal (State.get g "a") (Expr.Value.Int 1));
  let g' = State.set g "a" (Expr.Value.Int 9) in
  check_true "set" (Expr.Value.equal (State.get g' "a") (Expr.Value.Int 9));
  check_false "persistent" (State.equal g g');
  check_true "restrict"
    (State.equal (State.restrict [ "b" ] g) (State.of_ints [ ("b", 2) ]))

let test_state_enumerate () =
  match
    State.enumerate
      [ ("p", Expr.Value.Bools); ("q", Expr.Value.Int_range (0, 2)) ]
  with
  | Some states ->
    check_int "2*3 states" 6 (List.length states);
    check_int "distinct" 6 (List.length (List.sort_uniq State.compare states))
  | None -> Alcotest.fail "expected enumeration"

let test_schedule_conversions () =
  let il = [| 0; 1; 0; 2 |] in
  let h = Schedule.of_interleaving il in
  Alcotest.(check (array int)) "roundtrip" il (Schedule.to_interleaving h);
  check_true "legal for (2,1,1)" (Schedule.is_schedule_of [| 2; 1; 1 |] h);
  check_false "wrong format" (Schedule.is_schedule_of [| 1; 1; 1 |] h)

let test_schedule_serial () =
  let fmt = [| 2; 2 |] in
  let h = Schedule.serial fmt [| 1; 0 |] in
  check_true "serial" (Schedule.is_serial h);
  (match Schedule.serial_order h with
  | Some order -> Alcotest.(check (array int)) "order" [| 1; 0 |] order
  | None -> Alcotest.fail "expected serial");
  let mixed = Schedule.of_interleaving [| 0; 1; 0; 1 |] in
  check_false "interleaved not serial" (Schedule.is_serial mixed);
  check_int "all serial count" 2 (List.length (Schedule.all_serial fmt));
  check_int "|H|" 6 (List.length (Schedule.all fmt))

let test_banking_consistency () =
  check_true "initial consistent" (System.consistent banking g0);
  check_false "broken state"
    (System.consistent banking (State.of_ints [ ("A", -1); ("B", 0); ("S", -1); ("C", 0) ]))

let test_banking_t1 () =
  (* transfer happens: A=150 >= 100, B=50 < 100 *)
  let g = Exec.run_transaction banking g0 0 in
  check_true "A decreased"
    (Expr.Value.equal (State.get g "A") (Expr.Value.Int 50));
  check_true "B increased"
    (Expr.Value.equal (State.get g "B") (Expr.Value.Int 150));
  check_true "still consistent" (System.consistent banking g);
  (* no transfer when B is too rich *)
  let rich = State.of_ints [ ("A", 150); ("B", 150); ("S", 300); ("C", 0) ] in
  let g' = Exec.run_transaction banking rich 0 in
  check_true "unchanged" (State.equal g' rich)

let test_banking_t2 () =
  let g = Exec.run_transaction banking g0 1 in
  check_true "B withdrawn"
    (Expr.Value.equal (State.get g "B") (Expr.Value.Int 0));
  check_true "C counted"
    (Expr.Value.equal (State.get g "C") (Expr.Value.Int 1));
  check_true "still consistent" (System.consistent banking g)

let test_banking_t3 () =
  (* audit from a state where S is stale *)
  let stale = State.of_ints [ ("A", 100); ("B", 0); ("S", 150); ("C", 1) ] in
  check_true "stale consistent" (System.consistent banking stale);
  let g = Exec.run_transaction banking stale 2 in
  check_true "S = A+B"
    (Expr.Value.equal (State.get g "S") (Expr.Value.Int 100));
  check_true "C reset" (Expr.Value.equal (State.get g "C") (Expr.Value.Int 0));
  check_true "consistent after audit" (System.consistent banking g)

let test_banking_paper_state () =
  (* The paper's second sample state: after T21 (B withdrawn) and the new
     S computed by T31..T33 but C not yet reset:
     execute T21, then T31, T32, T33 — globals (150, 0, 150, 0)?
     The paper lists G = (150, 0, 150, 0) with A=150, B=0, S=150, C=0 —
     meaning C was 0 all along (no T22 yet). *)
  let h =
    [| Names.step 1 0; Names.step 2 0; Names.step 2 1; Names.step 2 2 |]
  in
  let fmt = [| 0; 2; 4 |] in
  ignore fmt;
  (* run a prefix manually *)
  let st = ref (Exec.start banking g0) in
  Array.iter (fun id -> st := Exec.exec_step banking !st id) h;
  let g = (!st).Exec.globals in
  List.iter
    (fun (v, n) ->
      check_true (v ^ " matches paper")
        (Expr.Value.equal (State.get g v) (Expr.Value.Int n)))
    [ ("A", 150); ("B", 0); ("S", 150); ("C", 0) ]

let test_banking_basic_assumption () =
  let probes = Weak_sr.default_probes ~seed:42 ~count:40 banking in
  check_true "all transactions correct" (Exec.basic_assumption banking ~probes)

let test_serial_schedules_correct () =
  (* our basic assumption implies serial schedules are correct *)
  let fmt = System.format banking in
  let probes = Weak_sr.default_probes ~seed:7 ~count:15 banking in
  List.iter
    (fun h ->
      check_true "serial correct" (Exec.correct_schedule banking ~probes h))
    (Schedule.all_serial fmt)

let test_banking_race () =
  (* An interleaving that breaks the audit invariant: T3 reads A before
     T1's transfer and B after it — the classical inconsistent audit. *)
  let h =
    Schedule.of_interleaving [| 2 (* T31 reads A=150 *); 0; 0; 0 (* transfer *);
                                2 (* T32 reads B=150 *); 2 (* S <- 300! *); 2;
                                1; 1 |]
  in
  let g = Exec.run banking g0 h in
  check_false "audit inconsistent" (System.consistent banking g)

let test_not_eligible () =
  let h = [| Names.step 0 1 |] in
  Alcotest.check_raises "skipping a step" (Exec.Not_eligible (Names.step 0 1))
    (fun () -> ignore (Exec.run banking g0 h))

let test_step_kinds () =
  check_true "phi11 read" (System.step_kind banking (Names.step 0 0) = Op.Read);
  check_true "phi34 write" (System.step_kind banking (Names.step 2 3) = Op.Write);
  check_true "phi21 update" (System.step_kind banking (Names.step 1 0) = Op.Update)

let test_domain_validation () =
  let sys =
    System.make
      ~domains:[ ("b", Expr.Value.Bools) ]
      (Syntax.of_lists [ [ "b" ] ])
      [| [| Expr.Ast.Local 0 |] |]
  in
  Alcotest.check_raises "int outside Bools domain"
    (Invalid_argument "Exec.start: b=7 outside its domain") (fun () ->
      ignore (Exec.start sys (State.of_ints [ ("b", 7) ])));
  Alcotest.check_raises "unbound variable"
    (Invalid_argument "Exec.start: initial state does not bind b") (fun () ->
      ignore (Exec.start sys State.empty))

let test_make_validation () =
  let s = Syntax.of_lists [ [ "x"; "y" ] ] in
  (* phi_11 may not use t12 *)
  let bad = [| [| Expr.Ast.Local 1; Expr.Ast.Local 1 |] |] in
  check_true "future local rejected"
    (try ignore (System.make s bad); false with Invalid_argument _ -> true);
  let bad2 = [| [| Expr.Ast.Global "x"; Expr.Ast.Local 1 |] |] in
  check_true "global in phi rejected"
    (try ignore (System.make s bad2); false with Invalid_argument _ -> true);
  let bad3 = [| [| Expr.Ast.Local 0 |] |] in
  check_true "format mismatch rejected"
    (try ignore (System.make s bad3); false with Invalid_argument _ -> true)

(* Property: executing a serial schedule equals composing whole
   transactions. *)
let prop_serial_is_composition =
  QCheck.Test.make ~name:"serial run = transaction composition" ~count:100
    QCheck.(int_range 0 5)
    (fun seed ->
      let st = rng seed in
      let order = Combin.Perm.random st 3 in
      let h = Schedule.serial (System.format banking) order in
      let by_schedule = Exec.run banking g0 h in
      let by_composition =
        Exec.run_concatenation banking g0 (Array.to_list order)
      in
      State.equal by_schedule by_composition)

(* Property: execution is deterministic. *)
let prop_deterministic =
  QCheck.Test.make ~name:"execution is deterministic" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = rng seed in
      let h = Schedule.random st (System.format banking) in
      State.equal (Exec.run banking g0 h) (Exec.run banking g0 h))

(* Property: run_trace's last state equals run. *)
let prop_trace_consistent =
  QCheck.Test.make ~name:"run_trace ends at run's state" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = rng seed in
      let h = Schedule.random st (System.format banking) in
      match List.rev (Exec.run_trace banking g0 h) with
      | last :: _ -> State.equal last (Exec.run banking g0 h)
      | [] -> false)

let suite =
  [
    Alcotest.test_case "syntax basics" `Quick test_syntax_basics;
    Alcotest.test_case "syntax rename" `Quick test_syntax_rename;
    Alcotest.test_case "state operations" `Quick test_state_ops;
    Alcotest.test_case "state enumeration" `Quick test_state_enumerate;
    Alcotest.test_case "schedule conversions" `Quick test_schedule_conversions;
    Alcotest.test_case "schedule serial" `Quick test_schedule_serial;
    Alcotest.test_case "banking consistency" `Quick test_banking_consistency;
    Alcotest.test_case "banking T1 transfer" `Quick test_banking_t1;
    Alcotest.test_case "banking T2 withdraw" `Quick test_banking_t2;
    Alcotest.test_case "banking T3 audit" `Quick test_banking_t3;
    Alcotest.test_case "banking paper state" `Quick test_banking_paper_state;
    Alcotest.test_case "banking basic assumption" `Quick test_banking_basic_assumption;
    Alcotest.test_case "serial schedules correct" `Quick test_serial_schedules_correct;
    Alcotest.test_case "banking race detected" `Quick test_banking_race;
    Alcotest.test_case "illegal schedule rejected" `Quick test_not_eligible;
    Alcotest.test_case "step kinds" `Quick test_step_kinds;
    Alcotest.test_case "domain validation" `Quick test_domain_validation;
    Alcotest.test_case "make validation" `Quick test_make_validation;
  ]
  @ qsuite [ prop_serial_is_composition; prop_deterministic; prop_trace_consistent ]
