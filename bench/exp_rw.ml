(* X1: the read/write extension — where CSR, VSR and FSR split once
   blind writes and dead reads exist. *)

open Core

let show n h =
  Printf.printf "%-34s CSR=%-5b VSR=%-5b FSR=%b\n"
    (Format.asprintf "%a" Rw_model.pp h)
    (Rw_model.conflict_serializable n h)
    (Rw_model.view_serializable n h)
    (Rw_model.final_state_serializable n h)

let run () =
  Tables.section "X1-rw-extension"
    "read/write step model: CSR ⊊ VSR ⊊ FSR (impossible in the paper's \
     RMW model)";
  (* classical histories *)
  let t_rw = [ [ Rw_model.read "x"; Rw_model.write "x" ];
               [ Rw_model.read "x"; Rw_model.write "x" ] ] in
  show 2 (Rw_model.interleave t_rw [| 0; 1; 0; 1 |]);  (* lost update *)
  show 2 (Rw_model.interleave t_rw [| 0; 0; 1; 1 |]);  (* serial *)
  let n1, w1 = Rw_model.csr_implies_vsr_witness () in
  show n1 w1;
  let n2, w2 = Rw_model.vsr_not_fsr_witness () in
  show n2 w2;
  (* measure how often the classes differ on random histories *)
  let st = Random.State.make [| 31 |] in
  let samples = 2000 in
  let csr = ref 0 and vsr = ref 0 and fsr = ref 0 in
  let poly_agree = ref true in
  for _ = 1 to samples do
    let n = 2 + Random.State.int st 2 in
    let per_tx =
      List.init n (fun _ ->
          List.init
            (1 + Random.State.int st 2)
            (fun _ ->
              let v = if Random.State.bool st then "x" else "y" in
              if Random.State.bool st then Rw_model.write v
              else Rw_model.read v))
    in
    let fmt = Array.of_list (List.map List.length per_tx) in
    let h = Rw_model.interleave per_tx (Combin.Interleave.random st fmt) in
    if Rw_model.conflict_serializable n h then incr csr;
    let vs = Rw_model.view_serializable n h in
    if vs then incr vsr;
    if Rw_model.view_serializable_polygraph n h <> vs then poly_agree := false;
    if Rw_model.final_state_serializable n h then incr fsr
  done;
  Printf.printf
    "\nof %d random histories (2-3 txs, reads+blind writes): CSR %d <= VSR \
     %d <= FSR %d; polygraph = brute force throughout: %b\n"
    samples !csr !vsr !fsr !poly_agree;
  (* contrast: in the paper's RMW model the three coincide (cross-check) *)
  let st2 = Random.State.make [| 32 |] in
  let agree = ref true in
  for _ = 1 to 300 do
    let syntax = Sim.Workload.uniform st2 ~n:3 ~m:2 ~n_vars:2 in
    let h = Schedule.random st2 (Syntax.format syntax) in
    if Conflict.serializable syntax h <> Herbrand.serializable syntax h then
      agree := false
  done;
  Printf.printf
    "RMW model: conflict test = Herbrand brute force on 300 random systems: \
     %b (expected true)\n"
    !agree

let x2 () =
  Tables.section "X2-lock-modes"
    "shared/exclusive 2PL over the read/write model (Eswaran et al.)";
  let r v = Rw_model.read v and w v = Rw_model.write v in
  let show per_tx label =
    let shared = Locking.Rw_lock.programs per_tx in
    let exclusive =
      Array.of_list (List.mapi Locking.Rw_lock.exclusive_only per_tx)
    in
    Printf.printf "%-28s admitted: shared-mode %3d vs exclusive-only %3d\n"
      label
      (List.length (Locking.Rw_lock.outputs shared))
      (List.length (Locking.Rw_lock.outputs exclusive))
  in
  Format.printf "rw-2PL of [r x; w x]:@.%a@.@." Locking.Rw_lock.pp_program
    (Locking.Rw_lock.transform 0 [ r "x"; w "x" ]);
  show [ [ r "x" ]; [ r "x" ] ] "two readers";
  show [ [ r "x"; r "y" ]; [ r "y"; r "x" ] ] "read-only pair";
  show [ [ r "x"; w "y" ]; [ r "x"; w "z" ] ] "shared read, private writes";
  show [ [ r "x"; w "x" ]; [ r "x"; w "x" ] ] "read-modify-write pair";
  Printf.printf
    "\nshape: mode awareness pays exactly on shared reads (readers \
     coexist); on RMW pairs the upgrade serialises them just like \
     exclusive locks, and the lost update stays rejected.\n"

let x3 () =
  Tables.section "X3-recovery"
    "recoverability classes (Gray 78): ST within ACA within RC";
  let r v = Rw_model.read v and w v = Rw_model.write v in
  let act i j a = Recovery.Act { Rw_model.id = Names.step i j; action = a } in
  let show label h =
    Printf.printf "%-30s %-40s class %s\n" label
      (Format.asprintf "%a" Recovery.pp h)
      (Recovery.classify 2 h)
  in
  show "commit before the read"
    [| act 0 0 (w "x"); Recovery.Commit 0; act 1 0 (r "x"); Recovery.Commit 1 |];
  show "dirty overwrite only"
    [| act 0 0 (w "x"); act 1 0 (w "x"); Recovery.Commit 0; Recovery.Commit 1 |];
  show "dirty read, ordered commits"
    [| act 0 0 (w "x"); act 1 0 (r "x"); Recovery.Commit 0; Recovery.Commit 1 |];
  show "dirty read, reader first"
    [| act 0 0 (w "x"); act 1 0 (r "x"); Recovery.Commit 1; Recovery.Commit 0 |];
  (* strict 2PL yields strict histories: sample over a real system *)
  let syntax = Core.Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let locked = Locking.Two_phase_strict.apply syntax in
  let fmt = Core.Syntax.format syntax in
  let strict_count =
    List.length
      (List.filter
         (fun h ->
           let events = ref [] in
           Array.iter
             (fun (id : Names.step_id) ->
               events :=
                 Recovery.Act
                   { Rw_model.id; action = Rw_model.write (Core.Syntax.var syntax id) }
                 :: !events;
               if id.Names.idx = fmt.(id.Names.tx) - 1 then
                 events := Recovery.Commit id.Names.tx :: !events)
             h;
           Recovery.strict 2 (Array.of_list (List.rev !events)))
         (Locking.Locked.outputs locked))
  in
  Printf.printf
    "\nstrict-2PL outputs on (xy, yx): %d histories, all strict: %b\n"
    (List.length (Locking.Locked.outputs locked))
    (strict_count = List.length (Locking.Locked.outputs locked));
  Printf.printf
    "shape: the placement rule is the recoverability dial — the paper's \
     as-early-as-possible releases maximise concurrency, holding locks to \
     commit maximises recoverability.\n"
