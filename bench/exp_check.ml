(* C1: history-checker throughput — events/sec per isolation level on
   the one-million-event generated history.

   The generated history is serializable by construction, so every
   verdict must be Consistent: the run is a correctness check and a
   throughput measurement at once. The same harness backs
   `ccopt check --bench`, which emits the committed BENCH_check.json
   trajectory file. *)

let run () =
  Tables.section "C1-check-bench"
    "consistency-checker throughput (events/sec, wall clock)";
  let rows = Sim.Check_bench.run Sim.Check_bench.default in
  Format.printf "%a" Sim.Check_bench.pp_rows rows;
  Printf.printf
    "\nshape: the saturation levels (rc/ra/causal) stream once over the \
     reads-from pairs; SI pays the same plus the split-history \
     construction; SER's prefix search is greedy-linear here because the \
     generated history embeds its own serial order.\n"
