(* The benchmark harness: regenerates every table and figure of the
   paper (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- E1 F3 P2  # a selection
*)

let experiments =
  [
    ("E1", Exp_examples.e1);
    ("F1", Exp_examples.f1);
    ("F2", Exp_locking.f2);
    ("F5", Exp_locking.f5);
    ("F3", Exp_locking.f3);
    ("F4", Exp_locking.f4);
    ("F4x", Exp_locking.tree);
    ("A1", Exp_locking.a1);
    ("T1", Exp_theorems.t1);
    ("T2", Exp_theorems.t2);
    ("T3", Exp_theorems.t3);
    ("T4", Exp_theorems.t4);
    ("P1", Exp_fixpoint.run);
    ("P2", Exp_delay.run);
    ("P3", Exp_des.run);
    ("X1", Exp_rw.run);
    ("X2", Exp_rw.x2);
    ("X3", Exp_rw.x3);
    ("P4", Exp_cost.run);
    ("S1", Exp_analysis.run);
    ("B1", Exp_sched_bench.run);
    ("C1", Exp_check.run);
  ]

let () =
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as picks) -> picks
    | _ -> List.map fst experiments
  in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %s (known: %s)\n" id
          (String.concat " " (List.map fst experiments));
        exit 2)
    selected;
  Printf.printf "\nall selected experiments completed.\n"
