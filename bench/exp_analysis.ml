(* S1: analyzer throughput (Bechamel timing).

   Cost of the static passes: the anomaly detector (minimal conflict
   cycle + read/write classification + Herbrand cross-validation) as
   the transaction count grows, and the full linter on each stock
   policy. *)

open Core
open Bechamel
open Toolkit

let make_tests () =
  let st = Random.State.make [| 99 |] in
  let anomaly_tests =
    List.map
      (fun n ->
        let syntax = Sim.Workload.uniform st ~n ~m:3 ~n_vars:2 in
        let h = Schedule.random st (Syntax.format syntax) in
        Test.make
          ~name:(Printf.sprintf "anomaly/check/n=%d" n)
          (Staged.stage (fun () -> ignore (Analysis.Anomaly.check syntax h))))
      [ 2; 3; 4; 5 ]
  in
  let lint_syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let lint_tests =
    List.map
      (fun name ->
        Test.make ~name:("lint/" ^ name)
          (Staged.stage (fun () ->
               ignore
                 (Analysis.Lock_lint.lint
                    (Analysis.Lock_lint.of_policy
                       (Analysis.Analyze.policy_of_name name)
                       lint_syntax)))))
      [ "2pl"; "2pl'"; "preclaim"; "mutex" ]
  in
  anomaly_tests @ lint_tests

let run () =
  Tables.section "S1-analyzer-throughput"
    "static analysis cost (Bechamel, ns per run)";
  let tests = Test.make_grouped ~name:"analyze" ~fmt:"%s/%s" (make_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "%-34s %14.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-34s (no estimate)\n" name)
    (List.sort compare rows);
  (* a throughput figure for the cheap path: anomaly checks per second
     on the acceptance-criteria system *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let h = Schedule.of_interleaving [| 0; 1; 0; 1 |] in
  let t0 = Sys.time () in
  let reps = 20_000 in
  for _ = 1 to reps do
    ignore (Analysis.Anomaly.check syntax h)
  done;
  let dt = Sys.time () -. t0 in
  Printf.printf "anomaly checks on xy,yx: %.0f checks/s\n"
    (float_of_int reps /. dt)
