(* B1: scheduler micro-benchmark — requests/sec per scheduler across
   workload sizes and variable mixes, incremental SGT against the
   brute-force SGT-ref oracle.

   The paper's Section 6 splits a step's cost into scheduling, waiting
   and execution; this experiment measures the scheduling component's
   throughput ceiling. The same harness backs `ccopt bench --json`,
   which emits the committed BENCH_sched.json trajectory file. *)

let run () =
  Tables.section "B1-sched-bench"
    "scheduler throughput (requests/sec, wall clock)";
  let rows = Sim.Sched_bench.run Sim.Sched_bench.default in
  Format.printf "%a" Sim.Sched_bench.pp_rows rows;
  Printf.printf
    "\nshape: the incremental SGT (Pearce–Kelly conflict graph) beats the \
     copy-and-recheck SGT-ref on every mix, widening with size and \
     contention; locking and timestamp schedulers sit between, with the \
     no-test serial scheduler as the ceiling.\n"
