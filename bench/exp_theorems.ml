(* T1-T4: the optimality theorems, executed. *)

open Core

let t2 () =
  Tables.section "T2-serial-optimal"
    "Theorem 2: the serial scheduler is optimal for minimum information";
  (* (a) the adversary construction refutes every non-serial schedule *)
  List.iter
    (fun fmt ->
      let all = Schedule.all fmt in
      let non_serial = List.filter (fun h -> not (Schedule.is_serial h)) all in
      let refuted = List.filter (Adversary.theorem2_refutes fmt) non_serial in
      Printf.printf
        "format (%s): %d schedules, %d non-serial, adversary refutes %d \
         (expected all)\n"
        (String.concat ","
           (List.map string_of_int (Array.to_list fmt)))
        (List.length all) (List.length non_serial) (List.length refuted))
    [ [| 2; 2 |]; [| 3; 2 |]; [| 2; 2; 2 |]; [| 3; 3 |] ];
  (* (b) exhaustive micro-universe intersection *)
  let r = Optimality.Verify.theorem2_report ~k:2 ~fmt:[| 2; 1 |] ~vars:[ "x" ] in
  Printf.printf "\nmicro-universe (Z2, format (2,1), var x):\n%s\n"
    (Format.asprintf "%a" Optimality.Verify.pp_report r);
  (* (c) the realised serial scheduler's fixpoint set *)
  let fmt = [| 2; 2 |] in
  let fp =
    Sched.Driver.fixpoint_of (fun () -> Sched.Serial_sched.create ~fmt) fmt
  in
  Printf.printf
    "\nserial scheduler fixpoint on (2,2): %d of %d schedules (= 2! serial \
     orders)\n"
    (List.length fp) (Schedule.count fmt)

let t3 () =
  Tables.section "T3-serialization-optimal"
    "Theorem 3: the serialization scheduler is optimal for syntactic info";
  (* (a) Herbrand-IC adversary rejects exactly the non-SR schedules *)
  List.iter
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let all = Schedule.all fmt in
      let agree =
        List.for_all
          (fun h ->
            Adversary.theorem3_refutes syntax h
            = not (Conflict.serializable syntax h))
          all
      in
      Printf.printf
        "syntax %s: adversary = complement of SR on all %d schedules: %b\n"
        (String.concat ","
           (List.map
              (fun i ->
                String.concat ""
                  (List.map (Syntax.var syntax)
                     (List.init (Syntax.length syntax i) (Names.step i))))
              (List.init (Syntax.n_transactions syntax) Fun.id)))
        (List.length all) agree)
    [
      Examples.fig1.System.syntax;
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
      Syntax.of_lists [ [ "x"; "x" ]; [ "x" ] ];
    ];
  (* (b) SGT realises the optimal syntactic scheduler *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let fmt = Syntax.format syntax in
  let fp = Sched.Driver.fixpoint_of (fun () -> Sched.Sgt.create ~syntax ()) fmt in
  let sr = Fixpoint.sr_only syntax in
  Printf.printf "\nSGT fixpoint = SR(T) on (x,y)/(y,x): %b (%d schedules)\n"
    (Fixpoint.subset fp sr && Fixpoint.subset sr fp)
    (List.length fp);
  (* (c) the finite-domain gap *)
  let r = Optimality.Verify.theorem3_report ~k:2 syntax in
  Printf.printf
    "micro-universe over Z2 (no Herbrand strings available): intersection \
     %d vs SR %d — gap %d (0 here; the Herbrand adversary is only needed \
     in general)\n"
    (List.length r.Optimality.Verify.intersection)
    (List.length r.Optimality.Verify.predicted)
    (List.length r.Optimality.Verify.gap)

let t1 () =
  Tables.section "T1-information-bound"
    "Theorem 1: P ⊆ ∩ C(T') for every correct scheduler";
  (* the bound for the four information levels on Figure 1's system *)
  let sys = Examples.fig1 in
  let probes = List.map (fun x -> State.of_ints [ ("x", x) ]) [ -2; 0; 1; 3 ] in
  let fp = Info.optimal_fixpoint sys ~probes in
  Printf.printf "optimal fixpoint sizes on Figure 1 (|H| = %d):\n"
    (Schedule.count (System.format sys));
  List.iter
    (fun level ->
      Printf.printf "  %-16s %d\n"
        (Format.asprintf "%a" Info.pp_level level)
        (List.length (fp level)))
    Info.all_levels;
  Printf.printf "monotone along the information order: %b (expected true)\n"
    (Info.monotone sys ~probes)

let t4 () =
  Tables.section "T4-weak-serialization"
    "Theorem 4: WSR is optimal without the integrity constraints";
  let sys = Examples.fig1 in
  let probes = List.map (fun x -> State.of_ints [ ("x", x) ]) [ -2; 0; 1; 3 ] in
  let sets = Fixpoint.compute sys ~probes in
  let h, serial, sr, wsr, c = Fixpoint.counts sets in
  Printf.printf
    "Figure 1 system: |H|=%d |Serial|=%d |SR|=%d |WSR|=%d |C|=%d — chain \
     holds: %b\n"
    h serial sr wsr c (Fixpoint.chain_holds sets);
  Printf.printf
    "WSR strictly above SR here (the Figure 1 history): %b (expected true)\n"
    (wsr > sr);
  (* a semantics where WSR refutes: T2 squares *)
  let open Expr.Ast in
  let syntax = Syntax.of_lists [ [ "x"; "x" ]; [ "x" ] ] in
  let squares =
    System.make syntax
      [|
        [| Add (Local 0, int 1); Mul (int 2, Local 1) |];
        [| Mul (Local 0, Local 0) |];
      |]
  in
  let p = [ State.of_ints [ ("x", 1) ] ] in
  Printf.printf
    "same syntax, T2 squares: fig1 history weakly serializable: %b \
     (expected false — semantics matter)\n"
    (Weak_sr.is_weakly_serializable squares ~probes:p Examples.fig1_history)

let run () =
  t1 ();
  t2 ();
  t3 ();
  t4 ()
