(* P4: decision and test costs (Bechamel timing).

   The paper's "scheduling time" component: how long a scheduler takes
   per decision, and how the two serializability tests scale — the
   polynomial conflict-graph test vs. the factorial Herbrand brute
   force. *)

open Core
open Bechamel
open Toolkit

let scheduler_run_test name mk fmt arrivals =
  Test.make ~name (Staged.stage (fun () ->
      ignore (Sched.Driver.run (mk ()) ~fmt ~arrivals)))

let make_tests () =
  let st = Random.State.make [| 77 |] in
  let syntax = Sim.Workload.hotspot st ~n:6 ~m:4 ~n_vars:3 ~theta:0.4 in
  let fmt = Syntax.format syntax in
  let arrivals = Combin.Interleave.random st fmt in
  let sched_tests =
    [
      scheduler_run_test "driver/serial"
        (fun () -> Sched.Serial_sched.create ~fmt)
        fmt arrivals;
      scheduler_run_test "driver/SGT" (fun () -> Sched.Sgt.create ~syntax ()) fmt
        arrivals;
      scheduler_run_test "driver/2PL"
        (fun () -> Sched.Tpl_sched.create_2pl ~syntax ())
        fmt arrivals;
      scheduler_run_test "driver/TO"
        (fun () -> Sched.Timestamp.create ~syntax ())
        fmt arrivals;
    ]
  in
  let sr_tests =
    List.concat_map
      (fun n ->
        let syntax_n = Sim.Workload.uniform st ~n ~m:3 ~n_vars:3 in
        let h = Schedule.random st (Syntax.format syntax_n) in
        [
          Test.make
            ~name:(Printf.sprintf "sr/conflict/n=%d" n)
            (Staged.stage (fun () -> ignore (Conflict.serializable syntax_n h)));
          Test.make
            ~name:(Printf.sprintf "sr/herbrand/n=%d" n)
            (Staged.stage (fun () -> ignore (Herbrand.serializable syntax_n h)));
        ])
      [ 3; 4; 5; 6 ]
  in
  let transform_tests =
    let big = Sim.Workload.uniform st ~n:8 ~m:6 ~n_vars:4 in
    [
      Test.make ~name:"policy/2PL-transform"
        (Staged.stage (fun () -> ignore (Locking.Two_phase.apply big)));
      Test.make ~name:"policy/2PL'-transform"
        (Staged.stage (fun () ->
             ignore (Locking.Two_phase_prime.apply ~distinguished:"v0" big)));
    ]
  in
  sched_tests @ sr_tests @ transform_tests

let run () =
  Tables.section "P4-decision-cost" "timing (Bechamel, ns per run)";
  let tests = Test.make_grouped ~name:"cost" ~fmt:"%s/%s" (make_tests ()) in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] -> Printf.printf "%-34s %14.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-34s (no estimate)\n" name)
    (List.sort compare rows);
  Printf.printf
    "\nshape: the conflict test stays flat while the Herbrand brute force \
     grows factorially with the number of transactions; all online \
     schedulers decide in microseconds (the paper's 'practical schedulers \
     tend to be simple').\n"
