(* Beyond serializability with the assertional scheduler (Section 6).

     dune exec examples/lamport_demo.exe

   The Figure 1 history (T11, T21, T12) is provably not serializable —
   no scheduler with only syntactic information may pass it. But if the
   integrity constraints say nothing that the interleaving could break,
   a scheduler that reasons with assertions may grant every request on
   arrival. This is the door the paper leaves open for approaches such
   as Lamport's and Kung-Lehman's. *)

open Core

let () =
  let sys =
    System.make
      ~ic:(System.Pred Expr.Ast.(ge (Global "x") (int 0)))
      Examples.fig1.System.syntax Examples.fig1.System.interp
  in
  Format.printf "System (Figure 1) with IC x >= 0:@.%a@.@." System.pp sys;
  let fmt = System.format sys in
  let h = Examples.fig1_history in
  Format.printf "History h = %s@." (Schedule.to_string h);
  Format.printf "serializable: %b@.@."
    (Conflict.serializable sys.System.syntax h);

  let initial = State.of_ints [ ("x", 3) ] in
  let arrivals = Schedule.to_interleaving h in

  (* The optimal syntactic scheduler must delay. *)
  let sgt =
    Sched.Driver.run (Sched.Sgt.create ~syntax:sys.System.syntax ()) ~fmt ~arrivals
  in
  Format.printf "SGT: output %s, delays %d@."
    (Schedule.to_string sgt.Sched.Driver.output)
    sgt.Sched.Driver.delays;

  (* The assertional scheduler with IC-derived arcs grants everything:
     both transactions only ever increase x, so the x >= 0 arcs never
     break. *)
  let arcs = Sched.Assertional.ic_arcs sys in
  let sched, final =
    Sched.Assertional.create ~system:sys ~arcs ~initial ()
  in
  let s = Sched.Driver.run sched ~fmt ~arrivals in
  Format.printf "assertional: output %s, delays %d, zero-delay %b@."
    (Schedule.to_string s.Sched.Driver.output)
    s.Sched.Driver.delays
    (Sched.Driver.zero_delay s);
  Format.printf "final state %s, consistent %b@.@."
    (State.to_string (final ()))
    (System.consistent sys (final ()));

  (* With an arc that the interleaving would break, it protects it. *)
  let pinned_arcs =
    [|
      [| Expr.Ast.bool true; Expr.Ast.(Eq (Global "x", int 4)); Expr.Ast.bool true |];
      [| Expr.Ast.bool true; Expr.Ast.bool true |];
    |]
  in
  let sched2, _ = Sched.Assertional.create ~system:sys ~arcs:pinned_arcs ~initial () in
  let s2 = Sched.Driver.run sched2 ~fmt ~arrivals in
  Format.printf
    "with T1's mid-arc pinned to x = 4: output %s, delays %d (T21 had to \
     wait)@."
    (Schedule.to_string s2.Sched.Driver.output)
    s2.Sched.Driver.delays
