(* The static analyzer as a library: run the three `ccopt analyze`
   passes programmatically and walk the diagnostics they return.

     dune exec examples/analysis_demo.exe
*)

open Core

let hr title =
  Printf.printf "\n--- %s %s\n" title (String.make (max 1 (60 - String.length title)) '-')

let () =
  (* 1. The anomaly detector on the paper's flagship system xy,yx with
     the fully interleaved schedule: a write-skew 2-cycle. *)
  hr "anomaly detection: xy,yx under 0101";
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let req =
    Analysis.Analyze.request ~schedule:[| 0; 1; 0; 1 |] syntax
  in
  Format.printf "%a@." Analysis.Report.pp (Analysis.Analyze.run req);

  (* 2. The same report as JSON — what `ccopt analyze --json` emits. *)
  hr "the same report as JSON";
  print_endline (Analysis.Report.to_json (Analysis.Analyze.run req));

  (* 3. The lock linter. 2PL on xy,yx is serializable but can deadlock;
     preclaiming trades that for less concurrency and no deadlock. *)
  hr "lock linting: 2pl vs preclaim on xy,yx";
  List.iter
    (fun name ->
      let policy = Analysis.Analyze.policy_of_name name in
      let diags =
        Analysis.Lock_lint.lint (Analysis.Lock_lint.of_policy policy syntax)
      in
      Printf.printf "%s:\n" name;
      List.iter
        (fun d ->
          Printf.printf "  %-28s %s\n" d.Analysis.Report.rule
            d.Analysis.Report.message)
        diags)
    [ "2pl"; "preclaim" ];

  (* 4. Picking one diagnostic apart: the deadlock witness is a concrete
     progress vector plus a legal prefix that reaches it. *)
  hr "replaying the 2pl deadlock witness";
  let diags =
    Analysis.Lock_lint.lint
      (Analysis.Lock_lint.of_policy (Analysis.Analyze.policy_of_name "2pl")
         syntax)
  in
  (match
     List.find_opt (fun d -> d.Analysis.Report.rule = "lock/deadlock") diags
   with
  | Some { Analysis.Report.witness = Some (Analysis.Report.Progress (p, pre)); _ }
    ->
    Printf.printf "doomed progress vector: (%s)\n"
      (String.concat "," (List.map string_of_int (Array.to_list p)));
    Printf.printf "legal prefix reaching it: [%s]\n"
      (String.concat ";" (List.map string_of_int (Array.to_list pre)))
  | _ -> print_endline "no deadlock diagnostic (unexpected for 2pl)");

  (* 5. The certifier: SGT's fixpoint output set P sits inside the
     Theorem 1 information bound over a Z_2 micro-universe. *)
  hr "certifying the SGT scheduler (Theorem 1 bound)";
  let diags =
    Analysis.Certifier.certify ~name:"sgt"
      ~make:(fun () -> Sched.Sgt.create ~syntax ())
      ~level:Analysis.Certifier.Syntactic syntax
  in
  List.iter
    (fun d ->
      Printf.printf "%-28s %s\n" d.Analysis.Report.rule d.Analysis.Report.message)
    diags
