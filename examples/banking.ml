(* The Section 2 banking example, end to end.

     dune exec examples/banking.exe

   T1 transfers $100 from A to B (guarded), T2 withdraws $50 from B and
   counts it in C, T3 audits S <- A + B and resets C. The integrity
   constraint links the audit to the withdrawals:
   A >= 0, B >= 0, S = A + B + 50 C.

   Running the transactions in any serial order preserves the
   constraint; interleaving them freely can break it; the schedulers of
   this library protect it. *)

open Core

let sys = Examples.banking
let g0 = Examples.banking_initial

let consistent g = System.consistent sys g

let () =
  Format.printf "Banking transaction system:@.%a@.@." System.pp sys;
  Format.printf "Initial state %s, consistent: %b@.@." (State.to_string g0)
    (consistent g0);

  (* 1. All serial executions preserve consistency. *)
  Format.printf "Serial executions:@.";
  List.iter
    (fun order ->
      let g = Exec.run_concatenation sys g0 (Array.to_list order) in
      Format.printf "  order %s -> %s consistent:%b@."
        (String.concat ","
           (List.map (fun i -> "T" ^ string_of_int (i + 1)) (Array.to_list order)))
        (State.to_string g) (consistent g))
    (Combin.Perm.all 3);

  (* 2. An inconsistent audit: T3 reads A before the transfer and B
     after it. *)
  let race =
    Schedule.of_interleaving [| 2; 0; 0; 0; 2; 2; 2; 1; 1 |]
  in
  let g = Exec.run sys g0 race in
  Format.printf "@.Racy schedule %s@.  -> %s consistent:%b@."
    (Schedule.to_string race) (State.to_string g) (consistent g);

  (* 3. How many of all schedules are serializable / correct? Sampled,
     since |H| = 9!/(3!2!4!) = 1260. *)
  let fmt = System.format sys in
  let st = Random.State.make [| 7 |] in
  let samples = 500 in
  let sr = ref 0 and correct = ref 0 in
  for _ = 1 to samples do
    let h = Schedule.random st fmt in
    if Conflict.serializable sys.System.syntax h then incr sr;
    if consistent (Exec.run sys g0 h) then incr correct
  done;
  Format.printf
    "@.Of %d random schedules: %d conflict-serializable, %d preserve the \
     constraint from %s@."
    samples !sr !correct (State.to_string g0);

  (* 4. The SGT scheduler repairs the racy arrival order. *)
  let stats =
    Sched.Driver.run
      (Sched.Sgt.create ~syntax:sys.System.syntax ())
      ~fmt
      ~arrivals:(Schedule.to_interleaving race)
  in
  let protected_g = Exec.run sys g0 stats.Sched.Driver.output in
  Format.printf
    "@.SGT reorders the racy stream to %s@.  -> %s consistent:%b (delays %d)@."
    (Schedule.to_string stats.Sched.Driver.output)
    (State.to_string protected_g)
    (consistent protected_g) stats.Sched.Driver.delays;

  (* 5. 2PL does the same, at the price of more delays on average. *)
  let rows =
    Sim.Measure.compare_schedulers
      (Sim.Measure.standard_suite sys.System.syntax)
      ~fmt ~samples:300 ~seed:42
  in
  Format.printf "@.Scheduler comparison on the banking syntax:@.%a"
    Sim.Measure.pp_rows rows
