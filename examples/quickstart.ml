(* Quickstart: model a tiny transaction system, test schedules for
   serializability, and run an online scheduler over a request stream.

     dune exec examples/quickstart.exe
*)

open Core

let () =
  (* Two transactions over a shared variable x and a private variable y:
       T1: x <- x+1 ; y <- y+x   (reads x into t1, then writes y)
       T2: x <- 2x
     Only the syntax matters for serializability. *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "x" ] ] in
  Format.printf "Transaction system syntax:@.%a@.@." Syntax.pp syntax;

  (* Enumerate the whole schedule space H and classify. *)
  let fmt = Syntax.format syntax in
  Format.printf "|H| = %d schedules@.@." (Schedule.count fmt);
  List.iter
    (fun h ->
      Format.printf "%-22s serial:%-5b serializable:%b@."
        (Schedule.to_string h) (Schedule.is_serial h)
        (Conflict.serializable syntax h))
    (Schedule.all fmt);

  (* The Herbrand (symbolic) view of one interleaving. *)
  let h = Schedule.of_interleaving [| 0; 1; 0 |] in
  Format.printf "@.Herbrand state of %s:@.  %a@." (Schedule.to_string h)
    Herbrand.pp_state (Herbrand.run syntax h);
  (match Herbrand.serialization_witness syntax h with
  | Some order ->
    Format.printf "equivalent serial order: T%d before T%d@.@."
      (order.(0) + 1) (order.(1) + 1)
  | None -> Format.printf "not serializable@.@.");

  (* Drive the optimal syntactic scheduler (SGT) over a request stream. *)
  let arrivals = [| 0; 1; 0 |] in
  let stats =
    Sched.Driver.run (Sched.Sgt.create ~syntax ()) ~fmt ~arrivals
  in
  Format.printf "SGT over arrivals 0,1,0: output %s, delays %d, zero-delay %b@."
    (Schedule.to_string stats.Sched.Driver.output)
    stats.Sched.Driver.delays
    (Sched.Driver.zero_delay stats);

  (* Compare scheduler performance on this system. *)
  let rows =
    Sim.Measure.compare_schedulers
      (Sim.Measure.standard_suite syntax)
      ~fmt ~samples:2000 ~seed:1
  in
  Format.printf "@.Scheduler comparison (2000 random histories):@.%a"
    Sim.Measure.pp_rows rows
