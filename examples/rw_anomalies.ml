(* Classical concurrency anomalies in the read/write extension, and how
   shared/exclusive two-phase locking rules them out.

     dune exec examples/rw_anomalies.exe
*)

open Core

let r v = Rw_model.read v
let w v = Rw_model.write v

let verdicts n h =
  Printf.sprintf "CSR=%-5b VSR=%-5b (polygraph %-5b) FSR=%b"
    (Rw_model.conflict_serializable n h)
    (Rw_model.view_serializable n h)
    (Rw_model.view_serializable_polygraph n h)
    (Rw_model.final_state_serializable n h)

let show title n h =
  Printf.printf "%-24s %-36s %s\n" title
    (Format.asprintf "%a" Rw_model.pp h)
    (verdicts n h)

let () =
  print_endline "Anomalies (the paper's RMW steps cannot express these —";
  print_endline "they need the Section 6 read/write refinement):\n";

  (* lost update: both read the old balance, both write *)
  let acct = [ [ r "x"; w "x" ]; [ r "x"; w "x" ] ] in
  show "lost update" 2 (Rw_model.interleave acct [| 0; 1; 0; 1 |]);

  (* inconsistent retrieval: the reader sees x before and y after a
     transfer-like double write *)
  let transfer = [ [ w "x"; w "y" ]; [ r "x"; r "y" ] ] in
  show "inconsistent retrieval" 2 (Rw_model.interleave transfer [| 1; 0; 0; 1 |]);

  (* a blind-write history that IS view-serializable though not
     conflict-serializable *)
  let n3, blind = Rw_model.csr_implies_vsr_witness () in
  show "blind writes (VSR)" n3 blind;

  (* dead reads make it final-state serializable only *)
  let n2, dead = Rw_model.vsr_not_fsr_witness () in
  show "dead reads (FSR only)" n2 dead;

  print_endline "\nShared/exclusive 2PL applied to the lost-update pair:";
  let progs = Locking.Rw_lock.programs acct in
  Array.iteri
    (fun i p ->
      Printf.printf "T%d: %s\n" (i + 1)
        (String.concat " | "
           (Array.to_list
              (Array.map (Format.asprintf "%a" Locking.Rw_lock.pp_step) p))))
    progs;
  let lost = Rw_model.interleave acct [| 0; 1; 0; 1 |] in
  Printf.printf "lost update admitted by rw-2PL: %b (expected false)\n"
    (Locking.Rw_lock.passes progs lost);
  let outs = Locking.Rw_lock.outputs progs in
  Printf.printf "rw-2PL admits %d histories, every one conflict-serializable: %b\n"
    (List.length outs)
    (List.for_all (Rw_model.conflict_serializable 2) outs);

  print_endline "\nRead-only transactions coexist under shared locks:";
  let readers = [ [ r "x"; r "y" ]; [ r "y"; r "x" ] ] in
  let shared = Locking.Rw_lock.programs readers in
  let exclusive =
    Array.of_list (List.mapi Locking.Rw_lock.exclusive_only readers)
  in
  Printf.printf "  shared-mode histories:    %d of %d\n"
    (List.length (Locking.Rw_lock.outputs shared))
    (Combin.Interleave.count [| 2; 2 |]);
  Printf.printf "  exclusive-only histories: %d of %d\n"
    (List.length (Locking.Rw_lock.outputs exclusive))
    (Combin.Interleave.count [| 2; 2 |])
