examples/lamport_demo.ml: Conflict Core Examples Expr Format Sched Schedule State System
