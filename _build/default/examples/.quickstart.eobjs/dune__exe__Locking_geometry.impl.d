examples/locking_geometry.ml: Array Combin Conflict Core Examples Format List Locking Names Schedule Syntax
