examples/fixpoint_explorer.ml: Arg Array Cmd Cmdliner Core Expr Fixpoint Format List Schedule String Syntax System Term Weak_sr
