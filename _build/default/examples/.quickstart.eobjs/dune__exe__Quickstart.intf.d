examples/quickstart.mli:
