examples/banking.ml: Array Combin Conflict Core Examples Exec Format List Random Sched Schedule Sim State String System
