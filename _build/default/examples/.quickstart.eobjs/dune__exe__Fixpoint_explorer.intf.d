examples/fixpoint_explorer.mli:
