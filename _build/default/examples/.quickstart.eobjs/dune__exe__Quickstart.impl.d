examples/quickstart.ml: Array Conflict Core Format Herbrand List Sched Schedule Sim Syntax
