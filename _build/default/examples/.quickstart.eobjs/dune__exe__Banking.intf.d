examples/banking.mli:
