examples/locking_geometry.mli:
