examples/rw_anomalies.mli:
