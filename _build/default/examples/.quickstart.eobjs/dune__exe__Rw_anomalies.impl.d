examples/rw_anomalies.ml: Array Combin Core Format List Locking Printf Rw_model String
