examples/lamport_demo.mli:
