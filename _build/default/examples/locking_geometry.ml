(* The geometry of locking: Figures 2, 3, 4 and 5 as runnable output.

     dune exec examples/locking_geometry.exe
*)

open Core

let banner title =
  Format.printf "@.=== %s ===@.@." title

let () =
  (* Figure 2: 2PL transformation of the transaction (x, y, x, z). *)
  banner "Figure 2: two-phase locking of (x, y, x, z)";
  let fig2 = Syntax.of_lists [ Examples.fig2_transaction ] in
  Format.printf "%a@." Locking.Locked.pp (Locking.Two_phase.apply fig2);

  (* Figure 5: the 2PL' transformation of the same transaction. *)
  banner "Figure 5: 2PL' (distinguished variable x)";
  Format.printf "%a@." Locking.Locked.pp
    (Locking.Two_phase_prime.apply ~distinguished:"x" fig2);

  (* Figure 3: the progress space of two 2PL-locked transactions. *)
  banner "Figure 3: progress space, blocks, and a staircase schedule";
  let locked = Locking.Two_phase.apply Examples.fig3_pair in
  let geo = Locking.Geometry.analyse locked in
  (* a legal interleaving: T1 does x, then T2 runs, then T1 finishes *)
  let il = [| 0; 0; 1; 1; 0; 0; 0; 0; 1; 1; 1; 1 |] in
  let il =
    if Locking.Locked.legal locked il then il
    else
      (* fall back to the serial interleaving *)
      Array.append
        (Array.make (Array.length locked.Locking.Locked.txs.(0)) 0)
        (Array.make (Array.length locked.Locking.Locked.txs.(1)) 1)
  in
  let path = Locking.Geometry.path_of_interleaving il in
  print_endline (Locking.Render.figure ~path locked);
  Format.printf "@.path sides:@.%s@."
    (Locking.Render.side_summary geo path);

  (* The deadlock region appears when the lock orders oppose. *)
  banner "Figure 3, region D: opposed lock orders deadlock";
  let opposed =
    Locking.Two_phase.apply (Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ])
  in
  print_endline (Locking.Render.figure opposed);

  (* Figure 4(c): an incorrect locking policy leaves the blocks
     disconnected, and a legal schedule can separate them. *)
  banner "Figure 4(c): separated blocks = non-serializable output";
  let tx i =
    [
      Locking.Locked.Lock "x";
      Locking.Locked.Action (Names.step i 0);
      Locking.Locked.Unlock "x";
      Locking.Locked.Lock "y";
      Locking.Locked.Action (Names.step i 1);
      Locking.Locked.Unlock "y";
    ]
  in
  let bad = Locking.Locked.make Examples.fig3_pair [ tx 0; tx 1 ] in
  let bad_geo = Locking.Geometry.analyse bad in
  Format.printf "blocks connected: %b@.@."
    (Locking.Geometry.blocks_connected bad_geo);
  let separating =
    List.find_opt
      (fun il ->
        Locking.Locked.legal bad il
        && not
             (Conflict.serializable Examples.fig3_pair
                (Locking.Locked.project bad il)))
      (Combin.Interleave.all (Locking.Locked.format bad))
  in
  (match separating with
  | Some il ->
    let p = Locking.Geometry.path_of_interleaving il in
    print_endline (Locking.Render.grid ~path:p bad_geo);
    Format.printf "this path separates the blocks; projection %s is NOT \
                   serializable@."
      (Schedule.to_string (Locking.Locked.project bad il))
  | None -> Format.printf "unexpected: no separating schedule@.");

  (* Figure 4(d): 2PL keeps every block stabbed by the phase-shift
     point u. *)
  banner "Figure 4(d): 2PL blocks share the point u";
  (match Locking.Geometry.common_point geo with
  | Some (ux, uy) ->
    Format.printf "common point u = (%d, %d); blocks connected: %b@." ux uy
      (Locking.Geometry.blocks_connected geo)
  | None -> Format.printf "no common point (not 2PL?)@.");

  (* Homotopy: legal paths fall into exactly two classes here. *)
  banner "Homotopy classes (elementary transformations, Figure 4(b))";
  let p1, p2 = Locking.Geometry.serial_paths geo in
  Format.printf "serial paths homotopic to each other: %b@."
    (Locking.Geometry.homotopic geo p1 p2);
  Format.printf "staircase path homotopic to T1-first serial: %b@."
    (Locking.Geometry.homotopic geo path p1)
