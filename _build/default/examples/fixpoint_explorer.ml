(* Fixpoint-set explorer: the information-performance trade-off on the
   command line.

     dune exec examples/fixpoint_explorer.exe -- --syntax "xy,yx"
     dune exec examples/fixpoint_explorer.exe -- --syntax "xx,x" --probes 9

   The syntax argument lists one transaction per comma-separated group;
   each character is a variable name. Every schedule of the system is
   classified into the hierarchy Serial ⊆ SR ⊆ WSR ⊆ C(T) (with
   increment semantics and a trivial integrity constraint by default,
   or a range constraint via --bounded). *)

open Core

let parse_syntax spec =
  let groups = String.split_on_char ',' spec in
  if groups = [] then invalid_arg "empty syntax";
  Syntax.of_lists
    (List.map
       (fun g -> List.init (String.length g) (fun i -> String.make 1 g.[i]))
       groups)

let build_system bounded syntax =
  let fmt = Syntax.format syntax in
  let interp =
    Array.map
      (fun m -> Array.init m (fun j -> Expr.Ast.(Add (Local j, int 1))))
      fmt
  in
  let ic =
    if bounded then
      System.Pred
        (List.fold_left
           (fun acc v -> Expr.Ast.(And (acc, Le (Global v, int 100))))
           (Expr.Ast.bool true) (Syntax.vars syntax))
    else System.Trivial
  in
  System.make ~ic syntax interp

let explore spec bounded n_probes verbose =
  let syntax = parse_syntax spec in
  let sys = build_system bounded syntax in
  let fmt = Syntax.format syntax in
  Format.printf "System:@.%a@.@." System.pp sys;
  if Schedule.count fmt > 5000 then begin
    Format.printf "|H| = %d is too large to enumerate; try fewer steps@."
      (Schedule.count fmt);
    exit 1
  end;
  let probes = Weak_sr.default_probes ~seed:17 ~count:n_probes sys in
  let sets = Fixpoint.compute sys ~probes in
  let h, serial, sr, wsr, c = Fixpoint.counts sets in
  Format.printf "|H|      = %4d@." h;
  Format.printf "|Serial| = %4d  (%.3f of H)  — optimal for format-only info@."
    serial (float_of_int serial /. float_of_int h);
  Format.printf "|SR|     = %4d  (%.3f of H)  — optimal for syntactic info@."
    sr (float_of_int sr /. float_of_int h);
  Format.printf "|WSR|    = %4d  (%.3f of H)  — optimal w/o integrity constraints@."
    wsr (float_of_int wsr /. float_of_int h);
  Format.printf "|C(T)|   = %4d  (%.3f of H)  — optimal for complete info@."
    c (float_of_int c /. float_of_int h);
  Format.printf "chain Serial ⊆ SR ⊆ WSR ⊆ C(T): %b@."
    (Fixpoint.chain_holds sets);
  if verbose then begin
    Format.printf "@.schedules:@.";
    let mem x l = List.exists (Schedule.equal x) l in
    List.iter
      (fun hh ->
        Format.printf "  %-30s %s%s%s%s@."
          (Schedule.to_string hh)
          (if mem hh sets.Fixpoint.serial then "serial " else "")
          (if mem hh sets.Fixpoint.sr then "SR " else "")
          (if mem hh sets.Fixpoint.wsr then "WSR " else "")
          (if mem hh sets.Fixpoint.c then "C" else ""))
      sets.Fixpoint.h
  end

open Cmdliner

let syntax_arg =
  Arg.(
    value
    & opt string "xy,yx"
    & info [ "syntax"; "s" ] ~docv:"SPEC"
        ~doc:"Transactions as comma-separated variable strings, e.g. xy,yx.")

let bounded_arg =
  Arg.(
    value & flag
    & info [ "bounded" ]
        ~doc:"Use the integrity constraint v <= 100 for every variable.")

let probes_arg =
  Arg.(
    value & opt int 12
    & info [ "probes" ] ~docv:"N" ~doc:"Number of probe states for WSR/C.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"List every schedule.")

let cmd =
  let doc = "explore the fixpoint-set hierarchy of a transaction system" in
  Cmd.v
    (Cmd.info "fixpoint_explorer" ~doc)
    Term.(const explore $ syntax_arg $ bounded_arg $ probes_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
