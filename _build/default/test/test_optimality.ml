(* Tests for the micro-universe verification of the optimality theorems. *)

open Util
open Core

let test_all_functions () =
  (* Z_2, unary: 2^2 = 4 functions *)
  check_int "unary over Z2" 4 (List.length (Optimality.Universe.all_functions ~k:2 ~arity:1));
  (* Z_2, binary: 2^4 = 16 *)
  check_int "binary over Z2" 16 (List.length (Optimality.Universe.all_functions ~k:2 ~arity:2));
  (* Z_3, unary: 3^3 = 27 *)
  check_int "unary over Z3" 27 (List.length (Optimality.Universe.all_functions ~k:3 ~arity:1))

let test_functions_distinct () =
  (* the 4 unary functions over Z2 compute 4 distinct value tables *)
  let fns = Optimality.Universe.all_functions ~k:2 ~arity:1 in
  let tables =
    List.map
      (fun e ->
        List.map
          (fun v ->
            Expr.Ast.eval
              ~locals:(fun _ -> Expr.Value.Int v)
              ~globals:(fun _ -> assert false)
              e)
          [ 0; 1 ])
      fns
  in
  check_int "distinct tables" 4 (List.length (List.sort_uniq compare tables))

let test_functions_range () =
  (* every function's outputs stay in Z_k *)
  List.iter
    (fun e ->
      List.iter
        (fun (a, b) ->
          let v =
            Expr.Ast.eval
              ~locals:(fun i -> Expr.Value.Int (if i = 0 then a else b))
              ~globals:(fun _ -> assert false)
              e
          in
          check_true "in range" (Expr.Value.mem (Expr.Value.Int_range (0, 1)) v))
        [ (0, 0); (0, 1); (1, 0); (1, 1) ])
    (Optimality.Universe.all_functions ~k:2 ~arity:2)

let test_all_syntaxes () =
  (* format (2,1) over 2 vars: 2^3 = 8 syntaxes *)
  check_int "syntax count" 8
    (List.length (Optimality.Universe.all_syntaxes ~fmt:[| 2; 1 |] ~vars:[ "x"; "y" ]))

let test_all_ics () =
  (* 1 var over Z2: 2 states, 2^2 - 1 = 3 nonempty subsets *)
  check_int "ic count" 3 (List.length (Optimality.Universe.all_ics ~k:2 ~vars:[ "x" ]))

let test_states () =
  check_int "Z2 x Z2" 4 (List.length (Optimality.Universe.states ~k:2 ~vars:[ "x"; "y" ]))

let test_basic_assumption_filter () =
  (* systems violating the basic assumption are excluded: count manually *)
  let universe =
    Optimality.Universe.systems ~k:2 ~fmt:[| 1 |] ~vars:[ "x" ] ()
  in
  let probes = Optimality.Universe.states ~k:2 ~vars:[ "x" ] in
  Seq.iter
    (fun sys ->
      check_true "respects basic assumption"
        (Exec.basic_assumption sys ~probes))
    universe

let test_theorem2_micro () =
  (* the headline exhaustive check: over Z2, format (2,1), one variable,
     the optimal minimum-information fixpoint set is exactly the serial
     schedules *)
  let r = Optimality.Verify.theorem2_report ~k:2 ~fmt:[| 2; 1 |] ~vars:[ "x" ] in
  check_true "matches Theorem 2" r.Optimality.Verify.matches;
  check_int "no gap" 0 (List.length r.Optimality.Verify.gap);
  check_true "nontrivial universe" (r.Optimality.Verify.universe_size > 100)

let test_theorem2_micro_11 () =
  let r = Optimality.Verify.theorem2_report ~k:2 ~fmt:[| 1; 1 |] ~vars:[ "x" ] in
  (* with single-step transactions every schedule is serial: trivially
     optimal *)
  check_true "matches" r.Optimality.Verify.matches;
  check_int "all serial" 2 (List.length r.Optimality.Verify.predicted)

let test_theorem3_micro () =
  (* intersection over all semantics+ICs of a fixed syntax must contain
     SR(T) (Herbrand soundness) — and the report records any finite-
     domain gap *)
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let r = Optimality.Verify.theorem3_report ~k:2 syntax in
  check_true "SR inside intersection"
    (Fixpoint.subset r.Optimality.Verify.predicted r.Optimality.Verify.intersection);
  (* for this syntax the gap is empty even over Z2 *)
  check_true "matches here" r.Optimality.Verify.matches

let test_theorem3_micro_shared () =
  let syntax = Syntax.of_lists [ [ "x"; "x" ]; [ "x" ] ] in
  let r = Optimality.Verify.theorem3_report ~k:2 syntax in
  check_true "SR inside intersection"
    (Fixpoint.subset r.Optimality.Verify.predicted r.Optimality.Verify.intersection)

let test_report_printer () =
  let r = Optimality.Verify.theorem2_report ~k:2 ~fmt:[| 1; 1 |] ~vars:[ "x" ] in
  let s = Format.asprintf "%a" Optimality.Verify.pp_report r in
  check_true "prints" (String.length s > 0)

(* Property: every member of the Z2 universe treats serial schedules as
   correct (the basic assumption at work). *)
let prop_serial_correct_in_universe =
  QCheck.Test.make ~name:"serial schedules correct across the universe"
    ~count:1
    QCheck.unit
    (fun () ->
      let probes = Optimality.Universe.states ~k:2 ~vars:[ "x" ] in
      let serial = Fixpoint.serial_only [| 2; 1 |] in
      Optimality.Universe.systems ~k:2 ~fmt:[| 2; 1 |] ~vars:[ "x" ] ()
      |> Seq.for_all (fun sys ->
             List.for_all (Exec.correct_schedule sys ~probes) serial))

let suite =
  [
    Alcotest.test_case "function enumeration" `Quick test_all_functions;
    Alcotest.test_case "functions distinct" `Quick test_functions_distinct;
    Alcotest.test_case "functions in range" `Quick test_functions_range;
    Alcotest.test_case "syntax enumeration" `Quick test_all_syntaxes;
    Alcotest.test_case "ic enumeration" `Quick test_all_ics;
    Alcotest.test_case "state enumeration" `Quick test_states;
    Alcotest.test_case "basic assumption filter" `Quick test_basic_assumption_filter;
    Alcotest.test_case "theorem 2 micro-universe" `Slow test_theorem2_micro;
    Alcotest.test_case "theorem 2 (1,1)" `Quick test_theorem2_micro_11;
    Alcotest.test_case "theorem 3 micro-universe" `Slow test_theorem3_micro;
    Alcotest.test_case "theorem 3 shared var" `Quick test_theorem3_micro_shared;
    Alcotest.test_case "report printer" `Quick test_report_printer;
  ]
  @ qsuite [ prop_serial_correct_in_universe ]
