(* Tests for fixpoint sets and information levels (Section 3). *)

open Util
open Core

let fig1 = Examples.fig1
let probes = List.map (fun x -> State.of_ints [ ("x", x) ]) [ -2; 0; 1; 3 ]

let sets = lazy (Fixpoint.compute fig1 ~probes)

let test_counts () =
  let h, serial, sr, wsr, c = Fixpoint.counts (Lazy.force sets) in
  check_int "|H| = 3" 3 h;
  (* format (2,1): interleavings 0;0;1 / 0;1;0 / 1;0;0 *)
  check_int "|Serial| = 2" 2 serial;
  check_int "|SR| = 2" 2 sr;
  (* the interleaved history is weakly serializable: |WSR| = 3 *)
  check_int "|WSR| = 3" 3 wsr;
  check_int "|C| = 3 (trivial IC)" 3 c

let test_chain () =
  check_true "Serial <= SR <= WSR <= C <= H"
    (Fixpoint.chain_holds (Lazy.force sets))

let test_zero_delay_ratio () =
  let s = Lazy.force sets in
  let r = Fixpoint.zero_delay_ratio s.Fixpoint.serial [| 2; 1 |] in
  check_true "2/3" (abs_float (r -. (2. /. 3.)) < 1e-9)

let test_hierarchy_banking () =
  (* the banking system is too large to enumerate H; check SR on the
     smaller two_counters system instead, with a real IC *)
  let open Expr.Ast in
  let sys =
    System.make
      ~ic:(System.Pred (ge (Global "x") (int (-100))))
      Examples.two_counters.System.syntax Examples.two_counters.System.interp
  in
  let probes =
    List.map
      (fun (x, y) -> State.of_ints [ ("x", x); ("y", y) ])
      [ (0, 0); (1, 1); (2, -1) ]
  in
  let s = Fixpoint.compute sys ~probes in
  check_true "chain holds" (Fixpoint.chain_holds s);
  let h, serial, sr, wsr, c = Fixpoint.counts s in
  check_int "|H| = (2+2)!/2!2! = 6" 6 h;
  check_int "serial = 2" 2 serial;
  check_true "sr >= serial" (sr >= serial);
  check_true "wsr >= sr" (wsr >= sr);
  check_true "c >= wsr" (c >= wsr)

let test_info_levels_order () =
  check_true "format <= syntactic" (Info.leq Info.Format_only Info.Syntactic);
  check_true "syntactic <= semantic" (Info.leq Info.Syntactic Info.Semantic_no_ic);
  check_true "semantic <= complete" (Info.leq Info.Semantic_no_ic Info.Complete);
  check_false "complete </= format" (Info.leq Info.Complete Info.Format_only)

let test_same_class () =
  let a = Examples.fig1 in
  let b =
    (* same syntax, different semantics *)
    System.make a.System.syntax
      [|
        [| Expr.Ast.Local 0; Expr.Ast.Local 1 |];
        [| Expr.Ast.Local 0 |];
      |]
  in
  check_true "same format class" (Info.same_class Info.Format_only a b);
  check_true "same syntactic class" (Info.same_class Info.Syntactic a b);
  check_false "different semantic class" (Info.same_class Info.Semantic_no_ic a b);
  check_true "complete self" (Info.same_class Info.Complete a a)

let test_monotone () =
  (* the information-performance isomorphism on fig1 *)
  check_true "optimal fixpoints are monotone in information"
    (Info.monotone fig1 ~probes)

let test_optimal_fixpoints_match_theorems () =
  let fp = Info.optimal_fixpoint fig1 ~probes in
  let s = Lazy.force sets in
  check_true "format-only = serial"
    (Fixpoint.subset (fp Info.Format_only) s.Fixpoint.serial
    && Fixpoint.subset s.Fixpoint.serial (fp Info.Format_only));
  check_true "syntactic = SR"
    (Fixpoint.subset (fp Info.Syntactic) s.Fixpoint.sr
    && Fixpoint.subset s.Fixpoint.sr (fp Info.Syntactic));
  check_true "semantic = WSR"
    (Fixpoint.subset (fp Info.Semantic_no_ic) s.Fixpoint.wsr
    && Fixpoint.subset s.Fixpoint.wsr (fp Info.Semantic_no_ic))

(* Property: the chain holds for random small systems with increment
   semantics and trivial IC. *)
let prop_chain_random =
  QCheck.Test.make ~name:"fixpoint chain holds on random systems" ~count:25
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:2 ~n_vars:2))
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let interp =
        Array.map
          (fun m ->
            Array.init m (fun j -> Expr.Ast.(Add (Local j, int 1))))
          fmt
      in
      let sys = System.make syntax interp in
      let probes =
        List.map
          (fun (x, y) -> State.of_ints [ ("x", x); ("y", y) ])
          [ (0, 0); (2, 5) ]
      in
      Fixpoint.chain_holds (Fixpoint.compute sys ~probes))

let suite =
  [
    Alcotest.test_case "fig1 counts" `Quick test_counts;
    Alcotest.test_case "fig1 chain" `Quick test_chain;
    Alcotest.test_case "zero delay ratio" `Quick test_zero_delay_ratio;
    Alcotest.test_case "two_counters hierarchy" `Quick test_hierarchy_banking;
    Alcotest.test_case "info level order" `Quick test_info_levels_order;
    Alcotest.test_case "information classes" `Quick test_same_class;
    Alcotest.test_case "monotone isomorphism" `Quick test_monotone;
    Alcotest.test_case "optimal fixpoints = theorems" `Quick test_optimal_fixpoints_match_theorems;
  ]
  @ qsuite [ prop_chain_random ]
