(* Tests for weak serializability (Section 4.3, Theorem 4). *)

open Util
open Core

let fig1 = Examples.fig1
let probes = List.map (fun x -> State.of_ints [ ("x", x) ]) [ -4; -1; 0; 1; 2; 5 ]

let test_fig1_weakly_serializable () =
  (* The paper's motivating example: h = (T11, T21, T12) is not
     serializable, yet with the given interpretations it reaches the same
     state as the serial history (T21, T11, T12) from every state. *)
  match Weak_sr.check fig1 ~probes Examples.fig1_history with
  | Weak_sr.Weakly_serializable witnesses ->
    check_int "one witness per probe" (List.length probes) (List.length witnesses)
  | Weak_sr.Refuted e ->
    Alcotest.failf "unexpected refutation from %s" (State.to_string e)

let test_sr_subset_wsr () =
  (* SR(T) ⊆ WSR(T) on the whole schedule space of fig1 *)
  let syntax = fig1.System.syntax in
  List.iter
    (fun h ->
      if Conflict.serializable syntax h then
        check_true "SR inside WSR"
          (Weak_sr.is_weakly_serializable fig1 ~probes h))
    (Schedule.all (System.format fig1))

let test_wsr_strictly_larger () =
  check_false "fig1 history not in SR"
    (Conflict.serializable fig1.System.syntax Examples.fig1_history);
  check_true "but in WSR"
    (Weak_sr.is_weakly_serializable fig1 ~probes Examples.fig1_history)

let test_refutation () =
  (* Make T2 square instead: h = (T11, T21, T12) from x=1 gives
     2·(1+1)² = 8, while serial compositions of x ↦ 2(x+1) and x ↦ x²
     from 1 only reach {1, 4, 10, 16, 22, ...} — never 8. *)
  let open Expr.Ast in
  let syntax = Syntax.of_lists [ [ "x"; "x" ]; [ "x" ] ] in
  let sys =
    System.make syntax
      [|
        [| Add (Local 0, int 1); Mul (int 2, Local 1) |];
        [| Mul (Local 0, Local 0) |];
      |]
  in
  let p = List.map (fun x -> State.of_ints [ ("x", x) ]) [ 1 ] in
  match Weak_sr.check sys ~probes:p Examples.fig1_history with
  | Weak_sr.Refuted e -> check_true "refuted at x=1" (State.equal e (List.hd p))
  | Weak_sr.Weakly_serializable _ ->
    Alcotest.fail "expected refutation"

let test_reachable_finals () =
  (* fig1 from x=0: reachable final values under concatenations of
     T1 (x -> 2(x+1)) and T2 (x -> x+1) up to length 4 *)
  let e = State.of_ints [ ("x", 0) ] in
  let reach = Weak_sr.reachable_finals ~max_len:2 fig1 e in
  let values =
    List.map (fun (g, _) -> Expr.Value.int (State.get g "x")) reach
    |> List.sort_uniq Int.compare
  in
  (* length <= 2: {} -> 0; T1 -> 2; T2 -> 1; T1T1 -> 6; T1T2 -> 3;
     T2T1 -> 4; T2T2 -> 2 *)
  Alcotest.(check (list int)) "reachable values" [ 0; 1; 2; 3; 4; 6 ] values

let test_witness_concatenation_replays () =
  (* the witness concatenation must actually reproduce the final state *)
  match Weak_sr.check fig1 ~probes Examples.fig1_history with
  | Weak_sr.Refuted _ -> Alcotest.fail "unexpected refutation"
  | Weak_sr.Weakly_serializable witnesses ->
    List.iter2
      (fun e w ->
        let by_h = Exec.run fig1 e Examples.fig1_history in
        let by_w = Exec.run_concatenation fig1 e w in
        check_true "witness replays" (State.equal by_h by_w))
      probes witnesses

let test_default_probes_finite () =
  let open Expr.Ast in
  let sys =
    System.make
      ~domains:[ ("b", Expr.Value.Bools); ("c", Expr.Value.Int_range (0, 2)) ]
      (Syntax.of_lists [ [ "b"; "c" ] ])
      [| [| Local 0; Local 1 |] |]
  in
  let p = Weak_sr.default_probes ~seed:1 sys in
  check_int "full enumeration" 6 (List.length p)

let test_default_probes_infinite () =
  let p = Weak_sr.default_probes ~seed:1 ~count:10 fig1 in
  check_int "sampled" 10 (List.length p)

(* Property: WSR contains every serial schedule (witness: that very
   permutation). *)
let prop_serial_in_wsr =
  QCheck.Test.make ~name:"serial schedules are weakly serializable" ~count:40
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = rng seed in
      let order = Combin.Perm.random st 2 in
      let h = Schedule.serial (System.format fig1) order in
      Weak_sr.is_weakly_serializable fig1 ~probes h)

(* Property: on systems where every transaction is the identity, every
   schedule is weakly serializable (final state = initial = empty
   concatenation). *)
let prop_identity_system_all_wsr =
  QCheck.Test.make ~name:"identity systems: all schedules in WSR" ~count:60
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:2 ~n_vars:2)
    (fun (syntax, h) ->
      let fmt = Syntax.format syntax in
      let interp =
        Array.map (fun m -> Array.init m (fun j -> Expr.Ast.Local j)) fmt
      in
      let sys = System.make syntax interp in
      let p =
        List.map
          (fun (x, y) -> State.of_ints [ ("x", x); ("y", y) ])
          [ (0, 0); (1, 2) ]
      in
      Weak_sr.is_weakly_serializable sys ~probes:p h)

let suite =
  [
    Alcotest.test_case "fig1 weakly serializable" `Quick test_fig1_weakly_serializable;
    Alcotest.test_case "SR subset of WSR" `Quick test_sr_subset_wsr;
    Alcotest.test_case "WSR strictly larger" `Quick test_wsr_strictly_larger;
    Alcotest.test_case "refutation" `Quick test_refutation;
    Alcotest.test_case "reachable finals" `Quick test_reachable_finals;
    Alcotest.test_case "witness replays" `Quick test_witness_concatenation_replays;
    Alcotest.test_case "default probes finite" `Quick test_default_probes_finite;
    Alcotest.test_case "default probes sampled" `Quick test_default_probes_infinite;
  ]
  @ qsuite [ prop_serial_in_wsr; prop_identity_system_all_wsr ]
