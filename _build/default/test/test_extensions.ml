(* Tests for the extension components: swap-equivalence classes,
   preclaiming (conservative) locking and optimistic concurrency
   control. *)

open Util
open Core

(* --- Equivalence: elementary transformations on schedules --- *)

let fig1_syntax = Examples.fig1.System.syntax

let test_swappable () =
  let h = Schedule.of_interleaving [| 0; 1; 0 |] in
  (* steps on the same variable x never commute *)
  check_false "same var" (Equivalence.swappable fig1_syntax h 0);
  let s2 = Syntax.of_lists [ [ "x" ]; [ "y" ] ] in
  let h2 = Schedule.of_interleaving [| 0; 1 |] in
  check_true "different vars" (Equivalence.swappable s2 h2 0);
  let h3 = Schedule.of_interleaving [| 0; 0 |] in
  let s3 = Syntax.of_lists [ [ "x"; "y" ] ] in
  check_false "same transaction" (Equivalence.swappable s3 h3 0)

let test_swap_preserves_herbrand () =
  let s = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  List.iter
    (fun h ->
      List.iter
        (fun h' ->
          check_true "swap preserves Herbrand state"
            (Herbrand.equivalent s h h'))
        (Equivalence.neighbours s h))
    (Schedule.all (Syntax.format s))

let test_classes_partition () =
  let s = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let classes = Equivalence.classes s in
  let total = List.fold_left (fun acc c -> acc + List.length c) 0 classes in
  check_int "classes partition H" (Schedule.count (Syntax.format s)) total

let test_serializable_classes () =
  (* serializable schedules = union of classes containing a serial one *)
  let s = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  List.iter
    (fun cls ->
      let has_serial = List.exists Schedule.is_serial cls in
      List.iter
        (fun h ->
          check_true "class membership decides SR"
            (Conflict.serializable s h = has_serial))
        cls)
    (Equivalence.classes s)

(* The big cross-validation: swap-connectivity to a serial schedule
   coincides with the conflict test (and hence Herbrand SR). *)
let prop_connectivity_is_sr =
  QCheck.Test.make ~name:"swap-connected to serial = serializable" ~count:60
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:2 ~n_vars:2)
    (fun (syntax, h) ->
      let fmt = Syntax.format syntax in
      let reaches_serial =
        List.exists
          (fun serial -> Equivalence.connected syntax h serial)
          (Schedule.all_serial fmt)
      in
      reaches_serial = Conflict.serializable syntax h)

let prop_class_count_herbrand =
  QCheck.Test.make ~name:"classes refine Herbrand equivalence" ~count:25
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:3 ~n_vars:2))
    (fun syntax ->
      List.for_all
        (fun cls ->
          match cls with
          | [] -> true
          | first :: rest ->
            List.for_all (fun h -> Herbrand.equivalent syntax first h) rest)
        (Equivalence.classes syntax))

(* --- Preclaim locking --- *)

let test_preclaim_shape () =
  let s = Syntax.of_lists [ [ "y"; "x"; "y" ] ] in
  let l = Locking.Preclaim.apply s in
  let strings =
    Array.to_list
      (Array.map
         (fun st -> Format.asprintf "%a" Locking.Locked.pp_step st)
         l.Locking.Locked.txs.(0))
  in
  (* locks sorted x before y, releases after last access *)
  Alcotest.(check (list string)) "shape"
    [ "lock x"; "lock y"; "T11"; "T12"; "unlock x"; "T13"; "unlock y" ]
    strings;
  check_true "two-phase" (Locking.Locked.is_two_phase l);
  check_true "well-formed" (Locking.Locked.is_well_formed l)

let test_preclaim_correct_and_incomparable () =
  List.iter
    (fun s ->
      check_true "preclaim correct"
        (Locking.Policy.correct_exhaustive Locking.Preclaim.policy s))
    [
      Examples.fig3_pair;
      Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ];
      Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "x" ] ];
    ];
  (* preclaim and 2PL are incomparable: 2PL passes an early touch of a
     late-released variable that preclaim blocks (y here), while
     preclaim releases x of (x,y,z) right after its only access, which
     2PL's phase shift forbids *)
  let s1 = Syntax.of_lists [ [ "x"; "y" ]; [ "y" ] ] in
  check_true "2PL beats preclaim somewhere"
    (List.length (Locking.Locked.outputs (Locking.Two_phase.apply s1))
    >= List.length (Locking.Locked.outputs (Locking.Preclaim.apply s1)));
  let s2 = Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "x" ] ] in
  let out_pre = Locking.Locked.outputs (Locking.Preclaim.apply s2) in
  let out_2pl = Locking.Locked.outputs (Locking.Two_phase.apply s2) in
  let early = Schedule.of_interleaving [| 0; 1; 0; 0 |] in
  check_true "preclaim passes the early-release schedule"
    (List.exists (Schedule.equal early) out_pre);
  check_false "2PL does not"
    (List.exists (Schedule.equal early) out_2pl)

let test_preclaim_no_deadlock () =
  (* ordered acquisition: the progress space has no deadlock region for
     opposed access orders that deadlock under 2PL *)
  let s = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  let geo_2pl = Locking.Geometry.analyse (Locking.Two_phase.apply s) in
  let geo_pre = Locking.Geometry.analyse (Locking.Preclaim.apply s) in
  check_true "2PL deadlocks" (Locking.Geometry.has_deadlock geo_2pl);
  check_false "preclaim does not" (Locking.Geometry.has_deadlock geo_pre)

let prop_preclaim_never_deadlocks =
  QCheck.Test.make ~name:"preclaim geometry never has a deadlock region"
    ~count:60
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:4 ~n_vars:3))
    (fun syntax ->
      Syntax.n_transactions syntax <> 2
      ||
      let geo = Locking.Geometry.analyse (Locking.Preclaim.apply syntax) in
      not (Locking.Geometry.has_deadlock geo))

(* --- Optimistic concurrency control --- *)

let occ_system syntax = Sim.Workload.counters syntax

let initial_for syntax =
  State.of_list
    (List.map (fun v -> (v, Expr.Value.Int 0)) (Syntax.vars syntax))

let test_occ_serial_equivalence () =
  (* whatever the arrival order, the committed state equals the serial
     composition in commit order *)
  let syntax = Examples.hot_spot 2 2 in
  let sys = occ_system syntax in
  let initial = initial_for syntax in
  List.iter
    (fun h ->
      let sched, final, order =
        Sched.Optimistic.create ~system:sys ~initial ()
      in
      let stats =
        Sched.Driver.run sched ~fmt:(Syntax.format syntax)
          ~arrivals:(Schedule.to_interleaving h)
      in
      ignore stats;
      let expected = Exec.run_concatenation sys initial (order ()) in
      check_true "committed = serial in commit order"
        (State.equal (final ()) expected))
    (Schedule.all (Syntax.format syntax))

let test_occ_no_conflict_no_restart () =
  let syntax = Examples.indep in
  let sys = occ_system syntax in
  let sched, _, _ =
    Sched.Optimistic.create ~system:sys ~initial:(initial_for syntax) ()
  in
  let st = rng 3 in
  let arrivals = Combin.Interleave.random st (Syntax.format syntax) in
  let stats = Sched.Driver.run sched ~fmt:(Syntax.format syntax) ~arrivals in
  check_int "no restarts on disjoint vars" 0 stats.Sched.Driver.restarts;
  check_true "zero delay" (Sched.Driver.zero_delay stats)

let test_occ_conflict_restarts () =
  (* two interleaved RMW transactions on one variable: the later
     validator must restart *)
  let syntax = Examples.hot_spot 2 2 in
  let sys = occ_system syntax in
  let sched, final, _ =
    Sched.Optimistic.create ~system:sys ~initial:(initial_for syntax) ()
  in
  let stats =
    Sched.Driver.run sched ~fmt:[| 2; 2 |] ~arrivals:[| 0; 1; 0; 1 |]
  in
  check_true "a restart happened" (stats.Sched.Driver.restarts > 0);
  (* both transactions add 2 in total *)
  check_true "final x = 4"
    (Expr.Value.equal (State.get (final ()) "x") (Expr.Value.Int 4))

let prop_occ_always_serial_effect =
  QCheck.Test.make ~name:"OCC committed state is serially reachable"
    ~count:60
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:2 ~n_vars:2)
    (fun (syntax, h) ->
      let sys = occ_system syntax in
      let initial = initial_for syntax in
      let sched, final, order =
        Sched.Optimistic.create ~system:sys ~initial ()
      in
      let _ =
        Sched.Driver.run sched ~fmt:(Syntax.format syntax)
          ~arrivals:(Schedule.to_interleaving h)
      in
      State.equal (final ()) (Exec.run_concatenation sys initial (order ())))

let suite =
  [
    Alcotest.test_case "swappable" `Quick test_swappable;
    Alcotest.test_case "swaps preserve Herbrand" `Quick test_swap_preserves_herbrand;
    Alcotest.test_case "classes partition" `Quick test_classes_partition;
    Alcotest.test_case "serializable classes" `Quick test_serializable_classes;
    Alcotest.test_case "preclaim shape" `Quick test_preclaim_shape;
    Alcotest.test_case "preclaim correct/incomparable" `Quick test_preclaim_correct_and_incomparable;
    Alcotest.test_case "preclaim no deadlock" `Quick test_preclaim_no_deadlock;
    Alcotest.test_case "OCC serial equivalence" `Quick test_occ_serial_equivalence;
    Alcotest.test_case "OCC disjoint no restart" `Quick test_occ_no_conflict_no_restart;
    Alcotest.test_case "OCC conflict restarts" `Quick test_occ_conflict_restarts;
  ]
  @ qsuite
      [
        prop_connectivity_is_sr;
        prop_class_count_herbrand;
        prop_preclaim_never_deadlocks;
        prop_occ_always_serial_effect;
      ]
