(* Tests for the expression substrate. *)

open Util
open Expr

let ev_closed = Ast.eval_closed

let test_arith () =
  check_true "1+2=3" (Value.equal (ev_closed Ast.(Add (int 1, int 2))) (Value.Int 3));
  check_true "5-7=-2" (Value.equal (ev_closed Ast.(Sub (int 5, int 7))) (Value.Int (-2)));
  check_true "3*4=12" (Value.equal (ev_closed Ast.(Mul (int 3, int 4))) (Value.Int 12));
  check_true "7/2=3" (Value.equal (ev_closed Ast.(Div (int 7, int 2))) (Value.Int 3));
  check_true "x/0=0" (Value.equal (ev_closed Ast.(Div (int 7, int 0))) (Value.Int 0));
  check_true "neg" (Value.equal (ev_closed Ast.(Neg (int 5))) (Value.Int (-5)))

let test_bool () =
  check_true "le" (Value.bool (ev_closed Ast.(Le (int 1, int 1))));
  check_false "lt strict" (Value.bool (ev_closed Ast.(Lt (int 1, int 1))));
  check_true "ge" (Value.bool (ev_closed Ast.(ge (int 2) (int 1))));
  check_true "and/or/not"
    (Value.bool
       (ev_closed Ast.(Or (And (bool true, Not (bool true)), bool true))));
  check_true "eq on strings"
    (Value.bool (ev_closed Ast.(Eq (Const (Value.Str "a"), Const (Value.Str "a")))))

let test_if () =
  check_true "then branch"
    (Value.equal (ev_closed Ast.(If (bool true, int 1, int 2))) (Value.Int 1));
  check_true "else branch"
    (Value.equal (ev_closed Ast.(If (bool false, int 1, int 2))) (Value.Int 2))

let test_env () =
  let locals = function 0 -> Value.Int 10 | _ -> Value.Int 0 in
  let globals = function "A" -> Value.Int 7 | _ -> raise Not_found in
  let v = Ast.eval ~locals ~globals Ast.(Add (Local 0, Global "A")) in
  check_true "local+global" (Value.equal v (Value.Int 17))

let test_type_errors () =
  let boom e = try ignore (ev_closed e); false with Ast.Type_error _ -> true in
  check_true "int as bool" (boom Ast.(Not (int 1)));
  check_true "bool as int" (boom Ast.(Add (bool true, int 1)));
  check_true "closed with var" (boom Ast.(Local 0))

let test_vars_analysis () =
  let e = Ast.(If (Lt (Local 2, int 3), Add (Local 0, Global "B"), Local 2)) in
  Alcotest.(check (list int)) "locals" [ 0; 2 ] (Ast.locals_used e);
  Alcotest.(check (list string)) "globals" [ "B" ] (Ast.globals_used e);
  check_int "max local" 2 (Ast.max_local e);
  check_int "max local none" (-1) (Ast.max_local (Ast.int 5))

let test_step_classification () =
  check_true "identity is read" (Ast.is_identity_of 2 (Ast.Local 2));
  check_false "shifted identity" (Ast.is_identity_of 1 (Ast.Local 2));
  check_true "depends" (Ast.depends_on_local 1 Ast.(Add (Local 1, int 1)));
  check_false "blind" (Ast.depends_on_local 1 Ast.(Add (Local 0, int 1)))

let test_domains () =
  check_true "range mem" (Value.mem (Value.Int_range (0, 3)) (Value.Int 2));
  check_false "range out" (Value.mem (Value.Int_range (0, 3)) (Value.Int 9));
  check_true "bool mem" (Value.mem Value.Bools (Value.Bool true));
  check_false "cross type" (Value.mem Value.Ints (Value.Str "s"));
  (match Value.enumerate (Value.Int_range (1, 4)) with
  | Some l -> check_int "range size" 4 (List.length l)
  | None -> Alcotest.fail "expected finite enumeration");
  check_true "ints infinite" (Value.enumerate Value.Ints = None)

(* Random closed integer expressions to exercise the evaluator. *)
let int_expr_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map Ast.int (int_range (-9) 9)
        else
          frequency
            [
              (1, map Ast.int (int_range (-9) 9));
              (2, map2 (fun a b -> Ast.Add (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Ast.Sub (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Ast.Mul (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> Ast.Neg a) (self (n - 1)));
            ]))

let prop_eval_total =
  QCheck.Test.make ~name:"closed int expressions evaluate totally" ~count:300
    (QCheck.make ~print:Ast.to_string int_expr_gen)
    (fun e -> match ev_closed e with Value.Int _ -> true | _ -> false)

let prop_pp_no_exception =
  QCheck.Test.make ~name:"pretty printing is total" ~count:200
    (QCheck.make int_expr_gen)
    (fun e -> String.length (Ast.to_string e) > 0)

let prop_sample_in_domain =
  QCheck.Test.make ~name:"sampled values lie in their domain" ~count:300
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = rng seed in
      List.for_all
        (fun d -> Value.mem d (Value.sample st d))
        [ Value.Ints; Value.Int_range (-3, 3); Value.Bools; Value.Strings ])

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "booleans" `Quick test_bool;
    Alcotest.test_case "conditionals" `Quick test_if;
    Alcotest.test_case "environments" `Quick test_env;
    Alcotest.test_case "type errors" `Quick test_type_errors;
    Alcotest.test_case "variable analysis" `Quick test_vars_analysis;
    Alcotest.test_case "step classification" `Quick test_step_classification;
    Alcotest.test_case "domains" `Quick test_domains;
  ]
  @ qsuite [ prop_eval_total; prop_pp_no_exception; prop_sample_in_domain ]
