(* Tests for locked transaction systems and the locking policies:
   2PL (Figure 2), 2PL' (Figure 5), the mutex strawman and tree locking. *)

open Util
open Core

let fig2_syntax = Syntax.of_lists [ Examples.fig2_transaction ]

let steps_to_strings l =
  Array.to_list
    (Array.map
       (fun s -> Format.asprintf "%a" Locking.Locked.pp_step s)
       l.Locking.Locked.txs.(0))

let test_figure2 () =
  (* the exact locked transaction of Figure 2(b) *)
  let l = Locking.Two_phase.apply fig2_syntax in
  Alcotest.(check (list string))
    "figure 2(b)"
    [ "lock x"; "T11"; "lock y"; "T12"; "T13"; "lock z"; "unlock x";
      "unlock y"; "T14"; "unlock z" ]
    (steps_to_strings l)

let test_figure5 () =
  (* the exact locked transaction of Figure 5(b), distinguished var x *)
  let l = Locking.Two_phase_prime.apply ~distinguished:"x" fig2_syntax in
  Alcotest.(check (list string))
    "figure 5(b)"
    [ "lock x"; "T11"; "lock x'"; "unlock x'"; "lock y"; "T12"; "T13";
      "lock x'"; "unlock x"; "lock z"; "unlock y"; "unlock x'"; "T14";
      "unlock z" ]
    (steps_to_strings l)

let test_2pl_properties () =
  let l = Locking.Two_phase.apply fig2_syntax in
  check_true "two-phase" (Locking.Locked.is_two_phase l);
  check_true "well-formed" (Locking.Locked.is_well_formed l);
  Alcotest.(check (list string)) "lock vars" [ "x"; "y"; "z" ]
    (Locking.Locked.lock_vars l)

let test_2pl_prime_properties () =
  let l = Locking.Two_phase_prime.apply ~distinguished:"x" fig2_syntax in
  check_false "2PL' is not two-phase" (Locking.Locked.is_two_phase l);
  check_true "but well-formed" (Locking.Locked.is_well_formed l);
  Alcotest.(check (list string)) "lock vars include x'"
    [ "x"; "x'"; "y"; "z" ]
    (Locking.Locked.lock_vars l)

let test_2pl_prime_no_x () =
  (* transactions that do not touch x are locked exactly as 2PL *)
  let s = Syntax.of_lists [ [ "y"; "z" ] ] in
  let a = Locking.Two_phase.apply s in
  let b = Locking.Two_phase_prime.apply ~distinguished:"x" s in
  check_true "identical" (a.Locking.Locked.txs = b.Locking.Locked.txs)

let two_tx = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ]

let test_legality () =
  let l = Locking.Two_phase.apply two_tx in
  (* running T1 fully then T2 is always legal *)
  let len1 = Array.length l.Locking.Locked.txs.(0) in
  let len2 = Array.length l.Locking.Locked.txs.(1) in
  let serial = Array.append (Array.make len1 0) (Array.make len2 1) in
  check_true "serial locked legal" (Locking.Locked.legal l serial);
  (* interleaving the two lock phases deadlock-style is illegal *)
  let clash = Array.append [| 0; 1 |] (Array.make (len1 + len2 - 2) 0) in
  check_false "lock clash illegal" (Locking.Locked.legal l clash)

let test_projection () =
  let l = Locking.Two_phase.apply two_tx in
  let len1 = Array.length l.Locking.Locked.txs.(0) in
  let len2 = Array.length l.Locking.Locked.txs.(1) in
  let serial = Array.append (Array.make len1 0) (Array.make len2 1) in
  let h = Locking.Locked.project l serial in
  check_true "projection is the serial base schedule"
    (Schedule.equal h (Schedule.serial [| 2; 2 |] [| 0; 1 |]))

let test_outputs_serializable () =
  (* 2PL correctness: every output is conflict-serializable *)
  check_true "2PL correct on two_tx"
    (Locking.Policy.correct_exhaustive Locking.Two_phase.policy two_tx);
  check_true "2PL correct on fig3 pair"
    (Locking.Policy.correct_exhaustive Locking.Two_phase.policy
       Examples.fig3_pair)

let test_2pl_prime_correct () =
  List.iter
    (fun s ->
      check_true "2PL' correct"
        (Locking.Policy.correct_exhaustive
           (Locking.Two_phase_prime.policy ~distinguished:"x")
           s))
    [ two_tx; Examples.fig3_pair;
      Syntax.of_lists [ [ "x"; "y"; "x" ]; [ "x"; "y" ] ] ]

let test_mutex_outputs_serial () =
  let l = Locking.Mutex_policy.apply two_tx in
  let outs = Locking.Locked.outputs l in
  let serial = Schedule.all_serial [| 2; 2 |] in
  check_int "exactly the serial schedules" (List.length serial)
    (List.length outs);
  List.iter
    (fun h -> check_true "serial" (Schedule.is_serial h))
    outs

let test_2pl_prime_strictly_better () =
  (* §5.4: 2PL' is strictly better than 2PL in performance. Witness
     system: T1 = (x, y, z) holds x until after its whole lock phase
     under 2PL, whereas 2PL' releases x right after T11 — so
     (T11, T21, T12, T13) is output by 2PL' only. *)
  let s = Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "x" ] ] in
  let p' = Locking.Two_phase_prime.policy ~distinguished:"x" in
  let p = Locking.Two_phase.policy in
  check_true "2PL' dominates" (Locking.Policy.dominates p' p s);
  check_true "strictly" (Locking.Policy.strictly_better p' p s)

let test_passes_implies_can_output () =
  let l = Locking.Two_phase.apply two_tx in
  List.iter
    (fun h ->
      if Locking.Locked.passes l h then
        check_true "passes => can_output" (Locking.Locked.can_output l h))
    (Schedule.all [| 2; 2 |])

let test_can_output_matches_outputs () =
  List.iter
    (fun policy ->
      let l = policy.Locking.Policy.apply two_tx in
      let outs = Locking.Locked.outputs l in
      List.iter
        (fun h ->
          check_true "can_output = member of outputs"
            (Locking.Locked.can_output l h
            = List.exists (Schedule.equal h) outs))
        (Schedule.all [| 2; 2 |]))
    [ Locking.Two_phase.policy; Locking.Mutex_policy.policy;
      Locking.Two_phase_prime.policy ~distinguished:"x" ]

let test_tree_lock () =
  let h = [ ("a", "r"); ("b", "r"); ("c", "a") ] in
  Alcotest.(check (list string)) "path" [ "c"; "a"; "r" ]
    (Locking.Tree_lock.path_to_root h "c");
  Alcotest.(check (list string)) "span" [ "a"; "c" ]
    (Locking.Tree_lock.spanning_subtree h [ "c"; "a" ]);
  Alcotest.(check (list string)) "span across siblings" [ "r"; "a"; "b"; "c" ]
    (Locking.Tree_lock.spanning_subtree h [ "c"; "b" ]);
  let s = Syntax.of_lists [ [ "a"; "c" ]; [ "c"; "a" ] ] in
  check_true "tree policy correct"
    (Locking.Policy.correct_exhaustive (Locking.Tree_lock.policy h) s);
  (* sibling subtrees accessed in sequence: c then b requires unlocking
     the a-subtree before locking b — not two-phase *)
  let sib = Syntax.of_lists [ [ "c"; "b" ]; [ "b"; "c" ] ] in
  let l = Locking.Tree_lock.apply h sib in
  check_false "tree locking not two-phase in general"
    (Locking.Locked.is_two_phase l);
  check_true "yet correct"
    (Locking.Policy.correct_exhaustive (Locking.Tree_lock.policy h) sib)

let test_tree_lock_cycle () =
  let h = [ ("a", "b"); ("b", "a") ] in
  check_true "cyclic hierarchy rejected"
    (try
       ignore (Locking.Tree_lock.path_to_root h "a");
       false
     with Invalid_argument _ -> true)

let test_make_validation () =
  let s = Syntax.of_lists [ [ "x" ] ] in
  let bad1 = [ [ Locking.Locked.Action (Names.step 0 0); Locking.Locked.Unlock "x" ] ] in
  check_true "unmatched unlock rejected"
    (try ignore (Locking.Locked.make s bad1); false
     with Invalid_argument _ -> true);
  let bad2 = [ [ Locking.Locked.Lock "x"; Locking.Locked.Action (Names.step 0 0) ] ] in
  check_true "dangling lock rejected"
    (try ignore (Locking.Locked.make s bad2); false
     with Invalid_argument _ -> true);
  let bad3 = [ [] ] in
  check_true "missing action rejected"
    (try ignore (Locking.Locked.make s bad3); false
     with Invalid_argument _ -> true)

(* Property: 2PL outputs are serializable on random 2-3 transaction
   syntaxes. *)
let prop_2pl_correct_random =
  QCheck.Test.make ~name:"2PL outputs serializable (random syntaxes)"
    ~count:40
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:3 ~n_vars:2))
    (fun syntax ->
      Locking.Policy.correct_exhaustive Locking.Two_phase.policy syntax)

let prop_2pl_prime_correct_random =
  QCheck.Test.make ~name:"2PL' outputs serializable (random syntaxes)"
    ~count:30
    (QCheck.make (syntax_gen ~max_n:2 ~max_m:3 ~n_vars:2))
    (fun syntax ->
      Locking.Policy.correct_exhaustive
        (Locking.Two_phase_prime.policy ~distinguished:"x")
        syntax)

(* Property: serial base schedules can always be output by 2PL. *)
let prop_2pl_outputs_serial =
  QCheck.Test.make ~name:"2PL can output every serial schedule" ~count:40
    (QCheck.make (syntax_gen ~max_n:3 ~max_m:2 ~n_vars:2))
    (fun syntax ->
      let fmt = Syntax.format syntax in
      let l = Locking.Two_phase.apply syntax in
      let st = rng (Syntax.n_steps syntax) in
      let order = Combin.Perm.random st (Array.length fmt) in
      Locking.Locked.can_output l (Schedule.serial fmt order))

(* Property: greedy passability implies reachability for 2PL. *)
let prop_passes_implies_can_output_random =
  QCheck.Test.make ~name:"passes implies can_output (random)" ~count:60
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:2 ~n_vars:2)
    (fun (syntax, h) ->
      let l = Locking.Two_phase.apply syntax in
      (not (Locking.Locked.passes l h)) || Locking.Locked.can_output l h)

let suite =
  [
    Alcotest.test_case "figure 2 exact" `Quick test_figure2;
    Alcotest.test_case "figure 5 exact" `Quick test_figure5;
    Alcotest.test_case "2PL properties" `Quick test_2pl_properties;
    Alcotest.test_case "2PL' properties" `Quick test_2pl_prime_properties;
    Alcotest.test_case "2PL' without x" `Quick test_2pl_prime_no_x;
    Alcotest.test_case "locked legality" `Quick test_legality;
    Alcotest.test_case "projection" `Quick test_projection;
    Alcotest.test_case "2PL outputs serializable" `Quick test_outputs_serializable;
    Alcotest.test_case "2PL' correct" `Quick test_2pl_prime_correct;
    Alcotest.test_case "mutex outputs = serial" `Quick test_mutex_outputs_serial;
    Alcotest.test_case "2PL' strictly better" `Quick test_2pl_prime_strictly_better;
    Alcotest.test_case "passes => can_output" `Quick test_passes_implies_can_output;
    Alcotest.test_case "can_output = outputs" `Quick test_can_output_matches_outputs;
    Alcotest.test_case "tree locking" `Quick test_tree_lock;
    Alcotest.test_case "tree cycle rejected" `Quick test_tree_lock_cycle;
    Alcotest.test_case "locked validation" `Quick test_make_validation;
  ]
  @ qsuite
      [
        prop_2pl_correct_random;
        prop_2pl_prime_correct_random;
        prop_2pl_outputs_serial;
        prop_passes_implies_can_output_random;
      ]
