(* Tests for the Herbrand semantics and the serializability tests
   (Sections 4.2 and 4.3): the brute-force Herbrand test, the polynomial
   conflict-graph test, and their provable coincidence in the paper's
   read-modify-write step model. *)

open Util
open Core

let fig1 = Examples.fig1
let fig1_syntax = fig1.System.syntax

let test_fig1_not_serializable () =
  (* The paper computes: serial Herbrand values are f12(f11(x0)) vs
     f21(f12(f11(x0)))-style nestings, while h gives f12(f21(f11(x0))). *)
  check_false "h not in SR" (Herbrand.serializable fig1_syntax Examples.fig1_history);
  check_false "conflict test agrees"
    (Conflict.serializable fig1_syntax Examples.fig1_history)

let test_fig1_serial_equivalent_state () =
  (* Under the given interpretations h produces the same state as the
     serial history (T21, T11, T12): 2(x+2) from any x. *)
  let serial = Schedule.serial (System.format fig1) [| 1; 0 |] in
  List.iter
    (fun x ->
      let g = State.of_ints [ ("x", x) ] in
      check_true "same concrete state"
        (State.equal (Exec.run fig1 g Examples.fig1_history) (Exec.run fig1 g serial)))
    [ -3; 0; 1; 7 ]

let test_herbrand_terms_capture_history () =
  let g = Herbrand.run fig1_syntax Examples.fig1_history in
  let t = Names.Vmap.find "x" g in
  (* h = (T11, T21, T12): T12's arguments are t11 = x0 (what T11 read)
     and t12 = f21(f11(x0)) (what T12 itself read). *)
  Alcotest.(check string) "term structure"
    "f12(x0,f21(f11(x0)))"
    (Herbrand.term_to_string t)

let test_serial_schedules_serializable () =
  List.iter
    (fun h -> check_true "serial in SR" (Herbrand.serializable fig1_syntax h))
    (Schedule.all_serial (System.format fig1))

let test_witness_matches () =
  (* (T21, T11, T12) as a schedule of fig1: tx1 first then tx0 *)
  let h = Schedule.of_interleaving [| 1; 0; 0 |] in
  match Herbrand.serialization_witness fig1_syntax h with
  | Some order -> Alcotest.(check (array int)) "witness order" [| 1; 0 |] order
  | None -> Alcotest.fail "serial schedule must have a witness"

let test_disjoint_always_serializable () =
  let s = Examples.indep in
  List.iter
    (fun h ->
      check_true "disjoint vars serializable" (Conflict.serializable s h);
      check_true "herbrand agrees" (Herbrand.serializable s h))
    (Schedule.all (Syntax.format s))

let test_hot_spot_only_serial () =
  (* all steps on one variable: a schedule is serializable iff serial *)
  let s = Examples.hot_spot 2 2 in
  List.iter
    (fun h ->
      check_true "hot spot: SR = serial"
        (Conflict.serializable s h = Schedule.is_serial h))
    (Schedule.all (Syntax.format s))

let test_conflict_graph_edges () =
  let h = Schedule.of_interleaving [| 0; 1; 0 |] in
  let g = Conflict.graph fig1_syntax h in
  check_true "T1 -> T2" (Digraph.has_edge g 0 1);
  check_true "T2 -> T1" (Digraph.has_edge g 1 0);
  check_true "cycle" (Digraph.has_cycle g)

let test_prefix_serializable () =
  let h = Examples.fig1_history in
  check_true "prefix 2 fine" (Conflict.prefix_serializable fig1_syntax h 2);
  check_false "prefix 3 cyclic" (Conflict.prefix_serializable fig1_syntax h 3)

let test_first_cycle () =
  match Conflict.first_cycle fig1_syntax Examples.fig1_history with
  | Some cyc ->
    check_int "2-cycle" 2 (List.length cyc)
  | None -> Alcotest.fail "expected a cycle"

(* The central cross-validation: in the RMW step model, the polynomial
   conflict test decides exactly the Herbrand brute-force SR relation. *)
let prop_conflict_equals_herbrand =
  QCheck.Test.make ~name:"conflict test = Herbrand brute force (RMW model)"
    ~count:300
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      Conflict.serializable syntax h = Herbrand.serializable syntax h)

let prop_conflict_equals_herbrand_wide =
  QCheck.Test.make
    ~name:"conflict test = Herbrand brute force (more vars)" ~count:150
    (arbitrary_syntax_and_schedule ~max_n:4 ~max_m:2 ~n_vars:4)
    (fun (syntax, h) ->
      Conflict.serializable syntax h = Herbrand.serializable syntax h)

let prop_serial_always_sr =
  QCheck.Test.make ~name:"serial schedules are serializable" ~count:200
    (arbitrary_syntax_and_schedule ~max_n:4 ~max_m:3 ~n_vars:3)
    (fun (syntax, _) ->
      let fmt = Syntax.format syntax in
      let st = rng (Syntax.n_steps syntax) in
      let order = Combin.Perm.random st (Array.length fmt) in
      Conflict.serializable syntax (Schedule.serial fmt order))

let prop_witness_is_equivalent =
  QCheck.Test.make ~name:"serialization witness reproduces the state"
    ~count:150
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      match Herbrand.serialization_witness syntax h with
      | None -> not (Conflict.serializable syntax h)
      | Some order ->
        let serial = Schedule.serial (Syntax.format syntax) order in
        Herbrand.equivalent syntax h serial)

let prop_topo_order_is_witness =
  QCheck.Test.make
    ~name:"topological order of conflict graph is a Herbrand witness"
    ~count:200
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:3)
    (fun (syntax, h) ->
      match Conflict.serialization_orders syntax h with
      | None -> true
      | Some order ->
        let serial = Schedule.serial (Syntax.format syntax) order in
        Herbrand.equivalent syntax h serial)

let prop_term_size_positive =
  QCheck.Test.make ~name:"herbrand terms grow with history" ~count:100
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      let g = Herbrand.run syntax h in
      Names.Vmap.for_all (fun _ t -> Herbrand.term_size t >= 1) g)

let suite =
  [
    Alcotest.test_case "fig1 not serializable" `Quick test_fig1_not_serializable;
    Alcotest.test_case "fig1 weakly equivalent" `Quick test_fig1_serial_equivalent_state;
    Alcotest.test_case "terms capture history" `Quick test_herbrand_terms_capture_history;
    Alcotest.test_case "serial in SR" `Quick test_serial_schedules_serializable;
    Alcotest.test_case "witness order" `Quick test_witness_matches;
    Alcotest.test_case "disjoint serializable" `Quick test_disjoint_always_serializable;
    Alcotest.test_case "hot spot SR = serial" `Quick test_hot_spot_only_serial;
    Alcotest.test_case "conflict graph edges" `Quick test_conflict_graph_edges;
    Alcotest.test_case "prefix serializability" `Quick test_prefix_serializable;
    Alcotest.test_case "first cycle" `Quick test_first_cycle;
  ]
  @ qsuite
      [
        prop_conflict_equals_herbrand;
        prop_conflict_equals_herbrand_wide;
        prop_serial_always_sr;
        prop_witness_is_equivalent;
        prop_topo_order_is_witness;
        prop_term_size_positive;
      ]
