test/test_model.ml: Alcotest Array Combin Core Examples Exec Expr List Names QCheck Schedule State Syntax System Util Weak_sr
