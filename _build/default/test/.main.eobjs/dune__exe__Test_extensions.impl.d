test/test_extensions.ml: Alcotest Array Combin Conflict Core Equivalence Examples Exec Expr Format Herbrand List Locking QCheck Sched Schedule Sim State Syntax System Util
