test/test_combin.ml: Alcotest Array Combin List QCheck Util
