test/test_rw.ml: Alcotest Array Combin Core Format List Names QCheck Random Rw_model Util
