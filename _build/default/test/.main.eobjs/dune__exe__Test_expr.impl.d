test/test_expr.ml: Alcotest Ast Expr List QCheck String Util Value
