test/test_sim.ml: Alcotest Conflict Core Examples Exec Expr Format List Locking QCheck Sched Schedule Sim State String Syntax Util
