test/test_herbrand.ml: Alcotest Array Combin Conflict Core Digraph Examples Exec Herbrand List Names QCheck Schedule State Syntax System Util
