test/main.mli:
