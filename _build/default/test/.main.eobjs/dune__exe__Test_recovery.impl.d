test/test_recovery.ml: Alcotest Array Combin Core Examples Format List Locking Names QCheck Recovery Rw_model Syntax Util
