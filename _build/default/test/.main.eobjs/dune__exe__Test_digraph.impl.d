test/test_digraph.ml: Alcotest Array Digraph List Printf QCheck String Util
