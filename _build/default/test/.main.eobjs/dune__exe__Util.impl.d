test/util.ml: Alcotest Array Core Format List QCheck QCheck_alcotest Random
