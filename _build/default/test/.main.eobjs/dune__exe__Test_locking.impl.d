test/test_locking.ml: Alcotest Array Combin Core Examples Format List Locking Names QCheck Schedule Syntax Util
