test/test_rw_lock.ml: Alcotest Array Combin Core Format List Locking QCheck Rw_model Util
