test/test_sched.ml: Alcotest Array Combin Conflict Core Examples Exec Expr Fixpoint Format List Locking Names QCheck Random Sched Schedule State String Syntax System Util
