test/test_weak_sr.ml: Alcotest Array Combin Conflict Core Examples Exec Expr Int List QCheck Schedule State Syntax System Util Weak_sr
