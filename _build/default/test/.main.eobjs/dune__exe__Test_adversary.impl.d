test/test_adversary.ml: Adversary Alcotest Conflict Core Examples Exec Expr Herbrand List Names QCheck Schedule State Syntax System Util
