test/test_geometry.ml: Alcotest Array Combin Conflict Core Examples List Locking Names QCheck Syntax Util
