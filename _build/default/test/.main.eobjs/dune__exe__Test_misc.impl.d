test/test_misc.ml: Alcotest Array Combin Conflict Core Digraph Examples Exec Expr Format Herbrand Info List Locking Names QCheck Random Sched Schedule State String Syntax System Util Weak_sr
