test/test_optimality.ml: Alcotest Core Exec Expr Fixpoint Format List Optimality QCheck Seq String Syntax Util
