test/test_fixpoint.ml: Alcotest Array Core Examples Expr Fixpoint Info Lazy List QCheck State Syntax System Util
