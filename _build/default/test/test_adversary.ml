(* Tests for the executable adversary constructions of Theorems 1-3. *)

open Util
open Core

let test_interruption_serial () =
  let h = Schedule.serial [| 2; 2 |] [| 0; 1 |] in
  check_true "serial has no interruption" (Adversary.interruption h = None)

let test_interruption_found () =
  let h = Schedule.of_interleaving [| 0; 1; 0 |] in
  match Adversary.interruption h with
  | Some (si, sk, si') ->
    check_true "T11 first" (Names.equal_step si (Names.step 0 0));
    check_true "T21 between" (Names.equal_step sk (Names.step 1 0));
    check_true "T12 after" (Names.equal_step si' (Names.step 0 1))
  | None -> Alcotest.fail "expected an interruption"

let test_theorem2_example () =
  (* the exact construction from the proof: T_i = (x+1, x-1), T_k = (2x) *)
  let h = Schedule.of_interleaving [| 0; 1; 0 |] in
  match Adversary.theorem2_adversary [| 2; 1 |] h with
  | None -> Alcotest.fail "non-serial schedule must have an adversary"
  | Some sys ->
    let zero = State.of_ints [ ("x", 0) ] in
    let final = Exec.run sys zero h in
    check_true "x = 1 after h"
      (Expr.Value.equal (State.get final "x") (Expr.Value.Int 1));
    check_false "inconsistent" (System.consistent sys final);
    check_true "transactions individually correct"
      (Exec.basic_assumption sys ~probes:[ zero ])

let test_theorem2_none_for_serial () =
  let h = Schedule.serial [| 2; 1 |] [| 1; 0 |] in
  check_true "no adversary for serial"
    (Adversary.theorem2_adversary [| 2; 1 |] h = None);
  check_false "refutes is false" (Adversary.theorem2_refutes [| 2; 1 |] h)

(* Theorem 2, executable: EVERY non-serial schedule is refuted by the
   constructed minimum-information adversary. Exhaustive on small
   formats. *)
let test_theorem2_exhaustive () =
  List.iter
    (fun fmt ->
      List.iter
        (fun h ->
          if not (Schedule.is_serial h) then
            check_true "adversary refutes" (Adversary.theorem2_refutes fmt h))
        (Schedule.all fmt))
    [ [| 2; 2 |]; [| 3; 2 |]; [| 2; 2; 2 |]; [| 1; 3 |] ]

let prop_theorem2_random =
  QCheck.Test.make ~name:"theorem 2 adversary refutes random non-serial"
    ~count:300
    (arbitrary_syntax_and_schedule ~max_n:4 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      let fmt = Syntax.format syntax in
      Schedule.is_serial h || Adversary.theorem2_refutes fmt h)

let test_herbrand_reachable_serial () =
  let syntax = Examples.fig1.System.syntax in
  let serial = Schedule.serial (Syntax.format syntax) [| 1; 0 |] in
  check_true "serial state reachable"
    (Adversary.herbrand_reachable syntax (Herbrand.run syntax serial))

let test_herbrand_unreachable () =
  let syntax = Examples.fig1.System.syntax in
  check_true "fig1 history refuted"
    (Adversary.theorem3_refutes syntax Examples.fig1_history)

(* Theorem 3, executable: the Herbrand adversary's integrity constraint
   (reachability by serial concatenations) rejects exactly the
   non-serializable schedules. *)
let prop_theorem3_exact =
  QCheck.Test.make
    ~name:"theorem 3: herbrand IC rejects exactly non-SR schedules"
    ~count:200
    (arbitrary_syntax_and_schedule ~max_n:3 ~max_m:3 ~n_vars:2)
    (fun (syntax, h) ->
      Adversary.theorem3_refutes syntax h
      = not (Conflict.serializable syntax h))

let test_theorem3_exhaustive () =
  let syntax = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ] in
  List.iter
    (fun h ->
      check_true "refutes iff non-SR"
        (Adversary.theorem3_refutes syntax h
        = not (Conflict.serializable syntax h)))
    (Schedule.all (Syntax.format syntax))

let test_theorem1_bound () =
  (* universe = { fig1 with two different ICs }; claimed fixpoint =
     serial schedules; the bound must hold since serial schedules are
     correct for any member (basic assumption). *)
  let mk ic =
    System.make ~ic Examples.fig1.System.syntax Examples.fig1.System.interp
  in
  let universe =
    [
      mk System.Trivial;
      mk (System.Pred Expr.Ast.(ge (Global "x") (int (-1000))));
    ]
  in
  let probes = List.map (fun x -> State.of_ints [ ("x", x) ]) [ 0; 1; 5 ] in
  let serial = Schedule.all_serial [| 2; 1 |] in
  check_true "serial passes over the whole universe"
    (Adversary.theorem1_bound_holds ~universe ~probes serial)

let test_theorem1_violation_detected () =
  (* claiming the non-serializable fig1 history as a fixpoint must break
     the bound for a universe containing the theorem-2 adversary *)
  let h = Examples.fig1_history in
  match Adversary.theorem2_adversary [| 2; 1 |] h with
  | None -> Alcotest.fail "adversary expected"
  | Some bad ->
    let probes = [ State.of_ints [ ("x", 0) ] ] in
    check_false "bound violated"
      (Adversary.theorem1_bound_holds ~universe:[ bad ] ~probes [ h ])

let suite =
  [
    Alcotest.test_case "interruption: serial" `Quick test_interruption_serial;
    Alcotest.test_case "interruption: found" `Quick test_interruption_found;
    Alcotest.test_case "theorem2 example" `Quick test_theorem2_example;
    Alcotest.test_case "theorem2 serial none" `Quick test_theorem2_none_for_serial;
    Alcotest.test_case "theorem2 exhaustive" `Quick test_theorem2_exhaustive;
    Alcotest.test_case "theorem3 serial reachable" `Quick test_herbrand_reachable_serial;
    Alcotest.test_case "theorem3 fig1 refuted" `Quick test_herbrand_unreachable;
    Alcotest.test_case "theorem3 exhaustive" `Quick test_theorem3_exhaustive;
    Alcotest.test_case "theorem1 bound holds" `Quick test_theorem1_bound;
    Alcotest.test_case "theorem1 violation" `Quick test_theorem1_violation_detected;
  ]
  @ qsuite [ prop_theorem2_random; prop_theorem3_exact ]
