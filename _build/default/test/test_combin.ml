(* Tests for the combinatorics substrate. *)

open Util

let test_factorial () =
  check_int "0!" 1 (Combin.Perm.factorial 0);
  check_int "1!" 1 (Combin.Perm.factorial 1);
  check_int "5!" 120 (Combin.Perm.factorial 5);
  check_int "10!" 3628800 (Combin.Perm.factorial 10);
  Alcotest.check_raises "negative" (Invalid_argument "Perm.factorial: negative")
    (fun () -> ignore (Combin.Perm.factorial (-1)))

let test_perm_all () =
  check_int "0 perms" 1 (List.length (Combin.Perm.all 0));
  check_int "3 perms" 6 (List.length (Combin.Perm.all 3));
  check_int "5 perms" 120 (List.length (Combin.Perm.all 5));
  (* lexicographic order *)
  let p3 = Combin.Perm.all 3 in
  Alcotest.(check (list (array int)))
    "lex order"
    [ [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |];
      [| 2; 0; 1 |]; [| 2; 1; 0 |] ]
    p3

let test_perm_all_distinct () =
  let ps = Combin.Perm.all 4 in
  let sorted = List.sort_uniq compare ps in
  check_int "all distinct" 24 (List.length sorted);
  List.iter (fun p -> check_true "is perm" (Combin.Perm.is_permutation p)) ps

let test_perm_exists () =
  check_true "exists identity" (Combin.Perm.exists 3 (fun p -> p = [| 0; 1; 2 |]));
  check_false "none absurd" (Combin.Perm.exists 3 (fun p -> Array.length p = 4))

let prop_rank_unrank =
  QCheck.Test.make ~name:"perm rank/unrank roundtrip" ~count:200
    QCheck.(pair (int_range 1 7) (int_range 0 5039))
    (fun (n, r) ->
      let r = r mod Combin.Perm.factorial n in
      let p = Combin.Perm.unrank n r in
      Combin.Perm.rank p = r && Combin.Perm.is_permutation p)

let prop_inverse =
  QCheck.Test.make ~name:"perm inverse composes to identity" ~count:200
    QCheck.(int_range 1 8)
    (fun n ->
      let st = rng n in
      let p = Combin.Perm.random st n in
      let q = Combin.Perm.inverse p in
      Array.init n (fun i -> q.(p.(i))) = Array.init n (fun i -> i))

let test_interleave_count () =
  check_int "(1) -> 1" 1 (Combin.Interleave.count [| 1 |]);
  check_int "(2,2) -> 6" 6 (Combin.Interleave.count [| 2; 2 |]);
  check_int "(3,2) -> 10" 10 (Combin.Interleave.count [| 3; 2 |]);
  check_int "(2,2,2) -> 90" 90 (Combin.Interleave.count [| 2; 2; 2 |]);
  check_int "(3,3) -> 20" 20 (Combin.Interleave.count [| 3; 3 |]);
  check_int "(0,2) -> 1" 1 (Combin.Interleave.count [| 0; 2 |])

let test_interleave_all () =
  let fmt = [| 2; 2 |] in
  let ils = Combin.Interleave.all fmt in
  check_int "enumerated count" (Combin.Interleave.count fmt) (List.length ils);
  check_int "distinct" (List.length ils)
    (List.length (List.sort_uniq compare ils));
  List.iter
    (fun il -> check_true "valid" (Combin.Interleave.is_valid fmt il))
    ils

let prop_interleave_count_matches_enum =
  QCheck.Test.make ~name:"interleave count = enumeration length" ~count:60
    (QCheck.make (format_gen ~max_n:3 ~max_m:3))
    (fun fmt ->
      Combin.Interleave.count fmt = List.length (Combin.Interleave.all fmt))

let prop_interleave_rank_unrank =
  QCheck.Test.make ~name:"interleave rank/unrank roundtrip" ~count:100
    (QCheck.make
       QCheck.Gen.(
         format_gen ~max_n:3 ~max_m:3 >>= fun fmt ->
         int_range 0 (Combin.Interleave.count fmt - 1) >>= fun r ->
         return (fmt, r)))
    (fun (fmt, r) ->
      let il = Combin.Interleave.unrank fmt r in
      Combin.Interleave.is_valid fmt il && Combin.Interleave.rank fmt il = r)

let prop_interleave_random_valid =
  QCheck.Test.make ~name:"random interleavings are valid" ~count:200
    (QCheck.make (format_gen ~max_n:4 ~max_m:4))
    (fun fmt ->
      let st = rng (Array.fold_left ( + ) 0 fmt) in
      Combin.Interleave.is_valid fmt (Combin.Interleave.random st fmt))

let test_interleave_serial () =
  let fmt = [| 2; 3 |] in
  let il = Combin.Interleave.serial fmt [| 1; 0 |] in
  Alcotest.(check (array int)) "serial order" [| 1; 1; 1; 0; 0 |] il;
  check_true "is serial" (Combin.Interleave.is_serial fmt il);
  check_false "mixed not serial"
    (Combin.Interleave.is_serial fmt [| 0; 1; 0; 1; 1 |])

let test_serial_count () =
  (* exactly n! serial interleavings among all *)
  let fmt = [| 2; 2; 2 |] in
  let serial =
    List.filter (Combin.Interleave.is_serial fmt) (Combin.Interleave.all fmt)
  in
  check_int "3! serial" 6 (List.length serial)

let suite =
  [
    Alcotest.test_case "factorial" `Quick test_factorial;
    Alcotest.test_case "perm all" `Quick test_perm_all;
    Alcotest.test_case "perm distinct" `Quick test_perm_all_distinct;
    Alcotest.test_case "perm exists" `Quick test_perm_exists;
    Alcotest.test_case "interleave count" `Quick test_interleave_count;
    Alcotest.test_case "interleave all" `Quick test_interleave_all;
    Alcotest.test_case "interleave serial" `Quick test_interleave_serial;
    Alcotest.test_case "serial count" `Quick test_serial_count;
  ]
  @ qsuite
      [
        prop_rank_unrank;
        prop_inverse;
        prop_interleave_count_matches_enum;
        prop_interleave_rank_unrank;
        prop_interleave_random_valid;
      ]
