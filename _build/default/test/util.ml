(* Shared helpers for the test suite. *)

let qsuite cases = List.map QCheck_alcotest.to_alcotest cases

let check_true name b = Alcotest.(check bool) name true b
let check_false name b = Alcotest.(check bool) name false b
let check_int name expected actual = Alcotest.(check int) name expected actual

(* A deterministic RNG per test to keep failures reproducible. *)
let rng seed = Random.State.make [| 0xC0FFEE; seed |]

(* Generator for a format (m_1..m_n) with n in [1..max_n], m in [1..max_m]. *)
let format_gen ~max_n ~max_m =
  QCheck.Gen.(
    int_range 1 max_n >>= fun n ->
    array_size (return n) (int_range 1 max_m))

(* Generator for a syntax over [n_vars] variables. *)
let var_names = [| "x"; "y"; "z"; "u"; "v"; "w" |]

let syntax_gen ~max_n ~max_m ~n_vars =
  QCheck.Gen.(
    format_gen ~max_n ~max_m >>= fun fmt ->
    let tx m = array_size (return m) (map (fun i -> var_names.(i)) (int_range 0 (n_vars - 1))) in
    let rec build i acc =
      if i < 0 then return (Core.Syntax.make (Array.of_list acc))
      else tx fmt.(i) >>= fun t -> build (i - 1) (t :: acc)
    in
    build (Array.length fmt - 1) [])

(* Generator for a schedule of a given format, as an interleaving drawn
   uniformly. *)
let schedule_of_format_gen fmt =
  QCheck.Gen.(
    map
      (fun seed ->
        let st = Random.State.make [| seed |] in
        Core.Schedule.random st fmt)
      int)

(* A syntax together with one of its schedules. *)
let syntax_and_schedule_gen ~max_n ~max_m ~n_vars =
  QCheck.Gen.(
    syntax_gen ~max_n ~max_m ~n_vars >>= fun syntax ->
    schedule_of_format_gen (Core.Syntax.format syntax) >>= fun h ->
    return (syntax, h))

let arbitrary_syntax_and_schedule ~max_n ~max_m ~n_vars =
  QCheck.make
    ~print:(fun (s, h) ->
      Format.asprintf "%a / %a" Core.Syntax.pp s Core.Schedule.pp h)
    (syntax_and_schedule_gen ~max_n ~max_m ~n_vars)
