(* Tests for the progress-space geometry of Section 5.3 (Figures 3/4). *)

open Util
open Core

(* Two transactions both locking x then y under 2PL, as in Figure 3. *)
let fig3_locked = Locking.Two_phase.apply Examples.fig3_pair
let geo = Locking.Geometry.analyse fig3_locked

let test_extent () =
  (* each locked transaction: lock x, T1, lock y, unlock x, T2, unlock y *)
  let l1, l2 = Locking.Geometry.extent geo in
  check_int "L1" 6 l1;
  check_int "L2" 6 l2

let test_blocks () =
  let blocks = Locking.Geometry.blocks geo in
  check_int "two blocks (x and y)" 2 (List.length blocks);
  List.iter
    (fun r ->
      check_true "hold intervals sane"
        (r.Locking.Geometry.x_lo <= r.Locking.Geometry.x_hi
        && r.Locking.Geometry.y_lo <= r.Locking.Geometry.y_hi))
    blocks

let test_forbidden_matches_legality () =
  (* geometric legality of a path = lock-machine legality of the
     interleaving, over the full interleaving space *)
  List.iter
    (fun il ->
      let path = Locking.Geometry.path_of_interleaving il in
      check_true "legal <-> path avoids blocks"
        (Locking.Locked.legal fig3_locked il
        = Locking.Geometry.path_legal geo path))
    (Combin.Interleave.all (Locking.Locked.format fig3_locked))

let test_deadlock_region () =
  (* Both transactions lock x then y in the same order: under 2PL with
     identical lock orders there is no deadlock. *)
  check_false "same lock order: no deadlock" (Locking.Geometry.has_deadlock geo)

let opposed_locked =
  (* T1 locks x then y, T2 locks y then x: the classical deadlock. *)
  Locking.Two_phase.apply (Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ])

let opposed_geo = Locking.Geometry.analyse opposed_locked

let test_deadlock_exists () =
  check_true "opposed lock orders deadlock" (Locking.Geometry.has_deadlock opposed_geo);
  (* every deadlock point is reachable, not forbidden, not safe *)
  List.iter
    (fun p ->
      check_true "reachable" (Locking.Geometry.reachable opposed_geo p);
      check_false "not forbidden" (Locking.Geometry.forbidden opposed_geo p);
      check_false "not safe" (Locking.Geometry.safe opposed_geo p))
    (Locking.Geometry.deadlock_region opposed_geo)

let test_deadlock_cross_validation () =
  (* a complete legal interleaving exists iff O is safe; with a deadlock
     region, greedy extensions through it must get stuck *)
  check_true "origin safe" (Locking.Geometry.safe opposed_geo (0, 0));
  (* walk into the deadlock region and verify no completion exists *)
  match Locking.Geometry.deadlock_region opposed_geo with
  | [] -> Alcotest.fail "expected deadlock points"
  | (p1, p2) :: _ ->
    (* prefix reaching (p1,p2): p1 steps of T1 then p2 of T2 or the other
       way; at least one of the two monotone staircases must be legal,
       since the point is reachable; check that no extension completes *)
    let fmt = Locking.Locked.format opposed_locked in
    let rest = fmt.(0) - p1 + (fmt.(1) - p2) in
    let complete prefix =
      (* try all extensions of the prefix *)
      let exts = Combin.Interleave.all [| fmt.(0) - p1; fmt.(1) - p2 |] in
      List.exists
        (fun ext ->
          let il = Array.append prefix ext in
          Locking.Locked.legal opposed_locked il)
        exts
    in
    let pre1 = Array.append (Array.make p1 0) (Array.make p2 1) in
    let pre2 = Array.append (Array.make p2 1) (Array.make p1 0) in
    check_true "some prefix reaches the point"
      (Locking.Locked.legal_prefix opposed_locked pre1
      || Locking.Locked.legal_prefix opposed_locked pre2);
    ignore rest;
    List.iter
      (fun pre ->
        if Locking.Locked.legal_prefix opposed_locked pre then
          check_false "no completion from deadlock" (complete pre))
      [ pre1; pre2 ]

let test_sides () =
  (* serial path T1-first passes every block below *)
  let p_t1, p_t2 = Locking.Geometry.serial_paths geo in
  List.iter
    (fun (_, s) -> check_true "below" (s = Locking.Geometry.Below))
    (Locking.Geometry.sides geo p_t1);
  List.iter
    (fun (_, s) -> check_true "above" (s = Locking.Geometry.Above))
    (Locking.Geometry.sides geo p_t2)

let test_geometric_serializability_cross () =
  (* Figure 4(c): a path separates the blocks iff its projection is not
     conflict-serializable. Cross-validate over all legal interleavings
     of a well-formed 2PL-locked system... with same lock order the 2PL
     blocks always connect, so also try a hand-built non-2PL locking. *)
  List.iter
    (fun locked ->
      let g = Locking.Geometry.analyse locked in
      List.iter
        (fun il ->
          if Locking.Locked.legal locked il then
            let path = Locking.Geometry.path_of_interleaving il in
            check_true "geometric = conflict serializability"
              (Locking.Geometry.geometric_serializable g path
              = Conflict.serializable locked.Locking.Locked.base
                  (Locking.Locked.project locked il)))
        (Combin.Interleave.all (Locking.Locked.format locked)))
    [ fig3_locked; opposed_locked ]

let non_two_phase_locked =
  (* Releases x before locking y: legal interleavings can separate the
     blocks — the incorrect-locking situation of Figure 4(c). *)
  let s = Examples.fig3_pair in
  let tx i =
    [
      Locking.Locked.Lock "x";
      Locking.Locked.Action (Names.step i 0);
      Locking.Locked.Unlock "x";
      Locking.Locked.Lock "y";
      Locking.Locked.Action (Names.step i 1);
      Locking.Locked.Unlock "y";
    ]
  in
  Locking.Locked.make s [ tx 0; tx 1 ]

let test_incorrect_locking_separates_blocks () =
  let g = Locking.Geometry.analyse non_two_phase_locked in
  check_false "blocks disconnected" (Locking.Geometry.blocks_connected g);
  (* find a legal interleaving whose projection is not serializable *)
  let bad =
    List.filter
      (fun il ->
        Locking.Locked.legal non_two_phase_locked il
        && not
             (Conflict.serializable Examples.fig3_pair
                (Locking.Locked.project non_two_phase_locked il)))
      (Combin.Interleave.all (Locking.Locked.format non_two_phase_locked))
  in
  check_true "non-serializable output exists" (bad <> []);
  (* and geometrically these paths separate the blocks *)
  List.iter
    (fun il ->
      check_false "path separates blocks"
        (Locking.Geometry.geometric_serializable g
           (Locking.Geometry.path_of_interleaving il)))
    bad

let test_2pl_blocks_connected () =
  (* Figure 4(d): 2PL keeps all blocks connected via the common point u *)
  check_true "fig3 blocks connected" (Locking.Geometry.blocks_connected geo);
  (match Locking.Geometry.common_point geo with
  | Some _ -> ()
  | None -> Alcotest.fail "2PL blocks must share a common point");
  check_true "opposed blocks connected too"
    (Locking.Geometry.blocks_connected opposed_geo)

let test_homotopy_serial_paths () =
  (* the two serial paths are not homotopic when blocks exist between
     them *)
  let p_t1, p_t2 = Locking.Geometry.serial_paths geo in
  check_false "serial paths in different classes"
    (Locking.Geometry.homotopic geo p_t1 p_t2);
  check_true "self homotopic" (Locking.Geometry.homotopic geo p_t1 p_t1)

let test_homotopy_matches_sides () =
  (* every legal path is homotopic to exactly the serial path on its
     side, for the connected-blocks system *)
  let p_t1, p_t2 = Locking.Geometry.serial_paths geo in
  List.iter
    (fun il ->
      if Locking.Locked.legal fig3_locked il then begin
        let path = Locking.Geometry.path_of_interleaving il in
        match Locking.Geometry.sides geo path with
        | (_, s) :: _ ->
          let serial_mate =
            if s = Locking.Geometry.Below then p_t1 else p_t2
          in
          check_true "homotopic to its serial mate"
            (Locking.Geometry.homotopic geo path serial_mate)
        | [] -> ()
      end)
    (Combin.Interleave.all (Locking.Locked.format fig3_locked))

let test_path_points () =
  let path = [| true; false; true |] in
  Alcotest.(check (list (pair int int)))
    "points" [ (0, 0); (1, 0); (1, 1); (2, 1) ]
    (Locking.Geometry.path_points path)

(* Property: elementary moves preserve legality and endpoints. *)
let prop_elementary_moves_legal =
  QCheck.Test.make ~name:"elementary moves stay legal" ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      let st = rng seed in
      let fmt = Locking.Locked.format fig3_locked in
      (* draw random legal interleaving by rejection *)
      let rec draw k =
        if k > 200 then None
        else
          let il = Combin.Interleave.random st fmt in
          if Locking.Locked.legal fig3_locked il then Some il else draw (k + 1)
      in
      match draw 0 with
      | None -> true
      | Some il ->
        let path = Locking.Geometry.path_of_interleaving il in
        List.for_all
          (fun p -> Locking.Geometry.path_legal geo p)
          (Locking.Geometry.elementary_moves geo path))

let suite =
  [
    Alcotest.test_case "extent" `Quick test_extent;
    Alcotest.test_case "blocks" `Quick test_blocks;
    Alcotest.test_case "legality cross-check" `Quick test_forbidden_matches_legality;
    Alcotest.test_case "no deadlock same order" `Quick test_deadlock_region;
    Alcotest.test_case "deadlock opposed order" `Quick test_deadlock_exists;
    Alcotest.test_case "deadlock cross-validation" `Quick test_deadlock_cross_validation;
    Alcotest.test_case "sides of serial paths" `Quick test_sides;
    Alcotest.test_case "geometric serializability" `Quick test_geometric_serializability_cross;
    Alcotest.test_case "incorrect locking separates" `Quick test_incorrect_locking_separates_blocks;
    Alcotest.test_case "2PL blocks connected" `Quick test_2pl_blocks_connected;
    Alcotest.test_case "serial paths not homotopic" `Quick test_homotopy_serial_paths;
    Alcotest.test_case "homotopy matches sides" `Quick test_homotopy_matches_sides;
    Alcotest.test_case "path points" `Quick test_path_points;
  ]
  @ qsuite [ prop_elementary_moves_legal ]

(* --- the n-dimensional generalisation --- *)

let test_nd_matches_2d () =
  (* on two-transaction systems, the n-D analysis agrees with the 2-D *)
  List.iter
    (fun locked ->
      let g2 = Locking.Geometry.analyse locked in
      let gn = Locking.Geometry_nd.analyse locked in
      let l1, l2 = Locking.Geometry.extent g2 in
      for x = 0 to l1 do
        for y = 0 to l2 do
          check_true "forbidden agrees"
            (Locking.Geometry.forbidden g2 (x, y)
            = Locking.Geometry_nd.forbidden gn [| x; y |]);
          check_true "safe agrees"
            (Locking.Geometry.safe g2 (x, y)
            = Locking.Geometry_nd.safe gn [| x; y |]);
          check_true "deadlock agrees"
            (Locking.Geometry.deadlock g2 (x, y)
            = Locking.Geometry_nd.deadlock gn [| x; y |])
        done
      done)
    [ fig3_locked; opposed_locked ]

let test_nd_three_way_deadlock () =
  (* the cyclic three-transaction pattern (x y), (y z), (z x): each
     waits for the next — a deadlock no pair shows in isolation *)
  let syntax =
    Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "z" ]; [ "z"; "x" ] ]
  in
  let locked = Locking.Two_phase.apply syntax in
  let gn = Locking.Geometry_nd.analyse locked in
  check_true "three-way deadlock region exists"
    (Locking.Geometry_nd.has_deadlock gn);
  (* preclaim's ordered acquisition removes it *)
  let pre = Locking.Geometry_nd.analyse (Locking.Preclaim.apply syntax) in
  check_false "preclaim has none" (Locking.Geometry_nd.has_deadlock pre)

let prop_nd_legality_matches_lock_machine =
  QCheck.Test.make ~name:"nD geometric legality = lock-machine legality"
    ~count:40
    (QCheck.make
       QCheck.Gen.(pair (Util.syntax_gen ~max_n:3 ~max_m:2 ~n_vars:3) int))
    (fun (syntax, seed) ->
      let locked = Locking.Two_phase.apply syntax in
      let gn = Locking.Geometry_nd.analyse locked in
      let st = Util.rng seed in
      let fmt = Locking.Locked.format locked in
      let il = Combin.Interleave.random st fmt in
      Locking.Geometry_nd.interleaving_legal gn il
      = Locking.Locked.legal_prefix locked il)

let suite =
  suite
  @ [
      Alcotest.test_case "nD matches 2D" `Quick test_nd_matches_2d;
      Alcotest.test_case "three-way deadlock" `Quick test_nd_three_way_deadlock;
    ]
  @ Util.qsuite [ prop_nd_legality_matches_lock_machine ]
