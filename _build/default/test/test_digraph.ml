(* Tests for the directed-graph substrate. *)

open Util

let mk edges n =
  let g = Digraph.create n in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
  g

let test_basic () =
  let g = mk [ (0, 1); (1, 2) ] 3 in
  check_true "has 0->1" (Digraph.has_edge g 0 1);
  check_false "no 1->0" (Digraph.has_edge g 1 0);
  check_int "n edges" 2 (Digraph.n_edges g);
  Alcotest.(check (list int)) "succ 0" [ 1 ] (Digraph.succ g 0);
  Alcotest.(check (list int)) "pred 2" [ 1 ] (Digraph.pred g 2);
  Digraph.add_edge g 0 1;
  check_int "idempotent add" 2 (Digraph.n_edges g);
  Digraph.remove_edge g 0 1;
  check_false "removed" (Digraph.has_edge g 0 1)

let test_cycles () =
  check_false "dag" (Digraph.has_cycle (mk [ (0, 1); (1, 2); (0, 2) ] 3));
  check_true "triangle" (Digraph.has_cycle (mk [ (0, 1); (1, 2); (2, 0) ] 3));
  check_true "self loop" (Digraph.has_cycle (mk [ (1, 1) ] 2));
  check_false "empty" (Digraph.has_cycle (Digraph.create 5));
  check_true "two-cycle deep"
    (Digraph.has_cycle (mk [ (0, 1); (1, 2); (2, 3); (3, 1) ] 4))

let test_topo () =
  (match Digraph.topological_sort (mk [ (2, 1); (1, 0) ] 3) with
  | Some order -> Alcotest.(check (array int)) "order" [| 2; 1; 0 |] order
  | None -> Alcotest.fail "expected a topological order");
  check_true "cyclic has none"
    (Digraph.topological_sort (mk [ (0, 1); (1, 0) ] 2) = None)

let test_find_cycle () =
  (match Digraph.find_cycle (mk [ (0, 1); (1, 2); (2, 0) ] 3) with
  | Some cyc -> check_int "cycle length" 3 (List.length cyc)
  | None -> Alcotest.fail "expected a cycle");
  check_true "acyclic none" (Digraph.find_cycle (mk [ (0, 1) ] 2) = None)

let test_scc () =
  let g = mk [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] 4 in
  let comp = Digraph.scc g in
  check_true "0,1 same" (comp.(0) = comp.(1));
  check_true "2,3 same" (comp.(2) = comp.(3));
  check_true "0,2 differ" (comp.(0) <> comp.(2))

let test_reachable () =
  let g = mk [ (0, 1); (1, 2); (3, 0) ] 4 in
  let r = Digraph.reachable g 0 in
  Alcotest.(check (array bool)) "from 0" [| true; true; true; false |] r

let test_components () =
  let g = mk [ (0, 1); (2, 3) ] 5 in
  let c = Digraph.undirected_components g in
  check_true "0-1 joined" (c.(0) = c.(1));
  check_true "2-3 joined" (c.(2) = c.(3));
  check_true "4 alone" (c.(4) <> c.(0) && c.(4) <> c.(2))

(* Brute-force cycle check for cross-validation: try all vertices as
   start, walk all simple paths. Exponential but fine on tiny graphs. *)
let brute_has_cycle g =
  let n = Digraph.n_vertices g in
  let rec walk visited u =
    List.exists
      (fun v -> List.mem v visited || walk (v :: visited) v)
      (Digraph.succ g u)
  in
  let rec any u = u < n && (walk [ u ] u || any (u + 1)) in
  any 0

let random_graph_gen =
  QCheck.Gen.(
    int_range 1 6 >>= fun n ->
    list_size (int_range 0 10) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun edges -> return (n, edges))

let prop_cycle_matches_brute =
  QCheck.Test.make ~name:"has_cycle matches brute force" ~count:300
    (QCheck.make
       ~print:(fun (n, es) ->
         Printf.sprintf "n=%d edges=%s" n
           (String.concat ";"
              (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) es)))
       random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      Digraph.has_cycle g = brute_has_cycle g)

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological sort respects all edges" ~count:300
    (QCheck.make random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      match Digraph.topological_sort g with
      | None -> Digraph.has_cycle g
      | Some order ->
        let pos = Array.make n 0 in
        Array.iteri (fun i u -> pos.(u) <- i) order;
        (not (Digraph.has_cycle g))
        && List.for_all (fun (u, v) -> pos.(u) < pos.(v)) (Digraph.edges g))

let prop_find_cycle_is_cycle =
  QCheck.Test.make ~name:"find_cycle returns a real cycle" ~count:300
    (QCheck.make random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      match Digraph.find_cycle g with
      | None -> not (Digraph.has_cycle g)
      | Some [] -> false
      | Some (first :: _ as cyc) ->
        let rec ok = function
          | [ last ] -> Digraph.has_edge g last first
          | u :: (v :: _ as rest) -> Digraph.has_edge g u v && ok rest
          | [] -> false
        in
        ok cyc)

let prop_closure_sound =
  QCheck.Test.make ~name:"transitive closure = reachability" ~count:200
    (QCheck.make random_graph_gen)
    (fun (n, edges) ->
      let g = mk edges n in
      let c = Digraph.transitive_closure g in
      let ok = ref true in
      for u = 0 to n - 1 do
        let r = Digraph.reachable g u in
        for v = 0 to n - 1 do
          let direct = Digraph.has_edge c u v in
          let expected =
            (* reachable by non-empty path *)
            List.exists (fun w -> Digraph.reachable g w |> fun rw -> rw.(v))
              (Digraph.succ g u)
          in
          ignore r;
          if direct <> expected then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "basic ops" `Quick test_basic;
    Alcotest.test_case "cycles" `Quick test_cycles;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "find cycle" `Quick test_find_cycle;
    Alcotest.test_case "scc" `Quick test_scc;
    Alcotest.test_case "reachable" `Quick test_reachable;
    Alcotest.test_case "components" `Quick test_components;
  ]
  @ qsuite
      [
        prop_cycle_matches_brute;
        prop_topo_respects_edges;
        prop_find_cycle_is_cycle;
        prop_closure_sound;
      ]
