(* P3: the Section 6 latency decomposition — scheduling + waiting +
   execution time under a central scheduler, swept over load and
   contention. *)

let run_point syntax rate =
  Printf.printf "\n-- arrival rate %.2f (exec 1.0, sched 0.05) --\n" rate;
  List.iter
    (fun (name, mk) ->
      let r =
        Sim.Des.run
          { Sim.Des.arrival_rate = rate; exec_time = 1.0; sched_time = 0.05;
            seed = 99 }
          ~syntax ~scheduler:mk
      in
      Printf.printf "%-8s %s\n" name (Format.asprintf "%a" Sim.Des.pp_result r))
    (Sim.Measure.standard_suite syntax)

let run () =
  Tables.section "P3-latency-decomposition"
    "discrete-event model: latency = scheduling + waiting + execution";
  let st = Random.State.make [| 5 |] in
  let low = Sim.Workload.hotspot st ~n:20 ~m:3 ~n_vars:8 ~theta:0.15 in
  let hot = Sim.Workload.hotspot st ~n:20 ~m:3 ~n_vars:4 ~theta:0.8 in
  Printf.printf "LOW contention (8 variables, theta 0.15):\n";
  List.iter (run_point low) [ 0.2; 1.0; 2.0 ];
  Printf.printf "\nHIGH contention (4 variables, theta 0.8):\n";
  List.iter (run_point hot) [ 0.2; 1.0; 2.0 ];
  Printf.printf
    "\nshape: under low contention the concurrent schedulers (2PL, SGT) beat \
     the serial scheduler as load grows — exactly the intro's argument \
     against the one-user-at-a-time strawman; under a hot spot everything \
     conflicts, waiting or restarts dominate, and serial execution is no \
     longer the bottleneck. Restart-based schedulers (SGT aborts on cycle, \
     TO on timestamp misses) convert waiting into re-execution, which the \
     decomposition shows as execution-time growth instead of waiting.\n"
