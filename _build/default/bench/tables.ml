(* Shared formatting helpers for the benchmark harness. *)

let section id title =
  Printf.printf "\n=== bench: %s — %s ===\n\n" id title

let row fmt = Printf.printf fmt

let ratio num den =
  if den = 0 then 0. else float_of_int num /. float_of_int den
