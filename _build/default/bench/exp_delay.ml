(* P2: the Section 6 performance model — zero-delay probability |P|/|H|
   and average delay/waiting/restarts per scheduler, swept over
   contention. *)

open Core

let sweep_point ~n ~m ~n_vars ~theta ~seed =
  let st = Random.State.make [| seed |] in
  let syntax =
    if n_vars = 1 then Examples.hot_spot n m
    else Sim.Workload.hotspot st ~n ~m ~n_vars ~theta
  in
  let rows =
    Sim.Measure.compare_schedulers
      (Sim.Measure.standard_suite syntax)
      ~fmt:(Syntax.format syntax) ~samples:400 ~seed:(seed + 1)
  in
  (syntax, rows)

let run () =
  Tables.section "P2-delay-simulation"
    "zero-delay probability and delays per scheduler (400 random histories \
     per point)";
  (* exact |P|/|H| on a small system first *)
  let syntax = Syntax.of_lists [ [ "v0"; "v1" ]; [ "v0" ]; [ "v1" ] ] in
  let fmt = Syntax.format syntax in
  Printf.printf "exact |P|/|H| on (v0 v1, v0, v1), |H| = %d:\n"
    (Schedule.count fmt);
  List.iter
    (fun (name, mk) ->
      if name <> "TO" then
        let p = Sim.Measure.exact_fixpoint_count mk fmt in
        Printf.printf "  %-8s |P| = %2d  |P|/|H| = %.3f\n" name p
          (Tables.ratio p (Schedule.count fmt)))
    (Sim.Measure.standard_suite syntax);
  (* contention sweep *)
  List.iter
    (fun (label, n, m, n_vars, theta) ->
      let syntax, rows = sweep_point ~n ~m ~n_vars ~theta ~seed:20 in
      Printf.printf "\n-- %s (vars %d, theta %.1f, |H| = %d) --\n" label
        n_vars theta
        (Schedule.count (Syntax.format syntax));
      Format.printf "%a" Sim.Measure.pp_rows rows)
    [
      ("low contention", 3, 2, 6, 0.1);
      ("medium contention", 3, 2, 3, 0.5);
      ("high contention (hot spot)", 3, 2, 1, 1.0);
      ("wider, medium", 4, 2, 4, 0.4);
    ];
  (* OCC needs semantics: run it on the counters filling *)
  let st = Random.State.make [| 77 |] in
  let syntax = Sim.Workload.hotspot st ~n:3 ~m:2 ~n_vars:3 ~theta:0.5 in
  let sys = Sim.Workload.counters syntax in
  let initial =
    Core.State.of_list
      (List.map (fun v -> (v, Expr.Value.Int 0)) (Core.Syntax.vars syntax))
  in
  let occ_row =
    Sim.Measure.sample ~name:"OCC"
      (fun () ->
        let sched, _, _ = Sched.Optimistic.create ~system:sys ~initial () in
        sched)
      ~fmt:(Core.Syntax.format syntax) ~samples:400 ~seed:5
  in
  Printf.printf "\nOCC (optimistic, counters semantics, medium contention):\n";
  Format.printf "%a" Sim.Measure.pp_rows [ occ_row ];
  Printf.printf
    "\nshape: SGT dominates the zero-delay column (it is the optimal \
     syntactic scheduler); 2PL' >= 2PL; preclaim sits near 2PL but never \
     deadlocks; serial is the floor; TO and OCC never delay and pay in \
     restarts instead.\n"
