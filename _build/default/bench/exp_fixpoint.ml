(* P1: the fixpoint-set hierarchy table — |Serial| <= |2PL| <= |SR| <=
   |WSR| <= |C(T)| <= |H| across formats and contention levels. *)

open Core

let classify name syntax =
  let sys = Sim.Workload.counters syntax in
  let probes = Weak_sr.default_probes ~seed:3 ~count:6 sys in
  let sets = Fixpoint.compute sys ~probes in
  let h, serial, sr, wsr, c = Fixpoint.counts sets in
  let locked = Locking.Two_phase.apply syntax in
  let tpl =
    List.length (List.filter (Locking.Locked.can_output locked) sets.Fixpoint.h)
  in
  let tpl_pass =
    List.length (List.filter (Locking.Locked.passes locked) sets.Fixpoint.h)
  in
  let pre =
    let l = Locking.Preclaim.apply syntax in
    List.length (List.filter (Locking.Locked.can_output l) sets.Fixpoint.h)
  in
  let classes = Equivalence.class_count syntax in
  Printf.printf "%-22s %5d %7d %9d %6d %6d %6d %6d %6d %7d\n" name h serial
    tpl_pass tpl pre sr wsr c classes

let run () =
  Tables.section "P1-fixpoint-hierarchy"
    "fixpoint sets: serial ⊆ 2PL(greedy) ⊆ 2PL(outputs) ⊆ SR ⊆ WSR ⊆ C(T)";
  Printf.printf "%-22s %5s %7s %9s %6s %6s %6s %6s %6s %7s\n" "system" "|H|"
    "serial" "2PLpass" "2PLout" "precl" "SR" "WSR" "C(T)" "classes";
  classify "hot(2x2)" (Examples.hot_spot 2 2);
  classify "hot(3x2)" (Examples.hot_spot 3 2);
  classify "hot(2x3)" (Examples.hot_spot 2 3);
  classify "fig3 pair (x,y)^2" Examples.fig3_pair;
  classify "opposed (xy, yx)" (Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ]);
  classify "T-shape (xy, x)" (Syntax.of_lists [ [ "x"; "y" ]; [ "x" ] ]);
  classify "chain (xy, yz)" (Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "z" ] ]);
  classify "disjoint 3x(2)" Examples.indep;
  Printf.printf
    "\nshape: the hierarchy tightens with contention — on the hot spot only \
     serial schedules are serializable; with disjoint variables everything \
     is; 2PL always sits between serial and SR.\n"
