bench/main.mli:
