bench/exp_rw.ml: Array Combin Conflict Core Format Herbrand List Locking Names Printf Random Recovery Rw_model Schedule Sim Syntax Tables
