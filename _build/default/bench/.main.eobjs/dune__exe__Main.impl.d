bench/main.ml: Array Exp_cost Exp_delay Exp_des Exp_examples Exp_fixpoint Exp_locking Exp_rw Exp_theorems List Printf String Sys
