bench/exp_examples.ml: Array Combin Conflict Core Examples Exec Format Herbrand List Names Printf Schedule State String System Tables Weak_sr
