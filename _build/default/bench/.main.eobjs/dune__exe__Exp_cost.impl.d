bench/exp_cost.ml: Analyze Bechamel Benchmark Combin Conflict Core Hashtbl Herbrand Instance List Locking Measure Printf Random Sched Schedule Sim Staged Syntax Tables Test Time Toolkit
