bench/tables.ml: Printf
