bench/exp_fixpoint.ml: Core Equivalence Examples Fixpoint List Locking Printf Sim Syntax Tables Weak_sr
