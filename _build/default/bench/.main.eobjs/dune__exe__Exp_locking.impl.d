bench/exp_locking.ml: Array Combin Conflict Core Examples Format List Locking Names Printf Schedule Syntax Tables
