bench/exp_theorems.ml: Adversary Array Conflict Core Examples Expr Fixpoint Format Fun Info List Names Optimality Printf Sched Schedule State String Syntax System Tables Weak_sr
