bench/exp_des.ml: Format List Printf Random Sim Tables
