bench/exp_delay.ml: Core Examples Expr Format List Printf Random Sched Schedule Sim Syntax Tables
