(* F2-F5: the locking figures. *)

open Core

let f2 () =
  Tables.section "F2-2pl-transform" "Figure 2: 2PL locks (x, y, x, z)";
  let syntax = Syntax.of_lists [ Examples.fig2_transaction ] in
  print_endline
    (Format.asprintf "%a" Locking.Locked.pp (Locking.Two_phase.apply syntax))

let f5 () =
  Tables.section "F5-2pl-prime" "Figure 5: 2PL' with distinguished x";
  let syntax = Syntax.of_lists [ Examples.fig2_transaction ] in
  let locked = Locking.Two_phase_prime.apply ~distinguished:"x" syntax in
  print_endline (Format.asprintf "%a" Locking.Locked.pp locked);
  Printf.printf "\ntwo-phase: %b (2PL' deliberately is not)\nwell-formed: %b\n"
    (Locking.Locked.is_two_phase locked)
    (Locking.Locked.is_well_formed locked);
  (* the strictness claim of §5.4, measured *)
  let witness = Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "x" ] ] in
  let p = Locking.Two_phase.policy in
  let p' = Locking.Two_phase_prime.policy ~distinguished:"x" in
  Printf.printf
    "\non T1=(x,y,z), T2=(x):  |outputs 2PL| = %d, |outputs 2PL'| = %d, \
     2PL' strictly better: %b (expected: true)\n"
    (Locking.Policy.output_count p witness)
    (Locking.Policy.output_count p' witness)
    (Locking.Policy.strictly_better p' p witness)

let f3 () =
  Tables.section "F3-progress-space"
    "Figure 3: blocks, a staircase schedule, and region D";
  let locked = Locking.Two_phase.apply Examples.fig3_pair in
  let il = [| 0; 0; 1; 1; 0; 0; 0; 0; 1; 1; 1; 1 |] in
  let il =
    if Locking.Locked.legal locked il then il
    else
      Array.append
        (Array.make (Array.length locked.Locking.Locked.txs.(0)) 0)
        (Array.make (Array.length locked.Locking.Locked.txs.(1)) 1)
  in
  print_endline
    (Locking.Render.figure
       ~path:(Locking.Geometry.path_of_interleaving il)
       locked);
  print_newline ();
  print_endline "with opposed lock orders (T2 locks y first), region D appears:";
  let opposed =
    Locking.Two_phase.apply (Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ])
  in
  print_endline (Locking.Render.figure opposed);
  (* the high-dimensional case the paper alludes to: a 3-cycle of lock
     orders deadlocks although every pair alone is harmless *)
  let cyclic = Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "z" ]; [ "z"; "x" ] ] in
  let g3 = Locking.Geometry_nd.analyse (Locking.Two_phase.apply cyclic) in
  Printf.printf
    "\n3-transaction cyclic lock orders (xy, yz, zx): deadlock points in \
     the 3-D progress space: %d (preclaim: %d)\n"
    (List.length (Locking.Geometry_nd.deadlock_points g3))
    (List.length
       (Locking.Geometry_nd.deadlock_points
          (Locking.Geometry_nd.analyse (Locking.Preclaim.apply cyclic))))

let f4 () =
  Tables.section "F4-geometry-of-locking"
    "Figure 4: homotopy, separating blocks, and 2PL's common point u";
  let locked = Locking.Two_phase.apply Examples.fig3_pair in
  let geo = Locking.Geometry.analyse locked in
  let p1, p2 = Locking.Geometry.serial_paths geo in
  Printf.printf "2PL blocks connected: %b, common point u: %s\n"
    (Locking.Geometry.blocks_connected geo)
    (match Locking.Geometry.common_point geo with
    | Some (x, y) -> Printf.sprintf "(%d,%d)" x y
    | None -> "none");
  Printf.printf "serial paths homotopic to each other: %b (expected false)\n"
    (Locking.Geometry.homotopic geo p1 p2);
  (* count homotopy classes over all legal paths *)
  let legal =
    List.filter (Locking.Locked.legal locked)
      (Combin.Interleave.all (Locking.Locked.format locked))
  in
  let below, above =
    List.partition
      (fun il ->
        let path = Locking.Geometry.path_of_interleaving il in
        match Locking.Geometry.sides geo path with
        | (_, Locking.Geometry.Below) :: _ -> true
        | _ -> false)
      legal
  in
  Printf.printf
    "legal locked schedules: %d (T1-side %d, T2-side %d) — every one \
     serializable: %b\n"
    (List.length legal) (List.length below) (List.length above)
    (List.for_all
       (fun il ->
         Conflict.serializable Examples.fig3_pair
           (Locking.Locked.project locked il))
       legal);
  (* the incorrect policy of Figure 4(c) *)
  let tx i =
    [
      Locking.Locked.Lock "x";
      Locking.Locked.Action (Names.step i 0);
      Locking.Locked.Unlock "x";
      Locking.Locked.Lock "y";
      Locking.Locked.Action (Names.step i 1);
      Locking.Locked.Unlock "y";
    ]
  in
  let bad = Locking.Locked.make Examples.fig3_pair [ tx 0; tx 1 ] in
  let bad_geo = Locking.Geometry.analyse bad in
  let bad_outputs =
    List.filter
      (fun il ->
        Locking.Locked.legal bad il
        && not
             (Conflict.serializable Examples.fig3_pair
                (Locking.Locked.project bad il)))
      (Combin.Interleave.all (Locking.Locked.format bad))
  in
  Printf.printf
    "non-two-phase per-variable locking: blocks connected %b, \
     non-serializable outputs %d (expected: false / > 0)\n"
    (Locking.Geometry.blocks_connected bad_geo)
    (List.length bad_outputs)

let tree () =
  Tables.section "F4x-tree-locking"
    "§5.4 structured data: tree locking vs 2PL on a hierarchy";
  (* chain traversals r -> a -> b: the tree protocol releases r as soon
     as a is locked, one action earlier than 2PL's phase rule allows *)
  let hierarchy = [ ("a", "r"); ("b", "a") ] in
  let syntax = Syntax.of_lists [ [ "r"; "a"; "b" ]; [ "r"; "a"; "b" ] ] in
  let tree = Locking.Tree_lock.policy hierarchy in
  let tpl = Locking.Two_phase.policy in
  Printf.printf
    "two chain traversals r,a,b:\n\
     |outputs tree| = %d vs |outputs 2PL| = %d; tree correct: %b, \
     two-phase: %b\n"
    (Locking.Policy.output_count tree syntax)
    (Locking.Policy.output_count tpl syntax)
    (Locking.Policy.correct_exhaustive tree syntax)
    (Locking.Locked.is_two_phase (tree.Locking.Policy.apply syntax));
  (* and the sibling workload where the connector root hurts instead *)
  let sib_h = [ ("a", "r"); ("b", "r") ] in
  let sib = Syntax.of_lists [ [ "a"; "b" ]; [ "a"; "b" ] ] in
  Printf.printf
    "two sibling scans a,b: |outputs tree| = %d vs |outputs 2PL| = %d — \
     the connector root neutralises the advantage; structure pays off \
     when transactions traverse it\n"
    (Locking.Policy.output_count (Locking.Tree_lock.policy sib_h) sib)
    (Locking.Policy.output_count tpl sib)

let a1 () =
  Tables.section "A1-lock-placement"
    "ablation of the unlock placement rule: strict < canonical 2PL, \
     preclaim incomparable";
  Printf.printf "%-24s %8s %8s %8s %8s %8s\n" "system" "|H|" "strict" "2PL"
    "preclaim" "2PL'";
  List.iter
    (fun (label, s) ->
      let count p = Locking.Policy.output_count p s in
      Printf.printf "%-24s %8d %8d %8d %8d %8d\n" label
        (Schedule.count (Syntax.format s))
        (count Locking.Two_phase_strict.policy)
        (count Locking.Two_phase.policy)
        (count Locking.Preclaim.policy)
        (count (Locking.Two_phase_prime.policy ~distinguished:"x")))
    [
      ("fig3 pair (xy)^2", Examples.fig3_pair);
      ("opposed (xy, yx)", Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "x" ] ]);
      ("witness (xyz, x)", Syntax.of_lists [ [ "x"; "y"; "z" ]; [ "x" ] ]);
      ("chain (xy, yz)", Syntax.of_lists [ [ "x"; "y" ]; [ "y"; "z" ] ]);
    ];
  Printf.printf
    "\nshape: strict 2PL (all releases at commit, what real systems run \
     for recoverability) gives up schedules against canonical 2PL; 2PL' \
     recovers more than 2PL on x-heavy systems; preclaim trades early \
     acquisition for deadlock freedom.\n"

let run () =
  f2 ();
  f5 ();
  f3 ();
  f4 ();
  tree ()
