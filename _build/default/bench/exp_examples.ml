(* E1 (the Section 2 banking example) and F1 (Figure 1: not serializable
   yet weakly serializable). *)

open Core

let e1 () =
  Tables.section "E1-banking" "Section 2 example, executed";
  let sys = Examples.banking in
  let g0 = Examples.banking_initial in
  Printf.printf "initial %s consistent=%b\n" (State.to_string g0)
    (System.consistent sys g0);
  (* the paper's second sample state: after T21 and T31..T33 *)
  let prefix =
    [| Names.step 1 0; Names.step 2 0; Names.step 2 1; Names.step 2 2 |]
  in
  let st = ref (Exec.start sys g0) in
  Array.iter (fun id -> st := Exec.exec_step sys !st id) prefix;
  Printf.printf "paper's mid-flight state (after T21 T31 T32 T33): %s\n"
    (State.to_string (!st).Exec.globals);
  List.iter
    (fun order ->
      let g = Exec.run_concatenation sys g0 (Array.to_list order) in
      Printf.printf "serial %s -> %s consistent=%b\n"
        (String.concat ""
           (List.map (fun i -> "T" ^ string_of_int (i + 1)) (Array.to_list order)))
        (State.to_string g) (System.consistent sys g))
    (Combin.Perm.all 3);
  let race = Schedule.of_interleaving [| 2; 0; 0; 0; 2; 2; 2; 1; 1 |] in
  let g = Exec.run sys g0 race in
  Printf.printf "racy audit %s -> %s consistent=%b (expected: false)\n"
    (Schedule.to_string race) (State.to_string g) (System.consistent sys g)

let f1 () =
  Tables.section "F1-nonserializable-but-weak"
    "Figure 1: h = (T11,T21,T12) is not in SR(T) yet weakly serializable";
  let sys = Examples.fig1 in
  let syntax = sys.System.syntax in
  let h = Examples.fig1_history in
  Printf.printf "system:\n%s\n\n" (Format.asprintf "%a" System.pp sys);
  Printf.printf "h = %s\n" (Schedule.to_string h);
  Printf.printf "Herbrand final state: %s\n"
    (Format.asprintf "%a" Herbrand.pp_state (Herbrand.run syntax h));
  List.iter
    (fun order ->
      let s = Schedule.serial [| 2; 1 |] order in
      Printf.printf "Herbrand of serial %s: %s\n" (Schedule.to_string s)
        (Format.asprintf "%a" Herbrand.pp_state (Herbrand.run syntax s)))
    (Combin.Perm.all 2);
  Printf.printf "h serializable (Herbrand brute force): %b (expected false)\n"
    (Herbrand.serializable syntax h);
  Printf.printf "h serializable (conflict graph):       %b (expected false)\n"
    (Conflict.serializable syntax h);
  let probes = List.map (fun x -> State.of_ints [ ("x", x) ]) [ -4; 0; 1; 3; 10 ] in
  (match Weak_sr.check sys ~probes h with
  | Weak_sr.Weakly_serializable witnesses ->
    Printf.printf "h weakly serializable: true; witness concatenations:\n";
    List.iter2
      (fun e w ->
        Printf.printf "  from %-8s -> %s\n" (State.to_string e)
          (if w = [] then "(empty: h leaves the state unchanged)"
           else
             String.concat ";"
               (List.map (fun i -> "T" ^ string_of_int (i + 1)) w)))
      probes witnesses
  | Weak_sr.Refuted e ->
    Printf.printf "UNEXPECTED refutation at %s\n" (State.to_string e));
  (* concrete check: same state as serial (T21, T11, T12) from x = 5 *)
  let g = State.of_ints [ ("x", 5) ] in
  let serial = Schedule.serial [| 2; 1 |] [| 1; 0 |] in
  Printf.printf "from x=5: h -> %s, serial T2;T1 -> %s (equal: %b)\n"
    (State.to_string (Exec.run sys g h))
    (State.to_string (Exec.run sys g serial))
    (State.equal (Exec.run sys g h) (Exec.run sys g serial))

let run () =
  e1 ();
  f1 ()
