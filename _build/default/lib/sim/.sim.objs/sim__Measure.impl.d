lib/sim/measure.ml: Combin Core Format List Locking Random Sched Syntax
