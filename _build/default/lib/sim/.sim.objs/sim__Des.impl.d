lib/sim/des.ml: Array Core Float Format Int List Names Queue Random Sched Set Syntax
