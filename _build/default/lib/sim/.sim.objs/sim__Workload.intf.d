lib/sim/workload.mli: Core Names Random Syntax System
