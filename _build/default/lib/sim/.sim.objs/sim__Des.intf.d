lib/sim/des.mli: Core Format Sched
