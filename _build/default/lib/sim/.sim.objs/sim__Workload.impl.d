lib/sim/workload.ml: Array Core Expr List Printf Random Syntax System
