lib/sim/measure.mli: Core Format Sched Syntax
