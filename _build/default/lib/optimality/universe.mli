open Core

(** Finite micro-universes of transaction systems.

    An information level is a {e set} of transaction systems the
    scheduler cannot tell apart (Section 3.3). To check the optimality
    theorems exhaustively, this module materialises such sets over a
    finite domain [Z_k = {0, .., k-1}]: every interpretation is an
    arbitrary total function [Z_k^j → Z_k] (encoded as a decision-tree
    expression), and every integrity constraint an arbitrary subset of
    the finite state space. The systems violating the paper's basic
    assumption (some transaction individually incorrect) are filtered
    out. *)

val all_functions : k:int -> arity:int -> Expr.Ast.t list
(** Every function [Z_k^arity → Z_k], as expressions over
    [Local 0 .. Local (arity-1)]. There are [k^(k^arity)] of them;
    guarded against blowup ([k^arity ≤ 8]). *)

val all_syntaxes : fmt:int array -> vars:Names.var list -> Syntax.t list
(** Every access pattern of the format over the given variables. *)

val all_semantics : k:int -> Syntax.t -> Expr.Ast.t array array Seq.t
(** Every interpretation assignment for the syntax over [Z_k], lazily. *)

val all_ics : k:int -> vars:Names.var list -> System.ic list
(** Every subset of the state space [Z_k^vars], as [Sat] predicates
    (named by their bitmask). The empty subset is excluded (no
    consistent state = vacuous). *)

val systems :
  k:int -> ?syntaxes:Syntax.t list -> fmt:int array -> vars:Names.var list ->
  unit -> System.t Seq.t
(** All systems over the universe parameters that satisfy the basic
    assumption (every transaction individually correct, checked over the
    whole finite state space). [syntaxes] defaults to
    {!all_syntaxes}. *)

val states : k:int -> vars:Names.var list -> State.t list
(** The full finite state space. *)
