open Core

(** Exhaustive verification of the optimality theorems on
    micro-universes.

    For an information level realised as an explicit finite universe
    [I], the optimal fixpoint set is [∩_{T'∈I} C(T')] (Theorem 1 and its
    corollary). These reports compute that intersection {e by brute
    force} — every schedule against every system against every state —
    and compare it with the set the theorem predicts.

    Over a finite domain the minimum-information intersection is exactly
    the serial schedules (the Theorem 2 adversary — increment /
    decrement / double with [IC = {x = 0}] — lives inside the universe:
    [2·(0+1)−1 = 1 ≠ 0] holds in every [Z_k], [k ≥ 2]). The Theorem 3
    (syntactic-level) adversary needs Herbrand strings, which no finite
    domain contains, so the finite intersection can be strictly larger
    than [SR(T)]; the report measures that gap. *)

type report = {
  universe_size : int;   (** systems satisfying the basic assumption *)
  n_schedules : int;     (** |H| *)
  intersection : Schedule.t list;  (** ∩ C(T') over the universe *)
  predicted : Schedule.t list;     (** the theorem's fixpoint set *)
  matches : bool;        (** intersection = predicted *)
  gap : Schedule.t list; (** intersection \ predicted *)
}

val intersection_c :
  probes:State.t list -> System.t Seq.t -> int array -> Schedule.t list * int
(** [(∩ C(T'), universe size)] for an explicit universe. *)

val theorem2_report : k:int -> fmt:int array -> vars:Names.var list -> report
(** Minimum information: universe = all systems of the format over the
    variables; prediction = serial schedules. *)

val theorem3_report : k:int -> Syntax.t -> report
(** Complete syntactic information: universe = all semantics and ICs
    over the fixed syntax; prediction = [SR(T)] (conflict test). The
    [gap] shows what a finite domain cannot refute. *)

val pp_report : Format.formatter -> report -> unit
