open Core

type report = {
  universe_size : int;
  n_schedules : int;
  intersection : Schedule.t list;
  predicted : Schedule.t list;
  matches : bool;
  gap : Schedule.t list;
}

let intersection_c ~probes universe fmt =
  let all = Schedule.all fmt in
  let surviving = ref all in
  let size = ref 0 in
  Seq.iter
    (fun sys ->
      incr size;
      surviving :=
        List.filter (fun h -> Exec.correct_schedule sys ~probes h) !surviving)
    universe;
  (!surviving, !size)

let diff a b = List.filter (fun h -> not (List.exists (Schedule.equal h) b)) a

let make_report intersection universe_size fmt predicted =
  {
    universe_size;
    n_schedules = Schedule.count fmt;
    intersection;
    predicted;
    matches =
      Fixpoint.subset intersection predicted
      && Fixpoint.subset predicted intersection;
    gap = diff intersection predicted;
  }

let theorem2_report ~k ~fmt ~vars =
  let probes = Universe.states ~k ~vars in
  let universe = Universe.systems ~k ~fmt ~vars () in
  let intersection, size = intersection_c ~probes universe fmt in
  make_report intersection size fmt (Fixpoint.serial_only fmt)

let theorem3_report ~k syntax =
  let fmt = Syntax.format syntax in
  let vars = Syntax.vars syntax in
  let probes = Universe.states ~k ~vars in
  let universe = Universe.systems ~k ~syntaxes:[ syntax ] ~fmt ~vars () in
  let intersection, size = intersection_c ~probes universe fmt in
  make_report intersection size fmt (Fixpoint.sr_only syntax)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>universe: %d systems, |H| = %d@ intersection: %d schedule(s)@ \
     predicted: %d schedule(s)@ matches: %b@ gap: %d schedule(s)%a@]"
    r.universe_size r.n_schedules
    (List.length r.intersection)
    (List.length r.predicted)
    r.matches (List.length r.gap)
    (fun ppf gap ->
      List.iter (fun h -> Format.fprintf ppf "@   %a" Schedule.pp h) gap)
    r.gap
