open Core

(* Encode a total function Z_k^arity -> Z_k given by its value table
   (indexed by mixed-radix argument tuples) as a decision tree over
   Local 0 .. Local (arity-1). *)
let table_to_expr ~k ~arity table =
  let rec build arg lo hi =
    (* table slice [lo, hi) corresponds to fixed args 0..arg-1 *)
    if arg = arity then Expr.Ast.int table.(lo)
    else begin
      let width = (hi - lo) / k in
      let rec chain v =
        if v = k - 1 then build (arg + 1) (lo + (v * width)) (lo + ((v + 1) * width))
        else
          Expr.Ast.If
            ( Expr.Ast.Eq (Expr.Ast.Local arg, Expr.Ast.int v),
              build (arg + 1) (lo + (v * width)) (lo + ((v + 1) * width)),
              chain (v + 1) )
      in
      chain 0
    end
  in
  build 0 0 (Array.length table)

let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let all_functions ~k ~arity =
  let entries = pow k arity in
  if entries > 8 then invalid_arg "Universe.all_functions: too large";
  let count = pow k entries in
  List.init count (fun code ->
      let table =
        Array.init entries (fun pos -> code / pow k pos mod k)
      in
      table_to_expr ~k ~arity table)

let all_syntaxes ~fmt ~vars =
  let vars = Array.of_list vars in
  let nv = Array.length vars in
  let total = Array.fold_left ( + ) 0 fmt in
  if pow nv total > 4096 then invalid_arg "Universe.all_syntaxes: too large";
  List.init (pow nv total) (fun code ->
      let flat = Array.init total (fun pos -> vars.(code / pow nv pos mod nv)) in
      let accesses =
        let off = ref 0 in
        Array.map
          (fun m ->
            let tx = Array.sub flat !off m in
            off := !off + m;
            tx)
          fmt
      in
      Syntax.make accesses)

(* Lazy cartesian product of choice lists. *)
let rec product = function
  | [] -> Seq.return []
  | choices :: rest ->
    Seq.concat_map
      (fun tail -> Seq.map (fun c -> c :: tail) (List.to_seq choices))
      (product rest)

let all_semantics ~k syntax =
  let fmt = Syntax.format syntax in
  let slots =
    Array.to_list fmt
    |> List.concat_map (fun m -> List.init m (fun j -> j + 1))
  in
  let choices = List.map (fun arity -> all_functions ~k ~arity) slots in
  Seq.map
    (fun flat ->
      let flat = Array.of_list flat in
      let off = ref 0 in
      Array.map
        (fun m ->
          let tx = Array.sub flat !off m in
          off := !off + m;
          tx)
        fmt)
    (product choices)

let states ~k ~vars =
  let domains = List.map (fun v -> (v, Expr.Value.Int_range (0, k - 1))) vars in
  match State.enumerate domains with
  | Some l -> l
  | None -> assert false

let all_ics ~k ~vars =
  let space = states ~k ~vars in
  let n = List.length space in
  if n > 12 then invalid_arg "Universe.all_ics: state space too large";
  let count = pow 2 n in
  List.init (count - 1) (fun mask ->
      let mask = mask + 1 in  (* skip the empty subset *)
      let members =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) space
      in
      System.Sat
        ( Printf.sprintf "ic#%d" mask,
          fun g -> List.exists (State.equal g) members ))

let systems ~k ?syntaxes ~fmt ~vars () =
  let syntaxes =
    match syntaxes with Some s -> s | None -> all_syntaxes ~fmt ~vars
  in
  let probes = states ~k ~vars in
  let domains = List.map (fun v -> (v, Expr.Value.Int_range (0, k - 1))) vars in
  let ics = all_ics ~k ~vars in
  Seq.concat_map
    (fun syntax ->
      Seq.concat_map
        (fun interp ->
          Seq.filter_map
            (fun ic ->
              let sys = System.make ~domains ~ic syntax interp in
              if Exec.basic_assumption sys ~probes then Some sys else None)
            (List.to_seq ics))
        (all_semantics ~k syntax))
    (List.to_seq syntaxes)
