lib/optimality/universe.mli: Core Expr Names Seq State Syntax System
