lib/optimality/verify.ml: Core Exec Fixpoint Format List Schedule Seq Syntax Universe
