lib/optimality/verify.mli: Core Format Names Schedule Seq State Syntax System
