lib/optimality/universe.ml: Array Core Exec Expr List Printf Seq State Syntax System
