open Core

let lock_name v = v

(* First and last access position of each variable, in access order. *)
let usage accesses =
  let first = Hashtbl.create 8 and last = Hashtbl.create 8 in
  Array.iteri
    (fun j v ->
      if not (Hashtbl.mem first v) then Hashtbl.add first v j;
      Hashtbl.replace last v j)
    accesses;
  (first, last)

let transform_transaction i accesses =
  let m = Array.length accesses in
  if m = 0 then []
  else begin
    let first, last = usage accesses in
    (* the phase shift: position of the action triggering the last lock *)
    let phase_shift = Hashtbl.fold (fun _ j acc -> max j acc) first 0 in
    let steps = ref [] in
    let emit s = steps := s :: !steps in
    (* variables unlocked strictly before their own position rule fires:
       those whose last use precedes the phase shift, released in order
       of last use right after the final lock is taken *)
    let early_unlocks =
      Hashtbl.fold
        (fun v j acc -> if j < phase_shift then (j, v) :: acc else acc)
        last []
      |> List.sort (fun a b -> compare b a)
      (* descending last-use, matching Figure 2's unlock X before Y *)
    in
    for j = 0 to m - 1 do
      let v = accesses.(j) in
      if Hashtbl.find first v = j then emit (Locked.Lock (lock_name v));
      if j = phase_shift then
        List.iter (fun (_, w) -> emit (Locked.Unlock (lock_name w))) early_unlocks;
      emit (Locked.Action (Names.step i j));
      if j >= phase_shift then
        Hashtbl.iter
          (fun w j' -> if j' = j then emit (Locked.Unlock (lock_name w)))
          last
    done;
    List.rev !steps
  end

let policy = Policy.separable "2PL" transform_transaction

let apply = policy.Policy.apply
