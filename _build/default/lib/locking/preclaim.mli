open Core

(** Conservative (static, preclaiming) locking.

    Every lock is acquired before the first action, in a {e fixed global
    order} (variable names sorted); each lock is released right after
    its variable's last access. The policy is two-phase, hence correct,
    and — because all transactions acquire locks in the same total order
    — it can never deadlock: the progress-space geometry has an empty
    region [D] for every two-transaction system (property-tested).

    The price is concurrency lost {e before} a variable's first access:
    every lock is held from the transaction's start. Interestingly the
    output sets of preclaim and 2PL are incomparable in general —
    preclaim may release a variable earlier relative to the remaining
    actions (its unlock follows the last access directly, while 2PL must
    wait for its phase shift), so each policy passes schedules the other
    cannot. The benches report both counts as an ablation of the
    placement rule (DESIGN.md §5). *)

val transform_transaction : int -> Names.var array -> Locked.step list

val policy : Policy.t

val apply : Syntax.t -> Locked.t
