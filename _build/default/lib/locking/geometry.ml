open Core

type side = Below | Above

type rect = {
  x_lo : int;
  x_hi : int;
  y_lo : int;
  y_hi : int;
  lock : Locked.lock_var;
}

type t = {
  locked : Locked.t;
  l1 : int;
  l2 : int;
  rects : rect list;
  forbidden_grid : bool array array;  (** [(l1+1) x (l2+1)] *)
  safe_grid : bool array array;
  reach_grid : bool array array;
}

(* Inclusive progress intervals during which a transaction holds a lock:
   a lock at step index q is held after q+1 steps, until the matching
   unlock at index q' (held after p steps for p in [q+1, q']). *)
let hold_intervals (tx : Locked.transaction) x =
  let acc = ref [] in
  let open_at = ref None in
  Array.iteri
    (fun q s ->
      match s with
      | Locked.Lock y when String.equal x y -> open_at := Some (q + 1)
      | Locked.Unlock y when String.equal x y -> (
        match !open_at with
        | Some lo ->
          acc := (lo, q) :: !acc;
          open_at := None
        | None -> ())
      | Locked.Lock _ | Locked.Unlock _ | Locked.Action _ -> ())
    tx;
  List.rev !acc

let analyse locked =
  if Array.length locked.Locked.txs <> 2 then
    invalid_arg "Geometry.analyse: exactly two transactions required";
  let tx1 = locked.Locked.txs.(0) and tx2 = locked.Locked.txs.(1) in
  let l1 = Array.length tx1 and l2 = Array.length tx2 in
  let rects =
    List.concat_map
      (fun x ->
        List.concat_map
          (fun (x_lo, x_hi) ->
            List.map
              (fun (y_lo, y_hi) -> { x_lo; x_hi; y_lo; y_hi; lock = x })
              (hold_intervals tx2 x))
          (hold_intervals tx1 x))
      (Locked.lock_vars locked)
  in
  let forbidden_grid =
    Array.init (l1 + 1) (fun p1 ->
        Array.init (l2 + 1) (fun p2 ->
            List.exists
              (fun r ->
                r.x_lo <= p1 && p1 <= r.x_hi && r.y_lo <= p2 && p2 <= r.y_hi)
              rects))
  in
  let safe_grid = Array.make_matrix (l1 + 1) (l2 + 1) false in
  for p1 = l1 downto 0 do
    for p2 = l2 downto 0 do
      if not forbidden_grid.(p1).(p2) then
        safe_grid.(p1).(p2) <-
          (p1 = l1 && p2 = l2)
          || (p1 < l1 && safe_grid.(p1 + 1).(p2))
          || (p2 < l2 && safe_grid.(p1).(p2 + 1))
    done
  done;
  let reach_grid = Array.make_matrix (l1 + 1) (l2 + 1) false in
  for p1 = 0 to l1 do
    for p2 = 0 to l2 do
      if not forbidden_grid.(p1).(p2) then
        reach_grid.(p1).(p2) <-
          (p1 = 0 && p2 = 0)
          || (p1 > 0 && reach_grid.(p1 - 1).(p2))
          || (p2 > 0 && reach_grid.(p1).(p2 - 1))
    done
  done;
  { locked; l1; l2; rects; forbidden_grid; safe_grid; reach_grid }

let extent g = (g.l1, g.l2)
let blocks g = g.rects
let forbidden g (p1, p2) = g.forbidden_grid.(p1).(p2)
let safe g (p1, p2) = g.safe_grid.(p1).(p2)
let reachable g (p1, p2) = g.reach_grid.(p1).(p2)

let deadlock g (p1, p2) =
  g.reach_grid.(p1).(p2) && not g.safe_grid.(p1).(p2)

let deadlock_region g =
  let acc = ref [] in
  for p1 = g.l1 downto 0 do
    for p2 = g.l2 downto 0 do
      if deadlock g (p1, p2) then acc := (p1, p2) :: !acc
    done
  done;
  !acc

let has_deadlock g = deadlock_region g <> []

let path_of_interleaving il = Array.map (fun i -> i = 0) il

let path_points path =
  let x = ref 0 and y = ref 0 in
  (0, 0)
  :: Array.to_list
       (Array.map
          (fun right ->
            if right then incr x else incr y;
            (!x, !y))
          path)

let path_legal g path =
  List.for_all (fun p -> not (forbidden g p)) (path_points path)

let block_side g path r =
  if not (path_legal g path) then
    invalid_arg "Geometry.block_side: illegal path";
  let points = path_points path in
  match List.find_opt (fun (x, _) -> x = r.x_lo) points with
  | None -> invalid_arg "Geometry.block_side: path does not span the grid"
  | Some (_, y) ->
    if y < r.y_lo then Below
    else if y > r.y_hi then Above
    else invalid_arg "Geometry.block_side: path inside a block"

let sides g path = List.map (fun r -> (r, block_side g path r)) g.rects

let geometric_serializable g path =
  let data_vars = Syntax.vars g.locked.Locked.base in
  let data_sides =
    List.filter_map
      (fun (r, s) ->
        if List.mem r.lock data_vars then Some s else None)
      (sides g path)
  in
  match data_sides with
  | [] -> true
  | s :: rest -> List.for_all (( = ) s) rest

let elementary_moves g path =
  let len = Array.length path in
  let acc = ref [] in
  for k = 0 to len - 2 do
    if path.(k) <> path.(k + 1) then begin
      let p = Array.copy path in
      p.(k) <- path.(k + 1);
      p.(k + 1) <- path.(k);
      if path_legal g p then acc := p :: !acc
    end
  done;
  !acc

let homotopic g p1 p2 =
  if not (path_legal g p1 && path_legal g p2) then false
  else begin
    let visited = Hashtbl.create 256 in
    let queue = Queue.create () in
    Hashtbl.add visited p1 ();
    Queue.add p1 queue;
    let found = ref (p1 = p2) in
    while (not !found) && not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      List.iter
        (fun q ->
          if not (Hashtbl.mem visited q) then begin
            if q = p2 then found := true;
            Hashtbl.add visited q ();
            Queue.add q queue
          end)
        (elementary_moves g p)
    done;
    !found
  end

let serial_paths g =
  ( Array.init (g.l1 + g.l2) (fun k -> k < g.l1),
    Array.init (g.l1 + g.l2) (fun k -> k >= g.l2) )

let rects_overlap a b =
  a.x_lo <= b.x_hi && b.x_lo <= a.x_hi && a.y_lo <= b.y_hi && b.y_lo <= a.y_hi

let blocks_connected g =
  match g.rects with
  | [] | [ _ ] -> true
  | rects ->
    let n = List.length rects in
    let arr = Array.of_list rects in
    let graph = Digraph.create n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && rects_overlap arr.(i) arr.(j) then
          Digraph.add_edge graph i j
      done
    done;
    let comp = Digraph.undirected_components graph in
    Array.for_all (fun c -> c = comp.(0)) comp

let common_point g =
  match g.rects with
  | [] -> None
  | r :: rest ->
    let inter =
      List.fold_left
        (fun acc r' ->
          match acc with
          | None -> None
          | Some (xl, xh, yl, yh) ->
            let xl = max xl r'.x_lo and xh = min xh r'.x_hi in
            let yl = max yl r'.y_lo and yh = min yh r'.y_hi in
            if xl <= xh && yl <= yh then Some (xl, xh, yl, yh) else None)
        (Some (r.x_lo, r.x_hi, r.y_lo, r.y_hi))
        rest
    in
    Option.map (fun (xl, _, yl, _) -> (xl, yl)) inter
