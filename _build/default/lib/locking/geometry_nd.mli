
(** The progress-space geometry in arbitrary dimension.

    Section 5.3's pictures are two-dimensional, but the paper notes that
    "the exact condition for a correct locking policy is somewhat less
    trivial for high dimensional cases". This module lifts the grid
    analysis to [n] locked transactions: points are progress vectors,
    the forbidden region is where two transactions hold the same lock,
    and safety/reachability/deadlock are computed by dynamic programming
    over the product grid (sizes multiply — keep the systems small).

    Cross-validated against the 2-D {!Geometry} on two-transaction
    systems and against {!Locked.legal} on interleavings (tests); used
    to exhibit the three-way cyclic deadlock that no pairwise analysis
    sees. *)

type t

val analyse : Locked.t -> t
(** Raises [Invalid_argument] if the grid would exceed 2 million
    points. *)

val dims : t -> int array
(** The locked transaction lengths [L_1 .. L_n]. *)

val forbidden : t -> int array -> bool
val safe : t -> int array -> bool
(** The final corner is reachable from here by monotone moves avoiding
    the forbidden region. *)

val reachable : t -> int array -> bool
val deadlock : t -> int array -> bool
val deadlock_points : t -> int array list
val has_deadlock : t -> bool

val path_of_interleaving : t -> int array -> int array list
(** The lattice points a locked interleaving visits, origin first. *)

val interleaving_legal : t -> int array -> bool
(** Geometric legality: agrees with {!Locked.legal} (tested). *)
