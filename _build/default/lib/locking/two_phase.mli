open Core

(** The two-phase locking policy 2PL of [Eswaran et al. 76] (§5.2).

    For each transaction: associate the lock bit [X] with every accessed
    variable [x]; insert [lock X] immediately before the first access of
    [x]; insert [unlock X] as early as possible subject to the two-phase
    rule (no lock after the first unlock). The canonical placement
    reproduces Figure 2: once the last [lock] has been emitted, all
    variables whose last access has already happened are unlocked right
    away (before the next action), and every other variable is unlocked
    immediately after its last access. *)

val lock_name : Names.var -> Locked.lock_var
(** The lock bit associated with a variable (here: the same name —
    "X is the lock-bit of x"). *)

val transform_transaction : int -> Names.var array -> Locked.step list
(** The per-transaction (separable) transformation for transaction [i];
    exposed for reuse by 2PL′ and for the Figure 2 bench. *)

val policy : Policy.t
(** The 2PL policy. *)

val apply : Syntax.t -> Locked.t
