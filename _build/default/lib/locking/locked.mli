open Core

(** Locked transaction systems (Section 5.1).

    A locking policy maps a transaction system [T] into a locked system
    [L(T)]: the same action steps with [lock X] / [unlock X] steps
    inserted. Locking variables have domain [{0, 1, -1}] with the fixed
    interpretations

    - [lock X]:   [X := if X = 0 then 1 else -1]
    - [unlock X]: [X := if X = 1 then 0 else -1]

    and the integrity constraint of [L(T)] is just [∀X. X = 0] — all the
    cleverness lives in the policy. A sequence of locked steps is
    {b legal} when no lock variable ever reaches [-1] and all are [0] at
    the end. *)

type lock_var = string

type step =
  | Lock of lock_var
  | Unlock of lock_var
  | Action of Names.step_id
      (** An original step of the base system (its id in [T]). *)

type transaction = step array

type t = {
  base : Syntax.t;  (** the original system's syntax *)
  txs : transaction array;
}

val make : Syntax.t -> step list list -> t
(** Checks that transaction [i]'s [Action]s are exactly the base steps
    [(i,0) .. (i,m_i-1)] in order, and that lock/unlock steps are
    balanced per transaction (each [Unlock X] matches an earlier
    unmatched [Lock X]; none left open at the end — each transaction is
    individually legal). Raises [Invalid_argument] otherwise. *)

val lock_vars : t -> lock_var list
(** All lock variables, sorted. *)

val format : t -> int array
(** Lengths of the locked transactions (lock steps included). *)

val is_two_phase : t -> bool
(** No [Lock] after the first [Unlock], in any transaction. *)

val is_well_formed : t -> bool
(** Every action on base variable [v] is performed while holding the
    lock variable [v] (the lock bit of the same name) — §5.3's
    assumption for the geometric serializability criterion. Lock
    variables with other names are ignored. *)

val holds_after : transaction -> lock_var -> int -> bool
(** [holds_after tx x p]: after executing the first [p] steps of the
    locked transaction, is [X] held? *)

val step_of : t -> int -> int -> step
(** [step_of l i p] is the [p]-th step of locked transaction [i]. *)

(** {1 Legality of locked schedules}

    A locked schedule is an interleaving of the locked transactions,
    represented as an [int array] of transaction indices (entry [k] =
    which transaction performs its next locked step at position [k]). *)

val legal : t -> int array -> bool
(** No lock error and every lock free at the end. *)

val legal_prefix : t -> int array -> bool
(** No lock error in the (possibly partial) interleaving. *)

val project : t -> int array -> Schedule.t
(** Erase lock steps, keep the base schedule (§5.2's comparison with
    ordinary schedulers). *)

val all_legal : t -> int array list
(** Every legal complete locked interleaving. Exponential; small systems
    only (guarded like {!Combin.Interleave.all}). *)

val outputs : t -> Schedule.t list
(** The performance set of the policy: projections of all legal locked
    schedules, deduplicated, in first-seen order. *)

val can_output : t -> Schedule.t -> bool
(** Membership of a base schedule in {!outputs} without enumerating all
    interleavings: a memoized reachability search over (per-transaction
    progress, matched prefix of [h], lock state). This is §5.2's
    performance set for the policy. *)

val passes : t -> Schedule.t -> bool
(** Zero-delay passability of a base schedule through the {e greedy}
    lock-respecting scheduler: actions are granted in the order of [h];
    before an action, its transaction's pending steps up to that action
    run in order (a failing [Lock] = not passable), and after an action
    the immediately following [Unlock] steps are released eagerly.
    [passes l h] implies [can_output l h]; the converse can fail, because
    a real scheduler only reaches the lock steps between two actions when
    the second action is requested, whereas {!can_output} may schedule
    them earlier. Both notions are reported in the benches. *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
(** One transaction per block, one step per line, as in Figures 2/5. *)
