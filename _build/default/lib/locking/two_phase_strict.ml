open Core

let transform_transaction i accesses =
  let m = Array.length accesses in
  if m = 0 then []
  else begin
    let first = Hashtbl.create 8 in
    Array.iteri
      (fun j v -> if not (Hashtbl.mem first v) then Hashtbl.add first v j)
      accesses;
    let body =
      List.concat
        (List.init m (fun j ->
             let v = accesses.(j) in
             let pre =
               if Hashtbl.find first v = j then
                 [ Locked.Lock (Two_phase.lock_name v) ]
               else []
             in
             pre @ [ Locked.Action (Names.step i j) ]))
    in
    let unlocks =
      Hashtbl.fold (fun v _ acc -> v :: acc) first []
      |> List.sort String.compare
      |> List.map (fun v -> Locked.Unlock (Two_phase.lock_name v))
    in
    body @ unlocks
  end

let policy = Policy.separable "strict-2PL" transform_transaction

let apply = policy.Policy.apply
