open Core

(** Locking policies (Section 5.1).

    A locking policy maps a transaction system's syntax to a locked
    transaction system. A policy is {b separable} when it transforms one
    transaction at a time, using no information about the others —
    2PL and 2PL′ are separable; the single-mutex policy trivially so;
    tree locking is separable but assumes structured (hierarchical)
    variables, which is exactly how it escapes 2PL's optimality
    (§5.4). *)

type t = {
  name : string;
  apply : Syntax.t -> Locked.t;
}

val separable : string -> (int -> Names.var array -> Locked.step list) -> t
(** [separable name f] builds a policy from a per-transaction
    transformation: [f i accesses] returns the locked step list of
    transaction [i] given its access list. *)

val correct_2d : t -> Syntax.t -> bool
(** Empirical correctness on a two-transaction system: every legal
    locked schedule projects to a conflict-serializable base schedule.
    Exhaustive; small systems only. *)

val correct_exhaustive : t -> Syntax.t -> bool
(** Same check for any (small) number of transactions. *)

val output_count : t -> Syntax.t -> int
(** |outputs| — the §5.2 performance measure. *)

val dominates : t -> t -> Syntax.t -> bool
(** [dominates p q s]: every schedule output by [q] is output by [p]
    (and the policies are thus comparable on [s]). *)

val strictly_better : t -> t -> Syntax.t -> bool
(** [dominates p q s] and some schedule separates them. *)
