open Core

(** Tree locking in the style of [Silberschatz and Kedem 78] (§5.4).

    Assumes a {e hierarchical} database: the variables form a rooted
    tree. A transaction locks the minimal connected subtree spanning its
    accesses, acquiring locks in preorder (so a node's parent is always
    held when the node is locked) and releasing each node as soon as it
    is no longer needed — after the lock phase for unaccessed connector
    nodes, after the last access for accessed ones. The resulting
    policy is {e not} two-phase, yet correct; it beats 2PL on
    tree-structured workloads precisely because it uses the structure of
    the variables — the loophole §5.4 identifies in 2PL's optimality,
    which only quantifies over policies that are correct under arbitrary
    renamings of {e unstructured} variables.

    The placement "crabs" down the tree: a node is locked just before
    the first action touching its subtree (so its parent, whose anchor
    is no later, is still held), and unlocked right after the last of
    its own accesses and its children's lock anchors. Sibling subtrees
    worked on in sequence therefore produce unlock-then-lock patterns —
    the policy is not two-phase, yet correct. *)

type hierarchy = (Names.var * Names.var) list
(** [(child, parent)] pairs; variables absent as children are roots.
    Must be acyclic. *)

val policy : hierarchy -> Policy.t
(** Raises [Invalid_argument] (at application time) if a transaction's
    accesses do not lie in a single tree of the forest, or if the
    hierarchy has a cycle. *)

val apply : hierarchy -> Syntax.t -> Locked.t

val path_to_root : hierarchy -> Names.var -> Names.var list
(** The chain [v; parent v; ...; root]. *)

val spanning_subtree : hierarchy -> Names.var list -> Names.var list
(** The minimal connected subtree containing the given variables, in
    preorder (ancestors before descendants). The subtree is rooted at
    the deepest common ancestor. *)
