open Core

(** The 2PL′ policy of Section 5.4 — the witness that 2PL is not optimal
    among separable locking policies.

    Given a distinguished variable [x], 2PL′ transforms each transaction
    as follows (Figure 5):

    + apply 2PL to all variables except [x]; [x] itself gets [lock X]
      before its first access but is released {e early}: [unlock X]
      right after its last access — a two-phase violation that is
      repaired by an auxiliary lock [X′];
    + after the first access of [x], insert the pair [lock X′; unlock X′];
    + after the last access of [x], insert [lock X′] and then [unlock X];
    + after the last lock step of the transaction, insert [unlock X′].

    The policy is correct and separable, and strictly better than 2PL in
    performance on systems where [x]'s early release enables extra
    interleavings — but it singles out [x], so it does not contradict
    2PL's optimality over {e unstructured} variables. *)

val aux_lock : Names.var -> Locked.lock_var
(** The auxiliary lock name [X′] for the distinguished variable. *)

val transform_transaction : distinguished:Names.var -> int -> Names.var array -> Locked.step list

val policy : distinguished:Names.var -> Policy.t

val apply : distinguished:Names.var -> Syntax.t -> Locked.t
