(** ASCII rendering of the progress-space geometry — the pictures of
    Figures 3 and 4 in text form.

    Conventions: the horizontal axis is transaction 1's progress, the
    vertical axis transaction 2's (origin at the bottom-left, like the
    paper). Cell glyphs: ['#'] forbidden (inside a block), ['D'] the
    deadlock region, ['*'] a point on the rendered path, ['o'] the
    origin, ['F'] the final point, ['.'] anything else. *)

val grid : ?path:bool array -> Geometry.t -> string
(** The lattice as text, one row per [p2] value (top = [L2]). *)

val axis_legend : Locked.t -> string
(** Numbered step listings for both transactions, to label the axes. *)

val side_summary : Geometry.t -> bool array -> string
(** One line per block: its lock variable, extent, and the side the
    path passes it on. *)

val figure : ?path:bool array -> Locked.t -> string
(** [axis_legend] + [grid] + deadlock summary: a full Figure-3-style
    panel for a two-transaction locked system. *)
