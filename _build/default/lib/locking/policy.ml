open Core

type t = {
  name : string;
  apply : Syntax.t -> Locked.t;
}

let separable name f =
  let apply syntax =
    let n = Syntax.n_transactions syntax in
    let txs =
      List.init n (fun i ->
          let accesses =
            Array.init (Syntax.length syntax i) (fun j ->
                Syntax.var syntax (Names.step i j))
          in
          f i accesses)
    in
    Locked.make syntax txs
  in
  { name; apply }

let correct_exhaustive p syntax =
  let l = p.apply syntax in
  List.for_all (Conflict.serializable syntax) (Locked.outputs l)

let correct_2d p syntax =
  if Syntax.n_transactions syntax <> 2 then
    invalid_arg "Policy.correct_2d: expects two transactions";
  correct_exhaustive p syntax

let output_count p syntax = List.length (Locked.outputs (p.apply syntax))

let subset a b =
  List.for_all (fun h -> List.exists (Schedule.equal h) b) a

let dominates p q syntax =
  subset (Locked.outputs (q.apply syntax)) (Locked.outputs (p.apply syntax))

let strictly_better p q syntax =
  let op = Locked.outputs (p.apply syntax) in
  let oq = Locked.outputs (q.apply syntax) in
  subset oq op && not (subset op oq)
