open Core

let aux_lock v = v ^ "'"

let transform_transaction ~distinguished i accesses =
  let uses_x = Array.exists (String.equal distinguished) accesses in
  if not uses_x then Two_phase.transform_transaction i accesses
  else begin
    let m = Array.length accesses in
    let first = Hashtbl.create 8 and last = Hashtbl.create 8 in
    Array.iteri
      (fun j v ->
        if not (Hashtbl.mem first v) then Hashtbl.add first v j;
        Hashtbl.replace last v j)
      accesses;
    let x = distinguished in
    let xl = Two_phase.lock_name x in
    let x' = aux_lock x in
    (* Stages 1-3: actions with lock insertions and the X' protocol. *)
    let stage =
      List.concat
        (List.init m (fun j ->
             let v = accesses.(j) in
             let pre =
               if Hashtbl.find first v = j then
                 [ Locked.Lock (Two_phase.lock_name v) ]
               else []
             in
             let post_first =
               if String.equal v x && Hashtbl.find first x = j then
                 [ Locked.Lock x'; Locked.Unlock x' ]
               else []
             in
             let post_last =
               if String.equal v x && Hashtbl.find last x = j then
                 [ Locked.Lock x'; Locked.Unlock xl ]
               else []
             in
             pre @ (Locked.Action (Names.step i j) :: post_first) @ post_last))
    in
    let seq = Array.of_list stage in
    let len = Array.length seq in
    (* locks_remaining.(k) = does a Lock occur at position >= k? *)
    let locks_remaining = Array.make (len + 1) false in
    for k = len - 1 downto 0 do
      locks_remaining.(k) <-
        locks_remaining.(k + 1)
        || (match seq.(k) with Locked.Lock _ -> true | _ -> false)
    done;
    (* Pass 2: emit, inserting two-phase unlocks for non-x variables and
       the final unlock of X' once no lock lies ahead. *)
    let out = ref [] in
    let emit s = out := s :: !out in
    let unlocked = Hashtbl.create 8 in
    let x'_held = ref false in
    let x'_released = ref false in
    let actions_done = ref (-1) in
    let pending_unlocks () =
      Hashtbl.fold
        (fun v j acc ->
          if
            (not (String.equal v x))
            && (not (Hashtbl.mem unlocked v))
            && j <= !actions_done
          then (j, v) :: acc
          else acc)
        last []
      |> List.sort (fun a b -> compare b a)
    in
    Array.iteri
      (fun k s ->
        emit s;
        (match s with
        | Locked.Action id -> actions_done := id.Names.idx
        | Locked.Lock l when String.equal l x' -> x'_held := true
        | Locked.Unlock l when String.equal l x' -> x'_held := false
        | Locked.Lock _ | Locked.Unlock _ -> ());
        if not locks_remaining.(k + 1) then begin
          List.iter
            (fun (_, v) ->
              Hashtbl.add unlocked v ();
              emit (Locked.Unlock (Two_phase.lock_name v)))
            (pending_unlocks ());
          if !x'_held && not !x'_released then begin
            x'_released := true;
            emit (Locked.Unlock x')
          end
        end)
      seq;
    List.rev !out
  end

let policy ~distinguished =
  Policy.separable
    ("2PL'(" ^ distinguished ^ ")")
    (transform_transaction ~distinguished)

let apply ~distinguished syntax = (policy ~distinguished).Policy.apply syntax
