open Core

(** Strict two-phase locking: every lock is held until the transaction
    ends (all unlocks after the last action).

    This is the variant real systems deploy, because holding write locks
    to the end is what makes histories {e strict} — recoverable without
    cascading aborts (see {!Core.Recovery}); the paper points at exactly
    this trade-off when it lists recovery [Gray 78] among the reasons a
    scheduler may be kept at an imperfect information level. The price
    relative to canonical 2PL is the early releases it gives up: its
    output set is contained in 2PL's (tested), and strictly so whenever
    some variable's last use precedes another's first use. *)

val transform_transaction : int -> Names.var array -> Locked.step list

val policy : Policy.t

val apply : Syntax.t -> Locked.t
