lib/locking/two_phase.ml: Array Core Hashtbl List Locked Names Policy
