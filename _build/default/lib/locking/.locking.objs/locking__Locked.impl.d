lib/locking/locked.ml: Array Combin Core Format Hashtbl List Map Names Printf Schedule Set String Syntax
