lib/locking/locked.mli: Core Format Names Schedule Syntax
