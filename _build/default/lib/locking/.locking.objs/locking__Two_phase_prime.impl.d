lib/locking/two_phase_prime.ml: Array Core Hashtbl List Locked Names Policy String Two_phase
