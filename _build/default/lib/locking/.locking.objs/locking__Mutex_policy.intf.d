lib/locking/mutex_policy.mli: Core Locked Names Policy Syntax
