lib/locking/render.mli: Geometry Locked
