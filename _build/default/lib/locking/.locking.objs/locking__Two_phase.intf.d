lib/locking/two_phase.mli: Core Locked Names Policy Syntax
