lib/locking/rw_lock.ml: Array Combin Core Format Hashtbl List Names Rw_model String
