lib/locking/policy.ml: Array Conflict Core List Locked Names Schedule Syntax
