lib/locking/geometry.ml: Array Core Digraph Hashtbl List Locked Option Queue String Syntax
