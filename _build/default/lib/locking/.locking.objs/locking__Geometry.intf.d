lib/locking/geometry.mli: Locked
