lib/locking/rw_lock.mli: Core Format Names Rw_model
