lib/locking/two_phase_prime.mli: Core Locked Names Policy Syntax
