lib/locking/policy.mli: Core Locked Names Syntax
