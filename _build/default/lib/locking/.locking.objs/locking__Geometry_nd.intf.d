lib/locking/geometry_nd.mli: Locked
