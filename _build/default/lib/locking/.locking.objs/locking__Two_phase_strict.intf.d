lib/locking/two_phase_strict.mli: Core Locked Names Policy Syntax
