lib/locking/render.ml: Array Buffer Format Geometry List Locked Printf String
