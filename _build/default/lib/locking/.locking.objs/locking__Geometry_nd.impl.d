lib/locking/geometry_nd.ml: Array List Locked
