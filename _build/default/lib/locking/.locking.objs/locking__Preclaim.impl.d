lib/locking/preclaim.ml: Array Core Hashtbl List Locked Names Policy String Two_phase
