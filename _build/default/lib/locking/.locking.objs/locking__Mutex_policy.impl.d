lib/locking/mutex_policy.ml: Array Core List Locked Names Policy
