lib/locking/two_phase_strict.ml: Array Core Hashtbl List Locked Names Policy String Two_phase
