lib/locking/tree_lock.ml: Array Core Hashtbl Int List Locked Names Option Policy String
