lib/locking/preclaim.mli: Core Locked Names Policy Syntax
