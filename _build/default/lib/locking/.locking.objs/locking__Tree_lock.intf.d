lib/locking/tree_lock.mli: Core Locked Names Policy Syntax
