open Core

(* The strawman scheduler of the introduction, phrased as a locking
   policy: one global mutex around every transaction. Correct with no
   information beyond the format, and exactly as slow as Theorem 2
   predicts: its outputs are the serial schedules. *)

let mutex = "#mutex"

let transform_transaction i accesses =
  let m = Array.length accesses in
  if m = 0 then []
  else
    (Locked.Lock mutex
     :: List.init m (fun j -> Locked.Action (Names.step i j)))
    @ [ Locked.Unlock mutex ]

let policy = Policy.separable "mutex" transform_transaction
let apply = policy.Policy.apply
