open Core

(** Two-phase locking with shared/exclusive modes, for the read/write
    step model (the [Eswaran et al. 76] setting the paper builds on).

    In the refined model of {!Core.Rw_model} a read only needs a
    {e shared} lock — concurrent readers are compatible — while a write
    needs an {e exclusive} one. This module implements:

    - the mode lattice and compatibility matrix;
    - the RW-2PL transformation of a transaction's action list into a
      locked program (shared lock before the first read, upgrade to
      exclusive before the first write, all releases after the last
      acquisition — two-phase);
    - a lock-table simulation deciding which interleaved histories the
      locked programs admit, and the zero-delay ([passes]) check;
    - the classical correctness theorem, checked here empirically:
      every admitted history is conflict-serializable.

    The gain over exclusive-only locking is measured in bench X2:
    read-heavy workloads admit strictly more histories because readers
    no longer exclude each other. *)

type mode = Shared | Exclusive

val compatible : mode -> mode -> bool
(** [compatible held requested] — only [Shared]/[Shared]. *)

type step =
  | Acquire of Names.var * mode
  | Release of Names.var
  | Do of Rw_model.step

type program = step array

val transform : int -> Rw_model.action list -> program
(** RW-2PL for one transaction: acquire just before first use at the
    strongest mode ever needed from that point on is {e not} assumed —
    instead the lock is taken [Shared] at the first read and {e
    upgraded} in place to [Exclusive] at the first write (if any);
    releases come after the transaction's last acquisition, each right
    after the variable's last access (two-phase). *)

val programs : Rw_model.action list list -> program array
(** Transform every transaction. *)

val legal : program array -> int array -> bool
(** Is an interleaving of the locked programs admitted by the lock
    table? (No incompatible grant; upgrades wait for other sharers.) *)

val project : program array -> int array -> Rw_model.history
(** Erase lock steps. *)

val outputs : program array -> Rw_model.history list
(** All projections of admitted interleavings, deduplicated. Small
    systems only. *)

val passes : program array -> Rw_model.history -> bool
(** Zero-delay admission of a history: locks acquired just in time
    before each action, releases eager, like {!Locked.passes}. *)

val is_two_phase : program -> bool

val exclusive_only : int -> Rw_model.action list -> program
(** The same placement but every lock exclusive — the baseline showing
    what mode-awareness buys. *)

val pp_step : Format.formatter -> step -> unit
val pp_program : Format.formatter -> program -> unit
