(** The geometry of locking (Section 5.3, Figures 3 and 4).

    For a locked system of {e two} transactions, any joint state of
    progress is a lattice point [(p1, p2)] with [0 ≤ p_i ≤ L_i] ([p_i] =
    locked steps of [T_{i+1}] already executed). Locking forbids the
    rectangular regions where both transactions would hold the same lock
    ("blocks"). A schedule is a monotone staircase path from the origin
    [O = (0,0)] to [F = (L1, L2)]; it is legal iff it avoids every
    forbidden point.

    The module computes the forbidden blocks, the safe/unsafe/deadlock
    regions (region [D] of Figure 3), the side a path passes each block
    on, the homotopy (elementary-transformation) relation of Figure 4(b),
    and the geometric serializability and policy-correctness criteria of
    Figures 4(c) and 4(d). *)

type t
(** The analysed progress space of a two-transaction locked system. *)

type side = Below | Above
(** [Below]: the path passes on [T1]'s side (T1 clears the block first —
    right-then-up); [Above]: on [T2]'s side. *)

type rect = {
  x_lo : int;
  x_hi : int;  (** inclusive progress interval of T1 holding the lock *)
  y_lo : int;
  y_hi : int;  (** inclusive progress interval of T2 holding the lock *)
  lock : Locked.lock_var;
}

val analyse : Locked.t -> t
(** Requires exactly two locked transactions. *)

val extent : t -> int * int
(** [(L1, L2)]. *)

val blocks : t -> rect list
(** All forbidden rectangles (one per lock variable and pair of hold
    intervals), in deterministic order. *)

val forbidden : t -> int * int -> bool

val safe : t -> int * int -> bool
(** From this point, [F] is reachable by a monotone path avoiding all
    blocks. *)

val reachable : t -> int * int -> bool
(** The point is reachable from [O] by a monotone legal path. *)

val deadlock : t -> int * int -> bool
(** The point is in region [D]: reachable, not forbidden, but [F] cannot
    be reached any more. *)

val deadlock_region : t -> (int * int) list

val has_deadlock : t -> bool

(** {1 Paths}

    A path is the move sequence of a locked interleaving: entry [k] is
    the transaction (0 or 1) moving at position [k]. *)

val path_of_interleaving : int array -> bool array
(** [true] = move right (T1). *)

val path_points : bool array -> (int * int) list
(** All lattice points visited, origin first. *)

val path_legal : t -> bool array -> bool
(** Avoids every forbidden point. Agrees with {!Locked.legal} (tested). *)

val block_side : t -> bool array -> rect -> side
(** Which side a legal complete path passes a block on. Raises
    [Invalid_argument] on an illegal path. *)

val sides : t -> bool array -> (rect * side) list

val geometric_serializable : t -> bool array -> bool
(** Figure 4(c)'s criterion: the projected schedule is serializable iff
    the path does {e not} separate the data blocks — all blocks whose
    lock variable is a base variable of the system lie on the same side.
    (Requires the locked system to be well-formed; agrees with
    {!Conflict.serializable} on projections — tested.) *)

val elementary_moves : t -> bool array -> bool array list
(** All legal paths obtained by one elementary transformation
    (transposing two adjacent opposite moves, Figure 4(b)). *)

val homotopic : t -> bool array -> bool array -> bool
(** Connected by a chain of elementary transformations through legal
    paths. BFS over paths; small grids only. *)

val serial_paths : t -> bool array * bool array
(** The two boundary paths [O P1 F] (all of T1 then T2) and [O P2 F]. *)

val blocks_connected : t -> bool
(** Figure 4(d)'s policy-correctness criterion: the union of blocks is
    connected (as overlapping-or-touching rectangles), so no legal path
    can separate them. 2PL guarantees it via the common phase-shift
    point [u]. *)

val common_point : t -> (int * int) option
(** A point contained in {e every} block, if one exists — 2PL's point
    [u] whose coordinates are the two phase shifts. *)
