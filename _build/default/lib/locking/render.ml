let grid ?path g =
  let l1, l2 = Geometry.extent g in
  let on_path =
    match path with
    | None -> fun _ -> false
    | Some p ->
      let pts = Geometry.path_points p in
      fun q -> List.mem q pts
  in
  let buf = Buffer.create ((l1 + 2) * (l2 + 1)) in
  for p2 = l2 downto 0 do
    for p1 = 0 to l1 do
      let c =
        if Geometry.forbidden g (p1, p2) then '#'
        else if on_path (p1, p2) then if p1 = 0 && p2 = 0 then 'o' else '*'
        else if p1 = 0 && p2 = 0 then 'o'
        else if p1 = l1 && p2 = l2 then 'F'
        else if Geometry.deadlock g (p1, p2) then 'D'
        else '.'
      in
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let axis_legend locked =
  let tx_line i (tx : Locked.transaction) =
    let steps =
      Array.to_list tx
      |> List.map (fun s -> Format.asprintf "%a" Locked.pp_step s)
    in
    Printf.sprintf "T%d (axis %s): %s" (i + 1)
      (if i = 0 then "->" else "^")
      (String.concat " | " steps)
  in
  String.concat "\n"
    (Array.to_list (Array.mapi tx_line locked.Locked.txs))

let side_summary g path =
  let line (r, s) =
    Printf.sprintf "block %-6s x:[%d..%d] y:[%d..%d]  side: %s"
      r.Geometry.lock r.Geometry.x_lo r.Geometry.x_hi r.Geometry.y_lo
      r.Geometry.y_hi
      (match s with Geometry.Below -> "below (T1 first)" | Geometry.Above -> "above (T2 first)")
  in
  String.concat "\n" (List.map line (Geometry.sides g path))

let figure ?path locked =
  let g = Geometry.analyse locked in
  let dead = Geometry.deadlock_region g in
  String.concat "\n"
    [
      axis_legend locked;
      "";
      grid ?path g;
      (match dead with
      | [] -> "no deadlock region"
      | pts ->
        Printf.sprintf "deadlock region D: %d point(s) %s" (List.length pts)
          (String.concat " "
             (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) pts)));
    ]
