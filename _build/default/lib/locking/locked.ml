open Core

type lock_var = string

type step =
  | Lock of lock_var
  | Unlock of lock_var
  | Action of Names.step_id

type transaction = step array

type t = {
  base : Syntax.t;
  txs : transaction array;
}

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let validate_transaction base i (tx : step array) =
  let expected = Syntax.length base i in
  let next_action = ref 0 in
  let held = ref Sset.empty in
  Array.iter
    (fun s ->
      match s with
      | Action id ->
        if id.Names.tx <> i || id.Names.idx <> !next_action then
          invalid_arg
            (Printf.sprintf
               "Locked.make: transaction %d: actions out of order at %s"
               (i + 1) (Names.step_to_string id));
        incr next_action
      | Lock x ->
        if Sset.mem x !held then
          invalid_arg
            (Printf.sprintf "Locked.make: transaction %d re-locks %s" (i + 1) x);
        held := Sset.add x !held
      | Unlock x ->
        if not (Sset.mem x !held) then
          invalid_arg
            (Printf.sprintf
               "Locked.make: transaction %d unlocks %s without holding it"
               (i + 1) x);
        held := Sset.remove x !held)
    tx;
  if !next_action <> expected then
    invalid_arg
      (Printf.sprintf "Locked.make: transaction %d has %d of %d actions"
         (i + 1) !next_action expected);
  if not (Sset.is_empty !held) then
    invalid_arg
      (Printf.sprintf "Locked.make: transaction %d ends holding %s" (i + 1)
         (String.concat "," (Sset.elements !held)))

let make base txs =
  let txs = Array.of_list (List.map Array.of_list txs) in
  if Array.length txs <> Syntax.n_transactions base then
    invalid_arg "Locked.make: transaction count mismatch";
  Array.iteri (validate_transaction base) txs;
  { base; txs }

let lock_vars l =
  Array.fold_left
    (fun acc tx ->
      Array.fold_left
        (fun acc s ->
          match s with
          | Lock x | Unlock x -> Sset.add x acc
          | Action _ -> acc)
        acc tx)
    Sset.empty l.txs
  |> Sset.elements

let format l = Array.map Array.length l.txs

let is_two_phase l =
  Array.for_all
    (fun tx ->
      let unlocked = ref false in
      Array.for_all
        (fun s ->
          match s with
          | Unlock _ ->
            unlocked := true;
            true
          | Lock _ -> not !unlocked
          | Action _ -> true)
        tx)
    l.txs

let is_well_formed l =
  Array.for_all
    (fun tx ->
      let held = ref Sset.empty in
      Array.for_all
        (fun s ->
          match s with
          | Lock x ->
            held := Sset.add x !held;
            true
          | Unlock x ->
            held := Sset.remove x !held;
            true
          | Action id -> Sset.mem (Syntax.var l.base id) !held)
        tx)
    l.txs

let holds_after tx x p =
  let held = ref false in
  for q = 0 to p - 1 do
    match tx.(q) with
    | Lock y when String.equal x y -> held := true
    | Unlock y when String.equal x y -> held := false
    | Lock _ | Unlock _ | Action _ -> ()
  done;
  !held

let step_of l i p = l.txs.(i).(p)

(* Lock-state machine shared by the legality checks. *)
let try_step held s =
  match s with
  | Lock x -> if Sset.mem x held then None else Some (Sset.add x held)
  | Unlock x -> if Sset.mem x held then Some (Sset.remove x held) else None
  | Action _ -> Some held
(* [Unlock x] when no one holds x is a -1 error in the paper's semantics;
   per-transaction validation in [make] already rules out unlocking a
   lock the transaction does not hold, and here the global set contains
   every held lock, so membership is the right test. *)

let scan l il =
  (* returns (ok, final held set) for a prefix interleaving *)
  let n = Array.length l.txs in
  let progress = Array.make n 0 in
  let held = ref Sset.empty in
  let ok = ref true in
  Array.iter
    (fun i ->
      if !ok then begin
        if i < 0 || i >= n || progress.(i) >= Array.length l.txs.(i) then
          ok := false
        else
          match try_step !held l.txs.(i).(progress.(i)) with
          | Some held' ->
            held := held';
            progress.(i) <- progress.(i) + 1
          | None -> ok := false
      end)
    il;
  (!ok, !held, progress)

let legal_prefix l il =
  let ok, _, _ = scan l il in
  ok

let legal l il =
  let ok, held, progress = scan l il in
  ok && Sset.is_empty held
  && Array.for_all2 (fun p tx -> p = Array.length tx) progress l.txs

let project l il =
  let n = Array.length l.txs in
  let progress = Array.make n 0 in
  let actions = ref [] in
  Array.iter
    (fun i ->
      (match l.txs.(i).(progress.(i)) with
      | Action id -> actions := id :: !actions
      | Lock _ | Unlock _ -> ());
      progress.(i) <- progress.(i) + 1)
    il;
  Array.of_list (List.rev !actions)

let all_legal l =
  List.filter (legal l) (Combin.Interleave.all (format l))

let outputs l =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun il ->
      let h = project l il in
      if Hashtbl.mem seen h then None
      else begin
        Hashtbl.add seen h ();
        Some h
      end)
    (all_legal l)

(* Reachability search for can_output: state = (progress vector, number
   of actions of h already matched, held set). Depth-first with
   memoization on (progress, held) — the matched count is determined by
   the progress vector, so it need not be part of the key. *)
let can_output l h =
  let n = Array.length l.txs in
  if not (Schedule.is_schedule_of (Syntax.format l.base) h) then false
  else begin
    let len = Array.length h in
    let visited = Hashtbl.create 256 in
    let rec go progress matched held =
      if matched = len
         && Array.for_all2
              (fun p (tx : transaction) -> p = Array.length tx)
              progress l.txs
         && Sset.is_empty held
      then true
      else begin
        let key = (Array.to_list progress, Sset.elements held) in
        if Hashtbl.mem visited key then false
        else begin
          Hashtbl.add visited key ();
          let try_tx i =
            let p = progress.(i) in
            if p >= Array.length l.txs.(i) then false
            else
              let s = l.txs.(i).(p) in
              let step_ok =
                match s with
                | Action id -> matched < len && Names.equal_step id h.(matched)
                | Lock _ | Unlock _ -> true
              in
              step_ok
              &&
              match try_step held s with
              | None -> false
              | Some held' ->
                let progress' = Array.copy progress in
                progress'.(i) <- p + 1;
                let matched' =
                  match s with
                  | Action _ -> matched + 1
                  | Lock _ | Unlock _ -> matched
                in
                go progress' matched' held'
          in
          let rec any i = i < n && (try_tx i || any (i + 1)) in
          any 0
        end
      end
    in
    go (Array.make n 0) 0 Sset.empty
  end

(* Greedy lock-respecting scheduler: for each action in h order, run its
   transaction's pending segment (locks fail => not passable), then the
   action, then eagerly release the following unlock run. *)
let passes l h =
  if not (Schedule.is_schedule_of (Syntax.format l.base) h) then false
  else begin
    let n = Array.length l.txs in
    let progress = Array.make n 0 in
    let held = ref Sset.empty in
    let ok = ref true in
    let exec i s =
      match try_step !held s with
      | Some held' ->
        held := held';
        progress.(i) <- progress.(i) + 1
      | None -> ok := false
    in
    let actions_remain i =
      let rec go p =
        p < Array.length l.txs.(i)
        &&
        match l.txs.(i).(p) with
        | Action _ -> true
        | Lock _ | Unlock _ -> go (p + 1)
      in
      go progress.(i)
    in
    let eager_unlocks i =
      if not (actions_remain i) then
        (* final action done: run the whole trailing protocol, locks
           included (2PL' ends transactions with a lock X' step) *)
        while !ok && progress.(i) < Array.length l.txs.(i) do
          exec i l.txs.(i).(progress.(i))
        done
      else begin
        let continue = ref true in
        while !ok && !continue do
          let p = progress.(i) in
          if p < Array.length l.txs.(i) then
            match l.txs.(i).(p) with
            | Unlock _ as s -> exec i s
            | Lock _ | Action _ -> continue := false
          else continue := false
        done
      end
    in
    Array.iter
      (fun (id : Names.step_id) ->
        if !ok then begin
          let i = id.Names.tx in
          (* run segment up to and including the action *)
          let continue = ref true in
          while !ok && !continue do
            let p = progress.(i) in
            if p >= Array.length l.txs.(i) then ok := false
            else begin
              let s = l.txs.(i).(p) in
              exec i s;
              match s with
              | Action id' ->
                if not (Names.equal_step id id') then ok := false;
                continue := false
              | Lock _ | Unlock _ -> ()
            end
          done;
          if !ok then eager_unlocks i
        end)
      h;
    (* trailing unlocks were released eagerly after each final action *)
    !ok && Sset.is_empty !held
  end

let pp_step ppf = function
  | Lock x -> Format.fprintf ppf "lock %s" x
  | Unlock x -> Format.fprintf ppf "unlock %s" x
  | Action id -> Format.fprintf ppf "%a" Names.pp_step id

let pp ppf l =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i tx ->
      if i > 0 then Format.fprintf ppf "@ @ ";
      Format.fprintf ppf "T%d:" (i + 1);
      Array.iter (fun s -> Format.fprintf ppf "@   %a" pp_step s) tx)
    l.txs;
  Format.fprintf ppf "@]"
