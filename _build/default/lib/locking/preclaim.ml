open Core

let transform_transaction i accesses =
  let m = Array.length accesses in
  if m = 0 then []
  else begin
    let vars =
      Array.to_list accesses |> List.sort_uniq String.compare
    in
    let last = Hashtbl.create 8 in
    Array.iteri (fun j v -> Hashtbl.replace last v j) accesses;
    let locks = List.map (fun v -> Locked.Lock (Two_phase.lock_name v)) vars in
    let body =
      List.concat
        (List.init m (fun j ->
             let v = accesses.(j) in
             let unlock =
               if Hashtbl.find last v = j then
                 [ Locked.Unlock (Two_phase.lock_name v) ]
               else []
             in
             Locked.Action (Names.step i j) :: unlock))
    in
    locks @ body
  end

let policy = Policy.separable "preclaim" transform_transaction

let apply = policy.Policy.apply
