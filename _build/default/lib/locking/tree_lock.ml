open Core

type hierarchy = (Names.var * Names.var) list

let parent h v = List.assoc_opt v h

let path_to_root h v =
  let rec go v acc seen =
    if List.mem v seen then invalid_arg "Tree_lock: cyclic hierarchy";
    match parent h v with
    | None -> List.rev (v :: acc)
    | Some p -> go p (v :: acc) (v :: seen)
  in
  go v [] []

let spanning_subtree h vars =
  match List.sort_uniq String.compare vars with
  | [] -> []
  | vars ->
    (* paths from each var to the root, root-first *)
    let paths = List.map (fun v -> List.rev (path_to_root h v)) vars in
    (match paths with
    | [] -> []
    | first :: rest ->
      let root = List.hd first in
      List.iter
        (fun p ->
          if not (String.equal (List.hd p) root) then
            invalid_arg "Tree_lock: accesses span several trees")
        rest;
      (* common prefix of all root-first paths = ancestors of the lca *)
      let rec common_len k =
        let ok =
          List.for_all (fun p -> List.length p > k) paths
          && List.for_all
               (fun p -> String.equal (List.nth p k) (List.nth first k))
               rest
        in
        if ok then common_len (k + 1) else k
      in
      let lca_depth = common_len 0 - 1 in
      (* nodes of the subtree: everything on some path at depth >= lca *)
      let nodes =
        List.concat_map
          (fun p -> List.filteri (fun k _ -> k >= lca_depth) p)
          paths
        |> List.sort_uniq String.compare
      in
      (* preorder: sort by depth (root-first paths give depth by index) *)
      let depth v =
        let rec find p k =
          match p with
          | [] -> None
          | w :: rest -> if String.equal w v then Some k else find rest (k + 1)
        in
        List.fold_left
          (fun acc p -> match acc with Some _ -> acc | None -> find p 0)
          None paths
        |> Option.get
      in
      List.sort
        (fun a b ->
          match Int.compare (depth a) (depth b) with
          | 0 -> String.compare a b
          | c -> c)
        nodes)

(* Crabbing placement. For each subtree node [v]:
   - anchor a(v) = index of the first action accessing anything in v's
     subtree: [lock v] goes just before that action (ancestors first,
     so a parent is always already held when a child is locked);
   - release r(v) = max(last access of v itself, anchors of v's children
     in the subtree): [unlock v] goes right after action r(v), which is
     after every child's lock event. Early releases before later locks
     make the policy non-two-phase, yet the tree protocol keeps it
     correct. *)
let transform_transaction h i accesses =
  let m = Array.length accesses in
  if m = 0 then []
  else begin
    let nodes = spanning_subtree h (Array.to_list accesses) in
    let in_subtree v = List.exists (String.equal v) nodes in
    let first = Hashtbl.create 8 and last = Hashtbl.create 8 in
    Array.iteri
      (fun j v ->
        if not (Hashtbl.mem first v) then Hashtbl.add first v j;
        Hashtbl.replace last v j)
      accesses;
    (* children of v inside the subtree *)
    let children v =
      List.filter
        (fun w ->
          match parent h w with
          | Some p -> String.equal p v
          | None -> false)
        nodes
    in
    let anchor = Hashtbl.create 8 in
    (* compute anchors bottom-up: reverse preorder visits children first *)
    List.iter
      (fun v ->
        let own = Hashtbl.find_opt first v in
        let kids =
          List.filter_map (fun c -> Hashtbl.find_opt anchor c) (children v)
        in
        let candidates =
          (match own with Some j -> [ j ] | None -> []) @ kids
        in
        match candidates with
        | [] ->
          (* a node with no access and no anchored child cannot be in the
             spanning subtree *)
          assert false
        | js -> Hashtbl.add anchor v (List.fold_left min max_int js))
      (List.rev nodes);
    (* A node may release as soon as its own accesses are done and all
       its children are locked. Children anchored at action [j] are
       locked in the batch just before [j]; if that batch comes after
       the node's last access, the unlock can join the same batch
       (release "pre" action [j]); otherwise it follows the node's last
       access (release "post"). *)
    let release_pre = Hashtbl.create 8 and release_post = Hashtbl.create 8 in
    List.iter
      (fun v ->
        let own =
          match Hashtbl.find_opt last v with Some j -> j | None -> -1
        in
        let kid_anchor =
          List.fold_left
            (fun acc c -> max acc (Hashtbl.find anchor c))
            (-1) (children v)
        in
        if kid_anchor > own then Hashtbl.add release_pre v kid_anchor
        else Hashtbl.add release_post v (max own kid_anchor))
      nodes;
    ignore in_subtree;
    let steps = ref [] in
    let emit s = steps := s :: !steps in
    for j = 0 to m - 1 do
      (* locks anchored at j, ancestors before descendants (preorder) *)
      List.iter
        (fun v -> if Hashtbl.find anchor v = j then emit (Locked.Lock v))
        nodes;
      (* releases enabled by this lock batch, descendants first *)
      List.iter
        (fun v ->
          if Hashtbl.find_opt release_pre v = Some j then
            emit (Locked.Unlock v))
        (List.rev nodes);
      emit (Locked.Action (Names.step i j));
      List.iter
        (fun v ->
          if Hashtbl.find_opt release_post v = Some j then
            emit (Locked.Unlock v))
        (List.rev nodes)
    done;
    List.rev !steps
  end

let policy h = Policy.separable "tree" (transform_transaction h)

let apply h syntax = (policy h).Policy.apply syntax
