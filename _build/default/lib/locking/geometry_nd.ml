
type t = {
  locked : Locked.t;
  dims : int array;        (* L_i *)
  strides : int array;
  size : int;
  forbidden_flat : bool array;
  safe_flat : bool array;
  reach_flat : bool array;
}

let index g p =
  let idx = ref 0 in
  Array.iteri (fun i x -> idx := !idx + (x * g.strides.(i))) p;
  !idx

let analyse locked =
  let txs = locked.Locked.txs in
  let n = Array.length txs in
  let dims = Array.map Array.length txs in
  let size = Array.fold_left (fun acc d -> acc * (d + 1)) 1 dims in
  if size > 2_000_000 then invalid_arg "Geometry_nd.analyse: grid too large";
  let strides = Array.make n 0 in
  let acc = ref 1 in
  for i = 0 to n - 1 do
    strides.(i) <- !acc;
    acc := !acc * (dims.(i) + 1)
  done;
  let vars = Locked.lock_vars locked in
  (* holds.(i) x p : does tx i hold x after p of its steps *)
  let holds =
    Array.map
      (fun tx ->
        List.map
          (fun x ->
            (x, Array.init (Array.length tx + 1) (Locked.holds_after tx x)))
          vars)
      txs
  in
  let g0 =
    { locked; dims; strides; size;
      forbidden_flat = Array.make size false;
      safe_flat = Array.make size false;
      reach_flat = Array.make size false }
  in
  (* iterate over all points *)
  let p = Array.make n 0 in
  let rec visit i f = if i = n then f () else
    for x = 0 to dims.(i) do
      p.(i) <- x;
      visit (i + 1) f
    done
  in
  visit 0 (fun () ->
      let clash =
        List.exists
          (fun x ->
            let cnt = ref 0 in
            Array.iteri
              (fun i hx ->
                match List.assoc_opt x hx with
                | Some table -> if table.(p.(i)) then incr cnt
                | None -> ())
              holds;
            !cnt >= 2)
          vars
      in
      if clash then g0.forbidden_flat.(index g0 p) <- true);
  (* safe: backwards DP in decreasing index order — strides are such that
     decrementing any coordinate decreases the flat index, so a simple
     reverse scan visits successors first *)
  for idx = size - 1 downto 0 do
    if not g0.forbidden_flat.(idx) then begin
      let is_final = ref true in
      let ok = ref false in
      for i = 0 to n - 1 do
        let d = dims.(i) + 1 in
        let x = idx / g0.strides.(i) mod d in
        if x < dims.(i) then begin
          is_final := false;
          if g0.safe_flat.(idx + g0.strides.(i)) then ok := true
        end
      done;
      g0.safe_flat.(idx) <- !is_final || !ok
    end
  done;
  (* reachable: forward DP *)
  for idx = 0 to size - 1 do
    if not g0.forbidden_flat.(idx) then begin
      let is_origin = ref true in
      let ok = ref false in
      for i = 0 to n - 1 do
        let d = dims.(i) + 1 in
        let x = idx / g0.strides.(i) mod d in
        if x > 0 then begin
          is_origin := false;
          if g0.reach_flat.(idx - g0.strides.(i)) then ok := true
        end
      done;
      g0.reach_flat.(idx) <- !is_origin || !ok
    end
  done;
  g0

let dims g = Array.copy g.dims
let forbidden g p = g.forbidden_flat.(index g p)
let safe g p = g.safe_flat.(index g p)
let reachable g p = g.reach_flat.(index g p)
let deadlock g p = reachable g p && not (safe g p)

let deadlock_points g =
  let n = Array.length g.dims in
  let acc = ref [] in
  for idx = g.size - 1 downto 0 do
    if g.reach_flat.(idx) && not g.safe_flat.(idx) then begin
      let p =
        Array.init n (fun i -> idx / g.strides.(i) mod (g.dims.(i) + 1))
      in
      acc := p :: !acc
    end
  done;
  !acc

let has_deadlock g = deadlock_points g <> []

let path_of_interleaving g il =
  let n = Array.length g.dims in
  let p = Array.make n 0 in
  Array.copy p
  :: Array.to_list
       (Array.map
          (fun i ->
            p.(i) <- p.(i) + 1;
            Array.copy p)
          il)

let interleaving_legal g il =
  List.for_all (fun p -> not (forbidden g p)) (path_of_interleaving g il)
