open Core

(** The introduction's strawman, as a locking policy: a single global
    mutex held for the whole transaction. Its output set is exactly the
    serial schedules — the optimal behaviour for minimum information
    (Theorem 2), and the baseline every other policy should beat. *)

val mutex : Locked.lock_var

val transform_transaction : int -> Names.var array -> Locked.step list

val policy : Policy.t

val apply : Syntax.t -> Locked.t
