type t =
  | Int of int
  | Bool of bool
  | Str of string

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Str x, Str y -> String.equal x y
  | (Int _ | Bool _ | Str _), _ -> false

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, (Bool _ | Str _) -> -1
  | Bool _, Str _ -> -1
  | Bool _, Int _ -> 1
  | Str _, (Int _ | Bool _) -> 1

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Bool b -> Format.fprintf ppf "%b" b
  | Str s -> Format.fprintf ppf "%S" s

let to_string v = Format.asprintf "%a" pp v

let int = function
  | Int n -> n
  | Bool _ | Str _ -> invalid_arg "Value.int: not an Int"

let bool = function
  | Bool b -> b
  | Int _ | Str _ -> invalid_arg "Value.bool: not a Bool"

type domain =
  | Ints
  | Int_range of int * int
  | Bools
  | Strings

let mem d v =
  match d, v with
  | Ints, Int _ -> true
  | Int_range (lo, hi), Int n -> lo <= n && n <= hi
  | Bools, Bool _ -> true
  | Strings, Str _ -> true
  | (Ints | Int_range _ | Bools | Strings), _ -> false

let enumerate = function
  | Ints | Strings -> None
  | Int_range (lo, hi) ->
    let rec go n acc = if n < lo then acc else go (n - 1) (Int n :: acc) in
    Some (go hi [])
  | Bools -> Some [ Bool false; Bool true ]

let sample st ?(bound = 8) = function
  | Ints -> Int (Random.State.int st (2 * bound + 1) - bound)
  | Int_range (lo, hi) -> Int (lo + Random.State.int st (hi - lo + 1))
  | Bools -> Bool (Random.State.bool st)
  | Strings ->
    let len = Random.State.int st 4 in
    Str (String.init len (fun _ -> Char.chr (97 + Random.State.int st 26)))

let pp_domain ppf = function
  | Ints -> Format.pp_print_string ppf "Z"
  | Int_range (lo, hi) -> Format.fprintf ppf "[%d..%d]" lo hi
  | Bools -> Format.pp_print_string ppf "{0,1}"
  | Strings -> Format.pp_print_string ppf "Sigma*"
