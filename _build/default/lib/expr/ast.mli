(** A small total expression language.

    Used in two roles:
    - {b step interpretations} [φ_ij]: an expression over the local
      variables [t_i1 .. t_ij] ([Local 0 .. Local (j-1)]) gives the new
      value written to [x_ij];
    - {b integrity constraints}: a boolean expression over global
      variable names describes the consistent states.

    Every expression evaluates totally (division by zero yields 0, type
    mismatches raise [Type_error] — which well-typedness checking rules
    out beforehand). *)

type t =
  | Const of Value.t
  | Local of int            (** [Local k] = the local variable [t_{i,k+1}] *)
  | Global of string        (** a global variable, for constraints *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t            (** integer division; [x / 0 = 0] *)
  | Eq of t * t
  | Le of t * t
  | Lt of t * t
  | Not of t
  | And of t * t
  | Or of t * t
  | If of t * t * t

exception Type_error of string

val int : int -> t
val bool : bool -> t
val ge : t -> t -> t
val gt : t -> t -> t

val eval : locals:(int -> Value.t) -> globals:(string -> Value.t) -> t -> Value.t
(** Evaluate. [locals k] supplies [Local k]; [globals v] supplies
    [Global v]. Raises [Type_error] on ill-typed operations and whatever
    the lookup functions raise on unknown variables. *)

val eval_closed : t -> Value.t
(** Evaluate an expression with no variables. *)

val locals_used : t -> int list
(** Indices of [Local] variables occurring, sorted, without duplicates. *)

val globals_used : t -> string list
(** Names of [Global] variables occurring, sorted, without duplicates. *)

val max_local : t -> int
(** Largest [Local] index used, or [-1] if none. *)

val is_identity_of : int -> t -> bool
(** [is_identity_of k e] is [true] iff [e] is syntactically [Local k] —
    the paper's criterion for a {e read step} ([f_ij] = identity on
    [t_ij]). *)

val depends_on_local : int -> t -> bool
(** Whether [Local k] occurs in the expression. A step whose
    interpretation does not depend on its own read is a {e write step}. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
