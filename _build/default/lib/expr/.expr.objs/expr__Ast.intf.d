lib/expr/ast.mli: Format Value
