lib/expr/ast.ml: Format Int List String Value
