lib/expr/value.mli: Format Random
