lib/expr/value.ml: Bool Char Format Int Random String
