(** Concrete values for variable domains.

    The paper allows each variable an enumerable domain — "typically the
    integers, the set [{0,1}], or finite strings". We provide exactly
    those three, under one closed type so that states are heterogeneous
    maps from variable names to values. *)

type t =
  | Int of int
  | Bool of bool
  | Str of string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int : t -> int
(** Projection. Raises [Invalid_argument] on a non-[Int]. *)

val bool : t -> bool
(** Projection. Raises [Invalid_argument] on a non-[Bool]. *)

(** A domain is an enumerable value set. Finite domains can be listed;
    [Ints] stands for the full integers (sampled, not enumerated). *)
type domain =
  | Ints          (** all integers *)
  | Int_range of int * int  (** integers [lo..hi] inclusive *)
  | Bools
  | Strings       (** all finite strings (never enumerated) *)

val mem : domain -> t -> bool
(** Membership of a value in a domain. *)

val enumerate : domain -> t list option
(** [Some values] for finite domains, [None] for [Ints] / [Strings]. *)

val sample : Random.State.t -> ?bound:int -> domain -> t
(** Draw a value; integer domains are sampled in [-bound .. bound]
    (default 8) when unbounded. *)

val pp_domain : Format.formatter -> domain -> unit
