type t =
  | Const of Value.t
  | Local of int
  | Global of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Eq of t * t
  | Le of t * t
  | Lt of t * t
  | Not of t
  | And of t * t
  | Or of t * t
  | If of t * t * t

exception Type_error of string

let int n = Const (Value.Int n)
let bool b = Const (Value.Bool b)
let ge a b = Le (b, a)
let gt a b = Lt (b, a)

let as_int who v =
  match v with
  | Value.Int n -> n
  | Value.Bool _ | Value.Str _ ->
    raise (Type_error (who ^ ": expected an integer"))

let as_bool who v =
  match v with
  | Value.Bool b -> b
  | Value.Int _ | Value.Str _ ->
    raise (Type_error (who ^ ": expected a boolean"))

let rec eval ~locals ~globals e =
  let recur e = eval ~locals ~globals e in
  let arith who op a b =
    Value.Int (op (as_int who (recur a)) (as_int who (recur b)))
  in
  match e with
  | Const v -> v
  | Local k -> locals k
  | Global v -> globals v
  | Neg a -> Value.Int (-as_int "neg" (recur a))
  | Add (a, b) -> arith "add" ( + ) a b
  | Sub (a, b) -> arith "sub" ( - ) a b
  | Mul (a, b) -> arith "mul" ( * ) a b
  | Div (a, b) -> arith "div" (fun x y -> if y = 0 then 0 else x / y) a b
  | Eq (a, b) -> Value.Bool (Value.equal (recur a) (recur b))
  | Le (a, b) -> Value.Bool (as_int "le" (recur a) <= as_int "le" (recur b))
  | Lt (a, b) -> Value.Bool (as_int "lt" (recur a) < as_int "lt" (recur b))
  | Not a -> Value.Bool (not (as_bool "not" (recur a)))
  | And (a, b) -> Value.Bool (as_bool "and" (recur a) && as_bool "and" (recur b))
  | Or (a, b) -> Value.Bool (as_bool "or" (recur a) || as_bool "or" (recur b))
  | If (c, a, b) -> if as_bool "if" (recur c) then recur a else recur b

let eval_closed e =
  let fail _ = raise (Type_error "eval_closed: free variable") in
  eval ~locals:fail ~globals:fail e

let rec fold_vars f acc e =
  match e with
  | Const _ -> acc
  | Local _ | Global _ -> f acc e
  | Neg a | Not a -> fold_vars f acc a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b)
  | Eq (a, b) | Le (a, b) | Lt (a, b) | And (a, b) | Or (a, b) ->
    fold_vars f (fold_vars f acc a) b
  | If (c, a, b) -> fold_vars f (fold_vars f (fold_vars f acc c) a) b

let locals_used e =
  fold_vars
    (fun acc v -> match v with Local k -> k :: acc | _ -> acc)
    [] e
  |> List.sort_uniq Int.compare

let globals_used e =
  fold_vars
    (fun acc v -> match v with Global g -> g :: acc | _ -> acc)
    [] e
  |> List.sort_uniq String.compare

let max_local e = List.fold_left max (-1) (locals_used e)

let is_identity_of k = function
  | Local k' -> k = k'
  | _ -> false

let depends_on_local k e = List.mem k (locals_used e)

let equal (a : t) (b : t) = a = b

let rec pp ppf e =
  let bin op a b = Format.fprintf ppf "(%a %s %a)" pp a op pp b in
  match e with
  | Const v -> Value.pp ppf v
  | Local k -> Format.fprintf ppf "t%d" (k + 1)
  | Global g -> Format.pp_print_string ppf g
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Add (a, b) -> bin "+" a b
  | Sub (a, b) -> bin "-" a b
  | Mul (a, b) -> bin "*" a b
  | Div (a, b) -> bin "/" a b
  | Eq (a, b) -> bin "=" a b
  | Le (a, b) -> bin "<=" a b
  | Lt (a, b) -> bin "<" a b
  | Not a -> Format.fprintf ppf "(not %a)" pp a
  | And (a, b) -> bin "&&" a b
  | Or (a, b) -> bin "||" a b
  | If (c, a, b) ->
    Format.fprintf ppf "(if %a then %a else %a)" pp c pp a pp b

let to_string e = Format.asprintf "%a" pp e
