type level =
  | Format_only
  | Syntactic
  | Semantic_no_ic
  | Complete

let all_levels = [ Format_only; Syntactic; Semantic_no_ic; Complete ]

let index = function
  | Format_only -> 0
  | Syntactic -> 1
  | Semantic_no_ic -> 2
  | Complete -> 3

let leq a b = index a <= index b

let same_ic a b =
  match a, b with
  | System.Trivial, System.Trivial -> true
  | System.Pred e, System.Pred e' -> Expr.Ast.equal e e'
  | System.Sat (n, _), System.Sat (n', _) -> String.equal n n'
  | (System.Trivial | System.Pred _ | System.Sat _), _ -> false

let same_class level (a : System.t) (b : System.t) =
  match level with
  | Format_only -> System.format a = System.format b
  | Syntactic -> Syntax.equal a.syntax b.syntax
  | Semantic_no_ic ->
    Syntax.equal a.syntax b.syntax
    && a.interp = b.interp
    && a.domains = b.domains
  | Complete ->
    Syntax.equal a.syntax b.syntax
    && a.interp = b.interp
    && a.domains = b.domains
    && same_ic a.ic b.ic

let optimal_fixpoint ?max_len ?max_states sys ~probes = function
  | Format_only -> Fixpoint.serial_only (System.format sys)
  | Syntactic -> Fixpoint.sr_only sys.System.syntax
  | Semantic_no_ic ->
    List.filter
      (Weak_sr.is_weakly_serializable ?max_len ?max_states sys ~probes)
      (Schedule.all (System.format sys))
  | Complete ->
    List.filter
      (Exec.correct_schedule sys ~probes)
      (Schedule.all (System.format sys))

let monotone ?max_len ?max_states sys ~probes =
  let fp = optimal_fixpoint ?max_len ?max_states sys ~probes in
  let rec pairs = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Fixpoint.subset (fp a) (fp b) && pairs rest
  in
  pairs all_levels

let pp_level ppf l =
  Format.pp_print_string ppf
    (match l with
    | Format_only -> "format-only"
    | Syntactic -> "syntactic"
    | Semantic_no_ic -> "semantic-no-IC"
    | Complete -> "complete")
