(** Naming of variables and transaction steps.

    A transaction system has transactions [T_1 .. T_n]; transaction [T_i]
    has steps [T_i1 .. T_im_i]. Internally both indices are 0-based; the
    printers use the paper's 1-based convention ([T23] is the third step
    of the second transaction). *)

type var = string
(** A global variable name ("A", "x", ...). *)

type step_id = { tx : int; idx : int }
(** Step [idx] (0-based) of transaction [tx] (0-based). *)

val step : int -> int -> step_id
(** [step tx idx] builds a step id. *)

val compare_step : step_id -> step_id -> int
val equal_step : step_id -> step_id -> bool

val pp_step : Format.formatter -> step_id -> unit
(** Prints [T{tx+1}{idx+1}], e.g. [T11]. For indices beyond 9 the two
    numbers are comma-separated: [T(10,3)]. *)

val step_to_string : step_id -> string

module Vmap : Map.S with type key = var
module Vset : Set.S with type elt = var
