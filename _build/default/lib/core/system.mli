(** Full transaction systems: syntax + semantics + integrity constraints.

    The semantics interprets each function symbol [f_ij] as an expression
    [φ_ij] over the local variables [t_i1 .. t_ij] ([Expr.Ast.Local 0] to
    [Local (j-1)], 0-based). The integrity constraints [IC] select the
    consistent global states. *)

type ic =
  | Pred of Expr.Ast.t
      (** A boolean expression over global variables. *)
  | Sat of string * (State.t -> bool)
      (** An opaque predicate with a display name, for constraints not
          expressible in the expression language (e.g. Herbrand
          reachability sets). *)
  | Trivial  (** Every state is consistent. *)

type t = private {
  syntax : Syntax.t;
  interp : Expr.Ast.t array array;  (** [interp.(i).(j)] is [φ_ij] *)
  domains : (Names.var * Expr.Value.domain) list;
      (** Domain of every global variable, sorted by name. *)
  ic : ic;
}

val make :
  ?domains:(Names.var * Expr.Value.domain) list ->
  ?ic:ic ->
  Syntax.t ->
  Expr.Ast.t array array ->
  t
(** Build and validate a system. Checks: the interpretation array matches
    the format; [φ_ij] mentions only [Local 0 .. Local j] (0-based step
    [j]) and no global variables. Unlisted variables default to the
    domain [Ints]; [ic] defaults to [Trivial]. Raises
    [Invalid_argument] with a diagnostic on violation. *)

val format : t -> int array
val n_transactions : t -> int

val phi : t -> Names.step_id -> Expr.Ast.t
(** The interpretation of a step's function symbol. *)

val domain : t -> Names.var -> Expr.Value.domain

val consistent : t -> State.t -> bool
(** Whether a global state satisfies the integrity constraints. *)

val step_kind : t -> Names.step_id -> [ `Read | `Write | `Update ]
(** Syntactic classification of §2: a step whose [φ] is the identity on
    its own read ([t_ij]) is a {e read}; one whose [φ] ignores [t_ij] is
    a {e write}; otherwise it is a general update. *)

val pp : Format.formatter -> t -> unit
(** Listing with interpretations: [Tij: x <- (t1 + 1)]. *)

val pp_ic : Format.formatter -> ic -> unit
