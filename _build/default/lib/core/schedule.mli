(** Schedules (logs, histories) — Section 3.1.

    A schedule of a transaction system is a permutation of all its steps
    that preserves each transaction's internal step order. Two
    representations are used:

    - the {b interleaving} form: an [int array] whose [k]-th entry is the
      transaction whose next step runs at position [k] (compact; this is
      what {!Combin.Interleave} enumerates);
    - the {b step} form: a [Names.step_id array].

    They are in bijection given the format. *)

type t = Names.step_id array

val of_interleaving : int array -> t
(** The [j]-th occurrence of transaction [i] becomes step [(i, j)]. *)

val to_interleaving : t -> int array

val is_schedule_of : int array -> t -> bool
(** [is_schedule_of fmt h] checks [h] is a schedule of the format: every
    step of every transaction appears exactly once and per-transaction
    order is respected. *)

val serial : int array -> int array -> t
(** [serial fmt order] runs whole transactions in permutation [order]. *)

val is_serial : t -> bool
(** Whether the schedule is a concatenation of complete transactions
    (complete with respect to the steps present in the schedule). *)

val serial_order : t -> int array option
(** [Some order] if serial, with the transaction order. *)

val all : int array -> t list
(** Every schedule of the format — the set [H]. Small formats only. *)

val all_serial : int array -> t list
(** The [n!] serial schedules. *)

val count : int array -> int
(** [|H|] for the format. *)

val random : Random.State.t -> int array -> t
(** Uniformly random schedule. *)

val positions : t -> (Names.step_id * int) list
(** Each step with its position. *)

val prefix : t -> int -> t
(** First [k] steps. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints [(T11, T21, T12)]. *)

val to_string : t -> string
