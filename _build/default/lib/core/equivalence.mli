(** Equivalence of schedules and the structure of the schedule space.

    Two schedules are {b Herbrand-equivalent} when they produce the same
    final symbolic state — the same results under {e every}
    interpretation. This module gives the combinatorial view of that
    relation:

    - an {b elementary transformation} swaps two adjacent steps of
      different transactions on different variables (the schedule-space
      counterpart of the paper's Figure 4(b) homotopy moves); it
      provably preserves the Herbrand state;
    - two schedules are Herbrand-equivalent iff connected by elementary
      transformations (tested against {!Herbrand.equivalent});
    - [H] therefore partitions into equivalence classes, with the
      serializable schedules being exactly the classes containing a
      serial schedule. *)

val swappable : Syntax.t -> Schedule.t -> int -> bool
(** [swappable s h k]: may positions [k] and [k+1] be exchanged without
    changing the semantics — different transactions and different
    variables? *)

val swap : Schedule.t -> int -> Schedule.t
(** Exchange positions [k] and [k+1] (no legality check beyond array
    bounds). *)

val neighbours : Syntax.t -> Schedule.t -> Schedule.t list
(** All schedules one elementary transformation away. *)

val connected : Syntax.t -> Schedule.t -> Schedule.t -> bool
(** Reachability through elementary transformations (BFS; schedule
    spaces explode, keep formats small). *)

val classes : Syntax.t -> Schedule.t list list
(** The partition of [H] into swap-connected classes, each class in
    first-seen enumeration order. *)

val class_count : Syntax.t -> int

val serializable_classes : Syntax.t -> int
(** Number of classes containing a serial schedule. In the paper's step
    model this is at most [n!] and the serializable schedules are the
    union of those classes. *)
