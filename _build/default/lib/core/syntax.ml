type t = { accesses : Names.var array array }

let make accesses =
  if Array.length accesses = 0 then invalid_arg "Syntax.make: empty system";
  { accesses = Array.map Array.copy accesses }

let of_lists lists =
  make (Array.of_list (List.map Array.of_list lists))

let format s = Array.map Array.length s.accesses

let n_transactions s = Array.length s.accesses

let n_steps s =
  Array.fold_left (fun acc tx -> acc + Array.length tx) 0 s.accesses

let length s i =
  if i < 0 || i >= n_transactions s then invalid_arg "Syntax.length";
  Array.length s.accesses.(i)

let var s (id : Names.step_id) =
  if
    id.tx < 0
    || id.tx >= n_transactions s
    || id.idx < 0
    || id.idx >= Array.length s.accesses.(id.tx)
  then invalid_arg "Syntax.var: step out of range";
  s.accesses.(id.tx).(id.idx)

let vars s =
  Array.fold_left
    (fun acc tx -> Array.fold_left (fun acc v -> Names.Vset.add v acc) acc tx)
    Names.Vset.empty s.accesses
  |> Names.Vset.elements

let steps s =
  let acc = ref [] in
  for i = n_transactions s - 1 downto 0 do
    for j = Array.length s.accesses.(i) - 1 downto 0 do
      acc := Names.step i j :: !acc
    done
  done;
  !acc

let steps_on s v =
  List.filter (fun id -> String.equal (var s id) v) (steps s)

let transactions_on s v =
  steps_on s v
  |> List.map (fun (id : Names.step_id) -> id.tx)
  |> List.sort_uniq Int.compare

let rename f s = { accesses = Array.map (Array.map f) s.accesses }

let equal a b = a.accesses = b.accesses

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i tx ->
      Array.iteri
        (fun j v ->
          if i > 0 || j > 0 then Format.fprintf ppf "@ ";
          Format.fprintf ppf "%a: %s" Names.pp_step (Names.step i j) v)
        tx)
    s.accesses;
  Format.fprintf ppf "@]"
