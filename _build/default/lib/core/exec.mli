(** Concrete execution of transaction steps and schedules (Section 2).

    A running state is the paper's triple [(J, L, G)]: program counters,
    declared-local values, and the global state. Executing an eligible
    step [T_ij] performs [t_ij ← x_ij ; x_ij ← φ_ij(t_i1 .. t_ij)]
    atomically. *)

type run_state = {
  pc : int array;  (** [J]: next step index per transaction (0-based). *)
  locals : Expr.Value.t option array array;
      (** [L]: [locals.(i).(j)] is [t_i(j+1)] once declared. *)
  globals : State.t;  (** [G]. *)
}

val start : System.t -> State.t -> run_state
(** Initial state: all counters 0, no local declared. Raises
    [Invalid_argument] if the global state does not bind every variable
    of the system or binds one outside its domain. *)

val eligible : run_state -> Names.step_id -> bool
(** [T_ij] is eligible iff [J_i = j]. *)

val finished : run_state -> bool

exception Not_eligible of Names.step_id

val exec_step : System.t -> run_state -> Names.step_id -> run_state
(** Execute one eligible step. Raises {!Not_eligible} otherwise, and
    [Expr.Ast.Type_error] if the interpretation is ill-typed for the
    encountered values. *)

val run : System.t -> State.t -> Schedule.t -> State.t
(** Execute a whole schedule from an initial global state and return the
    final global state. The schedule's steps are executed left to right;
    raises {!Not_eligible} if the sequence is not a legal schedule. *)

val run_trace : System.t -> State.t -> Schedule.t -> State.t list
(** Like {!run} but returns the global state after every step (the list
    has one entry per step, last = final state). *)

val run_transaction : System.t -> State.t -> int -> State.t
(** Serially execute one complete transaction. *)

val run_concatenation : System.t -> State.t -> int list -> State.t
(** Serially execute a concatenation of complete transactions (possibly
    with repetitions and omissions — the WSR notion). *)

val correct_schedule : System.t -> probes:State.t list -> Schedule.t -> bool
(** Membership in [C(T)] tested on a finite probe set: the schedule is
    accepted iff from every {e consistent} probe state its execution ends
    consistent. (Sound refutation; acceptance is relative to the probe
    set — see DESIGN.md substitutions.) *)

val transaction_correct : System.t -> probes:State.t list -> int -> bool
(** The paper's basic assumption, checked on probes: a transaction run
    alone maps consistent states to consistent states. *)

val basic_assumption : System.t -> probes:State.t list -> bool
(** All transactions individually correct on the probe set. *)
