(** Global database states.

    A global state [G] assigns a value to every global variable. The full
    state of a running transaction system in the paper is a triple
    [(J, L, G)]; the program counters [J] and the local values [L] live
    inside {!Exec.run_state}, while this module handles the [G]
    component, which is what integrity constraints talk about. *)

type t = Expr.Value.t Names.Vmap.t

val empty : t

val of_list : (Names.var * Expr.Value.t) list -> t

val of_ints : (Names.var * int) list -> t
(** Convenience: all-integer state. *)

val get : t -> Names.var -> Expr.Value.t
(** Raises [Not_found] on an unbound variable. *)

val set : t -> Names.var -> Expr.Value.t -> t

val bindings : t -> (Names.var * Expr.Value.t) list

val equal : t -> t -> bool
val compare : t -> t -> int

val restrict : Names.var list -> t -> t
(** Keep only the listed variables (missing ones are ignored). *)

val pp : Format.formatter -> t -> unit
(** Prints [{A=150, B=50}]. *)

val to_string : t -> string

val enumerate : (Names.var * Expr.Value.domain) list -> t list option
(** All states over the given finite domains ([None] if some domain is
    infinite). The number of states is the product of domain sizes. *)

val sample : Random.State.t -> ?bound:int -> (Names.var * Expr.Value.domain) list -> t
(** One random state over the given domains. *)
