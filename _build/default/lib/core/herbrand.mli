(** Herbrand (symbolic) semantics — Section 4.2.

    Under the Herbrand interpretation, the value written by step [T_ij]
    is the uninterpreted term [f_ij(a_1, ..., a_j)] where [a_k] is the
    term read by the transaction's [k]-th step. Terms capture the entire
    history of every global variable, so two schedules have the same
    execution results under {e every} interpretation iff they have the
    same final Herbrand state (Herbrand's theorem, [Manna 74]).

    A schedule is {b serializable} ([∈ SR(T)]) iff its final Herbrand
    state equals that of some serial schedule. *)

type term =
  | Init of Names.var  (** the initial value of a variable *)
  | App of Names.step_id * term list
      (** [f_ij] applied to the terms read so far by transaction [i] *)

val equal_term : term -> term -> bool
val compare_term : term -> term -> int
val pp_term : Format.formatter -> term -> unit
val term_to_string : term -> string
val term_size : term -> int

type hstate = term Names.Vmap.t
(** Symbolic global state: every variable's current term. *)

val initial : Syntax.t -> hstate

val exec_step : Syntax.t -> hstate * term option array array -> Names.step_id ->
  hstate * term option array array
(** Low-level: execute one step symbolically. The second component holds
    the local terms declared so far ([t_ij]). *)

val run : Syntax.t -> Schedule.t -> hstate
(** Final Herbrand state of a schedule (started from {!initial}). The
    schedule must be legal (per-transaction order); this is {e not}
    re-checked here. *)

val equal_state : hstate -> hstate -> bool

val serializable : Syntax.t -> Schedule.t -> bool
(** Membership in [SR(T)]: brute-force comparison against all [n!]
    serial schedules. Exponential by definition; see {!Conflict} for the
    polynomial test (provably equivalent in this step model). *)

val serialization_witness : Syntax.t -> Schedule.t -> int array option
(** [Some order] gives a serial transaction order with the same final
    Herbrand state, if one exists. *)

val equivalent : Syntax.t -> Schedule.t -> Schedule.t -> bool
(** Herbrand equivalence of two schedules of the same system. *)

val pp_state : Format.formatter -> hstate -> unit
