type var = string

type step_id = { tx : int; idx : int }

let step tx idx =
  if tx < 0 || idx < 0 then invalid_arg "Names.step: negative index";
  { tx; idx }

let compare_step a b =
  match Int.compare a.tx b.tx with 0 -> Int.compare a.idx b.idx | c -> c

let equal_step a b = a.tx = b.tx && a.idx = b.idx

let pp_step ppf { tx; idx } =
  if tx < 9 && idx < 9 then Format.fprintf ppf "T%d%d" (tx + 1) (idx + 1)
  else Format.fprintf ppf "T(%d,%d)" (tx + 1) (idx + 1)

let step_to_string s = Format.asprintf "%a" pp_step s

module Vmap = Map.Make (String)
module Vset = Set.Make (String)
