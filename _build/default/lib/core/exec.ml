type run_state = {
  pc : int array;
  locals : Expr.Value.t option array array;
  globals : State.t;
}

let start sys g =
  List.iter
    (fun (v, d) ->
      match State.get g v with
      | value ->
        if not (Expr.Value.mem d value) then
          invalid_arg
            (Printf.sprintf "Exec.start: %s=%s outside its domain" v
               (Expr.Value.to_string value))
      | exception Not_found ->
        invalid_arg ("Exec.start: initial state does not bind " ^ v))
    sys.System.domains;
  let fmt = System.format sys in
  {
    pc = Array.make (Array.length fmt) 0;
    locals = Array.map (fun m -> Array.make m None) fmt;
    globals = g;
  }

let eligible st (id : Names.step_id) =
  id.tx >= 0 && id.tx < Array.length st.pc && st.pc.(id.tx) = id.idx

let finished st =
  Array.for_all2 (fun j m -> j = m) st.pc (Array.map Array.length st.locals)

exception Not_eligible of Names.step_id

let exec_step sys st (id : Names.step_id) =
  if not (eligible st id) then raise (Not_eligible id);
  let x = Syntax.var sys.System.syntax id in
  let t_read = State.get st.globals x in
  let locals = Array.copy st.locals in
  locals.(id.tx) <- Array.copy locals.(id.tx);
  locals.(id.tx).(id.idx) <- Some t_read;
  let lookup k =
    match locals.(id.tx).(k) with
    | Some v -> v
    | None -> raise (Expr.Ast.Type_error "undeclared local")
  in
  let written =
    Expr.Ast.eval ~locals:lookup
      ~globals:(fun _ -> raise (Expr.Ast.Type_error "global in phi"))
      (System.phi sys id)
  in
  let pc = Array.copy st.pc in
  pc.(id.tx) <- id.idx + 1;
  { pc; locals; globals = State.set st.globals x written }

let run sys g h =
  let st = Array.fold_left (fun st id -> exec_step sys st id) (start sys g) h in
  st.globals

let run_trace sys g h =
  let st = ref (start sys g) in
  Array.to_list
    (Array.map
       (fun id ->
         st := exec_step sys !st id;
         !st.globals)
       h)

let run_transaction sys g i =
  let m = (System.format sys).(i) in
  let h = Array.init m (fun j -> Names.step i j) in
  (* run on a fresh start so program counters begin at 0 *)
  run sys g h

let run_concatenation sys g txs =
  List.fold_left (fun g i -> run_transaction sys g i) g txs

let correct_schedule sys ~probes h =
  List.for_all
    (fun g ->
      (not (System.consistent sys g)) || System.consistent sys (run sys g h))
    probes

let transaction_correct sys ~probes i =
  List.for_all
    (fun g ->
      (not (System.consistent sys g))
      || System.consistent sys (run_transaction sys g i))
    probes

let basic_assumption sys ~probes =
  let n = System.n_transactions sys in
  let rec go i = i >= n || (transaction_correct sys ~probes i && go (i + 1)) in
  go 0
