(** Recoverability of read/write histories — the [Gray 78] dimension the
    paper cites among the reasons a scheduler may be kept at an
    imperfect information level.

    Histories here extend {!Rw_model} with terminal events: each
    transaction either commits or aborts at some point after its last
    data action. The classical hierarchy of safety classes is

    - {b RC} (recoverable): a reader commits only after every
      transaction it read from has committed;
    - {b ACA} (avoids cascading aborts): reads only from committed
      transactions;
    - {b ST} (strict): no read {e or overwrite} of a value written by an
      uncommitted transaction;

    with [ST ⊆ ACA ⊆ RC] (strict inclusions witnessed in the tests).
    Holding exclusive locks to the end — strict 2PL — produces exactly
    strict histories, which is why real systems prefer it over the
    "as early as possible" release rule of the paper's canonical 2PL. *)

type event =
  | Act of Rw_model.step
  | Commit of int
  | Abort of int

type history = event array

val of_rw : ?aborts:int list -> Rw_model.history -> history
(** Append terminal events: every transaction commits (or aborts, if
    listed) right after the whole data history, in transaction order. *)

val well_formed : int -> history -> bool
(** Each transaction has exactly one terminal event, placed after all
    its actions. *)

val recoverable : int -> history -> bool
val avoids_cascading_aborts : int -> history -> bool
val strict : int -> history -> bool

val classify : int -> history -> string
(** ["ST"], ["ACA"], ["RC"] (the strongest class that holds) or ["-"]. *)

val pp : Format.formatter -> history -> unit
