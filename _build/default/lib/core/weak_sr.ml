type verdict =
  | Weakly_serializable of int list list
  | Refuted of State.t

module Smap = Map.Make (struct
  type t = State.t

  let compare = State.compare
end)

let reachable_finals ?max_len ?(max_states = 200_000) sys e =
  let n = System.n_transactions sys in
  let max_len = match max_len with Some l -> l | None -> n + 2 in
  (* BFS over global states; edges = serial execution of one complete
     transaction. Depth-first by level so witnesses are shortest. *)
  let seen = ref (Smap.singleton e []) in
  let frontier = ref [ (e, []) ] in
  let level = ref 0 in
  while !frontier <> [] && !level < max_len && Smap.cardinal !seen < max_states do
    incr level;
    let next = ref [] in
    List.iter
      (fun (g, path) ->
        for i = 0 to n - 1 do
          let g' = Exec.run_transaction sys g i in
          if not (Smap.mem g' !seen) then begin
            let path' = path @ [ i ] in
            seen := Smap.add g' path' !seen;
            next := (g', path') :: !next
          end
        done)
      !frontier;
    frontier := List.rev !next
  done;
  Smap.bindings !seen

let check ?max_len ?max_states sys ~probes h =
  let rec go acc = function
    | [] -> Weakly_serializable (List.rev acc)
    | e :: rest -> (
      let final = Exec.run sys e h in
      let reach = reachable_finals ?max_len ?max_states sys e in
      match
        List.find_opt (fun (g, _) -> State.equal g final) reach
      with
      | Some (_, witness) -> go (witness :: acc) rest
      | None -> Refuted e)
  in
  go [] probes

let is_weakly_serializable ?max_len ?max_states sys ~probes h =
  match check ?max_len ?max_states sys ~probes h with
  | Weakly_serializable _ -> true
  | Refuted _ -> false

let default_probes ?(bound = 8) ?(count = 25) ~seed sys =
  let domains = sys.System.domains in
  let product =
    List.fold_left
      (fun acc (_, d) ->
        match acc, Expr.Value.enumerate d with
        | Some p, Some vs when p * List.length vs <= 4096 ->
          Some (p * List.length vs)
        | _, _ -> None)
      (Some 1) domains
  in
  match product with
  | Some _ -> (
    match State.enumerate domains with
    | Some states -> states
    | None -> assert false)
  | None ->
    let st = Random.State.make [| seed |] in
    List.init count (fun _ -> State.sample st ~bound domains)
