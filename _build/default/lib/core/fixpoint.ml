type sets = {
  h : Schedule.t list;
  serial : Schedule.t list;
  sr : Schedule.t list;
  wsr : Schedule.t list;
  c : Schedule.t list;
}

let compute ?max_len ?max_states sys ~probes =
  let fmt = System.format sys in
  let syntax = sys.System.syntax in
  let h = Schedule.all fmt in
  let serial = List.filter Schedule.is_serial h in
  let sr = List.filter (Conflict.serializable syntax) h in
  let wsr =
    List.filter
      (Weak_sr.is_weakly_serializable ?max_len ?max_states sys ~probes)
      h
  in
  let c = List.filter (Exec.correct_schedule sys ~probes) h in
  { h; serial; sr; wsr; c }

let counts s =
  ( List.length s.h,
    List.length s.serial,
    List.length s.sr,
    List.length s.wsr,
    List.length s.c )

let subset a b = List.for_all (fun x -> List.exists (Schedule.equal x) b) a

let chain_holds s =
  subset s.serial s.sr && subset s.sr s.wsr && subset s.wsr s.c
  && subset s.c s.h

let sr_only syntax =
  List.filter (Conflict.serializable syntax) (Schedule.all (Syntax.format syntax))

let serial_only fmt = List.filter Schedule.is_serial (Schedule.all fmt)

let zero_delay_ratio p fmt =
  float_of_int (List.length p) /. float_of_int (Schedule.count fmt)
