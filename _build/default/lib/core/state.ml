type t = Expr.Value.t Names.Vmap.t

let empty = Names.Vmap.empty

let of_list l =
  List.fold_left (fun m (v, x) -> Names.Vmap.add v x m) Names.Vmap.empty l

let of_ints l = of_list (List.map (fun (v, n) -> (v, Expr.Value.Int n)) l)

let get g v = Names.Vmap.find v g

let set g v x = Names.Vmap.add v x g

let bindings = Names.Vmap.bindings

let equal = Names.Vmap.equal Expr.Value.equal

let compare = Names.Vmap.compare Expr.Value.compare

let restrict vars g =
  Names.Vmap.filter (fun v _ -> List.mem v vars) g

let pp ppf g =
  Format.fprintf ppf "{";
  let first = ref true in
  Names.Vmap.iter
    (fun v x ->
      if not !first then Format.fprintf ppf ", ";
      first := false;
      Format.fprintf ppf "%s=%a" v Expr.Value.pp x)
    g;
  Format.fprintf ppf "}"

let to_string g = Format.asprintf "%a" pp g

let enumerate domains =
  let rec go = function
    | [] -> Some [ empty ]
    | (v, d) :: rest -> (
      match Expr.Value.enumerate d, go rest with
      | Some values, Some states ->
        Some
          (List.concat_map
             (fun x -> List.map (fun g -> set g v x) states)
             values)
      | _, _ -> None)
  in
  go domains

let sample st ?bound domains =
  List.fold_left
    (fun g (v, d) -> set g v (Expr.Value.sample st ?bound d))
    empty domains
