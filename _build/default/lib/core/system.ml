type ic =
  | Pred of Expr.Ast.t
  | Sat of string * (State.t -> bool)
  | Trivial

type t = {
  syntax : Syntax.t;
  interp : Expr.Ast.t array array;
  domains : (Names.var * Expr.Value.domain) list;
  ic : ic;
}

let validate syntax interp =
  let fmt = Syntax.format syntax in
  if Array.length interp <> Array.length fmt then
    invalid_arg "System.make: interpretation/format transaction count mismatch";
  Array.iteri
    (fun i phis ->
      if Array.length phis <> fmt.(i) then
        invalid_arg
          (Printf.sprintf "System.make: transaction %d has %d steps but %d interpretations"
             (i + 1) fmt.(i) (Array.length phis));
      Array.iteri
        (fun j phi ->
          if Expr.Ast.max_local phi > j then
            invalid_arg
              (Printf.sprintf
                 "System.make: phi_%d%d uses a local variable not yet declared"
                 (i + 1) (j + 1));
          if Expr.Ast.globals_used phi <> [] then
            invalid_arg
              (Printf.sprintf
                 "System.make: phi_%d%d mentions a global variable directly"
                 (i + 1) (j + 1)))
        phis)
    interp

let make ?(domains = []) ?(ic = Trivial) syntax interp =
  validate syntax interp;
  let all_domains =
    List.map
      (fun v ->
        match List.assoc_opt v domains with
        | Some d -> (v, d)
        | None -> (v, Expr.Value.Ints))
      (Syntax.vars syntax)
  in
  { syntax; interp = Array.map Array.copy interp; domains = all_domains; ic }

let format t = Syntax.format t.syntax

let n_transactions t = Syntax.n_transactions t.syntax

let phi t (id : Names.step_id) =
  if
    id.tx < 0
    || id.tx >= Array.length t.interp
    || id.idx < 0
    || id.idx >= Array.length t.interp.(id.tx)
  then invalid_arg "System.phi: step out of range";
  t.interp.(id.tx).(id.idx)

let domain t v =
  match List.assoc_opt v t.domains with
  | Some d -> d
  | None -> invalid_arg ("System.domain: unknown variable " ^ v)

let consistent t g =
  match t.ic with
  | Trivial -> true
  | Sat (_, p) -> p g
  | Pred e ->
    Expr.Value.bool
      (Expr.Ast.eval
         ~locals:(fun _ -> raise (Expr.Ast.Type_error "IC uses a local"))
         ~globals:(fun v -> State.get g v)
         e)

let step_kind t id =
  let e = phi t id in
  let j = id.Names.idx in
  if Expr.Ast.is_identity_of j e then `Read
  else if not (Expr.Ast.depends_on_local j e) then `Write
  else `Update

let pp_ic ppf = function
  | Trivial -> Format.pp_print_string ppf "true"
  | Sat (name, _) -> Format.fprintf ppf "<%s>" name
  | Pred e -> Expr.Ast.pp ppf e

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i phis ->
      Array.iteri
        (fun j phi ->
          if i > 0 || j > 0 then Format.fprintf ppf "@ ";
          Format.fprintf ppf "%a: %s <- %a" Names.pp_step (Names.step i j)
            (Syntax.var t.syntax (Names.step i j))
            Expr.Ast.pp phi)
        phis)
    t.interp;
  Format.fprintf ppf "@ IC: %a@]" pp_ic t.ic
