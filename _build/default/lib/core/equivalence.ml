let swappable syntax h k =
  k >= 0
  && k + 1 < Array.length h
  && h.(k).Names.tx <> h.(k + 1).Names.tx
  && not (String.equal (Syntax.var syntax h.(k)) (Syntax.var syntax h.(k + 1)))

let swap h k =
  let h' = Array.copy h in
  h'.(k) <- h.(k + 1);
  h'.(k + 1) <- h.(k);
  h'

let neighbours syntax h =
  let acc = ref [] in
  for k = Array.length h - 2 downto 0 do
    if swappable syntax h k then acc := swap h k :: !acc
  done;
  !acc

let connected syntax h h' =
  if Schedule.equal h h' then true
  else begin
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.add visited h ();
    Queue.add h queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let current = Queue.pop queue in
      List.iter
        (fun next ->
          if not (Hashtbl.mem visited next) then begin
            if Schedule.equal next h' then found := true;
            Hashtbl.add visited next ();
            Queue.add next queue
          end)
        (neighbours syntax current)
    done;
    !found
  end

let classes syntax =
  let all = Schedule.all (Syntax.format syntax) in
  let assigned = Hashtbl.create 64 in
  List.filter_map
    (fun h ->
      if Hashtbl.mem assigned h then None
      else begin
        (* flood the class *)
        let members = ref [] in
        let queue = Queue.create () in
        Hashtbl.add assigned h ();
        Queue.add h queue;
        while not (Queue.is_empty queue) do
          let current = Queue.pop queue in
          members := current :: !members;
          List.iter
            (fun next ->
              if not (Hashtbl.mem assigned next) then begin
                Hashtbl.add assigned next ();
                Queue.add next queue
              end)
            (neighbours syntax current)
        done;
        Some (List.rev !members)
      end)
    all

let class_count syntax = List.length (classes syntax)

let serializable_classes syntax =
  List.length
    (List.filter (fun cls -> List.exists Schedule.is_serial cls) (classes syntax))
