(** Weak serializability — Section 4.3.

    A schedule [h] is {b weakly serializable} if, starting from {e any}
    state [E], its execution ends in a state achievable by some
    concatenation of transactions — possibly with repetitions and
    omissions — also starting from [E]. Unlike [SR], the check uses the
    {e actual} interpretations (semantic information), but not the
    integrity constraints.

    The universal quantification over states and the unbounded
    concatenation length are approximated by a finite probe set and a
    depth bound (see DESIGN.md, substitutions): refutation is sound;
    acceptance is sound up to the bound. The depth bound defaults to
    [n + 2] transactions, which suffices for all the systems in the
    paper (the concatenation never needs to be much longer than the
    schedule itself for the examples considered). *)

type verdict =
  | Weakly_serializable of int list list
      (** One witness concatenation per probe state, in probe order. *)
  | Refuted of State.t
      (** A probe state from which no concatenation reaches [h]'s final
          state within the depth bound. *)

val check :
  ?max_len:int ->
  ?max_states:int ->
  System.t ->
  probes:State.t list ->
  Schedule.t ->
  verdict
(** [check sys ~probes h] decides (boundedly) whether [h ∈ WSR(T)].
    [max_len] bounds concatenation length (default [n + 2]);
    [max_states] bounds the breadth-first state exploration per probe
    (default 200_000, a safety valve for large domains). *)

val is_weakly_serializable :
  ?max_len:int -> ?max_states:int -> System.t -> probes:State.t list ->
  Schedule.t -> bool

val reachable_finals :
  ?max_len:int -> ?max_states:int -> System.t -> State.t ->
  (State.t * int list) list
(** All states reachable from a given state by concatenations of
    complete transactions within the bounds, each with one witness
    concatenation (shortest-first exploration). *)

val default_probes : ?bound:int -> ?count:int -> seed:int -> System.t -> State.t list
(** Probe states: full enumeration when every domain is finite and the
    product is small, otherwise [count] (default 25) random states
    sampled with values in [-bound..bound] (default 8). *)
