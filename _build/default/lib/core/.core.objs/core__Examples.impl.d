lib/core/examples.ml: Array Expr Names State Syntax System
