lib/core/adversary.mli: Herbrand Names Schedule State Syntax System
