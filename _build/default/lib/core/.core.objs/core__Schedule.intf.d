lib/core/schedule.mli: Format Names Random
