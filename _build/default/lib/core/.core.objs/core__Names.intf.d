lib/core/names.mli: Format Map Set
