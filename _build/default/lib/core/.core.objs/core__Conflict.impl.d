lib/core/conflict.ml: Array Digraph Hashtbl List Names Syntax
