lib/core/system.mli: Expr Format Names State Syntax
