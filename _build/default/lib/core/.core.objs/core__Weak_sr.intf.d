lib/core/weak_sr.mli: Schedule State System
