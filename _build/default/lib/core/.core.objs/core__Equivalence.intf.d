lib/core/equivalence.mli: Schedule Syntax
