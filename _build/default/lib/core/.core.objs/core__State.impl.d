lib/core/state.ml: Expr Format List Names
