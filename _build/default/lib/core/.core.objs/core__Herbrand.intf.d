lib/core/herbrand.mli: Format Names Schedule Syntax
