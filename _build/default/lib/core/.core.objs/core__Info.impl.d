lib/core/info.ml: Exec Expr Fixpoint Format List Schedule String Syntax System Weak_sr
