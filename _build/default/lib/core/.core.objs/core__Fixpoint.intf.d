lib/core/fixpoint.mli: Schedule State Syntax System
