lib/core/fixpoint.ml: Conflict Exec List Schedule Syntax System Weak_sr
