lib/core/info.mli: Format Schedule State System
