lib/core/recovery.mli: Format Rw_model
