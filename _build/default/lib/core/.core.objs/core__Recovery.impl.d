lib/core/recovery.ml: Array Format Hashtbl List Names Rw_model
