lib/core/examples.mli: Names Schedule State Syntax System
