lib/core/syntax.mli: Format Names
