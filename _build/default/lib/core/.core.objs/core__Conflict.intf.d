lib/core/conflict.mli: Digraph Schedule Syntax
