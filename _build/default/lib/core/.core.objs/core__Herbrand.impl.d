lib/core/herbrand.ml: Array Combin Format List Names Printf Schedule String Syntax
