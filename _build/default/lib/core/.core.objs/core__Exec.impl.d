lib/core/exec.ml: Array Expr List Names Printf State Syntax System
