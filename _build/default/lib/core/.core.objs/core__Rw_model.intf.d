lib/core/rw_model.mli: Format Names
