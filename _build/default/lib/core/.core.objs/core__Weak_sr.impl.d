lib/core/weak_sr.ml: Exec Expr List Map Random State System
