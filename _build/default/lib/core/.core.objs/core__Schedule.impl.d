lib/core/schedule.ml: Array Combin Format Int List Names
