lib/core/rw_model.ml: Array Combin Digraph Format Fun Hashtbl Int List Names String
