lib/core/adversary.ml: Array Exec Expr Herbrand List Names Set State Syntax System
