lib/core/equivalence.ml: Array Hashtbl List Names Queue Schedule String Syntax
