lib/core/state.mli: Expr Format Names Random
