lib/core/exec.mli: Expr Names Schedule State System
