lib/core/names.ml: Format Int Map Set String
