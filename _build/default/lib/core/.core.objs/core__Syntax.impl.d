lib/core/syntax.ml: Array Format Int List Names String
