lib/core/system.ml: Array Expr Format List Names Printf State Syntax
