(** Fixpoint sets and the information–performance trade-off (Section 3).

    The performance of a scheduler is measured by its fixpoint set [P]:
    the schedules it passes with no delay. This module computes, for
    small systems by exhaustive enumeration of [H], the fixpoint sets of
    the optimal schedulers at each information level of Section 4:

    - [Serial(T)]  — minimum information (format only), Theorem 2;
    - [SR(T)]      — complete syntactic information, Theorem 3;
    - [WSR(T)]     — everything but the integrity constraints, Theorem 4;
    - [C(T)]       — maximum information.

    All sets are represented as lists of schedules in the (deterministic)
    enumeration order of [H]. *)

type sets = {
  h : Schedule.t list;       (** all schedules *)
  serial : Schedule.t list;
  sr : Schedule.t list;      (** via the conflict-graph test *)
  wsr : Schedule.t list;     (** bounded, on the given probes *)
  c : Schedule.t list;       (** bounded, on the given probes *)
}

val compute :
  ?max_len:int -> ?max_states:int -> System.t -> probes:State.t list -> sets
(** Exhaustively classify every schedule. Requires a small format
    (|H| ≤ 2_000_000 by {!Combin.Interleave.all}'s guard; in practice
    keep |H| within a few thousand when probes are many). *)

val counts : sets -> int * int * int * int * int
(** [(|H|, |Serial|, |SR|, |WSR|, |C|)]. *)

val chain_holds : sets -> bool
(** The hierarchy [Serial ⊆ SR ⊆ WSR ⊆ C ⊆ H] as set inclusions. *)

val subset : Schedule.t list -> Schedule.t list -> bool

val sr_only : Syntax.t -> Schedule.t list
(** Just [SR(T)] (syntactic — needs no semantics), by the conflict test. *)

val serial_only : int array -> Schedule.t list

val zero_delay_ratio : Schedule.t list -> int array -> float
(** [|P| / |H|] — the Section 6 probability that a uniformly random
    request history is passed without any delay. *)
