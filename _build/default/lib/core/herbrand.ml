type term =
  | Init of Names.var
  | App of Names.step_id * term list

let rec equal_term a b =
  match a, b with
  | Init v, Init w -> String.equal v w
  | App (s, args), App (s', args') ->
    Names.equal_step s s' && List.equal equal_term args args'
  | (Init _ | App _), _ -> false

let rec compare_term a b =
  match a, b with
  | Init v, Init w -> String.compare v w
  | Init _, App _ -> -1
  | App _, Init _ -> 1
  | App (s, args), App (s', args') -> (
    match Names.compare_step s s' with
    | 0 -> List.compare compare_term args args'
    | c -> c)

let rec pp_term ppf = function
  | Init v -> Format.fprintf ppf "%s0" v
  | App (s, args) ->
    Format.fprintf ppf "f%s(%a)"
      (let open Names in
       Printf.sprintf "%d%d" (s.tx + 1) (s.idx + 1))
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         pp_term)
      args

let term_to_string t = Format.asprintf "%a" pp_term t

let rec term_size = function
  | Init _ -> 1
  | App (_, args) -> List.fold_left (fun n t -> n + term_size t) 1 args

type hstate = term Names.Vmap.t

let initial syntax =
  List.fold_left
    (fun m v -> Names.Vmap.add v (Init v) m)
    Names.Vmap.empty (Syntax.vars syntax)

let exec_step syntax (g, locals) (id : Names.step_id) =
  let x = Syntax.var syntax id in
  let read = Names.Vmap.find x g in
  let locals = Array.copy locals in
  locals.(id.tx) <- Array.copy locals.(id.tx);
  locals.(id.tx).(id.idx) <- Some read;
  let args =
    List.init (id.idx + 1) (fun k ->
        match locals.(id.tx).(k) with
        | Some t -> t
        | None -> invalid_arg "Herbrand.exec_step: illegal schedule")
  in
  (Names.Vmap.add x (App (id, args)) g, locals)

let run syntax h =
  let fmt = Syntax.format syntax in
  let locals = Array.map (fun m -> Array.make m None) fmt in
  let st = (initial syntax, locals) in
  fst (Array.fold_left (exec_step syntax) st h)

let equal_state = Names.Vmap.equal equal_term

let serialization_witness syntax h =
  let fmt = Syntax.format syntax in
  let n = Array.length fmt in
  let target = run syntax h in
  let found = ref None in
  (try
     Combin.Perm.iter n (fun order ->
         let serial = Schedule.serial fmt order in
         if equal_state (run syntax serial) target then begin
           found := Some (Array.copy order);
           raise Exit
         end)
   with Exit -> ());
  !found

let serializable syntax h = serialization_witness syntax h <> None

let equivalent syntax h h' = equal_state (run syntax h) (run syntax h')

let pp_state ppf g =
  Format.fprintf ppf "{";
  let first = ref true in
  Names.Vmap.iter
    (fun v t ->
      if not !first then Format.fprintf ppf ", ";
      first := false;
      Format.fprintf ppf "%s=%a" v pp_term t)
    g;
  Format.fprintf ppf "}"
