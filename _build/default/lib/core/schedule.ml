type t = Names.step_id array

let of_interleaving il =
  let max_tx = Array.fold_left max (-1) il in
  let next = Array.make (max_tx + 1) 0 in
  Array.map
    (fun tx ->
      let idx = next.(tx) in
      next.(tx) <- idx + 1;
      Names.step tx idx)
    il

let to_interleaving h = Array.map (fun (s : Names.step_id) -> s.tx) h

let is_schedule_of fmt h =
  let n = Array.length fmt in
  let next = Array.make n 0 in
  try
    Array.iter
      (fun (s : Names.step_id) ->
        if s.tx < 0 || s.tx >= n then raise Exit;
        if s.idx <> next.(s.tx) then raise Exit;
        next.(s.tx) <- s.idx + 1)
      h;
    next = fmt
  with Exit -> false

let serial fmt order = of_interleaving (Combin.Interleave.serial fmt order)

let serial_order h =
  (* scan maximal runs of equal transaction index; serial iff each
     transaction appears in exactly one run *)
  let len = Array.length h in
  if len = 0 then Some [||]
  else begin
    let runs = ref [] in
    let current = ref h.(0).Names.tx in
    runs := [ !current ];
    for k = 1 to len - 1 do
      let tx = h.(k).Names.tx in
      if tx <> !current then begin
        current := tx;
        runs := tx :: !runs
      end
    done;
    let order = List.rev !runs in
    let sorted = List.sort_uniq Int.compare order in
    if List.length sorted = List.length order then Some (Array.of_list order)
    else None
  end

let is_serial h = serial_order h <> None

let all fmt = List.map of_interleaving (Combin.Interleave.all fmt)

let all_serial fmt =
  let n = Array.length fmt in
  List.map (fun order -> serial fmt order) (Combin.Perm.all n)

let count = Combin.Interleave.count

let random st fmt = of_interleaving (Combin.Interleave.random st fmt)

let positions h = Array.to_list (Array.mapi (fun k s -> (s, k)) h)

let prefix h k = Array.sub h 0 k

let equal a b = a = b

let pp ppf h =
  Format.fprintf ppf "(";
  Array.iteri
    (fun k s ->
      if k > 0 then Format.fprintf ppf ", ";
      Names.pp_step ppf s)
    h;
  Format.fprintf ppf ")"

let to_string h = Format.asprintf "%a" pp h
