(** Executable adversary constructions from the proofs of Theorems 1–3.

    Theorem 1 states that a correct scheduler using information level [I]
    has fixpoint set [P ⊆ ∩_{T'∈I} C(T')]. Its proof — and the proofs of
    the optimality theorems — work by {e constructing} an adversarial
    transaction system [T' ∈ I] for which a given schedule is incorrect.
    This module materialises those constructions so the theorems become
    testable claims:

    - {b Theorem 2}: any non-serial schedule is refuted by a system whose
      interrupted transaction is [x ← x+1 ... x ← x−1] and whose
      interrupting transaction is [x ← 2x], with [IC = (x = 0)]. The
      adversary shares the {e format} of the original system (the
      minimum-information level).
    - {b Theorem 3}: any non-serializable schedule is refuted by the
      Herbrand system over the same {e syntax}, with [IC] = the states
      reachable from the initial values by concatenations of serial
      transaction executions. *)

val interruption : Schedule.t -> (Names.step_id * Names.step_id * Names.step_id) option
(** A witness of non-seriality: steps [T_ij], [T_kl], [T_i(j+1)]
    appearing in this order with [k ≠ i] — some transaction interrupted
    by another. [None] iff the schedule is serial. For an interrupted
    final step (nothing of [T_i] follows the interruption), returns the
    last step of [T_i] before and the first after... (there is always a
    later [T_i] step by maximality of the choice). *)

val theorem2_adversary : int array -> Schedule.t -> System.t option
(** [theorem2_adversary fmt h] is [Some t'] for non-serial [h]: a system
    with format [fmt], single variable ["x"], [IC = (x = 0)], in which
    every transaction is individually correct but running [h] from
    [x = 0] ends inconsistent. [None] iff [h] is serial. *)

val theorem2_refutes : int array -> Schedule.t -> bool
(** Checks by {e execution} that the constructed adversary refutes [h]:
    all transactions individually correct, initial state consistent,
    final state of [h] inconsistent. [false] if [h] is serial. *)

val herbrand_reachable : ?slack:int -> Syntax.t -> Herbrand.hstate -> bool
(** The Theorem-3 integrity constraint: is a Herbrand state reachable
    from the initial values by a concatenation of serial transaction
    executions? Searched over concatenations of length up to
    [n + slack] (default slack 0 — length [n] suffices for full
    schedules, since symbolic states count symbol applications). *)

val theorem3_refutes : Syntax.t -> Schedule.t -> bool
(** For [h ∉ SR(T)]: checks that executing [h] under the Herbrand
    semantics leaves the constructed [IC] (serial reachability).
    Equivalence [theorem3_refutes s h ⟺ not (Herbrand.serializable s h)]
    is the executable content of Theorem 3 and is property-tested. *)

val theorem1_bound_holds :
  universe:System.t list -> probes:State.t list -> Schedule.t list -> bool
(** Direct check of the Theorem-1 inequality on an explicit finite
    universe [I]: every listed schedule that is in the claimed fixpoint
    set must be in [C(T')] for each [T' ∈ I]. The caller passes the
    schedules it claims a scheduler passes undelayed. *)
