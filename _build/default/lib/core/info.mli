(** Information levels and the induced partial orders (Section 3.3).

    A level of information about a transaction system [T] is the set of
    systems that [T] cannot be distinguished from — equivalently, a
    projection [I(·)] with [I = {T' : I(T') = I(T)}]. This module fixes
    the four levels studied in Section 4 and maps each to the fixpoint
    set of its optimal scheduler, realising the paper's isomorphism
    between the information order and the performance order. *)

type level =
  | Format_only
      (** minimum information: only [(m_1, ..., m_n)] is known *)
  | Syntactic
      (** the syntax is known; semantics and IC are not *)
  | Semantic_no_ic
      (** syntax and interpretations known; IC unknown *)
  | Complete  (** the singleton level [{T}] *)

val all_levels : level list
(** In increasing order of information. *)

val leq : level -> level -> bool
(** [leq a b]: level [a] conveys at most the information of [b]
    (i.e. the set [I_a ⊇ I_b]). Total here, as the four levels form a
    chain. *)

val same_class : level -> System.t -> System.t -> bool
(** Whether two systems are indistinguishable at a level: equal formats,
    equal syntaxes, equal syntax+interpretations, or equal systems
    respectively. ([Complete] compares everything except [Sat] closures,
    which compare by name.) *)

val optimal_fixpoint :
  ?max_len:int -> ?max_states:int -> System.t -> probes:State.t list ->
  level -> Schedule.t list
(** The fixpoint set of the optimal scheduler at a level, per Theorems
    2–4 and the maximum-information case. Exhaustive; small formats. *)

val monotone :
  ?max_len:int -> ?max_states:int -> System.t -> probes:State.t list -> bool
(** The fundamental trade-off, checked exhaustively: if [a ≤ b] then
    [optimal_fixpoint a ⊆ optimal_fixpoint b]. *)

val pp_level : Format.formatter -> level -> unit
