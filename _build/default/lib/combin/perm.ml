let factorial n =
  if n < 0 then invalid_arg "Perm.factorial: negative";
  if n > 20 then invalid_arg "Perm.factorial: would overflow";
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

(* Advance [a] to the next lexicographic permutation in place.
   Returns [false] when [a] was the last one. *)
let next_in_place a =
  let n = Array.length a in
  let rec pivot i =
    if i < 0 then -1 else if a.(i) < a.(i + 1) then i else pivot (i - 1)
  in
  let i = pivot (n - 2) in
  if i < 0 then false
  else begin
    let rec successor j = if a.(j) > a.(i) then j else successor (j - 1) in
    let j = successor (n - 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp;
    (* reverse the suffix after i *)
    let lo = ref (i + 1) and hi = ref (n - 1) in
    while !lo < !hi do
      let t = a.(!lo) in
      a.(!lo) <- a.(!hi);
      a.(!hi) <- t;
      incr lo;
      decr hi
    done;
    true
  end

let iter n f =
  if n < 0 then invalid_arg "Perm.iter: negative";
  let a = Array.init n (fun i -> i) in
  let continue = ref true in
  while !continue do
    f a;
    continue := next_in_place a
  done

let all n =
  if n > 10 then invalid_arg "Perm.all: too large";
  let acc = ref [] in
  iter n (fun a -> acc := Array.copy a :: !acc);
  List.rev !acc

exception Found

let exists n p =
  let a = Array.init n (fun i -> i) in
  try
    let continue = ref true in
    while !continue do
      if p a then raise Found;
      continue := next_in_place a
    done;
    false
  with Found -> true

let rank p =
  let n = Array.length p in
  let used = Array.make n false in
  let r = ref 0 in
  for i = 0 to n - 1 do
    let smaller = ref 0 in
    for v = 0 to p.(i) - 1 do
      if not used.(v) then incr smaller
    done;
    r := !r + (!smaller * factorial (n - 1 - i));
    used.(p.(i)) <- true
  done;
  !r

let unrank n r =
  if r < 0 || (n <= 20 && r >= factorial n) then
    invalid_arg "Perm.unrank: rank out of range";
  let avail = Array.init n (fun i -> i) in
  let remove k =
    (* remove and return the k-th remaining element *)
    let v = avail.(k) in
    Array.blit avail (k + 1) avail k (n - k - 1);
    v
  in
  let p = Array.make n 0 in
  let r = ref r in
  for i = 0 to n - 1 do
    let f = factorial (n - 1 - i) in
    let k = !r / f in
    r := !r mod f;
    p.(i) <- remove k
  done;
  p

let random st n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let is_permutation a =
  let n = Array.length a in
  let seen = Array.make n false in
  try
    Array.iter
      (fun v ->
        if v < 0 || v >= n || seen.(v) then raise Exit;
        seen.(v) <- true)
      a;
    true
  with Exit -> false

let inverse p =
  let n = Array.length p in
  let q = Array.make n 0 in
  for i = 0 to n - 1 do
    q.(p.(i)) <- i
  done;
  q

let apply p a = Array.map (fun i -> a.(i)) p
