lib/combin/interleave.mli: Random
