lib/combin/perm.ml: Array List Random
