lib/combin/perm.mli: Random
