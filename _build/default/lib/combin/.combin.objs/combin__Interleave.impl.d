lib/combin/interleave.ml: Array List Random
