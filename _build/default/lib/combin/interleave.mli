(** Interleavings of [n] sequences — the schedule space [H] of the paper.

    A transaction system with format [(m_1, ..., m_n)] admits exactly
    [(Σ m_i)! / Π (m_i!)] schedules: the permutations of all steps that
    preserve each transaction's internal order. An interleaving is
    represented as an [int array] whose [k]-th entry names the transaction
    whose next step executes at position [k]; the [j]-th occurrence of
    transaction [i] is its step [j]. *)

val count : int array -> int
(** [count fmt] is the multinomial [(Σ fmt_i)! / Π fmt_i!], the size of
    [H] for that format. Raises [Invalid_argument] on overflow or a
    negative entry. *)

val iter : int array -> (int array -> unit) -> unit
(** [iter fmt f] enumerates every interleaving of the format in
    lexicographic order of transaction indices. The array passed to [f]
    is reused; copy it to retain. *)

val all : int array -> int array list
(** [all fmt] lists every interleaving. Intended for small formats;
    raises [Invalid_argument] when {!count} exceeds [2_000_000]. *)

val fold : int array -> ('a -> int array -> 'a) -> 'a -> 'a
(** [fold fmt f init] folds [f] over all interleavings. The array is
    reused between calls. *)

val rank : int array -> int array -> int
(** [rank fmt il] is the lexicographic index of interleaving [il] for
    format [fmt]. Inverse of {!unrank}. *)

val unrank : int array -> int -> int array
(** [unrank fmt r] is the [r]-th (0-based lexicographic) interleaving.
    Raises [Invalid_argument] if [r] is out of range. *)

val random : Random.State.t -> int array -> int array
(** [random st fmt] draws an interleaving uniformly at random (by
    sequentially choosing each position proportionally to the remaining
    completions). *)

val is_valid : int array -> int array -> bool
(** [is_valid fmt il] checks that [il] uses transaction [i] exactly
    [fmt.(i)] times and mentions no other index. *)

val serial : int array -> int array -> int array
(** [serial fmt order] is the serial interleaving executing whole
    transactions in the order given by permutation [order]. *)

val is_serial : int array -> int array -> bool
(** [is_serial fmt il] is [true] iff [il] is a concatenation of complete
    transactions. *)
