(** Permutations of [0 .. n-1].

    Used to enumerate serial orders of transactions (the [n!] serial
    schedules a serialization test must compare against) and as a building
    block for schedule enumeration. *)

val factorial : int -> int
(** [factorial n] is [n!]. Raises [Invalid_argument] if [n < 0] or the
    result would overflow a 63-bit integer ([n > 20]). *)

val all : int -> int array list
(** [all n] enumerates every permutation of [0 .. n-1], in lexicographic
    order. [all 0] is [[ [||] ]]. Intended for small [n]; raises
    [Invalid_argument] for [n > 10]. *)

val iter : int -> (int array -> unit) -> unit
(** [iter n f] applies [f] to each permutation of [0 .. n-1] in
    lexicographic order. The array passed to [f] is reused between calls;
    copy it if you keep it. *)

val exists : int -> (int array -> bool) -> bool
(** [exists n p] is [true] iff some permutation of [0 .. n-1] satisfies
    [p]. Short-circuits. The array is reused; do not retain it. *)

val rank : int array -> int
(** [rank p] is the lexicographic index of permutation [p] among all
    permutations of its length. Inverse of {!unrank}. *)

val unrank : int -> int -> int array
(** [unrank n r] is the [r]-th (0-based, lexicographic) permutation of
    [0 .. n-1]. Raises [Invalid_argument] if [r] is out of range. *)

val random : Random.State.t -> int -> int array
(** [random st n] draws a uniformly random permutation of [0 .. n-1]
    (Fisher–Yates). *)

val is_permutation : int array -> bool
(** [is_permutation a] checks that [a] contains each of [0 .. n-1]
    exactly once. *)

val inverse : int array -> int array
(** [inverse p] is the inverse permutation: [inverse p].(p.(i)) = i. *)

val apply : int array -> 'a array -> 'a array
(** [apply p a] permutes [a] so that element [i] of the result is
    [a.(p.(i))]. *)
