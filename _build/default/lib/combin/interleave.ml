let total fmt = Array.fold_left ( + ) 0 fmt

let count fmt =
  Array.iter (fun m -> if m < 0 then invalid_arg "Interleave.count: negative") fmt;
  (* Compute the multinomial incrementally as a product of binomials to
     keep intermediate values small: C(s1,m1) * C(s1+m2,m2) * ... *)
  let binom n k =
    let k = min k (n - k) in
    let rec go acc i =
      if i > k then acc
      else
        let acc = acc * (n - k + i) in
        if acc < 0 then invalid_arg "Interleave.count: overflow"
        else go (acc / i) (i + 1)
    in
    go 1 1
  in
  let _, c =
    Array.fold_left
      (fun (s, c) m ->
        let s = s + m in
        let c = c * binom s m in
        if c < 0 then invalid_arg "Interleave.count: overflow" else (s, c))
      (0, 1) fmt
  in
  c

let iter fmt f =
  let n = Array.length fmt in
  let len = total fmt in
  let remaining = Array.copy fmt in
  let buf = Array.make len 0 in
  let rec go pos =
    if pos = len then f buf
    else
      for i = 0 to n - 1 do
        if remaining.(i) > 0 then begin
          remaining.(i) <- remaining.(i) - 1;
          buf.(pos) <- i;
          go (pos + 1);
          remaining.(i) <- remaining.(i) + 1
        end
      done
  in
  if len = 0 then f buf else go 0

let all fmt =
  if count fmt > 2_000_000 then invalid_arg "Interleave.all: too many";
  let acc = ref [] in
  iter fmt (fun il -> acc := Array.copy il :: !acc);
  List.rev !acc

let fold fmt f init =
  let acc = ref init in
  iter fmt (fun il -> acc := f !acc il);
  !acc

(* Number of interleavings completing a partial state with [remaining]
   steps left per transaction. *)
let completions remaining = count remaining

let rank fmt il =
  let remaining = Array.copy fmt in
  let r = ref 0 in
  Array.iter
    (fun tx ->
      for i = 0 to tx - 1 do
        if remaining.(i) > 0 then begin
          remaining.(i) <- remaining.(i) - 1;
          r := !r + completions remaining;
          remaining.(i) <- remaining.(i) + 1
        end
      done;
      remaining.(tx) <- remaining.(tx) - 1)
    il;
  !r

let unrank fmt r =
  if r < 0 || r >= count fmt then invalid_arg "Interleave.unrank: out of range";
  let n = Array.length fmt in
  let len = total fmt in
  let remaining = Array.copy fmt in
  let il = Array.make len 0 in
  let r = ref r in
  for pos = 0 to len - 1 do
    let chosen = ref (-1) in
    let i = ref 0 in
    while !chosen < 0 && !i < n do
      if remaining.(!i) > 0 then begin
        remaining.(!i) <- remaining.(!i) - 1;
        let c = completions remaining in
        if !r < c then chosen := !i
        else begin
          r := !r - c;
          remaining.(!i) <- remaining.(!i) + 1
        end
      end;
      incr i
    done;
    il.(pos) <- !chosen
  done;
  il

let random st fmt =
  let len = total fmt in
  let remaining = Array.copy fmt in
  let left = ref len in
  Array.init len (fun _ ->
      (* choose transaction i with probability remaining.(i) / left,
         which yields the uniform distribution over interleavings *)
      let k = Random.State.int st !left in
      let rec pick i acc =
        let acc = acc + remaining.(i) in
        if k < acc then i else pick (i + 1) acc
      in
      let i = pick 0 0 in
      remaining.(i) <- remaining.(i) - 1;
      decr left;
      i)

let is_valid fmt il =
  let n = Array.length fmt in
  let counts = Array.make n 0 in
  try
    Array.iter
      (fun tx ->
        if tx < 0 || tx >= n then raise Exit;
        counts.(tx) <- counts.(tx) + 1)
      il;
    counts = fmt
  with Exit -> false

let serial fmt order =
  let parts =
    Array.to_list order
    |> List.map (fun tx -> Array.make fmt.(tx) tx)
  in
  Array.concat parts

let is_serial fmt il =
  let len = Array.length il in
  let rec go pos =
    if pos >= len then true
    else
      let tx = il.(pos) in
      let m = fmt.(tx) in
      let rec whole k =
        k = m || (pos + k < len && il.(pos + k) = tx && whole (k + 1))
      in
      whole 0 && go (pos + m)
  in
  go 0
