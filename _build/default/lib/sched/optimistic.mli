open Core

(** Optimistic concurrency control — the validation-based approach Kung
    developed on top of this paper's framework (Kung–Robinson 1981),
    included as the non-locking literature baseline.

    Transactions run against private workspaces: a step reads the
    transaction's own pending write if it has one, otherwise the
    committed database, recording the version it saw; the step's write
    is buffered. At the transaction's last step it {e validates}: if any
    variable it read from the committed state has been committed by
    another transaction since, it aborts and restarts; otherwise all its
    writes commit atomically.

    Requests are therefore never delayed — all the cost appears as
    restarts — and the committed effect always equals a serial execution
    in commit order (property-tested). *)

val create :
  system:System.t -> initial:State.t -> unit ->
  Scheduler.t * (unit -> State.t) * (unit -> int list)
(** [(scheduler, committed_state, commit_order)]: the second component
    reads the committed database, the third the transaction commit
    order so far (most recent last). *)
