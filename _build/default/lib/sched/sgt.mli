open Core

(** The serialization-graph-testing scheduler — the {e realised} optimal
    scheduler for complete syntactic information (Theorem 3).

    Maintains the conflict graph of the granted prefix and grants a step
    iff the graph stays acyclic. Because conflict serializability is
    prefix-closed and coincides with the Herbrand notion [SR(T)] in the
    paper's step model, the fixpoint set of this scheduler is exactly
    [SR(T)]. A request that would close a cycle can never succeed later
    (edges only accumulate), so stalls are resolved by aborting the
    requester, whose edges are then removed. *)

val create : syntax:Syntax.t -> Scheduler.t
