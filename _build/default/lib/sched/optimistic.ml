open Core

type workspace = {
  mutable reads : (Names.var * int) list;
      (** variables read from the committed state, with the version seen *)
  mutable writes : State.t;  (** private buffered writes *)
  mutable locals : Expr.Value.t option array;
}

let create ~system ~initial () =
  let fmt = System.format system in
  let n = Array.length fmt in
  let committed = ref initial in
  let versions : (Names.var, int) Hashtbl.t = Hashtbl.create 16 in
  let version v = try Hashtbl.find versions v with Not_found -> 0 in
  let commit_log = ref [] in
  let fresh i =
    { reads = []; writes = State.empty; locals = Array.make fmt.(i) None }
  in
  let ws = Array.init n fresh in
  let read_var i v =
    match State.get ws.(i).writes v with
    | value -> value
    | exception Not_found ->
      let value = State.get !committed v in
      if not (List.mem_assoc v ws.(i).reads) then
        ws.(i).reads <- (v, version v) :: ws.(i).reads;
      value
  in
  let execute_step (id : Names.step_id) =
    let i = id.Names.tx in
    let x = Syntax.var system.System.syntax id in
    let t_read = read_var i x in
    ws.(i).locals.(id.Names.idx) <- Some t_read;
    let lookup k =
      match ws.(i).locals.(k) with
      | Some v -> v
      | None -> raise (Expr.Ast.Type_error "undeclared local")
    in
    let written =
      Expr.Ast.eval ~locals:lookup
        ~globals:(fun _ -> raise (Expr.Ast.Type_error "global in phi"))
        (System.phi system id)
    in
    ws.(i).writes <- State.set ws.(i).writes x written
  in
  let valid i =
    List.for_all (fun (v, seen) -> version v = seen) ws.(i).reads
  in
  let attempt (id : Names.step_id) =
    let i = id.Names.tx in
    let is_last = id.Names.idx = fmt.(i) - 1 in
    if is_last then
      (* validation: simulate the step first to complete the read set *)
      if valid i then Scheduler.Grant else Scheduler.Abort
    else Scheduler.Grant
  in
  let commit (id : Names.step_id) =
    let i = id.Names.tx in
    execute_step id;
    if id.Names.idx = fmt.(i) - 1 then begin
      (* validation already succeeded in attempt; publish the writes *)
      State.bindings ws.(i).writes
      |> List.iter (fun (v, value) ->
             committed := State.set !committed v value;
             Hashtbl.replace versions v (version v + 1));
      commit_log := i :: !commit_log;
      ws.(i) <- fresh i
    end
  in
  let on_abort i = ws.(i) <- fresh i in
  ( Scheduler.make ~name:"OCC" ~attempt ~commit ~on_abort (),
    (fun () -> !committed),
    fun () -> List.rev !commit_log )
