open Core

let create ~fmt =
  let active = ref None in
  let attempt (id : Names.step_id) =
    match !active with
    | None -> Scheduler.Grant
    | Some i -> if i = id.Names.tx then Scheduler.Grant else Scheduler.Delay
  in
  let commit (id : Names.step_id) =
    if id.Names.idx = fmt.(id.Names.tx) - 1 then active := None
    else active := Some id.Names.tx
  in
  let on_abort i =
    match !active with
    | Some j when j = i -> active := None
    | Some _ | None -> ()
  in
  Scheduler.make ~name:"serial" ~attempt ~commit ~on_abort ()
