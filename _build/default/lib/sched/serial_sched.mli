(** The serial scheduler (Theorem 2): one transaction at a time.

    Grants a step iff no transaction is currently active or the
    requesting transaction is the active one; the active transaction
    releases the floor when its last step is granted. Its fixpoint set
    is exactly the serial schedules — optimal for minimum information
    (the scheduler needs nothing beyond the format). *)

val create : fmt:int array -> Scheduler.t
