open Core

type arcs = Expr.Ast.t array array

let trivial_arcs fmt =
  Array.map (fun m -> Array.make (m + 1) (Expr.Ast.bool true)) fmt

let ic_arcs sys =
  match sys.System.ic with
  | System.Pred e ->
    Array.map
      (fun m ->
        Array.init (m + 1) (fun k ->
            if k = 0 || k = m then e else Expr.Ast.bool true))
      (System.format sys)
  | System.Trivial | System.Sat _ ->
    invalid_arg "Assertional.ic_arcs: needs a Pred integrity constraint"

let holds g e =
  Expr.Value.bool
    (Expr.Ast.eval
       ~locals:(fun _ -> raise (Expr.Ast.Type_error "local in assertion"))
       ~globals:(fun v -> State.get g v)
       e)

let create ~system ~arcs ~initial () =
  let fmt = System.format system in
  let n = Array.length fmt in
  if Array.length arcs <> n then invalid_arg "Assertional.create: arcs size";
  Array.iteri
    (fun i a ->
      if Array.length a <> fmt.(i) + 1 then
        invalid_arg "Assertional.create: arc count mismatch")
    arcs;
  let globals = ref initial in
  let pc = Array.make n 0 in
  let locals = Array.map (fun m -> Array.make m None) fmt in
  let undo : (Names.var * Expr.Value.t) list array = Array.make n [] in
  let apply (id : Names.step_id) =
    (* returns (new globals, value read) without committing *)
    let x = Syntax.var system.System.syntax id in
    let read = State.get !globals x in
    let lookup k =
      if k = id.Names.idx then read
      else
        match locals.(id.Names.tx).(k) with
        | Some v -> v
        | None -> raise (Expr.Ast.Type_error "undeclared local")
    in
    let written =
      Expr.Ast.eval ~locals:lookup
        ~globals:(fun _ -> raise (Expr.Ast.Type_error "global in phi"))
        (System.phi system id)
    in
    (State.set !globals x written, read)
  in
  let attempt (id : Names.step_id) =
    match apply id with
    | exception Expr.Ast.Type_error _ -> Scheduler.Delay
    | g', _ ->
      let ok = ref true in
      for j = 0 to n - 1 do
        if j <> id.Names.tx && not (holds g' arcs.(j).(pc.(j))) then ok := false
      done;
      if !ok then Scheduler.Grant else Scheduler.Delay
  in
  let commit (id : Names.step_id) =
    let i = id.Names.tx in
    let x = Syntax.var system.System.syntax id in
    let g', read = apply id in
    undo.(i) <- (x, State.get !globals x) :: undo.(i);
    locals.(i).(id.Names.idx) <- Some read;
    pc.(i) <- id.Names.idx + 1;
    globals := g'
  in
  let on_abort i =
    (* back the transaction up: restore its writes, newest first *)
    List.iter (fun (x, v) -> globals := State.set !globals x v) undo.(i);
    undo.(i) <- [];
    Array.fill locals.(i) 0 (Array.length locals.(i)) None;
    pc.(i) <- 0
  in
  ( Scheduler.make ~name:"assertional" ~attempt ~commit ~on_abort (),
    fun () -> !globals )
