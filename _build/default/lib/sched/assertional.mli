open Core

(** Lamport's assertional scheduler (Section 6) — a scheduler that uses
    the integrity constraints (through correctness proofs) and can
    produce correct schedules beyond the serializable ones.

    Each transaction carries Floyd-style assertions on the arcs of its
    (straight-line) program: [arcs.(i).(k)] is the assertion holding
    after [k] granted steps of transaction [i] ([k] ranges over
    [0 .. m_i]; the entry and exit assertions are typically the
    integrity constraints). The scheduling policy is the paper's:

    {e the request to execute one step is granted only if the execution
    will not invalidate any of the assertions attached to those arcs
    where the tokens of the other transactions reside.}

    The scheduler owns the database state (it must evaluate the actual
    interpretations); aborts restore the transaction's writes from an
    undo log — the paper's "backing up" resolution for assertional
    deadlocks. *)

type arcs = Expr.Ast.t array array
(** Boolean expressions over global variables; [arcs.(i)] has length
    [m_i + 1]. *)

val trivial_arcs : int array -> arcs
(** All assertions [true] — degenerates into first-come-first-served. *)

val ic_arcs : System.t -> arcs
(** Entry and exit arcs carry the system's [Pred] integrity constraint,
    interior arcs are [true]. Raises [Invalid_argument] for non-[Pred]
    constraints. *)

val create :
  system:System.t -> arcs:arcs -> initial:State.t -> unit ->
  Scheduler.t * (unit -> State.t)
(** The scheduler applies the steps to its own copy of the state,
    starting from [initial]; the second component reads the database
    state after the grants so far. *)
