open Core

type response = Grant | Delay | Abort

type t = {
  name : string;
  attempt : Names.step_id -> response;
  commit : Names.step_id -> unit;
  on_abort : int -> unit;
  victim : int list -> int option;
  detect : (int * Names.step_id) list -> int option;
}

let default_victim = function [] -> None | tx :: _ -> Some tx

let make ~name ~attempt ~commit ?(on_abort = fun _ -> ())
    ?(victim = default_victim) ?(detect = fun _ -> None) () =
  { name; attempt; commit; on_abort; victim; detect }
