open Core

type stats = {
  output : Schedule.t;
  delays : int;
  restarts : int;
  deadlocks : int;
  waiting : int;
  grants : int;
}

let zero_delay s = s.delays = 0 && s.restarts = 0

type state = {
  sched : Scheduler.t;
  fmt : int array;
  next_step : int array;       (* next step index, current incarnation *)
  outstanding : int array;     (* submitted but ungranted requests *)
  submit_times : int Queue.t array;
  incarnation : int array;
  mutable blocked : int list;  (* FIFO of delayed transactions *)
  mutable clock : int;         (* driver events *)
  mutable log : (Names.step_id * int) list;  (* grant, incarnation (rev) *)
  mutable delays : int;
  mutable restarts : int;
  mutable deadlocks : int;
  mutable waiting : int;
  mutable grants : int;
}

let init sched fmt =
  let n = Array.length fmt in
  {
    sched;
    fmt;
    next_step = Array.make n 0;
    outstanding = Array.make n 0;
    submit_times = Array.init n (fun _ -> Queue.create ());
    incarnation = Array.make n 0;
    blocked = [];
    clock = 0;
    log = [];
    delays = 0;
    restarts = 0;
    deadlocks = 0;
    waiting = 0;
    grants = 0;
  }

let in_queue st i = List.mem i st.blocked
let enqueue st i = if not (in_queue st i) then st.blocked <- st.blocked @ [ i ]
let dequeue st i = st.blocked <- List.filter (fun j -> j <> i) st.blocked

let completed st i =
  st.next_step.(i) >= st.fmt.(i) && st.outstanding.(i) = 0

let do_abort st i =
  st.restarts <- st.restarts + 1;
  st.sched.Scheduler.on_abort i;
  (* every already-granted step must be requested again *)
  let granted = st.next_step.(i) in
  st.next_step.(i) <- 0;
  st.outstanding.(i) <- st.outstanding.(i) + granted;
  for _ = 1 to granted do
    Queue.add st.clock st.submit_times.(i)
  done;
  st.incarnation.(i) <- st.incarnation.(i) + 1

let do_grant st (id : Names.step_id) =
  st.sched.Scheduler.commit id;
  st.clock <- st.clock + 1;
  st.grants <- st.grants + 1;
  let submitted = Queue.pop st.submit_times.(id.Names.tx) in
  st.waiting <- st.waiting + (st.clock - 1 - submitted);
  st.next_step.(id.Names.tx) <- id.Names.idx + 1;
  st.outstanding.(id.Names.tx) <- st.outstanding.(id.Names.tx) - 1;
  st.log <- (id, st.incarnation.(id.Names.tx)) :: st.log

(* Grant as many outstanding requests of [i] as possible. Returns true
   if at least one step was granted. *)
let try_drain st i =
  let made_progress = ref false in
  let continue = ref true in
  while !continue && st.outstanding.(i) > 0 do
    let id = Names.step i st.next_step.(i) in
    match st.sched.Scheduler.attempt id with
    | Scheduler.Grant ->
      do_grant st id;
      made_progress := true
    | Scheduler.Delay ->
      st.delays <- st.delays + 1;
      enqueue st i;
      continue := false
    | Scheduler.Abort ->
      do_abort st i;
      (* retried on a later scan, after the transactions it yielded to *)
      dequeue st i;
      enqueue st i;
      made_progress := true;
      continue := false
  done;
  if st.outstanding.(i) = 0 then dequeue st i;
  !made_progress

(* Repeatedly scan the FIFO queue, restarting from the head after every
   grant, until a full pass yields nothing. *)
let process_queue st =
  let continue = ref true in
  while !continue do
    let rec scan = function
      | [] -> false
      | i :: rest -> if try_drain st i then true else scan rest
    in
    continue := scan st.blocked
  done

let resolve_stall st =
  let stuck = List.filter (fun i -> st.outstanding.(i) > 0) st.blocked in
  match st.sched.Scheduler.victim stuck with
  | Some v ->
    st.deadlocks <- st.deadlocks + 1;
    do_abort st v;
    (* the victim yields: everyone it was blocking goes first *)
    dequeue st v;
    enqueue st v
  | None ->
    failwith
      (Printf.sprintf "Driver.run: %s cannot resolve a stall"
         st.sched.Scheduler.name)

let run sched ~fmt ~arrivals =
  let st = init sched fmt in
  let total_arrivals = Array.length arrivals in
  Array.iter
    (fun i ->
      st.clock <- st.clock + 1;
      st.outstanding.(i) <- st.outstanding.(i) + 1;
      Queue.add st.clock st.submit_times.(i);
      if in_queue st i then ()
      else if try_drain st i then process_queue st)
    arrivals;
  (* drain the tail; bound the work to defend against livelock *)
  let budget = ref (100 * (total_arrivals + 1) * (Array.length fmt + 1)) in
  let all_done () =
    Array.for_all (fun i -> completed st i) (Array.init (Array.length fmt) Fun.id)
  in
  while not (all_done ()) do
    decr budget;
    if !budget < 0 then failwith "Driver.run: livelock";
    let before = st.grants in
    process_queue st;
    if st.grants = before && not (all_done ()) then resolve_stall st
  done;
  let output =
    List.rev st.log
    |> List.filter_map (fun ((id : Names.step_id), inc) ->
           if inc = st.incarnation.(id.Names.tx) then Some id else None)
    |> Array.of_list
  in
  {
    output;
    delays = st.delays;
    restarts = st.restarts;
    deadlocks = st.deadlocks;
    waiting = st.waiting;
    grants = st.grants;
  }

let fixpoint_of mk fmt =
  List.filter
    (fun h ->
      let s = run (mk ()) ~fmt ~arrivals:(Schedule.to_interleaving h) in
      zero_delay s && Schedule.equal s.output h)
    (Schedule.all fmt)

let zero_delay_fraction mk ~fmt ~samples ~seed =
  let stt = Random.State.make [| seed |] in
  let hits = ref 0 in
  for _ = 1 to samples do
    let arrivals = Combin.Interleave.random stt fmt in
    let s = run (mk ()) ~fmt ~arrivals in
    if zero_delay s then incr hits
  done;
  float_of_int !hits /. float_of_int samples
