lib/sched/driver.mli: Core Schedule Scheduler
