lib/sched/scheduler.ml: Core Names
