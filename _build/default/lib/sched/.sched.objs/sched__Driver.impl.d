lib/sched/driver.ml: Array Combin Core Fun List Names Printf Queue Random Schedule Scheduler
