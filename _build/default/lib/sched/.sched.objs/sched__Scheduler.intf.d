lib/sched/scheduler.mli: Core Names
