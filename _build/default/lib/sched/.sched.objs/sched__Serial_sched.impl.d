lib/sched/serial_sched.ml: Array Core Names Scheduler
