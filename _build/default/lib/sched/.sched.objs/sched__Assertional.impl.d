lib/sched/assertional.ml: Array Core Expr List Names Scheduler State Syntax System
