lib/sched/timestamp.mli: Core Scheduler Syntax
