lib/sched/sgt.ml: Array Core Digraph Hashtbl List Names Scheduler Syntax
