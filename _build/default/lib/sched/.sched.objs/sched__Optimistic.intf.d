lib/sched/optimistic.mli: Core Scheduler State System
