lib/sched/assertional.mli: Core Expr Scheduler State System
