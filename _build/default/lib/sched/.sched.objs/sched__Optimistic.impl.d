lib/sched/optimistic.ml: Array Core Expr Hashtbl List Names Scheduler State Syntax System
