lib/sched/timestamp.ml: Core Hashtbl Names Scheduler Syntax
