lib/sched/sgt.mli: Core Scheduler Syntax
