lib/sched/tpl_sched.ml: Array Core Digraph Hashtbl List Locking Names Scheduler
