lib/sched/tpl_sched.mli: Core Locking Scheduler Syntax
