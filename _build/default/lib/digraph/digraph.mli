(** Directed graphs over integer vertices [0 .. n-1].

    Substrate for the conflict (serialization) graphs of Section 4, the
    wait-for graphs of the lock manager, and block-connectivity checks in
    the locking geometry. Mutable adjacency-set representation; all
    algorithms are deterministic. *)

type t

val create : int -> t
(** [create n] is an empty graph with vertices [0 .. n-1]. *)

val n_vertices : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds edge [u → v]. Idempotent. Self-loops allowed
    (and count as cycles). Raises [Invalid_argument] on out-of-range
    vertices. *)

val remove_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors in increasing order. *)

val pred : t -> int -> int list
(** Predecessors in increasing order (computed). *)

val edges : t -> (int * int) list
(** All edges, lexicographically ordered. *)

val n_edges : t -> int

val copy : t -> t

val has_cycle : t -> bool
(** [true] iff the graph contains a directed cycle (self-loops count). *)

val topological_sort : t -> int array option
(** [Some order] listing vertices such that every edge goes forward, or
    [None] if the graph is cyclic. Kahn's algorithm; ties broken by
    smallest vertex for determinism. *)

val scc : t -> int array
(** [scc g] labels each vertex with the index of its strongly connected
    component (Tarjan). Component indices are in reverse topological
    order of the condensation. *)

val find_cycle : t -> int list option
(** [find_cycle g] returns the vertices of some directed cycle in order
    (first vertex repeated implicitly), or [None]. Used to pick deadlock
    victims from wait-for graphs. *)

val reachable : t -> int -> bool array
(** [reachable g u] marks every vertex reachable from [u] (including
    [u]). *)

val transitive_closure : t -> t
(** A new graph with an edge [u → v] whenever [v] is reachable from [u]
    by a non-empty path. *)

val undirected_components : t -> int array
(** Connected components ignoring edge direction; labels as in {!scc}. *)

val pp : Format.formatter -> t -> unit
