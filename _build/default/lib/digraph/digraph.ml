module Iset = Set.Make (Int)

type t = { n : int; mutable adj : Iset.t array }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make n Iset.empty }

let n_vertices g = g.n

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  g.adj.(u) <- Iset.add v g.adj.(u)

let remove_edge g u v =
  check g u;
  check g v;
  g.adj.(u) <- Iset.remove v g.adj.(u)

let has_edge g u v =
  check g u;
  check g v;
  Iset.mem v g.adj.(u)

let succ g u =
  check g u;
  Iset.elements g.adj.(u)

let pred g v =
  check g v;
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if Iset.mem v g.adj.(u) then acc := u :: !acc
  done;
  !acc

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    Iset.fold (fun v l -> (u, v) :: l) g.adj.(u) []
    |> List.iter (fun e -> acc := e :: !acc)
  done;
  List.sort compare !acc

let n_edges g = Array.fold_left (fun acc s -> acc + Iset.cardinal s) 0 g.adj

let copy g = { n = g.n; adj = Array.copy g.adj }

(* DFS colouring: 0 = white, 1 = grey (on stack), 2 = black. *)
let has_cycle g =
  let colour = Array.make g.n 0 in
  let rec visit u =
    colour.(u) <- 1;
    let cyc =
      Iset.exists
        (fun v -> colour.(v) = 1 || (colour.(v) = 0 && visit v))
        g.adj.(u)
    in
    colour.(u) <- 2;
    cyc
  in
  let rec scan u =
    if u >= g.n then false
    else if colour.(u) = 0 && visit u then true
    else scan (u + 1)
  in
  scan 0

let topological_sort g =
  let indeg = Array.make g.n 0 in
  Array.iter (fun s -> Iset.iter (fun v -> indeg.(v) <- indeg.(v) + 1) s) g.adj;
  (* min-heap substitute: a sorted set of ready vertices for determinism *)
  let ready = ref Iset.empty in
  for u = 0 to g.n - 1 do
    if indeg.(u) = 0 then ready := Iset.add u !ready
  done;
  let order = Array.make g.n 0 in
  let filled = ref 0 in
  while not (Iset.is_empty !ready) do
    let u = Iset.min_elt !ready in
    ready := Iset.remove u !ready;
    order.(!filled) <- u;
    incr filled;
    Iset.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then ready := Iset.add v !ready)
      g.adj.(u)
  done;
  if !filled = g.n then Some order else None

let scc g =
  (* Tarjan's algorithm, iterative to be safe on large graphs. *)
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let comp = Array.make g.n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec strong u =
    index.(u) <- !next_index;
    lowlink.(u) <- !next_index;
    incr next_index;
    Stack.push u stack;
    on_stack.(u) <- true;
    Iset.iter
      (fun v ->
        if index.(v) < 0 then begin
          strong v;
          lowlink.(u) <- min lowlink.(u) lowlink.(v)
        end
        else if on_stack.(v) then lowlink.(u) <- min lowlink.(u) index.(v))
      g.adj.(u);
    if lowlink.(u) = index.(u) then begin
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        on_stack.(w) <- false;
        comp.(w) <- !next_comp;
        if w = u then continue := false
      done;
      incr next_comp
    end
  in
  for u = 0 to g.n - 1 do
    if index.(u) < 0 then strong u
  done;
  comp

let find_cycle g =
  let colour = Array.make g.n 0 in
  let parent = Array.make g.n (-1) in
  let result = ref None in
  let rec visit u =
    colour.(u) <- 1;
    Iset.iter
      (fun v ->
        if !result = None then
          if colour.(v) = 1 then begin
            (* found a back edge u -> v: walk parents from u back to v *)
            let rec collect w acc =
              if w = v then v :: acc else collect parent.(w) (w :: acc)
            in
            result := Some (collect u [])
          end
          else if colour.(v) = 0 then begin
            parent.(v) <- u;
            visit v
          end)
      g.adj.(u);
    colour.(u) <- 2
  in
  let u = ref 0 in
  while !result = None && !u < g.n do
    if colour.(!u) = 0 then visit !u;
    incr u
  done;
  !result

let reachable g u =
  check g u;
  let seen = Array.make g.n false in
  let rec visit w =
    if not seen.(w) then begin
      seen.(w) <- true;
      Iset.iter visit g.adj.(w)
    end
  in
  visit u;
  seen

let transitive_closure g =
  let closure = create g.n in
  for u = 0 to g.n - 1 do
    let seen = Array.make g.n false in
    let rec visit w =
      Iset.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            add_edge closure u v;
            visit v
          end)
        g.adj.(w)
    in
    visit u
  done;
  closure

let undirected_components g =
  let comp = Array.make g.n (-1) in
  let sym = Array.make g.n Iset.empty in
  for u = 0 to g.n - 1 do
    Iset.iter
      (fun v ->
        sym.(u) <- Iset.add v sym.(u);
        sym.(v) <- Iset.add u sym.(v))
      g.adj.(u)
  done;
  let next = ref 0 in
  let rec visit c u =
    if comp.(u) < 0 then begin
      comp.(u) <- c;
      Iset.iter (visit c) sym.(u)
    end
  in
  for u = 0 to g.n - 1 do
    if comp.(u) < 0 then begin
      visit !next u;
      incr next
    end
  done;
  comp

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph(%d) {" g.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "@ %d -> %d;" u v) (edges g);
  Format.fprintf ppf "@ }@]"
