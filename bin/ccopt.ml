(* ccopt — command-line multitool for the concurrency-control optimality
   library.

     ccopt classify  --syntax "xy,yx"           fixpoint hierarchy
     ccopt herbrand  --syntax "xx,x" --schedule 010
     ccopt geometry  --syntax "xy,xy" --policy 2pl
     ccopt analyze   --syntax "xy,yx" --schedule 0101 [--policy 2pl] [--json]
     ccopt schedule  --syntax "xy,yx" --arrivals 0101 --scheduler sgt
     ccopt verify    [--k 2]                    theorem micro-universes
     ccopt measure   --syntax "xy,yx" --samples 500
     ccopt bench     [--json] [--out BENCH_sched.json]  scheduler req/s
     ccopt trace     --syntax "xy,yx" --seed 42 [--out PREFIX] [--json]
     ccopt check     --syntax "xy,yx" --scheduler sgt --seed 42
                     | --schedule 0101 | --trace FILE.events  [--levels ..]
*)

open Core

(* ---------- shared argument parsing (see Analysis.Analyze) ---------- *)

let parse_syntax = Analysis.Analyze.parse_syntax
let parse_interleaving = Analysis.Analyze.parse_interleaving
let policy_of_name = Analysis.Analyze.policy_of_name

(* Unknown scheduler names are a usage error (exit 1 with the registry
   listing), not an internal invariant failure (exit 2). *)
let registry_entry name =
  match Sched.Registry.find name with
  | Some e -> e
  | None ->
    Printf.eprintf "ccopt: unknown scheduler %s (have: %s)\n" name
      (String.concat ", " Sched.Registry.names);
    exit 1

let scheduler_of_name syntax name =
  let e = registry_entry name in
  fun () -> e.Sched.Registry.make syntax

(* ---------- subcommand bodies ---------- *)

let classify spec probes =
  let syntax = parse_syntax spec in
  let sys = Sim.Workload.counters syntax in
  let fmt = Syntax.format syntax in
  if Schedule.count fmt > 5000 then begin
    Printf.eprintf "|H| = %d too large to enumerate\n" (Schedule.count fmt);
    exit 1
  end;
  let probes = Weak_sr.default_probes ~seed:17 ~count:probes sys in
  let sets = Fixpoint.compute sys ~probes in
  let h, serial, sr, wsr, c = Fixpoint.counts sets in
  Printf.printf "|H| = %d  serial = %d  SR = %d  WSR = %d  C = %d  chain: %b\n"
    h serial sr wsr c (Fixpoint.chain_holds sets);
  Printf.printf "equivalence classes: %d (%d serializable)\n"
    (Equivalence.class_count syntax)
    (Equivalence.serializable_classes syntax)

let herbrand spec sched_spec =
  let syntax = parse_syntax spec in
  let h = Schedule.of_interleaving (parse_interleaving sched_spec) in
  if not (Schedule.is_schedule_of (Syntax.format syntax) h) then begin
    Printf.eprintf "not a schedule of the syntax\n";
    exit 1
  end;
  Format.printf "schedule %a@." Schedule.pp h;
  Format.printf "herbrand state: %a@." Herbrand.pp_state
    (Herbrand.run syntax h);
  Format.printf "conflict-serializable: %b@." (Conflict.serializable syntax h);
  match Herbrand.serialization_witness syntax h with
  | Some order ->
    Format.printf "equivalent serial order: %s@."
      (String.concat " " (List.map (fun i -> "T" ^ string_of_int (i + 1))
                            (Array.to_list order)))
  | None -> Format.printf "no equivalent serial order@."

let geometry spec policy_name =
  let syntax = parse_syntax spec in
  if Syntax.n_transactions syntax <> 2 then begin
    Printf.eprintf "geometry needs exactly two transactions\n";
    exit 1
  end;
  let policy = policy_of_name policy_name in
  let locked = policy.Locking.Policy.apply syntax in
  print_endline (Locking.Render.figure locked);
  let g = Locking.Geometry.analyse locked in
  Printf.printf "blocks connected: %b\n" (Locking.Geometry.blocks_connected g);
  match Locking.Geometry.common_point g with
  | Some (x, y) -> Printf.printf "common point: (%d,%d)\n" x y
  | None -> ()

let schedule_cmd spec arrivals_spec sched_name =
  let syntax = parse_syntax spec in
  let fmt = Syntax.format syntax in
  let arrivals = parse_interleaving arrivals_spec in
  let mk = scheduler_of_name syntax sched_name in
  let s = Sched.Driver.run (mk ()) ~fmt ~arrivals in
  Format.printf "output:    %a@." Schedule.pp s.Sched.Driver.output;
  Printf.printf
    "delays %d, restarts %d, deadlocks %d, waiting %d, zero-delay %b\n"
    s.Sched.Driver.delays s.Sched.Driver.restarts s.Sched.Driver.deadlocks
    s.Sched.Driver.waiting (Sched.Driver.zero_delay s)

(* The atomic-commitment verification pass behind [ccopt verify
   --twopc] and the @check smoke: the exhaustive single-fault
   micro-universes at 1-3 participants, then a fixed-seed fault-matrix
   grid (crash rate x slow rate) through the commit service. Exit 1 on
   any AC1-AC5 violation, with the witness on stderr. *)
let verify_twopc () =
  let cfg = Sched.Twopc.default in
  let bad = ref 0 in
  let rounds_total = ref 0 in
  List.iter
    (fun n_parts ->
      let rounds = Sched.Twopc.universe cfg ~n_parts ~seed:1 in
      rounds_total := !rounds_total + List.length rounds;
      List.iter
        (fun (_, r, vs) ->
          if vs <> [] then begin
            incr bad;
            Printf.eprintf "ccopt verify: 2PC violation (%d participants):\n%s\n"
              n_parts (Sched.Twopc.witness r vs)
          end)
        rounds)
    [ 1; 2; 3 ];
  let grid_rounds = ref 0 in
  List.iter
    (fun crash_rate ->
      List.iter
        (fun slow_rate ->
          let svc =
            Sched.Twopc.service ~crash_rate ~slow_rate ~seed:11 ~shards:3 ()
          in
          for tx = 0 to 19 do
            ignore (Sched.Twopc.commit svc ~tx ~shards:[ 0; 1; 2 ])
          done;
          let t = Sched.Twopc.totals svc in
          grid_rounds := !grid_rounds + t.Sched.Twopc.rounds;
          if t.Sched.Twopc.rounds <> t.Sched.Twopc.committed + t.Sched.Twopc.aborted
          then begin
            incr bad;
            Printf.eprintf
              "ccopt verify: 2PC service accounting broken at rates %g/%g\n"
              crash_rate slow_rate
          end)
        [ 0.; 0.2; 0.5 ])
    [ 0.; 0.2; 0.5 ];
  Printf.printf
    "2PC AC1-AC5: %d single-fault rounds exhaustively checked, %d \
     fault-matrix service rounds, %d violations\n"
    !rounds_total !grid_rounds !bad;
  if !bad > 0 then exit 1

let verify k twopc =
  if twopc then verify_twopc ()
  else begin
    let r2 =
      Optimality.Verify.theorem2_report ~k ~fmt:[| 2; 1 |] ~vars:[ "x" ]
    in
    Format.printf "Theorem 2 (format (2,1), Z%d):@.%a@.@." k
      Optimality.Verify.pp_report r2;
    let syntax = parse_syntax "xy,yx" in
    let r3 = Optimality.Verify.theorem3_report ~k syntax in
    Format.printf "Theorem 3 (syntax xy,yx, Z%d):@.%a@." k
      Optimality.Verify.pp_report r3
  end

let analyze spec sched_spec policy_name certify_name k json =
  let syntax = parse_syntax spec in
  let req =
    Analysis.Analyze.request
      ?schedule:(Option.map parse_interleaving sched_spec)
      ?policy:policy_name ?certify:certify_name ~k syntax
  in
  let report = Analysis.Analyze.run req in
  if json then print_endline (Analysis.Report.to_json report)
  else Format.printf "%a@." Analysis.Report.pp report;
  (* linter convention: error diagnostics fail the invocation *)
  if Analysis.Report.errors report > 0 then exit 1

let measure spec samples =
  let syntax = parse_syntax spec in
  let rows =
    Sim.Measure.compare_schedulers
      (Sim.Measure.standard_suite syntax)
      ~fmt:(Syntax.format syntax) ~samples ~seed:1
  in
  Format.printf "%a" Sim.Measure.pp_rows rows

let parse_sizes spec =
  List.map
    (fun cell ->
      match String.split_on_char 'x' cell with
      | [ n; m ] -> (
        match (int_of_string_opt n, int_of_string_opt m) with
        | Some n, Some m when n > 0 && m > 0 -> (n, m)
        | _ -> invalid_arg ("bad size " ^ cell ^ " in --sizes"))
      | _ -> invalid_arg ("bad size " ^ cell ^ " in --sizes (want NxM)"))
    (String.split_on_char ',' spec)

let parse_ints spec =
  List.filter_map
    (fun s ->
      if s = "" then None
      else
        match int_of_string_opt s with
        | Some k when k > 0 -> Some k
        | _ -> invalid_arg ("bad shard count " ^ s ^ " in --shards"))
    (String.split_on_char ',' spec)

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let bench sizes mixes n_vars streams min_time seed smoke json out shards
    shard_sizes mv_sizes mv_samples sem_sizes sem_samples parallel domains
    twopc =
  (* the sections are opt-in (--parallel, --twopc); --domains picks the
     parallel sweep, defaulting to the base configuration's (smoke
     keeps its tiny one) *)
  let par_domains_for (base : Sim.Sched_bench.spec) =
    if not parallel then []
    else
      match domains with
      | "" -> base.Sim.Sched_bench.par_domains
      | spec -> parse_ints spec
  in
  let twopc_rates_for (base : Sim.Sched_bench.spec) =
    if twopc then base.Sim.Sched_bench.twopc_fault_rates else []
  in
  let par_domains = par_domains_for Sim.Sched_bench.default in
  let spec =
    if smoke then
      {
        Sim.Sched_bench.smoke with
        par_domains = par_domains_for Sim.Sched_bench.smoke;
        twopc_fault_rates = twopc_rates_for Sim.Sched_bench.smoke;
      }
    else
      {
        Sim.Sched_bench.sizes = parse_sizes sizes;
        mixes = String.split_on_char ',' mixes;
        n_vars;
        streams;
        min_time;
        seed;
        shard_ks = parse_ints shards;
        shard_sizes = parse_sizes shard_sizes;
        shard_mixes = Sim.Sched_bench.default.Sim.Sched_bench.shard_mixes;
        mv_sizes = (if mv_sizes = "" then [] else parse_sizes mv_sizes);
        mv_mixes = Sim.Sched_bench.default.Sim.Sched_bench.mv_mixes;
        mv_samples;
        sem_sizes = (if sem_sizes = "" then [] else parse_sizes sem_sizes);
        sem_mixes = Sim.Sched_bench.default.Sim.Sched_bench.sem_mixes;
        sem_samples;
        par_domains;
        par_queues = Sim.Sched_bench.default.Sim.Sched_bench.par_queues;
        par_sizes = Sim.Sched_bench.default.Sim.Sched_bench.par_sizes;
        par_mixes = Sim.Sched_bench.default.Sim.Sched_bench.par_mixes;
        par_streams = Sim.Sched_bench.default.Sim.Sched_bench.par_streams;
        twopc_fault_rates = twopc_rates_for Sim.Sched_bench.default;
        twopc_rounds = Sim.Sched_bench.default.Sim.Sched_bench.twopc_rounds;
        twopc_parts = Sim.Sched_bench.default.Sim.Sched_bench.twopc_parts;
      }
  in
  let rows = Sim.Sched_bench.run spec in
  let mv = Sim.Sched_bench.mv_stats spec in
  let sem = Sim.Sched_bench.sem_stats spec in
  let twopc_sec = Sim.Sched_bench.twopc_stats spec in
  let body =
    if json then begin
      let s =
        Sim.Sched_bench.to_json ~mv ~semantic:sem ?twopc:twopc_sec spec rows
      in
      if not (Sim.Sched_bench.json_well_formed s) then begin
        prerr_endline "ccopt: internal error: bench emitted malformed JSON";
        exit 1
      end;
      s
    end
    else begin
      let base =
        Format.asprintf "%a%a%a" Sim.Sched_bench.pp_rows rows
          Sim.Sched_bench.pp_sem_stats sem Sim.Sched_bench.pp_mv_stats mv
      in
      match twopc_sec with
      | None -> base
      | Some s -> base ^ Format.asprintf "%a@." Sim.Sched_bench.pp_twopc s
    end
  in
  match out with
  | None -> print_string body
  | Some file ->
    (* regenerating in place keeps top-level keys other tools added to
       the file (e.g. a checker-throughput section) *)
    let body =
      if json then
        match (try Some (read_file file) with Sys_error _ -> None) with
        | Some existing -> Sim.Sched_bench.merge_preserving ~existing body
        | None -> body
      else body
    in
    let oc = open_out file in
    output_string oc body;
    close_out oc;
    Printf.printf "wrote %s\n" file

let trace spec sched_names seed capacity samples json out =
  let syntax = parse_syntax spec in
  let only =
    match sched_names with
    | None -> []
    | Some names ->
      List.filter (fun s -> s <> "") (String.split_on_char ',' names)
  in
  (* validate up front: unknown names are a usage error, exit 1 *)
  List.iter (fun name -> ignore (registry_entry name)) only;
  let tspec =
    {
      Sim.Trace_run.label = spec;
      syntax;
      seed;
      capacity;
      samples;
      only;
    }
  in
  let runs = Sim.Trace_run.execute tspec in
  (* the trace is only worth shipping if it is a faithful witness *)
  let bad = ref false in
  List.iter
    (fun r ->
      List.iter
        (fun d ->
          bad := true;
          Printf.eprintf "ccopt trace: %s: %s\n" r.Sim.Trace_run.name d)
        (Sim.Trace_run.mismatches r);
      if not (Sim.Sched_bench.json_well_formed r.Sim.Trace_run.chrome) then begin
        bad := true;
        Printf.eprintf "ccopt trace: %s: malformed Chrome trace JSON\n"
          r.Sim.Trace_run.name
      end)
    runs;
  if !bad then exit 1;
  (match out with
  | None -> ()
  | Some prefix ->
    List.iter
      (fun r ->
        let file = prefix ^ "-" ^ r.Sim.Trace_run.slug ^ ".json" in
        let oc = open_out file in
        output_string oc r.Sim.Trace_run.chrome;
        close_out oc;
        Printf.printf "wrote %s\n" file;
        (* the machine-readable twin: an exact event log that [ccopt
           check --trace] can replay *)
        let efile = prefix ^ "-" ^ r.Sim.Trace_run.slug ^ ".events" in
        let oc = open_out efile in
        output_string oc
          (Obs.Event_log.to_string ~dropped:r.Sim.Trace_run.dropped
             r.Sim.Trace_run.events);
        close_out oc;
        Printf.printf "wrote %s\n" efile)
      runs);
  if json then print_endline (Sim.Trace_run.json_summary tspec runs)
  else Format.printf "%a" Sim.Trace_run.pp_summary runs

(* JSON string escaping for the check report (same minimal set as the
   other hand-emitted reports). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let witness_kind = function
  | Analysis.Checker.Cycle _ -> "cycle"
  | Analysis.Checker.Dangling_read _ -> "dangling-read"
  | Analysis.Checker.Ambiguous_write _ -> "ambiguous-write"
  | Analysis.Checker.Internal_misread _ -> "internal-misread"
  | Analysis.Checker.No_order _ -> "no-order"

let check_json ~source hist results =
  let n = Analysis.History.n hist in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\": %d, \"source\": \"%s\", \"label\": \"%s\", \
        \"txns\": %d, \"events\": %d, \"complete\": %b, \"results\": ["
       Analysis.Report.schema_version (json_escape source)
       (json_escape (Analysis.History.label hist))
       n
       (Analysis.History.n_events hist)
       (Analysis.History.complete hist));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ", ";
      let level = Analysis.Checker.level_name r.Analysis.Checker.level in
      let split = r.Analysis.Checker.split in
      (match r.Analysis.Checker.verdict with
      | Analysis.Checker.Consistent order ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"level\": \"%s\", \"verdict\": \"consistent\", \"split\": \
              %b, \"order\": [%s]}"
             level split
             (String.concat ", " (List.map string_of_int order)))
      | Analysis.Checker.Violation w ->
        let nn = if split then 2 * n else n in
        Buffer.add_string b
          (Printf.sprintf
             "{\"level\": \"%s\", \"verdict\": \"violation\", \"split\": \
              %b, \"witness\": {\"kind\": \"%s\", \"text\": \"%s\"}}"
             level split (witness_kind w)
             (json_escape
                (Format.asprintf "%a"
                   (Analysis.Checker.pp_witness ~split ~n:nn)
                   w)))
      | Analysis.Checker.Unknown reason ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"level\": \"%s\", \"verdict\": \"unknown\", \"split\": %b, \
              \"reason\": \"%s\"}"
             level split (json_escape reason))))
    results;
  Buffer.add_string b "]}";
  Buffer.contents b

(* The level ladder up to and including a declared level — the default
   [--levels] for a [--scheduler] run: an engine is checked against
   exactly what it guarantees (SI is not serializable, and plain
   [ccopt check --scheduler si] should not fail for it). *)
let levels_upto level =
  let rec go = function
    | [] -> []
    | l :: rest -> if l = level then [ l ] else l :: go rest
  in
  go Analysis.Checker.levels

let check spec sched_spec sched_name seed capacity trace_file levels_spec
    mutate_name budget bench out json =
  let explicit_levels =
    match levels_spec with
    | None -> None
    | Some s ->
      Some
        (List.map
           (fun nm ->
             match Analysis.Checker.level_of_name nm with
             | Some l -> l
             | None ->
               Printf.eprintf "ccopt check: unknown level %s (have: %s)\n" nm
                 (String.concat ", "
                    (List.map Analysis.Checker.level_name
                       Analysis.Checker.levels));
               exit 1)
           (List.filter (fun s -> s <> "") (String.split_on_char ',' s)))
  in
  let levels =
    Option.value ~default:Analysis.Checker.levels explicit_levels
  in
  match bench with
  | Some size ->
    (* throughput mode: a generated serializable history; any verdict
       other than Consistent fails the run *)
    let bspec =
      match size with
      | "smoke" -> Sim.Check_bench.smoke
      | "default" -> Sim.Check_bench.default
      | s -> Sim.Check_bench.parse_dims s Sim.Check_bench.default
    in
    let bspec = { bspec with Sim.Check_bench.seed; levels } in
    let rows = Sim.Check_bench.run bspec in
    let body =
      if json then begin
        let s = Sim.Check_bench.to_json bspec rows in
        if not (Sim.Sched_bench.json_well_formed s) then begin
          prerr_endline "ccopt: internal error: check emitted malformed JSON";
          exit 1
        end;
        s
      end
      else Format.asprintf "%a" Sim.Check_bench.pp_rows rows
    in
    (match out with
    | None -> print_string body
    | Some file ->
      let body =
        if json then
          match (try Some (read_file file) with Sys_error _ -> None) with
          | Some existing -> Sim.Sched_bench.merge_preserving ~existing body
          | None -> body
        else body
      in
      let oc = open_out file in
      output_string oc body;
      close_out oc;
      Printf.printf "wrote %s\n" file)
  | None ->
  let spec =
    match spec with
    | Some s -> s
    | None ->
      Printf.eprintf "ccopt check: --syntax is required (unless --bench)\n";
      exit 1
  in
  let syntax = parse_syntax spec in
  let fmt = Syntax.format syntax in
  let source, hist, levels =
    match (trace_file, sched_spec) with
    | Some file, _ -> (
      let text =
        try read_file file
        with Sys_error msg ->
          Printf.eprintf "ccopt check: %s\n" msg;
          exit 1
      in
      match Obs.Event_log.parse text with
      | Error msg ->
        Printf.eprintf "ccopt check: %s: %s\n" file msg;
        exit 1
      | Ok (events, dropped) ->
        (* MV-aware: a trace with version events is reconstructed from
           the values the engine served, not by replaying the schedule *)
        ( "trace " ^ file,
          Sim.Check_fuzz.history_of_events ~label:file
            ~complete:(dropped = 0) syntax events,
          levels ))
    | None, Some digits ->
      let h = Schedule.of_interleaving (parse_interleaving digits) in
      if not (Schedule.is_schedule_of fmt h) then begin
        Printf.eprintf "ccopt check: not a schedule of the syntax\n";
        exit 1
      end;
      ( "schedule " ^ digits,
        Analysis.History.of_schedule ~label:(spec ^ " @ " ^ digits) syntax h,
        levels )
    | None, None ->
      let e = registry_entry sched_name in
      let st = Random.State.make [| seed |] in
      let arrivals = Combin.Interleave.random st fmt in
      let ring = Obs.Sink.Ring.create ~capacity in
      let sink = Obs.Sink.Ring.sink ring in
      ignore
        (Sched.Driver.run ~sink
           (e.Sched.Registry.make ~sink syntax)
           ~fmt ~arrivals);
      let label = Printf.sprintf "%s via %s (seed %d)" spec sched_name seed in
      let levels =
        match explicit_levels with
        | Some ls -> ls
        | None -> (
          (* default to the ladder the engine actually guarantees *)
          match Analysis.Checker.level_of_name e.Sched.Registry.level with
          | Some l -> levels_upto l
          | None -> Analysis.Checker.levels)
      in
      ( "scheduler " ^ sched_name,
        Sim.Check_fuzz.history_of_events ~label
          ~complete:(Obs.Sink.Ring.dropped ring = 0)
          syntax
          (Obs.Sink.Ring.events ring),
        levels )
  in
  let hist =
    match mutate_name with
    | None -> hist
    | Some name -> (
      match Analysis.History.mutation_of_name name with
      | None ->
        Printf.eprintf "ccopt check: unknown mutation %s (have: %s)\n" name
          (String.concat ", "
             (List.map Analysis.History.mutation_name
                Analysis.History.mutations));
        exit 1
      | Some m -> (
        let rng = Random.State.make [| seed; 0x6d75 |] in
        match Analysis.History.mutate m rng hist with
        | Some h -> h
        | None ->
          Printf.eprintf "ccopt check: mutation %s has no applicable site\n"
            name;
          exit 1))
  in
  let results = List.map (Analysis.Checker.check ~budget hist) levels in
  let n = Analysis.History.n hist in
  if json then print_endline (check_json ~source hist results)
  else begin
    Printf.printf "history: %s (%d txns, %d events%s)\n"
      (Analysis.History.label hist)
      n
      (Analysis.History.n_events hist)
      (if Analysis.History.complete hist then "" else ", truncated");
    List.iter
      (fun r -> Format.printf "%a@." (Analysis.Checker.pp_result ~n) r)
      results
  end;
  if
    List.exists
      (fun r ->
        match r.Analysis.Checker.verdict with
        | Analysis.Checker.Violation _ -> true
        | _ -> false)
      results
  then exit 1

(* ---------- cmdliner wiring ---------- *)

open Cmdliner

let syntax_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "syntax"; "s" ] ~docv:"SPEC"
        ~doc:"Transactions as comma-separated variable strings (xy,yx).")

let classify_cmd =
  let probes =
    Arg.(value & opt int 12 & info [ "probes" ] ~doc:"Probe states for WSR/C.")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"fixpoint-set hierarchy of a system")
    Term.(const classify $ syntax_arg $ probes)

let herbrand_cmd =
  let sched =
    Arg.(
      required
      & opt (some string) None
      & info [ "schedule" ] ~docv:"DIGITS"
          ~doc:"Interleaving as transaction indices, e.g. 010.")
  in
  Cmd.v
    (Cmd.info "herbrand" ~doc:"symbolic execution and serializability")
    Term.(const herbrand $ syntax_arg $ sched)

let geometry_cmd =
  let policy =
    Arg.(
      value & opt string "2pl"
      & info [ "policy" ] ~doc:"2pl, 2pl', preclaim or mutex.")
  in
  Cmd.v
    (Cmd.info "geometry" ~doc:"progress-space figure for two transactions")
    Term.(const geometry $ syntax_arg $ policy)

let schedule_run_cmd =
  let arrivals =
    Arg.(
      required
      & opt (some string) None
      & info [ "arrivals" ] ~docv:"DIGITS" ~doc:"Request stream, e.g. 0101.")
  in
  let sched =
    Arg.(
      value & opt string "sgt"
      & info [ "scheduler" ]
          ~doc:
            ("One of " ^ String.concat ", " Sched.Registry.names ^ "."))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"drive an online scheduler over a stream")
    Term.(const schedule_cmd $ syntax_arg $ arrivals $ sched)

let analyze_cmd =
  let sched =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"DIGITS"
          ~doc:"Schedule to run the anomaly detector on, e.g. 0101.")
  in
  let policy =
    Arg.(
      value
      & opt (some string) None
      & info [ "policy" ]
          ~doc:"Locking policy to lint: 2pl, 2pl', preclaim or mutex.")
  in
  let certify =
    (* the certifier resolves names through the registry; derive the doc
       from it so help text cannot drift from the name table *)
    Arg.(
      value
      & opt (some string) None
      & info [ "certify" ]
          ~doc:
            ("Scheduler to certify against Theorem 1: one of "
            ^ String.concat ", " Sched.Registry.names
            ^ "."))
  in
  let k =
    Arg.(
      value & opt int 2
      & info [ "k" ] ~doc:"Micro-universe domain size for --certify.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"static anomaly detection, lock-policy linting, scheduler \
             certification")
    Term.(
      const analyze $ syntax_arg $ sched $ policy $ certify $ k $ json)

let verify_cmd =
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Domain size Z_k.") in
  let twopc =
    Arg.(
      value & flag
      & info [ "twopc" ]
          ~doc:"Verify the distributed-commit layer instead: AC1-AC5 over \
                the exhaustive single-fault micro-universes and a \
                fixed-seed crash/slow-link fault matrix; exit 1 on any \
                violation, with a replayable witness on stderr.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"exhaustive micro-universe checks (KP theorems; --twopc for \
             atomic commitment)")
    Term.(const verify $ k $ twopc)

let measure_cmd =
  let samples =
    Arg.(value & opt int 500 & info [ "samples" ] ~doc:"Random histories.")
  in
  Cmd.v
    (Cmd.info "measure"
       ~doc:
         ("scheduler delay comparison over the standard suite ("
         ^ String.concat ", "
             (List.map
                (fun e -> e.Sched.Registry.slug)
                Sched.Registry.standard)
         ^ ")"))
    Term.(const measure $ syntax_arg $ samples)

let bench_cmd =
  let d = Sim.Sched_bench.default in
  let sizes =
    let default =
      String.concat ","
        (List.map (fun (n, m) -> Printf.sprintf "%dx%d" n m) d.Sim.Sched_bench.sizes)
    in
    Arg.(
      value & opt string default
      & info [ "sizes" ] ~docv:"NxM,.."
          ~doc:"Workload sizes: transactions x steps, comma-separated.")
  in
  let mixes =
    Arg.(
      value
      & opt string (String.concat "," d.Sim.Sched_bench.mixes)
      & info [ "mixes" ] ~doc:"Variable mixes: uniform, hot and/or skewed.")
  in
  let n_vars =
    Arg.(
      value & opt int d.Sim.Sched_bench.n_vars
      & info [ "vars" ] ~doc:"Size of the variable pool.")
  in
  let streams =
    Arg.(
      value & opt int d.Sim.Sched_bench.streams
      & info [ "streams" ] ~doc:"Arrival streams per cell.")
  in
  let min_time =
    Arg.(
      value & opt float d.Sim.Sched_bench.min_time
      & info [ "min-time" ] ~doc:"Per-cell time budget in seconds.")
  in
  let seed =
    Arg.(value & opt int d.Sim.Sched_bench.seed & info [ "seed" ] ~doc:"RNG seed.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Tiny single-pass configuration (overrides the other knobs).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit BENCH_sched.json schema.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the report to a file.")
  in
  let shards =
    let default =
      String.concat "," (List.map string_of_int d.Sim.Sched_bench.shard_ks)
    in
    Arg.(
      value & opt string default
      & info [ "shards" ] ~docv:"K,.."
          ~doc:"Shard counts for the sharded-engine section (sharded vs \
                monolithic SGT); empty disables the section.")
  in
  let shard_sizes =
    let default =
      String.concat ","
        (List.map
           (fun (n, m) -> Printf.sprintf "%dx%d" n m)
           d.Sim.Sched_bench.shard_sizes)
    in
    Arg.(
      value & opt string default
      & info [ "shard-sizes" ] ~docv:"NxM,.."
          ~doc:"Workload sizes of the sharded-engine section.")
  in
  let mv_sizes =
    let default =
      String.concat ","
        (List.map
           (fun (n, m) -> Printf.sprintf "%dx%d" n m)
           d.Sim.Sched_bench.mv_sizes)
    in
    Arg.(
      value & opt string default
      & info [ "mv-sizes" ] ~docv:"NxM,.."
          ~doc:"Workload sizes of the multi-version section (SGT vs \
                MVCC/SI/SSI over typed read/update mixes); empty disables \
                the section.")
  in
  let mv_samples =
    Arg.(
      value
      & opt int d.Sim.Sched_bench.mv_samples
      & info [ "mv-samples" ]
          ~doc:"Monte-Carlo samples per |P|/|H| breadth estimate in the \
                multi-version admission table.")
  in
  let sem_sizes =
    let default =
      String.concat ","
        (List.map
           (fun (n, m) -> Printf.sprintf "%dx%d" n m)
           d.Sim.Sched_bench.sem_sizes)
    in
    Arg.(
      value & opt string default
      & info [ "sem-sizes" ] ~docv:"NxM,.."
          ~doc:"Workload sizes of the commutativity section (rw-SGT vs the \
                semantic engine over typed counter mixes); empty disables \
                the section.")
  in
  let sem_samples =
    Arg.(
      value
      & opt int d.Sim.Sched_bench.sem_samples
      & info [ "sem-samples" ]
          ~doc:"Monte-Carlo samples per |P|/|H| breadth estimate in the \
                commutativity admission table.")
  in
  let parallel =
    Arg.(
      value & flag
      & info [ "parallel" ]
          ~doc:"Also time the domain-parallel execution engine \
                (Sched.Parallel) — wall-clock req/s per (domain count, \
                channel build), with a speedup map vs 1 domain.")
  in
  let domains =
    Arg.(
      value & opt string ""
      & info [ "domains" ] ~docv:"D,.."
          ~doc:"Domain counts for the --parallel sweep (include 1: it is \
                the speedup baseline). Defaults to the configuration's \
                sweep.")
  in
  let twopc =
    Arg.(
      value & flag
      & info [ "twopc" ]
          ~doc:"Also run the distributed-commit section (Sched.Twopc): \
                commit latency, abort rate and in-doubt blocking window \
                per fault rate, plus the measured coordinator-crash \
                blocking window.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"scheduler micro-benchmark (requests/sec, incl. SGT vs SGT-ref, \
             sharded vs monolithic SGT, the multi-version admission section, \
             the --parallel wall-clock engine sweep and the --twopc \
             distributed-commit section)")
    Term.(
      const bench $ sizes $ mixes $ n_vars $ streams $ min_time $ seed $ smoke
      $ json $ out $ shards $ shard_sizes $ mv_sizes $ mv_samples $ sem_sizes
      $ sem_samples $ parallel $ domains $ twopc)

let trace_cmd =
  let sched =
    Arg.(
      value
      & opt (some string) None
      & info [ "scheduler" ] ~docv:"NAMES"
          ~doc:
            ("Comma-separated registered schedulers ("
            ^ String.concat ", " Sched.Registry.names
            ^ "); default: the standard suite."))
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Arrival-stream seed.")
  in
  let capacity =
    Arg.(
      value
      & opt int Sim.Trace_run.default_capacity
      & info [ "capacity" ] ~doc:"Ring-buffer capacity per scheduler.")
  in
  let samples =
    Arg.(
      value & opt int 200
      & info [ "samples" ]
          ~doc:"Monte-Carlo samples for the zero-delay fraction.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:"Write one Chrome trace per scheduler to \
                PREFIX-<scheduler>.json (load in about://tracing or \
                Perfetto).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"record a request-lifecycle trace and the Section 6 time \
             decomposition")
    Term.(
      const trace $ syntax_arg $ sched $ seed $ capacity $ samples $ json
      $ out)

let check_cmd =
  let syntax =
    (* optional here: --bench needs no syntax *)
    Arg.(
      value
      & opt (some string) None
      & info [ "syntax"; "s" ] ~docv:"SPEC"
          ~doc:"Transactions as comma-separated variable strings (xy,yx).")
  in
  let sched_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"DIGITS"
          ~doc:"Check this interleaving of the syntax directly.")
  in
  let sched =
    Arg.(
      value & opt string "sgt"
      & info [ "scheduler" ]
          ~doc:
            ("Scheduler to re-run and check (one of "
            ^ String.concat ", " Sched.Registry.names
            ^ "); ignored when --schedule or --trace is given."))
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Arrival-stream (and --mutate site) seed.")
  in
  let capacity =
    Arg.(
      value
      & opt int Sim.Trace_run.default_capacity
      & info [ "capacity" ] ~doc:"Ring-buffer capacity for --scheduler runs.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Check a recorded event log (ccopt trace --out writes \
                PREFIX-<scheduler>.events).")
  in
  let levels =
    Arg.(
      value
      & opt (some string) None
      & info [ "levels" ] ~docv:"L,.."
          ~doc:
            ("Comma-separated subset of "
            ^ String.concat ", "
                (List.map Analysis.Checker.level_name Analysis.Checker.levels)
            ^ " (default: all, except --scheduler runs, which default to \
               the ladder up to the engine's declared level)."))
  in
  let mutate =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"KIND"
          ~doc:
            ("Corrupt the history first ("
            ^ String.concat ", "
                (List.map Analysis.History.mutation_name
                   Analysis.History.mutations)
            ^ ") — the checker must then reject it."))
  in
  let budget =
    Arg.(
      value & opt int 2_000_000
      & info [ "budget" ]
          ~doc:"Search-state budget for the SER/SI decision; exceeding it \
                yields an unknown verdict, never a guess.")
  in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ] ~docv:"SIZE"
          ~doc:"Throughput mode: check a generated serializable history and \
                report events/sec per level. SIZE is smoke, default (1M \
                events — the committed BENCH_check.json configuration) or \
                NxMxSxV (transactions x steps x sessions x variables).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the --bench report to a file (with --json, foreign \
                top-level keys of an existing file are preserved).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdicts as JSON.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"black-box history consistency checker: decide rc / ra / causal \
             / si / ser over a schedule, a scheduler run or a recorded \
             trace (exit 1 on violation)")
    Term.(
      const check $ syntax $ sched_spec $ sched $ seed $ capacity
      $ trace_file $ levels $ mutate $ budget $ bench $ out $ json)

let () =
  let doc = "concurrency-control optimality toolbox (Kung-Papadimitriou 1979)" in
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group (Cmd.info "ccopt" ~doc)
            [
              classify_cmd; herbrand_cmd; geometry_cmd; analyze_cmd;
              schedule_run_cmd; verify_cmd; measure_cmd; bench_cmd;
              trace_cmd; check_cmd;
            ])
     with
     | Invalid_argument msg ->
       Printf.eprintf "ccopt: %s\n" msg;
       2
     | Sched.Driver.Stall msg ->
       Printf.eprintf "ccopt: %s\n" msg;
       1)
