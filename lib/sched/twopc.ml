type fault =
  | Crash of { node : int; at_input : int; repair : float }
  | Slow_link of { src : int; dst : int; extra : float }
  | Vote_no of { node : int }

type variant = Correct | Forget_log_on_recover | Presume_commit_on_timeout

type config = {
  delay : float;
  jitter : float;
  t_prepare : float;
  t_vote : float;
  t_decision : float;
  t_ack : float;
  variant : variant;
  budget : int;
}

let default =
  {
    delay = 1.0;
    jitter = 0.0;
    t_prepare = 8.0;
    t_vote = 8.0;
    t_decision = 6.0;
    t_ack = 6.0;
    variant = Correct;
    budget = 100_000;
  }

type record = {
  tx : int;
  coord : int;
  parts : int list;
  faults : fault list;
  votes : (int * bool) list;
  decisions : (float * int * bool) list;
  outcome : bool option;
  quiescent : bool;
  decided_at : float;
  finished_at : float;
  blocking : float;
  msgs : int;
  crashes : int;
  node_inputs : int array;
  events : (float * Obs.Event.t) list;
}

(* The wire vocabulary. [Start] is the round kick-off (a coordinator
   self-send, so that "coordinator crashed before doing anything" is a
   reachable input-indexed placement); it is internal and not traced. *)
type msg = Start | Prepare | Vote of bool | Decision of bool | Ack | Decision_req

let payload = function
  | Start -> None
  | Prepare -> Some Obs.Event.Prepare
  | Vote v -> Some (Obs.Event.Vote v)
  | Decision d -> Some (Obs.Event.Decision d)
  | Ack -> Some Obs.Event.Ack
  | Decision_req -> Some Obs.Event.Decision_req

(* timer tags *)
let tag_prepare = 0
let tag_vote = 1
let tag_decision = 2
let tag_ack = 3

let timer_name = function
  | 0 -> "prepare"
  | 1 -> "vote"
  | 2 -> "decision"
  | _ -> "ack"

let round ?(sink = Obs.Sink.null) ?(at = 0.) cfg ~nodes ~coord ~parts ~tx ~seed
    ~faults () =
  if coord < 0 || coord >= nodes then invalid_arg "Twopc.round: coord";
  List.iter
    (fun p ->
      if p < 0 || p >= nodes || p = coord then
        invalid_arg "Twopc.round: participant out of range")
    parts;
  let rng = Random.State.make [| 0x27C0; seed; tx |] in
  let vote_no = Array.make nodes false in
  let extra = Hashtbl.create 4 in
  let crashes =
    List.filter_map
      (function
        | Crash { node; at_input; repair } -> Some (node, at_input, repair)
        | Slow_link { src; dst; extra = e } ->
          Hashtbl.replace extra (src, dst) e;
          None
        | Vote_no { node } ->
          if node >= 0 && node < nodes then vote_no.(node) <- true;
          None)
      faults
  in
  let delay ~src ~dst =
    cfg.delay
    +. (match Hashtbl.find_opt extra (src, dst) with Some e -> e | None -> 0.)
    +. (if cfg.jitter > 0. then Random.State.float rng cfg.jitter else 0.)
  in
  (* persistent state: survives crashes (the per-node log) *)
  let log_vote = Array.make nodes false in
  let log_decision = Array.make nodes None in
  let log_end = ref false in
  (* volatile state: dropped by [on_crash] *)
  let decided = Array.make nodes None in
  let got_prepare = Array.make nodes false in
  let tally = Array.make nodes None in
  let acked = Array.make nodes false in
  (* measurements (outside the failure model) *)
  let sent_vote = Array.make nodes None in
  let vote_time = Array.make nodes nan in
  let blocking = ref 0. in
  let decisions = ref [] in
  let events = ref [] in
  let emit t ev =
    events := (at +. t, ev) :: !events;
    if Obs.Sink.on sink then Obs.Sink.record_at sink (at +. t) ev
  in
  (* A fresh decision: recorded, traced, and the closing edge of the
     node's in-doubt window. Reloading a logged decision after recovery
     goes through [decided.(node) <- ...] directly instead — the
     decision was already made and recorded. *)
  let decide net node commit =
    match decided.(node) with
    | Some d when d = commit -> ()
    | _ ->
      decided.(node) <- Some commit;
      let t = Net.now net in
      decisions := (t, node, commit) :: !decisions;
      emit t (Obs.Event.Twopc_decided { tx; node; commit });
      if node <> coord && not (Float.is_nan vote_time.(node)) then begin
        let w = t -. vote_time.(node) in
        if w > !blocking then blocking := w;
        vote_time.(node) <- nan
      end
  in
  let send_msg net src dst m =
    (match payload m with
    | Some pl ->
      emit (Net.now net) (Obs.Event.Twopc_sent { tx; src; dst; msg = pl })
    | None -> ());
    Net.send net ~src ~dst m
  in
  let vote net node v =
    if sent_vote.(node) = None then sent_vote.(node) <- Some v;
    if v then begin
      (* forced log write, then the send — one atomic handler step *)
      log_vote.(node) <- true;
      vote_time.(node) <- Net.now net;
      send_msg net node coord (Vote true);
      Net.set_timer net ~node ~tag:tag_decision ~after:cfg.t_decision
    end
    else begin
      send_msg net node coord (Vote false);
      (* a no-voter aborts unilaterally; presumed abort needs no log *)
      decide net node false
    end
  in
  let broadcast net d = List.iter (fun p -> send_msg net coord p (Decision d)) parts in
  let coord_msg net src m =
    match m with
    | Start ->
      List.iter (fun p -> send_msg net coord p Prepare) parts;
      Net.set_timer net ~node:coord ~tag:tag_vote ~after:cfg.t_vote
    | Vote v -> (
      tally.(src) <- Some v;
      match decided.(coord) with
      | None ->
        if not v then begin
          (* presumed abort: decide and broadcast without logging *)
          decide net coord false;
          broadcast net false
        end
        else if List.for_all (fun p -> tally.(p) = Some true) parts then begin
          log_decision.(coord) <- Some true;
          decide net coord true;
          broadcast net true;
          Net.set_timer net ~node:coord ~tag:tag_ack ~after:cfg.t_ack
        end
      | Some d ->
        (* a straggler vote after the outcome: answer it directly so a
           yes-voter that missed the broadcast is not left in doubt *)
        if v then send_msg net coord src (Decision d))
    | Ack ->
      acked.(src) <- true;
      if decided.(coord) = Some true && List.for_all (fun p -> acked.(p)) parts
      then log_end := true
    | Decision_req -> (
      match (log_decision.(coord), decided.(coord)) with
      | Some d, _ | None, Some d -> send_msg net coord src (Decision d)
      | None, None -> () (* undecided; the requester's timer re-polls *))
    | Prepare | Decision _ -> ()
  in
  let part_msg net node _src m =
    match m with
    | Prepare -> (
      got_prepare.(node) <- true;
      match decided.(node) with
      | Some _ ->
        (* already presumed abort (prepare timeout beat a slow link) *)
        if sent_vote.(node) = None then sent_vote.(node) <- Some false;
        send_msg net node coord (Vote false)
      | None -> vote net node (not vote_no.(node)))
    | Decision d ->
      (match decided.(node) with
      | None ->
        log_decision.(node) <- Some d;
        decide net node d
      | Some _ -> ());
      if d then send_msg net node coord Ack
    | Start | Vote _ | Ack | Decision_req -> ()
  in
  let on_msg net ~node ~src m =
    (match payload m with
    | Some pl ->
      emit (Net.now net)
        (Obs.Event.Twopc_delivered { tx; src; dst = node; msg = pl })
    | None -> ());
    if node = coord then coord_msg net src m else part_msg net node src m
  in
  let on_timer net ~node ~tag =
    let timeout () =
      emit (Net.now net)
        (Obs.Event.Twopc_timeout { tx; node; timer = timer_name tag })
    in
    if node = coord then begin
      if tag = tag_vote && decided.(coord) = None then begin
        timeout ();
        decide net coord false;
        broadcast net false
      end
      else if
        tag = tag_ack && decided.(coord) = Some true && not !log_end
        && not (List.for_all (fun p -> acked.(p)) parts)
      then begin
        timeout ();
        List.iter
          (fun p -> if not acked.(p) then send_msg net coord p (Decision true))
          parts;
        Net.set_timer net ~node:coord ~tag:tag_ack ~after:cfg.t_ack
      end
    end
    else if tag = tag_prepare then begin
      if (not got_prepare.(node)) && decided.(node) = None then begin
        timeout ();
        (* never asked to vote: unilateral presumed abort *)
        decide net node false
      end
    end
    else if tag = tag_decision then
      if log_vote.(node) && decided.(node) = None then begin
        timeout ();
        match cfg.variant with
        | Presume_commit_on_timeout ->
          (* deliberately broken: unilateral commit while in doubt *)
          decide net node true
        | Correct | Forget_log_on_recover ->
          send_msg net node coord Decision_req;
          Net.set_timer net ~node ~tag:tag_decision ~after:cfg.t_decision
      end
  in
  let on_crash net ~node =
    emit (Net.now net) (Obs.Event.Node_crashed { tx; node });
    decided.(node) <- None;
    got_prepare.(node) <- false;
    if node = coord then begin
      Array.fill tally 0 nodes None;
      Array.fill acked 0 nodes false
    end
  in
  let on_recover net ~node =
    emit (Net.now net) (Obs.Event.Node_recovered { tx; node });
    if cfg.variant = Forget_log_on_recover then begin
      log_vote.(node) <- false;
      log_decision.(node) <- None;
      if node = coord then log_end := false
    end;
    if node = coord then begin
      match log_decision.(coord) with
      | Some d ->
        decided.(coord) <- Some d;
        if d && not !log_end then begin
          (* volatile acks are gone: re-broadcast until acked again *)
          broadcast net true;
          Net.set_timer net ~node:coord ~tag:tag_ack ~after:cfg.t_ack
        end
      | None ->
        (* no commit record: presume abort, and broadcast it so in-doubt
           participants are released without waiting for their polls *)
        decide net coord false;
        broadcast net false
    end
    else begin
      match log_decision.(node) with
      | Some d -> decided.(node) <- Some d
      | None ->
        if log_vote.(node) then begin
          (* in doubt: only the coordinator can say *)
          send_msg net node coord Decision_req;
          Net.set_timer net ~node ~tag:tag_decision ~after:cfg.t_decision
        end
        else decide net node false
    end
  in
  let handlers = { Net.on_msg; on_timer; on_crash; on_recover } in
  let net = Net.create ~nodes ~delay ~crashes ~handlers () in
  (* initial state: participants arm their prepare timeouts, the
     coordinator kicks itself off *)
  List.iter
    (fun p -> Net.set_timer net ~node:p ~tag:tag_prepare ~after:cfg.t_prepare)
    parts;
  Net.send net ~src:coord ~dst:coord Start;
  let quiescent = Net.run ~budget:cfg.budget net = `Quiescent in
  let decisions = List.rev !decisions in
  let decided_at =
    match List.find_opt (fun (_, n, _) -> n = coord) decisions with
    | Some (t, _, _) -> t
    | None -> nan
  in
  {
    tx;
    coord;
    parts;
    faults;
    votes =
      List.filter_map
        (fun p ->
          match sent_vote.(p) with Some v -> Some (p, v) | None -> None)
        parts;
    decisions;
    outcome = decided.(coord);
    quiescent;
    decided_at;
    finished_at = Net.now net;
    blocking = !blocking;
    msgs = Net.delivered net;
    crashes = Net.crashes_triggered net;
    node_inputs = Array.init nodes (Net.steps net);
    events = List.rev !events;
  }

(* ---------- AC1-AC5 ---------- *)

type violation = { ac : int; detail : string }

let check r =
  let vs = ref [] in
  let add ac detail = vs := { ac; detail } :: !vs in
  let involved = r.parts @ [ r.coord ] in
  let commits = List.filter (fun (_, _, d) -> d) r.decisions in
  let aborts = List.filter (fun (_, _, d) -> not d) r.decisions in
  (match (commits, aborts) with
  | (_, c, _) :: _, (_, a, _) :: _ ->
    add 1
      (Printf.sprintf "node %d decided commit but node %d decided abort" c a)
  | _ -> ());
  List.iter
    (fun node ->
      let mine = List.filter (fun (_, n, _) -> n = node) r.decisions in
      if
        List.exists (fun (_, _, d) -> d) mine
        && List.exists (fun (_, _, d) -> not d) mine
      then add 2 (Printf.sprintf "node %d reversed its decision" node))
    involved;
  if commits <> [] then
    List.iter
      (fun p ->
        match List.assoc_opt p r.votes with
        | Some true -> ()
        | Some false ->
          add 3 (Printf.sprintf "commit decided but node %d voted no" p)
        | None ->
          add 3 (Printf.sprintf "commit decided but node %d never voted" p))
      r.parts;
  if r.faults = [] && r.outcome <> Some true then
    add 4 "fault-free all-yes round did not commit";
  if not r.quiescent then add 5 "round did not quiesce within budget"
  else
    List.iter
      (fun node ->
        if not (List.exists (fun (_, n, _) -> n = node) r.decisions) then
          add 5 (Printf.sprintf "node %d never decided" node))
      involved;
  List.rev !vs

(* ---------- exhaustive single-fault micro-universe ---------- *)

let universe ?repairs cfg ~n_parts ~seed =
  let nodes = n_parts + 1 and coord = n_parts in
  let parts = List.init n_parts (fun p -> p) in
  let run faults =
    let r = round cfg ~nodes ~coord ~parts ~tx:0 ~seed ~faults () in
    (faults, r, check r)
  in
  let base = run [] in
  let _, br, _ = base in
  let repairs =
    match repairs with
    | Some rs -> rs
    | None ->
      let longest =
        List.fold_left max 0.
          [ cfg.t_prepare; cfg.t_vote; cfg.t_decision; cfg.t_ack ]
      in
      (* one repair inside every timeout, one past all of them: both the
         "came right back" and the "everyone timed out first" schedules *)
      [ 2.5 *. cfg.delay; (3. *. longest) +. cfg.delay ]
  in
  let placements = ref [] in
  List.iter
    (fun node ->
      for s = 0 to br.node_inputs.(node) - 1 do
        List.iter
          (fun repair ->
            placements := [ Crash { node; at_input = s; repair } ] :: !placements)
          repairs
      done)
    (coord :: parts);
  List.iter
    (fun p -> placements := [ Vote_no { node = p } ] :: !placements)
    parts;
  List.iter
    (fun p ->
      placements :=
        [ Slow_link { src = coord; dst = p; extra = cfg.t_prepare +. 2. } ]
        :: [ Slow_link { src = p; dst = coord; extra = cfg.t_vote +. 2. } ]
        :: !placements)
    parts;
  base :: List.rev_map run !placements

(* ---------- printing & witnesses ---------- *)

let pp_fault ppf = function
  | Crash { node; at_input; repair } ->
    Format.fprintf ppf "crash(node=%d,at=%d,repair=%g)" node at_input repair
  | Slow_link { src; dst; extra } ->
    Format.fprintf ppf "slow(%d->%d,+%g)" src dst extra
  | Vote_no { node } -> Format.fprintf ppf "vote-no(node=%d)" node

let pp_violation ppf { ac; detail } =
  Format.fprintf ppf "AC%d: %s" ac detail

let witness r violations =
  let b = Buffer.create 1024 in
  let bf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bf "2PC round tx=%d coord=%d parts=[%s] faults=[%s]\n" r.tx r.coord
    (String.concat "," (List.map string_of_int r.parts))
    (String.concat "; "
       (List.map (Format.asprintf "%a" pp_fault) r.faults));
  List.iter
    (fun v -> bf "  violated %s\n" (Format.asprintf "%a" pp_violation v))
    violations;
  bf "  outcome=%s quiescent=%b blocking=%g msgs=%d crashes=%d\n"
    (match r.outcome with
    | Some true -> "commit"
    | Some false -> "abort"
    | None -> "none")
    r.quiescent r.blocking r.msgs r.crashes;
  List.iter
    (fun (t, ev) -> bf "  %8.2f  %s\n" t (Obs.Event.to_string ev))
    r.events;
  Buffer.contents b

(* ---------- commit service for the sharded engine ---------- *)

type totals = {
  rounds : int;
  committed : int;
  aborted : int;
  latency_sum : float;
  blocking_sum : float;
  blocking_max : float;
  total_msgs : int;
  total_crashes : int;
}

type service = {
  sink : Obs.Sink.t;
  cfg : config;
  crash_rate : float;
  slow_rate : float;
  rng : Random.State.t;
  shards : int;
  mutable clock : float;
  mutable acc : totals;
}

let service ?(sink = Obs.Sink.null) ?(config = default) ?(crash_rate = 0.)
    ?(slow_rate = 0.) ?(seed = 0) ~shards () =
  {
    sink;
    cfg = config;
    crash_rate;
    slow_rate;
    rng = Random.State.make [| 0x27C5; seed |];
    shards;
    clock = 0.;
    acc =
      {
        rounds = 0;
        committed = 0;
        aborted = 0;
        latency_sum = 0.;
        blocking_sum = 0.;
        blocking_max = 0.;
        total_msgs = 0;
        total_crashes = 0;
      };
  }

let sample_faults svc ~coord ~parts =
  if svc.crash_rate = 0. && svc.slow_rate = 0. then []
  else begin
    let fs = ref [] in
    List.iter
      (fun node ->
        if Random.State.float svc.rng 1.0 < svc.crash_rate then begin
          let at_input = Random.State.int svc.rng 6 in
          let repair =
            svc.cfg.delay *. (2. +. Random.State.float svc.rng 30.)
          in
          fs := Crash { node; at_input; repair } :: !fs
        end)
      (coord :: parts);
    List.iter
      (fun p ->
        if Random.State.float svc.rng 1.0 < svc.slow_rate then begin
          let extra =
            svc.cfg.t_decision
            +. Random.State.float svc.rng (2. *. svc.cfg.t_decision)
          in
          fs :=
            (if Random.State.bool svc.rng then
               Slow_link { src = coord; dst = p; extra }
             else Slow_link { src = p; dst = coord; extra })
            :: !fs
        end)
      parts;
    !fs
  end

let commit svc ~tx ~shards =
  let coord = svc.shards in
  let nodes = svc.shards + 1 in
  let faults = sample_faults svc ~coord ~parts:shards in
  let at =
    max svc.clock (if Obs.Sink.on svc.sink then svc.sink.Obs.Sink.now else 0.)
  in
  let r =
    round ~sink:svc.sink ~at svc.cfg ~nodes ~coord ~parts:shards ~tx
      ~seed:(Random.State.int svc.rng 0x3FFFFFFF)
      ~faults ()
  in
  svc.clock <- at +. r.finished_at;
  let ok = r.outcome = Some true in
  let a = svc.acc in
  svc.acc <-
    {
      rounds = a.rounds + 1;
      committed = (a.committed + if ok then 1 else 0);
      aborted = (a.aborted + if ok then 0 else 1);
      latency_sum =
        (a.latency_sum
        +. if Float.is_nan r.decided_at then r.finished_at else r.decided_at);
      blocking_sum = a.blocking_sum +. r.blocking;
      blocking_max = Float.max a.blocking_max r.blocking;
      total_msgs = a.total_msgs + r.msgs;
      total_crashes = a.total_crashes + r.crashes;
    };
  ok

let totals svc = svc.acc
