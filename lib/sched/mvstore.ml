open Core

type version = { value : int; writer : int; ts : int }

type txn = {
  id : int;
  snap : int;
  mutable reads : Names.Vset.t;
  mutable writes : (Names.var * int) list; (* newest first *)
  mutable commit_ts : int option;
  mutable in_rw : bool;
  mutable out_rw : bool;
}

type t = {
  chains : (Names.var, version list ref) Hashtbl.t; (* newest first *)
  mutable clock : int;
  mutable fresh : int;
  live : (int, txn) Hashtbl.t;
  mutable retained : txn list;
}

let initial_value = 0

let create () =
  {
    chains = Hashtbl.create 64;
    clock = 0;
    fresh = initial_value;
    live = Hashtbl.create 16;
    retained = [];
  }

let clock st = st.clock

let chain st x =
  match Hashtbl.find_opt st.chains x with Some r -> !r | None -> []

let newest st x = match chain st x with v :: _ -> Some v | [] -> None

let begin_txn st id =
  let txn =
    {
      id;
      snap = st.clock;
      reads = Names.Vset.empty;
      writes = [];
      commit_ts = None;
      in_rw = false;
      out_rw = false;
    }
  in
  Hashtbl.replace st.live id txn;
  txn

let live_txn st id = Hashtbl.find_opt st.live id
let live_txns st = Hashtbl.fold (fun _ t acc -> t :: acc) st.live []
let snapshot t = t.snap
let reads_of t = Names.Vset.elements t.reads
let commit_ts t = t.commit_ts

(* Newest committed version visible at snapshot [snap]; the store is
   born with every variable at [initial_value] (timestamp 0). *)
let read_at st x ~snap =
  let rec visible = function
    | [] -> initial_value
    | v :: rest -> if v.ts <= snap then v.value else visible rest
  in
  visible (chain st x)

let read st t x =
  match List.assoc_opt x t.writes with
  | Some v -> (v, None) (* own buffered write; not an antidependency source *)
  | None ->
    t.reads <- Names.Vset.add x t.reads;
    let rec visible = function
      | [] -> (initial_value, None)
      | v :: rest ->
        if v.ts <= t.snap then (v.value, Some v.writer) else visible rest
    in
    visible (chain st x)

let write st t x =
  st.fresh <- st.fresh + 1;
  t.writes <- (x, st.fresh) :: t.writes;
  st.fresh

(* First-committer-wins: does any variable in [vars] carry a committed
   version newer than [snap] installed by someone else? Pure query. *)
let ww_conflict st ~snap ~excluding vars =
  List.find_opt
    (fun x ->
      List.exists
        (fun v -> v.ts > snap && v.writer <> excluding)
        (chain st x))
    vars

(* Distinct writers of committed versions of [x] newer than [than] —
   the rw-antidependency targets of a transaction that read [x] under
   snapshot [than]. Pure query. *)
let newer_writers st x ~than ~excluding =
  chain st x
  |> List.filter_map (fun v ->
         if v.ts > than && v.writer <> excluding then Some v.writer else None)
  |> List.sort_uniq Int.compare

(* Transactions concurrent with a snapshot: every live transaction,
   plus retained committed ones whose commit came after the snapshot
   was pinned. Only concurrent transactions can be linked by the
   vulnerable rw-antidependency edges of the Fekete condition. *)
let concurrent st ~snap ~excluding =
  Hashtbl.fold
    (fun id t acc -> if id = excluding then acc else t :: acc)
    st.live []
  @ List.filter
      (fun t ->
        t.id <> excluding
        && match t.commit_ts with Some c -> c > snap | None -> false)
      st.retained

let min_live_snapshot st =
  Hashtbl.fold
    (fun _ t acc ->
      match acc with None -> Some t.snap | Some s -> Some (min s t.snap))
    st.live None

(* Garbage collection: once no live snapshot can reach a version (a
   newer committed version is itself at or below every live snapshot),
   drop it; retained committed transaction records go the same way once
   nothing live is concurrent with them.

   With no live snapshot at all, [s_min] falls back to the current
   clock. That must never empty a chain: the next [begin_txn] pins
   [snap = clock], and its reads walk the chain for the newest version
   at or below that. Chains are newest-first and every committed
   version satisfies [ts <= clock], so [keep] always retains the head
   version per variable — exactly the one a post-prune snapshot
   reads. *)
let prune st =
  let s_min =
    match min_live_snapshot st with Some s -> s | None -> st.clock
  in
  Hashtbl.iter
    (fun _ r ->
      let rec keep = function
        | [] -> []
        | v :: rest ->
          if v.ts <= s_min then [ v ] (* newest reachable; older ones dead *)
          else v :: keep rest
      in
      r := keep !r)
    st.chains;
  st.retained <-
    List.filter
      (fun t -> match t.commit_ts with Some c -> c > s_min | None -> false)
      st.retained

let commit st t =
  st.clock <- st.clock + 1;
  let ts = st.clock in
  t.commit_ts <- Some ts;
  (* newest buffered value per variable wins (writes is newest-first) *)
  let seen = ref Names.Vset.empty in
  List.iter
    (fun (x, value) ->
      if not (Names.Vset.mem x !seen) then begin
        seen := Names.Vset.add x !seen;
        let r =
          match Hashtbl.find_opt st.chains x with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add st.chains x r;
            r
        in
        r := { value; writer = t.id; ts } :: !r
      end)
    t.writes;
  Hashtbl.remove st.live t.id;
  st.retained <- t :: st.retained;
  prune st;
  ts

let abort st t =
  Hashtbl.remove st.live t.id;
  prune st
