open Core

(** Online schedulers.

    The paper models a scheduler as a mapping from request histories to
    correct schedules, realised operationally: step-execution requests
    arrive one at a time (in each transaction's program order) and the
    scheduler must {e grant} the step now, {e delay} it (it will be
    retried after other grants), or {e abort} the requesting transaction
    (it restarts from its first step — how timestamp and
    optimistic-flavoured schedulers resolve conflicts).

    A scheduler instance is stateful; [attempt] must be free of
    observable side effects so the driver can poll delayed requests.

    {2 Constructor convention}

    Every scheduler module exposes a single constructor of the shape

    {[ val create : ?sink:Obs.Sink.t -> ... -> unit -> Scheduler.t ]}

    with the optional observability sink {e before} the labeled
    arguments and a trailing [unit]. The [unit] is not decoration: an
    optional argument is only "erased" (defaulted) when it is followed
    by a positional or [unit] parameter at the application site —
    without it, [create ~syntax] would be a partial application still
    waiting for [?sink], and OCaml's warning 16 flags the unerasable
    optional. Omitting the sink yields an untraced scheduler
    ([Obs.Sink.null], zero-cost: emission sites are guarded by
    {!Obs.Sink.on}). This rule is stated once here; the per-module
    [.mli]s document only which events each scheduler emits. *)

type response = Grant | Delay | Abort

type t = {
  name : string;
  attempt : Names.step_id -> response;
      (** Decide about the next step of a transaction. *)
  commit : Names.step_id -> unit;
      (** Record that the step was granted (always directly after an
          [attempt] that returned [Grant]). *)
  on_abort : int -> unit;
      (** The transaction restarts: discard all bookkeeping about it. *)
  victim : int list -> int option;
      (** Deadlock resolution: given the transactions blocked in a
          stall, choose one to abort ([None] = scheduler cannot resolve;
          the driver then fails). *)
  detect : (int * Names.step_id) list -> int option;
      (** Eager deadlock detection: given every blocked transaction with
          its pending step (youngest first), return a victim only when an
          abort is {e required} for progress — the blocked transactions
          mutually prevent each other from ever proceeding, as in a
          wait-for cycle under locking. Blockage that other transactions
          can still drain around (e.g. an SGT delay, which dooms the
          requester but impedes nobody else) must report [None]: the
          stall path aborts lazily, after everything able to finish has
          finished, which is strictly cheaper in restarts. Used by the
          timed simulation after every delay. *)
}

val make :
  name:string ->
  attempt:(Names.step_id -> response) ->
  commit:(Names.step_id -> unit) ->
  ?on_abort:(int -> unit) ->
  ?victim:(int list -> int option) ->
  ?detect:((int * Names.step_id) list -> int option) ->
  unit ->
  t
(** Defaults: [on_abort] does nothing; [victim] picks the first blocked
    transaction; [detect] reports nothing.

    Why "first" is safe: {!Driver.resolve_stall} presents the stuck
    list {e youngest first} (sorted by arrival rank, descending), so the
    default victim is the youngest blocked transaction — exactly the
    wound-wait seniority order that guarantees termination (the oldest
    transaction is never chosen, so some transaction always survives
    long enough to finish). A scheduler supplying its own [victim] must
    preserve that property itself; see {!Tpl_sched.wait_for_victim}. *)
