open Core

(** The brute-force reference SGT scheduler.

    Semantically identical to {!Sgt} but structured the naive way: the
    admission test copies the whole conflict graph, adds the candidate
    edges and reruns full DFS cycle detection; pruning rebuilds the
    graph from scratch; the per-variable access history keeps duplicate
    entries. Kept as the oracle for differential tests (decision-for-
    decision equivalence with the incremental scheduler) and as the
    baseline in the scheduler micro-benchmark. *)

val create : syntax:Syntax.t -> Scheduler.t
