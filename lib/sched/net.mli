(** Message-passing discrete-event network simulator — the distributed
    extension of the central-scheduler DES ([Sim.Des]), living on the
    scheduler side of the dependency arrow so protocol layers
    ({!Twopc}) can both use it and be used by the engines.

    A network is a fixed set of nodes exchanging typed messages over
    links with per-link delivery delays, under a crash plan. Three kinds
    of events drive it, drained from a single time-ordered queue with a
    deterministic sequence-number tie-break (exactly the [Sim.Des]
    discipline, so equal-time events process in schedule order):

    - {e delivery}: a message sent at [t] over link [(src, dst)]
      arrives at [t + delay ~src ~dst]; deliveries to a crashed node
      are dropped on the floor (fail-stop, no buffering in the wire);
    - {e timer}: a node's own alarm; crashes invalidate all of the
      node's pending timers (an epoch counter, so stale alarms of a
      previous incarnation never fire into the new one);
    - {e recovery}: scheduled [repair] after a crash; the node comes
      back empty-handed (volatile state and timers gone) and its
      [on_recover] handler runs — persistent state is whatever the
      protocol layer kept outside the handlers.

    Crashes are {e input-indexed}: a plan entry [(node, s, repair)]
    fells the node at the instant it would process its [s]-th input
    (message or timer), losing that input — "crash before the s-th
    step". Input indexing makes exhaustive single-fault enumeration
    finite and exact: a baseline run counts each node's inputs, and
    every placement [0 .. steps n] is a distinct observable schedule,
    which wall-clock-indexed crashes cannot guarantee.

    Handlers run atomically: a node processes one input, updates its
    state and sends/arms as one indivisible step (the forced-log
    assumption of {!Twopc} — a log write and the send it guards cannot
    be separated by a crash). *)

type 'msg t

type 'msg handlers = {
  on_msg : 'msg t -> node:int -> src:int -> 'msg -> unit;
  on_timer : 'msg t -> node:int -> tag:int -> unit;
  on_crash : 'msg t -> node:int -> unit;
      (** the node just went down (volatile state should be dropped by
          the protocol layer; the kernel already cleared its timers) *)
  on_recover : 'msg t -> node:int -> unit;
}

val create :
  nodes:int ->
  delay:(src:int -> dst:int -> float) ->
  ?crashes:(int * int * float) list ->
  handlers:'msg handlers ->
  unit ->
  'msg t
(** [crashes] is the crash plan: [(node, at_input, repair)] — at most
    one pending crash per node is armed at a time; multiple entries for
    one node trigger in input order. [delay] is sampled at send time
    (it may consult a jitter source). *)

val now : _ t -> float
val alive : _ t -> int -> bool

val steps : _ t -> int -> int
(** Inputs (messages + timers) the node has processed so far — the
    index space of the crash plan. *)

val crashes_triggered : _ t -> int
val delivered : _ t -> int
(** Messages actually delivered (dropped sends excluded). *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Enqueue a delivery at [now + delay ~src ~dst]. Self-sends are
    allowed (the round kick-off uses one). Sends from a dead node are
    dropped (they model messages "in the NIC" of a crashed sender). *)

val set_timer : 'msg t -> node:int -> tag:int -> after:float -> unit
(** Arm an alarm; it fires via [on_timer] unless the node crashes
    first. Timers do not auto-repeat — re-arm from the handler. *)

val run : ?budget:int -> 'msg t -> [ `Quiescent | `Budget_exhausted ]
(** Drain the queue. [`Quiescent] means no event remains anywhere — the
    protocol terminated; [`Budget_exhausted] (default budget 100_000
    processed events) is the livelock backstop, and a liveness (AC5)
    violation when a protocol hits it. *)
