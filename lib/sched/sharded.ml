open Core

let create ?(sink = Obs.Sink.null) ?(shards = 4) ?commit_cross ~syntax () =
  let p = Partition.make ~syntax ~shards in
  let fmt = Syntax.format syntax in
  let n = p.Partition.n in
  (* Touched-shard lists of the cross-shard transactions, decoded once
     from the partition bitmasks — the participant sets handed to the
     atomic-commit hook. *)
  let shards_of_tx =
    match commit_cross with
    | None -> [||]
    | Some _ ->
      Array.init n (fun tx ->
          if not p.Partition.cross.(tx) then []
          else begin
            let acc = ref [] in
            for s = shards - 1 downto 0 do
              if p.Partition.mask.(tx) land (1 lsl s) <> 0 then acc := s :: !acc
            done;
            !acc
          end)
  in
  (* Per-shard replicas of the {!Sgt} state, over shard-local ids:
     accessor history per shard-local variable, activity flags, the
     incremental conflict graph, and the removal version stamp backing
     the delay cache. *)
  let history =
    Array.init shards (fun s -> Array.make (max 1 p.Partition.n_lvars.(s)) [])
  in
  let active =
    Array.init shards (fun s ->
        Array.make (Array.length p.Partition.members.(s)) false)
  in
  let graph =
    Array.init shards (fun s ->
        Digraph.Acyclic.create (Array.length p.Partition.members.(s)))
  in
  let version = Array.make shards 0 in
  let completed = Array.make n false in
  (* The coordinator: a summary graph over coordinator-local ids of the
     cross-shard transactions, materialised only when any exist — on an
     all-single-shard workload nothing below ever touches it. *)
  let cgraph =
    if p.Partition.n_cross = 0 then None
    else Some (Digraph.Acyclic.create p.Partition.n_cross)
  in
  let cversion = ref 0 in
  (* cross-shard transactions present in each shard, as (shard-local id,
     coordinator id, global id): the only candidate endpoints of summary
     edges discovered in that shard *)
  let cross_in_shard =
    Array.init shards (fun s ->
        let acc = ref [] in
        let mem = p.Partition.members.(s) in
        for l = Array.length mem - 1 downto 0 do
          let g = mem.(l) in
          if p.Partition.cross.(g) then
            acc := (l, p.Partition.cross_id.(g), g) :: !acc
        done;
        Array.of_list !acc)
  in
  (* Delay cache, as in {!Sgt} but keyed on both the step's shard
     version and the coordinator version: a Delay verdict stays valid
     until a removal in the owning shard (abort or prune there) or a
     coordinator removal (abort of a cross transaction) — the only
     events that can shrink the graphs a refusal was computed on. *)
  let blocked_idx = Array.make n (-1) in
  let blocked_sv = Array.make n (-1) in
  let blocked_cv = Array.make n (-1) in
  (* Candidate summary edges of granting step (tx, idx) in shard [s]:
     the new intra-shard edges are [u -> l] for prior accessors [u], so
     every new intra-shard path runs [a ~> u -> l ~> b]. Sources A are
     the cross transactions of [s] reaching some accessor (tx itself
     excluded: its only new paths are self-loops through [l]); targets B
     are the cross transactions reachable from [l], plus tx itself when
     cross. Both reachability queries reuse [closes_cycle_any] as a
     pure multi-source reachability test. *)
  let summary_candidates s l lv tx =
    let srcs = history.(s).(lv) in
    if srcs = [] then ([], [])
    else begin
      let a = ref [] and b = ref [] in
      Array.iter
        (fun (lc, cc, g) ->
          if g <> tx && active.(s).(lc) then begin
            if
              Digraph.Acyclic.closes_cycle_any ~excluding:l graph.(s)
                ~sources:srcs ~target:lc
            then a := cc :: !a;
            if
              Digraph.Acyclic.closes_cycle_any graph.(s) ~sources:[ lc ]
                ~target:l
            then b := cc :: !b
          end)
        cross_in_shard.(s);
      if p.Partition.cross.(tx) then b := p.Partition.cross_id.(tx) :: !b;
      (!a, !b)
    end
  in
  (* Would adding every candidate edge close a cycle in the summary
     graph? Tested per target over the common source set A: a cycle
     through several candidate edges still has some target with an
     existing-edge path to a source in A, so per-target queries cover
     the whole batch. *)
  let summary_refused s l lv tx =
    match cgraph with
    | None -> false
    | Some cg -> (
      match summary_candidates s l lv tx with
      | [], _ | _, [] -> false
      | aa, bb ->
        List.exists
          (fun bt ->
            List.memq bt aa
            || Digraph.Acyclic.closes_cycle_any cg ~sources:aa ~target:bt)
          bb)
  in
  let attempt (id : Names.step_id) =
    let tx = id.Names.tx in
    let idx = id.Names.idx in
    let s = p.Partition.shard_of_step.(tx).(idx) in
    if
      blocked_idx.(tx) = idx
      && blocked_sv.(tx) = version.(s)
      && blocked_cv.(tx) = !cversion
    then Scheduler.Delay
    else begin
      let l = p.Partition.local_id.(s).(tx) in
      let lv = p.Partition.lvar_of_step.(tx).(idx) in
      if Obs.Sink.on sink then
        Obs.Sink.record sink (Obs.Event.Shard_routed { tx; idx; shard = s });
      if
        Digraph.Acyclic.closes_cycle_any ~excluding:l graph.(s)
          ~sources:history.(s).(lv) ~target:l
        || summary_refused s l lv tx
      then begin
        blocked_idx.(tx) <- idx;
        blocked_sv.(tx) <- version.(s);
        blocked_cv.(tx) <- !cversion;
        if Obs.Sink.on sink then
          Obs.Sink.record sink (Obs.Event.Cycle_refused { tx; idx });
        Scheduler.Delay
      end
      else begin
        (* Terminal success of a cross-shard transaction: run the
           distributed commit round before granting. An abort here is a
           scheduler abort like any certification refusal — the driver
           restarts the transaction from scratch. *)
        match commit_cross with
        | Some decide when idx = fmt.(tx) - 1 && p.Partition.cross.(tx) ->
          if decide ~tx ~shards:shards_of_tx.(tx) then Scheduler.Grant
          else Scheduler.Abort
        | _ -> Scheduler.Grant
      end
    end
  in
  let forget s l =
    version.(s) <- version.(s) + 1;
    let h = history.(s) in
    for v = 0 to Array.length h - 1 do
      if List.memq l h.(v) then h.(v) <- List.filter (fun u -> u <> l) h.(v)
    done;
    active.(s).(l) <- false;
    Digraph.Acyclic.remove_vertex graph.(s) l
  in
  (* Shard-local pruning, restricted to single-shard transactions: for
     them a zero in-degree in the home shard is a zero global in-degree,
     and a completed transaction never gains incoming edges, so they are
     sources forever — exactly the {!Sgt} argument. A cross-shard
     transaction is never pruned: its shard-local in-degree says nothing
     about its edges elsewhere, and dropping its history entries would
     lose summary paths. Cascades stay inside the shard (removed edges
     are intra-shard). *)
  let rec prune s =
    let mem = p.Partition.members.(s) in
    let ns = Array.length mem in
    let victim = ref (-1) in
    let l = ref 0 in
    while !victim < 0 && !l < ns do
      let g = mem.(!l) in
      if
        completed.(g)
        && (not p.Partition.cross.(g))
        && active.(s).(!l)
        && Digraph.Acyclic.in_degree graph.(s) !l = 0
      then victim := !l;
      incr l
    done;
    if !victim >= 0 then begin
      forget s !victim;
      prune s
    end
  in
  let add_shard_edges s tx l srcs =
    List.iter
      (fun u ->
        if u <> l then begin
          match Digraph.Acyclic.add_edge_acyclic graph.(s) u l with
          | Ok () ->
            if Obs.Sink.on sink then
              Obs.Sink.record sink
                (Obs.Event.Edge_added
                   { src = p.Partition.members.(s).(u); dst = tx })
          | Error _ ->
            (* [attempt] vetted the whole batch; an edge cannot fail *)
            assert false
        end)
      srcs
  in
  let commit (id : Names.step_id) =
    let tx = id.Names.tx in
    let idx = id.Names.idx in
    let s = p.Partition.shard_of_step.(tx).(idx) in
    let l = p.Partition.local_id.(s).(tx) in
    let lv = p.Partition.lvar_of_step.(tx).(idx) in
    (* discover summary edges against the pre-extension graph: the new
       paths are exactly A x B, and [attempt] vetted them against the
       summary graph, so insertion cannot fail *)
    (match cgraph with
    | None -> ()
    | Some cg ->
      let aa, bb = summary_candidates s l lv tx in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a <> b then
                match Digraph.Acyclic.add_edge_acyclic cg a b with
                | Ok () -> ()
                | Error _ -> assert false)
            bb)
        aa);
    add_shard_edges s tx l history.(s).(lv);
    if not (List.memq l history.(s).(lv)) then
      history.(s).(lv) <- l :: history.(s).(lv);
    active.(s).(l) <- true;
    if idx = fmt.(tx) - 1 then begin
      completed.(tx) <- true;
      prune s
    end
  in
  let on_abort tx =
    completed.(tx) <- false;
    for s = 0 to shards - 1 do
      let l = p.Partition.local_id.(s).(tx) in
      if l >= 0 then forget s l
    done;
    match cgraph with
    | None -> ()
    | Some cg ->
      if p.Partition.cross.(tx) then begin
        Digraph.Acyclic.remove_vertex cg p.Partition.cross_id.(tx);
        incr cversion
      end
  in
  (* No eager [detect], for the same reason as {!Sgt}: a refused request
     dooms only its requester and blocks nobody, so lazy stall
     resolution is strictly cheaper in restarts. *)
  Scheduler.make ~name:"sharded" ~attempt ~commit ~on_abort ()
