open Core

(** The serialization-graph-testing scheduler — the {e realised} optimal
    scheduler for complete syntactic information (Theorem 3).

    Maintains the conflict graph of the granted prefix and grants a step
    iff the graph stays acyclic. Because conflict serializability is
    prefix-closed and coincides with the Herbrand notion [SR(T)] in the
    paper's step model, the fixpoint set of this scheduler is exactly
    [SR(T)]. A request that would close a cycle can never succeed later
    (edges only accumulate), so stalls are resolved by aborting the
    requester, whose edges are then removed.

    The conflict graph is maintained {e incrementally} on
    {!Digraph.Acyclic} (Pearce–Kelly dynamic topological order): the
    admission test is a single reachability query bounded by the
    affected window of the order, commits extend the graph in place, and
    pruning/aborts remove a vertex without a rebuild. {!Sgt_ref} keeps
    the original copy-and-recheck implementation as the differential
    oracle. *)

val create : ?sink:Obs.Sink.t -> syntax:Syntax.t -> unit -> Scheduler.t
(** With a [sink], admitted conflict edges emit
    {!Obs.Event.Edge_added} and fresh cycle refusals emit
    {!Obs.Event.Cycle_refused} (cached delay re-verdicts stay silent —
    they never touch the graph). Timestamps come from the driving
    loop's {!Obs.Sink.set_now}. Constructor shape per the convention in
    {!Scheduler}. *)
