open Core

type t = {
  shards : int;
  n : int;
  shard_of_step : int array array;
  lvar_of_step : int array array;
  mask : int array;
  home : int array;
  cross : bool array;
  n_cross : int;
  cross_id : int array;
  members : int array array;
  local_id : int array array;
  n_lvars : int array;
}

let shard_of_var ~shards v = Hashtbl.hash (v : Names.var) mod shards

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let make ~syntax ~shards =
  if shards < 1 || shards > 62 then
    invalid_arg "Partition.make: shards must be in 1..62";
  let fmt = Syntax.format syntax in
  let n = Array.length fmt in
  (* one pass per step: hash the variable once, intern it once *)
  let lvar_tbls : (Names.var, int) Hashtbl.t array =
    Array.init shards (fun _ -> Hashtbl.create 16)
  in
  let n_lvars = Array.make shards 0 in
  let shard_of_step = Array.init n (fun i -> Array.make fmt.(i) 0) in
  let lvar_of_step = Array.init n (fun i -> Array.make fmt.(i) 0) in
  for i = 0 to n - 1 do
    for j = 0 to fmt.(i) - 1 do
      let v = Syntax.var syntax (Names.step i j) in
      let s = shard_of_var ~shards v in
      shard_of_step.(i).(j) <- s;
      lvar_of_step.(i).(j) <-
        (match Hashtbl.find_opt lvar_tbls.(s) v with
        | Some k -> k
        | None ->
          let k = n_lvars.(s) in
          Hashtbl.add lvar_tbls.(s) v k;
          n_lvars.(s) <- k + 1;
          k)
    done
  done;
  let mask = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter (fun s -> mask.(i) <- mask.(i) lor (1 lsl s)) shard_of_step.(i)
  done;
  let cross = Array.map (fun m -> popcount m > 1) mask in
  let home =
    Array.init n (fun i ->
        if mask.(i) = 0 || cross.(i) then -1 else shard_of_step.(i).(0))
  in
  let cross_id = Array.make n (-1) in
  let n_cross = ref 0 in
  for i = 0 to n - 1 do
    if cross.(i) then begin
      cross_id.(i) <- !n_cross;
      incr n_cross
    end
  done;
  let members =
    Array.init shards (fun s ->
        let acc = ref [] in
        for i = n - 1 downto 0 do
          if mask.(i) land (1 lsl s) <> 0 then acc := i :: !acc
        done;
        Array.of_list !acc)
  in
  let local_id =
    Array.init shards (fun s ->
        let a = Array.make n (-1) in
        Array.iteri (fun l g -> a.(g) <- l) members.(s);
        a)
  in
  {
    shards;
    n;
    shard_of_step;
    lvar_of_step;
    mask;
    home;
    cross;
    n_cross = !n_cross;
    cross_id;
    members;
    local_id;
    n_lvars;
  }

let cross_fraction p =
  let nonempty = ref 0 and crossed = ref 0 in
  for i = 0 to p.n - 1 do
    if p.mask.(i) <> 0 then begin
      incr nonempty;
      if p.cross.(i) then incr crossed
    end
  done;
  if !nonempty = 0 then 0.
  else float_of_int !crossed /. float_of_int !nonempty
