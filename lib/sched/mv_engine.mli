(** Shared skeleton of the multi-version engines over {!Mvstore}.

    A policy record selects the admission rules; {!Mvcc}, {!Si} and
    {!Ssi} are thin instantiations. Reads never delay (every verdict
    is Grant or Abort); all abort decisions are pure queries made at
    the transaction's final step, so the driver's retry protocol stays
    sound. See the per-engine [.mli]s for semantics and emitted
    events. *)

type policy = {
  name : string;
  fcw : bool;  (** first-committer-wins abort on overlapping writes *)
  ssi : bool;  (** Fekete dangerous-structure (pivot) abort *)
}

val create :
  policy -> ?sink:Obs.Sink.t -> syntax:Core.Syntax.t -> unit -> Scheduler.t
