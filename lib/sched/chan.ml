(* Bounded MPSC channels of ints (transaction indices), in two builds:

   [Ring] is a Vyukov-style bounded queue over a sequence-stamped cell
   array. Producers claim a slot with one CAS on the tail; the single
   consumer runs CAS-free (plain head counter). Payload cells are plain
   [int array] fields published through the per-cell atomic sequence
   number — the OCaml 5 memory model makes plain writes before an
   [Atomic.set] visible to a reader that observed the set's value.

   [Mutex] is the textbook mutex + condition variable deque. Same
   interface, wildly different contention profile; the scheduler bench
   measures both so the choice is data, not folklore.

   Blocking uses bounded spinning ([Domain.cpu_relax]) and falls back
   to a short [Unix.sleepf]: on machines with fewer cores than domains
   (CI boxes, laptops under load) a pure spin steals the timeslice the
   peer needs to make the awaited progress. *)

exception Closed

type kind = Ring | Mutex

let kind_name = function Ring -> "ring" | Mutex -> "mutex"

type ring = {
  buf : int array;
  seq : int Atomic.t array; (* cell stamp: round trip of slot states *)
  mask : int;
  tail : int Atomic.t; (* producers race on this *)
  mutable head : int;  (* single consumer: no atomicity needed *)
}

type mux = {
  q : int Queue.t;
  capacity : int;
  lock : Stdlib.Mutex.t;
  not_empty : Stdlib.Condition.t;
  not_full : Stdlib.Condition.t;
}

type impl = R of ring | M of mux
type t = { impl : impl; closed : bool Atomic.t }

let default_capacity = 1024

let create ?(capacity = default_capacity) kind =
  if capacity < 1 then invalid_arg "Chan.create: capacity must be positive";
  (* round up to a power of two so slot = index land mask *)
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  let impl =
    match kind with
    | Ring ->
      R
        {
          buf = Array.make !cap 0;
          seq = Array.init !cap (fun i -> Atomic.make i);
          mask = !cap - 1;
          tail = Atomic.make 0;
          head = 0;
        }
    | Mutex ->
      M
        {
          q = Queue.create ();
          capacity = !cap;
          lock = Stdlib.Mutex.create ();
          not_empty = Stdlib.Condition.create ();
          not_full = Stdlib.Condition.create ();
        }
  in
  { impl; closed = Atomic.make false }

let kind t = match t.impl with R _ -> Ring | M _ -> Mutex

(* Escalating backoff for the lock-free paths: spin politely first, then
   yield real time so a 1-core box lets the peer run. *)
let backoff tries =
  if tries < 64 then Domain.cpu_relax ()
  else Unix.sleepf (if tries < 256 then 50e-6 else 500e-6)

let rec ring_push ch r v tries =
  if Atomic.get ch.closed then raise Closed;
  let t = Atomic.get r.tail in
  let cell = r.seq.(t land r.mask) in
  let s = Atomic.get cell in
  if s = t then
    if Atomic.compare_and_set r.tail t (t + 1) then begin
      r.buf.(t land r.mask) <- v;
      Atomic.set cell (t + 1) (* publish: consumer waits for head + 1 *)
    end
    else begin
      (* lost the slot race to another producer *)
      Domain.cpu_relax ();
      ring_push ch r v tries
    end
  else begin
    (* s < t: the slot from one lap ago is still occupied — queue full *)
    backoff tries;
    ring_push ch r v (tries + 1)
  end

(* Non-blocking drain of everything currently published, consumer only. *)
let ring_pop_avail r out =
  let n = ref 0 in
  let cap = Array.length out in
  let continue = ref true in
  while !continue && !n < cap do
    let h = r.head in
    let cell = r.seq.(h land r.mask) in
    if Atomic.get cell = h + 1 then begin
      out.(!n) <- r.buf.(h land r.mask);
      incr n;
      r.head <- h + 1;
      Atomic.set cell (h + r.mask + 1) (* recycle for the next lap *)
    end
    else continue := false
  done;
  !n

let mux_push ch m v =
  Stdlib.Mutex.lock m.lock;
  let rec wait () =
    if Atomic.get ch.closed then begin
      Stdlib.Mutex.unlock m.lock;
      raise Closed
    end
    else if Queue.length m.q >= m.capacity then begin
      Stdlib.Condition.wait m.not_full m.lock;
      wait ()
    end
  in
  wait ();
  Queue.push v m.q;
  Stdlib.Condition.signal m.not_empty;
  Stdlib.Mutex.unlock m.lock

let mux_pop_avail m out =
  let cap = Array.length out in
  Stdlib.Mutex.lock m.lock;
  let n = ref 0 in
  while !n < cap && not (Queue.is_empty m.q) do
    out.(!n) <- Queue.pop m.q;
    incr n
  done;
  if !n > 0 then Stdlib.Condition.broadcast m.not_full;
  Stdlib.Mutex.unlock m.lock;
  !n

let push t v =
  match t.impl with R r -> ring_push t r v 0 | M m -> mux_push t m v

let close t =
  Atomic.set t.closed true;
  match t.impl with
  | R _ -> ()
  | M m ->
    (* wake both sides so blocked peers observe the flag *)
    Stdlib.Mutex.lock m.lock;
    Stdlib.Condition.broadcast m.not_empty;
    Stdlib.Condition.broadcast m.not_full;
    Stdlib.Mutex.unlock m.lock

(* Blocking batch pop: waits for at least one element; 0 only after
   [close] with everything drained — the consumer's termination signal.
   The mutex build condition-waits; the ring build spins with the same
   escalating backoff as the producers. *)
let pop_batch t out =
  if Array.length out = 0 then
    invalid_arg "Chan.pop_batch: zero-length buffer";
  match t.impl with
  | R r ->
    let rec go tries =
      let n = ring_pop_avail r out in
      if n > 0 then n
      else if Atomic.get t.closed then
        (* producers close only after their last publish, so one more
           drain after observing the flag catches any racing publish *)
        ring_pop_avail r out
      else begin
        backoff tries;
        go (tries + 1)
      end
    in
    go 0
  | M m ->
    let rec go () =
      let n = mux_pop_avail m out in
      if n > 0 then n
      else if Atomic.get t.closed then 0
      else begin
        Stdlib.Mutex.lock m.lock;
        if Queue.is_empty m.q && not (Atomic.get t.closed) then
          Stdlib.Condition.wait m.not_empty m.lock;
        Stdlib.Mutex.unlock m.lock;
        go ()
      end
    in
    go ()
