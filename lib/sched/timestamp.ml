open Core

let create ?(sink = Obs.Sink.null) ~syntax () =
  let clock = ref 0 in
  let ts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let watermark : (Names.var, int) Hashtbl.t = Hashtbl.create 16 in
  let timestamp_of i =
    match Hashtbl.find_opt ts i with
    | Some t -> t
    | None ->
      incr clock;
      Hashtbl.add ts i !clock;
      !clock
  in
  let attempt (id : Names.step_id) =
    let t = timestamp_of id.Names.tx in
    let v = Syntax.var syntax id in
    let w = try Hashtbl.find watermark v with Not_found -> 0 in
    if t >= w then Scheduler.Grant
    else begin
      if Obs.Sink.on sink then
        Obs.Sink.record sink
          (Obs.Event.Ts_refused { tx = id.Names.tx; idx = id.Names.idx });
      Scheduler.Abort
    end
  in
  let commit (id : Names.step_id) =
    let t = timestamp_of id.Names.tx in
    Hashtbl.replace watermark (Syntax.var syntax id) t
  in
  let on_abort i = Hashtbl.remove ts i in
  Scheduler.make ~name:"TO" ~attempt ~commit ~on_abort ()
