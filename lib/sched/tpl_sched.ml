open Core

let cycle_victim ~holders ~wanted blocked =
  (* build the wait-for relation among blocked transactions and pick a
     member of a cycle if any; prefer the member earliest in [blocked],
     which the driver orders youngest-first (wound-wait seniority) *)
  match blocked with
  | [] -> None
  | _ ->
    let idx = List.mapi (fun k i -> (i, k)) blocked in
    let n = List.length blocked in
    let g = Digraph.create n in
    List.iter
      (fun (i, k) ->
        match wanted i with
        | None -> ()
        | Some x -> (
          match holders x with
          | Some j when j <> i -> (
            match List.assoc_opt j idx with
            | Some k' -> Digraph.add_edge g k k'
            | None -> ())
          | Some _ | None -> ()))
      idx;
    (match Digraph.find_cycle g with
    | Some (_ :: _ as cyc) ->
      Some (List.nth blocked (List.fold_left min max_int cyc))
    | Some [] | None -> None)

let wait_for_victim ~holders ~wanted blocked =
  match cycle_victim ~holders ~wanted blocked with
  | Some v -> Some v
  | None -> (match blocked with [] -> None | first :: _ -> Some first)

let create ?(sink = Obs.Sink.null) ~policy ~syntax () =
  let locked = policy.Locking.Policy.apply syntax in
  let txs = locked.Locking.Locked.txs in
  let n = Array.length txs in
  let position = Array.make n 0 in  (* progress in the locked program *)
  let holder : (Locking.Locked.lock_var, int) Hashtbl.t = Hashtbl.create 16 in
  let held_by i x =
    match Hashtbl.find_opt holder x with Some j -> j = i | None -> false
  in
  let free_or_mine i x =
    match Hashtbl.find_opt holder x with Some j -> j = i | None -> true
  in
  (* the segment of lock/unlock steps before transaction i's next action *)
  let rec segment i p acc =
    if p >= Array.length txs.(i) then List.rev acc
    else
      match txs.(i).(p) with
      | Locking.Locked.Action _ -> List.rev acc
      | (Locking.Locked.Lock _ | Locking.Locked.Unlock _) as s ->
        segment i (p + 1) (s :: acc)
  in
  let rec next_action_pos i p =
    if p >= Array.length txs.(i) then None
    else
      match txs.(i).(p) with
      | Locking.Locked.Action _ -> Some p
      | Locking.Locked.Lock _ | Locking.Locked.Unlock _ ->
        next_action_pos i (p + 1)
  in
  let is_last_action i p =
    next_action_pos i (p + 1) = None
  in
  (* every lock step the grant of the next action would have to take:
     its leading segment, plus — for the transaction's final action —
     the whole trailing protocol (2PL' ends with a lock X' step that
     must not be left dangling) *)
  let locks_needed i =
    match next_action_pos i position.(i) with
    | None -> []
    | Some ap ->
      let tail =
        if is_last_action i ap then
          Array.to_list (Array.sub txs.(i) ap (Array.length txs.(i) - ap))
        else []
      in
      segment i position.(i) [] @ tail
  in
  (* the first lock another transaction holds, if any: the wait-for edge *)
  let blocking_lock i =
    List.find_map
      (function
        | Locking.Locked.Lock x when not (free_or_mine i x) -> Some x
        | Locking.Locked.Lock _ | Locking.Locked.Unlock _ | Locking.Locked.Action _ -> None)
      (locks_needed i)
  in
  let attempt (id : Names.step_id) =
    match blocking_lock id.Names.tx with
    | Some _ -> Scheduler.Delay
    | None -> Scheduler.Grant
  in
  let exec i s =
    (match s with
    | Locking.Locked.Lock x ->
      Hashtbl.replace holder x i;
      if Obs.Sink.on sink then
        Obs.Sink.record sink (Obs.Event.Lock_acquired { tx = i; lock = x })
    | Locking.Locked.Unlock x ->
      if held_by i x then begin
        Hashtbl.remove holder x;
        if Obs.Sink.on sink then
          Obs.Sink.record sink (Obs.Event.Lock_released { tx = i; lock = x })
      end
    | Locking.Locked.Action _ -> ());
    position.(i) <- position.(i) + 1
  in
  let commit (id : Names.step_id) =
    let i = id.Names.tx in
    (* run the segment, the action, then the trailing steps: everything
       for a final action, else just the eager unlock run *)
    List.iter (exec i) (segment i position.(i) []);
    let last =
      match txs.(i).(position.(i)) with
      | Locking.Locked.Action id' when Names.equal_step id id' ->
        let last = is_last_action i position.(i) in
        exec i (Locking.Locked.Action id');
        last
      | _ -> invalid_arg "Tpl_sched: commit out of order"
    in
    if last then
      while position.(i) < Array.length txs.(i) do
        exec i txs.(i).(position.(i))
      done
    else begin
      let continue = ref true in
      while !continue && position.(i) < Array.length txs.(i) do
        match txs.(i).(position.(i)) with
        | Locking.Locked.Unlock _ as s -> exec i s
        | Locking.Locked.Lock _ | Locking.Locked.Action _ -> continue := false
      done
    end
  in
  let on_abort i =
    position.(i) <- 0;
    Hashtbl.filter_map_inplace
      (fun _ j -> if j = i then None else Some j)
      holder
  in
  let wound = function
    | Some v as r ->
      if Obs.Sink.on sink then
        Obs.Sink.record sink (Obs.Event.Wound { victim = v });
      r
    | None -> None
  in
  let victim blocked =
    wound
      (wait_for_victim
         ~holders:(fun x -> Hashtbl.find_opt holder x)
         ~wanted:blocking_lock blocked)
  in
  let detect blocked =
    wound
      (cycle_victim
         ~holders:(fun x -> Hashtbl.find_opt holder x)
         ~wanted:blocking_lock (List.map fst blocked))
  in
  Scheduler.make
    ~name:("LRS[" ^ policy.Locking.Policy.name ^ "]")
    ~attempt ~commit ~on_abort ~victim ~detect ()

let create_2pl ?sink ~syntax () =
  create ?sink ~policy:Locking.Two_phase.policy ~syntax ()
