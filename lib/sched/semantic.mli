open Core

(** The commutativity-aware semantic scheduler: incremental SGT over
    the {!Commute}-filtered conflict relation.

    Same machinery as {!Sgt} — incremental conflict graph on
    {!Digraph.Acyclic}, version-stamped delay cache, source pruning —
    but a prior access of another transaction only becomes a conflict
    edge (or a cycle-query source) when its op does {e not} commute
    with the requested step's per {!Commute.conflicts}. Two increments
    of the same counter, two bag inserts, two monotone maxes, or two
    reads order freely; the serialization graph never hears about them.

    On pure rw syntax nothing commutes (except Read/Read, which the
    untyped fragment cannot express), the filter is the identity, and
    the scheduler is decision-for-decision equal to {!Sgt} — pinned
    exhaustively in the tests. On typed syntax its fixpoint set is a
    strict superset of rw-SGT's; every admitted history is equivalent,
    under any interpretation respecting the declared commutativity, to
    a serial one (the extended Herbrand oracle checks this
    differentially: topological orders of the filtered graph preserve
    the layered commutative normal form).

    With a sink, grants that skipped over live same-variable accesses
    because every one commuted emit {!Obs.Event.Commute_pass} — the
    measured coordination saving. *)

val create : ?sink:Obs.Sink.t -> syntax:Syntax.t -> unit -> Scheduler.t
(** Constructor shape per the convention in {!Scheduler}; events as in
    {!Sgt} plus {!Obs.Event.Commute_pass}. *)
