open Core

(** The central scheduler registry: one table mapping names to
    constructors, shared by every front end ([ccopt], the measurement
    suite, the trace runner) so a new engine is registered once and
    shows up everywhere.

    Every entry carries the canonical display name (as printed in
    tables, e.g. ["2PL'"]), a CLI-safe slug (e.g. ["2pl-prime"]), a
    [standard] flag marking membership in the standard measurement
    suite, and the constructor. Lookup is case-insensitive on either
    the name or the slug. *)

type entry = {
  name : string;  (** canonical display name *)
  slug : string;  (** CLI-safe lookup key, {!slug_of_name} of [name] *)
  standard : bool;  (** member of the standard measurement suite *)
  level : string;
      (** strongest [Analysis.Checker] consistency level every history
          the engine commits is guaranteed to satisfy, as a
          [Checker.level_name]: ["ser"] for the single-version
          schedulers and SSI, ["si"] for SI, ["causal"] for MVCC. A
          string because [lib/sched] cannot depend on [lib/analysis];
          [Sim.Check_fuzz] resolves and enforces it per engine. *)
  make : ?sink:Obs.Sink.t -> Syntax.t -> Scheduler.t;
      (** fresh instance over a syntax; the positional [Syntax.t]
          erases the optional sink (warning-16 rule, see {!Scheduler}) *)
}

val slug_of_name : string -> string
(** Lowercases, turns ['] into ["-prime"], collapses runs of other
    separators into single dashes. *)

val all : entry list
(** Every registered scheduler, registration order. *)

val standard : entry list
(** The standard measurement suite, registration order: serial, 2PL,
    2PL', preclaim, SGT, TO, sharded (K = 4), MVCC, SI, SSI and
    semantic. *)

val names : string list
(** The slug of every registered scheduler, registration order — what a
    [--scheduler] flag accepts (canonical names are also accepted,
    case-insensitively). *)

val find : string -> entry option
(** Case-insensitive lookup by canonical name or slug. *)

val find_exn : string -> entry
(** Like {!find}; raises [Invalid_argument] listing {!names} on an
    unknown scheduler. *)
