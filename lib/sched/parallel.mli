open Core

(** True multicore execution of the {!Sharded} engine on OCaml 5
    domains.

    The conflict geometry that justifies sharding also decides the
    domain layout: a conflict edge joins two accessors of one variable
    and therefore lives in exactly one shard, so shards that no
    cross-shard transaction touches can be scheduled by fully
    independent domains, while the shards entangled by cross-shard
    transactions — whose admission goes through the summary graph —
    escalate to a single {e coordinator} domain that admits requests
    batch-at-a-time from its queue ({!Chan.pop_batch} is the
    amortization).

    Every worker runs the ordinary single-threaded {!Driver} over a
    {!Sharded} instance built on the projection of the syntax to the
    worker's transactions, fed its projection of the global arrival
    stream. The variable-to-shard hash depends only on the variable
    name, so the projected partitions agree with the global one and the
    engine is {e decision-identical} to the simulated [Sharded] run:
    per worker, the same committed schedule and the same
    per-transaction abort counts. Queue-pressure metrics ([delays],
    [waiting]) legitimately differ — they are what parallel execution
    changes. *)

type worker_report = {
  txns : int array;
      (** the worker's transactions, global ids ascending — its local
          id space ([stats] and [stats.output] use local ids) *)
  worker_shards : int list;  (** shards this worker owned, ascending *)
  coordinator : bool;
      (** whether this was the coordinator domain (all cross-shard
          traffic and every shard such traffic touches) *)
  stats : Driver.stats;
}

type report = {
  shards : int;
  domains : int;  (** workers actually spawned (≤ requested) *)
  queue : Chan.kind;
  workers : worker_report array;
  output : Schedule.t;
      (** committed schedule, global ids: per-worker outputs
          concatenated in worker order. Each worker's slice preserves
          its true commit order; no order across workers is implied
          (none exists). *)
  delays : int;
  restarts : int;
  deadlocks : int;
  waiting : int;
  grants : int;  (** summed over workers *)
  aborts : int array;  (** per-transaction abort counts, global ids *)
  seconds : float;  (** wall-clock, spawn to last join *)
}

val run :
  ?queue:Chan.kind ->
  ?capacity:int ->
  ?sink:Obs.Sink.t ->
  ?domains:int ->
  shards:int ->
  syntax:Syntax.t ->
  arrivals:int array ->
  unit ->
  report
(** Execute the arrival stream on up to [domains] domains (default
    [shards + 1]; clamped to the natural worker count — one per
    independent shard plus at most one coordinator — and at least 1).
    [queue] picks the channel build (default {!Chan.Ring});
    [capacity] overrides the per-channel bound (default: exact fit, so
    the router never blocks). With a [sink], each domain records into
    a private in-memory sink and the traces are merged after the last
    join — remapped to global transaction ids, concatenated in worker
    order — so a fixed seed yields a byte-identical merged trace
    regardless of how the OS interleaved the domains.

    Raises {!Driver.Stall} (after joining all workers) if any worker's
    drain stalled or livelocked; [Invalid_argument] from
    {!Partition.make} on a bad shard count. *)
