open Core

type policy = { name : string; fcw : bool; ssi : bool }

(* All three engines share this skeleton. Every step reads (own buffer
   first, else the newest committed version at or before the
   transaction's snapshot) and, for Update steps, buffers a fresh
   version that becomes visible at commit. Nothing ever delays; the
   only verdicts are Grant and (for SI/SSI) Abort, decided by pure
   queries at the final step's attempt:

   - first-committer-wins ([fcw]): abort if an overlapping committed
     transaction installed a version of anything in the requester's
     static update set after the requester's snapshot;
   - Fekete dangerous structure ([ssi]): abort if committing would
     complete a transaction with both an incoming and an outgoing
     rw-antidependency edge to concurrent transactions (the pivot), or
     turn a concurrent neighbour into one. Edges discovered earlier
     persist as sticky in/out flags on the (possibly already
     committed, still retained) transaction records, so no dangerous
     structure can fully commit — serializability follows from Fekete
     et al.'s theorem without tracking the full graph.

   A shadow serialization graph over the current incarnations (wr/ww
   edges recorded as accesses happen, rw edges as they are discovered)
   is kept solely to classify each pivot abort as cyclic (a genuine
   serialization hazard) or a false positive — the admission decision
   itself never consults it. *)
let create policy ?(sink = Obs.Sink.null) ~syntax () =
  let fmt = Syntax.format syntax in
  let n = Array.length fmt in
  let st = Mvstore.create () in
  let update_vars = Array.init n (Syntax.updates syntax) in
  let record ev = if Obs.Sink.on sink then Obs.Sink.record sink ev in
  (* ---- shadow serialization graph (classification only) ---- *)
  let shadow : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let shadow_add src dst =
    if policy.ssi && src <> dst then Hashtbl.replace shadow (src, dst) ()
  in
  let shadow_purge i =
    Hashtbl.fold
      (fun (s, d) () acc -> if s = i || d = i then (s, d) :: acc else acc)
      shadow []
    |> List.iter (Hashtbl.remove shadow)
  in
  let shadow_cyclic ~extra =
    let g = Digraph.create n in
    Hashtbl.iter (fun (s, d) () -> Digraph.add_edge g s d) shadow;
    List.iter (fun (s, d) -> Digraph.add_edge g s d) extra;
    Digraph.has_cycle g
  in
  (* ---- pure admission queries ---- *)
  let snap_of tx =
    (* a transaction that has not begun (single-step, or first step)
       would pin the current clock — equivalently, it overlaps nothing
       committed *)
    match Mvstore.live_txn st tx with
    | Some t -> Mvstore.snapshot t
    | None -> Mvstore.clock st
  in
  (* New rw-antidependency edges the final step's commit would create:
     [in_new] are concurrent transactions that read something in [tx]'s
     update set (edge u -> tx), [out_new] are concurrent committed
     transactions that installed, after [tx]'s snapshot, a version of
     something [tx] read (edge tx -> w). *)
  let new_edges tx final_var final_kind =
    let snap = snap_of tx in
    let reads =
      let sofar =
        match Mvstore.live_txn st tx with
        | Some t -> Mvstore.reads_of t
        | None -> []
      in
      if final_kind = Op.Read && not (List.mem final_var sofar) then
        final_var :: sofar
      else sofar
    in
    let conc = Mvstore.concurrent st ~snap ~excluding:tx in
    let in_new =
      List.filter
        (fun (u : Mvstore.txn) ->
          List.exists
            (fun x -> Names.Vset.mem x u.Mvstore.reads)
            update_vars.(tx))
        conc
    in
    let out_new =
      List.filter
        (fun (u : Mvstore.txn) ->
          u.Mvstore.commit_ts <> None
          && List.exists
               (fun x -> List.mem_assoc x u.Mvstore.writes)
               reads)
        conc
    in
    (in_new, out_new)
  in
  let dangerous tx final_var final_kind =
    let in_new, out_new = new_edges tx final_var final_kind in
    let in_flag, out_flag =
      match Mvstore.live_txn st tx with
      | Some t -> (t.Mvstore.in_rw, t.Mvstore.out_rw)
      | None -> (false, false)
    in
    let pivot =
      (in_flag || in_new <> []) && (out_flag || out_new <> [])
      (* tx itself completes the structure *)
      || List.exists (fun (u : Mvstore.txn) -> u.Mvstore.in_rw) in_new
      (* a neighbour that already had an in-edge gains its out-edge *)
      || List.exists (fun (u : Mvstore.txn) -> u.Mvstore.out_rw) out_new
      (* a committed neighbour that already had an out-edge gains in *)
    in
    if not pivot then None
    else
      let extra =
        List.map (fun (u : Mvstore.txn) -> (u.Mvstore.id, tx)) in_new
        @ List.map (fun (u : Mvstore.txn) -> (tx, u.Mvstore.id)) out_new
      in
      Some (shadow_cyclic ~extra)
  in
  let attempt (id : Names.step_id) =
    let tx = id.Names.tx in
    if id.Names.idx < fmt.(tx) - 1 then Scheduler.Grant
    else
      (* all admission control happens at the final step: abort
         decisions are pure queries here, effects live in [commit] *)
      let snap = snap_of tx in
      match
        if policy.fcw then
          Mvstore.ww_conflict st ~snap ~excluding:tx update_vars.(tx)
        else None
      with
      | Some var ->
        record (Obs.Event.Ww_refused { tx; var });
        Scheduler.Abort
      | None ->
        if not policy.ssi then Scheduler.Grant
        else begin
          match
            dangerous tx (Syntax.var syntax id) (Syntax.kind syntax id)
          with
          | Some cyclic ->
            record (Obs.Event.Pivot_refused { tx; cyclic });
            Scheduler.Abort
          | None -> Scheduler.Grant
        end
  in
  let commit (id : Names.step_id) =
    let tx = id.Names.tx in
    let t =
      match Mvstore.live_txn st tx with
      | Some t -> t
      | None ->
        let t = Mvstore.begin_txn st tx in
        record (Obs.Event.Snapshot_taken { tx; ts = Mvstore.snapshot t });
        t
    in
    let x = Syntax.var syntax id in
    let v, writer = Mvstore.read st t x in
    record (Obs.Event.Version_read { tx; var = x; value = v });
    (match writer with Some w -> shadow_add w tx | None -> ());
    if policy.ssi then
      (* reading under a snapshot an item a concurrent transaction
         already overwrote: rw edge tx -> w, sticky on both ends *)
      List.iter
        (fun w ->
          t.Mvstore.out_rw <- true;
          (match
             List.find_opt
               (fun (u : Mvstore.txn) -> u.Mvstore.id = w)
               (Mvstore.concurrent st ~snap:t.Mvstore.snap ~excluding:tx)
           with
          | Some u -> u.Mvstore.in_rw <- true
          | None -> ());
          shadow_add tx w)
        (Mvstore.newer_writers st x ~than:t.Mvstore.snap ~excluding:tx);
    (* any writing op installs a version; the mv engines treat semantic
       ops conservatively, as general updates *)
    if Op.writes (Syntax.kind syntax id) then begin
      (match Mvstore.newest st x with
      | Some v when v.Mvstore.writer <> tx -> shadow_add v.Mvstore.writer tx
      | _ -> ());
      let v' = Mvstore.write st t x in
      record (Obs.Event.Version_installed { tx; var = x; value = v' })
    end;
    if id.Names.idx = fmt.(tx) - 1 then begin
      if policy.ssi then begin
        (* persist the edges this commit creates so later commit
           attempts of the neighbours still see them *)
        let in_new, out_new =
          new_edges tx x (Syntax.kind syntax id)
        in
        List.iter
          (fun (u : Mvstore.txn) ->
            u.Mvstore.out_rw <- true;
            t.Mvstore.in_rw <- true;
            shadow_add u.Mvstore.id tx)
          in_new;
        List.iter
          (fun (u : Mvstore.txn) ->
            t.Mvstore.out_rw <- true;
            u.Mvstore.in_rw <- true;
            shadow_add tx u.Mvstore.id)
          out_new
      end;
      ignore (Mvstore.commit st t)
    end
  in
  let on_abort tx =
    (match Mvstore.live_txn st tx with
    | Some t -> Mvstore.abort st t
    | None -> ());
    shadow_purge tx
  in
  Scheduler.make ~name:policy.name ~attempt ~commit ~on_abort ()
