open Core

(** A locking-policy scheduler: the lock-respecting scheduler driven by
    any {!Locking.Policy.t} (2PL by default in the benches).

    Each transaction executes its locked program; a step request runs
    the pending segment of lock steps just before the action
    (just-in-time acquisition) and is delayed if any lock is held by
    another transaction. After an action, the immediately following
    unlock steps release eagerly. Deadlocks surface as driver stalls;
    the victim (the blocked transaction whose abort frees a wait-for
    cycle, or the first blocked one) releases its locks and restarts.

    Its zero-delay set is {!Locking.Locked.passes}' set — strictly inside
    the SGT scheduler's fixpoint, which is the formal content of §5.4's
    "2PL cannot be optimal as a scheduler". *)

val create :
  ?sink:Obs.Sink.t -> policy:Locking.Policy.t -> syntax:Syntax.t -> unit ->
  Scheduler.t
(** With a [sink], lock acquisitions/releases emit
    {!Obs.Event.Lock_acquired}/{!Obs.Event.Lock_released} and each
    named wait-for-cycle victim emits {!Obs.Event.Wound}. Constructor
    shape per the convention in {!Scheduler}. *)

val create_2pl : ?sink:Obs.Sink.t -> syntax:Syntax.t -> unit -> Scheduler.t

val wait_for_victim :
  holders:(Locking.Locked.lock_var -> int option) ->
  wanted:(int -> Locking.Locked.lock_var option) ->
  int list ->
  int option
(** Exposed for tests: picks a transaction on a wait-for cycle if there
    is one, else the first blocked transaction. *)
