open Core

type entry = {
  name : string;
  slug : string;
  standard : bool;
  level : string;
  make : ?sink:Obs.Sink.t -> Syntax.t -> Scheduler.t;
}

let slug_of_name name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char buf c
      | 'A' .. 'Z' -> Buffer.add_char buf (Char.lowercase_ascii c)
      | '\'' -> Buffer.add_string buf "-prime"
      | _ ->
        (* collapse runs of separators *)
        let len = Buffer.length buf in
        if len > 0 && Buffer.nth buf (len - 1) <> '-' then
          Buffer.add_char buf '-')
    name;
  let s = Buffer.contents buf in
  (* trim a trailing separator *)
  let l = String.length s in
  if l > 0 && s.[l - 1] = '-' then String.sub s 0 (l - 1) else s

let entry ?(standard = false) ?(level = "ser") name make =
  { name; slug = slug_of_name name; standard; level; make }

(* The distinguished variable of the 2PL' protocol: the syntax's first
   variable (a fixed nonsense name on a variable-free syntax, where no
   step ever locks it anyway). *)
let first_var syntax =
  match Syntax.vars syntax with v :: _ -> v | [] -> "x"

let all =
  [
    entry ~standard:true "serial" (fun ?sink:_ syntax ->
        Serial_sched.create ~fmt:(Syntax.format syntax));
    entry ~standard:true "2PL" (fun ?sink syntax ->
        Tpl_sched.create_2pl ?sink ~syntax ());
    entry ~standard:true "2PL'" (fun ?sink syntax ->
        Tpl_sched.create ?sink
          ~policy:(Locking.Two_phase_prime.policy ~distinguished:(first_var syntax))
          ~syntax ());
    entry ~standard:true "preclaim" (fun ?sink syntax ->
        Tpl_sched.create ?sink ~policy:Locking.Preclaim.policy ~syntax ());
    entry ~standard:true "SGT" (fun ?sink syntax ->
        Sgt.create ?sink ~syntax ());
    entry ~standard:true "TO" (fun ?sink syntax ->
        Timestamp.create ?sink ~syntax ());
    entry ~standard:true "sharded" (fun ?sink syntax ->
        Sharded.create ?sink ~syntax ());
    entry ~standard:true ~level:"causal" "MVCC" (fun ?sink syntax ->
        Mvcc.create ?sink ~syntax ());
    entry ~standard:true ~level:"si" "SI" (fun ?sink syntax ->
        Si.create ?sink ~syntax ());
    entry ~standard:true "SSI" (fun ?sink syntax ->
        Ssi.create ?sink ~syntax ());
    (* Commutativity-aware SGT: on the rw workloads the standard suite
       drives, decision-identical to SGT (the conformance fuzz checks
       its histories at the full ladder up to "ser"); on typed syntax
       it admits the commuting orders rw-SGT delays, verified against
       the extended Herbrand oracle in test/test_semantic.ml. *)
    entry ~standard:true "semantic" (fun ?sink syntax ->
        Semantic.create ?sink ~syntax ());
    entry "SGT-ref" (fun ?sink:_ syntax -> Sgt_ref.create ~syntax);
    (* The sharded engine with cross-shard commits routed through a
       fault-free 2PC service: decision-identical to "sharded" (the
       no-faults pin, enforced by test/test_twopc.ml), but every
       cross-shard commit round flows through the trace. Non-standard so
       the golden measurement tables keep their shape. *)
    entry "sharded-2PC" (fun ?sink syntax ->
        let svc = Twopc.service ?sink ~shards:4 () in
        Sharded.create ?sink ~commit_cross:(Twopc.commit svc) ~syntax ());
  ]

let standard = List.filter (fun e -> e.standard) all
let names = List.map (fun e -> e.slug) all

let find want =
  let w = String.lowercase_ascii want in
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = w || e.slug = w)
    all

let find_exn want =
  match find want with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scheduler %S (have: %s)" want
         (String.concat ", " names))
