open Core

let create ?(sink = Obs.Sink.null) ~syntax () =
  let fmt = Syntax.format syntax in
  let n = Syntax.n_transactions syntax in
  (* Intern variable names once: the hot path is integer-only, no string
     hashing per request. [var_of_step.(i).(j)] is the index of the
     variable transaction [i]'s step [j] accesses. *)
  let var_ids : (Names.var, int) Hashtbl.t = Hashtbl.create 16 in
  let nvars = ref 0 in
  let var_of_step =
    Array.init n (fun i ->
        Array.init fmt.(i) (fun j ->
            let v = Syntax.var syntax (Names.step i j) in
            match Hashtbl.find_opt var_ids v with
            | Some k -> k
            | None ->
              let k = !nvars in
              Hashtbl.add var_ids v k;
              incr nvars;
              k))
  in
  (* per-variable accessor lists. Deduplicated: a transaction touching
     the same variable k times contributes one entry, not k — duplicate
     entries would only ever duplicate edges already in the graph. *)
  let history = Array.make !nvars [] in
  (* [active.(i)]: transaction i has at least one history entry — the
     O(1) stand-in for scanning every accessor list during [prune] *)
  let active = Array.make n false in
  let graph = Digraph.Acyclic.create n in
  let completed = Array.make n false in
  (* Delay answers are monotone: between removals (abort or prune), the
     graph and the accessor lists only grow, and growing either can
     never turn a cycle-closing request into a grantable one. So a
     Delay verdict for (tx, idx) stays valid until the next removal,
     and the driver's retry-after-every-grant loop can be answered from
     a version stamp instead of repeating the search. *)
  let version = ref 0 in
  let blocked_at = Array.make n (-1) in
  let blocked_idx = Array.make n (-1) in
  (* The hot path: granting [id] adds edges u -> id.tx for every prior
     accessor u of the variable. All candidate edges end at the same
     vertex, so the batch closes a cycle iff some u is reachable from
     id.tx — one bounded search on the incrementally maintained order,
     no copy, no full cycle detection, no allocation. *)
  let attempt (id : Names.step_id) =
    let tx = id.Names.tx in
    let idx = id.Names.idx in
    if blocked_idx.(tx) = idx && blocked_at.(tx) = !version then
      Scheduler.Delay
    else if
      Digraph.Acyclic.closes_cycle_any ~excluding:tx graph
        ~sources:history.(var_of_step.(tx).(idx))
        ~target:tx
    then begin
      blocked_idx.(tx) <- idx;
      blocked_at.(tx) <- !version;
      (* only fresh graph searches emit: cached re-verdicts are answered
         from the version stamp above without touching the graph *)
      if Obs.Sink.on sink then
        Obs.Sink.record sink (Obs.Event.Cycle_refused { tx; idx });
      Scheduler.Delay
    end
    else Scheduler.Grant
  in
  let forget i =
    incr version;
    for v = 0 to Array.length history - 1 do
      if List.memq i history.(v) then
        history.(v) <- List.filter (fun u -> u <> i) history.(v)
    done;
    active.(i) <- false;
    Digraph.Acyclic.remove_vertex graph i
  in
  (* A completed transaction never receives another incoming edge, so
     once it is a source of the conflict graph it can never lie on a
     cycle: prune it. Without pruning a long-running workload saturates
     the graph and every new request eventually closes a cycle. *)
  let rec prune () =
    let victim = ref None in
    for i = 0 to n - 1 do
      if
        !victim = None && completed.(i) && active.(i)
        && Digraph.Acyclic.in_degree graph i = 0
      then victim := Some i
    done;
    match !victim with
    | Some i ->
      forget i;
      prune ()
    | None -> ()
  in
  let rec add_edges tx = function
    | [] -> ()
    | u :: us ->
      if u <> tx then begin
        match Digraph.Acyclic.add_edge_acyclic graph u tx with
        | Ok () ->
          if Obs.Sink.on sink then
            Obs.Sink.record sink (Obs.Event.Edge_added { src = u; dst = tx })
        | Error _ ->
          (* [attempt] vetted the whole batch; an edge cannot fail here *)
          assert false
      end;
      add_edges tx us
  in
  let commit (id : Names.step_id) =
    let tx = id.Names.tx in
    let v = var_of_step.(tx).(id.Names.idx) in
    add_edges tx history.(v);
    if not (List.memq tx history.(v)) then history.(v) <- tx :: history.(v);
    active.(tx) <- true;
    if id.Names.idx = fmt.(tx) - 1 then begin
      completed.(tx) <- true;
      prune ()
    end
  in
  let on_abort i =
    completed.(i) <- false;
    forget i
  in
  (* No eager [detect]: under SGT a delayed request can never be granted
     until someone aborts (edges and accessor lists only grow), but it
     also blocks nobody — every other transaction keeps executing — so an
     abort is never *required* until the whole system stalls, and the
     stall path already resolves that lazily, wound-wait style. Eagerly
     aborting each freshly-doomed requester replays it straight back into
     the same conflicts and thrashes restarts a thousandfold on contended
     workloads, where the lazy policy pays a handful. *)
  Scheduler.make ~name:"SGT" ~attempt ~commit ~on_abort ()
