(* Intrusive FIFO over a fixed universe [0 .. n-1].

   The driver's blocked queue needs O(1) membership, O(1) enqueue and
   O(1) removal of an arbitrary element while preserving FIFO order —
   the [int list] it replaces paid O(n) [List.mem] + O(n) append per
   request. Doubly linked through two index arrays plus a membership
   bitset; each element can be present at most once. *)

type t = {
  next : int array;
  prev : int array;
  mem : bool array;
  mutable head : int; (* -1 when empty *)
  mutable tail : int;
  mutable size : int;
}

let create n =
  if n < 0 then invalid_arg "Intq.create: negative size";
  {
    next = Array.make n (-1);
    prev = Array.make n (-1);
    mem = Array.make n false;
    head = -1;
    tail = -1;
    size = 0;
  }

let check q i =
  if i < 0 || i >= Array.length q.mem then
    invalid_arg "Intq: element out of range"

let mem q i =
  check q i;
  q.mem.(i)

let is_empty q = q.size = 0
let length q = q.size

let push q i =
  check q i;
  if not q.mem.(i) then begin
    q.mem.(i) <- true;
    q.prev.(i) <- q.tail;
    q.next.(i) <- -1;
    if q.tail >= 0 then q.next.(q.tail) <- i else q.head <- i;
    q.tail <- i;
    q.size <- q.size + 1
  end

let remove q i =
  check q i;
  if q.mem.(i) then begin
    q.mem.(i) <- false;
    let p = q.prev.(i) and n = q.next.(i) in
    if p >= 0 then q.next.(p) <- n else q.head <- n;
    if n >= 0 then q.prev.(n) <- p else q.tail <- p;
    q.prev.(i) <- -1;
    q.next.(i) <- -1;
    q.size <- q.size - 1
  end

let head q = q.head

let next q i =
  check q i;
  q.next.(i)

let to_list q =
  let rec walk i acc = if i < 0 then List.rev acc else walk q.next.(i) (i :: acc) in
  walk q.head []

let peek q = if q.head >= 0 then Some q.head else None
