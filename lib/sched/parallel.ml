open Core

(* True multicore execution of the sharded engine.

   The variable partition of {!Partition} already decides everything:
   a conflict edge lives in exactly one shard, so transactions that
   share no shard can be scheduled by independent machines that never
   exchange a word. The planner below turns that observation into a
   domain layout:

   - Shards touched by at least one cross-shard transaction are
     "coordinated": their verdicts flow through the summary graph, so
     all of them — and every transaction homed in them — run on one
     coordinator domain whose {!Sharded} instance admits cross-shard
     batches against the summary graph batch-at-a-time (the channel's
     [pop_batch] is the amortization).
   - Every other non-empty shard is free of cross traffic; its
     transactions run on an independent domain (grouped round-robin
     when fewer domains than shards are requested).

   Each worker runs an ordinary single-threaded {!Driver} over its own
   {!Sharded} instance built on the {e projection} of the syntax to the
   worker's transactions, fed its projection of the global arrival
   stream through a {!Chan}. Because the variable-to-shard hash depends
   only on the variable name, the projected partition agrees with the
   global one, and each worker's shard-member sets equal the global
   run's — so the engine is decision-identical, worker by worker, to
   the simulated [Sharded] run over the full stream: same committed
   schedule projection, same per-transaction abort counts. (Delay and
   waiting counters legitimately differ: they measure queue pressure,
   which parallel execution exists to change.) The differential test in
   [test/test_parallel.ml] pins this. *)

type worker_report = {
  txns : int array; (* global transaction ids, ascending; local id = index *)
  worker_shards : int list; (* shards this worker owns, ascending *)
  coordinator : bool;
  stats : Driver.stats; (* over worker-local transaction ids *)
}

type report = {
  shards : int;
  domains : int; (* workers actually spawned *)
  queue : Chan.kind;
  workers : worker_report array;
  output : Schedule.t;
  delays : int;
  restarts : int;
  deadlocks : int;
  waiting : int;
  grants : int;
  aborts : int array;
  seconds : float;
}

(* ---------- planning ---------- *)

type plan = {
  n_workers : int;
  owner : int array; (* transaction -> worker *)
  shard_sets : int list array; (* worker -> owned shards, ascending *)
  has_coordinator : bool;
}

let plan_of (p : Partition.t) ~domains =
  let k = p.Partition.shards in
  let coordinated = Array.make k false in
  Array.iteri
    (fun tx cross ->
      if cross then
        for s = 0 to k - 1 do
          if p.Partition.mask.(tx) land (1 lsl s) <> 0 then
            coordinated.(s) <- true
        done)
    p.Partition.cross;
  let nonempty s = Array.length p.Partition.members.(s) > 0 in
  let coord_shards = ref [] and free_shards = ref [] in
  for s = k - 1 downto 0 do
    if nonempty s then
      if coordinated.(s) then coord_shards := s :: !coord_shards
      else free_shards := s :: !free_shards
  done;
  let has_coordinator = !coord_shards <> [] in
  let natural =
    (if has_coordinator then 1 else 0) + List.length !free_shards
  in
  let n_workers = max 1 (min domains (max 1 natural)) in
  let shard_sets = Array.make n_workers [] in
  let base = if has_coordinator then 1 else 0 in
  if has_coordinator then shard_sets.(0) <- !coord_shards;
  List.iteri
    (fun i s ->
      (* round-robin the independent shards over the remaining workers;
         with a single worker everything folds onto it *)
      let w = if n_workers <= base then 0 else base + (i mod (n_workers - base)) in
      shard_sets.(w) <- shard_sets.(w) @ [ s ])
    !free_shards;
  let shard_owner = Array.make k 0 in
  Array.iteri
    (fun w ss -> List.iter (fun s -> shard_owner.(s) <- w) ss)
    shard_sets;
  let owner =
    Array.init p.Partition.n (fun tx ->
        if p.Partition.mask.(tx) = 0 then 0 (* empty: never arrives *)
        else begin
          (* lowest touched shard; all its shards share one worker *)
          let s = ref 0 in
          while p.Partition.mask.(tx) land (1 lsl !s) = 0 do
            incr s
          done;
          shard_owner.(!s)
        end)
  in
  { n_workers; owner; shard_sets; has_coordinator }

(* Projection of the syntax to a transaction subset, kinds preserved. *)
let project syntax txns =
  Syntax.make_typed
    (Array.map
       (fun tx ->
         Array.init (Syntax.length syntax tx) (fun idx ->
             let id = Names.step tx idx in
             (Syntax.kind syntax id, Syntax.var syntax id)))
       txns)

(* Rewrite worker-local transaction ids back to global ones. *)
let remap_event g : Obs.Event.t -> Obs.Event.t = function
  | Submitted { tx; idx } -> Submitted { tx = g.(tx); idx }
  | Delayed { tx; idx } -> Delayed { tx = g.(tx); idx }
  | Granted { tx; idx } -> Granted { tx = g.(tx); idx }
  | Executed { tx; idx } -> Executed { tx = g.(tx); idx }
  | Committed { tx } -> Committed { tx = g.(tx) }
  | Aborted { tx; reason } -> Aborted { tx = g.(tx); reason }
  | Restarted { tx } -> Restarted { tx = g.(tx) }
  | Edge_added { src; dst } -> Edge_added { src = g.(src); dst = g.(dst) }
  | Cycle_refused { tx; idx } -> Cycle_refused { tx = g.(tx); idx }
  | Commute_pass { tx; idx; skipped } ->
    Commute_pass { tx = g.(tx); idx; skipped }
  | Lock_acquired { tx; lock } -> Lock_acquired { tx = g.(tx); lock }
  | Lock_released { tx; lock } -> Lock_released { tx = g.(tx); lock }
  | Wound { victim } -> Wound { victim = g.(victim) }
  | Ts_refused { tx; idx } -> Ts_refused { tx = g.(tx); idx }
  | Shard_routed { tx; idx; shard } -> Shard_routed { tx = g.(tx); idx; shard }
  | Snapshot_taken { tx; ts } -> Snapshot_taken { tx = g.(tx); ts }
  | Version_read { tx; var; value } -> Version_read { tx = g.(tx); var; value }
  | Version_installed { tx; var; value } ->
    Version_installed { tx = g.(tx); var; value }
  | Ww_refused { tx; var } -> Ww_refused { tx = g.(tx); var }
  | Pivot_refused { tx; cyclic } -> Pivot_refused { tx = g.(tx); cyclic }
  | Twopc_sent { tx; src; dst; msg } -> Twopc_sent { tx = g.(tx); src; dst; msg }
  | Twopc_delivered { tx; src; dst; msg } ->
    Twopc_delivered { tx = g.(tx); src; dst; msg }
  | Twopc_decided { tx; node; commit } ->
    Twopc_decided { tx = g.(tx); node; commit }
  | Twopc_timeout { tx; node; timer } -> Twopc_timeout { tx = g.(tx); node; timer }
  | Node_crashed { tx; node } -> Node_crashed { tx = g.(tx); node }
  | Node_recovered { tx; node } -> Node_recovered { tx = g.(tx); node }

let run ?(queue = Chan.Ring) ?capacity ?(sink = Obs.Sink.null) ?domains
    ~shards ~syntax ~arrivals () =
  let p = Partition.make ~syntax ~shards in
  let domains =
    match domains with Some d -> max 1 d | None -> max 1 (shards + 1)
  in
  let pl = plan_of p ~domains in
  let w = pl.n_workers in
  (* worker transaction lists, ascending (Array.init order) *)
  let wtxns =
    Array.init w (fun wi ->
        let acc = ref [] in
        for tx = p.Partition.n - 1 downto 0 do
          if pl.owner.(tx) = wi then acc := tx :: !acc
        done;
        Array.of_list !acc)
  in
  let g2l = Array.make p.Partition.n (-1) in
  Array.iteri
    (fun _wi txns -> Array.iteri (fun l tx -> g2l.(tx) <- l) txns)
    wtxns;
  (* exact-fit default capacity: the producer can never block, so a
     worker raising Stall cannot deadlock the router *)
  let pushes = Array.make w 0 in
  Array.iter (fun tx -> pushes.(pl.owner.(tx)) <- pushes.(pl.owner.(tx)) + 1)
    arrivals;
  let chan_for wi =
    let cap = match capacity with Some c -> c | None -> max 1 pushes.(wi) in
    Chan.create ~capacity:cap queue
  in
  let chans = Array.init w chan_for in
  let trace = Obs.Sink.on sink in
  let t0 = Unix.gettimeofday () in
  let spawn wi =
    let txns = wtxns.(wi) in
    let chan = chans.(wi) in
    Domain.spawn (fun () ->
        if Array.length txns = 0 then begin
          (* unreachable by construction (every worker owns a non-empty
             shard) — but drain to end-of-stream and report nothing
             rather than poison the run *)
          let buf = Array.make 1 0 in
          while Chan.pop_batch chan buf > 0 do
            ()
          done;
          Ok
            ( Driver.
                {
                  output = [||];
                  delays = 0;
                  restarts = 0;
                  deadlocks = 0;
                  waiting = 0;
                  grants = 0;
                  aborts = [||];
                },
              [] )
        end
        else begin
          let sub = project syntax txns in
          let collector = Obs.Sink.Memory.create () in
          let wsink =
            if trace then Obs.Sink.Memory.sink collector else Obs.Sink.null
          in
          let sched = Sharded.create ~sink:wsink ~shards ~syntax:sub () in
          let drv = Driver.create ~sink:wsink sched ~fmt:(Syntax.format sub) in
          let buf = Array.make 1024 0 in
          match
            let rec loop () =
              let got = Chan.pop_batch chan buf in
              if got > 0 then begin
                for j = 0 to got - 1 do
                  Driver.submit drv g2l.(buf.(j))
                done;
                loop ()
              end
            in
            loop ();
            Driver.drain drv
          with
          | stats -> Ok (stats, Obs.Sink.Memory.events collector)
          | exception e -> Error e
        end)
  in
  let route () =
    (* route the global stream; per-worker order = its projection *)
    Array.iter (fun tx -> Chan.push chans.(pl.owner.(tx)) tx) arrivals;
    Array.iter Chan.close chans
  in
  let results = Array.make w (Error Stdlib.Exit) in
  (match capacity with
  | None ->
    (* Exact-fit channels: no push can ever block, so route the whole
       stream and close before a single worker exists. Workers then
       always find either data or end-of-stream — never an
       empty-but-open channel — so they never enter the poll/backoff
       path. On an oversubscribed box this is the difference between
       scaling and collapse: a polling worker competes with the router
       for the same core.

       Because workers never exchange a word, there is also no reason
       to keep more of them in flight than the machine has cores:
       spawn them in waves of [recommended_domain_count]. On a real
       multicore box every worker still runs concurrently; on an
       oversubscribed one this avoids paying stop-the-world
       synchronization across mostly-preempted domains. *)
    route ();
    let wave = max 1 (min w (Domain.recommended_domain_count ())) in
    let i = ref 0 in
    while !i < w do
      let hi = min w (!i + wave) in
      let doms = Array.init (hi - !i) (fun j -> spawn (!i + j)) in
      Array.iteri (fun j d -> results.(!i + j) <- Domain.join d) doms;
      i := hi
    done
  | Some _ ->
    (* Caller-bounded channels: pushes may block on full queues, so
       every worker must be live before routing starts. *)
    let doms = Array.init w spawn in
    route ();
    Array.iteri (fun i d -> results.(i) <- Domain.join d) doms);
  let seconds = Unix.gettimeofday () -. t0 in
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  let results =
    Array.map (function Ok r -> r | Error _ -> assert false) results
  in
  (* deterministic merge, worker order: stats totals, remapped trace *)
  let workers =
    Array.init w (fun wi ->
        let stats, _ = results.(wi) in
        {
          txns = wtxns.(wi);
          worker_shards = pl.shard_sets.(wi);
          coordinator = pl.has_coordinator && wi = 0;
          stats;
        })
  in
  let aborts = Array.make p.Partition.n 0 in
  Array.iteri
    (fun wi (stats, _) ->
      Array.iteri
        (fun l a -> aborts.(wtxns.(wi).(l)) <- a)
        stats.Driver.aborts)
    results;
  let output =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun wi (stats, _) ->
              Array.map
                (fun (id : Names.step_id) ->
                  Names.step wtxns.(wi).(id.Names.tx) id.Names.idx)
                stats.Driver.output)
            results))
  in
  if trace then
    Array.iteri
      (fun wi (_, events) ->
        let g = wtxns.(wi) in
        List.iter
          (fun (ts, ev) -> Obs.Sink.record_at sink ts (remap_event g ev))
          events)
      results;
  let sum f = Array.fold_left (fun acc (s, _) -> acc + f s) 0 results in
  {
    shards;
    domains = w;
    queue;
    workers;
    output;
    delays = sum (fun s -> s.Driver.delays);
    restarts = sum (fun s -> s.Driver.restarts);
    deadlocks = sum (fun s -> s.Driver.deadlocks);
    waiting = sum (fun s -> s.Driver.waiting);
    grants = sum (fun s -> s.Driver.grants);
    aborts;
    seconds;
  }
