(** Intrusive FIFO queue over a fixed universe [0 .. n-1].

    O(1) membership test, O(1) enqueue at the tail, O(1) removal of an
    arbitrary element, FIFO iteration. An element is present at most
    once; [push] on a present element and [remove] on an absent one are
    no-ops. Backs the driver's blocked-transaction queue. *)

type t

val create : int -> t
(** [create n] is an empty queue over elements [0 .. n-1]. *)

val mem : t -> int -> bool
val is_empty : t -> bool
val length : t -> int

val push : t -> int -> unit
(** Enqueue at the tail; no-op if already present. *)

val remove : t -> int -> unit
(** Remove wherever it sits; no-op if absent. *)

val head : t -> int
(** The head element, or [-1] when empty. Allocation-free cursor entry
    point; pair with {!next} to walk the queue. *)

val next : t -> int -> int
(** The element after [i] in FIFO order, or [-1] at the tail. Only
    meaningful while [i] is present; reads the link in place. *)

val to_list : t -> int list
(** Elements in FIFO order (head first). Fresh list, safe to iterate
    while the queue is mutated. *)

val peek : t -> int option
(** The head, if any. *)
