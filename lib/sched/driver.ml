open Core

type stats = {
  output : Schedule.t;
  delays : int;
  restarts : int;
  deadlocks : int;
  waiting : int;
  grants : int;
  aborts : int array;
}

let zero_delay s = s.delays = 0 && s.restarts = 0

exception Stall of string

type state = {
  sched : Scheduler.t;
  sink : Obs.Sink.t;
  fmt : int array;
  next_step : int array;       (* next step index, current incarnation *)
  outstanding : int array;     (* submitted but ungranted requests *)
  (* submission clocks, a FIFO ring per transaction: a transaction never
     has more than [fmt.(i)] requests in flight, so capacity is fixed
     and pushes/pops allocate nothing *)
  submit_times : int array array;
  submit_head : int array;
  submit_len : int array;
  incarnation : int array;
  arrival_rank : int array;    (* fixed seniority: first-submission order *)
  mutable arrived : int;
  mutable submissions : int;   (* total submit calls, for the drain budget *)
  blocked : Intq.t;            (* FIFO of delayed transactions *)
  mutable clock : int;         (* driver events *)
  mutable log : (Names.step_id * int) list;  (* grant, incarnation (rev) *)
  mutable delays : int;
  mutable restarts : int;
  mutable deadlocks : int;
  mutable waiting : int;
  mutable grants : int;
}

let init sched sink fmt =
  let n = Array.length fmt in
  {
    sched;
    sink;
    fmt;
    next_step = Array.make n 0;
    outstanding = Array.make n 0;
    submit_times = Array.init n (fun i -> Array.make (max 1 fmt.(i)) 0);
    submit_head = Array.make n 0;
    submit_len = Array.make n 0;
    incarnation = Array.make n 0;
    arrival_rank = Array.make n (-1);
    arrived = 0;
    submissions = 0;
    blocked = Intq.create n;
    clock = 0;
    log = [];
    delays = 0;
    restarts = 0;
    deadlocks = 0;
    waiting = 0;
    grants = 0;
  }

let submit_push st i t =
  let buf = st.submit_times.(i) in
  let cap = Array.length buf in
  assert (st.submit_len.(i) < cap);
  buf.((st.submit_head.(i) + st.submit_len.(i)) mod cap) <- t;
  st.submit_len.(i) <- st.submit_len.(i) + 1

let submit_pop st i =
  assert (st.submit_len.(i) > 0);
  let buf = st.submit_times.(i) in
  let t = buf.(st.submit_head.(i)) in
  st.submit_head.(i) <- (st.submit_head.(i) + 1) mod Array.length buf;
  st.submit_len.(i) <- st.submit_len.(i) - 1;
  t

let in_queue st i = Intq.mem st.blocked i
let enqueue st i = Intq.push st.blocked i
let dequeue st i = Intq.remove st.blocked i

let completed st i =
  st.next_step.(i) >= st.fmt.(i) && st.outstanding.(i) = 0

let do_abort st ~reason i =
  st.restarts <- st.restarts + 1;
  if Obs.Sink.on st.sink then begin
    Obs.Sink.record st.sink (Obs.Event.Aborted { tx = i; reason });
    Obs.Sink.record st.sink (Obs.Event.Restarted { tx = i })
  end;
  st.sched.Scheduler.on_abort i;
  (* every already-granted step must be requested again *)
  let granted = st.next_step.(i) in
  st.next_step.(i) <- 0;
  st.outstanding.(i) <- st.outstanding.(i) + granted;
  for k = 1 to granted do
    submit_push st i st.clock;
    if Obs.Sink.on st.sink then
      Obs.Sink.record st.sink (Obs.Event.Submitted { tx = i; idx = k - 1 })
  done;
  st.incarnation.(i) <- st.incarnation.(i) + 1

let do_grant st (id : Names.step_id) =
  (* [Granted] is stamped at the decision instant, [Executed] one tick
     later: the driver's clock tick is the grant being carried out, so
     the trace shows one event of execution time per grant *)
  if Obs.Sink.on st.sink then
    Obs.Sink.record st.sink
      (Obs.Event.Granted { tx = id.Names.tx; idx = id.Names.idx });
  st.sched.Scheduler.commit id;
  st.clock <- st.clock + 1;
  Obs.Sink.set_now st.sink (float_of_int st.clock);
  st.grants <- st.grants + 1;
  let submitted = submit_pop st id.Names.tx in
  st.waiting <- st.waiting + (st.clock - 1 - submitted);
  st.next_step.(id.Names.tx) <- id.Names.idx + 1;
  st.outstanding.(id.Names.tx) <- st.outstanding.(id.Names.tx) - 1;
  st.log <- (id, st.incarnation.(id.Names.tx)) :: st.log;
  if Obs.Sink.on st.sink then begin
    Obs.Sink.record st.sink
      (Obs.Event.Executed { tx = id.Names.tx; idx = id.Names.idx });
    if completed st id.Names.tx then
      Obs.Sink.record st.sink (Obs.Event.Committed { tx = id.Names.tx })
  end

(* Grant as many outstanding requests of [i] as possible. Returns true
   if at least one step was granted. *)
let try_drain st i =
  let made_progress = ref false in
  let continue = ref true in
  while !continue && st.outstanding.(i) > 0 do
    let id = Names.step i st.next_step.(i) in
    match st.sched.Scheduler.attempt id with
    | Scheduler.Grant ->
      do_grant st id;
      made_progress := true
    | Scheduler.Delay ->
      st.delays <- st.delays + 1;
      if Obs.Sink.on st.sink then
        Obs.Sink.record st.sink
          (Obs.Event.Delayed { tx = i; idx = st.next_step.(i) });
      enqueue st i;
      continue := false
    | Scheduler.Abort ->
      do_abort st ~reason:Obs.Event.Scheduler_abort i;
      (* retried on a later scan, after the transactions it yielded to *)
      dequeue st i;
      enqueue st i;
      made_progress := true;
      continue := false
  done;
  if st.outstanding.(i) = 0 then dequeue st i;
  !made_progress

(* Repeatedly scan the FIFO queue, restarting from the head after every
   grant, until a full pass yields nothing. The cursor walk is safe
   without a snapshot: a no-progress [try_drain] (Delay of an
   already-queued transaction) leaves the queue untouched, and on any
   mutation we restart from the head anyway. *)
let process_queue st =
  let continue = ref true in
  while !continue do
    let rec scan i =
      if i < 0 then false
      else begin
        let nxt = Intq.next st.blocked i in
        if try_drain st i then true else scan nxt
      end
    in
    continue := scan (Intq.head st.blocked)
  done

(* Victim priority is wound-wait style: seniority is fixed at a
   transaction's first arrival and survives restarts, and the stuck list
   is presented youngest-first.  A scheduler that honours the order (the
   default [victim] takes the head; [Tpl_sched] picks the youngest member
   of the wait-for cycle) never aborts the oldest live transaction, so
   the oldest always completes and the drain loop terminates instead of
   rotating abort victims round-robin forever. *)
let resolve_stall st =
  let stuck =
    List.filter (fun i -> st.outstanding.(i) > 0) (Intq.to_list st.blocked)
    |> List.sort (fun a b -> compare st.arrival_rank.(b) st.arrival_rank.(a))
  in
  match st.sched.Scheduler.victim stuck with
  | Some v ->
    st.deadlocks <- st.deadlocks + 1;
    do_abort st ~reason:Obs.Event.Deadlock v;
    (* the victim yields: everyone it was blocking goes first *)
    dequeue st v;
    enqueue st v
  | None ->
    raise
      (Stall
         (Printf.sprintf "driver: scheduler %s cannot resolve a stall"
            st.sched.Scheduler.name))

(* ---------- incremental interface ---------- *)

type t = state

let create ?(sink = Obs.Sink.null) sched ~fmt = init sched sink fmt

(* One arrival: clock tick, seniority stamp, request bookkeeping, then
   grant whatever the new request unblocks. Identical to one iteration
   of the old monolithic run loop — [run] below is a composition, not a
   reimplementation, so every engine built on [submit]/[drain] inherits
   the exact single-threaded semantics. *)
let submit st i =
  st.submissions <- st.submissions + 1;
  st.clock <- st.clock + 1;
  Obs.Sink.set_now st.sink (float_of_int st.clock);
  if st.arrival_rank.(i) < 0 then begin
    st.arrival_rank.(i) <- st.arrived;
    st.arrived <- st.arrived + 1
  end;
  st.outstanding.(i) <- st.outstanding.(i) + 1;
  submit_push st i st.clock;
  if Obs.Sink.on st.sink then
    Obs.Sink.record st.sink
      (Obs.Event.Submitted
         { tx = i; idx = st.next_step.(i) + st.outstanding.(i) - 1 });
  if in_queue st i then ()
  else if try_drain st i then process_queue st

let submit_many st arrivals = Array.iter (submit st) arrivals

let drain st =
  (* drain the tail; bound the work to defend against livelock *)
  let budget = ref (100 * (st.submissions + 1) * (Array.length st.fmt + 1)) in
  let n = Array.length st.fmt in
  let all_done () =
    let rec go i = i >= n || (completed st i && go (i + 1)) in
    go 0
  in
  while not (all_done ()) do
    decr budget;
    if !budget < 0 then
      raise
        (Stall
           (Printf.sprintf "driver: scheduler %s livelocked (budget exhausted)"
              st.sched.Scheduler.name));
    let before = st.grants in
    process_queue st;
    if st.grants = before && not (all_done ()) then resolve_stall st
  done;
  let output =
    List.rev st.log
    |> List.filter_map (fun ((id : Names.step_id), inc) ->
           if inc = st.incarnation.(id.Names.tx) then Some id else None)
    |> Array.of_list
  in
  {
    output;
    delays = st.delays;
    restarts = st.restarts;
    deadlocks = st.deadlocks;
    waiting = st.waiting;
    grants = st.grants;
    aborts = Array.copy st.incarnation;
  }

let run ?sink sched ~fmt ~arrivals =
  let st = create ?sink sched ~fmt in
  submit_many st arrivals;
  drain st

let fixpoint_of mk fmt =
  List.filter
    (fun h ->
      let s = run (mk ()) ~fmt ~arrivals:(Schedule.to_interleaving h) in
      zero_delay s && Schedule.equal s.output h)
    (Schedule.all fmt)

let zero_delay_fraction mk ~fmt ~samples ~seed =
  let stt = Random.State.make [| seed |] in
  let hits = ref 0 in
  for _ = 1 to samples do
    let arrivals = Combin.Interleave.random stt fmt in
    let s = run (mk ()) ~fmt ~arrivals in
    if zero_delay s then incr hits
  done;
  float_of_int !hits /. float_of_int samples
