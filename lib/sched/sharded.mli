open Core

(** The sharded serialization-graph-testing engine.

    Variables are partitioned across K shards ({!Partition}); each shard
    runs the incremental SGT admission test of {!Sgt} on its own private
    conflict graph over shard-local transaction ids. Because every
    conflict edge joins two accessors of one variable, every edge lives
    in exactly one shard, and a request from a {e single-shard}
    transaction is decided entirely inside its home shard — no shared
    state is touched, which is where the engine scales with the
    partition instead of the global history.

    Only {e cross-shard} transactions escalate to the coordinator: a
    summary graph over the cross-shard transactions on the same
    {!Digraph.Acyclic} structure, where an edge [a -> b] records an
    intra-shard path from [a] to [b] in some shard. The global conflict
    graph is acyclic iff every shard graph is acyclic and the summary
    graph is acyclic (a global cycle decomposes into intra-shard path
    segments whose boundary vertices are cross-shard transactions).
    Admission batches the candidate summary edges of a request into
    per-target {!Digraph.Acyclic.closes_cycle_any} queries; summary
    edges are kept until an endpoint aborts (a conservative
    superset — stale paths can only over-delay, never admit a cycle).

    Single-shard completed source transactions are pruned per shard
    exactly as in {!Sgt}; cross-shard transactions are never pruned (a
    shard-local in-degree of zero says nothing about their edges in
    other shards). With [shards = 1] — or on any workload where every
    transaction is single-shard — there are no cross-shard transactions,
    the coordinator is never consulted, and the engine's decisions,
    statistics and fixpoint set coincide exactly with {!Sgt}'s. *)

val create :
  ?sink:Obs.Sink.t ->
  ?shards:int ->
  ?commit_cross:(tx:int -> shards:int list -> bool) ->
  syntax:Syntax.t ->
  unit ->
  Scheduler.t
(** [shards] defaults to 4. With a [sink], each fresh (non-cached)
    request emits {!Obs.Event.Shard_routed} with the owning shard,
    admitted intra-shard conflict edges emit {!Obs.Event.Edge_added} and
    fresh refusals emit {!Obs.Event.Cycle_refused}, all with global
    transaction ids. Constructor shape per the convention in
    {!Scheduler}. Raises [Invalid_argument] unless [1 <= shards <= 62].

    [commit_cross] is the distributed atomic-commit hook: when the
    {e final} step of a {e cross-shard} transaction passes admission,
    the hook runs one commit round over the transaction's touched
    shards (typically {!Twopc.commit} of a {!Twopc.service}); [false]
    turns the grant into [Abort], handing the transaction back to the
    driver for a restart — the scheduler-abort path, identical to a
    certification refusal. The hook fires only on that terminal success
    path (never while polling a cached delay), so a fault-free hook
    that always answers [true] — or no hook at all — yields
    bit-identical decisions, statistics and commit sets.
    Single-shard transactions never consult it: their conflicts are
    provably local, so they commit without coordination — the
    coordination-avoidance boundary made executable. *)
