(** Serializable snapshot isolation (Cahill/Fekete, as in
    PostgreSQL ≥ 9.1).

    {!Si} plus detection of the Fekete {e dangerous structure}: a
    transaction with both an incoming and an outgoing rw-antidependency
    edge to concurrent transactions (the pivot). Edges are discovered
    at snapshot reads (a concurrent committed transaction overwrote
    what was read) and at commit (a concurrent transaction read what is
    being overwritten), persist as sticky in/out conflict flags on the
    retained transaction records, and any commit that would complete a
    dangerous structure is refused — so no such structure ever fully
    commits and every committed history is serializable, which
    [test/test_mv.ml] verifies against the Herbrand oracle and
    [Analysis.Checker].

    The flag test is conservative: some aborted pivots would not have
    closed a serialization cycle. Each [Pivot_refused] event therefore
    carries [cyclic], computed against a shadow serialization graph
    (maintained with [Digraph]) that plays no part in the admission
    decision — [cyclic = false] counts as a false-positive abort in
    [Sim.Sched_bench]'s multi-version section. *)

val create : ?sink:Obs.Sink.t -> syntax:Core.Syntax.t -> unit -> Scheduler.t
