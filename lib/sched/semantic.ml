open Core

let create ?(sink = Obs.Sink.null) ~syntax () =
  let fmt = Syntax.format syntax in
  let n = Syntax.n_transactions syntax in
  (* Interned variables and per-step ops, as in {!Sgt}: the hot path
     never hashes a string. *)
  let var_ids : (Names.var, int) Hashtbl.t = Hashtbl.create 16 in
  let nvars = ref 0 in
  let var_of_step =
    Array.init n (fun i ->
        Array.init fmt.(i) (fun j ->
            let v = Syntax.var syntax (Names.step i j) in
            match Hashtbl.find_opt var_ids v with
            | Some k -> k
            | None ->
              let k = !nvars in
              Hashtbl.add var_ids v k;
              incr nvars;
              k))
  in
  let op_of_step =
    Array.init n (fun i ->
        Array.init fmt.(i) (fun j -> Syntax.kind syntax (Names.step i j)))
  in
  (* Per-variable accessor lists carry the op alongside the transaction:
     an edge is only due when the ops conflict, so a transaction may
     legitimately appear once per distinct op it used on the variable.
     Deduplicated per (transaction, op) — a second identical access
     could only duplicate edges already in the graph. *)
  let history : (int * Op.t) list array = Array.make !nvars [] in
  let active = Array.make n false in
  let graph = Digraph.Acyclic.create n in
  let completed = Array.make n false in
  (* Same monotonicity argument as {!Sgt}: between removals the graph
     and the accessor lists only grow, and a growing conflict
     environment can never turn a cycle-closing request grantable —
     commutativity only ever removes candidate edges, it never adds
     any. So Delay verdicts stay cacheable under a version stamp. *)
  let version = ref 0 in
  let blocked_at = Array.make n (-1) in
  let blocked_idx = Array.make n (-1) in
  (* The one departure from SGT: candidate edge sources are the prior
     accessors whose op does NOT commute with the step's. On a pure rw
     syntax every pair conflicts and this filter is the identity —
     pinned decision-for-decision against SGT in the tests. *)
  let conflicting_sources op hist =
    List.filter_map
      (fun (u, o) -> if Commute.conflicts o op then Some u else None)
      hist
  in
  let attempt (id : Names.step_id) =
    let tx = id.Names.tx in
    let idx = id.Names.idx in
    if blocked_idx.(tx) = idx && blocked_at.(tx) = !version then
      Scheduler.Delay
    else begin
      let op = op_of_step.(tx).(idx) in
      let sources =
        conflicting_sources op history.(var_of_step.(tx).(idx))
      in
      if
        Digraph.Acyclic.closes_cycle_any ~excluding:tx graph ~sources
          ~target:tx
      then begin
        blocked_idx.(tx) <- idx;
        blocked_at.(tx) <- !version;
        if Obs.Sink.on sink then
          Obs.Sink.record sink (Obs.Event.Cycle_refused { tx; idx });
        Scheduler.Delay
      end
      else Scheduler.Grant
    end
  in
  let forget i =
    incr version;
    for v = 0 to Array.length history - 1 do
      if List.exists (fun (u, _) -> u = i) history.(v) then
        history.(v) <- List.filter (fun (u, _) -> u <> i) history.(v)
    done;
    active.(i) <- false;
    Digraph.Acyclic.remove_vertex graph i
  in
  let rec prune () =
    let victim = ref None in
    for i = 0 to n - 1 do
      if
        !victim = None && completed.(i) && active.(i)
        && Digraph.Acyclic.in_degree graph i = 0
      then victim := Some i
    done;
    match !victim with
    | Some i ->
      forget i;
      prune ()
    | None -> ()
  in
  let rec add_edges tx = function
    | [] -> ()
    | u :: us ->
      if u <> tx then begin
        match Digraph.Acyclic.add_edge_acyclic graph u tx with
        | Ok () ->
          if Obs.Sink.on sink then
            Obs.Sink.record sink (Obs.Event.Edge_added { src = u; dst = tx })
        | Error _ ->
          (* [attempt] vetted the whole batch; an edge cannot fail here *)
          assert false
      end;
      add_edges tx us
  in
  let commit (id : Names.step_id) =
    let tx = id.Names.tx in
    let idx = id.Names.idx in
    let v = var_of_step.(tx).(idx) in
    let op = op_of_step.(tx).(idx) in
    add_edges tx (conflicting_sources op history.(v));
    if Obs.Sink.on sink then begin
      (* accesses of other transactions this grant did not serialize
         against — the coordination the commutativity table saved *)
      let skipped =
        List.length
          (List.filter
             (fun (u, o) -> u <> tx && not (Commute.conflicts o op))
             history.(v))
      in
      if skipped > 0 then
        Obs.Sink.record sink (Obs.Event.Commute_pass { tx; idx; skipped })
    end;
    if not (List.exists (fun (u, o) -> u = tx && o = op) history.(v)) then
      history.(v) <- (tx, op) :: history.(v);
    active.(tx) <- true;
    if idx = fmt.(tx) - 1 then begin
      completed.(tx) <- true;
      prune ()
    end
  in
  let on_abort i =
    completed.(i) <- false;
    forget i
  in
  (* Lazy deadlock handling exactly as in {!Sgt}: a delayed request
     blocks nobody, so eager aborts only thrash restarts. *)
  Scheduler.make ~name:"semantic" ~attempt ~commit ~on_abort ()
