(** Multi-version concurrency control without write-conflict detection.

    Every transaction reads from the snapshot pinned at its first step
    and buffers writes that install at commit, last-committer-wins. No
    step is ever delayed or aborted: the admitted set is {e all} of
    [H], the breadth extreme of the paper's optimality trade-off — paid
    for with lost updates, so the guarantee drops to {e causal
    consistency} (each snapshot is a commit-order prefix, which is why
    this is strictly stronger than read-committed; see DESIGN.md for
    why reading the latest committed version per step would not even be
    read-atomic). The conformance level is declared in
    {!Registry} and enforced by [Sim.Check_fuzz].

    Emits [Snapshot_taken], [Version_read] and [Version_installed] in
    addition to the driver lifecycle. *)

val create : ?sink:Obs.Sink.t -> syntax:Core.Syntax.t -> unit -> Scheduler.t
