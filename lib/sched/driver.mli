open Core

(** The request-stream driver.

    Feeds an arrival stream (an interleaving of the format — the history
    the users would produce with no interference) to a scheduler,
    queueing delayed requests FIFO and retrying them after every grant.
    When the stream is exhausted, remaining requests are retried until
    everything completes; a stall (no grantable request) is resolved by
    aborting the scheduler's chosen victim, counting a {e deadlock}.
    The stuck list handed to the scheduler's [victim] is ordered
    youngest-first by each transaction's {e first} arrival (seniority is
    wound-wait style: fixed once, kept across restarts), so a scheduler
    that prefers victims early in the list never aborts the oldest live
    transaction and the drain loop provably terminates.

    An aborted transaction restarts from its first step; its outstanding
    requests are replayed. The final [output] is the committed schedule
    (grants of aborted incarnations excluded) and is always a legal
    schedule of the format. *)

type stats = {
  output : Schedule.t;
  delays : int;      (** requests that could not be granted immediately *)
  restarts : int;    (** transaction aborts (incl. deadlock victims) *)
  deadlocks : int;   (** stalls the driver had to resolve *)
  waiting : int;
      (** total waiting, in events: for each granted request, the number
          of driver events between its (latest) submission and its
          grant *)
  grants : int;      (** total grants, re-executions included *)
  aborts : int array;
      (** per-transaction abort count (the incarnation a transaction
          committed at); sums to [restarts]. Unlike [delays]/[waiting],
          this is a pure function of the scheduler's decisions, which
          makes it the right field for decision-identity differentials
          between execution engines. *)
}

val zero_delay : stats -> bool
(** No request was ever delayed or aborted — the input history was in
    the scheduler's fixpoint set. *)

exception Stall of string
(** The driver could not make progress: the scheduler declined to name a
    stall victim, or the livelock budget ran out. Typed so callers (the
    CLI in particular) can render a clean diagnostic instead of a
    backtrace. *)

type t
(** An in-progress run: a scheduler plus the driver's request
    bookkeeping. Not thread-safe — callers running drivers on multiple
    domains give each domain its own [t] (see [Sched.Parallel]). *)

val create : ?sink:Obs.Sink.t -> Scheduler.t -> fmt:int array -> t
(** A fresh run over [fmt] with nothing submitted yet. *)

val submit : t -> int -> unit
(** Feed one arrival (a transaction index): the request is recorded and
    as many queued requests as the new arrival unblocks are granted
    immediately — the same eager policy the monolithic {!run} always
    had. May raise {!Stall} via a scheduler abort cascade. *)

val submit_many : t -> int array -> unit
(** [Array.iter (submit t)]. *)

val drain : t -> stats
(** Retry the queued remainder until every submitted transaction
    completes, resolving stalls by victim abort; then return the run's
    statistics. Raises {!Stall} if the scheduler cannot resolve a stall
    or the run livelocks. Draining is terminal: submitting into a
    drained driver restarts the tail loop on the next {!drain}, but the
    intended protocol is submit*, then one drain. *)

val run :
  ?sink:Obs.Sink.t -> Scheduler.t -> fmt:int array -> arrivals:int array ->
  stats
(** [create], {!submit_many}, {!drain} — the one-shot composition.
    Raises {!Stall} if the scheduler cannot resolve a stall or the run
    livelocks.

    With a [sink], the full request lifecycle is recorded: [Submitted]
    at each arrival (and at each replay after an abort), [Delayed] per
    delay verdict (re-attempts included, mirroring [delays]), [Granted]
    at the decision instant, [Executed] one clock tick later (the tick
    {e is} the step's execution), [Committed] after a transaction's
    final step, and [Aborted]/[Restarted] around each restart, with the
    abort reason distinguishing scheduler-initiated aborts from
    deadlock-victim kills. Folding the trace with {!Obs.Fold.counters}
    reproduces the returned {!stats} exactly. The default no-op sink
    costs one predictable branch per event — the hot path stays hot. *)

val fixpoint_of : (unit -> Scheduler.t) -> int array -> Schedule.t list
(** The empirical fixpoint set: every schedule of the format passed with
    zero delay by a fresh scheduler instance. Small formats only. *)

val zero_delay_fraction :
  (unit -> Scheduler.t) -> fmt:int array -> samples:int -> seed:int -> float
(** Monte-Carlo estimate of [|P| / |H|] over uniformly random arrival
    histories. *)
