let create ?sink ~syntax () =
  Mv_engine.create
    { Mv_engine.name = "MVCC"; fcw = false; ssi = false }
    ?sink ~syntax ()
