open Core

(** Timestamp-ordering scheduler — the SDD-1-flavoured literature
    baseline ([Bernstein et al. 78], implemented "by queues" rather than
    locks).

    Every transaction receives a timestamp at its first request; a step
    on variable [v] is granted iff the transaction's timestamp is at
    least the largest timestamp that has touched [v]; otherwise the
    transaction {e aborts} and restarts with a fresh timestamp. In the
    atomic read-modify-write step model every access is both a read and
    a write, so a single per-variable watermark suffices. Never delays —
    its cost shows up entirely as restarts. *)

val create : syntax:Syntax.t -> Scheduler.t

val create_traced : sink:Obs.Sink.t -> syntax:Syntax.t -> Scheduler.t
(** Like {!create}, but each watermark refusal (the verdict that
    precedes an abort-and-restart) emits {!Obs.Event.Ts_refused}. *)
