open Core

(** Timestamp-ordering scheduler — the SDD-1-flavoured literature
    baseline ([Bernstein et al. 78], implemented "by queues" rather than
    locks).

    Every transaction receives a timestamp at its first request; a step
    on variable [v] is granted iff the transaction's timestamp is at
    least the largest timestamp that has touched [v]; otherwise the
    transaction {e aborts} and restarts with a fresh timestamp. In the
    atomic read-modify-write step model every access is both a read and
    a write, so a single per-variable watermark suffices. Never delays —
    its cost shows up entirely as restarts. *)

val create : ?sink:Obs.Sink.t -> syntax:Syntax.t -> unit -> Scheduler.t
(** With a [sink], each watermark refusal (the verdict that precedes an
    abort-and-restart) emits {!Obs.Event.Ts_refused}. Constructor shape
    per the convention in {!Scheduler}. *)
