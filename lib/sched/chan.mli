(** Bounded multi-producer single-consumer channels of ints — the
    request conduits between the routing domain and the per-shard
    execution domains of [Sched.Parallel].

    Two interchangeable builds, selected at creation:

    - {!Ring}: a Vyukov-style sequence-stamped atomic ring. Producers
      claim slots with a single CAS; the lone consumer is CAS-free.
    - {!Mutex}: a mutex + condition-variable queue.

    Both are bounded (capacity is rounded up to a power of two),
    blocking on full/empty, and closeable. The termination protocol is
    strict: {!close} must happen {e after} every producer's last
    {!push} — the consumer treats a 0 return from {!pop_batch} as
    end-of-stream. Blocking paths mix [Domain.cpu_relax] spinning with
    short sleeps so oversubscribed boxes (fewer cores than domains)
    still make progress. *)

exception Closed
(** Raised by {!push} on a closed channel. *)

type kind = Ring | Mutex

val kind_name : kind -> string
(** ["ring"] / ["mutex"] — bench and CLI labels. *)

type t

val create : ?capacity:int -> kind -> t
(** A fresh channel holding at most [capacity] (rounded up to a power
    of two, default 1024) undelivered elements. *)

val kind : t -> kind

val push : t -> int -> unit
(** Enqueue, blocking while the channel is full. Safe from any number
    of domains. Raises {!Closed} if the channel was closed first. *)

val close : t -> unit
(** Mark end-of-stream and wake blocked peers. Call only after all
    producers are done pushing. Idempotent. *)

val pop_batch : t -> int array -> int
(** Dequeue into a caller buffer from the single consumer domain:
    blocks until at least one element is available, then drains as many
    as are ready (at most [Array.length buf]) and returns the count.
    Returns [0] only when the channel is closed and empty — the
    end-of-stream signal. The batch amortizes synchronization over
    bursts, which is what lets a coordinator admit cross-shard
    transactions batch-at-a-time instead of one CAS per request. *)
