open Core

(* The original copy-and-recheck SGT: every admission test copies the
   whole conflict graph and reruns full cycle detection, and the
   per-variable history keeps one entry per access (duplicates
   included). Kept verbatim as the differential-testing oracle for the
   incremental implementation in [Sgt]. *)

let create ~syntax =
  let fmt = Syntax.format syntax in
  let n = Syntax.n_transactions syntax in
  (* per-variable access history (transaction ids, oldest first) *)
  let history : (Names.var, int list) Hashtbl.t = Hashtbl.create 16 in
  let graph = ref (Digraph.create n) in
  let completed = Array.make n false in
  let accessors v = try Hashtbl.find history v with Not_found -> [] in
  let edges_for (id : Names.step_id) =
    accessors (Syntax.var syntax id)
    |> List.filter_map (fun tx ->
           if tx <> id.Names.tx then Some (tx, id.Names.tx) else None)
  in
  let attempt id =
    let g = Digraph.copy !graph in
    List.iter (fun (u, v) -> Digraph.add_edge g u v) (edges_for id);
    if Digraph.has_cycle g then Scheduler.Delay else Scheduler.Grant
  in
  let rebuild () =
    let g = Digraph.create n in
    Hashtbl.iter
      (fun _ txs ->
        let rec pairs = function
          | [] -> ()
          | tx :: rest ->
            List.iter
              (fun tx' -> if tx' <> tx then Digraph.add_edge g tx tx')
              rest;
            pairs rest
        in
        pairs txs)
      history;
    graph := g
  in
  let forget i =
    Hashtbl.filter_map_inplace
      (fun _ txs ->
        match List.filter (fun tx -> tx <> i) txs with
        | [] -> None
        | txs -> Some txs)
      history;
    rebuild ()
  in
  (* A completed transaction never receives another incoming edge, so
     once it is a source of the conflict graph it can never lie on a
     cycle: prune it. Without pruning a long-running workload saturates
     the graph and every new request eventually closes a cycle. *)
  let rec prune () =
    let victim = ref None in
    for i = 0 to n - 1 do
      if
        !victim = None && completed.(i)
        && Digraph.pred !graph i = []
        && Hashtbl.fold
             (fun _ txs any -> any || List.mem i txs)
             history false
      then victim := Some i
    done;
    match !victim with
    | Some i ->
      forget i;
      prune ()
    | None -> ()
  in
  let commit (id : Names.step_id) =
    List.iter (fun (u, v) -> Digraph.add_edge !graph u v) (edges_for id);
    let v = Syntax.var syntax id in
    Hashtbl.replace history v (accessors v @ [ id.Names.tx ]);
    if id.Names.idx = fmt.(id.Names.tx) - 1 then begin
      completed.(id.Names.tx) <- true;
      prune ()
    end
  in
  let on_abort i =
    completed.(i) <- false;
    forget i
  in
  (* No eager [detect], mirroring [Sgt]: a delayed request is doomed
     until an abort but blocks nobody, so victim selection is left to the
     lazy stall path. *)
  Scheduler.make ~name:"SGT-ref" ~attempt ~commit ~on_abort ()
