let create ?sink ~syntax () =
  Mv_engine.create
    { Mv_engine.name = "SI"; fcw = true; ssi = false }
    ?sink ~syntax ()
