let create ?sink ~syntax () =
  Mv_engine.create
    { Mv_engine.name = "SSI"; fcw = true; ssi = true }
    ?sink ~syntax ()
