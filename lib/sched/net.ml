type 'msg ev =
  | Deliver of { src : int; dst : int; msg : 'msg }
  | Timer of { node : int; tag : int; epoch : int }
  | Recover of { node : int }

type 'msg t = {
  delay : src:int -> dst:int -> float;
  handlers : 'msg handlers;
  (* Time-ordered queue with a sequence tie-break, kept as a sorted
     list: a commit round is a few dozen events, so O(n) insertion
     beats a heap's constant factor and keeps the drain order obviously
     deterministic. *)
  mutable queue : (float * int * 'msg ev) list;
  mutable seq : int;
  mutable time : float;
  alive : bool array;
  epoch : int array;
  steps : int array;
  plan : (int * float) Queue.t array;  (* per node: (at_input, repair) *)
  mutable crashed_n : int;
  mutable delivered_n : int;
}

and 'msg handlers = {
  on_msg : 'msg t -> node:int -> src:int -> 'msg -> unit;
  on_timer : 'msg t -> node:int -> tag:int -> unit;
  on_crash : 'msg t -> node:int -> unit;
  on_recover : 'msg t -> node:int -> unit;
}

let create ~nodes ~delay ?(crashes = []) ~handlers () =
  let plan = Array.init nodes (fun _ -> Queue.create ()) in
  (* per-node plans in input order, regardless of list order *)
  List.iter
    (fun (node, at, repair) ->
      if node < 0 || node >= nodes then
        invalid_arg "Net.create: crash plan node out of range";
      Queue.add (at, repair) plan.(node))
    (List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b) crashes);
  {
    delay;
    handlers;
    queue = [];
    seq = 0;
    time = 0.;
    alive = Array.make nodes true;
    epoch = Array.make nodes 0;
    steps = Array.make nodes 0;
    plan;
    crashed_n = 0;
    delivered_n = 0;
  }

let now t = t.time
let alive t n = t.alive.(n)
let steps t n = t.steps.(n)
let crashes_triggered t = t.crashed_n
let delivered t = t.delivered_n

let push t at ev =
  let key = (at, t.seq) in
  t.seq <- t.seq + 1;
  let rec ins = function
    | [] -> [ (fst key, snd key, ev) ]
    | ((bt, bs, _) as b) :: rest ->
      if (bt, bs) <= key then b :: ins rest
      else (fst key, snd key, ev) :: b :: rest
  in
  t.queue <- ins t.queue

let send t ~src ~dst msg =
  if t.alive.(src) then
    push t (t.time +. t.delay ~src ~dst) (Deliver { src; dst; msg })

let set_timer t ~node ~tag ~after =
  if t.alive.(node) then
    push t (t.time +. after) (Timer { node; tag; epoch = t.epoch.(node) })

(* Fell [node] now if its crash plan targets the input it is about to
   process; the input itself is lost. Returns whether it crashed. *)
let maybe_crash t node =
  match Queue.peek_opt t.plan.(node) with
  | Some (at, repair) when at <= t.steps.(node) ->
    ignore (Queue.pop t.plan.(node));
    t.alive.(node) <- false;
    t.epoch.(node) <- t.epoch.(node) + 1;
    t.crashed_n <- t.crashed_n + 1;
    t.handlers.on_crash t ~node;
    push t (t.time +. repair) (Recover { node });
    true
  | _ -> false

let run ?(budget = 100_000) t =
  let rec loop processed =
    match t.queue with
    | [] -> `Quiescent
    | _ when processed >= budget -> `Budget_exhausted
    | (tm, _, ev) :: rest ->
      t.queue <- rest;
      t.time <- tm;
      (match ev with
      | Deliver { src; dst; msg } ->
        if t.alive.(dst) && not (maybe_crash t dst) then begin
          t.steps.(dst) <- t.steps.(dst) + 1;
          t.delivered_n <- t.delivered_n + 1;
          t.handlers.on_msg t ~node:dst ~src msg
        end
      | Timer { node; tag; epoch } ->
        if t.alive.(node) && epoch = t.epoch.(node) && not (maybe_crash t node)
        then begin
          t.steps.(node) <- t.steps.(node) + 1;
          t.handlers.on_timer t ~node ~tag
        end
      | Recover { node } ->
        t.alive.(node) <- true;
        t.handlers.on_recover t ~node);
      loop (processed + 1)
  in
  loop 0
