open Core

(** Variable partitioning for the sharded scheduling engine.

    A partition assigns every variable of a syntax to one of [shards]
    shards by a deterministic hash, and precomputes everything the
    {!Sharded} engine needs on its integer-only hot path: the shard and
    shard-local variable id of every step, each transaction's shard
    bitmask, shard membership lists, and a dense numbering of the
    {e cross-shard} transactions (those touching two or more shards) for
    the coordinator graph.

    Because a conflict edge joins two accessors of the {e same}
    variable, every conflict edge lives in exactly one shard; a
    transaction whose variables all hash to one shard ([home]) has all
    its edges there and needs no cross-shard coordination at all — the
    coordination-avoidance reading of the paper's conflict geometry. *)

type t = {
  shards : int;  (** number of shards K, [1 <= K <= 62] *)
  n : int;  (** number of transactions *)
  shard_of_step : int array array;
      (** [shard_of_step.(tx).(idx)]: the shard owning that step's
          variable *)
  lvar_of_step : int array array;
      (** shard-local variable id of the step (interned per shard) *)
  mask : int array;
      (** per-transaction bitmask of touched shards (bit [s] set iff the
          transaction accesses a variable of shard [s]); [0] for an
          empty transaction *)
  home : int array;
      (** the single shard of a single-shard transaction; [-1] for
          cross-shard and empty transactions *)
  cross : bool array;  (** touches two or more shards *)
  n_cross : int;  (** number of cross-shard transactions *)
  cross_id : int array;
      (** dense coordinator-local id of a cross-shard transaction
          (ascending in the global id); [-1] otherwise *)
  members : int array array;
      (** [members.(s)]: global ids of the transactions touching shard
          [s], ascending — the shard-local id space *)
  local_id : int array array;
      (** [local_id.(s).(tx)]: shard-local id of [tx] in shard [s];
          [-1] if [tx] does not touch [s] *)
  n_lvars : int array;  (** distinct variables per shard *)
}

val shard_of_var : shards:int -> Names.var -> int
(** The deterministic variable-to-shard hash ([Hashtbl.hash mod K]). *)

val make : syntax:Syntax.t -> shards:int -> t
(** Raises [Invalid_argument] unless [1 <= shards <= 62] (shard sets are
    represented as bits of one OCaml [int]). *)

val cross_fraction : t -> float
(** Fraction of non-empty transactions that are cross-shard. *)
