(** Versioned variable store shared by the multi-version engines
    ({!Mvcc}, {!Si}, {!Ssi}).

    Each variable carries a chain of committed versions stamped with
    the commit timestamp (a global counter 1, 2, ...) of the installing
    transaction; every variable is implicitly born at [initial_value]
    with timestamp 0. A transaction pins a snapshot timestamp when it
    begins, buffers its own writes privately, reads its own buffer
    first and otherwise the newest committed version at or before its
    snapshot, and installs its buffered writes atomically at commit.

    The store is policy-free: first-committer-wins and the SSI
    rw-antidependency probes are exposed as pure queries
    ({!ww_conflict}, {!newer_writers}, {!concurrent}) that the engines
    combine into abort decisions. Version chains and retained
    transaction records are garbage-collected as the minimum live
    snapshot advances. *)

type version = { value : int; writer : int; ts : int }

type txn = {
  id : int;
  snap : int;  (** snapshot timestamp, pinned at {!begin_txn} *)
  mutable reads : Core.Names.Vset.t;
      (** variables read from the store (own-buffer hits excluded) *)
  mutable writes : (Core.Names.var * int) list;  (** buffered, newest first *)
  mutable commit_ts : int option;
  mutable in_rw : bool;
      (** SSI: some concurrent transaction has an rw-antidependency
          edge into this one (sticky; survives into retention) *)
  mutable out_rw : bool;
      (** SSI: this transaction has an rw-antidependency edge out to
          some concurrent transaction *)
}

type t

val initial_value : int
(** The value every variable starts at — [0], matching
    [Analysis.History.initial_value] by convention (the obs/sched
    layers cannot depend on [Analysis]). *)

val create : unit -> t

val clock : t -> int
(** Current commit timestamp (0 before any commit). *)

val begin_txn : t -> int -> txn
(** Start (or restart) transaction [id] with snapshot [clock st]. *)

val live_txn : t -> int -> txn option
val live_txns : t -> txn list
val snapshot : txn -> int
val reads_of : txn -> Core.Names.var list
val commit_ts : txn -> int option

val read : t -> txn -> Core.Names.var -> int * int option
(** [read st t x] is [(value, writer)]: [t]'s own buffered write of [x]
    if any (writer [None]), else the newest committed version at or
    before [t]'s snapshot ([Some] its installer; [None] for the initial
    value). Store reads are recorded in [t.reads]. *)

val read_at : t -> Core.Names.var -> snap:int -> int
(** Pure snapshot read: newest committed value of the variable at or
    before [snap] ({!initial_value} when none) — the property the
    model-based store tests check. *)

val write : t -> txn -> Core.Names.var -> int
(** Buffer a globally fresh value for the variable; returns it. *)

val newest : t -> Core.Names.var -> version option
val chain : t -> Core.Names.var -> version list
(** Committed versions, newest first (pruned tail excluded). *)

val ww_conflict :
  t -> snap:int -> excluding:int -> Core.Names.var list -> Core.Names.var option
(** First-committer-wins probe: a variable among [vars] carrying a
    committed version newer than [snap] installed by a transaction
    other than [excluding], if any. Pure. *)

val newer_writers : t -> Core.Names.var -> than:int -> excluding:int -> int list
(** Distinct installers of committed versions of the variable newer
    than [than] — the targets of rw-antidependency edges out of a
    transaction that read it under snapshot [than]. Pure. *)

val concurrent : t -> snap:int -> excluding:int -> txn list
(** Transactions concurrent with a snapshot: all live ones plus
    retained committed ones with [commit_ts > snap]. Pure. *)

val min_live_snapshot : t -> int option

val commit : t -> txn -> int
(** Install the buffered writes (newest value per variable) at a fresh
    commit timestamp, retain the record, garbage-collect, and return
    the timestamp. The caller decides admissibility first. *)

val abort : t -> txn -> unit
(** Drop the live record (buffered writes and flags die with it). *)
