(** Snapshot isolation: snapshot reads plus first-committer-wins.

    As {!Mvcc}, but a transaction aborts (and restarts under a fresh
    snapshot) if, at its final step, an overlapping committed
    transaction has installed a version of anything in its update set
    — the first committer wins, ruling out lost updates. Write skew
    between transactions with disjoint update sets still commits, so
    histories are snapshot-isolation consistent but not serializable;
    [Sim.Check_fuzz] asserts both directions. Under the paper's pure
    read-modify-write steps the update set equals the read set and
    first-committer-wins already forces serializability — anomalies
    need [Syntax.Read] steps.

    Emits [Ww_refused] before each first-committer-wins abort, plus
    the {!Mvcc} version events. *)

val create : ?sink:Obs.Sink.t -> syntax:Core.Syntax.t -> unit -> Scheduler.t
