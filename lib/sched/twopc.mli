(** Two-phase commit with presumed abort over the message-passing
    network simulator ({!Net}): the distributed atomic-commit layer the
    sharded engine routes cross-shard commits through.

    {2 Protocol}

    A commit round for transaction [tx] runs over a cluster of
    [nodes] fail-stop nodes: the involved shards as {e participants}
    and one {e coordinator}. Four message rounds:

    + {e prepare}: the coordinator sends [Prepare] to every
      participant and arms its vote timeout;
    + {e vote}: a participant force-writes a vote record to its
      persistent log and answers [Vote yes] (entering its {e in-doubt}
      window), or answers [Vote no] and aborts unilaterally — no log
      needed, absence of a vote record means abort;
    + {e decide}: on all-yes the coordinator force-writes a commit
      record, decides, and sends [Decision commit] to every
      participant; on any no — or on vote timeout — it decides abort
      {e without logging} (presumed abort) and broadcasts
      [Decision abort];
    + {e ack}: participants acknowledge a commit decision; the
      coordinator re-sends the decision on its ack timeout until all
      acks are in, then writes a (lazy) end record and stops.

    Recovery is log-driven: a restarting participant with a decision
    record reloads it; with only a vote record it is in doubt and polls
    the coordinator with [Decision_req]; with an empty log it presumes
    abort. A restarting coordinator with a commit record re-broadcasts
    it; with no record it presumes abort and proactively broadcasts the
    abort. An in-doubt participant's decision timeout re-polls forever
    (blocking — the measured cost of 2PC): under eventual delivery and
    eventual recovery every node eventually decides.

    Crashes cannot split a log write from the send it guards: a
    {!Net} handler step is atomic, which is exactly the forced-write
    ("log before send") assumption of the textbook protocol.

    {2 Verification}

    {!check} is the executable AC1–AC5 atomic-commitment checker
    (Bernstein–Hadzilacos–Goodman numbering):

    - {b AC1} {e agreement}: no two nodes decide differently;
    - {b AC2} {e irreversibility}: no node decides twice differently;
    - {b AC3} {e validity}: a commit decision implies every participant
      voted yes;
    - {b AC4} {e non-triviality}: a fault-free round commits;
    - {b AC5} {e liveness}: the round quiesces and every involved node
      decides.

    {!universe} enumerates every single-fault placement — a crash of
    each involved node before each of its baseline protocol inputs, at
    a repair both shorter and longer than every timeout, plus each
    no-vote and each timeout-forcing slow link — and checks each round,
    so for small clusters the checker's verdict is exhaustive over
    single faults, not sampled. *)

type fault =
  | Crash of { node : int; at_input : int; repair : float }
      (** fail-stop before the node's [at_input]-th protocol input
          (input-indexed, see {!Net}); back after [repair] time units *)
  | Slow_link of { src : int; dst : int; extra : float }
      (** add [extra] to every delivery on the link — the way to force
          a specific timeout without killing anyone *)
  | Vote_no of { node : int }  (** the participant votes no *)

type variant =
  | Correct
  | Forget_log_on_recover
      (** deliberately broken: recovery wipes the persistent log, so a
          recovered yes-voter presumes abort while the coordinator may
          have committed — the checker must reject this (AC1) *)
  | Presume_commit_on_timeout
      (** deliberately broken: an in-doubt participant unilaterally
          commits on its decision timeout (AC1/AC3) *)

type config = {
  delay : float;  (** base one-way link delay *)
  jitter : float;  (** uniform extra delay in [0, jitter), per delivery *)
  t_prepare : float;  (** participant: no [Prepare] yet → abort *)
  t_vote : float;  (** coordinator: votes missing → presumed abort *)
  t_decision : float;  (** in-doubt participant: poll [Decision_req] *)
  t_ack : float;  (** coordinator: acks missing → re-send decision *)
  variant : variant;
  budget : int;  (** network event budget per round (AC5 backstop) *)
}

val default : config
(** [delay = 1.0], no jitter, timeouts several round trips out
    ([t_prepare = t_vote = 8.0], [t_decision = t_ack = 6.0]),
    [Correct], budget 100_000. *)

type record = {
  tx : int;
  coord : int;
  parts : int list;
  faults : fault list;
  votes : (int * bool) list;
      (** first vote each participant sent (ground truth for AC3,
          collected at the sender — the coordinator's tally is volatile) *)
  decisions : (float * int * bool) list;
      (** every fresh decision event [(time, node, commit)] in time
          order; silent log reloads after recovery are not events *)
  outcome : bool option;  (** the coordinator's decision *)
  quiescent : bool;  (** the network drained within budget *)
  decided_at : float;  (** coordinator's decision time; [nan] if none *)
  finished_at : float;  (** virtual time at quiescence (or budget) *)
  blocking : float;
      (** max over participants of first-decision time minus yes-vote
          time — the round's in-doubt (blocking) window *)
  msgs : int;  (** messages delivered *)
  crashes : int;  (** crash-plan entries that actually triggered *)
  node_inputs : int array;
      (** per node, protocol inputs processed — the crash-placement
          index space used by {!universe} *)
  events : (float * Obs.Event.t) list;
      (** the round's own trace (also emitted to the sink when given),
          offset by [at] — the witness a violation replays *)
}

val round :
  ?sink:Obs.Sink.t ->
  ?at:float ->
  config ->
  nodes:int ->
  coord:int ->
  parts:int list ->
  tx:int ->
  seed:int ->
  faults:fault list ->
  unit ->
  record
(** Run one commit round. [at] offsets the trace timestamps (the
    sharded engine passes its driver clock so commit rounds land inside
    the run's timeline); [seed] drives delivery jitter only —
    with [jitter = 0.] a round is a deterministic function of its
    fault list. Raises [Invalid_argument] if [coord] or a participant
    is out of range, or a participant equals [coord]. *)

type violation = { ac : int; detail : string }

val check : record -> violation list
(** AC1–AC5 over a finished round; empty = conforming. *)

val universe :
  ?repairs:float list ->
  config ->
  n_parts:int ->
  seed:int ->
  (fault list * record * violation list) list
(** The exhaustive single-fault micro-universe over a cluster of
    [n_parts] participants plus coordinator ([coord = n_parts],
    [tx = 0]): the fault-free baseline, then every single-fault
    placement derived from the baseline's input counts (crashes at
    every input of every involved node × every repair in [repairs] —
    default one repair below and one above every timeout — plus every
    [Vote_no] and every timeout-forcing [Slow_link]). Each round is
    paired with its {!check} result. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_violation : Format.formatter -> violation -> unit

val witness : record -> violation list -> string
(** Human-replayable reproduction: the round's parameters and fault
    list, the violated properties, and the full event trace. *)

(** {2 Commit service for the sharded engine}

    A persistent cluster of [shards] participant nodes plus a
    coordinator; each [commit] call runs one round over the calling
    transaction's shard subset, with faults sampled per round from the
    configured rates. With zero rates ({e no_faults}) every round is
    the fault-free happy path and commits — decision-identical to the
    engine without 2PC. *)

type service

type totals = {
  rounds : int;
  committed : int;
  aborted : int;
  latency_sum : float;
      (** Σ round start → coordinator decision, virtual time *)
  blocking_sum : float;  (** Σ per-round blocking windows *)
  blocking_max : float;
  total_msgs : int;
  total_crashes : int;
}

val service :
  ?sink:Obs.Sink.t ->
  ?config:config ->
  ?crash_rate:float ->
  ?slow_rate:float ->
  ?seed:int ->
  shards:int ->
  unit ->
  service
(** [crash_rate] is per involved node per round (coordinator included);
    [slow_rate] per participant link per round. Both default to [0.] —
    the no-fault service. *)

val commit : service -> tx:int -> shards:int list -> bool
(** Run a commit round for [tx] over participant set [shards]; [true]
    iff the coordinator decided commit. Shaped for
    [Sharded.create ~commit_cross]. *)

val totals : service -> totals
