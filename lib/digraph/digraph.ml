module Iset = Set.Make (Int)

type t = { n : int; mutable adj : Iset.t array }

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; adj = Array.make n Iset.empty }

let n_vertices g = g.n

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: vertex out of range"

let add_edge g u v =
  check g u;
  check g v;
  g.adj.(u) <- Iset.add v g.adj.(u)

let remove_edge g u v =
  check g u;
  check g v;
  g.adj.(u) <- Iset.remove v g.adj.(u)

let has_edge g u v =
  check g u;
  check g v;
  Iset.mem v g.adj.(u)

let succ g u =
  check g u;
  Iset.elements g.adj.(u)

let pred g v =
  check g v;
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if Iset.mem v g.adj.(u) then acc := u :: !acc
  done;
  !acc

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    Iset.fold (fun v l -> (u, v) :: l) g.adj.(u) []
    |> List.iter (fun e -> acc := e :: !acc)
  done;
  List.sort compare !acc

let n_edges g = Array.fold_left (fun acc s -> acc + Iset.cardinal s) 0 g.adj

let copy g = { n = g.n; adj = Array.copy g.adj }

(* DFS colouring: 0 = white, 1 = grey (on stack), 2 = black. *)
let has_cycle g =
  let colour = Array.make g.n 0 in
  let rec visit u =
    colour.(u) <- 1;
    let cyc =
      Iset.exists
        (fun v -> colour.(v) = 1 || (colour.(v) = 0 && visit v))
        g.adj.(u)
    in
    colour.(u) <- 2;
    cyc
  in
  let rec scan u =
    if u >= g.n then false
    else if colour.(u) = 0 && visit u then true
    else scan (u + 1)
  in
  scan 0

let topological_sort g =
  let indeg = Array.make g.n 0 in
  Array.iter (fun s -> Iset.iter (fun v -> indeg.(v) <- indeg.(v) + 1) s) g.adj;
  (* min-heap substitute: a sorted set of ready vertices for determinism *)
  let ready = ref Iset.empty in
  for u = 0 to g.n - 1 do
    if indeg.(u) = 0 then ready := Iset.add u !ready
  done;
  let order = Array.make g.n 0 in
  let filled = ref 0 in
  while not (Iset.is_empty !ready) do
    let u = Iset.min_elt !ready in
    ready := Iset.remove u !ready;
    order.(!filled) <- u;
    incr filled;
    Iset.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then ready := Iset.add v !ready)
      g.adj.(u)
  done;
  if !filled = g.n then Some order else None

let scc g =
  (* Tarjan's algorithm, iterative to be safe on large graphs. *)
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let comp = Array.make g.n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec strong u =
    index.(u) <- !next_index;
    lowlink.(u) <- !next_index;
    incr next_index;
    Stack.push u stack;
    on_stack.(u) <- true;
    Iset.iter
      (fun v ->
        if index.(v) < 0 then begin
          strong v;
          lowlink.(u) <- min lowlink.(u) lowlink.(v)
        end
        else if on_stack.(v) then lowlink.(u) <- min lowlink.(u) index.(v))
      g.adj.(u);
    if lowlink.(u) = index.(u) then begin
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        on_stack.(w) <- false;
        comp.(w) <- !next_comp;
        if w = u then continue := false
      done;
      incr next_comp
    end
  in
  for u = 0 to g.n - 1 do
    if index.(u) < 0 then strong u
  done;
  comp

let find_cycle g =
  let colour = Array.make g.n 0 in
  let parent = Array.make g.n (-1) in
  let result = ref None in
  let rec visit u =
    colour.(u) <- 1;
    Iset.iter
      (fun v ->
        if !result = None then
          if colour.(v) = 1 then begin
            (* found a back edge u -> v: walk parents from u back to v *)
            let rec collect w acc =
              if w = v then v :: acc else collect parent.(w) (w :: acc)
            in
            result := Some (collect u [])
          end
          else if colour.(v) = 0 then begin
            parent.(v) <- u;
            visit v
          end)
      g.adj.(u);
    colour.(u) <- 2
  in
  let u = ref 0 in
  while !result = None && !u < g.n do
    if colour.(!u) = 0 then visit !u;
    incr u
  done;
  !result

let reachable g u =
  check g u;
  let seen = Array.make g.n false in
  let rec visit w =
    if not seen.(w) then begin
      seen.(w) <- true;
      Iset.iter visit g.adj.(w)
    end
  in
  visit u;
  seen

let transitive_closure g =
  let closure = create g.n in
  for u = 0 to g.n - 1 do
    let seen = Array.make g.n false in
    let rec visit w =
      Iset.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            add_edge closure u v;
            visit v
          end)
        g.adj.(w)
    in
    visit u
  done;
  closure

let undirected_components g =
  let comp = Array.make g.n (-1) in
  let sym = Array.make g.n Iset.empty in
  for u = 0 to g.n - 1 do
    Iset.iter
      (fun v ->
        sym.(u) <- Iset.add v sym.(u);
        sym.(v) <- Iset.add u sym.(v))
      g.adj.(u)
  done;
  let next = ref 0 in
  let rec visit c u =
    if comp.(u) < 0 then begin
      comp.(u) <- c;
      Iset.iter (visit c) sym.(u)
    end
  in
  for u = 0 to g.n - 1 do
    if comp.(u) < 0 then begin
      visit !next u;
      incr next
    end
  done;
  comp

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph(%d) {" g.n;
  List.iter (fun (u, v) -> Format.fprintf ppf "@ %d -> %d;" u v) (edges g);
  Format.fprintf ppf "@ }@]"

(* ---------- online acyclicity (Pearce–Kelly) ---------- *)

type graph = t

module Acyclic = struct
  (* Internals are tuned for the SGT hot path: adjacency is duplicate-free
     int lists (degrees are tiny; list traversal beats balanced-tree
     iteration and insertion allocates one cons), and every search uses
     epoch-stamped scratch arrays, so queries and edge insertions
     allocate nothing beyond the witness on rejection. *)
  type t = {
    nv : int;
    out_ : int list array;
    in_ : int list array;
    ord : int array;   (* vertex -> index in the maintained topo order *)
    back : int array;  (* index -> vertex (inverse of [ord]) *)
    mutable ne : int;
    want : int array;    (* scratch: source marks, by epoch *)
    seen : int array;    (* scratch: forward-search marks, by epoch *)
    seen_b : int array;  (* scratch: backward-search marks, by epoch *)
    parent : int array;  (* scratch: witness-path links *)
    mat : Bytes.t;       (* nv*nv adjacency bitmap: O(1) edge membership *)
    mutable epoch : int;
  }

  let create nv =
    if nv < 0 then invalid_arg "Digraph.Acyclic.create: negative size";
    {
      nv;
      out_ = Array.make nv [];
      in_ = Array.make nv [];
      ord = Array.init nv Fun.id;
      back = Array.init nv Fun.id;
      ne = 0;
      want = Array.make nv 0;
      seen = Array.make nv 0;
      seen_b = Array.make nv 0;
      parent = Array.make nv (-1);
      mat = Bytes.make (nv * nv) '\000';
      epoch = 0;
    }

  let n_vertices g = g.nv
  let n_edges g = g.ne

  let check g u =
    if u < 0 || u >= g.nv then
      invalid_arg "Digraph.Acyclic: vertex out of range"

  let mem_edge g u v = Bytes.get g.mat ((u * g.nv) + v) <> '\000'

  let has_edge g u v =
    check g u;
    check g v;
    mem_edge g u v

  let succ g u =
    check g u;
    List.sort compare g.out_.(u)

  let pred g v =
    check g v;
    List.sort compare g.in_.(v)

  let in_degree g v =
    check g v;
    List.length g.in_.(v)

  let edges g =
    let acc = ref [] in
    for u = g.nv - 1 downto 0 do
      List.iter (fun v -> acc := (u, v) :: !acc) g.out_.(u)
    done;
    List.sort compare !acc

  let topological_order g = Array.copy g.back

  (* The search workers live at module level and take all state as
     arguments: one [closes_cycle_any] call allocates nothing, not even
     closures. *)
  let rec dfs g ep bound w =
    if g.seen.(w) = ep then false
    else begin
      g.seen.(w) <- ep;
      g.want.(w) = ep || dfs_list g ep bound g.out_.(w)
    end

  and dfs_list g ep bound = function
    | [] -> false
    | x :: xs ->
      (g.ord.(x) <= bound && dfs g ep bound x) || dfs_list g ep bound xs

  (* one pass over the sources: mark, bound, and spot self-loops (the
     [max_int] sentinel) *)
  let rec mark_sources g ep ~excluding ~target bound = function
    | [] -> bound
    | u :: us ->
      check g u;
      if u = excluding then mark_sources g ep ~excluding ~target bound us
      else if u = target then max_int
      else begin
        g.want.(u) <- ep;
        mark_sources g ep ~excluding ~target
          (if g.ord.(u) > bound then g.ord.(u) else bound)
          us
      end

  (* Because the maintained order is topological, every edge strictly
     increases [ord]; any path from [target] back to a source therefore
     stays inside the window [ord target, max ord source], which is what
     bounds the search. *)
  let closes_cycle_any ?(excluding = -1) g ~sources ~target =
    check g target;
    g.epoch <- g.epoch + 1;
    let ep = g.epoch in
    let bound = mark_sources g ep ~excluding ~target (-1) sources in
    bound = max_int
    || (bound >= g.ord.(target) && dfs g ep bound target)

  let closes_cycle g u v = closes_cycle_any g ~sources:[ u ] ~target:v

  let insert g u v =
    (* caller guarantees the edge is absent *)
    g.out_.(u) <- v :: g.out_.(u);
    g.in_.(v) <- u :: g.in_.(v);
    Bytes.set g.mat ((u * g.nv) + v) '\001';
    g.ne <- g.ne + 1

  let add_edge_acyclic g u v =
    check g u;
    check g v;
    if u = v then Error [ u ]
    else if mem_edge g u v then Ok ()
    else if g.ord.(u) < g.ord.(v) then begin
      insert g u v;
      Ok ()
    end
    else begin
      (* ord v < ord u: the affected region is the window [lb, ub] *)
      let lb = g.ord.(v) and ub = g.ord.(u) in
      g.epoch <- g.epoch + 1;
      let ep = g.epoch in
      let hit = ref false in
      (* forward from v, restricted to the window; delta-F on success *)
      let rec fwd w =
        if not !hit then begin
          g.seen.(w) <- ep;
          List.iter
            (fun x ->
              if (not !hit) && g.ord.(x) <= ub && g.seen.(x) <> ep then begin
                g.parent.(x) <- w;
                if x = u then begin
                  g.seen.(x) <- ep;
                  hit := true
                end
                else fwd x
              end)
            g.out_.(w)
        end
      in
      fwd v;
      if !hit then begin
        (* path v -> ... -> u exists; the new edge u -> v closes it *)
        let rec walk w acc =
          if w = v then v :: acc else walk g.parent.(w) (w :: acc)
        in
        Error (walk u [])
      end
      else begin
        (* delta-B: everything reaching u inside the window *)
        let rec bwd w =
          if g.seen_b.(w) <> ep then begin
            g.seen_b.(w) <- ep;
            List.iter (fun x -> if g.ord.(x) >= lb then bwd x) g.in_.(w)
          end
        in
        bwd u;
        (* reassign the union's slots: delta-B keeps its relative order
           and moves before delta-F, which keeps its relative order too *)
        let df = ref [] and db = ref [] and slots = ref [] in
        for i = ub downto lb do
          let w = g.back.(i) in
          if g.seen_b.(w) = ep then begin
            db := w :: !db;
            slots := i :: !slots
          end
          else if g.seen.(w) = ep then begin
            df := w :: !df;
            slots := i :: !slots
          end
        done;
        let rec place ws slots =
          match (ws, slots) with
          | [], rest -> rest
          | w :: ws', s :: ss' ->
            g.ord.(w) <- s;
            g.back.(s) <- w;
            place ws' ss'
          | _ :: _, [] -> assert false
        in
        let rest = place !db !slots in
        let rest = place !df rest in
        assert (rest = []);
        insert g u v;
        Ok ()
      end
    end

  let remove_edge g u v =
    check g u;
    check g v;
    if mem_edge g u v then begin
      g.out_.(u) <- List.filter (fun x -> x <> v) g.out_.(u);
      g.in_.(v) <- List.filter (fun x -> x <> u) g.in_.(v);
      Bytes.set g.mat ((u * g.nv) + v) '\000';
      g.ne <- g.ne - 1
    end

  let remove_vertex g i =
    check g i;
    g.ne <- g.ne - List.length g.out_.(i) - List.length g.in_.(i);
    List.iter
      (fun x ->
        Bytes.set g.mat ((i * g.nv) + x) '\000';
        g.in_.(x) <- List.filter (fun y -> y <> i) g.in_.(x))
      g.out_.(i);
    List.iter
      (fun x ->
        Bytes.set g.mat ((x * g.nv) + i) '\000';
        g.out_.(x) <- List.filter (fun y -> y <> i) g.out_.(x))
      g.in_.(i);
    g.out_.(i) <- [];
    g.in_.(i) <- []

  let to_digraph g =
    { n = g.nv; adj = Array.map Iset.of_list g.out_ }
end
