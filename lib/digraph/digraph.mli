(** Directed graphs over integer vertices [0 .. n-1].

    Substrate for the conflict (serialization) graphs of Section 4, the
    wait-for graphs of the lock manager, and block-connectivity checks in
    the locking geometry. Mutable adjacency-set representation; all
    algorithms are deterministic. *)

type t

val create : int -> t
(** [create n] is an empty graph with vertices [0 .. n-1]. *)

val n_vertices : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds edge [u → v]. Idempotent. Self-loops allowed
    (and count as cycles). Raises [Invalid_argument] on out-of-range
    vertices. *)

val remove_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors in increasing order. *)

val pred : t -> int -> int list
(** Predecessors in increasing order (computed). *)

val edges : t -> (int * int) list
(** All edges, lexicographically ordered. *)

val n_edges : t -> int

val copy : t -> t

val has_cycle : t -> bool
(** [true] iff the graph contains a directed cycle (self-loops count). *)

val topological_sort : t -> int array option
(** [Some order] listing vertices such that every edge goes forward, or
    [None] if the graph is cyclic. Kahn's algorithm; ties broken by
    smallest vertex for determinism. *)

val scc : t -> int array
(** [scc g] labels each vertex with the index of its strongly connected
    component (Tarjan). Component indices are in reverse topological
    order of the condensation. *)

val find_cycle : t -> int list option
(** [find_cycle g] returns the vertices of some directed cycle in order
    (first vertex repeated implicitly), or [None]. Used to pick deadlock
    victims from wait-for graphs. *)

val reachable : t -> int -> bool array
(** [reachable g u] marks every vertex reachable from [u] (including
    [u]). *)

val transitive_closure : t -> t
(** A new graph with an edge [u → v] whenever [v] is reachable from [u]
    by a non-empty path. *)

val undirected_components : t -> int array
(** Connected components ignoring edge direction; labels as in {!scc}. *)

val pp : Format.formatter -> t -> unit

type graph = t
(** Alias so {!Acyclic} can refer to the plain graph type. *)

(** Online (incremental) acyclicity via the Pearce–Kelly dynamic
    topological order. The structure maintains the invariant that the
    graph is acyclic: {!Acyclic.add_edge_acyclic} refuses — with a cycle
    witness — any edge that would break it, in time proportional to the
    {e affected region} of the topological order rather than the whole
    graph. Edge and vertex removals are O(degree) and never trigger a
    reordering (deleting edges cannot invalidate a topological order).

    This is the substrate for the serialization-graph scheduler's hot
    path: one admission test per request, no graph copies, no full
    cycle-detection reruns. *)
module Acyclic : sig
  type t

  val create : int -> t
  (** [create n] is the empty acyclic graph on vertices [0 .. n-1], with
      the identity topological order. *)

  val n_vertices : t -> int
  val n_edges : t -> int
  val has_edge : t -> int -> int -> bool

  val succ : t -> int -> int list
  (** Successors in increasing vertex order. *)

  val pred : t -> int -> int list
  (** Predecessors in increasing vertex order (stored, O(degree)). *)

  val in_degree : t -> int -> int
  (** Number of predecessors, without materialising them. *)

  val edges : t -> (int * int) list
  (** All edges, lexicographically ordered. *)

  val add_edge_acyclic : t -> int -> int -> (unit, int list) result
  (** [add_edge_acyclic g u v] adds edge [u → v] if the graph stays
      acyclic and returns [Ok ()] (idempotent on existing edges).
      Otherwise the graph is unchanged and [Error path] returns a cycle
      witness: vertices [v; ...; u] forming a path [v → ... → u] that the
      refused edge [u → v] would close. A self-loop yields [Error [u]]. *)

  val closes_cycle : t -> int -> int -> bool
  (** [closes_cycle g u v] is [true] iff adding [u → v] would create a
      cycle. Pure query: the graph is never modified. *)

  val closes_cycle_any :
    ?excluding:int -> t -> sources:int list -> target:int -> bool
  (** [closes_cycle_any g ~sources ~target]: would adding {e all} edges
      [u → target], [u ∈ sources], create a cycle? Since every new edge
      ends at [target], this holds iff some source is reachable from
      [target] (or is [target] itself); the search is bounded by the
      topological-order window, one pass for the whole edge batch.
      [?excluding] drops one vertex from [sources] without the caller
      having to build a filtered list (the SGT scheduler passes a
      variable's accessor list, which may include the requester). Pure
      query: the graph is never modified, and nothing is allocated. *)

  val remove_edge : t -> int -> int -> unit

  val remove_vertex : t -> int -> unit
  (** Remove every edge incident to the vertex (the vertex itself stays,
      isolated — vertex sets are fixed at creation). *)

  val topological_order : t -> int array
  (** The maintained topological order, as an array of vertices. Fresh
      copy; every edge [u → v] has [u] before [v] in it. *)

  val to_digraph : t -> graph
  (** Snapshot into a plain {!type:graph} (for algorithms the incremental
      structure does not provide). *)
end
