type value = Int of int | Str of string

type entry = {
  name : string;
  cat : string;
  ph : char;
  ts : float;
  pid : int;
  tid : int;
  args : (string * value) list;
}

let lifecycle = "lifecycle"
let internal = "scheduler"

let instant ?(cat = lifecycle) ~ts ~tid name args =
  { name; cat; ph = 'i'; ts; pid = 0; tid; args }

let entries events =
  (* The DES can emit slightly out of global order (a decision at t may
     be recorded after an arrival at t' < t was processed); sorting
     stably by timestamp restores track monotonicity without touching
     the order of simultaneous events. *)
  let events = List.stable_sort (fun (a, _) (b, _) -> compare a b) events in
  let max_tx =
    List.fold_left
      (fun m (_, ev) ->
        match Event.tx ev with Some tx -> max m tx | None -> m)
      (-1) events
  in
  let meta =
    { name = "thread_name"; cat = "__metadata"; ph = 'M'; ts = 0.; pid = 0;
      tid = 0; args = [ ("name", Str "scheduler") ] }
    :: List.init (max_tx + 1) (fun tx ->
           { name = "thread_name"; cat = "__metadata"; ph = 'M'; ts = 0.;
             pid = 0; tid = tx + 1;
             args = [ ("name", Str (Printf.sprintf "T%d" (tx + 1))) ] })
  in
  let open_wait = Array.make (max_tx + 1) false in
  let open_exec = Array.make (max_tx + 1) false in
  let last_ts = ref 0. in
  let rev = ref [] in
  let push e = rev := e :: !rev in
  let close_wait ~ts tx =
    if open_wait.(tx) then begin
      open_wait.(tx) <- false;
      push { name = "wait"; cat = lifecycle; ph = 'E'; ts; pid = 0;
             tid = tx + 1; args = [] }
    end
  in
  let close_exec ~ts tx =
    if open_exec.(tx) then begin
      open_exec.(tx) <- false;
      push { name = "exec"; cat = lifecycle; ph = 'E'; ts; pid = 0;
             tid = tx + 1; args = [] }
    end
  in
  List.iter
    (fun (ts, ev) ->
      last_ts := ts;
      match (ev : Event.t) with
      | Submitted { tx; idx } ->
        push (instant ~ts ~tid:(tx + 1) "submit" [ ("step", Int idx) ])
      | Delayed { tx; idx } ->
        if not open_wait.(tx) then begin
          open_wait.(tx) <- true;
          push { name = "wait"; cat = lifecycle; ph = 'B'; ts; pid = 0;
                 tid = tx + 1; args = [ ("step", Int idx) ] }
        end
      | Granted { tx; idx } ->
        close_wait ~ts tx;
        open_exec.(tx) <- true;
        push { name = "exec"; cat = lifecycle; ph = 'B'; ts; pid = 0;
               tid = tx + 1; args = [ ("step", Int idx) ] }
      | Executed { tx; _ } -> close_exec ~ts tx
      | Committed { tx } -> push (instant ~ts ~tid:(tx + 1) "commit" [])
      | Aborted { tx; reason } ->
        close_wait ~ts tx;
        close_exec ~ts tx;
        push
          (instant ~ts ~tid:(tx + 1) "abort"
             [ ( "reason",
                 Str
                   (match reason with
                   | Event.Deadlock -> "deadlock"
                   | Event.Scheduler_abort -> "scheduler") ) ])
      | Restarted { tx } -> push (instant ~ts ~tid:(tx + 1) "restart" [])
      | Edge_added { src; dst } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "edge"
             [ ("src", Int (src + 1)); ("dst", Int (dst + 1)) ])
      | Cycle_refused { tx; idx } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "cycle-refused"
             [ ("step", Int idx) ])
      | Commute_pass { tx; idx; skipped } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "commute-pass"
             [ ("step", Int idx); ("skipped", Int skipped) ])
      | Lock_acquired { tx; lock } ->
        push (instant ~cat:internal ~ts ~tid:(tx + 1) "lock"
                [ ("var", Str lock) ])
      | Lock_released { tx; lock } ->
        push (instant ~cat:internal ~ts ~tid:(tx + 1) "unlock"
                [ ("var", Str lock) ])
      | Wound { victim } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "wound"
             [ ("victim", Int (victim + 1)) ])
      | Ts_refused { tx; idx } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "ts-refused"
             [ ("step", Int idx) ])
      | Shard_routed { tx; idx; shard } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "shard-routed"
             [ ("tx", Int (tx + 1)); ("step", Int idx); ("shard", Int shard) ])
      | Snapshot_taken { tx; ts = snap } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "snapshot"
             [ ("ts", Int snap) ])
      | Version_read { tx; var; value } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "vread"
             [ ("var", Str var); ("value", Int value) ])
      | Version_installed { tx; var; value } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "vinstall"
             [ ("var", Str var); ("value", Int value) ])
      | Ww_refused { tx; var } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "ww-refused"
             [ ("var", Str var) ])
      | Pivot_refused { tx; cyclic } ->
        push
          (instant ~cat:internal ~ts ~tid:(tx + 1) "pivot-refused"
             [ ("cyclic", Str (if cyclic then "true" else "false")) ])
      | Twopc_sent { tx; src; dst; msg } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "2pc-send"
             [ ("tx", Int (tx + 1)); ("src", Int src); ("dst", Int dst);
               ("msg", Str (Event.payload_to_string msg)) ])
      | Twopc_delivered { tx; src; dst; msg } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "2pc-recv"
             [ ("tx", Int (tx + 1)); ("src", Int src); ("dst", Int dst);
               ("msg", Str (Event.payload_to_string msg)) ])
      | Twopc_decided { tx; node; commit } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "2pc-decided"
             [ ("tx", Int (tx + 1)); ("node", Int node);
               ("outcome", Str (if commit then "commit" else "abort")) ])
      | Twopc_timeout { tx; node; timer } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "2pc-timeout"
             [ ("tx", Int (tx + 1)); ("node", Int node); ("timer", Str timer) ])
      | Node_crashed { tx; node } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "node-crashed"
             [ ("tx", Int (tx + 1)); ("node", Int node) ])
      | Node_recovered { tx; node } ->
        push
          (instant ~cat:internal ~ts ~tid:0 "node-recovered"
             [ ("tx", Int (tx + 1)); ("node", Int node) ]))
    events;
  (* a truncated trace (ring overflow) may leave spans open: close them
     so every B has its E *)
  for tx = 0 to max_tx do
    close_exec ~ts:!last_ts tx;
    close_wait ~ts:!last_ts tx
  done;
  meta @ List.rev !rev

(* ---------- JSON rendering ---------- *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_of_entries es =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"displayTimeUnit\": \"ms\",\n";
  Buffer.add_string b "  \"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \
            \"ts\": %.3f, \"pid\": %d, \"tid\": %d"
           (escape e.name) (escape e.cat) e.ph e.ts e.pid e.tid);
      (match e.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ", \"args\": { ";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string b ", ";
            Buffer.add_string b
              (match v with
              | Int n -> Printf.sprintf "\"%s\": %d" (escape k) n
              | Str s -> Printf.sprintf "\"%s\": \"%s\"" (escape k) (escape s)))
          args;
        Buffer.add_string b " }");
      Buffer.add_string b
        (if i = List.length es - 1 then " }\n" else " },\n"))
    es;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let chrome events = chrome_of_entries (entries events)
