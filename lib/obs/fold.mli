(** Folds over event traces: recover counters, §6 spans and latency
    histograms from the raw stream.

    The differential contract (enforced by [test/test_trace.ml]): on a
    driver-produced trace, {!counters} reproduces the driver's reported
    statistics {e exactly} — grants, delays, restarts, deadlocks,
    waiting, and the zero-delay flag. The trace is therefore a complete
    black-box witness of a run, in the Biswas–Enea sense: anything the
    stats say, the trace proves.

    Timestamp conventions of the driver (relied on by [waiting]):
    [Submitted] is stamped with the clock at submission, [Granted] with
    the clock at the decision instant (one tick before the corresponding
    [Executed]); submissions are matched to grants per transaction in
    FIFO order, exactly like the driver's submission ring.

    All folds tolerate traces that start mid-stream (a ring buffer that
    dropped its oldest events): a grant whose submission was truncated
    away contributes no waiting observation, and a commit with no prior
    lifecycle event no span. The exact-reproduction guarantee holds for
    complete traces. *)

type counters = {
  submits : int;
  grants : int;
  delays : int;
  restarts : int;   (** [Aborted] events, any reason *)
  deadlocks : int;  (** [Aborted] events with reason [Deadlock] *)
  commits : int;
  waiting : int;
      (** Σ over grants of [grant_ts - submit_ts], FIFO-matched — the
          driver's waiting statistic *)
}

val counters : (float * Event.t) list -> counters

val zero_delay : counters -> bool
(** No delay and no abort anywhere in the trace. *)

val spans : n:int -> (float * Event.t) list -> Span.t
(** Replay the lifecycle into per-transaction spans: a transaction is
    [Waiting] from a [Delayed] verdict until its next grant or abort,
    [Executing] from [Granted] to [Executed], and [Scheduling] the rest
    of the time between first submission and commit. *)

val grant_waits : (float * Event.t) list -> int list
(** Per-grant waiting times (FIFO-matched [grant_ts - submit_ts],
    truncated to int), in grant order — histogram fodder. *)

val wait_histogram : (float * Event.t) list -> Hist.t
(** {!grant_waits} folded into a log₂ histogram. *)

type history = {
  steps : (int * int) list;
      (** committed [(tx, idx)] steps in execution order — the run's
          committed schedule, grants of aborted incarnations excluded *)
  commits : int list;  (** transactions with a [Committed] event, sorted *)
  truncated : bool;
      (** evidence that the trace starts mid-stream (ring truncation):
          an incarnation whose first recorded execution is not step 0,
          or a commit with no recorded executions. A truncated
          reconstruction is {e not} a faithful witness — consumers must
          degrade to partial verdicts, mirroring the {!counters}
          tolerance contract. Wholesale drops that remove {e entire}
          transactions leave no evidence in the stream; callers holding
          a ring buffer must additionally consult its drop counter. *)
}

val history : (float * Event.t) list -> history
(** Reconstruct the committed schedule from a lifecycle trace: replay
    [Executed] events per incarnation (an [Aborted] discards the
    incarnation's steps, mirroring the driver's restart semantics) and
    keep exactly the steps of transactions that reach [Committed]. On a
    complete driver trace the result equals the driver's [output]
    schedule (enforced differentially by [test/test_checker.ml]). *)

type mv_access = {
  write : bool;  (** a [Version_installed]; otherwise a [Version_read] *)
  var : string;
  value : int;
}

type mv_history = {
  recorded : bool;
      (** any version event present — i.e. the trace came from a
          multi-version engine, whose reads must be reconstructed from
          version events rather than replayed from the schedule *)
  txns : (int * mv_access list) list;
      (** committed transactions with their accesses in program order,
          sorted by transaction id; aborted incarnations excluded *)
  mv_commits : int list;
  mv_truncated : bool;
      (** a committed transaction with no recorded accesses — evidence
          of ring truncation. Like {!history}, this cannot see every
          drop; combine with {!history}'s flag and the ring's drop
          counter. *)
}

val blocking_windows : (float * Event.t) list -> (int * float) list
(** Per-transaction 2PC blocking windows recovered from the trace: for
    each transaction with a commit round, the maximum over participants
    of [decided_ts - yes_vote_sent_ts] — the span a yes-voter was in
    doubt (uncertain of the outcome, unable to release anything). A
    participant that never voted yes contributes no window; several
    rounds of the same transaction (abort + restart) keep the maximum.
    On a complete round trace this equals the simulator's own measured
    [blocking] (enforced differentially by [test/test_twopc.ml]).
    Sorted by transaction id. *)

val mv_history : (float * Event.t) list -> mv_history
(** Reconstruct the per-transaction read/write access log of a
    multi-version run from its [Version_read]/[Version_installed]
    events (an [Aborted] discards the incarnation's accesses). The
    result feeds [Analysis.History.make] with the values the engine
    actually served — unlike the single-version replay of
    [Analysis.History.of_steps], which would misreport snapshot
    reads. *)
