(** Log₂-bucketed histograms over non-negative integers (latencies in
    driver events or scaled time units), with mergeable counters.

    Bucket [0] holds the value [0]; bucket [k >= 1] holds the values in
    [[2^(k-1), 2^k - 1]]. Merging is pointwise addition, so histograms
    recorded independently (per shard, per scheduler, per round) combine
    associatively and commutatively — the property the tests pin. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Raises [Invalid_argument] on a negative value. *)

val count : t -> int
(** Number of recorded values. *)

val total : t -> int
(** Exact sum of recorded values (not bucketed). *)

val mean : t -> float
(** [0.] when empty. *)

val merge : t -> t -> t
(** A fresh histogram; inputs unchanged. *)

val equal : t -> t -> bool

val bucket_of : int -> int
(** The bucket index a value lands in. *)

val bounds : int -> int * int
(** [(lo, hi)] of a bucket, inclusive. *)

val buckets : t -> (int * int * int) list
(** Non-empty buckets as [(lo, hi, count)], in increasing order. *)

val quantile : t -> float -> int option
(** [quantile t q] is the inclusive upper bound of the first bucket at
    which the cumulative count reaches [max 1 (ceil (q * count))] —
    an upper bound on the q-quantile of the recorded values. [None]
    when empty; [q] is clamped to [0, 1]. *)

val pp : Format.formatter -> t -> unit
