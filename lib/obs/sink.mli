(** Event sinks: where components put their {!Event.t}s.

    The contract that keeps the hot path hot: a disabled sink costs one
    load-and-branch per emission site and {e nothing else} — callers
    must guard event construction with {!on} so that no event is even
    allocated when tracing is off:

    {[
      if Obs.Sink.on sink then
        Obs.Sink.record sink (Obs.Event.Granted { tx; idx })
    ]}

    Sinks carry a current timestamp ({!set_now}) maintained by whoever
    owns the clock (the driver's event counter, the simulation's
    virtual time), so that components without a clock of their own
    (schedulers) can still emit correctly stamped events. *)

type t = {
  mutable now : float;
  emit : float -> Event.t -> unit;
  enabled : bool;
}

val null : t
(** The no-op sink: [on null = false], emissions vanish. *)

val on : t -> bool
(** Whether the sink records anything. Guard event construction on it. *)

val set_now : t -> float -> unit
(** Advance the sink's clock. No-op on a disabled sink. *)

val record : t -> Event.t -> unit
(** Emit at the sink's current clock. No-op on a disabled sink. *)

val record_at : t -> float -> Event.t -> unit
(** Emit at an explicit timestamp (for components that manage their own
    clock, like the discrete-event simulation). *)

(** Unbounded in-memory collector, for exact folds over complete
    traces (tests, measurement). *)
module Memory : sig
  type collector

  val create : unit -> collector
  val sink : collector -> t
  val events : collector -> (float * Event.t) list
  (** In emission order. *)

  val length : collector -> int
  val clear : collector -> unit
end

(** Fixed-capacity ring buffer: keeps the {e latest} [capacity] events,
    counts what it had to drop. The production-shaped sink — bounded
    memory no matter how long the run. *)
module Ring : sig
  type buf

  val create : capacity:int -> buf
  (** Raises [Invalid_argument] when [capacity <= 0]. *)

  val sink : buf -> t

  val events : buf -> (float * Event.t) list
  (** Oldest retained first, i.e. the last [min length capacity]
      emissions in order. *)

  val length : buf -> int
  val capacity : buf -> int

  val dropped : buf -> int
  (** Emissions overwritten because the buffer was full. *)

  val clear : buf -> unit
  (** Empty the buffer and reset the drop counter. *)
end
