(** The observability vocabulary: one structured event per interesting
    moment of a request's lifecycle, plus scheduler-internal events.

    The request lifecycle is
    [Submitted -> (Delayed ->)* Granted -> Executed -> ... -> Committed]
    with [Aborted]/[Restarted] interposed when a scheduler or the
    deadlock resolver kills an incarnation. Scheduler-internal events
    (SGT conflict-edge additions and cycle refusals, lock-respecting
    acquire/release and wound decisions, timestamp-watermark refusals)
    share the stream so a single trace tells the whole story.

    Events carry no timestamps; the {!Sink} stamps them with the clock
    of whatever component emits (driver event counter or simulated
    time). *)

type abort_reason =
  | Deadlock        (** victim named while resolving a stall *)
  | Scheduler_abort (** the scheduler answered a request with [Abort] *)

type twopc_payload =
  | Prepare           (** coordinator asks a participant to vote *)
  | Vote of bool      (** participant's vote ([true] = yes, forced-logged) *)
  | Decision of bool  (** coordinator's outcome ([true] = commit) *)
  | Ack               (** participant acknowledged a commit decision *)
  | Decision_req      (** in-doubt participant asks for the outcome *)
      (** Payload of a two-phase-commit message, as recorded in
          {!Twopc_sent}/{!Twopc_delivered}. *)

type t =
  | Submitted of { tx : int; idx : int }  (** request entered the system *)
  | Delayed of { tx : int; idx : int }
      (** a [Delay] verdict — re-attempts of a parked request emit one
          event each, mirroring the driver's delay counter *)
  | Granted of { tx : int; idx : int }
  | Executed of { tx : int; idx : int }   (** the granted step finished *)
  | Committed of { tx : int }             (** final step executed *)
  | Aborted of { tx : int; reason : abort_reason }
  | Restarted of { tx : int }             (** new incarnation begins *)
  | Edge_added of { src : int; dst : int }
      (** SGT admitted a conflict edge [src -> dst] *)
  | Cycle_refused of { tx : int; idx : int }
      (** SGT refused a request because it would close a cycle (fresh
          graph searches only; cached re-verdicts emit {!Delayed} via
          the driver) *)
  | Commute_pass of { tx : int; idx : int; skipped : int }
      (** the semantic scheduler granted a step although [skipped]
          earlier same-variable accesses of other transactions were on
          the books — every one of them commutes with the step's op, so
          no conflict edge (and no coordination) was needed *)
  | Lock_acquired of { tx : int; lock : string }
  | Lock_released of { tx : int; lock : string }
  | Wound of { victim : int }
      (** a lock scheduler named a wait-for-cycle victim *)
  | Ts_refused of { tx : int; idx : int }
      (** timestamp-ordering watermark refusal (leads to an abort) *)
  | Shard_routed of { tx : int; idx : int; shard : int }
      (** the sharded engine routed a fresh request for [tx.idx] to
          shard [shard] (cached delay re-verdicts stay silent) *)
  | Snapshot_taken of { tx : int; ts : int }
      (** a multi-version engine pinned [tx]'s snapshot at commit
          timestamp [ts] (its first step; re-emitted after restarts) *)
  | Version_read of { tx : int; var : string; value : int }
      (** [tx] read [value] for [var] — its own write buffer first,
          else the newest committed version at or before its snapshot *)
  | Version_installed of { tx : int; var : string; value : int }
      (** [tx] buffered a fresh version of [var]; emitted at the step
          (program order) though it becomes visible at commit *)
  | Ww_refused of { tx : int; var : string }
      (** first-committer-wins: an overlapping committed writer of
          [var] forces [tx] to abort (leads to an abort) *)
  | Pivot_refused of { tx : int; cyclic : bool }
      (** SSI found [tx] pivot of a Fekete dangerous structure
          (rw-antidependency in and out); [cyclic] reports whether the
          shadow serialization graph actually closed a cycle — [false]
          marks a false-positive abort *)
  | Twopc_sent of { tx : int; src : int; dst : int; msg : twopc_payload }
      (** a 2PC message for [tx]'s commit round left node [src] towards
          node [dst] (participants are numbered from 0; the coordinator
          is the highest node id of the round's cluster) *)
  | Twopc_delivered of { tx : int; src : int; dst : int; msg : twopc_payload }
      (** the message arrived and was processed by [dst] (messages to
          crashed nodes are dropped and emit no delivery) *)
  | Twopc_decided of { tx : int; node : int; commit : bool }
      (** [node] durably decided [tx]'s outcome — every node of a round
          emits at most one, so conflicting values are an AC1/AC2
          violation on their face *)
  | Twopc_timeout of { tx : int; node : int; timer : string }
      (** a protocol timer fired at [node]; [timer] is one of
          ["prepare"], ["vote"], ["decision"], ["ack"] *)
  | Node_crashed of { tx : int; node : int }
      (** [node] crashed during [tx]'s commit round, losing volatile
          state and pending timers (its persistent log survives) *)
  | Node_recovered of { tx : int; node : int }
      (** [node] restarted and ran presumed-abort recovery from its log *)

val tx : t -> int option
(** The transaction a lifecycle event belongs to; [None] for
    {!Edge_added}, {!Wound}, {!Shard_routed} and the 2PC/crash events,
    which concern the scheduler itself (they export on the scheduler
    track, track 0). The multi-version events all carry their
    transaction. *)

val payload_to_string : twopc_payload -> string
(** Wire token of a 2PC payload — ["prepare"], ["vote-yes"],
    ["vote-no"], ["commit"], ["abort"], ["ack"], ["decision-req"] — as
    used by {!Event_log} and the trace exporter. *)

val payload_of_string : string -> twopc_payload option
(** Inverse of {!payload_to_string}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
