(* 63 buckets cover every non-negative OCaml int on 64-bit. *)
let n_buckets = 63

type t = {
  mutable n : int;
  mutable sum : int;
  counts : int array;
}

let create () = { n = 0; sum = 0; counts = Array.make n_buckets 0 }

let bucket_of v =
  if v < 0 then invalid_arg "Obs.Hist.bucket_of: negative value";
  let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
  go 0 v

let bounds k =
  if k < 0 || k >= n_buckets then invalid_arg "Obs.Hist.bounds";
  if k = 0 then (0, 0) else (1 lsl (k - 1), (1 lsl k) - 1)

let add t v =
  if v < 0 then invalid_arg "Obs.Hist.add: negative value";
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

let merge a b =
  {
    n = a.n + b.n;
    sum = a.sum + b.sum;
    counts = Array.init n_buckets (fun k -> a.counts.(k) + b.counts.(k));
  }

let equal a b = a.n = b.n && a.sum = b.sum && a.counts = b.counts

let buckets t =
  let acc = ref [] in
  for k = n_buckets - 1 downto 0 do
    if t.counts.(k) > 0 then
      let lo, hi = bounds k in
      acc := (lo, hi, t.counts.(k)) :: !acc
  done;
  !acc

let quantile t q =
  if t.n = 0 then None
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let target = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
    let rec go k cum =
      let cum = cum + t.counts.(k) in
      if cum >= target then Some (snd (bounds k)) else go (k + 1) cum
    in
    go 0 0
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.2f" t.n (mean t);
  List.iter
    (fun (lo, hi, c) -> Format.fprintf ppf " [%d,%d]:%d" lo hi c)
    (buckets t)
