type t = {
  mutable now : float;
  emit : float -> Event.t -> unit;
  enabled : bool;
}

let null = { now = 0.; emit = (fun _ _ -> ()); enabled = false }
let on t = t.enabled
let set_now t ts = if t.enabled then t.now <- ts
let record t ev = if t.enabled then t.emit t.now ev
let record_at t ts ev = if t.enabled then t.emit ts ev

module Memory = struct
  type collector = {
    mutable rev : (float * Event.t) list;
    mutable n : int;
  }

  let create () = { rev = []; n = 0 }

  let sink c =
    {
      now = 0.;
      emit =
        (fun ts ev ->
          c.rev <- (ts, ev) :: c.rev;
          c.n <- c.n + 1);
      enabled = true;
    }

  let events c = List.rev c.rev
  let length c = c.n

  let clear c =
    c.rev <- [];
    c.n <- 0
end

module Ring = struct
  type buf = {
    data : (float * Event.t) array;
    cap : int;
    mutable len : int;
    mutable head : int; (* index of the oldest retained entry *)
    mutable lost : int;
  }

  let dummy = (0., Event.Committed { tx = -1 })

  let create ~capacity =
    if capacity <= 0 then
      invalid_arg "Obs.Sink.Ring.create: capacity must be positive";
    { data = Array.make capacity dummy; cap = capacity; len = 0; head = 0;
      lost = 0 }

  let push b ts ev =
    if b.len < b.cap then begin
      b.data.((b.head + b.len) mod b.cap) <- (ts, ev);
      b.len <- b.len + 1
    end
    else begin
      (* full: the incoming event replaces the oldest one *)
      b.data.(b.head) <- (ts, ev);
      b.head <- (b.head + 1) mod b.cap;
      b.lost <- b.lost + 1
    end

  let sink b = { now = 0.; emit = push b; enabled = true }
  let events b = List.init b.len (fun k -> b.data.((b.head + k) mod b.cap))
  let length b = b.len
  let capacity b = b.cap
  let dropped b = b.lost

  let clear b =
    b.len <- 0;
    b.head <- 0;
    b.lost <- 0
end
