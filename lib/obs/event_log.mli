(** A plain-text, line-oriented serialization of event traces — the
    recorded-trace artifact behind [ccopt trace --out] / [ccopt check
    --trace].

    The Chrome export ({!Trace_export}) is for humans in a trace viewer
    and is lossy (wait spans are merged, execution events drop their
    step index); this format is for machines and round-trips exactly:
    [parse (to_string ~dropped es) = Ok (es, dropped)] for every event
    list, including timestamps (printed with 17 significant digits).

    Layout: a header line [# ccopt-events 1] (the trailing integer is
    the format version), a [# dropped N] line carrying the ring
    buffer's overwrite count (so a reader can tell a complete witness
    from a truncated one), then one event per line:

    {v
    # ccopt-events 1
    # dropped 0
    0 submitted tx=0 idx=0
    1 granted tx=0 idx=0
    2 executed tx=0 idx=0
    ...
    v} *)

val version : int
(** [1] — bumped on any change to the line grammar. *)

val to_string : ?dropped:int -> (float * Event.t) list -> string
(** Render a trace (default [dropped] 0). *)

val parse : string -> ((float * Event.t) list * int, string) result
(** Parse a rendered trace back; [Error] describes the first offending
    line. Unknown event names and malformed fields are errors — a
    reader must not silently checker-pass a trace it misread. Likewise
    structural damage: a duplicate [# dropped] header (concatenated or
    hand-edited logs) and a final line without its newline (a log
    truncated mid-write) are positioned errors, not best-effort
    guesses. *)
