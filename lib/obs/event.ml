type abort_reason = Deadlock | Scheduler_abort

type twopc_payload =
  | Prepare
  | Vote of bool
  | Decision of bool
  | Ack
  | Decision_req

type t =
  | Submitted of { tx : int; idx : int }
  | Delayed of { tx : int; idx : int }
  | Granted of { tx : int; idx : int }
  | Executed of { tx : int; idx : int }
  | Committed of { tx : int }
  | Aborted of { tx : int; reason : abort_reason }
  | Restarted of { tx : int }
  | Edge_added of { src : int; dst : int }
  | Cycle_refused of { tx : int; idx : int }
  | Commute_pass of { tx : int; idx : int; skipped : int }
  | Lock_acquired of { tx : int; lock : string }
  | Lock_released of { tx : int; lock : string }
  | Wound of { victim : int }
  | Ts_refused of { tx : int; idx : int }
  | Shard_routed of { tx : int; idx : int; shard : int }
  | Snapshot_taken of { tx : int; ts : int }
  | Version_read of { tx : int; var : string; value : int }
  | Version_installed of { tx : int; var : string; value : int }
  | Ww_refused of { tx : int; var : string }
  | Pivot_refused of { tx : int; cyclic : bool }
  | Twopc_sent of { tx : int; src : int; dst : int; msg : twopc_payload }
  | Twopc_delivered of { tx : int; src : int; dst : int; msg : twopc_payload }
  | Twopc_decided of { tx : int; node : int; commit : bool }
  | Twopc_timeout of { tx : int; node : int; timer : string }
  | Node_crashed of { tx : int; node : int }
  | Node_recovered of { tx : int; node : int }

let tx = function
  | Submitted { tx; _ }
  | Delayed { tx; _ }
  | Granted { tx; _ }
  | Executed { tx; _ }
  | Committed { tx }
  | Aborted { tx; _ }
  | Restarted { tx }
  | Cycle_refused { tx; _ }
  | Commute_pass { tx; _ }
  | Lock_acquired { tx; _ }
  | Lock_released { tx; _ }
  | Ts_refused { tx; _ }
  | Snapshot_taken { tx; _ }
  | Version_read { tx; _ }
  | Version_installed { tx; _ }
  | Ww_refused { tx; _ }
  | Pivot_refused { tx; _ } -> Some tx
  | Edge_added _ | Wound _ | Shard_routed _ | Twopc_sent _
  | Twopc_delivered _ | Twopc_decided _ | Twopc_timeout _ | Node_crashed _
  | Node_recovered _ -> None

let payload_to_string = function
  | Prepare -> "prepare"
  | Vote true -> "vote-yes"
  | Vote false -> "vote-no"
  | Decision true -> "commit"
  | Decision false -> "abort"
  | Ack -> "ack"
  | Decision_req -> "decision-req"

let payload_of_string = function
  | "prepare" -> Some Prepare
  | "vote-yes" -> Some (Vote true)
  | "vote-no" -> Some (Vote false)
  | "commit" -> Some (Decision true)
  | "abort" -> Some (Decision false)
  | "ack" -> Some Ack
  | "decision-req" -> Some Decision_req
  | _ -> None

let pp ppf = function
  | Submitted { tx; idx } -> Format.fprintf ppf "submit T%d.%d" (tx + 1) idx
  | Delayed { tx; idx } -> Format.fprintf ppf "delay T%d.%d" (tx + 1) idx
  | Granted { tx; idx } -> Format.fprintf ppf "grant T%d.%d" (tx + 1) idx
  | Executed { tx; idx } -> Format.fprintf ppf "exec T%d.%d" (tx + 1) idx
  | Committed { tx } -> Format.fprintf ppf "commit T%d" (tx + 1)
  | Aborted { tx; reason = Deadlock } ->
    Format.fprintf ppf "abort T%d (deadlock)" (tx + 1)
  | Aborted { tx; reason = Scheduler_abort } ->
    Format.fprintf ppf "abort T%d (scheduler)" (tx + 1)
  | Restarted { tx } -> Format.fprintf ppf "restart T%d" (tx + 1)
  | Edge_added { src; dst } ->
    Format.fprintf ppf "edge T%d->T%d" (src + 1) (dst + 1)
  | Cycle_refused { tx; idx } ->
    Format.fprintf ppf "cycle-refused T%d.%d" (tx + 1) idx
  | Commute_pass { tx; idx; skipped } ->
    Format.fprintf ppf "commute-pass T%d.%d skipped=%d" (tx + 1) idx skipped
  | Lock_acquired { tx; lock } ->
    Format.fprintf ppf "lock T%d %s" (tx + 1) lock
  | Lock_released { tx; lock } ->
    Format.fprintf ppf "unlock T%d %s" (tx + 1) lock
  | Wound { victim } -> Format.fprintf ppf "wound T%d" (victim + 1)
  | Ts_refused { tx; idx } ->
    Format.fprintf ppf "ts-refused T%d.%d" (tx + 1) idx
  | Shard_routed { tx; idx; shard } ->
    Format.fprintf ppf "shard T%d.%d->S%d" (tx + 1) idx shard
  | Snapshot_taken { tx; ts } ->
    Format.fprintf ppf "snapshot T%d @%d" (tx + 1) ts
  | Version_read { tx; var; value } ->
    Format.fprintf ppf "vread T%d %s=%d" (tx + 1) var value
  | Version_installed { tx; var; value } ->
    Format.fprintf ppf "vinstall T%d %s=%d" (tx + 1) var value
  | Ww_refused { tx; var } ->
    Format.fprintf ppf "ww-refused T%d %s" (tx + 1) var
  | Pivot_refused { tx; cyclic } ->
    Format.fprintf ppf "pivot-refused T%d%s" (tx + 1)
      (if cyclic then " (cyclic)" else " (false-positive)")
  | Twopc_sent { tx; src; dst; msg } ->
    Format.fprintf ppf "2pc-send T%d %d->%d %s" (tx + 1) src dst
      (payload_to_string msg)
  | Twopc_delivered { tx; src; dst; msg } ->
    Format.fprintf ppf "2pc-recv T%d %d->%d %s" (tx + 1) src dst
      (payload_to_string msg)
  | Twopc_decided { tx; node; commit } ->
    Format.fprintf ppf "2pc-decided T%d node=%d %s" (tx + 1) node
      (if commit then "commit" else "abort")
  | Twopc_timeout { tx; node; timer } ->
    Format.fprintf ppf "2pc-timeout T%d node=%d %s" (tx + 1) node timer
  | Node_crashed { tx; node } ->
    Format.fprintf ppf "crash T%d node=%d" (tx + 1) node
  | Node_recovered { tx; node } ->
    Format.fprintf ppf "recover T%d node=%d" (tx + 1) node

let to_string ev = Format.asprintf "%a" pp ev
