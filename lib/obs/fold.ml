type counters = {
  submits : int;
  grants : int;
  delays : int;
  restarts : int;
  deadlocks : int;
  commits : int;
  waiting : int;
}

(* Per-transaction FIFO of submission timestamps, mirroring the
   driver's submission ring: grants pop in order, aborts leave pending
   submissions in place (the replayed steps are re-submitted as fresh
   events). *)
let submit_queues () : (int, float Queue.t) Hashtbl.t = Hashtbl.create 16

let queue_of qs tx =
  match Hashtbl.find_opt qs tx with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add qs tx q;
    q

let fold_grants events ~on_grant =
  let qs = submit_queues () in
  List.iter
    (fun (ts, ev) ->
      match (ev : Event.t) with
      | Submitted { tx; _ } -> Queue.add ts (queue_of qs tx)
      | Granted { tx; _ } -> (
        (* a grant with no recorded submission means the trace starts
           mid-stream (ring truncation): no waiting observation *)
        match Queue.take_opt (queue_of qs tx) with
        | Some s -> on_grant (int_of_float (ts -. s))
        | None -> ())
      | _ -> ())
    events

let counters events =
  let c =
    ref
      {
        submits = 0;
        grants = 0;
        delays = 0;
        restarts = 0;
        deadlocks = 0;
        commits = 0;
        waiting = 0;
      }
  in
  let qs = submit_queues () in
  List.iter
    (fun (ts, ev) ->
      match (ev : Event.t) with
      | Submitted { tx; _ } ->
        Queue.add ts (queue_of qs tx);
        c := { !c with submits = !c.submits + 1 }
      | Granted { tx; _ } ->
        let w =
          match Queue.take_opt (queue_of qs tx) with
          | Some s -> int_of_float (ts -. s)
          | None -> 0 (* submission truncated away by the ring *)
        in
        c := { !c with grants = !c.grants + 1; waiting = !c.waiting + w }
      | Delayed _ -> c := { !c with delays = !c.delays + 1 }
      | Aborted { reason; _ } ->
        c :=
          {
            !c with
            restarts = !c.restarts + 1;
            deadlocks =
              (!c.deadlocks + match reason with
               | Event.Deadlock -> 1
               | Event.Scheduler_abort -> 0);
          }
      | Committed _ -> c := { !c with commits = !c.commits + 1 }
      | Executed _ | Restarted _ | Edge_added _ | Cycle_refused _ | Commute_pass _
      | Lock_acquired _ | Lock_released _ | Wound _ | Ts_refused _
      | Shard_routed _ | Snapshot_taken _ | Version_read _
      | Version_installed _ | Ww_refused _ | Pivot_refused _ | Twopc_sent _
      | Twopc_delivered _ | Twopc_decided _ | Twopc_timeout _
      | Node_crashed _ | Node_recovered _ -> ())
    events;
  !c

let zero_delay c = c.delays = 0 && c.restarts = 0

let spans ~n events =
  let sp = Span.create n in
  List.iter
    (fun (ts, ev) ->
      match (ev : Event.t) with
      | Submitted { tx; _ } ->
        (* only the first submission starts the clock; later arrivals
           leave the current phase alone *)
        if not (Span.started sp tx) then Span.enter sp tx ~now:ts Scheduling
      | Delayed { tx; _ } -> Span.enter sp tx ~now:ts Waiting
      | Granted { tx; _ } -> Span.enter sp tx ~now:ts Executing
      | Executed { tx; _ } -> Span.enter sp tx ~now:ts Scheduling
      | Aborted { tx; _ } -> Span.enter sp tx ~now:ts Scheduling
      | Committed { tx } ->
        (* a commit with no prior lifecycle event (truncated trace)
           carries no span information *)
        if Span.started sp tx then Span.finish sp tx ~now:ts
      | Restarted _ | Edge_added _ | Cycle_refused _ | Commute_pass _ | Lock_acquired _
      | Lock_released _ | Wound _ | Ts_refused _ | Shard_routed _
      | Snapshot_taken _ | Version_read _ | Version_installed _
      | Ww_refused _ | Pivot_refused _ | Twopc_sent _ | Twopc_delivered _
      | Twopc_decided _ | Twopc_timeout _ | Node_crashed _
      | Node_recovered _ -> ())
    events;
  sp

type history = {
  steps : (int * int) list;
  commits : int list;
  truncated : bool;
}

let history events =
  (* Per-transaction pending steps of the current incarnation, newest
     first, each stamped with a global sequence number so the committed
     steps can be merged back into execution order. *)
  let pending : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
  let pending_of tx =
    match Hashtbl.find_opt pending tx with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add pending tx r;
      r
  in
  let seq = ref 0 in
  let committed = ref [] in
  let commits = ref [] in
  let truncated = ref false in
  List.iter
    (fun (_, ev) ->
      match (ev : Event.t) with
      | Executed { tx; idx } ->
        let p = pending_of tx in
        (* a complete incarnation executes steps 0, 1, 2, ... in order;
           a gap means the ring dropped the incarnation's head *)
        if List.length !p <> idx then truncated := true;
        p := (!seq, idx) :: !p;
        incr seq
      | Aborted { tx; _ } -> (pending_of tx) := []
      | Committed { tx } ->
        let p = pending_of tx in
        if !p = [] then truncated := true
        else begin
          List.iter (fun (s, idx) -> committed := (s, tx, idx) :: !committed) !p;
          p := [];
          commits := tx :: !commits
        end
      | Submitted _ | Delayed _ | Granted _ | Restarted _ | Edge_added _
      | Cycle_refused _ | Commute_pass _ | Lock_acquired _ | Lock_released _ | Wound _
      | Ts_refused _ | Shard_routed _ | Snapshot_taken _ | Version_read _
      | Version_installed _ | Ww_refused _ | Pivot_refused _ | Twopc_sent _
      | Twopc_delivered _ | Twopc_decided _ | Twopc_timeout _
      | Node_crashed _ | Node_recovered _ -> ())
    events;
  {
    steps =
      List.map
        (fun (_, tx, idx) -> (tx, idx))
        (List.sort compare !committed);
    commits = List.sort_uniq compare !commits;
    truncated = !truncated;
  }

type mv_access = { write : bool; var : string; value : int }

type mv_history = {
  recorded : bool;
  txns : (int * mv_access list) list;
  mv_commits : int list;
  mv_truncated : bool;
}

let mv_history events =
  let recorded = ref false in
  let pending : (int, mv_access list ref) Hashtbl.t = Hashtbl.create 16 in
  let pending_of tx =
    match Hashtbl.find_opt pending tx with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add pending tx r;
      r
  in
  let committed = ref [] in
  let commits = ref [] in
  let truncated = ref false in
  List.iter
    (fun (_, ev) ->
      match (ev : Event.t) with
      | Version_read { tx; var; value } ->
        recorded := true;
        let p = pending_of tx in
        p := { write = false; var; value } :: !p
      | Version_installed { tx; var; value } ->
        recorded := true;
        let p = pending_of tx in
        p := { write = true; var; value } :: !p
      | Aborted { tx; _ } -> (pending_of tx) := []
      | Committed { tx } ->
        if !recorded then begin
          let p = pending_of tx in
          (* every multi-version step reads, so a committed transaction
             with no recorded accesses means the ring ate its head *)
          if !p = [] then truncated := true
          else begin
            committed := (tx, List.rev !p) :: !committed;
            p := [];
            commits := tx :: !commits
          end
        end
      | Submitted _ | Delayed _ | Granted _ | Executed _ | Restarted _
      | Edge_added _ | Cycle_refused _ | Commute_pass _ | Lock_acquired _ | Lock_released _
      | Wound _ | Ts_refused _ | Shard_routed _ | Snapshot_taken _
      | Ww_refused _ | Pivot_refused _ | Twopc_sent _ | Twopc_delivered _
      | Twopc_decided _ | Twopc_timeout _ | Node_crashed _
      | Node_recovered _ -> ())
    events;
  {
    recorded = !recorded;
    txns = List.sort compare !committed;
    mv_commits = List.sort_uniq compare !commits;
    mv_truncated = !truncated;
  }

let blocking_windows events =
  (* In-doubt start per (tx, node): a participant enters the window when
     its yes-vote leaves (the forced log write and the send share the
     handler step), and leaves it at its own decision event. First vote
     opens, first decision closes; a later round of the same transaction
     (after an abort + restart) opens a fresh window and the maximum is
     kept. *)
  let doubt : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  let acc : (int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ts, ev) ->
      match (ev : Event.t) with
      | Twopc_sent { tx; src; msg = Vote true; _ } ->
        if not (Hashtbl.mem doubt (tx, src)) then Hashtbl.add doubt (tx, src) ts
      | Twopc_decided { tx; node; _ } -> (
        match Hashtbl.find_opt doubt (tx, node) with
        | None -> ()
        | Some t0 ->
          Hashtbl.remove doubt (tx, node);
          let w = ts -. t0 in
          let cur =
            match Hashtbl.find_opt acc tx with Some c -> c | None -> 0.
          in
          if w > cur then Hashtbl.replace acc tx w)
      | _ -> ())
    events;
  List.sort compare (Hashtbl.fold (fun tx w l -> (tx, w) :: l) acc [])

let grant_waits events =
  let acc = ref [] in
  fold_grants events ~on_grant:(fun w -> acc := w :: !acc);
  List.rev !acc

let wait_histogram events =
  let h = Hist.create () in
  fold_grants events ~on_grant:(Hist.add h);
  h
