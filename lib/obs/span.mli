(** Per-transaction span accounting — the paper's §6 decomposition of a
    transaction's elapsed time into {e scheduling}, {e waiting} and
    {e execution} time.

    A transaction's life from first submission to commit is attributed
    to exactly one phase at every instant: it is {e scheduling} while a
    request sits in the scheduler's queue awaiting a verdict (or the
    transaction idles between steps), {e waiting} while parked by a
    [Delay] verdict, and {e executing} while a granted step runs.
    Because phases partition the timeline, the invariant

    [scheduling + waiting + execution = elapsed]

    holds per transaction by construction — the property test's anchor.
    Restarts do not reset a span: redone work is counted where it is
    spent, and [elapsed] runs to the final commit. *)

type phase = Scheduling | Waiting | Executing
type t

val create : int -> t
(** One span per transaction, all unstarted. *)

val n : t -> int

val started : t -> int -> bool
(** Whether the transaction's span has begun (first {!enter}). *)

val enter : t -> int -> now:float -> phase -> unit
(** Close the current phase at [now] (crediting its accumulator) and
    open [phase]. The first [enter] starts the span's clock. [now] must
    be monotone per transaction; raises [Invalid_argument] on a
    backwards clock or on entering a finished span. *)

val finish : t -> int -> now:float -> unit
(** Close the current phase and freeze the span; [elapsed] becomes
    [now - start]. *)

type breakdown = {
  scheduling : float;
  waiting : float;
  execution : float;
  elapsed : float;
}

val breakdown : t -> int -> breakdown
(** All zero for a never-started transaction; [elapsed] of an
    unfinished span reads up to the last phase change. *)

val totals : t -> breakdown
(** Componentwise sum over all transactions. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
