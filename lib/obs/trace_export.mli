(** Chrome-trace-format ([trace_event]) export, loadable in
    [about://tracing] / Perfetto.

    Each transaction gets a track ([tid = tx + 1]); scheduler-internal
    events (conflict edges, wound decisions) live on track 0. Waiting
    periods render as [B]/[E] duration pairs named ["wait"], granted
    executions as ["exec"] pairs, everything else as instants. The
    exporter guarantees (and the tests check): every [B] has a matching
    [E] with the same name on the same track, and timestamps are
    non-decreasing per track. *)

type value = Int of int | Str of string

type entry = {
  name : string;
  cat : string;
  ph : char;  (** 'B', 'E', 'i' (instant) or 'M' (metadata) *)
  ts : float;
  pid : int;
  tid : int;
  args : (string * value) list;
}

val entries : (float * Event.t) list -> entry list
(** The structured form: metadata (track names) first, then the trace,
    stable-sorted by timestamp. Unclosed spans (a trace cut short by a
    ring buffer) are closed at the final timestamp. *)

val chrome : (float * Event.t) list -> string
(** [entries] rendered as the JSON object
    [{"displayTimeUnit": ..., "traceEvents": [...]}]. Deterministic:
    equal traces render byte-identically. *)

val chrome_of_entries : entry list -> string
