type phase = Scheduling | Waiting | Executing

type cell = {
  mutable active : bool;
  mutable finished : bool;
  mutable start : float;
  mutable last : float;         (* end of the last closed phase *)
  mutable current : phase;      (* meaningful when active && not finished *)
  mutable scheduling : float;
  mutable waiting : float;
  mutable execution : float;
}

type t = cell array

let fresh () =
  {
    active = false;
    finished = false;
    start = 0.;
    last = 0.;
    current = Scheduling;
    scheduling = 0.;
    waiting = 0.;
    execution = 0.;
  }

let create n = Array.init n (fun _ -> fresh ())
let n t = Array.length t
let started t i = t.(i).active

(* Credit [now - last] to the open phase. The elapsed invariant is
   structural: every credited interval abuts the previous one, so the
   three accumulators tile [start, last] exactly. *)
let close c ~now =
  if now < c.last then invalid_arg "Obs.Span: clock moved backwards";
  let d = now -. c.last in
  (match c.current with
  | Scheduling -> c.scheduling <- c.scheduling +. d
  | Waiting -> c.waiting <- c.waiting +. d
  | Executing -> c.execution <- c.execution +. d);
  c.last <- now

let enter t i ~now phase =
  let c = t.(i) in
  if c.finished then invalid_arg "Obs.Span.enter: span already finished";
  if not c.active then begin
    c.active <- true;
    c.start <- now;
    c.last <- now
  end;
  close c ~now;
  c.current <- phase

let finish t i ~now =
  let c = t.(i) in
  if c.finished then invalid_arg "Obs.Span.finish: span already finished";
  if not c.active then invalid_arg "Obs.Span.finish: span never started";
  close c ~now;
  c.finished <- true

type breakdown = {
  scheduling : float;
  waiting : float;
  execution : float;
  elapsed : float;
}

let breakdown t i =
  let c : cell = t.(i) in
  {
    scheduling = c.scheduling;
    waiting = c.waiting;
    execution = c.execution;
    elapsed = (if c.active then c.last -. c.start else 0.);
  }

let totals t =
  Array.fold_left
    (fun acc (c : cell) ->
      {
        scheduling = acc.scheduling +. c.scheduling;
        waiting = acc.waiting +. c.waiting;
        execution = acc.execution +. c.execution;
        elapsed =
          acc.elapsed +. (if c.active then c.last -. c.start else 0.);
      })
    { scheduling = 0.; waiting = 0.; execution = 0.; elapsed = 0. }
    t

let pp_breakdown ppf b =
  Format.fprintf ppf "sched %.2f + wait %.2f + exec %.2f = %.2f" b.scheduling
    b.waiting b.execution b.elapsed
