let version = 1

(* Timestamps are IEEE doubles in disguise (driver event counters,
   simulated clocks); 17 significant digits round-trip any of them. *)
let ts_string ts = Printf.sprintf "%.17g" ts

let line_of (ts, (ev : Event.t)) =
  let t = ts_string ts in
  match ev with
  | Submitted { tx; idx } -> Printf.sprintf "%s submitted tx=%d idx=%d" t tx idx
  | Delayed { tx; idx } -> Printf.sprintf "%s delayed tx=%d idx=%d" t tx idx
  | Granted { tx; idx } -> Printf.sprintf "%s granted tx=%d idx=%d" t tx idx
  | Executed { tx; idx } -> Printf.sprintf "%s executed tx=%d idx=%d" t tx idx
  | Committed { tx } -> Printf.sprintf "%s committed tx=%d" t tx
  | Aborted { tx; reason } ->
    Printf.sprintf "%s aborted tx=%d reason=%s" t tx
      (match reason with
      | Event.Deadlock -> "deadlock"
      | Event.Scheduler_abort -> "scheduler")
  | Restarted { tx } -> Printf.sprintf "%s restarted tx=%d" t tx
  | Edge_added { src; dst } ->
    Printf.sprintf "%s edge-added src=%d dst=%d" t src dst
  | Cycle_refused { tx; idx } ->
    Printf.sprintf "%s cycle-refused tx=%d idx=%d" t tx idx
  | Commute_pass { tx; idx; skipped } ->
    Printf.sprintf "%s commute-pass tx=%d idx=%d skipped=%d" t tx idx skipped
  | Lock_acquired { tx; lock } ->
    Printf.sprintf "%s lock-acquired tx=%d lock=%s" t tx lock
  | Lock_released { tx; lock } ->
    Printf.sprintf "%s lock-released tx=%d lock=%s" t tx lock
  | Wound { victim } -> Printf.sprintf "%s wound victim=%d" t victim
  | Ts_refused { tx; idx } ->
    Printf.sprintf "%s ts-refused tx=%d idx=%d" t tx idx
  | Shard_routed { tx; idx; shard } ->
    Printf.sprintf "%s shard-routed tx=%d idx=%d shard=%d" t tx idx shard
  | Snapshot_taken { tx; ts } ->
    Printf.sprintf "%s snapshot-taken tx=%d ts=%d" t tx ts
  | Version_read { tx; var; value } ->
    Printf.sprintf "%s version-read tx=%d var=%s value=%d" t tx var value
  | Version_installed { tx; var; value } ->
    Printf.sprintf "%s version-installed tx=%d var=%s value=%d" t tx var value
  | Ww_refused { tx; var } ->
    Printf.sprintf "%s ww-refused tx=%d var=%s" t tx var
  | Pivot_refused { tx; cyclic } ->
    Printf.sprintf "%s pivot-refused tx=%d cyclic=%b" t tx cyclic
  | Twopc_sent { tx; src; dst; msg } ->
    Printf.sprintf "%s twopc-sent tx=%d src=%d dst=%d msg=%s" t tx src dst
      (Event.payload_to_string msg)
  | Twopc_delivered { tx; src; dst; msg } ->
    Printf.sprintf "%s twopc-delivered tx=%d src=%d dst=%d msg=%s" t tx src dst
      (Event.payload_to_string msg)
  | Twopc_decided { tx; node; commit } ->
    Printf.sprintf "%s twopc-decided tx=%d node=%d commit=%b" t tx node commit
  | Twopc_timeout { tx; node; timer } ->
    Printf.sprintf "%s twopc-timeout tx=%d node=%d timer=%s" t tx node timer
  | Node_crashed { tx; node } ->
    Printf.sprintf "%s node-crashed tx=%d node=%d" t tx node
  | Node_recovered { tx; node } ->
    Printf.sprintf "%s node-recovered tx=%d node=%d" t tx node

let to_string ?(dropped = 0) events =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "# ccopt-events %d\n" version);
  Buffer.add_string b (Printf.sprintf "# dropped %d\n" dropped);
  List.iter
    (fun e ->
      Buffer.add_string b (line_of e);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

(* ---------- parsing ---------- *)

(* Lock names may contain anything but whitespace (the emitters use
   variable names); field values are split on the first '='. *)
let field fields key =
  let prefix = key ^ "=" in
  let pl = String.length prefix in
  match
    List.find_opt
      (fun f -> String.length f >= pl && String.sub f 0 pl = prefix)
      fields
  with
  | Some f -> Ok (String.sub f pl (String.length f - pl))
  | None -> Error (Printf.sprintf "missing field %s" key)

let int_field fields key =
  Result.bind (field fields key) (fun v ->
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "field %s: bad integer %S" key v))

let ( let* ) = Result.bind

let event_of_line line =
  match String.split_on_char ' ' line with
  | ts :: name :: fields -> (
    let* ts =
      match float_of_string_opt ts with
      | Some t -> Ok t
      | None -> Error (Printf.sprintf "bad timestamp %S" ts)
    in
    let tx () = int_field fields "tx" in
    let idx () = int_field fields "idx" in
    let* ev =
      match name with
      | "submitted" ->
        let* tx = tx () in
        let* idx = idx () in
        Ok (Event.Submitted { tx; idx })
      | "delayed" ->
        let* tx = tx () in
        let* idx = idx () in
        Ok (Event.Delayed { tx; idx })
      | "granted" ->
        let* tx = tx () in
        let* idx = idx () in
        Ok (Event.Granted { tx; idx })
      | "executed" ->
        let* tx = tx () in
        let* idx = idx () in
        Ok (Event.Executed { tx; idx })
      | "committed" ->
        let* tx = tx () in
        Ok (Event.Committed { tx })
      | "aborted" ->
        let* tx = tx () in
        let* reason = field fields "reason" in
        let* reason =
          match reason with
          | "deadlock" -> Ok Event.Deadlock
          | "scheduler" -> Ok Event.Scheduler_abort
          | r -> Error (Printf.sprintf "unknown abort reason %S" r)
        in
        Ok (Event.Aborted { tx; reason })
      | "restarted" ->
        let* tx = tx () in
        Ok (Event.Restarted { tx })
      | "edge-added" ->
        let* src = int_field fields "src" in
        let* dst = int_field fields "dst" in
        Ok (Event.Edge_added { src; dst })
      | "cycle-refused" ->
        let* tx = tx () in
        let* idx = idx () in
        Ok (Event.Cycle_refused { tx; idx })
      | "commute-pass" ->
        let* tx = tx () in
        let* idx = idx () in
        let* skipped = int_field fields "skipped" in
        Ok (Event.Commute_pass { tx; idx; skipped })
      | "lock-acquired" ->
        let* tx = tx () in
        let* lock = field fields "lock" in
        Ok (Event.Lock_acquired { tx; lock })
      | "lock-released" ->
        let* tx = tx () in
        let* lock = field fields "lock" in
        Ok (Event.Lock_released { tx; lock })
      | "wound" ->
        let* victim = int_field fields "victim" in
        Ok (Event.Wound { victim })
      | "ts-refused" ->
        let* tx = tx () in
        let* idx = idx () in
        Ok (Event.Ts_refused { tx; idx })
      | "shard-routed" ->
        let* tx = tx () in
        let* idx = idx () in
        let* shard = int_field fields "shard" in
        Ok (Event.Shard_routed { tx; idx; shard })
      | "snapshot-taken" ->
        let* tx = tx () in
        let* ts = int_field fields "ts" in
        Ok (Event.Snapshot_taken { tx; ts })
      | "version-read" ->
        let* tx = tx () in
        let* var = field fields "var" in
        let* value = int_field fields "value" in
        Ok (Event.Version_read { tx; var; value })
      | "version-installed" ->
        let* tx = tx () in
        let* var = field fields "var" in
        let* value = int_field fields "value" in
        Ok (Event.Version_installed { tx; var; value })
      | "ww-refused" ->
        let* tx = tx () in
        let* var = field fields "var" in
        Ok (Event.Ww_refused { tx; var })
      | "pivot-refused" ->
        let* tx = tx () in
        let* cyclic = field fields "cyclic" in
        let* cyclic =
          match cyclic with
          | "true" -> Ok true
          | "false" -> Ok false
          | c -> Error (Printf.sprintf "field cyclic: bad boolean %S" c)
        in
        Ok (Event.Pivot_refused { tx; cyclic })
      | "twopc-sent" | "twopc-delivered" ->
        let* tx = tx () in
        let* src = int_field fields "src" in
        let* dst = int_field fields "dst" in
        let* msg = field fields "msg" in
        let* msg =
          match Event.payload_of_string msg with
          | Some m -> Ok m
          | None -> Error (Printf.sprintf "field msg: bad payload %S" msg)
        in
        Ok
          (if name = "twopc-sent" then Event.Twopc_sent { tx; src; dst; msg }
           else Event.Twopc_delivered { tx; src; dst; msg })
      | "twopc-decided" ->
        let* tx = tx () in
        let* node = int_field fields "node" in
        let* commit = field fields "commit" in
        let* commit =
          match commit with
          | "true" -> Ok true
          | "false" -> Ok false
          | c -> Error (Printf.sprintf "field commit: bad boolean %S" c)
        in
        Ok (Event.Twopc_decided { tx; node; commit })
      | "twopc-timeout" ->
        let* tx = tx () in
        let* node = int_field fields "node" in
        let* timer = field fields "timer" in
        Ok (Event.Twopc_timeout { tx; node; timer })
      | "node-crashed" ->
        let* tx = tx () in
        let* node = int_field fields "node" in
        Ok (Event.Node_crashed { tx; node })
      | "node-recovered" ->
        let* tx = tx () in
        let* node = int_field fields "node" in
        Ok (Event.Node_recovered { tx; node })
      | name -> Error (Printf.sprintf "unknown event %S" name)
    in
    Ok (ts, ev))
  | _ -> Error "malformed line"

let parse s =
  let lines = String.split_on_char '\n' s in
  let dropped = ref 0 in
  let dropped_seen = ref false in
  let header_seen = ref false in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc, !dropped)
    | line :: rest ->
      let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      (* A well-formed log ends in a newline, so the split yields a final
         empty element. A non-empty final element is a line the writer
         never finished — treating it as data would silently accept a
         truncated (mid-write, mid-copy) log. *)
      if rest = [] && line <> "" then
        err "missing trailing newline (truncated log?)"
      else if line = "" then go acc (lineno + 1) rest
      else if line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "ccopt-events"; v ] ->
          if int_of_string_opt v = Some version then begin
            header_seen := true;
            go acc (lineno + 1) rest
          end
          else err (Printf.sprintf "unsupported format version %s" v)
        | [ "#"; "dropped"; n ] -> (
          (* one writer, one drop counter: a second header means two logs
             were concatenated or the file was hand-edited — either way
             "last one wins" would silently misreport the drop count *)
          if !dropped_seen then err "duplicate # dropped header"
          else
            match int_of_string_opt n with
            | Some n when n >= 0 ->
              dropped := n;
              dropped_seen := true;
              go acc (lineno + 1) rest
            | _ -> err "bad dropped count")
        | _ -> go acc (lineno + 1) rest (* future metadata: ignore *)
      end
      else if not !header_seen then err "missing # ccopt-events header"
      else
        match event_of_line line with
        | Ok e -> go (e :: acc) (lineno + 1) rest
        | Error msg -> err msg
  in
  go [] 1 lines
