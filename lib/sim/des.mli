(** Discrete-event simulation of the Section 6 environment.

    Multiple users at terminals run transactions that arrive over time
    (Poisson); a single {e central} scheduler serves one decision at a
    time. The time to carry out a step splits exactly as in the paper:

    - {b scheduling time}: waiting for the scheduler to become free plus
      the (constant) time it takes to decide;
    - {b waiting time}: parked by the scheduler until other users' steps
      complete (plus re-decisions after aborts);
    - {b execution time}: the (constant) time the step itself takes,
      assumed independent of the scheduler; executions of different
      users overlap.

    The simulation drives any {!Sched.Scheduler.t}; delayed requests are
    reconsidered after every grant, aborts restart the transaction, and
    full stalls are resolved through the scheduler's victim choice. *)

type params = {
  arrival_rate : float;   (** transactions per time unit (Poisson) *)
  exec_time : float;      (** per step *)
  sched_time : float;     (** per decision *)
  seed : int;
}

type result = {
  n_transactions : int;
  makespan : float;
  throughput : float;        (** completed transactions per time unit *)
  avg_latency : float;       (** arrival → commit *)
  avg_scheduling : float;    (** per transaction *)
  avg_waiting : float;
  avg_execution : float;
  restarts : int;
  deadlocks : int;
}

val run :
  ?sink:Obs.Sink.t ->
  params ->
  syntax:Core.Syntax.t ->
  scheduler:(unit -> Sched.Scheduler.t) ->
  result
(** Simulates every transaction of the syntax exactly once (arrivals in
    transaction order at Poisson instants). The decomposition satisfies
    [latency ≈ scheduling + waiting + exec] per transaction.
    Raises {!Sched.Driver.Stall} if the scheduler cannot resolve a
    stall.

    With a [sink], the full request lifecycle is emitted at virtual
    time: [Submitted] at each (re)submission, [Granted]/[Delayed] at
    the decision instant, [Aborted]+[Restarted] on scheduler aborts
    (reason [Scheduler_abort]) and deadlock victims (reason
    [Deadlock]), [Executed] when a step's execution completes and
    [Committed] at transaction completion. On the folded trace,
    [Fold.counters] reproduces [restarts], [deadlocks] and a commit
    per transaction exactly. Emission order follows simulation
    causality, but [Executed] timestamps interleave with later
    decisions — sort by timestamp before exporting. *)

val pp_result : Format.formatter -> result -> unit
