module History = Analysis.History
module Checker = Analysis.Checker

type spec = {
  txns : int;
  steps : int;
  sessions : int;
  n_vars : int;
  seed : int;
  levels : Checker.level list;
}

type row = {
  level : string;
  events : int;
  seconds : float;
  events_per_sec : float;
}

let default =
  {
    txns = 125_000;
    steps = 4;
    sessions = 8;
    n_vars = 40_000;
    seed = 1;
    levels = Checker.levels;
  }

let smoke = { default with txns = 2_000; steps = 2; n_vars = 500 }

let parse_dims s base =
  match List.map int_of_string_opt (String.split_on_char 'x' s) with
  | [ Some n; Some m; Some sess; Some v ]
    when n > 0 && m > 0 && sess > 0 && v > 0 ->
    { base with txns = n; steps = m; sessions = sess; n_vars = v }
  | _ -> invalid_arg ("bad --bench size " ^ s ^ " (want NxMxSxV)")

let run spec =
  let h =
    History.generate ~seed:spec.seed ~sessions:spec.sessions ~txns:spec.txns
      ~steps:spec.steps ~n_vars:spec.n_vars
  in
  let events = History.n_events h in
  List.filter_map
    (fun level ->
      if not (List.mem level spec.levels) then None
      else begin
        let t0 = Unix.gettimeofday () in
        let r = Checker.check h level in
        let seconds = Unix.gettimeofday () -. t0 in
        (match r.Checker.verdict with
        | Checker.Consistent _ -> ()
        | Checker.Violation _ ->
          failwith
            ("check bench: generated history rejected at "
            ^ Checker.level_name level)
        | Checker.Unknown msg ->
          failwith
            ("check bench: generated history unknown at "
            ^ Checker.level_name level ^ ": " ^ msg));
        Some
          {
            level = Checker.level_name level;
            events;
            seconds;
            events_per_sec =
              (if seconds > 0. then float_of_int events /. seconds else 0.);
          }
      end)
    Checker.levels

let to_json spec rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n\
       \  \"schema_version\": %d,\n\
       \  \"benchmark\": \"ccopt check throughput\",\n\
       \  \"unit\": \"events/sec\",\n\
       \  \"config\": {\"txns\": %d, \"steps\": %d, \"sessions\": %d, \
        \"n_vars\": %d, \"seed\": %d},\n\
       \  \"results\": [\n"
       Analysis.Report.schema_version spec.txns spec.steps spec.sessions
       spec.n_vars spec.seed);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"level\": \"%s\", \"events\": %d, \"seconds\": %.3f, \
            \"events_per_sec\": %.0f}"
           r.level r.events r.seconds r.events_per_sec))
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let pp_rows fmt rows =
  Format.fprintf fmt "%-8s %12s %9s %14s@." "level" "events" "seconds"
    "events/sec";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-8s %12d %9.3f %14.0f@." r.level r.events
        r.seconds r.events_per_sec)
    rows
