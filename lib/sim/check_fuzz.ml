open Core
open Analysis

type outcome = {
  runs : int;
  herbrand_agreed : int;
  mutants_total : int;
  mutants_rejected : int;
  si_write_skews : int;
  failures : string list;
}

let engines syntax =
  List.map
    (fun (e : Sched.Registry.entry) ->
      let level =
        match Checker.level_of_name e.Sched.Registry.level with
        | Some l -> l
        | None ->
          invalid_arg
            (Printf.sprintf "registry entry %s declares unknown level %S"
               e.Sched.Registry.slug e.Sched.Registry.level)
      in
      ( e.Sched.Registry.slug,
        level,
        fun sink -> e.Sched.Registry.make ~sink syntax ))
    Sched.Registry.all
  @ List.filter_map
      (fun k ->
        (* K = 4 is the registry's own "sharded" entry *)
        if k = 4 then None
        else
          Some
            ( Printf.sprintf "sharded-k%d" k,
              Checker.Serializability,
              fun sink -> Sched.Sharded.create ~sink ~shards:k ~syntax () ))
      [ 1; 4; 8 ]

(* The weakest-first prefix of the level ladder up to and including
   [level] — what an engine declaring [level] must pass. *)
let levels_upto level =
  let rec go = function
    | [] -> []
    | l :: rest -> if l = level then [ l ] else l :: go rest
  in
  go Checker.levels

(* Reconstruct the committed history of a recorded run. Single-version
   engines: replay the committed schedule (read-latest semantics).
   Multi-version engines (version events present): take the values the
   engine actually served from its snapshots — replaying the schedule
   would misreport every snapshot read. *)
let history_of_events ~label ?(complete = true) syntax events =
  let mv = Obs.Fold.mv_history events in
  if not mv.Obs.Fold.recorded then
    let fold = Obs.Fold.history events in
    History.of_steps ~label
      ~complete:(complete && not fold.Obs.Fold.truncated)
      syntax fold.Obs.Fold.steps
  else begin
    let n = Syntax.n_transactions syntax in
    let sess =
      List.init n (fun i ->
          match List.assoc_opt i mv.Obs.Fold.txns with
          | Some accs ->
            [
              List.map
                (fun (a : Obs.Fold.mv_access) ->
                  {
                    History.kind = (if a.Obs.Fold.write then History.W else History.R);
                    var = a.Obs.Fold.var;
                    value = a.Obs.Fold.value;
                  })
                accs;
            ]
          | None -> [ [] ])
    in
    History.make ~label
      ~complete:(complete && not mv.Obs.Fold.mv_truncated)
      sess
  end

(* A rejected mutant needs a witness that replays; which replay applies
   depends on the witness shape. *)
let witness_replays h level (w : Checker.witness) =
  match w with
  | Checker.Cycle edges -> Checker.replay_cycle h level edges
  | Checker.No_order _ ->
    History.n h > 8 || not (Checker.exists_order h level)
  | (Checker.Dangling_read _ | Checker.Ambiguous_write _
    | Checker.Internal_misread _) as w -> List.mem w (Checker.well_formed h)

let check_mutants ~label ~seed h (fails, total, rejected) =
  let rng = Random.State.make [| seed; 0x6d75 |] in
  List.fold_left
    (fun (fails, total, rejected) kind ->
      match History.mutate kind rng h with
      | None -> (fails, total, rejected)
      | Some hm -> (
        let total = total + 1 in
        match (Checker.check hm Checker.Serializability).verdict with
        | Checker.Violation w ->
          if witness_replays hm Checker.Serializability w then
            (fails, total, rejected + 1)
          else
            ( Printf.sprintf "%s: %s witness does not replay" label
                (History.mutation_name kind)
              :: fails,
              total,
              rejected )
        | Checker.Consistent _ ->
          ( Printf.sprintf "%s: %s mutant accepted" label
              (History.mutation_name kind)
            :: fails,
            total,
            rejected )
        | Checker.Unknown msg ->
          ( Printf.sprintf "%s: %s mutant unknown (%s)" label
              (History.mutation_name kind)
              msg
            :: fails,
            total,
            rejected )))
    (fails, total, rejected)
    History.mutations

(* One scheduler run: drive it with a ring sink, reconstruct the
   committed history from the trace, and check it at every level up to
   the engine's declared one. Engines declaring SER additionally face
   the Herbrand oracle (pure-RMW syntaxes, small n) and the mutation
   gauntlet; SI engines feed the positive write-skew counter whenever
   the checker catches them above their level. *)
let check_run ~label ~seed ~level syntax mk acc =
  let fmt = Syntax.format syntax in
  let n = Array.length fmt in
  let st = Random.State.make [| seed |] in
  let arrivals = Combin.Interleave.random st fmt in
  let ring = Obs.Sink.Ring.create ~capacity:(1 lsl 16) in
  let sink = Obs.Sink.Ring.sink ring in
  let stats = Sched.Driver.run ~sink (mk sink) ~fmt ~arrivals in
  let events = Obs.Sink.Ring.events ring in
  let fold = Obs.Fold.history events in
  let fails = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> fails := (label ^ ": " ^ m) :: !fails) fmt in
  if Obs.Sink.Ring.dropped ring > 0 then fail "ring dropped events";
  if fold.Obs.Fold.truncated then fail "fold claims truncation on a complete trace";
  let out_steps =
    Array.to_list
      (Array.map
         (fun (s : Names.step_id) -> (s.Names.tx, s.Names.idx))
         stats.Sched.Driver.output)
  in
  if fold.Obs.Fold.steps <> out_steps then
    fail "Fold.history disagrees with the driver's output schedule";
  if fold.Obs.Fold.commits <> List.init n Fun.id then
    fail "Fold.history commit set incomplete";
  let mv = Obs.Fold.mv_history events in
  if mv.Obs.Fold.recorded then begin
    if mv.Obs.Fold.mv_truncated then
      fail "mv fold claims truncation on a complete trace";
    if mv.Obs.Fold.mv_commits <> List.init n Fun.id then
      fail "mv fold commit set incomplete"
  end;
  let h = history_of_events ~label syntax events in
  List.iter
    (fun l ->
      let r = Checker.check h l in
      match r.Checker.verdict with
      | Checker.Consistent order ->
        if
          l <> Checker.Snapshot_isolation
          && not (Checker.validate_order h l order)
        then fail "%s order does not validate" (Checker.level_name l)
      | Checker.Violation _ ->
        fail "committed history rejected at %s" (Checker.level_name l)
      | Checker.Unknown msg ->
        fail "unknown at %s (%s)" (Checker.level_name l) msg)
    (levels_upto level);
  (if level = Checker.Snapshot_isolation || level = Checker.Serializability
   then
     let si_order =
       match (Checker.check h Checker.Snapshot_isolation).Checker.verdict with
       | Checker.Consistent o ->
         Checker.validate_order h Checker.Snapshot_isolation o
       | _ -> true (* already reported above *)
     in
     if not si_order then fail "si order does not validate");
  let skew =
    if level <> Checker.Snapshot_isolation then 0
    else
      match (Checker.check h Checker.Serializability).Checker.verdict with
      | Checker.Violation w ->
        if witness_replays h Checker.Serializability w then 1
        else begin
          fail "write-skew witness does not replay";
          0
        end
      | _ -> 0
  in
  let herb =
    if level = Checker.Serializability && n <= 5 && not (Syntax.typed syntax)
    then begin
      if Herbrand.serializable syntax stats.Sched.Driver.output then true
      else begin
        fail "Herbrand oracle rejects a scheduler output";
        false
      end
    end
    else false
  in
  let mfails, mtotal, mrejected =
    if level = Checker.Serializability then check_mutants ~label ~seed h ([], 0, 0)
    else ([], 0, 0)
  in
  ( { runs = acc.runs + 1;
      herbrand_agreed = (acc.herbrand_agreed + if herb then 1 else 0);
      mutants_total = acc.mutants_total + mtotal;
      mutants_rejected = acc.mutants_rejected + mrejected;
      si_write_skews = acc.si_write_skews + skew;
      failures = mfails @ !fails @ acc.failures;
    } )

let empty =
  { runs = 0; herbrand_agreed = 0; mutants_total = 0; mutants_rejected = 0;
    si_write_skews = 0; failures = [] }

let sweep ?(seeds = 100) () =
  let sizes = [| (4, 3); (5, 3); (6, 2); (8, 2) |] in
  let acc = ref empty in
  for seed = 0 to seeds - 1 do
    let n, m = sizes.(seed mod Array.length sizes) in
    let st = Random.State.make [| seed; 0xf00d |] in
    let syntax =
      match seed mod 4 with
      | 0 -> Workload.uniform st ~n ~m ~n_vars:(max 2 (n / 2))
      | 1 -> Workload.hotspot st ~n ~m ~n_vars:(max 2 (n / 2)) ~theta:0.8
      | 2 -> Workload.zipf st ~n ~m ~n_vars:(max 2 (n / 2)) ~s:1.2
      | _ ->
        (* the typed mix that makes snapshot-isolation anomalies
           reachable; see the si write-skew obligation *)
        Workload.mixed st ~n ~m ~n_vars:(max 2 (n / 2)) ~read_frac:0.5
          ~theta:0.5
    in
    List.iter
      (fun (slug, level, mk) ->
        let label = Printf.sprintf "seed %d %s" seed slug in
        acc := check_run ~label ~seed ~level syntax mk !acc)
      (engines syntax)
  done;
  { !acc with failures = List.rev !acc.failures }

let universes =
  [
    [ [ "x" ]; [ "x" ] ];
    [ [ "x"; "y" ]; [ "y"; "x" ] ];
    [ [ "x"; "x" ]; [ "x" ] ];
    [ [ "x"; "y" ]; [ "x"; "y" ]; [ "y" ] ];
    [ [ "x" ]; [ "x" ]; [ "x" ] ];
    [ [ "x"; "y"; "z" ]; [ "z"; "x" ] ];
    [ [ "x"; "y" ]; [ "y"; "z" ]; [ "z"; "x" ] ];
  ]

let exhaustive () =
  let acc = ref empty in
  let fail m = acc := { !acc with failures = m :: !acc.failures } in
  List.iter
    (fun lists ->
      let syntax = Syntax.of_lists lists in
      List.iter
        (fun sched ->
          acc := { !acc with runs = !acc.runs + 1 };
          let label =
            Format.asprintf "%a %a" Syntax.pp syntax Schedule.pp sched
          in
          let label =
            String.concat " " (String.split_on_char '\n' label)
          in
          let herb = Herbrand.serializable syntax sched in
          let h = History.of_schedule syntax sched in
          let consistent l =
            match (Checker.check h l).Checker.verdict with
            | Checker.Consistent _ -> true
            | _ -> false
          in
          (match (Checker.check h Checker.Serializability).Checker.verdict with
          | Checker.Consistent o ->
            if not herb then fail (label ^ ": checker accepts, oracle rejects");
            if not (Checker.validate_order h Checker.Serializability o) then
              fail (label ^ ": order does not validate");
            acc := { !acc with herbrand_agreed = !acc.herbrand_agreed + 1 }
          | Checker.Violation w ->
            if herb then fail (label ^ ": checker rejects, oracle accepts")
            else if not (witness_replays h Checker.Serializability w) then
              fail (label ^ ": witness does not replay")
            else
              acc := { !acc with herbrand_agreed = !acc.herbrand_agreed + 1 }
          | Checker.Unknown msg -> fail (label ^ ": unknown (" ^ msg ^ ")"));
          (* the level ladder is monotone: SER ⊆ SI ⊆ causal ⊆ RA ⊆ RC *)
          let rc = consistent Checker.Read_committed
          and ra = consistent Checker.Read_atomic
          and ca = consistent Checker.Causal
          and si = consistent Checker.Snapshot_isolation
          and se = consistent Checker.Serializability in
          if
            (se && not si) || (si && not ca) || (ca && not ra) || (ra && not rc)
          then fail (label ^ ": level ladder not monotone");
          (* tiny histories: per-level ground truth by enumeration *)
          if Syntax.n_transactions syntax <= 3 then
            List.iter
              (fun l ->
                if Checker.exists_order h l <> consistent l then
                  fail
                    (label ^ ": ground truth mismatch at " ^ Checker.level_name l))
              Checker.levels)
        (Schedule.all (Syntax.format syntax)))
    universes;
  { !acc with failures = List.rev !acc.failures }
