open Core

(** Fuzzing differential between the schedulers and the black-box
    history checker ({!Analysis.Checker}).

    Three obligations, each independently falsifiable:

    - {e soundness of the pipeline}: every history committed by every
      registered scheduler (plus the sharded engine at several K) must
      check consistent at {e every} level — scheduler outputs are
      serializable, and serializability is the strongest level. The
      history is reconstructed from the recorded observability trace
      via {!Obs.Fold.history}, which must itself agree with the
      driver's output schedule (trace ≡ stats, extended to schedules);
    - {e sensitivity}: seeded mutations of those histories (swapped
      reads, dropped writes, rewired reads) must be rejected, with a
      witness that replays;
    - {e oracle agreement}: wherever the brute-force Herbrand test
      applies (small n), it and the checker must agree — and on
      exhaustive small universes they must agree on {e every} schedule,
      with per-level ground truth from {!Analysis.Checker.exists_order}
      on the smallest ones.

    Any broken obligation lands in [failures] as a labelled message;
    the tests assert the list is empty. *)

type outcome = {
  runs : int;  (** scheduler runs checked end to end *)
  herbrand_agreed : int;  (** runs also confirmed by the oracle *)
  mutants_total : int;
  mutants_rejected : int;
  failures : string list;
}

val engines : Syntax.t -> (string * (Obs.Sink.t -> Sched.Scheduler.t)) list
(** Every registry entry plus the sharded engine at K ∈ {1, 4, 8}. *)

val sweep : ?seeds:int -> unit -> outcome
(** The seeded sweep (default 100 seeds). Workload mixes and sizes
    rotate deterministically per seed. *)

val exhaustive : unit -> outcome
(** Every schedule of a fixed family of small universes, checked
    against the Herbrand oracle; [runs] counts schedules. *)
