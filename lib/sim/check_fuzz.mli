open Core

(** Fuzzing differential between the schedulers and the black-box
    history checker ({!Analysis.Checker}).

    Four obligations, each independently falsifiable:

    - {e conformance}: every history committed by every registered
      scheduler (plus the sharded engine at several K) must check
      consistent at every level up to the engine's {e declared} level
      ({!Sched.Registry.entry.level}) — ["ser"] for the single-version
      schedulers and SSI, ["si"] for SI, ["causal"] for MVCC. The
      history is reconstructed from the recorded observability trace
      ({!history_of_events}): multi-version runs from their version
      events, single-version runs by replaying the committed schedule,
      which must itself agree with the driver's output (trace ≡ stats,
      extended to schedules);
    - {e anomaly realisability}: SI is {e not} serializable, and the
      sweep must prove it — at least one SI run over the typed
      read/update mix must be caught as a SER violation (write skew)
      with a witness that replays ([si_write_skews] > 0 is asserted by
      the tests);
    - {e sensitivity}: seeded mutations of the serializable histories
      (swapped reads, dropped writes, rewired reads) must be rejected,
      with a witness that replays;
    - {e oracle agreement}: wherever the brute-force Herbrand test
      applies (SER-level engines, pure-RMW syntaxes, small n), it and
      the checker must agree — and on exhaustive small universes they
      must agree on {e every} schedule, with per-level ground truth
      from {!Analysis.Checker.exists_order} on the smallest ones.

    Any broken obligation lands in [failures] as a labelled message;
    the tests assert the list is empty. *)

type outcome = {
  runs : int;  (** scheduler runs checked end to end *)
  herbrand_agreed : int;  (** runs also confirmed by the oracle *)
  mutants_total : int;
  mutants_rejected : int;
  si_write_skews : int;
      (** runs of SI-level engines whose history the checker caught as
          a SER violation with a replaying witness — the positive
          control that write skew is reachable *)
  failures : string list;
}

val engines :
  Syntax.t ->
  (string * Analysis.Checker.level * (Obs.Sink.t -> Sched.Scheduler.t)) list
(** Every registry entry with its declared consistency level resolved
    via {!Analysis.Checker.level_of_name}, plus the sharded engine at
    K ∈ {1, 8} (K = 4 is the registry's own entry), declared
    serializable. *)

val history_of_events :
  label:string ->
  ?complete:bool ->
  Syntax.t ->
  (float * Obs.Event.t) list ->
  Analysis.History.t
(** Committed history of a recorded run. When version events are
    present ({!Obs.Fold.mv_history}), the history carries the values
    the multi-version engine actually served from its snapshots;
    otherwise the committed schedule is replayed under read-latest
    semantics ({!Analysis.History.of_steps}). Pass [~complete:false]
    when the ring dropped events; fold-detected truncation is folded
    in either way. *)

val sweep : ?seeds:int -> unit -> outcome
(** The seeded sweep (default 100 seeds). Workload mixes and sizes
    rotate deterministically per seed; every fourth seed uses the typed
    {!Workload.mixed} read/update mix that makes snapshot-isolation
    anomalies reachable. *)

val exhaustive : unit -> outcome
(** Every schedule of a fixed family of small universes, checked
    against the Herbrand oracle; [runs] counts schedules. *)
