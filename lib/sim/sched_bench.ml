open Core

type spec = {
  sizes : (int * int) list;
  mixes : string list;
  n_vars : int;
  streams : int;
  min_time : float;
  seed : int;
  shard_ks : int list;
  shard_sizes : (int * int) list;
  shard_mixes : string list;
  mv_sizes : (int * int) list;
  mv_mixes : string list;
  mv_samples : int;
  (* commutativity section; empty [sem_sizes] or [sem_mixes] skips it.
     SGT vs the semantic engine on typed counter mixes — the hot and
     skewed workloads where the commutativity table actually removes
     conflict edges. *)
  sem_sizes : (int * int) list;
  sem_mixes : string list;
  sem_samples : int;
  (* wall-clock parallel-execution section; empty [par_domains] skips it.
     Each variant runs one shard per domain (K = D), so d1 is the
     monolithic single-shard engine on one domain — the configuration a
     user without the parallel feature gets — and the sweep is the
     engine's scaling curve. *)
  par_domains : int list;
  par_queues : Sched.Chan.kind list;
  par_sizes : (int * int) list;
  par_mixes : string list;
  par_streams : int;
  (* distributed-commit section; empty [twopc_fault_rates] skips it.
     Each rate drives [twopc_rounds] commit rounds through a
     [Sched.Twopc.service] over [twopc_parts] participants, with the
     crash rate at the sweep value and the slow-link rate at half it. *)
  twopc_fault_rates : float list;
  twopc_rounds : int;
  twopc_parts : int;
}

type row = {
  scheduler : string;
  mix : string;
  n : int;
  m : int;
  requests : int;
  seconds : float;
  req_per_sec : float;
}

let default =
  {
    sizes = [ (4, 4); (8, 8); (16, 8) ];
    mixes = [ "uniform"; "hot"; "skewed" ];
    n_vars = 8;
    streams = 20;
    min_time = 0.2;
    seed = 42;
    shard_ks = [ 1; 2; 4; 8 ];
    shard_sizes = [ (64, 2); (256, 2); (2048, 2) ];
    shard_mixes = [ "disjoint"; "hot"; "skewed" ];
    mv_sizes = [ (4, 3); (6, 3); (8, 2) ];
    mv_mixes = [ "rw-uniform"; "rw-hot"; "rw-readmost" ];
    mv_samples = 200;
    sem_sizes = [ (4, 4); (8, 8); (16, 8) ];
    sem_mixes = [ "ctr-hot"; "ctr-skewed" ];
    sem_samples = 200;
    par_domains = [ 1; 2; 4; 8 ];
    par_queues = [ Sched.Chan.Ring; Sched.Chan.Mutex ];
    (* 2048x2 disjoint is the scaling cell; 256x2 keeps the contended
       mix affordable (same cap as the sharded section) *)
    par_sizes = [ (2048, 2); (256, 2) ];
    par_mixes = [ "disjoint"; "hot" ];
    par_streams = 2;
    twopc_fault_rates = [ 0.; 0.05; 0.1; 0.2; 0.4 ];
    twopc_rounds = 400;
    twopc_parts = 3;
  }

let smoke =
  {
    sizes = [ (2, 2); (3, 2) ];
    mixes = [ "uniform"; "hot" ];
    n_vars = 3;
    streams = 2;
    min_time = 0.;
    seed = 42;
    shard_ks = [ 4 ];
    shard_sizes = [ (8, 2) ];
    shard_mixes = [ "disjoint" ];
    mv_sizes = [ (3, 2) ];
    mv_mixes = [ "rw-hot" ];
    mv_samples = 20;
    sem_sizes = [ (3, 2) ];
    sem_mixes = [ "ctr-hot" ];
    sem_samples = 20;
    par_domains = [ 1; 2 ];
    par_queues = [ Sched.Chan.Ring ];
    par_sizes = [ (16, 2) ];
    par_mixes = [ "disjoint" ];
    par_streams = 1;
    twopc_fault_rates = [ 0.; 0.3 ];
    twopc_rounds = 20;
    twopc_parts = 2;
  }

let syntax_of_mix st ~mix ~n ~m ~n_vars =
  match mix with
  | "uniform" -> Workload.uniform st ~n ~m ~n_vars
  | "hot" -> Workload.hotspot st ~n ~m ~n_vars ~theta:0.8
  | "skewed" -> Workload.zipf st ~n ~m ~n_vars ~s:1.2
  | "disjoint" ->
    ignore (st : Random.State.t);
    Workload.disjoint ~n ~m
  | "rw-uniform" ->
    Workload.mixed st ~n ~m ~n_vars ~read_frac:0.6
      ~theta:(1.0 /. float_of_int n_vars)
  | "rw-hot" -> Workload.mixed st ~n ~m ~n_vars ~read_frac:0.6 ~theta:0.8
  (* read-mostly with a mild hot spot: updates spread enough that
     first-committer-wins stays quiet while crossing reads still build
     dangerous structures — the mix that exercises SSI's pivot aborts
     (including its false positives) rather than FCW *)
  | "rw-readmost" ->
    Workload.mixed st ~n ~m ~n_vars ~read_frac:0.8 ~theta:0.3
  (* typed counter mixes for the commutativity section: mostly
     increments/decrements with a thin read tail, concentrated on a hot
     key or a zipf head — the regimes where rw conflict detection
     serialises work the semantics never required *)
  | "ctr-hot" ->
    Workload.semantic_counters st ~n ~m ~n_vars ~theta:0.8 ~read_frac:0.1
  | "ctr-skewed" ->
    Workload.semantic_zipf st ~n ~m ~n_vars ~s:1.2 ~read_frac:0.1
  | name ->
    invalid_arg
      ("unknown workload mix " ^ name
     ^ " (uniform, hot, skewed, disjoint, rw-uniform, rw-hot, \
        rw-readmost, ctr-hot, ctr-skewed)")

let schedulers syntax =
  [
    ("serial", fun () -> Sched.Serial_sched.create ~fmt:(Syntax.format syntax));
    ("2PL", fun () -> Sched.Tpl_sched.create_2pl ~syntax ());
    ("TO", fun () -> Sched.Timestamp.create ~syntax ());
    ("SGT", fun () -> Sched.Sgt.create ~syntax ());
    ("SGT-ref", fun () -> Sched.Sgt_ref.create ~syntax);
  ]

(* Requests served = scheduler decisions that consumed a submitted
   request: grants (re-executions included) plus delays plus
   outright aborts. Decision-equivalent schedulers therefore serve the
   same request count and differ only in elapsed time. *)
let requests_of (s : Sched.Driver.stats) =
  s.Sched.Driver.grants + s.Sched.Driver.delays + s.Sched.Driver.restarts

(* Time every scheduler of a cell together, in interleaved rounds: each
   round runs one whole pass of each scheduler over every stream, timed
   individually at pass granularity (clock overhead stays out of the
   measurement). Interleaving matters for the reported ratios — timing
   each scheduler in its own contiguous block lets CPU frequency drift
   between blocks masquerade as a speedup. One warm-up pass per
   scheduler, then rounds until the cell's time budget
   ([min_time] x number of schedulers, matching the sequential layout's
   total) is spent. *)
(* The generic core: each entry of [passes] runs one whole pass of its
   configuration and returns the requests it served. *)
let time_cells ~min_time passes =
  let k = Array.length passes in
  let requests = Array.make k 0 in
  let seconds = Array.make k 0. in
  Array.iter (fun pass -> ignore (pass ())) passes;
  let budget = min_time *. float_of_int k in
  let total = ref 0. in
  let rounds = ref 0 in
  while !rounds = 0 || !total < budget do
    for j = 0 to k - 1 do
      let t0 = Unix.gettimeofday () in
      requests.(j) <- requests.(j) + passes.(j) ();
      let dt = Unix.gettimeofday () -. t0 in
      seconds.(j) <- seconds.(j) +. dt;
      total := !total +. dt
    done;
    incr rounds
  done;
  Array.init k (fun j -> (requests.(j), seconds.(j)))

let time_cell_set ~min_time ~fmt ~arrivals mks =
  time_cells ~min_time
    (Array.map
       (fun mk () ->
         Array.fold_left
           (fun acc a ->
             acc + requests_of (Sched.Driver.run (mk ()) ~fmt ~arrivals:a))
           0 arrivals)
       mks)

let run_section spec ~mixes ~sizes ~named_of_syntax =
  List.concat_map
    (fun mix ->
      List.concat_map
        (fun (n, m) ->
          (* fresh deterministic rng per cell: every scheduler sees the
             identical syntax and arrival streams *)
          let st = Random.State.make [| spec.seed; Hashtbl.hash mix; n; m |] in
          let syntax = syntax_of_mix st ~mix ~n ~m ~n_vars:spec.n_vars in
          let fmt = Syntax.format syntax in
          let arrivals =
            Array.init spec.streams (fun _ -> Combin.Interleave.random st fmt)
          in
          let named = named_of_syntax syntax in
          let cells =
            time_cell_set ~min_time:spec.min_time ~fmt ~arrivals
              (Array.of_list (List.map snd named))
          in
          List.mapi
            (fun j (name, _) ->
              let requests, seconds = cells.(j) in
              {
                scheduler = name;
                mix;
                n;
                m;
                requests;
                seconds;
                req_per_sec =
                  (if seconds > 0. then float_of_int requests /. seconds
                   else 0.);
              })
            named)
        sizes)
    mixes

(* The multi-version section pits single-version SGT against the MV
   family on typed read/update mixes — the workloads where snapshot
   reads actually buy admission breadth. *)
let mv_schedulers syntax =
  [
    ("SGT", fun sink -> Sched.Sgt.create ~sink ~syntax ());
    ("MVCC", fun sink -> Sched.Mvcc.create ~sink ~syntax ());
    ("SI", fun sink -> Sched.Si.create ~sink ~syntax ());
    ("SSI", fun sink -> Sched.Ssi.create ~sink ~syntax ());
  ]

let mv_timing syntax =
  List.map
    (fun (name, mk) -> (name, fun () -> mk Obs.Sink.null))
    (mv_schedulers syntax)

type mv_stat = {
  mv_scheduler : string;
  mv_mix : string;
  mv_n : int;
  mv_m : int;
  breadth : float;
  mv_commits : int;
  ww_aborts : int;
  pivot_aborts : int;
  false_positive_aborts : int;
}

let mv_stats spec =
  List.concat_map
    (fun mix ->
      List.concat_map
        (fun (n, m) ->
          (* same cell discipline as the timing sections: one
             deterministic syntax and arrival-stream set per cell,
             shared by every engine *)
          let st =
            Random.State.make [| spec.seed; Hashtbl.hash mix; n; m; 0x6d76 |]
          in
          let syntax = syntax_of_mix st ~mix ~n ~m ~n_vars:spec.n_vars in
          let fmt = Syntax.format syntax in
          let arrivals =
            Array.init spec.streams (fun _ -> Combin.Interleave.random st fmt)
          in
          List.map
            (fun (name, mk) ->
              let breadth =
                Sched.Driver.zero_delay_fraction
                  (fun () -> mk Obs.Sink.null)
                  ~fmt ~samples:spec.mv_samples ~seed:spec.seed
              in
              let ww = ref 0 and pivot = ref 0 in
              let fp = ref 0 and commits = ref 0 in
              let sink =
                {
                  Obs.Sink.now = 0.;
                  enabled = true;
                  emit =
                    (fun _ e ->
                      match e with
                      | Obs.Event.Ww_refused _ -> incr ww
                      | Obs.Event.Pivot_refused { cyclic; _ } ->
                        incr pivot;
                        if not cyclic then incr fp
                      | Obs.Event.Committed _ -> incr commits
                      | _ -> ());
                }
              in
              Array.iter
                (fun a ->
                  ignore (Sched.Driver.run ~sink (mk sink) ~fmt ~arrivals:a))
                arrivals;
              {
                mv_scheduler = name;
                mv_mix = mix;
                mv_n = n;
                mv_m = m;
                breadth;
                mv_commits = !commits;
                ww_aborts = !ww;
                pivot_aborts = !pivot;
                false_positive_aborts = !fp;
              })
            (mv_schedulers syntax))
        spec.mv_sizes)
    spec.mv_mixes

(* The commutativity section pits rw-SGT against the semantic engine on
   typed counter mixes — identical machinery, the only delta being the
   {!Core.Commute} filter on conflict edges. *)
let sem_schedulers syntax =
  [
    ("SGT", fun sink -> Sched.Sgt.create ~sink ~syntax ());
    ("semantic", fun sink -> Sched.Semantic.create ~sink ~syntax ());
  ]

let sem_timing syntax =
  List.map
    (fun (name, mk) -> (name, fun () -> mk Obs.Sink.null))
    (sem_schedulers syntax)

type sem_stat = {
  sem_scheduler : string;
  sem_mix : string;
  sem_n : int;
  sem_m : int;
  sem_breadth : float;
  sem_delays : int;
  commute_passes : int;
  commute_skipped : int;
}

let sem_stats spec =
  match (spec.sem_mixes, spec.sem_sizes) with
  | [], _ | _, [] -> []
  | mixes, sizes ->
    List.concat_map
      (fun mix ->
        List.concat_map
          (fun (n, m) ->
            let st =
              Random.State.make
                [| spec.seed; Hashtbl.hash mix; n; m; 0x5e6d |]
            in
            let syntax = syntax_of_mix st ~mix ~n ~m ~n_vars:spec.n_vars in
            let fmt = Syntax.format syntax in
            let arrivals =
              Array.init spec.streams (fun _ ->
                  Combin.Interleave.random st fmt)
            in
            List.map
              (fun (name, mk) ->
                let breadth =
                  Sched.Driver.zero_delay_fraction
                    (fun () -> mk Obs.Sink.null)
                    ~fmt ~samples:spec.sem_samples ~seed:spec.seed
                in
                let passes = ref 0 and skipped = ref 0 and delays = ref 0 in
                let sink =
                  {
                    Obs.Sink.now = 0.;
                    enabled = true;
                    emit =
                      (fun _ e ->
                        match e with
                        | Obs.Event.Commute_pass { skipped = k; _ } ->
                          incr passes;
                          skipped := !skipped + k
                        | _ -> ());
                  }
                in
                Array.iter
                  (fun a ->
                    let s =
                      Sched.Driver.run ~sink (mk sink) ~fmt ~arrivals:a
                    in
                    delays := !delays + s.Sched.Driver.delays)
                  arrivals;
                {
                  sem_scheduler = name;
                  sem_mix = mix;
                  sem_n = n;
                  sem_m = m;
                  sem_breadth = breadth;
                  sem_delays = !delays;
                  commute_passes = !passes;
                  commute_skipped = !skipped;
                })
              (sem_schedulers syntax))
          sizes)
      mixes

let sharded_name k = Printf.sprintf "sharded-k%d" k

(* The sharded section compares monolithic SGT against the sharded
   engine across K on partition-sensitive workloads: [disjoint] is the
   zero-coordination best case (every transaction single-shard), [hot]
   and [skewed] keep contention so the coordinator path is timed too.
   Sizes favour many small transactions — the regime the per-shard
   graphs are built for. *)
let sharded_schedulers ks syntax =
  ("SGT", fun () -> Sched.Sgt.create ~syntax ())
  :: List.map
       (fun k ->
         ( sharded_name k,
           fun () -> Sched.Sharded.create ~shards:k ~syntax () ))
       ks

let parallel_name ~domains ~queue =
  Printf.sprintf "parallel-d%d-%s" domains (Sched.Chan.kind_name queue)

(* Wall-clock timing of the domain-parallel engine, one variant per
   (domain count, channel build), same interleaved-round discipline as
   the simulated sections. Every variant replays identical arrival
   streams, so req/s ratios against the d1 variant are the engine's
   wall-clock scaling curve. Contended mixes are capped at n <= 256
   like the sharded section, and for the same reason. *)
let run_parallel_section spec =
  match spec.par_domains with
  | [] -> []
  | ds ->
    let variants =
      List.concat_map
        (fun d -> List.map (fun q -> (d, q)) spec.par_queues)
        ds
    in
    List.concat_map
      (fun mix ->
        let sizes =
          if mix = "disjoint" then spec.par_sizes
          else List.filter (fun (n, _) -> n <= 256) spec.par_sizes
        in
        List.concat_map
          (fun (n, m) ->
            let st =
              Random.State.make [| spec.seed; Hashtbl.hash mix; n; m; 0x9a7 |]
            in
            let syntax = syntax_of_mix st ~mix ~n ~m ~n_vars:spec.n_vars in
            let fmt = Syntax.format syntax in
            let arrivals =
              Array.init spec.par_streams (fun _ ->
                  Combin.Interleave.random st fmt)
            in
            let pass (domains, queue) () =
              Array.fold_left
                (fun acc a ->
                  let r =
                    Sched.Parallel.run ~queue ~domains
                      ~shards:domains ~syntax ~arrivals:(Array.copy a)
                      ()
                  in
                  acc + r.Sched.Parallel.grants + r.Sched.Parallel.delays
                  + r.Sched.Parallel.restarts)
                0 arrivals
            in
            let cells =
              time_cells ~min_time:spec.min_time
                (Array.of_list (List.map pass variants))
            in
            List.mapi
              (fun j (domains, queue) ->
                let requests, seconds = cells.(j) in
                {
                  scheduler = parallel_name ~domains ~queue;
                  mix;
                  n;
                  m;
                  requests;
                  seconds;
                  req_per_sec =
                    (if seconds > 0. then float_of_int requests /. seconds
                     else 0.);
                })
              variants)
          sizes)
      spec.par_mixes

let run spec =
  run_section spec ~mixes:spec.mixes ~sizes:spec.sizes
    ~named_of_syntax:schedulers
  @ (match (spec.mv_mixes, spec.mv_sizes) with
    | [], _ | _, [] -> []
    | mixes, sizes ->
      run_section spec ~mixes ~sizes ~named_of_syntax:mv_timing)
  @ (match (spec.sem_mixes, spec.sem_sizes) with
    | [], _ | _, [] -> []
    | mixes, sizes ->
      run_section spec ~mixes ~sizes ~named_of_syntax:sem_timing)
  @ (match spec.shard_ks with
    | [] -> []
    | ks ->
      (* Contended mixes are capped at n <= 256: a single hot/skewed run
         at n >= 512 takes seconds (wound-wait churn on a near-complete
         conflict graph), which would starve every other cell of its time
         budget. Disjoint cells run at every requested size — that is the
         scaling story the sharded section exists to measure. *)
      List.concat_map
        (fun mix ->
          let sizes =
            if mix = "disjoint" then spec.shard_sizes
            else List.filter (fun (n, _) -> n <= 256) spec.shard_sizes
          in
          run_section spec ~mixes:[ mix ] ~sizes
            ~named_of_syntax:(sharded_schedulers ks))
        spec.shard_mixes)
  @ run_parallel_section spec

let find rows ~scheduler ~mix ~n ~m =
  List.find_opt
    (fun r -> r.scheduler = scheduler && r.mix = mix && r.n = n && r.m = m)
    rows

let speedups rows =
  (* SGT vs the brute-force oracle, per cell *)
  List.filter_map
    (fun r ->
      if r.scheduler <> "SGT" then None
      else
        match find rows ~scheduler:"SGT-ref" ~mix:r.mix ~n:r.n ~m:r.m with
        | Some ref_row when ref_row.req_per_sec > 0. ->
          Some (r.mix, r.n, r.m, r.req_per_sec /. ref_row.req_per_sec)
        | Some _ | None -> None)
    rows

let sharded_speedups rows =
  (* the sharded engine vs monolithic SGT in the same cell, per K *)
  List.filter_map
    (fun r ->
      match
        String.length r.scheduler > 9
        && String.sub r.scheduler 0 9 = "sharded-k"
      with
      | false -> None
      | true -> (
        match find rows ~scheduler:"SGT" ~mix:r.mix ~n:r.n ~m:r.m with
        | Some sgt when sgt.req_per_sec > 0. ->
          let k =
            int_of_string
              (String.sub r.scheduler 9 (String.length r.scheduler - 9))
          in
          Some (r.mix, r.n, r.m, k, r.req_per_sec /. sgt.req_per_sec)
        | Some _ | None -> None))
    rows

let semantic_speedups rows =
  (* the semantic engine vs rw-SGT in the same typed-counter cell *)
  List.filter_map
    (fun r ->
      if r.scheduler <> "semantic" then None
      else
        match find rows ~scheduler:"SGT" ~mix:r.mix ~n:r.n ~m:r.m with
        | Some sgt when sgt.req_per_sec > 0. ->
          Some (r.mix, r.n, r.m, r.req_per_sec /. sgt.req_per_sec)
        | Some _ | None -> None)
    rows

let parallel_speedups rows =
  (* every multi-domain parallel variant vs the single-domain variant
     of the same channel build, per cell: the wall-clock scaling curve *)
  List.filter_map
    (fun r ->
      match String.split_on_char '-' r.scheduler with
      | [ "parallel"; d; q ] when String.length d > 1 && d.[0] = 'd' -> (
        match int_of_string_opt (String.sub d 1 (String.length d - 1)) with
        | Some domains when domains > 1 -> (
          match
            find rows
              ~scheduler:(Printf.sprintf "parallel-d1-%s" q)
              ~mix:r.mix ~n:r.n ~m:r.m
          with
          | Some base when base.req_per_sec > 0. ->
            Some (r.mix, r.n, r.m, q, domains, r.req_per_sec /. base.req_per_sec)
          | Some _ | None -> None)
        | _ -> None)
      | _ -> None)
    rows

(* ---------- distributed-commit (2PC) section ---------- *)

type twopc_stat = {
  fault_rate : float;
  tp_rounds : int;
  tp_commits : int;
  tp_aborts : int;
  abort_rate : float;
  avg_latency : float;
  avg_blocking : float;
  max_blocking : float;
  tp_msgs : int;
  tp_crashes : int;
}

type twopc_section = {
  tp_parts : int;
  sweep : twopc_stat list;
  cc_repair : float;
  cc_avg_blocking : float;
  cc_max_blocking : float;
}

let twopc_stats spec =
  match spec.twopc_fault_rates with
  | [] -> None
  | rates ->
    let parts = List.init spec.twopc_parts (fun p -> p) in
    let sweep =
      List.map
        (fun rate ->
          let svc =
            Sched.Twopc.service ~crash_rate:rate ~slow_rate:(rate /. 2.)
              ~seed:spec.seed ~shards:spec.twopc_parts ()
          in
          for tx = 0 to spec.twopc_rounds - 1 do
            ignore (Sched.Twopc.commit svc ~tx ~shards:parts)
          done;
          let t = Sched.Twopc.totals svc in
          let fl n = float_of_int (max 1 n) in
          {
            fault_rate = rate;
            tp_rounds = t.Sched.Twopc.rounds;
            tp_commits = t.Sched.Twopc.committed;
            tp_aborts = t.Sched.Twopc.aborted;
            abort_rate =
              float_of_int t.Sched.Twopc.aborted /. fl t.Sched.Twopc.rounds;
            avg_latency = t.Sched.Twopc.latency_sum /. fl t.Sched.Twopc.rounds;
            avg_blocking =
              t.Sched.Twopc.blocking_sum /. fl t.Sched.Twopc.rounds;
            max_blocking = t.Sched.Twopc.blocking_max;
            tp_msgs = t.Sched.Twopc.total_msgs;
            tp_crashes = t.Sched.Twopc.total_crashes;
          })
        rates
    in
    (* The headline number of the section: the coordinator crashes
       between collecting the votes and broadcasting the decision, so
       every yes-voter sits in doubt until the coordinator is back —
       the blocking window of 2PC, measured over every crash placement
       inside the vote-collection phase. *)
    let cc_repair = 25. in
    let coord = spec.twopc_parts in
    let cfg = Sched.Twopc.default in
    let windows =
      List.map
        (fun at_input ->
          let r =
            Sched.Twopc.round cfg ~nodes:(spec.twopc_parts + 1) ~coord ~parts
              ~tx:0 ~seed:spec.seed
              ~faults:
                [ Sched.Twopc.Crash { node = coord; at_input; repair = cc_repair } ]
              ()
          in
          r.Sched.Twopc.blocking)
        (List.init spec.twopc_parts (fun i -> i + 1))
    in
    let nonzero = List.filter (fun w -> w > 0.) windows in
    let cc_avg_blocking =
      match nonzero with
      | [] -> 0.
      | ws -> List.fold_left ( +. ) 0. ws /. float_of_int (List.length ws)
    in
    let cc_max_blocking = List.fold_left max 0. windows in
    Some { tp_parts = spec.twopc_parts; sweep; cc_repair; cc_avg_blocking;
           cc_max_blocking }

let pp_twopc ppf (s : twopc_section) =
  Format.fprintf ppf
    "@[<v>2PC over %d participants (coordinator-crash blocking: avg %.1f / \
     max %.1f at repair %.1f):@," s.tp_parts s.cc_avg_blocking
    s.cc_max_blocking s.cc_repair;
  Format.fprintf ppf "%-10s %8s %8s %8s %10s %10s %10s %10s@," "fault"
    "rounds" "commits" "aborts" "abort%" "latency" "blocking" "msgs";
  List.iter
    (fun t ->
      Format.fprintf ppf "%-10.2f %8d %8d %8d %9.1f%% %10.2f %10.2f %10d@,"
        t.fault_rate t.tp_rounds t.tp_commits t.tp_aborts
        (100. *. t.abort_rate) t.avg_latency t.avg_blocking t.tp_msgs)
    s.sweep;
  Format.fprintf ppf "@]"

(* ---------- JSON ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(mv = []) ?twopc ?(semantic = []) spec rows =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\n";
  add "  \"benchmark\": \"sched\",\n";
  add "  \"unit\": \"requests_per_second\",\n";
  add
    (Printf.sprintf
       "  \"config\": { \"n_vars\": %d, \"streams\": %d, \"min_time\": %g, \
        \"seed\": %d, \"shard_ks\": [%s] },\n"
       spec.n_vars spec.streams spec.min_time spec.seed
       (String.concat ", " (List.map string_of_int spec.shard_ks)));
  add "  \"results\": [\n";
  List.iteri
    (fun i r ->
      add
        (Printf.sprintf
           "    { \"scheduler\": \"%s\", \"mix\": \"%s\", \"n\": %d, \"m\": \
            %d, \"requests\": %d, \"seconds\": %.6f, \"req_per_sec\": %.1f }%s\n"
           (json_escape r.scheduler) (json_escape r.mix) r.n r.m r.requests
           r.seconds r.req_per_sec
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  add "  ],\n";
  add "  \"sgt_speedup_vs_ref\": {\n";
  let sp = speedups rows in
  List.iteri
    (fun i (mix, n, m, ratio) ->
      add
        (Printf.sprintf "    \"%s/%dx%d\": %.2f%s\n" (json_escape mix) n m
           ratio
           (if i = List.length sp - 1 then "" else ",")))
    sp;
  add "  },\n";
  add "  \"sharded_speedup_vs_sgt\": {\n";
  let ssp = sharded_speedups rows in
  List.iteri
    (fun i (mix, n, m, k, ratio) ->
      add
        (Printf.sprintf "    \"%s/%dx%d/k%d\": %.2f%s\n" (json_escape mix) n
           m k ratio
           (if i = List.length ssp - 1 then "" else ",")))
    ssp;
  add "  },\n";
  (match parallel_speedups rows with
  | [] -> ()
  | psp ->
    (* wall-clock context the ratios cannot be read without: on a host
       with fewer cores than domains the speedup is algorithmic
       (smaller per-worker graphs and histories), not concurrent *)
    add "  \"parallel\": {\n";
    add
      (Printf.sprintf "    \"recommended_domains\": %d,\n"
         (Domain.recommended_domain_count ()));
    add
      "    \"note\": \"wall-clock ratios vs the d1 variant on identical \
       arrival streams; on hosts with fewer cores than domains the gain \
       is algorithmic (smaller per-worker state), true concurrency \
       engages on multicore\",\n";
    add "    \"speedup_vs_d1\": {\n";
    List.iteri
      (fun i (mix, n, m, q, d, ratio) ->
        add
          (Printf.sprintf "      \"%s/%dx%d/%s/d%d\": %.2f%s\n"
             (json_escape mix) n m (json_escape q) d ratio
             (if i = List.length psp - 1 then "" else ",")))
      psp;
    add "    }\n";
    add "  },\n");
  (match twopc with
  | None -> ()
  | Some (s : twopc_section) ->
    add "  \"twopc\": {\n";
    add
      (Printf.sprintf "    \"parts\": %d,\n    \"rounds_per_rate\": %d,\n"
         s.tp_parts spec.twopc_rounds);
    add "    \"sweep\": [\n";
    List.iteri
      (fun i t ->
        add
          (Printf.sprintf
             "      { \"fault_rate\": %.3f, \"rounds\": %d, \"commits\": %d, \
              \"aborts\": %d, \"abort_rate\": %.4f, \"avg_commit_latency\": \
              %.3f, \"avg_blocking\": %.3f, \"max_blocking\": %.3f, \
              \"msgs\": %d, \"crashes\": %d }%s\n"
             t.fault_rate t.tp_rounds t.tp_commits t.tp_aborts t.abort_rate
             t.avg_latency t.avg_blocking t.max_blocking t.tp_msgs
             t.tp_crashes
             (if i = List.length s.sweep - 1 then "" else ",")))
      s.sweep;
    add "    ],\n";
    add
      (Printf.sprintf
         "    \"coordinator_crash\": { \"repair\": %.1f, \"avg_blocking\": \
          %.3f, \"max_blocking\": %.3f }\n"
         s.cc_repair s.cc_avg_blocking s.cc_max_blocking);
    add "  },\n");
  (match semantic with
  | [] -> ()
  | sem ->
    add
      (Printf.sprintf
         "  \"semantic_section\": {\n    \"samples\": %d,\n    \"results\": [\n"
         spec.sem_samples);
    List.iteri
      (fun i s ->
        add
          (Printf.sprintf
             "      { \"scheduler\": \"%s\", \"mix\": \"%s\", \"n\": %d, \
              \"m\": %d, \"breadth\": %.4f, \"delays\": %d, \
              \"commute_passes\": %d, \"commute_skipped\": %d }%s\n"
             (json_escape s.sem_scheduler) (json_escape s.sem_mix) s.sem_n
             s.sem_m s.sem_breadth s.sem_delays s.commute_passes
             s.commute_skipped
             (if i = List.length sem - 1 then "" else ",")))
      sem;
    add "    ],\n";
    add "    \"speedup_vs_sgt\": {\n";
    let ssp = semantic_speedups rows in
    List.iteri
      (fun i (mix, n, m, ratio) ->
        add
          (Printf.sprintf "      \"%s/%dx%d\": %.2f%s\n" (json_escape mix) n
             m ratio
             (if i = List.length ssp - 1 then "" else ",")))
      ssp;
    add "    }\n";
    add "  },\n");
  add
    (Printf.sprintf "  \"mv_section\": {\n    \"samples\": %d,\n    \"results\": [\n"
       spec.mv_samples);
  List.iteri
    (fun i s ->
      add
        (Printf.sprintf
           "      { \"scheduler\": \"%s\", \"mix\": \"%s\", \"n\": %d, \"m\": \
            %d, \"breadth\": %.4f, \"commits\": %d, \"ww_aborts\": %d, \
            \"pivot_aborts\": %d, \"false_positive_aborts\": %d }%s\n"
           (json_escape s.mv_scheduler) (json_escape s.mv_mix) s.mv_n s.mv_m
           s.breadth s.mv_commits s.ww_aborts s.pivot_aborts
           s.false_positive_aborts
           (if i = List.length mv - 1 then "" else ",")))
    mv;
  add "    ]\n  }\n";
  add "}\n";
  Buffer.contents b

(* Minimal recursive-descent well-formedness check over the JSON we
   emit (objects, arrays, strings, numbers, true/false/null). Used by
   the @check bench smoke so the harness cannot rot into emitting
   garbage silently. [members_of] additionally records the raw extent
   of each top-level member, which is what lets [--out] regeneration
   preserve keys this emitter knows nothing about. *)
let scan s ~on_member =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let literal lit =
    String.iter (fun c -> expect c) lit
  in
  let string_lit () =
    expect '"';
    let rec go () =
      if !fail then ()
      else
        match peek () with
        | None -> fail := true
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail := true
            done
          | _ -> fail := true);
          go ()
        | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          seen := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !seen then fail := true
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let depth = ref 0 in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' ->
        advance ();
        incr depth;
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            let kstart = !pos + 1 in
            string_lit ();
            let kstop = !pos - 1 in
            skip_ws ();
            expect ':';
            skip_ws ();
            let vstart = !pos in
            value ();
            if !depth = 1 && (not !fail) && kstop >= kstart then
              on_member
                ~key:(String.sub s kstart (kstop - kstart))
                ~value:(String.sub s vstart (!pos - vstart));
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ()
            | Some '}' -> advance ()
            | _ -> fail := true
          in
          members ()
        end;
        decr depth
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec items () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items ()
            | Some ']' -> advance ()
            | _ -> fail := true
          in
          items ()
        end
      | Some '"' -> string_lit ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail := true
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let json_well_formed s = scan s ~on_member:(fun ~key:_ ~value:_ -> ())

let toplevel_members s =
  let acc = ref [] in
  let is_object =
    match String.index_opt s '{' with
    | Some i -> String.trim (String.sub s 0 i) = ""
    | None -> false
  in
  if is_object && scan s ~on_member:(fun ~key ~value -> acc := (key, value) :: !acc)
  then Some (List.rev !acc)
  else None

let trim_right s =
  let l = ref (String.length s) in
  while !l > 0 && (match s.[!l - 1] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
    decr l
  done;
  String.sub s 0 !l

let merge_preserving ~existing fresh =
  match (toplevel_members existing, toplevel_members fresh) with
  | Some old_kvs, Some new_kvs -> (
    let extra =
      List.filter (fun (k, _) -> not (List.mem_assoc k new_kvs)) old_kvs
    in
    if extra = [] then fresh
    else
      match String.rindex_opt fresh '}' with
      | None -> fresh
      | Some close ->
        let b = Buffer.create (String.length fresh + 256) in
        Buffer.add_string b (trim_right (String.sub fresh 0 close));
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf ",\n  \"%s\": %s" k (String.trim v)))
          extra;
        Buffer.add_string b "\n}";
        Buffer.add_string b
          (String.sub fresh (close + 1) (String.length fresh - close - 1));
        Buffer.contents b)
  | _ -> fresh

(* ---------- text rendering ---------- *)

let pp_rows ppf rows =
  Format.fprintf ppf "%-8s %-8s %6s %12s %10s %14s@." "mix" "sched" "n x m"
    "requests" "seconds" "req/s";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %-8s %3dx%-3d %12d %10.4f %14.1f@." r.mix
        r.scheduler r.n r.m r.requests r.seconds r.req_per_sec)
    rows;
  (match speedups rows with
  | [] -> ()
  | sp ->
    Format.fprintf ppf "@.SGT speedup vs SGT-ref:@.";
    List.iter
      (fun (mix, n, m, ratio) ->
        Format.fprintf ppf "  %-8s %3dx%-3d %6.2fx@." mix n m ratio)
      sp);
  (match sharded_speedups rows with
  | [] -> ()
  | ssp ->
    Format.fprintf ppf "@.sharded speedup vs SGT:@.";
    List.iter
      (fun (mix, n, m, k, ratio) ->
        Format.fprintf ppf "  %-8s %3dx%-3d K=%-2d %6.2fx@." mix n m k ratio)
      ssp);
  (match semantic_speedups rows with
  | [] -> ()
  | ssp ->
    Format.fprintf ppf "@.semantic speedup vs SGT:@.";
    List.iter
      (fun (mix, n, m, ratio) ->
        Format.fprintf ppf "  %-10s %3dx%-3d %6.2fx@." mix n m ratio)
      ssp);
  match parallel_speedups rows with
  | [] -> ()
  | psp ->
    Format.fprintf ppf
      "@.parallel wall-clock speedup vs 1 domain (%d cores recommended):@."
      (Domain.recommended_domain_count ());
    List.iter
      (fun (mix, n, m, q, d, ratio) ->
        Format.fprintf ppf "  %-8s %3dx%-3d %-6s d=%-2d %6.2fx@." mix n m q d
          ratio)
      psp

let pp_sem_stats ppf stats =
  match stats with
  | [] -> ()
  | stats ->
    Format.fprintf ppf
      "@.commutativity admission (|P|/|H|, delays and commute passes):@.";
    Format.fprintf ppf "%-12s %-9s %6s %9s %7s %7s %8s@." "mix" "sched"
      "n x m" "breadth" "delays" "passes" "skipped";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-12s %-9s %3dx%-3d %9.3f %7d %7d %8d@."
          s.sem_mix s.sem_scheduler s.sem_n s.sem_m s.sem_breadth
          s.sem_delays s.commute_passes s.commute_skipped)
      stats

let pp_mv_stats ppf stats =
  match stats with
  | [] -> ()
  | stats ->
    Format.fprintf ppf "@.multi-version admission (|P|/|H| and aborts):@.";
    Format.fprintf ppf "%-10s %-8s %6s %9s %8s %6s %6s %9s@." "mix" "sched"
      "n x m" "breadth" "commits" "ww" "pivot" "false-pos";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-10s %-8s %3dx%-3d %9.3f %8d %6d %6d %9d@."
          s.mv_mix s.mv_scheduler s.mv_n s.mv_m s.breadth s.mv_commits
          s.ww_aborts s.pivot_aborts s.false_positive_aborts)
      stats
