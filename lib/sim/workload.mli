open Core

(** Workload generators for the benchmark harness.

    Transaction-system syntaxes with controlled contention (which
    variable each step touches), plus simple semantic fillings for when
    concrete execution is needed. *)

val var_pool : int -> Names.var list
(** [v0 .. v(n-1)]. *)

val uniform : Random.State.t -> n:int -> m:int -> n_vars:int -> Syntax.t
(** [n] transactions of [m] steps, each step on a uniformly random
    variable. *)

val hotspot : Random.State.t -> n:int -> m:int -> n_vars:int -> theta:float -> Syntax.t
(** Like {!uniform}, but each step touches variable [v0] with
    probability [theta] and a uniform other variable otherwise —
    [theta = 1.0] is the single-hot-spot workload, [theta = 0.0] spreads
    uniformly over the remaining variables. With [n_vars = 1] every step
    is clamped to the hot variable (there is no cold pool to draw
    from). *)

val zipf : Random.State.t -> n:int -> m:int -> n_vars:int -> s:float -> Syntax.t
(** Like {!uniform}, but variable [v_i] is drawn with probability
    proportional to [1/(i+1)^s] — the classic skewed access mix.
    [s = 0.0] degenerates to uniform; larger [s] concentrates accesses
    on the low-numbered variables. *)

val mixed :
  Random.State.t ->
  n:int -> m:int -> n_vars:int -> read_frac:float -> theta:float -> Syntax.t
(** Typed read/update mix over a {!hotspot}-shaped variable
    distribution (including its [n_vars = 1] clamp): each step is a
    [Op.Read] with probability [read_frac] and an RMW [Op.Update]
    otherwise. The workload that makes snapshot-isolation anomalies
    (write skew) reachable — under pure RMW, first-committer-wins
    already implies serializability. *)

val semantic_counters :
  Random.State.t ->
  n:int -> m:int -> n_vars:int -> theta:float -> read_frac:float -> Syntax.t
(** Hot-key credits/debits: each step is an [Op.Incr] or [Op.Decr]
    (even odds) on a {!hotspot}-distributed variable, with a
    [read_frac] fraction of [Op.Read] audits. Every rw scheduler
    serializes this mix on the hot key; the [semantic] scheduler
    admits the commuting bumps without coordination. *)

val semantic_zipf :
  Random.State.t ->
  n:int -> m:int -> n_vars:int -> s:float -> read_frac:float -> Syntax.t
(** The {!zipf}-skewed variant of {!semantic_counters}. *)

val disjoint : n:int -> m:int -> Syntax.t
(** Transaction [i] only touches its own variable — the zero-contention
    extreme. *)

val chain : depth:int -> Names.var list * (Names.var * Names.var) list
(** A chain hierarchy [v0 → v1 → ... ] for tree-locking workloads:
    returns the variables root-first and the (child, parent) pairs
    suitable for {!Locking.Tree_lock.policy}. *)

val counters : Syntax.t -> System.t
(** Fill a syntax with increment semantics ([φ_ij = t_ij + 1]) and a
    trivial IC — the standard semantic filling for delay measurements. *)

val transfers : Syntax.t -> System.t
(** Alternating [+1 / −1] semantics (odd steps add, even steps
    subtract), trivial IC; useful when distinct interpretations per step
    matter. *)
