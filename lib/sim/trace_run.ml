open Core

type spec = {
  label : string;
  syntax : Syntax.t;
  seed : int;
  capacity : int;
  samples : int;
  only : string list;
}

let default_capacity = 1 lsl 16

type run = {
  name : string;
  slug : string;
  n : int;
  stats : Sched.Driver.stats;
  events : (float * Obs.Event.t) list;
  dropped : int;
  counters : Obs.Fold.counters;
  totals : Obs.Span.breakdown;
  wait_hist : Obs.Hist.t;
  zero_delay_fraction : float;
  chrome : string;
}

let slug_of_name = Sched.Registry.slug_of_name

(* Any registered scheduler round-trips through [only], not just the
   standard suite: the registry is the single name table. *)
let select spec =
  match spec.only with
  | [] -> Sched.Registry.standard
  | only -> List.map Sched.Registry.find_exn only

let execute spec =
  let fmt = Syntax.format spec.syntax in
  let n = Array.length fmt in
  let st = Random.State.make [| spec.seed |] in
  let arrivals = Combin.Interleave.random st fmt in
  List.map
    (fun e ->
      let ring = Obs.Sink.Ring.create ~capacity:spec.capacity in
      let sink = Obs.Sink.Ring.sink ring in
      let stats =
        Sched.Driver.run ~sink
          (e.Sched.Registry.make ~sink spec.syntax)
          ~fmt ~arrivals
      in
      let events = Obs.Sink.Ring.events ring in
      let dropped = Obs.Sink.Ring.dropped ring in
      let counters = Obs.Fold.counters events in
      let totals = Obs.Span.totals (Obs.Fold.spans ~n events) in
      let wait_hist = Obs.Fold.wait_histogram events in
      let zero_delay_fraction =
        Sched.Driver.zero_delay_fraction
          (fun () -> e.Sched.Registry.make spec.syntax)
          ~fmt ~samples:spec.samples ~seed:spec.seed
      in
      let chrome = Obs.Trace_export.chrome events in
      {
        name = e.Sched.Registry.name;
        slug = e.Sched.Registry.slug;
        n;
        stats;
        events;
        dropped;
        counters;
        totals;
        wait_hist;
        zero_delay_fraction;
        chrome;
      })
    (select spec)

let mismatches r =
  if r.dropped > 0 then []
  else begin
    let s = r.stats and c = r.counters in
    let check label trace stat acc =
      if trace = stat then acc
      else Printf.sprintf "%s: trace %d vs stats %d" label trace stat :: acc
    in
    []
    |> check "grants" c.Obs.Fold.grants s.Sched.Driver.grants
    |> check "delays" c.Obs.Fold.delays s.Sched.Driver.delays
    |> check "restarts" c.Obs.Fold.restarts s.Sched.Driver.restarts
    |> check "deadlocks" c.Obs.Fold.deadlocks s.Sched.Driver.deadlocks
    |> check "waiting" c.Obs.Fold.waiting s.Sched.Driver.waiting
    |> check "commits" c.Obs.Fold.commits r.n
    |> (fun acc ->
         if Obs.Fold.zero_delay c = Sched.Driver.zero_delay s then acc
         else "zero-delay: trace and stats disagree" :: acc)
    |> List.rev
  end

let pp_summary ppf runs =
  Format.fprintf ppf "%-8s %8s %6s %6s %8s %9s %7s %7s %6s %6s %7s@."
    "sched" "zero-dly" "grants" "delays" "restarts" "deadlocks" "waiting"
    "t-sched" "t-wait" "t-exec" "elapsed";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-8s %8.3f %6d %6d %8d %9d %7d %7.0f %6.0f %6.0f %7.0f@." r.name
        r.zero_delay_fraction r.stats.Sched.Driver.grants
        r.stats.Sched.Driver.delays r.stats.Sched.Driver.restarts
        r.stats.Sched.Driver.deadlocks r.stats.Sched.Driver.waiting
        r.totals.Obs.Span.scheduling r.totals.Obs.Span.waiting
        r.totals.Obs.Span.execution r.totals.Obs.Span.elapsed)
    runs;
  List.iter
    (fun r ->
      Format.fprintf ppf "wait %-8s %a@." r.name Obs.Hist.pp r.wait_hist)
    runs

(* One version stamp across every machine-readable report. *)
let schema_version = Analysis.Report.schema_version

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_summary spec runs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema_version\": %d, \"syntax\": \"%s\", \"seed\": %d, \
        \"capacity\": %d, \"samples\": %d, \"schedulers\": ["
       schema_version (json_escape spec.label) spec.seed spec.capacity
       spec.samples);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ", ";
      let q p =
        match Obs.Hist.quantile r.wait_hist p with
        | Some v -> string_of_int v
        | None -> "null"
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": \"%s\", \"slug\": \"%s\", \"zero_delay_fraction\": \
            %.4f, \"grants\": %d, \"delays\": %d, \"restarts\": %d, \
            \"deadlocks\": %d, \"waiting\": %d, \"zero_delay\": %b, \
            \"spans\": {\"scheduling\": %.1f, \"waiting\": %.1f, \
            \"execution\": %.1f, \"elapsed\": %.1f}, \"wait\": {\"count\": \
            %d, \"mean\": %.3f, \"p50\": %s, \"p99\": %s}, \"events\": %d, \
            \"dropped\": %d, \"trace_matches_stats\": %b}"
           (json_escape r.name) (json_escape r.slug) r.zero_delay_fraction
           r.stats.Sched.Driver.grants r.stats.Sched.Driver.delays
           r.stats.Sched.Driver.restarts r.stats.Sched.Driver.deadlocks
           r.stats.Sched.Driver.waiting
           (Sched.Driver.zero_delay r.stats)
           r.totals.Obs.Span.scheduling r.totals.Obs.Span.waiting
           r.totals.Obs.Span.execution r.totals.Obs.Span.elapsed
           (Obs.Hist.count r.wait_hist)
           (Obs.Hist.mean r.wait_hist)
           (q 0.5) (q 0.99) (List.length r.events) r.dropped
           (mismatches r = [])))
    runs;
  Buffer.add_string b "]}";
  Buffer.contents b
