(** Checker-throughput benchmark: events/sec of {!Analysis.Checker} per
    isolation level on a large {!Analysis.History.generate} history.

    The generated history is serializable by construction, so every
    verdict must come back [Consistent] — a row is throughput {e and}
    correctness evidence at once; any other verdict fails the run.
    Surfaced as [ccopt check --bench] and as bench experiment C1; the
    JSON form is the schema of [BENCH_check.json]. *)

type spec = {
  txns : int;
  steps : int;      (** RMW steps per transaction; [2 * txns * steps] events *)
  sessions : int;
  n_vars : int;
  seed : int;
  levels : Analysis.Checker.level list;
}

type row = {
  level : string;
  events : int;
  seconds : float;
  events_per_sec : float;
}

val default : spec
(** The committed-trajectory configuration: 125k transactions of 4
    steps on 40k variables over 8 sessions — one million events. *)

val smoke : spec
(** Tiny configuration for the CI smoke (8k events). *)

val parse_dims : string -> spec -> spec
(** ["NxMxSxV"] — transactions x steps x sessions x variables — over a
    base spec. Raises [Invalid_argument] on malformed input. *)

val run : spec -> row list
(** One row per level, in {!Analysis.Checker.levels} order restricted
    to [spec.levels]. Raises [Failure] if any verdict is not
    [Consistent]. *)

val to_json : spec -> row list -> string
(** Hand-emitted JSON: [{"schema_version", "benchmark", "unit",
    "config", "results": [row...]}] — the schema of
    [BENCH_check.json]. *)

val pp_rows : Format.formatter -> row list -> unit
