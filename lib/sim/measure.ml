open Core

type row = {
  name : string;
  zero_delay_fraction : float;
  avg_delays : float;
  avg_waiting : float;
  avg_restarts : float;
  avg_deadlocks : float;
  avg_grants : float;
  avg_sched_span : float;
  avg_wait_span : float;
  avg_exec_span : float;
}

let exact_fixpoint_count mk fmt = List.length (Sched.Driver.fixpoint_of mk fmt)

let sample ~name mk ~fmt ~samples ~seed =
  let st = Random.State.make [| seed |] in
  let n = Array.length fmt in
  let zero = ref 0 in
  let delays = ref 0 and waiting = ref 0 in
  let restarts = ref 0 and deadlocks = ref 0 and grants = ref 0 in
  let sched_span = ref 0. and wait_span = ref 0. and exec_span = ref 0. in
  let collector = Obs.Sink.Memory.create () in
  for _ = 1 to samples do
    Obs.Sink.Memory.clear collector;
    let arrivals = Combin.Interleave.random st fmt in
    let s =
      Sched.Driver.run ~sink:(Obs.Sink.Memory.sink collector) (mk ()) ~fmt
        ~arrivals
    in
    if Sched.Driver.zero_delay s then incr zero;
    delays := !delays + s.Sched.Driver.delays;
    waiting := !waiting + s.Sched.Driver.waiting;
    restarts := !restarts + s.Sched.Driver.restarts;
    deadlocks := !deadlocks + s.Sched.Driver.deadlocks;
    grants := !grants + s.Sched.Driver.grants;
    let spans = Obs.Fold.spans ~n (Obs.Sink.Memory.events collector) in
    let t = Obs.Span.totals spans in
    sched_span := !sched_span +. t.Obs.Span.scheduling;
    wait_span := !wait_span +. t.Obs.Span.waiting;
    exec_span := !exec_span +. t.Obs.Span.execution
  done;
  let f x = float_of_int x /. float_of_int samples in
  let g x = x /. float_of_int samples in
  {
    name;
    zero_delay_fraction = f !zero;
    avg_delays = f !delays;
    avg_waiting = f !waiting;
    avg_restarts = f !restarts;
    avg_deadlocks = f !deadlocks;
    avg_grants = f !grants;
    avg_sched_span = g !sched_span;
    avg_wait_span = g !wait_span;
    avg_exec_span = g !exec_span;
  }

let compare_schedulers entries ~fmt ~samples ~seed =
  List.map (fun (name, mk) -> sample ~name mk ~fmt ~samples ~seed) entries

let standard_suite ?sink (syntax : Syntax.t) =
  List.map
    (fun e ->
      (e.Sched.Registry.name, fun () -> e.Sched.Registry.make ?sink syntax))
    Sched.Registry.standard

let pp_rows ppf rows =
  Format.fprintf ppf "%-8s %9s %8s %8s %9s %10s %8s %8s %8s %8s@."
    "sched" "zero-dly" "delays" "waiting" "restarts" "deadlocks" "grants"
    "t-sched" "t-wait" "t-exec";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-8s %9.3f %8.2f %8.2f %9.2f %10.2f %8.2f %8.2f %8.2f %8.2f@."
        r.name r.zero_delay_fraction r.avg_delays r.avg_waiting
        r.avg_restarts r.avg_deadlocks r.avg_grants r.avg_sched_span
        r.avg_wait_span r.avg_exec_span)
    rows
