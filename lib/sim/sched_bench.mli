open Core

(** Scheduler micro-benchmark harness: requests/sec per scheduler across
    workload sizes and variable-access mixes.

    Each cell fixes a deterministic syntax and a set of arrival streams
    (identical for every scheduler), drives them through
    {!Sched.Driver.run} in interleaved rounds — one timed pass of each
    scheduler per round, so CPU frequency drift cannot masquerade as a
    between-scheduler speedup — until the cell's time budget is spent,
    and reports served requests per wall-clock second. The suite includes
    both the incremental SGT and the brute-force {!Sched.Sgt_ref}
    oracle, so the emitted report records the speedup of the
    incremental hot path directly. Surfaced as [ccopt bench] and as
    bench experiment B1; the JSON form is the schema of
    [BENCH_sched.json]. *)

type spec = {
  sizes : (int * int) list;  (** (n transactions, m steps) per cell *)
  mixes : string list;
      (** subset of ["uniform"; "hot"; "skewed"; "disjoint"] *)
  n_vars : int;
  streams : int;             (** arrival streams per cell *)
  min_time : float;          (** per-cell time budget, seconds *)
  seed : int;
  shard_ks : int list;
      (** sharded-engine section: K values ([[]] disables the section) *)
  shard_sizes : (int * int) list;
      (** sizes of the sharded section; contended (non-disjoint) mixes
          are capped at [n <= 256] — a single hot run at [n >= 512]
          takes seconds, starving every other cell — while disjoint
          cells run at every size to expose the scaling *)
  shard_mixes : string list;       (** mixes of the sharded section *)
  mv_sizes : (int * int) list;
      (** multi-version section sizes ([[]] disables the section) *)
  mv_mixes : string list;
      (** multi-version section mixes, typically the typed
          ["rw-uniform"]/["rw-hot"] read/update mixes *)
  mv_samples : int;
      (** Monte-Carlo samples behind each [breadth] estimate *)
  sem_sizes : (int * int) list;
      (** commutativity section sizes ([[]] disables the section) *)
  sem_mixes : string list;
      (** commutativity section mixes, typically the typed
          ["ctr-hot"]/["ctr-skewed"] counter mixes where {!Core.Commute}
          actually removes conflict edges *)
  sem_samples : int;
      (** Monte-Carlo samples behind each semantic [breadth] estimate *)
  par_domains : int list;
      (** parallel-execution section: domain counts to sweep ([[]]
          disables the section; include [1] — it is the wall-clock
          baseline the speedup map divides by). Each variant runs one
          shard per domain (K = D handed to {!Sched.Parallel.run}), so
          the d1 baseline is the monolithic single-shard engine on one
          domain and the sweep is the engine's end-to-end scaling
          curve. *)
  par_queues : Sched.Chan.kind list;  (** channel builds to compare *)
  par_sizes : (int * int) list;
      (** parallel-section sizes; contended mixes capped at [n <= 256]
          as in the sharded section *)
  par_mixes : string list;
  par_streams : int;
      (** arrival streams per parallel cell (each pass replays all of
          them; kept separate from [streams] because a parallel pass at
          n = 2048 is orders of magnitude more work than a 16x8 cell) *)
  twopc_fault_rates : float list;
      (** distributed-commit section: crash rates to sweep ([[]]
          disables the section; the slow-link rate rides along at half
          the crash rate) *)
  twopc_rounds : int;  (** commit rounds per fault rate *)
  twopc_parts : int;   (** participants per round *)
}

type row = {
  scheduler : string;
  mix : string;
  n : int;
  m : int;
  requests : int;      (** requests served: grants + delays + aborts *)
  seconds : float;
  req_per_sec : float;
}

val default : spec
(** Full run: 4x4 / 8x8 / 16x8 over uniform, hot and zipf-skewed mixes,
    plus the sharded section — monolithic SGT vs {!Sched.Sharded} at
    K ∈ 1, 2, 4, 8 over disjoint/hot/skewed at 64x2 and 256x2, with a
    2048x2 disjoint scaling cell. *)

val smoke : spec
(** Tiny sizes, single pass — the CI smoke configuration (sharded
    section at K = 4 over one disjoint cell). *)

val syntax_of_mix :
  Random.State.t -> mix:string -> n:int -> m:int -> n_vars:int -> Syntax.t
(** The workload generator behind a mix name. Raises [Invalid_argument]
    on an unknown mix. *)

val run : spec -> row list
(** Timing rows: the single-version section, the multi-version section
    (SGT vs MVCC/SI/SSI over [mv_mixes] x [mv_sizes]), the
    commutativity section (SGT vs the semantic engine over
    [sem_mixes] x [sem_sizes]) and the sharded section. *)

type mv_stat = {
  mv_scheduler : string;
  mv_mix : string;
  mv_n : int;
  mv_m : int;
  breadth : float;
      (** Monte-Carlo [|P| / |H|] ({!Sched.Driver.zero_delay_fraction})
          — the paper's admission-breadth measure, §6 *)
  mv_commits : int;  (** committed transactions over the cell's streams *)
  ww_aborts : int;   (** first-committer-wins refusals ([Ww_refused]) *)
  pivot_aborts : int;
      (** SSI dangerous-structure refusals ([Pivot_refused]) *)
  false_positive_aborts : int;
      (** pivot refusals whose serialization graph was acyclic — the
          admissions SSI gives up versus an exact certifier *)
}

val mv_stats : spec -> mv_stat list
(** The multi-version admission table: per cell and engine, breadth
    plus commit/abort counts from a traced pass over the cell's arrival
    streams. Empty when the section is disabled. *)

type sem_stat = {
  sem_scheduler : string;
  sem_mix : string;
  sem_n : int;
  sem_m : int;
  sem_breadth : float;
      (** Monte-Carlo [|P| / |H|] over the typed-counter cell — on these
          mixes the semantic engine's fixpoint strictly contains
          rw-SGT's, so its breadth reads higher *)
  sem_delays : int;  (** delays over the cell's arrival streams *)
  commute_passes : int;
      (** [Obs.Event.Commute_pass] count: grants that sailed past live
          same-variable accesses because every one commuted (always [0]
          for the rw engine) *)
  commute_skipped : int;
      (** total accesses those passes skipped — the conflict edges the
          commutativity table deleted *)
}

val sem_stats : spec -> sem_stat list
(** The commutativity admission table: per typed-counter cell, breadth
    plus delay/commute-pass counts for rw-SGT and the semantic engine
    on identical streams. Empty when the section is disabled. *)

val speedups : row list -> (string * int * int * float) list
(** [(mix, n, m, sgt_req_per_sec / sgt_ref_req_per_sec)] per cell. *)

val semantic_speedups : row list -> (string * int * int * float) list
(** [(mix, n, m, semantic_req_per_sec / sgt_req_per_sec)] per
    commutativity-section cell. *)

val sharded_speedups : row list -> (string * int * int * int * float) list
(** [(mix, n, m, K, sharded_req_per_sec / sgt_req_per_sec)] per sharded
    cell. *)

val parallel_name : domains:int -> queue:Sched.Chan.kind -> string
(** Row label of a parallel variant: ["parallel-d<domains>-<queue>"]. *)

val parallel_speedups :
  row list -> (string * int * int * string * int * float) list
(** [(mix, n, m, queue, domains, speedup_vs_d1)] for every multi-domain
    parallel row whose cell also timed the d1 variant of the same
    channel build — the engine's wall-clock scaling curve. *)

(** {2 Distributed-commit (2PC) section} *)

type twopc_stat = {
  fault_rate : float;
  tp_rounds : int;
  tp_commits : int;
  tp_aborts : int;
  abort_rate : float;
  avg_latency : float;
      (** mean round start → coordinator decision, virtual time units *)
  avg_blocking : float;  (** mean in-doubt window per round *)
  max_blocking : float;
  tp_msgs : int;
  tp_crashes : int;  (** crash-plan entries that actually triggered *)
}

type twopc_section = {
  tp_parts : int;
  sweep : twopc_stat list;  (** one row per fault rate, rate order *)
  cc_repair : float;
      (** the repair delay of the forced coordinator-crash placements *)
  cc_avg_blocking : float;
      (** mean in-doubt window over the placements that opened one —
          the measured blocking cost of a coordinator crash *)
  cc_max_blocking : float;
}

val twopc_stats : spec -> twopc_section option
(** Run the distributed-commit sweep: per fault rate, [twopc_rounds]
    commit rounds through a {!Sched.Twopc.service}; plus the forced
    coordinator-crash placements (crash between vote collection and
    decision broadcast) that measure the protocol's blocking window.
    [None] when the section is disabled. Deterministic per [seed] —
    rounds run in virtual time, so the numbers are decision counts and
    virtual latencies, not wall-clock. *)

val pp_twopc : Format.formatter -> twopc_section -> unit

val to_json :
  ?mv:mv_stat list ->
  ?twopc:twopc_section ->
  ?semantic:sem_stat list ->
  spec ->
  row list ->
  string
(** Hand-emitted JSON: [{"benchmark", "unit", "config", "results":
    [row...], "sgt_speedup_vs_ref": {...},
    "sharded_speedup_vs_sgt": {...}, "parallel": {...}, "twopc": {...},
    "semantic_section": {...}, "mv_section": {...}}]. The
    ["semantic_section"] member appears only when stats are passed: the
    commutativity admission rows plus the per-cell
    ["speedup_vs_sgt"] map. The ["parallel"] member appears only when
    the rows contain parallel variants; it records
    [Domain.recommended_domain_count ()] alongside the speedups so a
    reader can tell concurrent gains from algorithmic ones. The
    ["twopc"] member appears only when a section is passed: the
    fault-rate sweep rows plus the measured coordinator-crash blocking
    window. *)

val json_well_formed : string -> bool
(** Minimal JSON well-formedness check (full-string parse) used by the
    bench smoke test; no external parser dependency. *)

val toplevel_members : string -> (string * string) list option
(** The top-level members of a JSON object, each value as its raw
    text, in order; [None] unless the string is a well-formed object. *)

val merge_preserving : existing:string -> string -> string
(** [merge_preserving ~existing fresh] splices into [fresh] (a JSON
    object this module emitted) every top-level key of [existing] that
    [fresh] lacks, raw text preserved — so regenerating
    [BENCH_sched.json] with [ccopt bench --out] keeps keys added by
    other tools (e.g. [BENCH_check.json]-style companions merged into
    one file, or hand-added annotations). An unparseable [existing]
    leaves [fresh] unchanged. *)

val pp_rows : Format.formatter -> row list -> unit
val pp_mv_stats : Format.formatter -> mv_stat list -> unit
val pp_sem_stats : Format.formatter -> sem_stat list -> unit
