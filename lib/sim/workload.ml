open Core

let var_pool n = List.init n (fun i -> Printf.sprintf "v%d" i)

let uniform st ~n ~m ~n_vars =
  let vars = Array.of_list (var_pool n_vars) in
  Syntax.make
    (Array.init n (fun _ ->
         Array.init m (fun _ -> vars.(Random.State.int st n_vars))))

let hotspot st ~n ~m ~n_vars ~theta =
  if n_vars < 1 then invalid_arg "Workload.hotspot: needs >= 1 variable";
  let vars = Array.of_list (var_pool n_vars) in
  (* With a single variable every step is the hot spot: the cold branch
     would call [Random.State.int st 0], which raises. Draining the rng
     anyway would silently shift every later draw, so the clamp comes
     first. *)
  let pick () =
    if n_vars = 1 || Random.State.float st 1.0 < theta then vars.(0)
    else vars.(1 + Random.State.int st (n_vars - 1))
  in
  Syntax.make (Array.init n (fun _ -> Array.init m (fun _ -> pick ())))

let zipf st ~n ~m ~n_vars ~s =
  if n_vars < 1 then invalid_arg "Workload.zipf: needs >= 1 variable";
  let vars = Array.of_list (var_pool n_vars) in
  let weights = Array.init n_vars (fun i -> float_of_int (i + 1) ** -.s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let pick () =
    let r = Random.State.float st total in
    let rec go i acc =
      let acc = acc +. weights.(i) in
      if r < acc || i = n_vars - 1 then vars.(i) else go (i + 1) acc
    in
    go 0 0.
  in
  Syntax.make (Array.init n (fun _ -> Array.init m (fun _ -> pick ())))

let mixed st ~n ~m ~n_vars ~read_frac ~theta =
  if n_vars < 1 then invalid_arg "Workload.mixed: needs >= 1 variable";
  let vars = Array.of_list (var_pool n_vars) in
  (* same clamp as {!hotspot}: one variable means every pick is hot *)
  let pick () =
    if n_vars = 1 || Random.State.float st 1.0 < theta then vars.(0)
    else vars.(1 + Random.State.int st (n_vars - 1))
  in
  let step () =
    let k =
      if Random.State.float st 1.0 < read_frac then Op.Read else Op.Update
    in
    (k, pick ())
  in
  Syntax.make_typed (Array.init n (fun _ -> Array.init m (fun _ -> step ())))

(* Hot-key credits/debits: every step is an [Incr] or [Decr] on a
   hotspot-distributed variable, with a small fraction of [Read]
   audits. The workload every rw scheduler serializes on the hot key
   and the semantic scheduler admits without coordination. *)
let semantic_counters st ~n ~m ~n_vars ~theta ~read_frac =
  if n_vars < 1 then invalid_arg "Workload.semantic_counters: needs >= 1 variable";
  let vars = Array.of_list (var_pool n_vars) in
  let pick () =
    if n_vars = 1 || Random.State.float st 1.0 < theta then vars.(0)
    else vars.(1 + Random.State.int st (n_vars - 1))
  in
  let step () =
    let k =
      if Random.State.float st 1.0 < read_frac then Op.Read
      else if Random.State.bool st then Op.Incr
      else Op.Decr
    in
    (k, pick ())
  in
  Syntax.make_typed (Array.init n (fun _ -> Array.init m (fun _ -> step ())))

(* The zipf-skewed variant: credits/debits over a zipfian key
   distribution. *)
let semantic_zipf st ~n ~m ~n_vars ~s ~read_frac =
  if n_vars < 1 then invalid_arg "Workload.semantic_zipf: needs >= 1 variable";
  let vars = Array.of_list (var_pool n_vars) in
  let weights = Array.init n_vars (fun i -> float_of_int (i + 1) ** -.s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let pick () =
    let r = Random.State.float st total in
    let rec go i acc =
      let acc = acc +. weights.(i) in
      if r < acc || i = n_vars - 1 then vars.(i) else go (i + 1) acc
    in
    go 0 0.
  in
  let step () =
    let k =
      if Random.State.float st 1.0 < read_frac then Op.Read
      else if Random.State.bool st then Op.Incr
      else Op.Decr
    in
    (k, pick ())
  in
  Syntax.make_typed (Array.init n (fun _ -> Array.init m (fun _ -> step ())))

let disjoint ~n ~m =
  Syntax.make
    (Array.init n (fun i -> Array.make m (Printf.sprintf "v%d" i)))

let chain ~depth =
  let vars = List.init depth (fun i -> Printf.sprintf "v%d" i) in
  let pairs =
    List.init (depth - 1) (fun i ->
        (Printf.sprintf "v%d" (i + 1), Printf.sprintf "v%d" i))
  in
  (vars, pairs)

let counters syntax =
  let interp =
    Array.map
      (fun m -> Array.init m (fun j -> Expr.Ast.(Add (Local j, int 1))))
      (Syntax.format syntax)
  in
  System.make syntax interp

let transfers syntax =
  let interp =
    Array.map
      (fun m ->
        Array.init m (fun j ->
            if j mod 2 = 0 then Expr.Ast.(Add (Local j, int 1))
            else Expr.Ast.(Sub (Local j, int 1))))
      (Syntax.format syntax)
  in
  System.make syntax interp
