open Core

(** The shared tracing pipeline behind [ccopt trace] and the trace test
    suite: drive the standard scheduler suite over one seeded arrival
    stream, each scheduler recording into its own ring buffer, and
    derive everything the trace proves — folded counters (checked
    against the driver's stats), the §6 span decomposition, the waiting
    histogram and the Chrome-trace rendering.

    Everything here is a deterministic function of the spec, so the CLI
    and the tests produce byte-identical artifacts in-process. *)

type spec = {
  label : string;       (** the syntax as the user wrote it (for reports) *)
  syntax : Syntax.t;
  seed : int;
  capacity : int;       (** ring-buffer capacity per scheduler *)
  samples : int;        (** Monte-Carlo samples for the zero-delay fraction *)
  only : string list;   (** scheduler names to keep; [[]] = whole suite *)
}

val default_capacity : int
(** [65536] — comfortably above any trace these workloads produce. *)

val schema_version : int
(** Version stamp carried as ["schema_version"] by every
    machine-readable report ([ccopt analyze], [ccopt trace],
    [ccopt check]); bumped when a consumer-visible key changes. *)

type run = {
  name : string;
  slug : string;                    (** filename-safe form of [name] *)
  n : int;                          (** transactions in the syntax *)
  stats : Sched.Driver.stats;
  events : (float * Obs.Event.t) list;
  dropped : int;                    (** ring overwrites; 0 = complete trace *)
  counters : Obs.Fold.counters;
  totals : Obs.Span.breakdown;      (** §6 decomposition summed over txs *)
  wait_hist : Obs.Hist.t;
  zero_delay_fraction : float;
  chrome : string;                  (** Chrome trace_event JSON *)
}

val slug_of_name : string -> string
(** {!Sched.Registry.slug_of_name}: lowercased, primes spelled out,
    everything else non-alphanumeric collapsed to ["-"]: ["2PL'"]
    becomes ["2pl-prime"]. *)

val execute : spec -> run list
(** One traced driver run per selected scheduler, all over the same
    arrival stream. [only] resolves through {!Sched.Registry.find} (so
    any registered scheduler round-trips, not just the standard suite);
    raises [Invalid_argument] listing {!Sched.Registry.names} on an
    unknown name. *)

val mismatches : run -> string list
(** The trace-vs-stats differential: every counter the fold recovers
    that disagrees with the driver's statistics, as diagnostics.
    [[]] means the trace is a faithful witness (always the case on a
    complete trace — enforced by the tests). Truncated traces
    ([dropped > 0]) are not checkable and report [[]]. *)

val pp_summary : Format.formatter -> run list -> unit
(** The §6 summary table plus one waiting-histogram line per
    scheduler. Deterministic — golden-file tested. *)

val json_summary : spec -> run list -> string
(** The same report as a deterministic JSON object. *)
