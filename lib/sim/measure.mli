open Core

(** Performance measurement: the Section 6 quantities.

    The probability that no step has to wait is [|P| / |H|]; for small
    formats this is computed exactly by enumeration, and estimated by
    Monte-Carlo otherwise. Average delay/waiting/restart counts come
    from driving each scheduler over random arrival histories. *)

type row = {
  name : string;
  zero_delay_fraction : float;  (** fraction of histories passed intact *)
  avg_delays : float;
  avg_waiting : float;
  avg_restarts : float;
  avg_deadlocks : float;
  avg_grants : float;
  avg_sched_span : float;
      (** §6 decomposition (event-clock units, per history, summed over
          transactions): time attributed to scheduling … *)
  avg_wait_span : float;   (** … to being parked by [Delay] verdicts … *)
  avg_exec_span : float;   (** … and to executing granted steps. *)
}

val exact_fixpoint_count : (unit -> Sched.Scheduler.t) -> int array -> int
(** |P| by exhaustive enumeration of [H]. Small formats. *)

val sample :
  name:string ->
  (unit -> Sched.Scheduler.t) ->
  fmt:int array ->
  samples:int ->
  seed:int ->
  row
(** Monte-Carlo over uniformly random arrival histories. Each run is
    traced into an in-memory sink and its event stream folded into the
    §6 span decomposition ([avg_*_span]). *)

val compare_schedulers :
  (string * (unit -> Sched.Scheduler.t)) list ->
  fmt:int array ->
  samples:int ->
  seed:int ->
  row list

val standard_suite :
  ?sink:Obs.Sink.t -> Syntax.t -> (string * (unit -> Sched.Scheduler.t)) list
(** The {!Sched.Registry.standard} suite over a syntax — serial, 2PL,
    2PL′(first variable), preclaim, SGT, TO and sharded (K = 4). With a
    [sink], every non-serial scheduler emits its internal events
    (edges, shard routings, locks, wounds, refusals) there. *)

val pp_rows : Format.formatter -> row list -> unit
(** An aligned text table. *)
