open Core

type params = {
  arrival_rate : float;
  exec_time : float;
  sched_time : float;
  seed : int;
}

type result = {
  n_transactions : int;
  makespan : float;
  throughput : float;
  avg_latency : float;
  avg_scheduling : float;
  avg_waiting : float;
  avg_execution : float;
  restarts : int;
  deadlocks : int;
}

(* Future external events, ordered by time (with a tiebreaking id). *)
module Events = Set.Make (struct
  type t = float * int * [ `Arrival of int | `Resubmit of int | `Step_done of int ]

  let compare (t1, i1, _) (t2, i2, _) =
    match Float.compare t1 t2 with 0 -> Int.compare i1 i2 | c -> c
end)

type tx_stats = {
  mutable arrival : float;
  mutable completion : float;
  mutable scheduling : float;
  mutable waiting : float;
  mutable execution : float;
}

let exponential st rate = -.log (1. -. Random.State.float st 1.) /. rate

let run ?(sink = Obs.Sink.null) params ~syntax ~scheduler =
  let fmt = Syntax.format syntax in
  let n = Array.length fmt in
  let sched = scheduler () in
  let st = Random.State.make [| params.seed |] in
  let stats =
    Array.init n (fun _ ->
        {
          arrival = 0.;
          completion = 0.;
          scheduling = 0.;
          waiting = 0.;
          execution = 0.;
        })
  in
  let restarts = ref 0 and deadlocks = ref 0 in
  let tx_restarts = Array.make n 0 in
  let next_step = Array.make n 0 in
  let events = ref Events.empty in
  let event_id = ref 0 in
  let add_event t e =
    incr event_id;
    events := Events.add (t, !event_id, e) !events
  in
  (* Poisson arrivals *)
  let t = ref 0. in
  for i = 0 to n - 1 do
    t := !t +. exponential st params.arrival_rate;
    add_event !t (`Arrival i)
  done;
  (* the scheduler's FIFO request queue and the parked list *)
  let queue : (int * float) Queue.t = Queue.create () in
  let parked : (int * float) Queue.t = Queue.create () in
  let sched_free = ref 0. in
  let done_count = ref 0 in
  let makespan = ref 0. in
  let submit tx time =
    if Obs.Sink.on sink then
      Obs.Sink.record_at sink time
        (Obs.Event.Submitted { tx; idx = next_step.(tx) });
    Queue.add (tx, time) queue
  in
  (* parked requests wait until a grant changes the state; the parked
     span is the paper's waiting time *)
  let unpark now =
    Queue.iter
      (fun (tx, since) ->
        stats.(tx).waiting <- stats.(tx).waiting +. (now -. since);
        Queue.add (tx, now) queue)
      parked;
    Queue.clear parked
  in
  (* Victim-candidate lists follow the driver's convention: youngest
     first (latest arrival first), so a scheduler that prefers early
     candidates never victimizes the most senior live transaction.
     Presenting the parked queue oldest-first instead makes the eager
     detector abort the longest-waiting transaction over and over —
     wound-wait inverted, thrashing restarts into the thousands on
     contended workloads. *)
  let by_seniority txs =
    List.stable_sort
      (fun a b -> Float.compare stats.(b).arrival stats.(a).arrival)
      txs
  in
  let blocked_list () =
    Queue.fold (fun acc (tx, _) -> tx :: acc) [] parked
    |> List.rev |> by_seniority
    |> List.map (fun tx -> (tx, Names.step tx next_step.(tx)))
  in
  (* abort [v] at time [now]: release its bookkeeping, credit waiting to
     everything parked, resubmit the victim with backoff and give the
     others an immediate retry *)
  let abort_victim now v =
    incr deadlocks;
    incr restarts;
    tx_restarts.(v) <- tx_restarts.(v) + 1;
    if Obs.Sink.on sink then begin
      Obs.Sink.record_at sink now
        (Obs.Event.Aborted { tx = v; reason = Obs.Event.Deadlock });
      Obs.Sink.record_at sink now (Obs.Event.Restarted { tx = v })
    end;
    sched.Sched.Scheduler.on_abort v;
    next_step.(v) <- 0;
    let keep = Queue.create () in
    Queue.iter
      (fun (tx, since) ->
        stats.(tx).waiting <- stats.(tx).waiting +. (now -. since);
        if tx <> v then Queue.add (tx, now) keep)
      parked;
    Queue.clear parked;
    Queue.transfer keep queue;
    (* back off by whole scheduling round-trips, not just execution
       time: with sched_time dominating, an exec-scaled backoff lets the
       victim re-enter the queue before any waiter has even been served
       once, and two restarted juniors can starve a senior by
       alternately re-acquiring the contested lock — thousands of
       rotation aborts before a linear exec-time backoff grows past one
       service time *)
    let backoff =
      (params.sched_time +. params.exec_time) *. float_of_int tx_restarts.(v)
    in
    add_event (now +. backoff) (`Resubmit v)
  in
  let serve () =
    (* serve the queue head; returns the decision completion time *)
    let tx, submitted = Queue.pop queue in
    let start = Float.max submitted !sched_free in
    let decided = start +. params.sched_time in
    sched_free := decided;
    stats.(tx).scheduling <-
      stats.(tx).scheduling +. (start -. submitted) +. params.sched_time;
    let id = Names.step tx next_step.(tx) in
    (* scheduler-internal emissions (edges, locks, wounds) happen during
       [attempt]/[commit]/[detect]; stamp them with the decision time *)
    Obs.Sink.set_now sink decided;
    match sched.Sched.Scheduler.attempt id with
    | Sched.Scheduler.Grant ->
      if Obs.Sink.on sink then
        Obs.Sink.record_at sink decided
          (Obs.Event.Granted { tx; idx = next_step.(tx) });
      sched.Sched.Scheduler.commit id;
      next_step.(tx) <- next_step.(tx) + 1;
      stats.(tx).execution <- stats.(tx).execution +. params.exec_time;
      add_event (decided +. params.exec_time) (`Step_done tx);
      unpark decided
    | Sched.Scheduler.Delay -> (
      if Obs.Sink.on sink then
        Obs.Sink.record_at sink decided
          (Obs.Event.Delayed { tx; idx = next_step.(tx) });
      Queue.add (tx, decided) parked;
      (* eager deadlock detection: do not let a doomed request sit in
         the parked list until the end of the run *)
      match sched.Sched.Scheduler.detect (blocked_list ()) with
      | None -> ()
      | Some v -> abort_victim decided v)
    | Sched.Scheduler.Abort ->
      incr restarts;
      tx_restarts.(tx) <- tx_restarts.(tx) + 1;
      if Obs.Sink.on sink then begin
        Obs.Sink.record_at sink decided
          (Obs.Event.Aborted { tx; reason = Obs.Event.Scheduler_abort });
        Obs.Sink.record_at sink decided (Obs.Event.Restarted { tx })
      end;
      sched.Sched.Scheduler.on_abort tx;
      next_step.(tx) <- 0;
      (* restart with backoff: without it, two timestamp-ordered
         transactions on a hot spot abort each other forever; scaled by
         the full service round-trip as in [abort_victim] *)
      let backoff =
        (params.sched_time +. params.exec_time)
        *. float_of_int tx_restarts.(tx)
      in
      add_event (decided +. backoff) (`Resubmit tx);
      unpark decided
  in
  let rec loop () =
    (* next external event vs. next possible scheduler service *)
    let next_ev = Events.min_elt_opt !events in
    let can_serve = not (Queue.is_empty queue) in
    match next_ev, can_serve with
    | None, false ->
      if Queue.is_empty parked then ()
      else begin
        (* stall: every open request is parked *)
        let blocked =
          Queue.fold (fun acc (tx, _) -> tx :: acc) [] parked
          |> List.rev |> by_seniority
        in
        Obs.Sink.set_now sink !sched_free;
        match sched.Sched.Scheduler.victim blocked with
        | None ->
          raise
            (Sched.Driver.Stall
               ("des: scheduler " ^ sched.Sched.Scheduler.name
              ^ " cannot resolve a stall"))
        | Some v ->
          abort_victim !sched_free v;
          loop ()
      end
    | Some ((te, _, ev) as entry), serveable ->
      let service_time =
        if serveable then
          let _, submitted = Queue.peek queue in
          Some (Float.max submitted !sched_free)
        else None
      in
      (match service_time with
      | Some ts when ts <= te ->
        serve ()
      | Some _ | None -> (
        events := Events.remove entry !events;
        match ev with
        | `Arrival tx ->
          stats.(tx).arrival <- te;
          if fmt.(tx) = 0 then begin
            stats.(tx).completion <- te;
            makespan := Float.max !makespan te;
            incr done_count;
            if Obs.Sink.on sink then
              Obs.Sink.record_at sink te (Obs.Event.Committed { tx })
          end
          else submit tx te
        | `Resubmit tx -> submit tx te
        | `Step_done tx ->
          if Obs.Sink.on sink then
            Obs.Sink.record_at sink te
              (Obs.Event.Executed { tx; idx = next_step.(tx) - 1 });
          if next_step.(tx) >= fmt.(tx) then begin
            stats.(tx).completion <- te;
            makespan := Float.max !makespan te;
            incr done_count;
            if Obs.Sink.on sink then
              Obs.Sink.record_at sink te (Obs.Event.Committed { tx })
          end
          else submit tx te));
      loop ()
    | None, true ->
      serve ();
      loop ()
  in
  loop ();
  if !done_count <> n then
    raise (Sched.Driver.Stall "des: incomplete simulation");
  let sum f = Array.fold_left (fun acc s -> acc +. f s) 0. stats in
  let fn = float_of_int n in
  let total_latency = sum (fun s -> s.completion -. s.arrival) in
  let total_sched = sum (fun s -> s.scheduling) in
  let total_wait = sum (fun s -> s.waiting) in
  let total_exec = sum (fun s -> s.execution) in
  {
    n_transactions = n;
    makespan = !makespan;
    throughput = (if !makespan > 0. then fn /. !makespan else 0.);
    avg_latency = total_latency /. fn;
    (* the residual latency - sched - wait - exec is idle overlap between
       a step's completion and the next decision; with instantaneous
       resubmission it is zero per construction *)
    avg_scheduling = total_sched /. fn;
    avg_waiting = total_wait /. fn;
    avg_execution = total_exec /. fn;
    restarts = !restarts;
    deadlocks = !deadlocks;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "n=%d makespan=%.2f thru=%.3f latency=%.2f = sched %.2f + wait %.2f + \
     exec %.2f  (restarts %d, deadlocks %d)"
    r.n_transactions r.makespan r.throughput r.avg_latency r.avg_scheduling
    r.avg_waiting r.avg_execution r.restarts r.deadlocks
