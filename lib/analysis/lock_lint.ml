open Core
open Locking

type input = {
  base : Syntax.t;
  txs : Locked.step list list;
  policy : Policy.t option;
}

let of_policy policy syntax =
  let locked = policy.Policy.apply syntax in
  {
    base = syntax;
    txs =
      Array.to_list
        (Array.map Array.to_list locked.Locked.txs);
    policy = Some policy;
  }

let of_locked ?policy (locked : Locked.t) =
  {
    base = locked.Locked.base;
    txs = Array.to_list (Array.map Array.to_list locked.Locked.txs);
    policy;
  }

(* ---------- pairing and structure ---------- *)

let pairing_diags input =
  List.concat
    (List.mapi
       (fun i steps ->
         let held = Hashtbl.create 8 in
         let errs = ref [] in
         let err msg =
           errs :=
             Report.diagnostic ~rule:"lock/pairing" ~severity:Report.Error
               ~txs:[ i ] msg
             :: !errs
         in
         List.iteri
           (fun p step ->
             match step with
             | Locked.Lock x ->
               if Hashtbl.mem held x then
                 err
                   (Printf.sprintf
                      "T%d step %d acquires %s while already holding it"
                      (i + 1) (p + 1) x)
               else Hashtbl.add held x ()
             | Locked.Unlock x ->
               if Hashtbl.mem held x then Hashtbl.remove held x
               else
                 err
                   (Printf.sprintf
                      "T%d step %d releases %s without holding it" (i + 1)
                      (p + 1) x)
             | Locked.Action _ -> ())
           steps;
         Hashtbl.iter
           (fun x () ->
             err
               (Printf.sprintf "T%d ends still holding %s" (i + 1) x))
           held;
         List.rev !errs)
       input.txs)

let structure_diags input =
  (* the Action steps of transaction i must be exactly (i,0)..(i,m_i-1)
     in order *)
  List.concat
    (List.mapi
       (fun i steps ->
         let expected =
           List.init (Syntax.length input.base i) (Names.step i)
         in
         let actual =
           List.filter_map
             (function Locked.Action s -> Some s | _ -> None)
             steps
         in
         if
           List.length actual = List.length expected
           && List.for_all2 Names.equal_step actual expected
         then []
         else
           [
             Report.diagnostic ~rule:"lock/malformed"
               ~severity:Report.Error ~txs:[ i ]
               (Printf.sprintf
                  "T%d's action steps are not the base transaction's \
                   steps in program order"
                  (i + 1));
           ])
       input.txs)

(* ---------- checks on a well-formed locked system ---------- *)

let coverage_diags (locked : Locked.t) =
  let diags = ref [] in
  Array.iteri
    (fun i tx ->
      let held = Hashtbl.create 8 in
      Array.iter
        (fun step ->
          match step with
          | Locked.Lock x -> Hashtbl.replace held x ()
          | Locked.Unlock x -> Hashtbl.remove held x
          | Locked.Action s ->
            let v = Syntax.var locked.Locked.base s in
            if not (Hashtbl.mem held (Two_phase.lock_name v)) then
              diags :=
                Report.diagnostic ~rule:"lock/coverage"
                  ~severity:Report.Error ~txs:[ i ] ~steps:[ s ]
                  ~witness:(Report.Steps [ s ])
                  (Printf.sprintf
                     "%s accesses %s without holding its lock — the \
                      geometric serializability criterion assumes every \
                      access is covered"
                     (Names.step_to_string s) v)
                :: !diags)
        tx)
    locked.Locked.txs;
  List.rev !diags

let two_phase_diags (locked : Locked.t) =
  let violations = ref [] in
  Array.iteri
    (fun i tx ->
      let unlocked = ref false in
      Array.iteri
        (fun p step ->
          match step with
          | Locked.Unlock _ -> unlocked := true
          | Locked.Lock x ->
            if !unlocked && !violations |> List.for_all (fun (j, _, _) -> j <> i)
            then violations := (i, p, x) :: !violations
          | Locked.Action _ -> ())
        tx)
    locked.Locked.txs;
  match List.rev !violations with
  | [] ->
    [
      Report.diagnostic ~rule:"lock/two-phase" ~severity:Report.Info
        "every transaction is two-phase (no lock after the first unlock)";
    ]
  | vs ->
    List.map
      (fun (i, p, x) ->
        Report.diagnostic ~rule:"lock/two-phase" ~severity:Report.Warning
          ~txs:[ i ]
          (Printf.sprintf
             "T%d acquires %s at locked step %d after having released a \
              lock — the policy is not two-phase, so serializability of \
              its outputs is not guaranteed"
             (i + 1) x (p + 1)))
      vs

let separability_diags input =
  match input.policy with
  | None -> []
  | Some policy ->
    let n = Syntax.n_transactions input.base in
    let remap i = function
      | Locked.Action s -> Locked.Action (Names.step i s.Names.idx)
      | step -> step
    in
    let separable =
      List.init n (fun i ->
          let row =
            Array.init (Syntax.length input.base i) (fun j ->
                Syntax.var input.base (Names.step i j))
          in
          let solo = policy.Policy.apply (Syntax.make [| row |]) in
          let solo_steps =
            List.map (remap i) (Array.to_list solo.Locked.txs.(0))
          in
          solo_steps = List.nth input.txs i)
      |> List.for_all (fun b -> b)
    in
    if separable then
      [
        Report.diagnostic ~rule:"lock/separable" ~severity:Report.Info
          (Printf.sprintf
             "policy %s is separable on this system: each transaction is \
              transformed independently of the others"
             policy.Policy.name);
      ]
    else
      [
        Report.diagnostic ~rule:"lock/non-separable"
          ~severity:Report.Warning
          (Printf.sprintf
             "policy %s uses cross-transaction information on this system \
              (§5.4: optimality among separable policies does not apply)"
             policy.Policy.name);
      ]

(* ---------- deadlock geometry ---------- *)

let reaching_prefix geo p =
  let origin q = Array.for_all (fun x -> x = 0) q in
  let rec back q acc =
    if origin q then acc
    else begin
      let found = ref None in
      Array.iteri
        (fun i x ->
          if !found = None && x > 0 then begin
            let q' = Array.copy q in
            q'.(i) <- x - 1;
            if Geometry_nd.reachable geo q' then found := Some (i, q')
          end)
        q;
      match !found with
      | Some (i, q') -> back q' (i :: acc)
      | None -> acc
    end
  in
  Array.of_list (back (Array.copy p) [])

let deadlock_diags (locked : Locked.t) =
  match Geometry_nd.analyse locked with
  | exception Invalid_argument _ ->
    [
      Report.diagnostic ~rule:"lock/geometry-skipped" ~severity:Report.Info
        "progress grid too large for the deadlock analysis; no deadlock \
         verdict";
    ]
  | geo -> (
    match Geometry_nd.deadlock_points geo with
    | [] ->
      [
        Report.diagnostic ~rule:"lock/deadlock-free" ~severity:Report.Info
          "the progress geometry has no deadlock region: no reachable \
           point is doomed";
      ]
    | points ->
      let p = List.hd (List.sort compare points) in
      let prefix = reaching_prefix geo p in
      (* the transactions still unfinished at the doomed point *)
      let txs =
        List.filter
          (fun i -> p.(i) < (Geometry_nd.dims geo).(i))
          (List.init (Array.length p) (fun i -> i))
      in
      [
        Report.diagnostic ~rule:"lock/deadlock" ~severity:Report.Warning
          ~txs
          ~witness:(Report.Progress (p, prefix))
          (Printf.sprintf
             "deadlock region of %d point(s): from the witness progress \
              vector every continuation hits the forbidden region — the \
              lock-respecting scheduler must abort somebody"
             (List.length points));
      ])

(* ---------- output serializability ---------- *)

let outputs_diags ~max_interleavings (locked : Locked.t) =
  let fmt = Locked.format locked in
  let count = try Schedule.count fmt with Invalid_argument _ -> max_int in
  if count > max_interleavings then
    [
      Report.diagnostic ~rule:"lock/outputs-skipped" ~severity:Report.Info
        (Printf.sprintf
           "output-serializability check skipped: %d interleavings exceed \
            the bound %d"
           count max_interleavings);
    ]
  else
    let base = locked.Locked.base in
    let bad =
      List.find_opt
        (fun il ->
          Locked.legal locked il
          && not (Conflict.serializable base (Locked.project locked il)))
        (Combin.Interleave.all fmt)
    in
    match bad with
    | Some il ->
      [
        Report.diagnostic ~rule:"lock/non-serializable-output"
          ~severity:Report.Error
          ~witness:(Report.Locked_run il)
          (Format.asprintf
             "the locking admits a legal interleaving whose projection %a \
              is not serializable — the policy is incorrect (Figure 4(c): \
              the path separates the forbidden blocks)"
             Schedule.pp
             (Locked.project locked il));
      ]
    | None ->
      [
        Report.diagnostic ~rule:"lock/outputs-serializable"
          ~severity:Report.Info
          (Printf.sprintf
             "all legal locked interleavings (of %d total) project to \
              serializable schedules"
             count);
      ]

(* ---------- the pass ---------- *)

let lint ?(max_interleavings = 50_000) input =
  let shape = pairing_diags input @ structure_diags input in
  if shape <> [] then shape
  else
    let locked = Locked.make input.base input.txs in
    coverage_diags locked
    @ two_phase_diags locked
    @ separability_diags input
    @ deadlock_diags locked
    @ outputs_diags ~max_interleavings locked
