open Core

type severity = Error | Warning | Info

type witness =
  | Cycle of int list
  | Progress of int array * int array
  | History of Schedule.t
  | Locked_run of int array
  | Steps of Names.step_id list

type diagnostic = {
  rule : string;
  severity : severity;
  txs : int list;
  steps : Names.step_id list;
  witness : witness option;
  message : string;
}

type t = { target : string; diagnostics : diagnostic list }

let diagnostic ~rule ~severity ?(txs = []) ?(steps = []) ?witness message =
  { rule; severity; txs = List.sort_uniq compare txs; steps; witness; message }

let make ~target diagnostics = { target; diagnostics }

let count sev r =
  List.length (List.filter (fun d -> d.severity = sev) r.diagnostics)

let errors = count Error
let warnings = count Warning

let find rule r = List.find_opt (fun d -> d.rule = rule) r.diagnostics
let all rule r = List.filter (fun d -> d.rule = rule) r.diagnostics

(* ---------- text rendering ---------- *)

let pp_severity ppf = function
  | Error -> Format.pp_print_string ppf "error"
  | Warning -> Format.pp_print_string ppf "warning"
  | Info -> Format.pp_print_string ppf "info"

let pp_tx ppf i = Format.fprintf ppf "T%d" (i + 1)

let pp_witness ppf = function
  | Cycle txs ->
    Format.fprintf ppf "cycle %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
         pp_tx)
      (txs @ [ List.hd txs ])
  | Progress (vec, prefix) ->
    Format.fprintf ppf "progress vector (%s) via prefix [%s]"
      (String.concat ","
         (List.map string_of_int (Array.to_list vec)))
      (String.concat "" (List.map string_of_int (Array.to_list prefix)))
  | History h -> Format.fprintf ppf "history %a" Schedule.pp h
  | Locked_run il ->
    Format.fprintf ppf "locked interleaving [%s]"
      (String.concat "" (List.map string_of_int (Array.to_list il)))
  | Steps ss ->
    Format.fprintf ppf "steps %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Names.pp_step)
      ss

let pp_diagnostic ppf d =
  Format.fprintf ppf "@[<v2>[%a] %s: %s" pp_severity d.severity d.rule
    d.message;
  if d.txs <> [] then
    Format.fprintf ppf "@,transactions: %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_tx)
      d.txs;
  if d.steps <> [] then
    Format.fprintf ppf "@,steps: %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Names.pp_step)
      d.steps;
  (match d.witness with
  | Some w -> Format.fprintf ppf "@,witness: %a" pp_witness w
  | None -> ());
  Format.fprintf ppf "@]"

let pp ppf r =
  Format.fprintf ppf "@[<v>analyze %s@,@," r.target;
  List.iter (fun d -> Format.fprintf ppf "%a@,@," pp_diagnostic d)
    r.diagnostics;
  Format.fprintf ppf "%d errors, %d warnings, %d infos@]" (errors r)
    (warnings r) (count Info r)

(* ---------- JSON rendering ---------- *)

(* A tiny JSON printer: the repo deliberately has no JSON dependency
   (DESIGN.md §7), and the schema is small enough to emit by hand. *)
type json =
  | J_bool of bool
  | J_int of int
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b = function
  | J_bool v -> Buffer.add_string b (string_of_bool v)
  | J_int i -> Buffer.add_string b (string_of_int i)
  | J_str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | J_list l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      l;
    Buffer.add_char b ']'
  | J_obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        emit b (J_str k);
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

let json_of_ints a = J_list (List.map (fun i -> J_int i) a)

let json_of_witness = function
  | Cycle txs ->
    J_obj [ ("kind", J_str "cycle"); ("transactions", json_of_ints txs) ]
  | Progress (vec, prefix) ->
    J_obj
      [
        ("kind", J_str "progress");
        ("vector", json_of_ints (Array.to_list vec));
        ("prefix", json_of_ints (Array.to_list prefix));
      ]
  | History h ->
    J_obj
      [
        ("kind", J_str "history");
        ( "interleaving",
          json_of_ints (Array.to_list (Schedule.to_interleaving h)) );
        ( "steps",
          J_list
            (List.map
               (fun s -> J_str (Names.step_to_string s))
               (Array.to_list h)) );
      ]
  | Locked_run il ->
    J_obj
      [
        ("kind", J_str "locked-run");
        ("interleaving", json_of_ints (Array.to_list il));
      ]
  | Steps ss ->
    J_obj
      [
        ("kind", J_str "steps");
        ("steps",
         J_list (List.map (fun s -> J_str (Names.step_to_string s)) ss));
      ]

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let json_of_diagnostic d =
  J_obj
    ([
       ("rule", J_str d.rule);
       ("severity", J_str (severity_string d.severity));
       ("transactions", json_of_ints d.txs);
       ( "steps",
         J_list
           (List.map (fun s -> J_str (Names.step_to_string s)) d.steps) );
     ]
    @ (match d.witness with
      | Some w -> [ ("witness", json_of_witness w) ]
      | None -> [])
    @ [ ("message", J_str d.message) ])

let schema_version = 1

let to_json r =
  let j =
    J_obj
      [
        ("schema_version", J_int schema_version);
        ("target", J_str r.target);
        ("diagnostics", J_list (List.map json_of_diagnostic r.diagnostics));
        ( "summary",
          J_obj
            [
              ("errors", J_int (errors r));
              ("warnings", J_int (warnings r));
              ("infos", J_int (count Info r));
              ("ok", J_bool (errors r = 0));
            ] );
      ]
  in
  let b = Buffer.create 512 in
  emit b j;
  Buffer.contents b
