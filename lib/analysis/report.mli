open Core

(** Structured diagnostics shared by every analysis pass.

    A diagnostic pins a finding to a {e rule} (a stable slug such as
    ["anomaly/write-skew"] or ["lock/deadlock"]), a severity, a location
    (transaction indices and step ids of the analyzed system), an
    optional machine-checkable {e witness}, and a human explanation.
    Reports render either as text or as JSON (schema documented in
    README.md); the witness payloads are typed so tests can {e replay}
    them against the semantics instead of trusting the analyzer. *)

type severity = Error | Warning | Info

type witness =
  | Cycle of int list
      (** Transaction indices of a conflict-graph cycle, in cycle order
          (the edge from the last back to the first is implicit). *)
  | Progress of int array * int array
      (** A progress vector in the locked system's n-D grid, together
          with a legal interleaving prefix that reaches it. *)
  | History of Schedule.t
      (** A complete schedule of the base system. *)
  | Locked_run of int array
      (** A complete legal interleaving of a locked system (transaction
          indices, lock steps included). *)
  | Steps of Names.step_id list
      (** Specific steps of the base system. *)

type diagnostic = {
  rule : string;
  severity : severity;
  txs : int list;                (** transactions involved, sorted *)
  steps : Names.step_id list;    (** steps involved, schedule order *)
  witness : witness option;
  message : string;
}

type t = {
  target : string;        (** description of the analyzed object *)
  diagnostics : diagnostic list;
}

val diagnostic :
  rule:string ->
  severity:severity ->
  ?txs:int list ->
  ?steps:Names.step_id list ->
  ?witness:witness ->
  string ->
  diagnostic

val make : target:string -> diagnostic list -> t

val count : severity -> t -> int

val errors : t -> int
val warnings : t -> int

val find : string -> t -> diagnostic option
(** First diagnostic with the given rule slug, if any. *)

val all : string -> t -> diagnostic list
(** Every diagnostic with the given rule slug. *)

val pp_severity : Format.formatter -> severity -> unit
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp : Format.formatter -> t -> unit
(** Text rendering: a header line, one block per diagnostic, a summary
    tail ([N errors, M warnings, K infos]). *)

val schema_version : int
(** Version stamp carried as ["schema_version"] by every
    machine-readable report ([ccopt analyze], [ccopt trace],
    [ccopt check]); bumped when a consumer-visible key changes. *)

val to_json : t -> string
(** JSON rendering; see the [ccopt analyze] section of README.md for the
    schema. Deterministic key order, no trailing whitespace. *)
