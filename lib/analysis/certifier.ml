open Core

type level = Format_only | Syntactic

let level_string = function
  | Format_only -> "format-only"
  | Syntactic -> "syntactic"

let certify ?(k = 2) ?(max_h = 800) ~name ~make ~level syntax =
  let fmt = Syntax.format syntax in
  let n_h = Schedule.count fmt in
  if n_h > max_h then
    [
      Report.diagnostic ~rule:"certify/skipped" ~severity:Report.Info
        (Printf.sprintf
           "certification skipped: |H| = %d exceeds the bound %d" n_h
           max_h);
    ]
  else
    let vars, systems =
      match level with
      | Format_only ->
        let vars = [ "x" ] in
        (vars, Optimality.Universe.systems ~k ~fmt ~vars ())
      | Syntactic ->
        let vars = Syntax.vars syntax in
        ( vars,
          Optimality.Universe.systems ~k ~syntaxes:[ syntax ] ~fmt ~vars ()
        )
    in
    let probes = Optimality.Universe.states ~k ~vars in
    let bound, universe_size =
      Optimality.Verify.intersection_c ~probes systems fmt
    in
    let p = Sched.Driver.fixpoint_of make fmt in
    let in_bound h = List.exists (Schedule.equal h) bound in
    let violations = List.filter (fun h -> not (in_bound h)) p in
    let slack =
      List.length
        (List.filter
           (fun h -> not (List.exists (Schedule.equal h) p))
           bound)
    in
    match violations with
    | [] ->
      [
        Report.diagnostic ~rule:"certify/information-bound"
          ~severity:Report.Info
          (Printf.sprintf
             "%s respects the Theorem 1 bound at the %s level over Z_%d: \
              |P| = %d ⊆ |∩C| = %d (universe of %d systems, slack %d — \
              optimal iff 0)"
             name (level_string level) k (List.length p)
             (List.length bound) universe_size slack);
      ]
    | vs ->
      List.map
        (fun h ->
          Report.diagnostic ~rule:"certify/information-bound"
            ~severity:Report.Error
            ~witness:(Report.History h)
            (Format.asprintf
               "%s passes %a with zero delay, but some system at its %s \
                information level (Z_%d universe, %d systems) rejects it \
                — the Theorem 1 bound P ⊆ ∩C(T') is violated"
               name Schedule.pp h (level_string level) k universe_size))
        vs
