open Core

(** The black-box history consistency checker ([ccopt check]), after
    Biswas–Enea, "On the Complexity of Checking Transactional
    Consistency" (PAPERS.md).

    A history ({!History.t}) is consistent at a level iff there exists
    a total {e commit order} [co] over its transactions, containing the
    session order and the reads-from relation, such that every axiom
    instance holds: for each reads-from pair [WR_x(t1, t2)] and each
    other transaction [t3] writing [x], the level's premise
    [φ(t3, t2)] implies [co(t3, t1)] — "anything [t2] already depends
    on must not overwrite what it read". The levels differ only in the
    premise:

    - {e read committed}: [t3] is the source of an earlier read of
      [t2] (in program order, before [t2]'s read of [x]);
    - {e read atomic}: [t3 → t2] in one session-order or reads-from
      step;
    - {e causal}: [t3 → t2] in the transitive closure of session order
      and reads-from;
    - {e serializability}: [co(t3, t2)] — the premise mentions the
      commit order itself;
    - {e snapshot isolation}: decided by reduction — [SI(h)] iff the
      {!split_si} history is serializable (each transaction splits
      into a read half and a write half; a per-variable token forces
      the halves of write-conflicting transactions not to
      interleave).

    The first three premises are [co]-free, so consistency reduces to
    acyclicity of session order ∪ reads-from ∪ forced edges
    (polynomial, complete — {e saturation}). Serializability is decided
    exactly by a memoized search over session-prefix states (polynomial
    for a bounded number of sessions, the Biswas–Enea tractability
    frontier), with a sound saturation {e chase} run first on small
    histories to extract cycle witnesses.

    Every [Violation] carries a witness the tests replay independently
    ({!replay_cycle}, {!exists_order}); [Unknown] is reserved for
    truncated histories and exhausted search budgets — never a guess. *)

type level =
  | Read_committed
  | Read_atomic
  | Causal
  | Snapshot_isolation
  | Serializability

val levels : level list
(** Weakest to strongest: RC, RA, causal, SI, SER. *)

val level_name : level -> string
(** ["rc"], ["ra"], ["causal"], ["si"], ["ser"]. *)

val level_of_name : string -> level option

val level_doc : level -> string
(** One-line human description. *)

type edge_reason =
  | Session  (** source precedes target in a session (or is [init]) *)
  | Reads_from of Names.var  (** target read the source's write *)
  | Forced_before of { var : Names.var; source : int; reader : int }
      (** axiom instance: the edge's source is a [var]-writer already
          observed by [reader] (premise holds), so it must commit
          before [source] — the writer [reader] actually read from *)
  | Forced_after of { var : Names.var; source : int; reader : int }
      (** contrapositive with the commit order running the other way:
          [source] precedes the edge's target (a [var]-writer), so
          [reader] must commit before that writer overwrites its
          read. Only arises at levels whose premise mentions [co]
          (SER, SI). *)

type edge = { src : int; dst : int; reason : edge_reason }

type witness =
  | Cycle of edge list
      (** justified edges forming a closed cycle — each edge
          independently checkable against the history *)
  | Dangling_read of { reader : int; var : Names.var; value : int }
      (** a read of a value no transaction wrote (e.g. the write was
          dropped from the record) *)
  | Ambiguous_write of { var : Names.var; value : int; writers : int list }
      (** two external writes carry the same value — the reads-from
          relation is not recoverable. A write of the reserved initial
          value [0] reports here with a single writer. *)
  | Internal_misread of { txn : int; var : Names.var; value : int }
      (** a transaction disagrees with its own writes (INT axiom) *)
  | No_order of { explored : int }
      (** the exhaustive prefix search proved no valid commit order
          exists, without a small cycle to show; [explored] counts
          visited search states. Replayable by {!exists_order}. *)

type verdict =
  | Consistent of int list
      (** witness commit order — passes {!validate_order} *)
  | Violation of witness
  | Unknown of string

type result = {
  level : level;
  verdict : verdict;
  split : bool;
      (** when true (SI), transaction ids in the verdict refer to the
          {!split_si} history: [2t] is the read half of [t], [2t+1]
          its write half, [2n] the initial transaction *)
}

val check : ?budget:int -> History.t -> level -> result
(** Decide one level. [budget] bounds visited search states for the
    SER/SI search (default 2_000_000); exceeding it yields [Unknown].
    Incomplete (truncated) histories yield [Unknown] at every level. *)

val check_all : ?budget:int -> History.t -> result list
(** All of {!levels}, weakest first. *)

val init_txn : History.t -> int
(** The id of the virtual initial transaction (= [History.n]): writes
    value [0] of every variable, precedes everything. May appear in
    witnesses. *)

val split_si : History.t -> History.t
(** The SI-to-SER reduction. Read halves keep the external reads and
    write a fresh token on the shared variable ["si#x"] for each [x]
    in the write set; write halves read their own token back and keep
    the external writes. [SI(h) ⟺ SER(split_si h)]. *)

val well_formed : History.t -> witness list
(** Value-recoverability and INT checks run before any level:
    ambiguous writes, dangling reads, internal misreads. *)

(* ---------- independent replay (test oracles) ---------- *)

val validate_order : History.t -> level -> int list -> bool
(** Does this total order satisfy sessions, reads-from, and every
    axiom instance of the level? For SI the order must range over
    {!split_si} ids. A [Consistent] verdict's order always passes. *)

val exists_order : History.t -> level -> bool
(** Brute force over all permutations ([n ≤ 8] after splitting;
    raises [Invalid_argument] beyond). Ground truth for tests. *)

val replay_cycle : History.t -> level -> edge list -> bool
(** Re-derive a [Cycle] witness from scratch: the edges must be
    justified by the history (sessions, reads-from, axiom instances —
    premises re-established by an independent naive saturation) and
    close into a cycle. For SI the edges range over {!split_si} ids. *)

(* ---------- printing ---------- *)

val node_name : split:bool -> n:int -> int -> string
(** [n] is the transaction count of the {e checked} history (after
    splitting, if any); renders ["T3"], ["T3.r"], ["T3.c"], ["init"]. *)

val pp_edge : split:bool -> n:int -> Format.formatter -> edge -> unit
val pp_witness : split:bool -> n:int -> Format.formatter -> witness -> unit

val pp_result : n:int -> Format.formatter -> result -> unit
(** [n] is the {e original} history's transaction count. *)
