open Core

(** Black-box histories in the Biswas–Enea sense ("On the Complexity of
    Checking Transactional Consistency", PAPERS.md): {e sessions} of
    transactions, each transaction a sequence of read/write events on
    named variables carrying abstract {e values}. Values are what makes
    the history checkable without any scheduler cooperation — every
    write puts a globally unique value, so the writes-to-reads
    ({e reads-from}) relation is recoverable from the recorded values
    alone, and the {!Checker} decides isolation levels from that
    relation plus the session order.

    Histories come from three places: directly from a
    {!Core.Schedule.t} of a syntax ({!of_schedule} — each atomic RMW
    step expands to a read of the variable's current value followed by
    a write of a fresh one), from a recorded observability trace via
    {!Obs.Fold.history} ({!of_steps}), or generated at scale for
    throughput benchmarks ({!generate}).

    The distinguished value {!initial_value} ([0]) denotes "the initial
    value of the variable"; reads of it resolve to the virtual initial
    transaction, and no real write may use it. *)

type kind = R | W

type event = { kind : kind; var : Names.var; value : int }

type t

val initial_value : int
(** [0]. *)

val label : t -> string
val complete : t -> bool
(** [false] when the history was reconstructed from a truncated trace;
    the checker answers [Unknown] rather than risking a false verdict
    (same tolerance contract as {!Obs.Fold.counters}). *)

val n : t -> int
(** Number of transactions (ids [0 .. n-1]). *)

val n_events : t -> int
val events : t -> int -> event list
(** A transaction's events, program order. *)

val n_sessions : t -> int
val session_of : t -> int -> int
val session_pos : t -> int -> int
(** Position of a transaction inside its session (0-based). *)

val sessions : t -> int array array
(** [sessions h].(s) lists session [s]'s transactions in session
    order. Every transaction belongs to exactly one session. *)

val make :
  ?label:string -> ?complete:bool -> event list list list -> t
(** [make sessions]: sessions, each a list of transactions, each a list
    of events. Transaction ids are assigned in order of appearance. *)

val of_schedule : ?label:string -> Syntax.t -> Schedule.t -> t
(** Replay the schedule under value semantics (each step reads the
    variable's current value and installs a fresh one). One singleton
    session per transaction — the driver gives transactions no program
    order between each other, so none is claimed. *)

val of_steps :
  ?label:string -> complete:bool -> Syntax.t -> (int * int) list -> t
(** Same replay over an explicit committed-step sequence (what
    {!Obs.Fold.history} recovers from a trace). Steps of transactions
    beyond the syntax or indices beyond the format raise
    [Invalid_argument]. *)

(* ---------- derived structure (what the checker consumes) ---------- *)

val ext_reads : t -> int -> (Names.var * int) list
(** External reads: for each variable, the transaction's first read of
    it {e before} any own write — later reads are internal (checked by
    the INT well-formedness rule, invisible to other transactions). *)

val ext_writes : t -> int -> (Names.var * int) list
(** External writes: the {e last} write per variable. *)

val writers : t -> Names.var -> int list
(** Transactions externally writing a variable, ascending. *)

val writer_of : t -> Names.var -> int -> int option
(** The transaction whose external write on the variable carries this
    value; [None] for {!initial_value} and for dangling values. *)

val vars : t -> Names.var list
(** All variables appearing anywhere, sorted. *)

(* ---------- mutations (fuzzing aids) ---------- *)

type mutation =
  | Swap_reads
      (** invert one reads-from pair: the chain writer reads its
          successor's value — models two commits recorded in swapped
          order; rejected via a 2-cycle of reads-from edges *)
  | Drop_write
      (** delete an externally-read write — the reader's value dangles *)
  | Rewire_read
      (** a chain reader skips one link back: [t3] reads [t1]'s value
          while [t2]'s intervening write survives — no reads-from
          cycle, rejected only through the axiom machinery *)

val mutation_name : mutation -> string
val mutation_of_name : string -> mutation option
val mutations : mutation list

val mutate : mutation -> Random.State.t -> t -> t option
(** Apply the mutation at a seeded random applicable site; [None] when
    the history has no applicable site (e.g. no variable with a
    two-link reads-from chain). *)

(* ---------- generation ---------- *)

val generate :
  seed:int -> sessions:int -> txns:int -> steps:int -> n_vars:int -> t
(** A large serializable-by-construction history: [txns] transactions
    of [steps] RMW steps each on a pool of [n_vars] variables, executed
    in one global serial order and dealt round-robin onto [sessions]
    sessions (so the session order embeds into the execution order and
    the history is consistent at every level). [n_events = txns *
    steps * 2]. *)

val pp : Format.formatter -> t -> unit
