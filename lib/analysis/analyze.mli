open Core

(** The analyzer front end: one request in, one {!Report.t} out.

    This is what [ccopt analyze] drives; it is a plain library entry
    point so tests (and future CI gates) can run the same passes without
    going through the binary. *)

type request = {
  syntax : Syntax.t;
  schedule : int array option;
      (** interleaving to run the anomaly detector on *)
  policy : string option;  (** policy name to lint ({!policy_of_name}) *)
  certify : string option;
      (** scheduler name to certify ({!scheduler_of_name}) *)
  k : int;  (** micro-universe domain size for certification *)
}

val request :
  ?schedule:int array ->
  ?policy:string ->
  ?certify:string ->
  ?k:int ->
  Syntax.t ->
  request

val parse_syntax : string -> Syntax.t
(** ["xy,yx"] — comma-separated transactions, one single-character
    variable per step. Raises [Invalid_argument] on malformed input. *)

val parse_interleaving : string -> int array
(** ["0101"] — a digit per position naming the acting transaction. *)

val policy_of_name : string -> Locking.Policy.t
(** [2pl], [2pl'] (alias [2plprime]), [preclaim], [mutex]. *)

val scheduler_of_name : Syntax.t -> string -> unit -> Sched.Scheduler.t
(** Fresh instances via {!Sched.Registry.find_exn} (any registered name
    or slug, case-insensitive); raises [Invalid_argument] listing
    {!Sched.Registry.names} on an unknown one. *)

val certifier_level : string -> Certifier.level
(** The information level each named scheduler operates at: [serial] is
    format-only; everything else is syntactic. *)

val syntax_string : Syntax.t -> string
(** Render a syntax back to the [--syntax] notation when every variable
    is a single character, else a spaced variant. *)

val run : request -> Report.t
(** Runs the anomaly pass when [schedule] is present, the lock linter
    when [policy] is present, and the certifier when [certify] is
    present; a request selecting no pass yields a single informational
    diagnostic explaining the flags. Never raises on malformed
    schedules (reported as diagnostics); raises [Invalid_argument] on
    unknown policy/scheduler names. *)
